/**
 * @file
 * Binary implication graph and implication-based CNF pruning
 * (REASON Sec. IV-B, "Pruning of FOL and SAT via implication graph").
 *
 * Every binary clause (a ∨ b) induces the implication edges ¬a → b and
 * ¬b → a.  Reachability on this graph exposes hidden literals (a literal
 * that implies another literal of the same clause is redundant there) and
 * failed literals (a → ¬a forces a to be false).  Both reductions preserve
 * logical equivalence, hence satisfiability and model count.
 */

#ifndef REASON_LOGIC_IMPLICATION_GRAPH_H
#define REASON_LOGIC_IMPLICATION_GRAPH_H

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "logic/cnf.h"

namespace reason {
namespace logic {

/**
 * Directed graph over literal nodes built from a formula's binary clauses.
 * Reachability queries are answered by DFS with per-source memoization.
 */
class ImplicationGraph
{
  public:
    explicit ImplicationGraph(const CnfFormula &formula);

    /** Number of literal nodes (2 * numVars). */
    size_t numNodes() const { return adj_.size(); }

    /** Number of directed implication edges. */
    size_t numEdges() const { return numEdges_; }

    /** Direct successors of literal `from`. */
    const std::vector<Lit> &successors(Lit from) const;

    /** True iff a directed path from -> to exists (from != to). */
    bool reachable(Lit from, Lit to);

    /** Literal is failed iff it implies its own negation. */
    bool isFailedLiteral(Lit l);

    /** All literals reachable from `from` (excludes `from` itself unless
     *  it lies on a cycle through itself). */
    const std::vector<bool> &reachableSet(Lit from);

  private:
    std::vector<std::vector<Lit>> adj_;
    size_t numEdges_ = 0;
    // Memoized DFS results, keyed by source literal code.
    std::unordered_map<uint32_t, std::vector<bool>> memo_;
};

/** Outcome of implication-graph-based pruning. */
struct CnfPruneResult
{
    CnfFormula pruned;
    uint64_t literalsRemoved = 0;
    uint64_t clausesRemoved = 0;
    uint64_t failedLiterals = 0;
    /** Literal-count ratio removed: 1 - after/before. */
    double literalReduction = 0.0;
};

/**
 * Apply failed-literal elimination followed by hidden-literal elimination.
 *
 * Failed literals (a → ¬a) are asserted as units and propagated; satisfied
 * clauses are dropped and falsified literals removed.  Hidden literals are
 * then removed clause-by-clause: literal `a` is dropped from clause C when
 * some other literal b ∈ C is reachable from a in the implication graph
 * (sequentially, so each removal's witness is still present).
 *
 * The result is logically equivalent to the input.
 */
CnfPruneResult pruneCnf(const CnfFormula &formula);

} // namespace logic
} // namespace reason

#endif // REASON_LOGIC_IMPLICATION_GRAPH_H
