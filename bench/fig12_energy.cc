/**
 * @file
 * Fig. 12 reproduction: (a) REASON power across workloads and (b)
 * energy-efficiency ratios vs Orin NX, RTX A6000, and Xeon CPU across
 * the ten reasoning tasks, plus V100/A100 comparisons and the scaled
 * technology nodes of Table III.
 *
 * Paper shape: power ≈ 1.9-2.5 W (avg ≈ 2.12 W); energy efficiency
 * ≈ 310x (Orin), 681x (RTX), 838x (Xeon), 802x (V100), 268x (A100).
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "energy/energy_model.h"
#include "sys/system.h"
#include "util/stats.h"
#include "util/table.h"
#include "workloads/timing.h"
#include "workloads/workloads.h"

using namespace reason;

namespace {

void
BM_EnergyModelPricing(benchmark::State &state)
{
    StatGroup ev;
    ev.inc("tree_add_ops", 1000000);
    ev.inc("regfile_reads", 1500000);
    ev.inc("cycles", 500000);
    energy::EnergyModel em;
    for (auto _ : state)
        benchmark::DoNotOptimize(em.dynamicEnergyJoules(ev));
}
BENCHMARK(BM_EnergyModelPricing);

void
printFig12()
{
    Table power({"Task", "REASON avg power [W]"});
    Table eff({"Task", "vs Orin NX", "vs RTX A6000", "vs Xeon CPU",
               "vs V100", "vs A100"});
    StatAccumulator pw;
    StatAccumulator e_orin, e_rtx, e_xeon, e_v100, e_a100;
    for (workloads::DatasetId d : workloads::allDatasets()) {
        workloads::TaskBundle b =
            workloads::generate(d, workloads::TaskScale::Small, 9);
        workloads::SymbolicOps ops =
            workloads::measureSymbolicOps(b, true);
        sys::StageCost reason =
            sys::symbolicCost(sys::Platform::ReasonAccel, ops);
        double watts = reason.joules / reason.seconds;
        pw.add(watts);
        power.addRow({workloads::datasetName(d), Table::num(watts, 2)});

        auto ratio = [&](sys::Platform p) {
            sys::StageCost c = sys::symbolicCost(p, ops);
            return c.joules / reason.joules;
        };
        double r_orin = ratio(sys::Platform::OrinNx);
        double r_rtx = ratio(sys::Platform::RtxA6000);
        double r_xeon = ratio(sys::Platform::XeonCpu);
        double r_v100 = ratio(sys::Platform::V100);
        double r_a100 = ratio(sys::Platform::A100);
        e_orin.add(r_orin);
        e_rtx.add(r_rtx);
        e_xeon.add(r_xeon);
        e_v100.add(r_v100);
        e_a100.add(r_a100);
        eff.addRow({workloads::datasetName(d), Table::num(r_orin, 0),
                    Table::num(r_rtx, 0), Table::num(r_xeon, 0),
                    Table::num(r_v100, 0), Table::num(r_a100, 0)});
    }
    power.addRow({"average", Table::num(pw.mean(), 2)});
    eff.addRow({"average", Table::num(e_orin.mean(), 0),
                Table::num(e_rtx.mean(), 0),
                Table::num(e_xeon.mean(), 0),
                Table::num(e_v100.mean(), 0),
                Table::num(e_a100.mean(), 0)});

    std::printf("\n");
    power.print("Fig. 12(a) — REASON power across workloads "
                "(paper: 1.88-2.51 W, avg 2.12 W)");
    std::printf("\n");
    eff.print("Fig. 12(b) — energy efficiency vs baselines "
              "(paper: 310x Orin, 681x RTX, 838x Xeon, 802x V100, "
              "268x A100)");

    // Table III scaled nodes.
    Table nodes({"Node", "Area [mm^2]", "Static power scale"});
    for (auto n : {energy::TechNode::Tsmc28, energy::TechNode::Tsmc12,
                   energy::TechNode::Tsmc8}) {
        energy::EnergyModel em(n);
        nodes.addRow({energy::techNodeName(n),
                      Table::num(em.areaMm2(12, 1280), 2),
                      Table::num(energy::techScaling(n).staticPower, 2)});
    }
    std::printf("\n");
    nodes.print("Table III — technology scaling "
                "(paper: 6.00 / 1.37 / 0.51 mm^2)");
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printFig12();
    return 0;
}
