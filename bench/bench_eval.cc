/**
 * @file
 * Seed-vs-flat evaluation benchmark: times repeated Circuit
 * log-likelihood passes on a >=100k-node random circuit through the
 * reference AoS walker (Circuit::logLikelihood, one allocation per
 * call), the serial flat CSR engine (pc::CircuitEvaluator,
 * allocation-free batched), and the thread-parallel wavefront engine
 * (same evaluator over a multi-worker pool, bit-identical results),
 * plus the linear-domain Dag-vs-core::Evaluator pair and the async
 * batch-serving engine (sys::ReasonEngine: cross-request coalescing
 * vs sequential single-request submission).
 *
 * Emits one machine-readable JSON line per engine pair (prefix
 * "BENCH_JSON ", with compiler/flags provenance) so the perf
 * trajectory can be tracked across PRs:
 *
 *   ./bench_eval [num_vars] [reps] [--threads N] [--repeats N]
 *               [--max-batch N]
 *
 * --threads N   worker count of the threaded variant (default:
 *               hardware concurrency; 1 skips the threaded section).
 * --repeats N   same as the positional reps argument.
 * --max-batch N most rows per coalesced serving batch (default 64).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/builders.h"
#include "core/flat.h"
#include "pc/flat_pc.h"
#include "pc/learn.h"
#include "pc/pc.h"
#include "sys/engine.h"
#include "util/numeric.h"
#include "util/parallel.h"
#include "util/rng.h"

using namespace reason;
using Clock = std::chrono::steady_clock;

#ifndef REASON_BUILD_FLAGS
#define REASON_BUILD_FLAGS "unknown"
#endif
#ifndef REASON_BUILD_TYPE
#define REASON_BUILD_TYPE "unknown"
#endif

namespace {

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

const char *
compilerName()
{
#if defined(__clang__)
    return "clang++ " __VERSION__;
#elif defined(__GNUC__)
    return "g++ " __VERSION__;
#else
    return "unknown " __VERSION__;
#endif
}

int
usageError()
{
    std::fprintf(stderr, "usage: bench_eval [num_vars >= 2] [reps >= 1] "
                         "[--threads N] [--repeats N] [--max-batch N]\n");
    return 1;
}

/** Order-sensitive FNV-1a over the exact bit patterns of a vector. */
uint64_t
bitHash(const std::vector<double> &v)
{
    uint64_t h = 1469598103934665603ull;
    for (double d : v) {
        uint64_t bits;
        std::memcpy(&bits, &d, sizeof bits);
        for (int i = 0; i < 8; ++i) {
            h ^= (bits >> (i * 8)) & 0xff;
            h *= 1099511628211ull;
        }
    }
    return h;
}

/** Doubles that differ bitwise between two parameter sets. */
size_t
countCircuitParamMismatches(const reason::pc::Circuit &a,
                            const reason::pc::Circuit &b)
{
    auto differ = [](double x, double y) {
        uint64_t bx, by;
        std::memcpy(&bx, &x, sizeof bx);
        std::memcpy(&by, &y, sizeof by);
        return bx != by;
    };
    size_t mismatches = 0;
    for (reason::pc::NodeId id = 0; id < a.numNodes(); ++id) {
        const reason::pc::PcNode &na = a.node(id);
        const reason::pc::PcNode &nb = b.node(id);
        for (size_t k = 0; k < na.weights.size(); ++k)
            mismatches += differ(na.weights[k], nb.weights[k]);
        for (size_t k = 0; k < na.dist.size(); ++k)
            mismatches += differ(na.dist[k], nb.dist[k]);
    }
    return mismatches;
}

} // namespace

int
main(int argc, char **argv)
{
    uint32_t num_vars = 1500;
    size_t reps = 1000;
    unsigned threads = std::thread::hardware_concurrency();
    if (threads == 0)
        threads = 1;
    unsigned max_batch = 64;

    size_t positional = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            if (!util::parseThreadCount(argv[++i], &threads))
                return usageError();
        } else if (std::strcmp(argv[i], "--repeats") == 0 &&
                   i + 1 < argc) {
            reps = size_t(std::atoll(argv[++i]));
        } else if (std::strcmp(argv[i], "--max-batch") == 0 &&
                   i + 1 < argc) {
            long long v = std::atoll(argv[++i]);
            if (v < 1 || v > (1 << 20))
                return usageError();
            max_batch = unsigned(v);
        } else if (argv[i][0] == '-') {
            return usageError();
        } else if (positional == 0) {
            num_vars = uint32_t(std::atoi(argv[i]));
            ++positional;
        } else if (positional == 1) {
            reps = size_t(std::atoll(argv[i]));
            ++positional;
        } else {
            return usageError();
        }
    }
    if (threads == 0) { // --threads 0 = hardware concurrency
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    if (num_vars < 2 || reps == 0)
        return usageError();

    const char *provenance_fmt =
        ",\"compiler\":\"%s\",\"flags\":\"%s\",\"build\":\"%s\"";
    char provenance[512];
    std::snprintf(provenance, sizeof provenance, provenance_fmt,
                  compilerName(), REASON_BUILD_FLAGS, REASON_BUILD_TYPE);

    Rng rng(2026);
    // num_sums=8, num_inputs=16 yields ~72 interior nodes per region:
    // 1500 vars -> ~120k nodes, ~380k edges.
    pc::Circuit circuit = pc::randomCircuit(rng, num_vars, 2, 8, 16);
    std::printf("circuit: %zu nodes, %zu edges, %u vars\n",
                circuit.numNodes(), circuit.numEdges(),
                circuit.numVars());

    std::vector<pc::Assignment> data =
        pc::sampleDataset(rng, circuit, reps);

    // The serial baseline must stay serial regardless of the global
    // pool, so every "flat" engine below gets an explicit 1-thread pool.
    util::ThreadPool serial_pool(1);

    // --- log-domain: Circuit::logLikelihood vs flat batched ------------
    double sink = 0.0;
    // Warm-up both paths (page in the circuit, prime caches).
    sink += circuit.logLikelihood(data[0]);

    Clock::time_point t0 = Clock::now();
    pc::FlatCircuit flat(circuit);
    pc::CircuitEvaluator eval(flat, &serial_pool);
    double lower_ms = msSince(t0);
    sink += eval.logLikelihood(data[0]);

    t0 = Clock::now();
    double seed_acc = 0.0;
    for (const auto &x : data)
        seed_acc += circuit.logLikelihood(x);
    double seed_ms = msSince(t0);

    std::vector<double> flat_ll(data.size());
    t0 = Clock::now();
    eval.logLikelihoodBatch(data, flat_ll);
    double flat_ms = msSince(t0);

    double flat_acc = 0.0;
    double max_diff = 0.0;
    for (size_t i = 0; i < data.size(); ++i) {
        flat_acc += flat_ll[i];
        double d = std::fabs(flat_ll[i] -
                             circuit.logLikelihood(data[i]));
        max_diff = std::max(max_diff, d);
    }
    double speedup = seed_ms / (flat_ms + lower_ms);
    std::printf("BENCH_JSON {\"bench\":\"bench_eval\",\"engine\":"
                "\"circuit_loglik\",\"nodes\":%zu,\"edges\":%zu,"
                "\"reps\":%zu,\"seed_ms\":%.3f,\"flat_ms\":%.3f,"
                "\"lower_ms\":%.3f,\"speedup\":%.2f,"
                "\"max_abs_diff\":%.3e%s}\n",
                circuit.numNodes(), circuit.numEdges(), reps, seed_ms,
                flat_ms, lower_ms, speedup, max_diff, provenance);
    std::printf("seed %.3f ms, flat %.3f ms (+%.3f ms lowering): "
                "%.2fx %s (target >=5x), max |diff| %.2e\n",
                seed_ms, flat_ms, lower_ms, speedup,
                speedup >= 5.0 ? "PASS" : "BELOW TARGET", max_diff);

    // Bitwise disagreements between engines that must match exactly;
    // any nonzero total fails the run (nonzero exit) so CI catches
    // determinism regressions, not just slowdowns.
    size_t bitwise_failures = 0;

    // --- threaded wavefront variant ------------------------------------
    if (threads > 1) {
        util::ThreadPool mt_pool(threads);
        pc::CircuitEvaluator mt_eval(flat, &mt_pool);
        std::vector<double> mt_ll(data.size());
        mt_eval.logLikelihoodBatch(data, mt_ll); // warm per-worker scratch
        t0 = Clock::now();
        mt_eval.logLikelihoodBatch(data, mt_ll);
        double mt_ms = msSince(t0);

        // The wavefront engine must be *bit-identical* to serial flat.
        size_t mismatches = 0;
        for (size_t i = 0; i < data.size(); ++i)
            if (mt_ll[i] != flat_ll[i])
                ++mismatches;
        double mt_speedup = flat_ms / mt_ms;
        std::printf("BENCH_JSON {\"bench\":\"bench_eval\",\"engine\":"
                    "\"circuit_loglik_mt\",\"nodes\":%zu,\"edges\":%zu,"
                    "\"reps\":%zu,\"threads\":%u,\"flat_ms\":%.3f,"
                    "\"mt_ms\":%.3f,\"speedup_vs_flat\":%.2f,"
                    "\"bitwise_mismatches\":%zu%s}\n",
                    circuit.numNodes(), circuit.numEdges(), reps,
                    threads, flat_ms, mt_ms, mt_speedup, mismatches,
                    provenance);
        std::printf("threaded (%u workers): %.3f ms vs serial flat "
                    "%.3f ms: %.2fx %s (target >=2x with >=4 threads), "
                    "%zu bitwise mismatches\n",
                    threads, mt_ms, flat_ms, mt_speedup,
                    mt_speedup >= 2.0 ? "PASS" : "BELOW TARGET",
                    mismatches);
        bitwise_failures += mismatches;
    } else {
        std::printf("threaded section skipped (1 worker)\n");
    }

    // --- reverse-wavefront derivatives (marginal-query backward pass) --
    if (threads > 1) {
        util::ThreadPool mt_pool(threads);
        const size_t deriv_reps = std::min<size_t>(reps, 200);
        std::vector<uint64_t> serial_hash(deriv_reps);
        std::vector<double> logd;

        pc::CircuitEvaluator s_eval(flat, &serial_pool);
        // Warm scratch, then time upward + backward per assignment.
        logDerivativesInto(flat, s_eval.evaluate(data[0]), logd,
                           &serial_pool);
        t0 = Clock::now();
        for (size_t i = 0; i < deriv_reps; ++i) {
            logDerivativesInto(flat, s_eval.evaluate(data[i]), logd,
                               &serial_pool);
            serial_hash[i] = bitHash(logd);
        }
        double deriv_flat_ms = msSince(t0);

        pc::CircuitEvaluator mt_eval(flat, &mt_pool);
        logDerivativesInto(flat, mt_eval.evaluate(data[0]), logd,
                           &mt_pool);
        size_t mismatches = 0;
        t0 = Clock::now();
        for (size_t i = 0; i < deriv_reps; ++i) {
            logDerivativesInto(flat, mt_eval.evaluate(data[i]), logd,
                               &mt_pool);
            if (bitHash(logd) != serial_hash[i])
                ++mismatches;
        }
        double deriv_mt_ms = msSince(t0);
        double deriv_speedup = deriv_flat_ms / deriv_mt_ms;
        std::printf("BENCH_JSON {\"bench\":\"bench_eval\",\"engine\":"
                    "\"derivatives_mt\",\"nodes\":%zu,\"edges\":%zu,"
                    "\"reps\":%zu,\"threads\":%u,\"flat_ms\":%.3f,"
                    "\"mt_ms\":%.3f,\"speedup_vs_flat\":%.2f,"
                    "\"bitwise_mismatches\":%zu%s}\n",
                    circuit.numNodes(), circuit.numEdges(), deriv_reps,
                    threads, deriv_flat_ms, deriv_mt_ms, deriv_speedup,
                    mismatches, provenance);
        std::printf("derivatives (%u workers): %.3f ms vs serial "
                    "%.3f ms: %.2fx, %zu bitwise mismatches\n",
                    threads, deriv_mt_ms, deriv_flat_ms, deriv_speedup,
                    mismatches);
        bitwise_failures += mismatches;
    } else {
        std::printf("derivatives section skipped (1 worker)\n");
    }

    // --- sharded EM fit -------------------------------------------------
    if (threads > 1) {
        // Smaller model: EM is O(iters * samples * edges) and the point
        // here is shard scaling plus determinism, not raw size.
        const uint32_t em_vars = std::max(32u, num_vars / 16);
        const size_t em_samples = std::min<size_t>(reps, 512);
        pc::Circuit em_truth = pc::randomCircuit(rng, em_vars, 2, 4, 8);
        std::vector<pc::Assignment> em_data =
            pc::sampleDataset(rng, em_truth, em_samples);
        pc::Circuit em_model = pc::randomCircuit(rng, em_vars, 2, 4, 8);

        pc::EmOptions em_opts;
        em_opts.maxIterations = 4;
        em_opts.tolerance = 0.0; // run every iteration
        em_opts.shards = 0;
        em_opts.deterministic = true;

        // emTrain reaches the pool through the global knob.
        util::setGlobalThreads(1);
        pc::Circuit serial_model = em_model;
        t0 = Clock::now();
        pc::EmTrace serial_trace =
            pc::emTrain(serial_model, em_data, em_opts);
        double em_serial_ms = msSince(t0);

        util::setGlobalThreads(threads);
        pc::Circuit mt_model = em_model;
        t0 = Clock::now();
        pc::EmTrace mt_trace = pc::emTrain(mt_model, em_data, em_opts);
        double em_mt_ms = msSince(t0);
        util::setGlobalThreads(0); // restore the default pool

        size_t mismatches =
            countCircuitParamMismatches(serial_model, mt_model);
        if (bitHash(serial_trace.logLikelihood) !=
            bitHash(mt_trace.logLikelihood))
            ++mismatches;
        const unsigned em_shards = util::resolveShardCount(
            em_opts.shards, em_opts.deterministic, em_samples, threads);
        double em_speedup = em_serial_ms / em_mt_ms;
        std::printf("BENCH_JSON {\"bench\":\"bench_eval\",\"engine\":"
                    "\"em_fit\",\"nodes\":%zu,\"edges\":%zu,"
                    "\"reps\":%zu,\"iters\":%u,\"threads\":%u,"
                    "\"shards\":%u,\"flat_ms\":%.3f,\"mt_ms\":%.3f,"
                    "\"speedup_vs_flat\":%.2f,"
                    "\"bitwise_mismatches\":%zu%s}\n",
                    em_model.numNodes(), em_model.numEdges(),
                    em_samples, serial_trace.iterations, threads,
                    em_shards, em_serial_ms, em_mt_ms, em_speedup,
                    mismatches, provenance);
        std::printf("em_fit (%u workers, %u shards): %.3f ms vs serial "
                    "%.3f ms: %.2fx, %zu bitwise mismatches\n",
                    threads, em_shards, em_mt_ms, em_serial_ms,
                    em_speedup, mismatches);
        bitwise_failures += mismatches;
    } else {
        std::printf("em_fit section skipped (1 worker)\n");
    }

    // --- async serving engine: coalesced vs sequential -----------------
    {
        // serveThreads is pinned to 1 so the measured factor isolates
        // cross-request coalescing (SoA batch amortization) from
        // wavefront threading; both paths pad every request to whole
        // SoA blocks, so outputs must match bitwise.
        sys::ServeOptions sopts;
        sopts.maxBatch = max_batch;
        sopts.serveThreads = 1;
        sopts.maxCoalesceWindowUs = 0;

        // Sequential baseline: submit-and-wait one request at a time
        // (batch occupancy 1, no overlap between client and engine).
        std::vector<double> seq_ll(data.size());
        double seq_ms = 0.0;
        {
            sys::ReasonEngine engine(sopts);
            sys::Session session = engine.createSession(circuit);
            session.wait(session.submit(data[0])); // warm evaluator
            t0 = Clock::now();
            for (size_t i = 0; i < data.size(); ++i)
                seq_ll[i] =
                    session.wait(session.submit(data[i]))->outputs[0];
            seq_ms = msSince(t0);
        }

        // Coalesced serving: two sessions over the same circuit (the
        // lowering cache gives them one coalescing key); the backlog
        // is built while the dispatcher is paused, then released.
        std::vector<double> serve_ll(data.size());
        std::vector<double> lat_ms(data.size());
        double serve_ms = 0.0;
        sys::EngineStats warm{}, stats{};
        {
            sys::ReasonEngine engine(sopts);
            sys::Session sessions[2] = {engine.createSession(circuit),
                                        engine.createSession(circuit)};
            sessions[0].wait(sessions[0].submit(data[0])); // warm
            engine.pause();
            warm = engine.stats();
            std::vector<sys::RequestHandle> handles(data.size());
            for (size_t i = 0; i < data.size(); ++i)
                handles[i] = sessions[i % 2].submit(data[i]);
            t0 = Clock::now();
            engine.resume();
            for (size_t i = 0; i < data.size(); ++i) {
                std::shared_ptr<const sys::Request> r =
                    sessions[i % 2].wait(handles[i]);
                serve_ll[i] = r->outputs[0];
                lat_ms[i] = double(r->latencyNs()) * 1e-6;
            }
            serve_ms = msSince(t0);
            stats = engine.stats();
        }

        size_t mismatches = 0;
        for (size_t i = 0; i < data.size(); ++i) {
            uint64_t ba, bb;
            std::memcpy(&ba, &seq_ll[i], sizeof ba);
            std::memcpy(&bb, &serve_ll[i], sizeof bb);
            mismatches += ba != bb;
        }
        const uint64_t serve_batches = stats.batches - warm.batches;
        const double occupancy =
            serve_batches == 0
                ? 0.0
                : double(stats.rows - warm.rows) /
                      double(serve_batches);
        std::sort(lat_ms.begin(), lat_ms.end());
        auto percentile = [&](double p) {
            return lat_ms[std::min(lat_ms.size() - 1,
                                   size_t(p * double(lat_ms.size())))];
        };
        const double speedup = seq_ms / serve_ms;
        const double rps =
            double(data.size()) / (serve_ms * 1e-3);
        std::printf("BENCH_JSON {\"bench\":\"bench_eval\",\"engine\":"
                    "\"serving\",\"nodes\":%zu,\"edges\":%zu,"
                    "\"reps\":%zu,\"threads\":%u,\"max_batch\":%u,"
                    "\"clients\":2,\"seq_ms\":%.3f,\"serve_ms\":%.3f,"
                    "\"speedup_vs_seq\":%.2f,\"requests_per_sec\":%.1f,"
                    "\"p50_ms\":%.4f,\"p99_ms\":%.4f,"
                    "\"mean_batch_occupancy\":%.2f,"
                    "\"bitwise_mismatches\":%zu%s}\n",
                    circuit.numNodes(), circuit.numEdges(), data.size(),
                    sopts.serveThreads, max_batch, seq_ms, serve_ms,
                    speedup, rps, percentile(0.50), percentile(0.99),
                    occupancy, mismatches, provenance);
        std::printf("serving: coalesced %.3f ms vs sequential %.3f ms: "
                    "%.2fx %s (target >=2x), occupancy %.2f %s, "
                    "%zu bitwise mismatches\n",
                    serve_ms, seq_ms, speedup,
                    speedup >= 2.0 ? "PASS" : "BELOW TARGET", occupancy,
                    occupancy > 1.0 ? "PASS" : "BELOW TARGET",
                    mismatches);
        bitwise_failures += mismatches;
    }

    // --- linear domain: Dag::evaluate vs core::Evaluator ---------------
    core::Dag dag = core::buildFromCircuit(circuit);
    const size_t dag_reps = reps / 4 ? reps / 4 : 1;
    std::vector<double> inputs(dag.numInputs(), 1.0);

    sink += dag.evaluateRoot(inputs);
    t0 = Clock::now();
    double dag_acc = 0.0;
    for (size_t i = 0; i < dag_reps; ++i) {
        inputs[i % inputs.size()] = 0.5 + double(i % 3) * 0.25;
        dag_acc += dag.evaluateRoot(inputs);
    }
    double dag_seed_ms = msSince(t0);

    t0 = Clock::now();
    core::FlatGraph fg = core::lowerDag(dag);
    core::Evaluator fev(fg, &serial_pool);
    double dag_lower_ms = msSince(t0);
    sink += fev.evaluateRoot(inputs);

    std::fill(inputs.begin(), inputs.end(), 1.0);
    t0 = Clock::now();
    double dag_flat_acc = 0.0;
    for (size_t i = 0; i < dag_reps; ++i) {
        inputs[i % inputs.size()] = 0.5 + double(i % 3) * 0.25;
        dag_flat_acc += fev.evaluateRoot(inputs);
    }
    double dag_flat_ms = msSince(t0);
    double dag_speedup = dag_seed_ms / (dag_flat_ms + dag_lower_ms);
    std::printf("BENCH_JSON {\"bench\":\"bench_eval\",\"engine\":"
                "\"dag_eval\",\"nodes\":%zu,\"edges\":%zu,\"reps\":%zu,"
                "\"seed_ms\":%.3f,\"flat_ms\":%.3f,\"lower_ms\":%.3f,"
                "\"speedup\":%.2f,\"max_abs_diff\":%.3e%s}\n",
                dag.numNodes(), dag.numEdges(), dag_reps, dag_seed_ms,
                dag_flat_ms, dag_lower_ms, dag_speedup,
                std::fabs(dag_acc - dag_flat_acc), provenance);
    std::printf("dag: seed %.3f ms, flat %.3f ms: %.2fx\n", dag_seed_ms,
                dag_flat_ms, dag_speedup);

    (void)sink;
    (void)seed_acc;
    (void)flat_acc;
    if (bitwise_failures != 0) {
        std::fprintf(stderr,
                     "bench_eval: %zu bitwise mismatches across "
                     "variants that must match exactly\n",
                     bitwise_failures);
        return 1;
    }
    return 0;
}
