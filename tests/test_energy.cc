/**
 * @file
 * Energy/power/area model tests: technology scaling matches Table III,
 * event pricing is monotone, and the default configuration lands in the
 * paper's reported envelope (≈6 mm², ≈2 W class at 28 nm).
 */

#include <gtest/gtest.h>

#include "energy/energy_model.h"
#include "util/stats.h"

using namespace reason;
using namespace reason::energy;

TEST(TechScaling, IdentityAt28nm)
{
    TechScaling s = techScaling(TechNode::Tsmc28);
    EXPECT_DOUBLE_EQ(s.area, 1.0);
    EXPECT_DOUBLE_EQ(s.dynamicEnergy, 1.0);
    EXPECT_DOUBLE_EQ(s.staticPower, 1.0);
}

TEST(TechScaling, MonotoneShrink)
{
    TechScaling s12 = techScaling(TechNode::Tsmc12);
    TechScaling s8 = techScaling(TechNode::Tsmc8);
    EXPECT_LT(s12.area, 1.0);
    EXPECT_LT(s8.area, s12.area);
    EXPECT_LT(s8.dynamicEnergy, s12.dynamicEnergy);
    EXPECT_LT(s8.staticPower, s12.staticPower);
}

TEST(Area, DefaultConfigurationNear6mm2)
{
    EnergyModel m(TechNode::Tsmc28);
    double area = m.areaMm2(12, 1280);
    EXPECT_GT(area, 5.0);
    EXPECT_LT(area, 7.5);
}

TEST(Area, ScaledNodesMatchTableIII)
{
    // Table III: 28nm 6.00 mm^2 -> 12nm 1.37 -> 8nm 0.51.
    double a28 = EnergyModel(TechNode::Tsmc28).areaMm2(12, 1280);
    double a12 = EnergyModel(TechNode::Tsmc12).areaMm2(12, 1280);
    double a8 = EnergyModel(TechNode::Tsmc8).areaMm2(12, 1280);
    EXPECT_NEAR(a12 / a28, 1.37 / 6.00, 0.01);
    EXPECT_NEAR(a8 / a28, 0.51 / 6.00, 0.01);
}

TEST(Energy, EventPricingMonotone)
{
    EnergyModel m;
    StatGroup few, many;
    few.inc("tree_mul_ops", 1000);
    many.inc("tree_mul_ops", 1000000);
    EXPECT_LT(m.dynamicEnergyJoules(few), m.dynamicEnergyJoules(many));
}

TEST(Energy, MultiplyCostsMoreThanAdd)
{
    EnergyModel m;
    StatGroup adds, muls;
    adds.inc("tree_add_ops", 100000);
    muls.inc("tree_mul_ops", 100000);
    EXPECT_LT(m.dynamicEnergyJoules(adds), m.dynamicEnergyJoules(muls));
}

TEST(Energy, DramDominatesSram)
{
    EnergyModel m;
    StatGroup sram, dram;
    sram.inc("sram_accesses", 1000); // 1000 words
    dram.inc("dma_bytes", 8000);     // same data from DRAM
    EXPECT_LT(m.dynamicEnergyJoules(sram),
              m.dynamicEnergyJoules(dram));
}

TEST(Energy, ReportComposition)
{
    EnergyModel m;
    StatGroup ev;
    ev.inc("tree_add_ops", 500000);
    ev.inc("regfile_reads", 800000);
    EnergyReport r = m.report(ev, 0.5);
    EXPECT_DOUBLE_EQ(r.totalJoules, r.dynamicJoules + r.staticJoules);
    EXPECT_NEAR(r.averageWatts, r.totalJoules / 0.5, 1e-12);
    EXPECT_GT(r.staticJoules, 0.0);
}

TEST(Energy, BusyAcceleratorPowerInPaperEnvelope)
{
    // A second of heavy mixed activity at 500 MHz: the average power
    // must land in the paper's 1.5-3 W window (Fig. 12(a)).
    EnergyModel m;
    StatGroup ev;
    // ~70% occupancy of 84 tree nodes at 500 MHz for 1 s.
    uint64_t ops = static_cast<uint64_t>(0.7 * 84 * 0.5e9);
    ev.inc("tree_add_ops", ops / 2);
    ev.inc("tree_mul_ops", ops / 2);
    ev.inc("regfile_reads", ops * 2 / 3);
    ev.inc("regfile_writes", ops / 4);
    ev.inc("sram_accesses", ops / 8);
    ev.inc("dma_bytes", uint64_t(2e9)); // ~2 GB/s average traffic
    ev.inc("cycles", uint64_t(0.5e9));  // one second at 500 MHz
    EnergyReport r = m.report(ev, 1.0);
    EXPECT_GT(r.averageWatts, 1.2);
    EXPECT_LT(r.averageWatts, 3.2);
}

TEST(Energy, ScalingReducesJoules)
{
    StatGroup ev;
    ev.inc("tree_mul_ops", 1000000);
    double j28 =
        EnergyModel(TechNode::Tsmc28).dynamicEnergyJoules(ev);
    double j12 =
        EnergyModel(TechNode::Tsmc12).dynamicEnergyJoules(ev);
    double j8 = EnergyModel(TechNode::Tsmc8).dynamicEnergyJoules(ev);
    EXPECT_GT(j28, j12);
    EXPECT_GT(j12, j8);
}
