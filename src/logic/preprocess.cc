#include "logic/preprocess.h"

#include <algorithm>
#include <deque>

#include "util/logging.h"

namespace reason {
namespace logic {

Preprocessor::Preprocessor(const CnfFormula &formula,
                           PreprocessConfig config)
    : config_(config), numVars_(formula.numVars())
{
    stats_.clausesBefore = formula.numClauses();
    stats_.literalsBefore = formula.numLiterals();

    for (const auto &clause : formula.clauses()) {
        Clause c(clause.begin(), clause.end());
        std::sort(c.begin(), c.end());
        c.erase(std::unique(c.begin(), c.end()), c.end());
        bool tautology = false;
        for (size_t i = 0; i + 1 < c.size(); ++i)
            if (c[i + 1] == ~c[i])
                tautology = true;
        if (tautology)
            continue;
        if (c.empty()) {
            unsat_ = true;
            continue;
        }
        clauses_.push_back(std::move(c));
    }
    dead_.assign(clauses_.size(), false);
    fixed_.assign(numVars_, LBool::Undef);
    gone_.assign(numVars_, false);
    rebuildOccurrences();
}

void
Preprocessor::rebuildOccurrences()
{
    occur_.assign(size_t(numVars_) * 2, {});
    for (size_t i = 0; i < clauses_.size(); ++i) {
        if (dead_[i])
            continue;
        for (Lit l : clauses_[i])
            occur_[l.code()].push_back(i);
    }
}

void
Preprocessor::removeClause(size_t idx)
{
    dead_[idx] = true; // occurrence entries become stale; filtered on use
}

void
Preprocessor::addClause(Clause c)
{
    clauses_.push_back(std::move(c));
    dead_.push_back(false);
    for (Lit l : clauses_.back())
        occur_[l.code()].push_back(clauses_.size() - 1);
}

bool
Preprocessor::assignLit(Lit l)
{
    uint32_t var = l.var();
    LBool want = l.negated() ? LBool::False : LBool::True;
    if (fixed_[var] != LBool::Undef) {
        if (fixed_[var] != want)
            unsat_ = true;
        return false;
    }
    fixed_[var] = want;
    gone_[var] = true;
    witnesses_.push_back({l, ~0u, {}});

    for (size_t idx : occur_[l.code()])
        if (!dead_[idx])
            removeClause(idx); // satisfied
    for (size_t idx : occur_[(~l).code()]) {
        if (dead_[idx])
            continue;
        Clause &c = clauses_[idx];
        c.erase(std::remove(c.begin(), c.end(), ~l), c.end());
        if (c.empty()) {
            unsat_ = true;
            return true;
        }
    }
    occur_[l.code()].clear();
    occur_[(~l).code()].clear();
    return true;
}

bool
Preprocessor::passUnits()
{
    bool changed = false;
    bool again = true;
    while (again && !unsat_) {
        again = false;
        for (size_t i = 0; i < clauses_.size() && !unsat_; ++i) {
            if (dead_[i] || clauses_[i].size() != 1)
                continue;
            Lit u = clauses_[i][0];
            removeClause(i);
            if (assignLit(u)) {
                ++stats_.unitsFixed;
                changed = true;
                again = true;
            }
        }
    }
    return changed;
}

bool
Preprocessor::passPures()
{
    // Recount from live clauses: occurrence lists may carry stale entries.
    std::vector<uint32_t> count(size_t(numVars_) * 2, 0);
    for (size_t i = 0; i < clauses_.size(); ++i) {
        if (dead_[i])
            continue;
        for (Lit l : clauses_[i])
            ++count[l.code()];
    }
    bool changed = false;
    for (uint32_t var = 0; var < numVars_ && !unsat_; ++var) {
        if (gone_[var])
            continue;
        uint32_t pos = count[size_t(var) * 2];
        uint32_t neg = count[size_t(var) * 2 + 1];
        if (pos == 0 && neg == 0)
            continue; // unconstrained, not pure
        if (pos != 0 && neg != 0)
            continue;
        if (assignLit(Lit::make(var, pos == 0))) {
            ++stats_.pureLiteralsFixed;
            changed = true;
        }
    }
    return changed;
}

uint64_t
Preprocessor::clauseSignature(const Clause &c) const
{
    uint64_t sig = 0;
    for (Lit l : c)
        sig |= uint64_t(1) << (l.var() & 63u);
    return sig;
}

namespace {

/** True when a (sorted) is a subset of b (sorted). */
bool
sortedSubset(const Clause &a, const Clause &b)
{
    size_t bi = 0;
    for (Lit l : a) {
        while (bi < b.size() && b[bi] < l)
            ++bi;
        if (bi == b.size() || !(b[bi] == l))
            return false;
        ++bi;
    }
    return true;
}

/** True when a \ {skip} is a subset of b (both sorted). */
bool
sortedSubsetExcept(const Clause &a, Lit skip, const Clause &b)
{
    size_t bi = 0;
    for (Lit l : a) {
        if (l == skip)
            continue;
        while (bi < b.size() && b[bi] < l)
            ++bi;
        if (bi == b.size() || !(b[bi] == l))
            return false;
        ++bi;
    }
    return true;
}

} // namespace

bool
Preprocessor::passSubsumption()
{
    // Keep clauses sorted (constructor sorts; strengthening preserves
    // order; assignLit removal preserves order).
    std::vector<uint64_t> sig(clauses_.size());
    for (size_t i = 0; i < clauses_.size(); ++i)
        if (!dead_[i])
            sig[i] = clauseSignature(clauses_[i]);

    bool changed = false;
    for (size_t i = 0; i < clauses_.size(); ++i) {
        if (dead_[i])
            continue;
        const Clause &c = clauses_[i];

        // Search through the occurrence list of c's rarest literal.
        Lit rare = c[0];
        for (Lit l : c)
            if (occur_[l.code()].size() < occur_[rare.code()].size())
                rare = l;

        // Forward subsumption: c ⊆ d drops d.
        for (size_t idx : occur_[rare.code()]) {
            if (idx == i || dead_[idx])
                continue;
            const Clause &d = clauses_[idx];
            if (d.size() < c.size() || (sig[i] & ~sig[idx]) != 0)
                continue;
            if (sortedSubset(c, d)) {
                removeClause(idx);
                ++stats_.subsumedClauses;
                changed = true;
            }
        }
        if (!config_.selfSubsumption)
            continue;

        // Self-subsuming resolution: c = {l} ∪ A, d ⊇ A ∪ {~l}
        // strengthens d to d \ {~l}.
        for (Lit l : c) {
            auto candidates = occur_[(~l).code()]; // copy: d mutates below
            for (size_t idx : candidates) {
                if (idx == i || dead_[idx])
                    continue;
                Clause &d = clauses_[idx];
                if (d.size() < c.size())
                    continue;
                if (!sortedSubsetExcept(c, l, d))
                    continue;
                if (std::find(d.begin(), d.end(), ~l) == d.end())
                    continue;
                d.erase(std::remove(d.begin(), d.end(), ~l), d.end());
                auto &olist = occur_[(~l).code()];
                olist.erase(std::remove(olist.begin(), olist.end(), idx),
                            olist.end());
                sig[idx] = clauseSignature(d);
                ++stats_.strengthenedClauses;
                changed = true;
                if (d.empty()) {
                    unsat_ = true;
                    return true;
                }
            }
        }
    }
    return changed;
}

bool
Preprocessor::probeConflicts(Lit start, uint64_t &budget) const
{
    std::vector<LBool> val = fixed_;
    std::deque<Lit> queue{start};
    while (!queue.empty()) {
        Lit p = queue.front();
        queue.pop_front();
        LBool want = p.negated() ? LBool::False : LBool::True;
        if (val[p.var()] != LBool::Undef) {
            if (val[p.var()] != want)
                return true;
            continue;
        }
        val[p.var()] = want;
        for (size_t idx : occur_[(~p).code()]) {
            if (dead_[idx])
                continue;
            const Clause &c = clauses_[idx];
            if (budget < c.size()) {
                budget = 0;
                return false; // out of budget: treat as no conflict
            }
            budget -= c.size();
            Lit unassigned;
            uint32_t free = 0;
            bool satisfied = false;
            for (Lit l : c) {
                LBool v = val[l.var()];
                if (v == LBool::Undef) {
                    ++free;
                    unassigned = l;
                    continue;
                }
                if ((v == LBool::True) != l.negated()) {
                    satisfied = true;
                    break;
                }
            }
            if (satisfied)
                continue;
            if (free == 0)
                return true;
            if (free == 1)
                queue.push_back(unassigned);
        }
    }
    return false;
}

bool
Preprocessor::passProbing()
{
    uint64_t budget = config_.probeBudget;
    bool changed = false;
    for (uint32_t var = 0; var < numVars_ && budget > 0 && !unsat_;
         ++var) {
        if (gone_[var])
            continue;
        for (int sign = 0; sign < 2 && !unsat_; ++sign) {
            Lit l = Lit::make(var, sign != 0);
            if (probeConflicts(l, budget)) {
                // l leads to conflict in all extensions: fix ~l.
                if (assignLit(~l)) {
                    ++stats_.failedLiterals;
                    changed = true;
                }
                break;
            }
            if (budget == 0)
                break;
        }
    }
    return changed;
}

bool
Preprocessor::passBve()
{
    bool changed = false;
    for (uint32_t var = 0; var < numVars_ && !unsat_; ++var) {
        if (gone_[var])
            continue;
        Lit pos = Lit::make(var, false);
        Lit neg = Lit::make(var, true);

        std::vector<size_t> pidx, nidx;
        for (size_t idx : occur_[pos.code()])
            if (!dead_[idx])
                pidx.push_back(idx);
        for (size_t idx : occur_[neg.code()])
            if (!dead_[idx])
                nidx.push_back(idx);
        if (pidx.empty() || nidx.empty())
            continue; // pure or absent: handled by passPures
        if (pidx.size() + nidx.size() > config_.bveOccurrenceLimit)
            continue;

        // Collect non-tautological resolvents.
        std::vector<Clause> resolvents;
        bool too_many = false;
        size_t limit =
            pidx.size() + nidx.size() + config_.bveGrowthLimit;
        for (size_t pi : pidx) {
            for (size_t ni : nidx) {
                Clause r;
                for (Lit l : clauses_[pi])
                    if (!(l == pos))
                        r.push_back(l);
                for (Lit l : clauses_[ni])
                    if (!(l == neg))
                        r.push_back(l);
                std::sort(r.begin(), r.end());
                r.erase(std::unique(r.begin(), r.end()), r.end());
                bool tautology = false;
                for (size_t k = 0; k + 1 < r.size(); ++k)
                    if (r[k + 1] == ~r[k])
                        tautology = true;
                if (tautology)
                    continue;
                resolvents.push_back(std::move(r));
                if (resolvents.size() > limit) {
                    too_many = true;
                    break;
                }
            }
            if (too_many)
                break;
        }
        if (too_many)
            continue;

        // Commit: save witnesses, drop occurrences, add resolvents.
        Witness w;
        w.var = var;
        for (size_t pi : pidx)
            w.clauses.push_back(clauses_[pi]);
        for (size_t ni : nidx)
            w.clauses.push_back(clauses_[ni]);
        witnesses_.push_back(std::move(w));

        for (size_t pi : pidx)
            removeClause(pi);
        for (size_t ni : nidx)
            removeClause(ni);
        occur_[pos.code()].clear();
        occur_[neg.code()].clear();
        gone_[var] = true;
        ++stats_.eliminatedVars;
        for (auto &r : resolvents) {
            if (r.empty()) {
                unsat_ = true;
                break;
            }
            addClause(std::move(r));
            ++stats_.resolventsAdded;
        }
        changed = true;
    }
    return changed;
}

void
Preprocessor::run()
{
    if (ran_)
        return;
    ran_ = true;
    for (uint32_t round = 0; round < config_.maxRounds && !unsat_;
         ++round) {
        bool changed = false;
        if (config_.unitPropagation)
            changed |= passUnits();
        if (config_.pureLiterals && !unsat_)
            changed |= passPures();
        if (config_.subsumption && !unsat_)
            changed |= passSubsumption();
        if (config_.unitPropagation && !unsat_)
            changed |= passUnits(); // strengthening can create units
        if (config_.failedLiteralProbing && !unsat_)
            changed |= passProbing();
        if (config_.variableElimination && !unsat_)
            changed |= passBve();
        ++stats_.rounds;
        if (!changed)
            break;
    }
    CnfFormula out = simplified();
    stats_.clausesAfter = out.numClauses();
    stats_.literalsAfter = out.numLiterals();
}

CnfFormula
Preprocessor::simplified() const
{
    CnfFormula out(numVars_);
    if (unsat_) {
        out.addClause(Clause{});
        return out;
    }
    for (size_t i = 0; i < clauses_.size(); ++i)
        if (!dead_[i])
            out.addClause(clauses_[i]);
    return out;
}

std::vector<bool>
Preprocessor::reconstructModel(std::vector<bool> model) const
{
    model.resize(numVars_, false);
    for (auto it = witnesses_.rbegin(); it != witnesses_.rend(); ++it) {
        const Witness &w = *it;
        if (w.var == ~0u) {
            model[w.lit.var()] = !w.lit.negated();
            continue;
        }
        // Eliminated variable: some saved clause may be falsified on its
        // non-var literals; set var to satisfy it.  BVE guarantees both
        // polarities are never simultaneously required.
        Lit pos = Lit::make(w.var, false);
        bool need_pos = false, need_neg = false;
        for (const Clause &c : w.clauses) {
            bool rest_satisfied = false;
            bool has_pos = false, has_neg = false;
            for (Lit l : c) {
                if (l == pos) {
                    has_pos = true;
                } else if (l == ~pos) {
                    has_neg = true;
                } else if (model[l.var()] != l.negated()) {
                    rest_satisfied = true;
                }
            }
            if (rest_satisfied)
                continue;
            if (has_pos)
                need_pos = true;
            if (has_neg)
                need_neg = true;
        }
        reasonAssert(!(need_pos && need_neg),
                     "BVE witness requires both polarities");
        if (need_pos)
            model[w.var] = true;
        else if (need_neg)
            model[w.var] = false;
    }
    return model;
}

CnfFormula
preprocessCnf(const CnfFormula &formula, PreprocessStats *stats,
              PreprocessConfig config)
{
    Preprocessor pre(formula, config);
    pre.run();
    if (stats)
        *stats = pre.stats();
    return pre.simplified();
}

} // namespace logic
} // namespace reason
