#include "logic/dpll.h"

#include <algorithm>

#include "util/logging.h"

namespace reason {
namespace logic {

DpllSolver::DpllSolver(const CnfFormula &formula) : formula_(formula)
{
    assigns_.assign(formula.numVars(), LBool::Undef);
}

LBool
DpllSolver::litValue(Lit l) const
{
    LBool v = assigns_[l.var()];
    if (v == LBool::Undef)
        return v;
    return l.negated() ? negate(v) : v;
}

bool
DpllSolver::propagateFrom(size_t from)
{
    // Naive unit propagation over the full clause list; adequate for the
    // small formulas DPLL is used on.
    (void)from;
    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto &clause : formula_.clauses()) {
            Lit unit;
            uint32_t free_count = 0;
            bool satisfied = false;
            for (const Lit &l : clause) {
                LBool v = litValue(l);
                if (v == LBool::True) {
                    satisfied = true;
                    break;
                }
                if (v == LBool::Undef) {
                    ++free_count;
                    unit = l;
                    if (free_count > 1)
                        break;
                }
            }
            if (satisfied)
                continue;
            if (free_count == 0)
                return false; // conflict
            if (free_count == 1) {
                assigns_[unit.var()] =
                    unit.negated() ? LBool::False : LBool::True;
                trail_.push_back(unit);
                ++stats_.propagations;
                changed = true;
            }
        }
    }
    return true;
}

bool
DpllSolver::assume(Lit l)
{
    if (litValue(l) == LBool::False)
        return false;
    if (litValue(l) == LBool::Undef) {
        assigns_[l.var()] = l.negated() ? LBool::False : LBool::True;
        trail_.push_back(l);
    }
    return propagateFrom(trail_.size() - 1);
}

void
DpllSolver::undoTo(size_t trail_size)
{
    while (trail_.size() > trail_size) {
        assigns_[trail_.back().var()] = LBool::Undef;
        trail_.pop_back();
    }
}

uint32_t
DpllSolver::lookaheadScore(Lit l)
{
    ++stats_.lookaheads;
    size_t mark = trail_.size();
    bool ok = assume(l);
    uint32_t forced =
        ok ? static_cast<uint32_t>(trail_.size() - mark) : ~0u;
    undoTo(mark);
    return forced;
}

Lit
DpllSolver::pickLookaheadLit()
{
    // Score each free variable by the product-ish combination of forced
    // assignments under both polarities (classic lookahead heuristic);
    // failed literals are propagated immediately by the caller.
    Lit best;
    uint64_t best_score = 0;
    for (uint32_t v = 0; v < formula_.numVars(); ++v) {
        if (assigns_[v] != LBool::Undef)
            continue;
        Lit pos = Lit::make(v, false);
        Lit neg = Lit::make(v, true);
        uint32_t sp = lookaheadScore(pos);
        uint32_t sn = lookaheadScore(neg);
        if (sp == ~0u && sn == ~0u)
            return pos; // both polarities fail: branch to expose conflict
        if (sp == ~0u)
            return neg; // failed literal: forced
        if (sn == ~0u)
            return pos;
        uint64_t score =
            uint64_t(sp) * uint64_t(sn) * 1024 + uint64_t(sp) + uint64_t(sn);
        if (!best.valid() || score > best_score) {
            best_score = score;
            best = sp >= sn ? pos : neg;
        }
    }
    return best;
}

bool
DpllSolver::allClausesSatisfied() const
{
    for (const auto &clause : formula_.clauses()) {
        bool sat = false;
        for (const Lit &l : clause) {
            if (litValue(l) == LBool::True) {
                sat = true;
                break;
            }
        }
        if (!sat)
            return false;
    }
    return true;
}

bool
DpllSolver::recurse()
{
    ++stats_.nodes;
    Lit branch = pickLookaheadLit();
    if (!branch.valid())
        return allClausesSatisfied();

    size_t mark = trail_.size();
    for (Lit l : {branch, ~branch}) {
        if (assume(l)) {
            if (recurse())
                return true;
        }
        undoTo(mark);
        ++stats_.backtracks;
    }
    return false;
}

SolveResult
DpllSolver::solve()
{
    trail_.clear();
    std::fill(assigns_.begin(), assigns_.end(), LBool::Undef);
    if (!propagateFrom(0))
        return SolveResult::Unsat;
    if (!recurse())
        return SolveResult::Unsat;
    model_.assign(formula_.numVars(), false);
    for (uint32_t v = 0; v < formula_.numVars(); ++v)
        model_[v] = (assigns_[v] == LBool::True);
    // Unconstrained variables default to false; verify.
    reasonAssert(formula_.evaluate(model_), "DPLL model must satisfy");
    return SolveResult::Sat;
}

CubeSplitter::CubeSplitter(const CnfFormula &formula,
                           uint32_t max_cube_depth)
    : formula_(formula), maxDepth_(max_cube_depth), splitter_(formula)
{
}

void
CubeSplitter::splitRecurse(std::vector<Cube> &out,
                           std::vector<Lit> &prefix, uint32_t depth)
{
    if (depth == maxDepth_) {
        out.push_back({prefix, false});
        return;
    }
    Lit branch = splitter_.pickLookaheadLit();
    if (!branch.valid()) {
        // Fully assigned by propagation: emit as-is.
        out.push_back({prefix, false});
        return;
    }
    for (Lit l : {branch, ~branch}) {
        size_t mark = splitter_.trail_.size();
        prefix.push_back(l);
        if (splitter_.assume(l)) {
            splitRecurse(out, prefix, depth + 1);
        } else {
            out.push_back({prefix, true});
        }
        splitter_.undoTo(mark);
        prefix.pop_back();
    }
}

std::vector<Cube>
CubeSplitter::split()
{
    std::vector<Cube> cubes;
    std::vector<Lit> prefix;
    if (!splitter_.propagateFrom(0)) {
        // Formula refuted by top-level propagation alone.
        cubes.push_back({{}, true});
        return cubes;
    }
    splitRecurse(cubes, prefix, 0);
    return cubes;
}

CubeAndConquerResult
cubeAndConquer(const CnfFormula &formula, uint32_t cube_depth)
{
    CubeAndConquerResult res;
    CubeSplitter splitter(formula, cube_depth);
    std::vector<Cube> cubes = splitter.split();
    res.numCubes = cubes.size();
    res.splitStats = splitter.stats();

    CdclSolver conquer(formula);
    res.result = SolveResult::Unsat;
    for (const Cube &cube : cubes) {
        if (cube.refuted) {
            ++res.refutedByLookahead;
            continue;
        }
        SolveResult r = conquer.solve(cube.lits);
        res.conquerStats.push_back(conquer.stats());
        if (r == SolveResult::Sat) {
            res.result = SolveResult::Sat;
            res.model = conquer.model();
            return res;
        }
    }
    return res;
}

} // namespace logic
} // namespace reason
