/**
 * @file
 * Two-input DAG regularization (REASON Sec. IV-C).
 *
 * Nodes with fan-in > 2 are recursively decomposed into balanced binary
 * trees of two-input nodes of the same operation, preserving semantics
 * exactly (weighted sums carry their weights on the first binary level).
 * The canonical two-input form is what the compiler maps onto the
 * depth-D tree PEs.
 */

#ifndef REASON_CORE_REGULARIZE_H
#define REASON_CORE_REGULARIZE_H

#include <cstddef>
#include "core/dag.h"

namespace reason {
namespace core {

/** Outcome metrics of regularization. */
struct RegularizeResult
{
    size_t nodesBefore = 0;
    size_t nodesAfter = 0;
    size_t maxFanInBefore = 0;
    size_t depthBefore = 0;
    size_t depthAfter = 0;
};

/**
 * Rewrite `dag` into canonical two-input form.
 * @return size metrics of the transformation.
 */
RegularizeResult regularizeTwoInput(Dag &dag);

} // namespace core
} // namespace reason

#endif // REASON_CORE_REGULARIZE_H
