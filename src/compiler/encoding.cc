#include "compiler/encoding.h"

#include <cstring>
#include <map>
#include <sstream>

#include "util/logging.h"
#include "util/numeric.h"

namespace reason {
namespace compiler {

namespace {

/** Append-only little-endian bit stream. */
class BitWriter
{
  public:
    void
    put(uint64_t value, uint32_t bits)
    {
        reasonAssert(bits <= 64, "field too wide");
        reasonAssert(bits == 64 || value < (uint64_t(1) << bits),
                     "value exceeds field width");
        for (uint32_t i = 0; i < bits; ++i) {
            if (bitPos_ == 0)
                bytes_.push_back(0);
            if ((value >> i) & 1)
                bytes_.back() |= uint8_t(1u << bitPos_);
            bitPos_ = (bitPos_ + 1) & 7;
            ++totalBits_;
        }
    }

    void
    putDouble(double v)
    {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        put(bits, 64);
    }

    std::vector<uint8_t> take() { return std::move(bytes_); }
    uint64_t totalBits() const { return totalBits_; }

  private:
    std::vector<uint8_t> bytes_;
    uint32_t bitPos_ = 0;
    uint64_t totalBits_ = 0;
};

/** Reader over a BitWriter stream. */
class BitReader
{
  public:
    explicit BitReader(const std::vector<uint8_t> &bytes) : bytes_(bytes) {}

    uint64_t
    get(uint32_t bits)
    {
        uint64_t v = 0;
        for (uint32_t i = 0; i < bits; ++i) {
            size_t byte = pos_ >> 3;
            reasonAssert(byte < bytes_.size(),
                         "bitstream truncated during decode");
            if ((bytes_[byte] >> (pos_ & 7)) & 1)
                v |= uint64_t(1) << i;
            ++pos_;
        }
        return v;
    }

    double
    getDouble()
    {
        uint64_t bits = get(64);
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

  private:
    const std::vector<uint8_t> &bytes_;
    uint64_t pos_ = 0;
};

/** Field widths derived from the program's machine dimensions. */
struct Layout
{
    uint32_t bankBits;
    uint32_t regBits;
    uint32_t opBits = 3;    // 6 TreeOps
    uint32_t blockBits;     // block-id references (depends lists)
    uint32_t peBits;
    uint32_t constBits;     // constant-pool index

    static Layout
    of(const Program &p, size_t const_pool)
    {
        Layout l;
        l.bankBits = std::max(1u, ceilLog2(std::max<uint64_t>(
                                      p.numBanks, 2)));
        l.regBits = std::max(1u, ceilLog2(std::max<uint64_t>(
                                     p.regsPerBank, 2)));
        l.blockBits = std::max(1u, ceilLog2(std::max<uint64_t>(
                                       p.blocks.size(), 2)));
        l.peBits = std::max(1u, ceilLog2(std::max<uint64_t>(p.numPes, 2)));
        l.constBits = std::max(1u, ceilLog2(std::max<uint64_t>(
                                       const_pool, 2)));
        return l;
    }
};

/** Deduplicated (a, b) affine constant pairs. */
struct ConstPool
{
    std::vector<std::pair<double, double>> entries;
    std::map<std::pair<double, double>, uint32_t> index;

    uint32_t
    intern(double a, double b)
    {
        auto key = std::make_pair(a, b);
        auto it = index.find(key);
        if (it != index.end())
            return it->second;
        uint32_t id = uint32_t(entries.size());
        entries.push_back(key);
        index.emplace(key, id);
        return id;
    }

    static ConstPool
    of(const Program &p)
    {
        ConstPool pool;
        for (const Block &blk : p.blocks)
            for (const OperandRef &op : blk.operands)
                if (op.valid)
                    pool.intern(op.a, op.b);
        return pool;
    }
};

/** Verify the fill-counter destination policy (required for Auto). */
bool
followsFillCounter(const Program &p)
{
    std::vector<uint32_t> fill(p.numBanks, 0);
    for (const Block &blk : p.blocks) {
        if (blk.dest.bank >= p.numBanks)
            return false;
        if (blk.dest.reg != fill[blk.dest.bank]++)
            return false;
    }
    return true;
}

constexpr uint32_t kMagic = 0x52534e56; // "RSNV"

} // namespace

EncodedProgram
encodeProgram(const Program &program, AddressMode mode)
{
    if (mode == AddressMode::Auto && !followsFillCounter(program))
        fatal("encodeProgram: auto address mode requires fill-counter "
              "destination registers (program was edited or hand-built); "
              "use AddressMode::Explicit");

    ConstPool pool = ConstPool::of(program);
    Layout layout = Layout::of(program, pool.entries.size());

    BitWriter w;
    // Header.
    w.put(kMagic, 32);
    w.put(mode == AddressMode::Auto ? 1 : 0, 1);
    w.put(program.treeDepth, 4);
    w.put(program.numPes, 10);
    w.put(program.numBanks, 12);
    w.put(program.regsPerBank, 12);
    w.put(program.inputs.size(), 24);
    w.put(program.blocks.size(), 24);
    w.put(pool.entries.size(), 24);
    w.put(program.rootBlock, 24);
    w.put(program.schedule.size(), 32);

    // Constant pool.
    for (auto [a, b] : pool.entries) {
        w.putDouble(a);
        w.putDouble(b);
    }

    // Input placements.
    for (const InputPlacement &in : program.inputs) {
        w.put(in.inputTag, 24);
        w.put(in.bank, layout.bankBits);
        w.put(in.reg, layout.regBits);
    }

    // Blocks.
    for (const Block &blk : program.blocks) {
        reasonAssert(blk.operands.size() == program.leavesPerPe() &&
                     blk.nodeOps.size() == program.nodesPerPe(),
                     "block shape must match machine dimensions");
        for (const OperandRef &op : blk.operands) {
            w.put(op.valid ? 1 : 0, 1);
            if (!op.valid)
                continue;
            w.put(op.fetch ? 1 : 0, 1);
            if (op.fetch) {
                w.put(op.bank, layout.bankBits);
                w.put(op.reg, layout.regBits);
            }
            w.put(pool.intern(op.a, op.b), layout.constBits);
        }
        for (TreeOp op : blk.nodeOps)
            w.put(uint64_t(op), layout.opBits);
        w.put(blk.dest.bank, layout.bankBits);
        if (mode == AddressMode::Explicit)
            w.put(blk.dest.reg, layout.regBits);
        // Compiler metadata (kept so decode is a true inverse).
        w.put(blk.dagRoot, 32);
        w.put(blk.fusedNodes, 16);
        w.put(blk.depends.size(), 16);
        for (uint32_t d : blk.depends)
            w.put(d, layout.blockBits);
    }

    // Schedule (delta-encoded cycles).
    uint64_t prev_cycle = 0;
    for (const IssueSlot &slot : program.schedule) {
        reasonAssert(slot.cycle >= prev_cycle,
                     "schedule must be cycle-sorted");
        w.put(slot.cycle - prev_cycle, 24);
        prev_cycle = slot.cycle;
        w.put(slot.pe, layout.peBits);
        w.put(slot.block, layout.blockBits);
    }

    EncodedProgram out;
    out.mode = mode;
    out.bits = w.totalBits();
    out.bytes = w.take();
    return out;
}

Program
decodeProgram(const EncodedProgram &encoded)
{
    BitReader r(encoded.bytes);
    if (r.get(32) != kMagic)
        fatal("decodeProgram: bad magic (not an encoded REASON program)");
    bool auto_mode = r.get(1) != 0;

    Program p;
    p.treeDepth = uint32_t(r.get(4));
    p.numPes = uint32_t(r.get(10));
    p.numBanks = uint32_t(r.get(12));
    p.regsPerBank = uint32_t(r.get(12));
    size_t num_inputs = r.get(24);
    size_t num_blocks = r.get(24);
    size_t num_consts = r.get(24);
    p.rootBlock = uint32_t(r.get(24));
    size_t num_slots = r.get(32);

    std::vector<std::pair<double, double>> pool(num_consts);
    for (auto &[a, b] : pool) {
        a = r.getDouble();
        b = r.getDouble();
    }

    // Layout depends only on decoded dimensions.
    Program dims = p;
    dims.blocks.resize(num_blocks);
    Layout layout = Layout::of(dims, num_consts);

    p.inputs.resize(num_inputs);
    for (InputPlacement &in : p.inputs) {
        in.inputTag = uint32_t(r.get(24));
        in.bank = uint16_t(r.get(layout.bankBits));
        in.reg = uint16_t(r.get(layout.regBits));
    }

    std::vector<uint32_t> fill(p.numBanks, 0);
    p.blocks.resize(num_blocks);
    for (Block &blk : p.blocks) {
        blk.operands.resize(p.leavesPerPe());
        for (OperandRef &op : blk.operands) {
            op.valid = r.get(1) != 0;
            if (!op.valid)
                continue;
            op.fetch = r.get(1) != 0;
            if (op.fetch) {
                op.bank = uint16_t(r.get(layout.bankBits));
                op.reg = uint16_t(r.get(layout.regBits));
            }
            size_t idx = r.get(layout.constBits);
            reasonAssert(idx < pool.size(), "constant index out of range");
            op.a = pool[idx].first;
            op.b = pool[idx].second;
        }
        blk.nodeOps.resize(p.nodesPerPe());
        for (TreeOp &op : blk.nodeOps)
            op = TreeOp(r.get(layout.opBits));
        blk.dest.bank = uint16_t(r.get(layout.bankBits));
        blk.dest.reg = auto_mode ? uint16_t(fill[blk.dest.bank]++)
                                 : uint16_t(r.get(layout.regBits));
        blk.dagRoot = core::NodeId(r.get(32));
        blk.fusedNodes = uint32_t(r.get(16));
        blk.depends.resize(r.get(16));
        for (uint32_t &d : blk.depends)
            d = uint32_t(r.get(layout.blockBits));
    }

    uint64_t cycle = 0;
    p.schedule.resize(num_slots);
    for (IssueSlot &slot : p.schedule) {
        cycle += r.get(24);
        slot.cycle = cycle;
        slot.pe = uint32_t(r.get(layout.peBits));
        slot.block = uint32_t(r.get(layout.blockBits));
    }
    return p;
}

EncodingSizeReport
sizeReport(const Program &program, AddressMode mode)
{
    ConstPool pool = ConstPool::of(program);
    Layout layout = Layout::of(program, pool.entries.size());

    EncodingSizeReport rep;
    rep.constPoolEntries = pool.entries.size();
    rep.headerBits = 32 + 1 + 4 + 10 + 12 + 12 + 24 + 24 + 24 + 24 + 32;
    rep.constPoolBits = uint64_t(pool.entries.size()) * 128;
    rep.inputPlacementBits =
        uint64_t(program.inputs.size()) *
        (24 + layout.bankBits + layout.regBits);
    for (const Block &blk : program.blocks) {
        for (const OperandRef &op : blk.operands) {
            rep.operandBits += 1;
            if (!op.valid)
                continue;
            rep.operandBits += 1 + layout.constBits;
            if (op.fetch)
                rep.operandBits += layout.bankBits + layout.regBits;
        }
        rep.nodeOpBits += uint64_t(blk.nodeOps.size()) * layout.opBits;
        rep.destBits += layout.bankBits;
        if (mode == AddressMode::Explicit)
            rep.destBits += layout.regBits;
        rep.metadataBits +=
            32 + 16 + 16 + uint64_t(blk.depends.size()) * layout.blockBits;
    }
    rep.scheduleBits = uint64_t(program.schedule.size()) *
                       (24 + layout.peBits + layout.blockBits);
    rep.totalBits = rep.headerBits + rep.constPoolBits +
                    rep.inputPlacementBits + rep.operandBits +
                    rep.nodeOpBits + rep.destBits + rep.scheduleBits +
                    rep.metadataBits;
    return rep;
}

double
autoAddressSaving(const Program &program)
{
    auto expl = sizeReport(program, AddressMode::Explicit);
    auto autom = sizeReport(program, AddressMode::Auto);
    // The saving claim concerns the per-instruction stream, not the
    // shared header/pool: compare block-local bits.
    uint64_t expl_instr = expl.operandBits + expl.nodeOpBits +
                          expl.destBits;
    uint64_t auto_instr = autom.operandBits + autom.nodeOpBits +
                          autom.destBits;
    if (expl_instr == 0)
        return 0.0;
    return double(expl_instr - auto_instr) / double(expl_instr);
}

std::string
disassemble(const Program &program)
{
    std::ostringstream os;
    os << "; reason vliw program: depth " << program.treeDepth << ", "
       << program.numPes << " PEs, " << program.numBanks << " banks x "
       << program.regsPerBank << " regs\n";
    for (const InputPlacement &in : program.inputs)
        os << "; input %" << in.inputTag << " -> b" << in.bank << ".r"
           << in.reg << "\n";

    // Index issue slots by block for the listing.
    std::vector<const IssueSlot *> slot_of(program.blocks.size(), nullptr);
    for (const IssueSlot &slot : program.schedule)
        if (slot.block < slot_of.size())
            slot_of[slot.block] = &slot;

    for (size_t b = 0; b < program.blocks.size(); ++b) {
        const Block &blk = program.blocks[b];
        os << "B" << b << ":";
        if (slot_of[b])
            os << "  @cycle " << slot_of[b]->cycle << " pe "
               << slot_of[b]->pe;
        os << "\n    leaves:";
        for (const OperandRef &op : blk.operands) {
            if (!op.valid) {
                os << " -";
                continue;
            }
            os << " ";
            bool affine = op.a != 1.0 || op.b != 0.0;
            if (op.fetch) {
                if (affine)
                    os << op.a << "*";
                os << "b" << op.bank << ".r" << op.reg;
                if (op.b != 0.0)
                    os << "+" << op.b;
            } else {
                os << "imm " << op.b;
            }
        }
        os << "\n    tree:  ";
        for (size_t k = 0; k < blk.nodeOps.size(); ++k)
            os << (k ? " " : "") << treeOpName(blk.nodeOps[k]);
        os << "\n    dest:   b" << blk.dest.bank << ".r" << blk.dest.reg
           << "  (dag %" << blk.dagRoot << ", " << blk.fusedNodes
           << " fused)\n";
    }
    os << "; root = B" << program.rootBlock << ", schedule length "
       << program.schedule.size() << "\n";
    return os.str();
}

} // namespace compiler
} // namespace reason
