/**
 * @file
 * Stress and failure-injection tests: tiny FIFOs, starved SRAM, slow
 * DMA, degenerate hardware shapes, determinism across repeated runs,
 * and large-input robustness.  Functional results must survive every
 * resource squeeze — only timing may degrade.
 */

#include <gtest/gtest.h>

#include "arch/accelerator.h"
#include "arch/symbolic.h"
#include "compiler/compile.h"
#include "core/builders.h"
#include "dag_test_util.h"
#include "logic/solver.h"
#include "util/numeric.h"
#include "util/rng.h"

using namespace reason;
using namespace reason::arch;

TEST(Stress, TinyFifoPreservesBcpCorrectness)
{
    Rng rng(1);
    logic::CnfFormula f = logic::randomKSat(rng, 30, 100, 3);
    ArchConfig normal;
    ArchConfig squeezed = normal;
    squeezed.bcpFifoDepth = 1; // every burst of implications overflows

    BcpPipeline p1(f, normal);
    BcpPipeline p2(f, squeezed);
    for (uint32_t v = 0; v < 8; ++v) {
        logic::Lit d = logic::Lit::make(v, false);
        if (p1.value(v) != logic::LBool::Undef)
            continue;
        BcpResult r1 = p1.decide(d);
        BcpResult r2 = p2.decide(d);
        ASSERT_EQ(r1.conflict, r2.conflict);
        if (r1.conflict)
            break;
        for (uint32_t w = 0; w < f.numVars(); ++w)
            EXPECT_EQ(p1.value(w), p2.value(w));
    }
    // The squeeze must be visible in the stall counters, not results.
    EXPECT_GE(p2.events().get("fifo_overflow_stalls"), 0u);
}

TEST(Stress, StarvedSramOnlyCostsTime)
{
    Rng rng(2);
    logic::CnfFormula f = logic::randomKSat(rng, 40, 170, 3);
    ArchConfig normal;
    ArchConfig starved = normal;
    starved.sramBytes = 128;
    starved.dmaLatencyCycles = 200;

    BcpPipeline fast(f, normal);
    BcpPipeline slow(f, starved);
    BcpResult r1 = fast.decide(logic::Lit::make(0, false));
    BcpResult r2 = slow.decide(logic::Lit::make(0, false));
    EXPECT_EQ(r1.conflict, r2.conflict);
    EXPECT_EQ(r1.implications.size(), r2.implications.size());
    if (!r1.implications.empty())
        EXPECT_GT(r2.cycles, r1.cycles)
            << "misses with slow DMA must cost cycles";
}

TEST(Stress, MinimalHardwareShapeStillCorrect)
{
    Rng rng(3);
    core::Dag dag = testutil::randomDag(rng, 6, 60, 4);
    auto inputs = testutil::randomInputs(rng, 6);
    double want = dag.evaluateRoot(inputs);

    compiler::TargetConfig t;
    t.treeDepth = 1; // two leaves, one node per PE
    t.numPes = 1;
    t.numBanks = 2;
    t.regsPerBank = 4; // forces heavy spilling
    ArchConfig cfg;
    cfg.treeDepth = 1;
    cfg.numPes = 1;
    cfg.numBanks = 2;
    cfg.regsPerBank = 4;
    compiler::Program prog = compiler::compile(dag, t);
    Accelerator accel(cfg);
    ExecutionResult r = accel.run(prog, inputs);
    EXPECT_TRUE(nearlyEqual(want, r.rootValue, 1e-9, 1e-12));
    EXPECT_GT(r.events.get("spill_writes"), 0u);
}

TEST(Stress, SingleBankPortSerializesButComputes)
{
    Rng rng(4);
    core::Dag dag = testutil::randomDag(rng, 10, 80, 4);
    auto inputs = testutil::randomInputs(rng, 10);
    ArchConfig wide;
    ArchConfig narrow = wide;
    narrow.bankReadPorts = 1;
    compiler::Program prog =
        compiler::compile(dag, wide.compilerTarget());
    ExecutionResult r_wide = Accelerator(wide).run(prog, inputs, true);
    ExecutionResult r_narrow =
        Accelerator(narrow).run(prog, inputs, true);
    EXPECT_DOUBLE_EQ(r_wide.rootValue, r_narrow.rootValue);
    EXPECT_GE(r_narrow.cycles, r_wide.cycles);
}

TEST(Stress, RepeatedRunsAreDeterministic)
{
    Rng rng(5);
    core::Dag dag = testutil::randomDag(rng, 8, 120, 5);
    auto inputs = testutil::randomInputs(rng, 8);
    ArchConfig cfg;
    compiler::Program prog =
        compiler::compile(dag, cfg.compilerTarget());
    Accelerator accel(cfg);
    ExecutionResult first = accel.run(prog, inputs);
    for (int i = 0; i < 3; ++i) {
        ExecutionResult again = accel.run(prog, inputs);
        EXPECT_DOUBLE_EQ(again.rootValue, first.rootValue);
        EXPECT_EQ(again.cycles, first.cycles);
        EXPECT_EQ(again.events.get("regfile_reads"),
                  first.events.get("regfile_reads"));
    }
}

TEST(Stress, SolverDeterministicAcrossRuns)
{
    Rng rng(6);
    logic::CnfFormula f = logic::randomKSat(rng, 60, 255, 3);
    logic::SolverStats s1, s2;
    logic::SolveResult r1 = logic::solveCnf(f, nullptr, &s1);
    logic::SolveResult r2 = logic::solveCnf(f, nullptr, &s2);
    EXPECT_EQ(r1, r2);
    EXPECT_EQ(s1.conflicts, s2.conflicts);
    EXPECT_EQ(s1.propagations, s2.propagations);
}

TEST(Stress, LargeDagCompilesAndMatches)
{
    Rng rng(7);
    core::Dag dag = testutil::randomDag(rng, 16, 1500, 5);
    auto inputs = testutil::randomInputs(rng, 16, 0.5, 1.1);
    double want = dag.evaluateRoot(inputs);
    ArchConfig cfg;
    compiler::Program prog =
        compiler::compile(dag, cfg.compilerTarget());
    EXPECT_GT(prog.blocks.size(), 100u);
    ExecutionResult r = Accelerator(cfg).run(prog, inputs);
    EXPECT_TRUE(nearlyEqual(want, r.rootValue, 1e-8, 1e-9))
        << want << " vs " << r.rootValue;
    EXPECT_GT(r.peUtilization, 0.05);
}

TEST(Stress, DeepUnbalancedChain)
{
    // A 200-deep alternating chain exercises block splitting and
    // pipeline spacing on the critical path.
    core::Dag dag;
    core::NodeId acc = dag.addInput();
    core::NodeId one = dag.addConst(1.0001);
    for (int i = 0; i < 200; ++i) {
        acc = (i % 2 == 0)
                  ? dag.addOp(core::DagOp::Product, {acc, one})
                  : dag.addOp(core::DagOp::Sum, {acc, one});
    }
    dag.markRoot(acc);
    double want = dag.evaluateRoot({0.5});
    ArchConfig cfg;
    compiler::Program prog =
        compiler::compile(dag, cfg.compilerTarget());
    ExecutionResult r = Accelerator(cfg).run(prog, {0.5});
    EXPECT_TRUE(nearlyEqual(want, r.rootValue, 1e-9, 1e-12));
    // Chains cannot use more than one PE effectively.
    EXPECT_LT(r.peUtilization, 0.5);
}

TEST(Stress, ConflictBudgetExhaustionIsUnknownNotWrong)
{
    logic::SolverConfig cfg;
    cfg.conflictBudget = 3;
    logic::CdclSolver solver(logic::pigeonhole(7), cfg);
    EXPECT_EQ(solver.solve(), logic::SolveResult::Unknown);
}

TEST(Stress, AcceleratorSolveAgreesUnderTinyMemory)
{
    Rng rng(8);
    logic::CnfFormula f = logic::randomKSat(rng, 24, 100, 3);
    logic::SolveResult expect = logic::solveCnf(f);
    ArchConfig cfg;
    cfg.sramBytes = 256;
    cfg.bcpFifoDepth = 2;
    SymbolicTiming t = solveOnAccelerator(f, cfg, 3);
    EXPECT_EQ(t.result, expect);
}
