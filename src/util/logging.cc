#include "util/logging.h"

#include <cstdio>
#include <cstdlib>

namespace reason {

namespace {
LogLevel g_level = LogLevel::Info;

void
vreport(const char *tag, const char *fmt, va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
inform(const char *fmt, ...)
{
    if (g_level > LogLevel::Info)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    if (g_level > LogLevel::Warn)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
debug(const char *fmt, ...)
{
    if (g_level > LogLevel::Debug)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("debug", fmt, ap);
    va_end(ap);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
panicAssert(const char *expr, const char *file, int line,
            const std::string &msg)
{
    panic("assertion '%s' failed at %s:%d: %s", expr, file, line,
          msg.c_str());
}

} // namespace reason
