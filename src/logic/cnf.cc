#include "logic/cnf.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/logging.h"
#include "util/rng.h"

namespace reason {
namespace logic {

Lit
Lit::fromDimacs(int64_t d)
{
    reasonAssert(d != 0, "DIMACS literal must be nonzero");
    uint32_t var = static_cast<uint32_t>((d > 0 ? d : -d) - 1);
    return make(var, d < 0);
}

int64_t
Lit::toDimacs() const
{
    int64_t v = static_cast<int64_t>(var()) + 1;
    return negated() ? -v : v;
}

std::string
Lit::toString() const
{
    return (negated() ? "~x" : "x") + std::to_string(var());
}

size_t
CnfFormula::numLiterals() const
{
    size_t n = 0;
    for (const auto &c : clauses_)
        n += c.size();
    return n;
}

void
CnfFormula::ensureVars(uint32_t n)
{
    numVars_ = std::max(numVars_, n);
}

void
CnfFormula::addClause(Clause c)
{
    for (const Lit &l : c)
        ensureVars(l.var() + 1);
    clauses_.push_back(std::move(c));
}

void
CnfFormula::addClause(std::initializer_list<int64_t> dimacs_lits)
{
    Clause c;
    c.reserve(dimacs_lits.size());
    for (int64_t d : dimacs_lits)
        c.push_back(Lit::fromDimacs(d));
    addClause(std::move(c));
}

bool
CnfFormula::evaluate(const std::vector<bool> &assignment) const
{
    reasonAssert(assignment.size() >= numVars_,
                 "assignment smaller than variable count");
    for (const auto &clause : clauses_) {
        bool sat = false;
        for (const Lit &l : clause) {
            if (assignment[l.var()] != l.negated()) {
                sat = true;
                break;
            }
        }
        if (!sat)
            return false;
    }
    return true;
}

bool
CnfFormula::bruteForceSat(std::vector<bool> *model) const
{
    reasonAssert(numVars_ <= 24, "brute force limited to 24 variables");
    std::vector<bool> assign(numVars_, false);
    uint64_t limit = uint64_t(1) << numVars_;
    for (uint64_t m = 0; m < limit; ++m) {
        for (uint32_t v = 0; v < numVars_; ++v)
            assign[v] = (m >> v) & 1;
        if (evaluate(assign)) {
            if (model)
                *model = assign;
            return true;
        }
    }
    return false;
}

uint64_t
CnfFormula::bruteForceCountModels() const
{
    reasonAssert(numVars_ <= 24, "brute force limited to 24 variables");
    std::vector<bool> assign(numVars_, false);
    uint64_t limit = uint64_t(1) << numVars_;
    uint64_t count = 0;
    for (uint64_t m = 0; m < limit; ++m) {
        for (uint32_t v = 0; v < numVars_; ++v)
            assign[v] = (m >> v) & 1;
        if (evaluate(assign))
            ++count;
    }
    return count;
}

std::string
CnfFormula::toDimacs() const
{
    std::ostringstream os;
    os << "p cnf " << numVars_ << " " << clauses_.size() << "\n";
    for (const auto &clause : clauses_) {
        for (const Lit &l : clause)
            os << l.toDimacs() << " ";
        os << "0\n";
    }
    return os.str();
}

CnfFormula
CnfFormula::parseDimacs(const std::string &text)
{
    std::istringstream is(text);
    std::string token;
    CnfFormula f;
    bool header_seen = false;
    Clause current;
    while (is >> token) {
        if (token == "c") {
            std::string rest;
            std::getline(is, rest);
            continue;
        }
        if (token == "p") {
            std::string kind;
            uint32_t nv = 0;
            uint64_t nc = 0;
            if (!(is >> kind >> nv >> nc) || kind != "cnf")
                fatal("malformed DIMACS header");
            f.ensureVars(nv);
            header_seen = true;
            continue;
        }
        int64_t d = 0;
        try {
            d = std::stoll(token);
        } catch (...) {
            fatal("malformed DIMACS token '%s'", token.c_str());
        }
        if (d == 0) {
            f.addClause(current);
            current.clear();
        } else {
            current.push_back(Lit::fromDimacs(d));
        }
    }
    if (!current.empty())
        f.addClause(current);
    if (!header_seen)
        warn("DIMACS input had no 'p cnf' header");
    return f;
}

CnfFormula
randomKSat(Rng &rng, uint32_t num_vars, uint32_t num_clauses, uint32_t k)
{
    reasonAssert(k >= 1 && k <= num_vars,
                 "clause width must be in [1, num_vars]");
    CnfFormula f(num_vars);
    for (uint32_t i = 0; i < num_clauses; ++i) {
        std::set<uint32_t> vars;
        while (vars.size() < k)
            vars.insert(
                static_cast<uint32_t>(rng.uniformInt(0, num_vars - 1)));
        Clause c;
        for (uint32_t v : vars)
            c.push_back(Lit::make(v, rng.bernoulli(0.5)));
        f.addClause(std::move(c));
    }
    return f;
}

CnfFormula
plantedKSat(Rng &rng, uint32_t num_vars, uint32_t num_clauses, uint32_t k,
            std::vector<bool> *hidden)
{
    std::vector<bool> model(num_vars);
    for (uint32_t v = 0; v < num_vars; ++v)
        model[v] = rng.bernoulli(0.5);
    CnfFormula f = plantedKSatWithModel(rng, model, num_clauses, k);
    if (hidden)
        *hidden = std::move(model);
    return f;
}

CnfFormula
plantedKSatWithModel(Rng &rng, const std::vector<bool> &model,
                     uint32_t num_clauses, uint32_t k)
{
    uint32_t num_vars = static_cast<uint32_t>(model.size());
    reasonAssert(k >= 1 && k <= num_vars,
                 "clause width must be in [1, num_vars]");
    CnfFormula f(num_vars);
    for (uint32_t i = 0; i < num_clauses; ++i) {
        std::set<uint32_t> vars;
        while (vars.size() < k)
            vars.insert(
                static_cast<uint32_t>(rng.uniformInt(0, num_vars - 1)));
        Clause c;
        for (uint32_t v : vars)
            c.push_back(Lit::make(v, rng.bernoulli(0.5)));
        // Force satisfaction under the hidden model: if no literal agrees,
        // flip one at random.
        bool sat = false;
        for (const Lit &l : c)
            sat |= (model[l.var()] != l.negated());
        if (!sat) {
            size_t idx = static_cast<size_t>(
                rng.uniformInt(0, static_cast<int64_t>(c.size()) - 1));
            c[idx] = ~c[idx];
        }
        f.addClause(std::move(c));
    }
    return f;
}

CnfFormula
pigeonhole(uint32_t holes)
{
    // Variables p(i, j): pigeon i sits in hole j; i in [0, holes], j in
    // [0, holes).  Clauses: every pigeon sits somewhere; no two pigeons
    // share a hole.
    uint32_t pigeons = holes + 1;
    auto var = [holes](uint32_t i, uint32_t j) { return i * holes + j; };
    CnfFormula f(pigeons * holes);
    for (uint32_t i = 0; i < pigeons; ++i) {
        Clause c;
        for (uint32_t j = 0; j < holes; ++j)
            c.push_back(Lit::make(var(i, j), false));
        f.addClause(std::move(c));
    }
    for (uint32_t j = 0; j < holes; ++j)
        for (uint32_t i1 = 0; i1 < pigeons; ++i1)
            for (uint32_t i2 = i1 + 1; i2 < pigeons; ++i2)
                f.addClause({Lit::make(var(i1, j), true),
                             Lit::make(var(i2, j), true)});
    return f;
}

} // namespace logic
} // namespace reason
