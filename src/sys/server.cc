#include "sys/server.h"

#if REASON_HAS_SOCKETS

#include <algorithm>
#include <cerrno>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace reason {
namespace sys {

SocketServer::SocketServer(ReasonEngine &engine,
                           std::shared_ptr<const pc::FlatCircuit>
                               lowering,
                           const ServerOptions &options)
    : engine_(engine), lowering_(std::move(lowering)),
      options_(options)
{
}

SocketServer::~SocketServer()
{
    stop();
}

bool
SocketServer::start(std::string *error)
{
    const auto fail = [&](const char *msg) {
        if (error != nullptr)
            *error = msg;
        if (listenFd_ >= 0) {
            ::close(listenFd_);
            listenFd_ = -1;
        }
        return false;
    };
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return fail("socket() failed");
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.port);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return fail("cannot bind loopback port");
    if (::listen(listenFd_, 64) != 0)
        return fail("listen() failed");
    socklen_t addr_len = sizeof(addr);
    ::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                  &addr_len);
    port_ = ntohs(addr.sin_port);
    acceptThread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
SocketServer::acceptLoop()
{
    while (!stopping_.load(std::memory_order_acquire)) {
        // Poll with a timeout so stop() is observed promptly even
        // when no connection ever arrives.
        pollfd pfd{listenFd_, POLLIN, 0};
        const int rc = ::poll(&pfd, 1, 100);
        if (rc <= 0)
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        netPrepareSocket(fd);
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        if (options_.idleTimeoutMs > 0)
            netSetRecvTimeoutMs(fd, options_.idleTimeoutMs);
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_.load(std::memory_order_acquire)) {
            ::close(fd);
            break;
        }
        ++stats_.connections;
        activeFds_.push_back(fd);
        // Handler threads are joinable and tracked — graceful drain
        // must be able to wait for every in-flight answer.
        handlers_.emplace_back([this, fd] { handleConnection(fd); });
    }
}

void
SocketServer::handleConnection(int fd)
{
    try {
        Session session = engine_.createSession(lowering_);
        connectionLoop(fd, session);
    } catch (const std::exception &) {
        // One connection must never take the server down: treat any
        // handler failure (e.g. allocation) as a dropped connection.
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        activeFds_.erase(std::remove(activeFds_.begin(),
                                     activeFds_.end(), fd),
                         activeFds_.end());
    }
    ::close(fd);
}

void
SocketServer::connectionLoop(int fd, Session &session)
{
    wire::FrameDecoder decoder;
    std::vector<uint8_t> outbuf;
    std::vector<uint8_t> inbuf(1 << 16);
    uint64_t client_id = 0;
    bool open = true;
    while (open) {
        const long n = netRecv(fd, inbuf.data(), inbuf.size());
        if (n == 0)
            break; // orderly EOF
        if (n < 0) {
            if (netRecvTimedOut())
                break; // idle-connection timeout: drop the peer
            break;     // transport error / injected reset
        }
        decoder.feed(inbuf.data(), size_t(n));
        for (;;) {
            wire::Frame frame;
            const auto status = decoder.next(&frame);
            if (status == wire::FrameDecoder::Status::NeedMore)
                break;
            if (status == wire::FrameDecoder::Status::Malformed) {
                // Framing is lost (decoder.poisonReason() says which
                // check failed); the only safe move is to drop.
                open = false;
                break;
            }
            outbuf.clear();
            if (frame.type == wire::FrameType::Hello) {
                // Always ack with our own version; on mismatch close
                // right after, so the client sees an explicit
                // version error instead of a mute disconnect.
                wire::appendHelloAck(outbuf);
                if (frame.helloVersion != wire::kProtocolVersion) {
                    netSendAll(fd, outbuf.data(), outbuf.size());
                    std::lock_guard<std::mutex> lock(mutex_);
                    ++stats_.versionRejects;
                    return;
                }
                client_id = frame.helloClientId;
            } else if (frame.type == wire::FrameType::Ping) {
                wire::appendPong(outbuf, frame.pingToken);
            } else if (frame.type == wire::FrameType::Submit) {
                handleSubmit(session, frame.submit, client_id,
                             outbuf);
            } else {
                open = false; // clients never send HelloAck/Result
                break;
            }
            if (!netSendAll(fd, outbuf.data(), outbuf.size())) {
                open = false;
                break;
            }
        }
    }
}

void
SocketServer::handleSubmit(Session &session,
                           const wire::SubmitFrame &submit,
                           uint64_t clientId,
                           std::vector<uint8_t> &out)
{
    if (clientId != 0) {
        // Idempotent retry: a reconnecting client re-sends ids it
        // never saw answers for.  Replaying the cached bytes keeps
        // the answer byte-identical without re-execution.
        std::lock_guard<std::mutex> lock(mutex_);
        auto cit = duplicateCaches_.find(clientId);
        if (cit != duplicateCaches_.end()) {
            auto rit = cit->second.results.find(submit.id);
            if (rit != cit->second.results.end()) {
                ++stats_.duplicatesSuppressed;
                out.insert(out.end(), rit->second.begin(),
                           rit->second.end());
                return;
            }
        }
    }

    wire::ResultFrame result;
    result.id = submit.id;
    result.error = wire::validateSubmit(submit);
    if (result.error == 0 && options_.maxBudget >= 0.0 &&
        submit.budget > options_.maxBudget)
        result.error = REASON_ERR_BAD_BUDGET;
    const bool approx =
        submit.mode == uint32_t(REASON_MODE_APPROX);
    if (result.error == 0) {
        // Rows ride the engine individually so cross-request
        // coalescing applies; outputs keep submit order.  The wire
        // deadline is relative — exactly what the submit overload
        // anchors against the server's steady clock.
        std::vector<RequestHandle> handles;
        handles.reserve(submit.rows.size());
        for (const auto &row : submit.rows)
            handles.push_back(session.submit(row, submit.budget,
                                             submit.deadlineNs));
        result.tier = approx ? 1 : 0;
        for (RequestHandle &h : handles) {
            const auto r = session.wait(h);
            if (r->error != REASON_OK && result.error == 0)
                result.error = r->error;
            if (result.error != 0)
                continue;
            result.values.push_back(r->outputs[0]);
            if (!approx)
                continue;
            // Approximate tier with budget 0 runs the exact path:
            // the certified interval degenerates to the point answer.
            if (r->boundLo.empty()) {
                result.boundLo.push_back(r->outputs[0]);
                result.boundHi.push_back(r->outputs[0]);
            } else {
                result.boundLo.push_back(r->boundLo[0]);
                result.boundHi.push_back(r->boundHi[0]);
            }
        }
    }
    if (result.error != 0) {
        result.tier = 0;
        result.values.clear();
        result.boundLo.clear();
        result.boundHi.clear();
    }
    wire::appendResult(out, result);

    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.submits;
    if (clientId != 0 && result.error == 0 &&
        options_.duplicateCacheCap > 0) {
        // Only successful answers are cached: an expired or rejected
        // query must genuinely re-execute when the client retries.
        DuplicateCache &cache = duplicateCaches_[clientId];
        if (cache.results.emplace(submit.id, out).second) {
            cache.order.push_back(submit.id);
            while (cache.order.size() > options_.duplicateCacheCap) {
                cache.results.erase(cache.order.front());
                cache.order.pop_front();
            }
        }
    }
}

bool
SocketServer::stop()
{
    if (stopped_.exchange(true))
        return true;
    stopping_.store(true, std::memory_order_release);
    // Drain first: admission closes (REASON_ERR_SHUTTING_DOWN),
    // queued work finishes within the deadline, the rest expires.
    // In-flight connection handlers are still blocked in wait() and
    // receive their answers as part of this.
    const bool clean = engine_.drain(options_.drainDeadlineNs);
    // Wake handlers blocked in recv: SHUT_RD delivers EOF without
    // tearing down writes still flushing an answer.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (int fd : activeFds_)
            ::shutdown(fd, SHUT_RD);
    }
    if (acceptThread_.joinable())
        acceptThread_.join();
    // The accept loop has exited, so handlers_ is stable now.
    std::vector<std::thread> handlers;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        handlers.swap(handlers_);
    }
    for (std::thread &t : handlers)
        if (t.joinable())
            t.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    return clean;
}

ServerStats
SocketServer::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace sys
} // namespace reason

#endif // REASON_HAS_SOCKETS
