/**
 * @file
 * Property tests for the DPLL solver and both compilation routes.
 *
 * Over randomized corpora (mixed clause lengths, planted instances,
 * pigeonhole UNSAT cores) the tests assert the solver's contracts
 * directly: every returned model satisfies the formula, SAT/UNSAT
 * verdicts match brute-force enumeration, model counts through the
 * d-DNNF compiler match brute force, and unsatisfiable inputs compile
 * to a constant-false circuit on both the heap-Dag route and the
 * direct-flat route.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "logic/cnf.h"
#include "logic/dpll.h"
#include "logic/knowledge.h"
#include "pc/from_logic.h"
#include "util/rng.h"

namespace reason {
namespace logic {
namespace {

/** Random formula with clause lengths mixed in [1, 4]. */
CnfFormula
mixedRandomCnf(uint32_t num_vars, uint32_t num_clauses, Rng &rng)
{
    CnfFormula f;
    f.ensureVars(num_vars);
    for (uint32_t c = 0; c < num_clauses; ++c) {
        uint32_t len = uint32_t(rng.uniformInt(1, 4));
        Clause clause;
        for (uint32_t i = 0; i < len; ++i) {
            uint32_t var = uint32_t(rng.uniformInt(0, num_vars - 1));
            clause.push_back(Lit::make(var, rng.bernoulli(0.5)));
        }
        f.addClause(clause);
    }
    return f;
}

TEST(DpllProp, ModelsSatisfyFormula)
{
    Rng rng(20260807);
    int sat_seen = 0;
    for (int trial = 0; trial < 60; ++trial) {
        uint32_t vars = uint32_t(rng.uniformInt(3, 14));
        uint32_t clauses = uint32_t(rng.uniformInt(1, vars * 4));
        CnfFormula f = mixedRandomCnf(vars, clauses, rng);
        DpllSolver solver(f);
        if (solver.solve() != SolveResult::Sat)
            continue;
        ++sat_seen;
        const std::vector<bool> &model = solver.model();
        ASSERT_GE(model.size(), f.numVars());
        EXPECT_TRUE(f.evaluate(model))
            << "trial " << trial << ": DPLL model does not satisfy\n"
            << f.toDimacs();
    }
    EXPECT_GT(sat_seen, 10) << "corpus degenerated to all-UNSAT";
}

TEST(DpllProp, VerdictMatchesBruteForce)
{
    Rng rng(71);
    for (int trial = 0; trial < 60; ++trial) {
        uint32_t vars = uint32_t(rng.uniformInt(2, 12));
        uint32_t clauses = uint32_t(rng.uniformInt(1, vars * 5));
        CnfFormula f = mixedRandomCnf(vars, clauses, rng);
        DpllSolver solver(f);
        bool dpll_sat = solver.solve() == SolveResult::Sat;
        EXPECT_EQ(dpll_sat, f.bruteForceSat(nullptr))
            << "trial " << trial << "\n"
            << f.toDimacs();
    }
}

TEST(DpllProp, ModelCountsMatchBruteForce)
{
    Rng rng(929);
    for (int trial = 0; trial < 40; ++trial) {
        uint32_t vars = uint32_t(rng.uniformInt(2, 20));
        uint32_t clauses = uint32_t(rng.uniformInt(1, vars * 3));
        CnfFormula f = mixedRandomCnf(vars, clauses, rng);
        double expected = double(f.bruteForceCountModels());
        EXPECT_EQ(countModels(f), expected)
            << "trial " << trial << "\n"
            << f.toDimacs();
        EXPECT_EQ(compileToDnnf(f).modelCount(), expected)
            << "trial " << trial << "\n"
            << f.toDimacs();
    }
}

TEST(DpllProp, PlantedInstancesStaySat)
{
    Rng rng(5);
    for (int trial = 0; trial < 20; ++trial) {
        uint32_t vars = uint32_t(rng.uniformInt(5, 16));
        CnfFormula f = plantedKSat(rng, vars, vars * 4, 3);
        DpllSolver solver(f);
        ASSERT_EQ(solver.solve(), SolveResult::Sat);
        EXPECT_TRUE(f.evaluate(solver.model()));
        EXPECT_GE(f.bruteForceCountModels(), 1u);
    }
}

/** UNSAT inputs must become constant-false on BOTH compile routes. */
TEST(DpllProp, UnsatCompilesToConstantFalse)
{
    std::vector<CnfFormula> unsat;
    unsat.push_back(pigeonhole(3));
    {
        CnfFormula f; // x ∧ ¬x
        f.ensureVars(4);
        f.addClause({1});
        f.addClause({-1});
        unsat.push_back(f);
    }
    {
        CnfFormula f; // all four sign patterns over two vars
        f.addClause({1, 2});
        f.addClause({1, -2});
        f.addClause({-1, 2});
        f.addClause({-1, -2});
        unsat.push_back(f);
    }
    for (size_t i = 0; i < unsat.size(); ++i) {
        const CnfFormula &f = unsat[i];
        DpllSolver solver(f);
        ASSERT_EQ(solver.solve(), SolveResult::Unsat) << "case " << i;

        // Dag route: the compiled d-DNNF is the single False node.
        DnnfGraph g = compileToDnnf(f);
        EXPECT_EQ(g.modelCount(), 0.0) << "case " << i;
        EXPECT_EQ(g.node(g.root()).type, NnfType::False) << "case " << i;

        // Flat route: the root evaluates to log 0 under every query.
        pc::FlatCircuit flat = pc::compileCnfFlat(f);
        EXPECT_TRUE(std::isinf(pc::flatLogWmc(flat))) << "case " << i;
        EXPECT_LT(pc::flatLogWmc(flat), 0.0) << "case " << i;
    }
}

TEST(DpllProp, CubeAndConquerAgreesWithDpll)
{
    Rng rng(4242);
    for (int trial = 0; trial < 20; ++trial) {
        uint32_t vars = uint32_t(rng.uniformInt(4, 12));
        uint32_t clauses = uint32_t(rng.uniformInt(2, vars * 4));
        CnfFormula f = mixedRandomCnf(vars, clauses, rng);
        DpllSolver solver(f);
        SolveResult direct = solver.solve();
        CubeAndConquerResult cc = cubeAndConquer(f, 3);
        EXPECT_EQ(cc.result, direct) << "trial " << trial << "\n"
                                     << f.toDimacs();
        if (cc.result == SolveResult::Sat)
            EXPECT_TRUE(f.evaluate(cc.model));
    }
}

} // namespace
} // namespace logic
} // namespace reason
