/**
 * @file
 * reason_cli — command-line front end to the REASON library.
 *
 * Subcommands:
 *
 *   solve <file.cnf> [--budget N] [--no-preprocess]
 *       Solve a DIMACS CNF with the CDCL solver (after the
 *       preprocessing pipeline), print the verdict, search statistics,
 *       and the REASON accelerator's estimated latency and energy for
 *       the same search.
 *
 *   count <file.cnf> [--nnf out.nnf]
 *       Exact model count via d-DNNF knowledge compilation; --nnf
 *       exports the compiled graph in the standard c2d format.
 *
 *   marginals <file.cnf> [--pc out.rpc]
 *       Compile the formula to a probabilistic circuit (uniform literal
 *       weights) and print per-variable conditional marginals
 *       P(x_v = 1 | formula) — the R2-Guard query pattern; --pc saves
 *       the circuit in rpc text form.
 *
 *   compile <file.cnf> [--disasm]
 *       Lower the formula through the unified-DAG pipeline to a VLIW
 *       program, report compile statistics and encoded size in both
 *       address modes, simulate one evaluation, and optionally print
 *       the disassembly.
 *
 *   fit <file.rpc> [--samples N] [--iters N] [--seed N] [--out f.rpc]
 *       Run sharded flow EM on a stored circuit against data sampled
 *       from it (a self-fit: the log-likelihood trace must be
 *       non-decreasing).  Exercises the --threads / --shards /
 *       --fast-reductions knobs end to end and reports the resolved
 *       shard count and per-iteration likelihoods.
 *
 *   query <file.rpc> [--budget X] [--rows N] [--seed N]
 *         [--missing-pct N] [--is-samples N]
 *       Evaluate sampled queries through the serving engine's
 *       tier-selection path: budget 0 runs the exact tier, a positive
 *       budget runs the approximate tier (pc::ApproxEvaluator) and
 *       prints each certified [lo, hi] bound next to the value.
 *       --is-samples additionally prints the importance-sampled
 *       log-evidence estimate (value +/- stderr) for each row.
 *
 *   serve <file.rpc> [--requests N] [--clients N] [--max-batch N]
 *         [--window-us N] [--serve-threads N] [--dispatchers N]
 *         [--capacity N] [--policy reject|shed] [--auto-window]
 *         [--pin] [--seed N] [--listen PORT] [--max-budget X]
 *         [--fault-plan SPEC] [--idle-timeout-ms N] [--drain-ms N]
 *       Serve likelihood queries against a stored circuit through the
 *       async batch-serving engine (sys::ReasonEngine): N client
 *       threads submit sampled queries through their own sessions, the
 *       engine coalesces them into batched SoA evaluations, and the
 *       run reports throughput, latency percentiles, batch occupancy,
 *       and shed counts.  With --listen the command instead serves the
 *       length-prefixed binary wire protocol (sys/wire.h, v3) on a
 *       loopback TCP socket through sys::SocketServer — one engine
 *       session per connection, idempotent-retry duplicate
 *       suppression, Ping/Pong heartbeats — until SIGINT/SIGTERM
 *       triggers a graceful drain (--drain-ms deadline; exit 0 iff
 *       clean).  --fault-plan (or the REASON_FAULT_PLAN environment
 *       variable) installs a deterministic fault-injection schedule
 *       (sys/fault.h) for resilience testing.
 *
 *   bench-client <file.rpc> --port N [--host H] [--requests N]
 *         [--clients N] [--pipeline N] [--seed N] [--budget X]
 *         [--retries N] [--deadline-ms N] [--client-id N]
 *       Load generator for `serve --listen`, built on the resilient
 *       sys::Client: N client threads stream sampled queries over the
 *       wire protocol with a bounded pipeline, reconnecting with
 *       capped exponential backoff and re-sending unanswered queries
 *       idempotently (--retries bounds consecutive failures;
 *       --deadline-ms attaches per-query deadlines), then verify
 *       every returned log-likelihood bit for bit against an
 *       in-process one-at-a-time run of the same queries (checksums
 *       printed; nonzero exit on any mismatch).  With --budget the
 *       queries ride the approximate tier and the returned error
 *       bounds are bit-verified too.
 *
 * Every subcommand accepts --help and parses its flags through one
 * shared option table, so flag handling and help output stay
 * consistent.
 */

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sys/net.h" // defines REASON_HAS_SOCKETS

#if REASON_HAS_SOCKETS
#include <csignal>
#endif

#include "arch/accelerator.h"
#include "arch/symbolic.h"
#include "compiler/compile.h"
#include "compiler/encoding.h"
#include "core/builders.h"
#include "energy/energy_model.h"
#include "logic/cnf.h"
#include "logic/knowledge.h"
#include "logic/nnf_io.h"
#include "logic/preprocess.h"
#include "logic/solver.h"
#include "pc/approx.h"
#include "pc/flat_cache.h"
#include "pc/from_logic.h"
#include "pc/io.h"
#include "pc/learn.h"
#include "pc/queries.h"
#include "sys/engine.h"
#include "sys/fault.h"
#include "sys/wire.h"

#if REASON_HAS_SOCKETS
#include "sys/client.h"
#include "sys/server.h"
#endif
#include "util/logging.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/simd_dispatch.h"

#ifndef REASON_BUILD_FLAGS
#define REASON_BUILD_FLAGS "unknown"
#endif
#ifndef REASON_BUILD_TYPE
#define REASON_BUILD_TYPE "unknown"
#endif

using namespace reason;
namespace wire = reason::sys::wire;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: reason_cli [--threads N] [--shards N]\n"
        "                  [--fast-reductions] <command> [args]\n"
        "  solve <file.cnf> [--budget N] [--no-preprocess]\n"
        "  count <file.cnf> [--nnf out.nnf]\n"
        "  marginals <file.cnf> [--pc out.rpc]\n"
        "  compile <file.cnf> [--disasm]\n"
        "  fit <file.rpc> [--samples N] [--iters N] [--seed N]\n"
        "      [--out f.rpc]\n"
        "  query <file.rpc> [--budget X] [--rows N] [--seed N]\n"
        "      [--missing-pct N] [--is-samples N]\n"
        "  serve <file.rpc> [--requests N] [--clients N]\n"
        "      [--max-batch N] [--window-us N] [--serve-threads N]\n"
        "      [--dispatchers N] [--capacity N] [--policy reject|shed]\n"
        "      [--auto-window] [--pin] [--seed N] [--listen PORT]\n"
        "      [--max-budget X] [--fault-plan SPEC]\n"
        "      [--idle-timeout-ms N] [--drain-ms N]\n"
        "  bench-client <file.rpc> --port N [--host H] [--requests N]\n"
        "      [--clients N] [--pipeline N] [--seed N] [--budget X]\n"
        "      [--retries N] [--deadline-ms N] [--client-id N]\n"
        "  version          build, SIMD backend, and CPU features\n"
        "  <command> --help describes the command's options.\n"
        "--threads N sets the worker count of the flat evaluation\n"
        "engine (0 = hardware concurrency); results are identical for\n"
        "any thread count.\n"
        "--shards N sets the sample-shard count of learning reductions\n"
        "(EM flows, Baum-Welch; 0 = auto), and --fast-reductions trades\n"
        "the thread-count-independent fixed reduction shape for\n"
        "per-worker sharding.\n");
    return 2;
}

int
cmdVersion()
{
    std::printf("reason_cli (%s build)\n", REASON_BUILD_TYPE);
    std::printf("flags:        %s\n", REASON_BUILD_FLAGS);
    // Two backends can differ: the compile-time floor every inline
    // pack op uses, and the runtime-dispatched kernel table picked for
    // the hot block kernels (widest ISA the host CPU supports).
    std::printf("simd backend: %s (%u-wide native lanes, 8-lane "
                "packs)\n",
                simd::isaName(), simd::nativeLanes());
    std::printf("simd kernels: %s (runtime-selected)\n",
                simd::activeIsaName());
    std::printf("cpu features: %s\n", simd::cpuFeatures());
    if (std::strcmp(simd::isaName(), "scalar") == 0)
        std::printf("note: scalar fallback build — results are "
                    "bit-identical to every SIMD backend\n");
    return 0;
}

/**
 * Parse a decimal count argument in [min_value, max_value]; returns
 * false (instead of throwing, like std::stoull) on garbage, overflow,
 * or out-of-range values so subcommands can fall back to usage().
 */
bool
parseCount(const std::string &text, uint64_t min_value,
           uint64_t max_value, uint64_t *out)
{
    if (text.empty())
        return false;
    uint64_t value = 0;
    for (char ch : text) {
        if (ch < '0' || ch > '9')
            return false;
        if (value > (max_value - (ch - '0')) / 10)
            return false; // overflow past max_value
        value = value * 10 + uint64_t(ch - '0');
    }
    if (value < min_value)
        return false;
    *out = value;
    return true;
}

/**
 * Parse an accuracy-budget argument: a plain non-negative finite
 * decimal.  Negative values, NaN, infinities, and any trailing
 * garbage are *rejected* (never silently clamped) so a typo'd budget
 * fails loudly at the command line instead of quietly changing the
 * serving tier.
 */
bool
parseBudget(const std::string &text, double *out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size())
        return false; // non-numeric or trailing garbage
    if (!(value >= 0.0) || std::isinf(value))
        return false; // NaN fails the comparison; negatives/inf explicit
    *out = value;
    return true;
}

// ---------------------------------------------------------------------------
// Shared subcommand option parser.
//
// Every subcommand used to hand-roll the same loop (match flag, check
// for a value, parseCount, fall back to usage()); the table below
// keeps the parsing, validation, and --help rendering in one place.
// ---------------------------------------------------------------------------

/** One subcommand option: a flag, a count, a real, or a path. */
struct CliOption
{
    enum class Kind : uint8_t { Flag, Count, Real, Text };

    const char *name = nullptr;
    Kind kind = Kind::Flag;
    uint64_t minValue = 0;
    uint64_t maxValue = 0;
    bool *flagOut = nullptr;
    uint64_t *countOut = nullptr;
    double *realOut = nullptr;
    std::string *textOut = nullptr;
    const char *help = "";
};

CliOption
flagOpt(const char *name, bool *out, const char *help)
{
    CliOption o;
    o.name = name;
    o.kind = CliOption::Kind::Flag;
    o.flagOut = out;
    o.help = help;
    return o;
}

CliOption
countOpt(const char *name, uint64_t min_value, uint64_t max_value,
         uint64_t *out, const char *help)
{
    CliOption o;
    o.name = name;
    o.kind = CliOption::Kind::Count;
    o.minValue = min_value;
    o.maxValue = max_value;
    o.countOut = out;
    o.help = help;
    return o;
}

CliOption
realOpt(const char *name, double *out, const char *help)
{
    CliOption o;
    o.name = name;
    o.kind = CliOption::Kind::Real;
    o.realOut = out;
    o.help = help;
    return o;
}

CliOption
textOpt(const char *name, std::string *out, const char *help)
{
    CliOption o;
    o.name = name;
    o.kind = CliOption::Kind::Text;
    o.textOut = out;
    o.help = help;
    return o;
}

enum class ParseStatus { Ok, Error, Help };

void
printCommandHelp(const char *command, const char *positional,
                 const std::vector<CliOption> &options)
{
    std::fprintf(stderr, "usage: reason_cli %s %s", command, positional);
    for (const CliOption &o : options)
        std::fprintf(stderr, " [%s%s]", o.name,
                     o.kind == CliOption::Kind::Flag    ? ""
                     : o.kind == CliOption::Kind::Count ? " N"
                     : o.kind == CliOption::Kind::Real  ? " X"
                                                        : " <path>");
    std::fprintf(stderr, "\n");
    for (const CliOption &o : options)
        std::fprintf(stderr, "  %-16s %s\n", o.name, o.help);
}

/**
 * Parse args[first..] against the option table.  Unknown flags,
 * missing values, and out-of-range counts report the offending
 * argument and return Error.  (`--help` detection lives in
 * parseSubcommand, which pre-scans all arguments.)
 */
ParseStatus
parseCommandOptions(const char *command,
                    const std::vector<std::string> &args, size_t first,
                    const std::vector<CliOption> &options)
{
    // --help/-h is handled by parseSubcommand's pre-scan (it must work
    // even in place of the positional argument), not here.
    for (size_t i = first; i < args.size(); ++i) {
        const CliOption *match = nullptr;
        for (const CliOption &o : options)
            if (args[i] == o.name) {
                match = &o;
                break;
            }
        if (match == nullptr) {
            std::fprintf(stderr, "reason_cli %s: unknown option '%s'\n",
                         command, args[i].c_str());
            return ParseStatus::Error;
        }
        if (match->kind == CliOption::Kind::Flag) {
            *match->flagOut = true;
            continue;
        }
        if (i + 1 >= args.size()) {
            std::fprintf(stderr,
                         "reason_cli %s: option '%s' needs a value\n",
                         command, match->name);
            return ParseStatus::Error;
        }
        const std::string &value = args[++i];
        if (match->kind == CliOption::Kind::Text) {
            *match->textOut = value;
            continue;
        }
        if (match->kind == CliOption::Kind::Real) {
            if (!parseBudget(value, match->realOut)) {
                std::fprintf(stderr,
                             "reason_cli %s: bad value '%s' for '%s' "
                             "(want a non-negative finite number)\n",
                             command, value.c_str(), match->name);
                return ParseStatus::Error;
            }
            continue;
        }
        if (!parseCount(value, match->minValue, match->maxValue,
                        match->countOut)) {
            std::fprintf(stderr,
                         "reason_cli %s: bad value '%s' for '%s'\n",
                         command, value.c_str(), match->name);
            return ParseStatus::Error;
        }
    }
    return ParseStatus::Ok;
}

/**
 * Common subcommand prologue: `--help` anywhere prints the synopsis; a
 * missing positional argument is an error.  Returns Ok when parsing
 * may proceed.
 */
ParseStatus
parseSubcommand(const char *command, const char *positional,
                const std::vector<std::string> &args,
                const std::vector<CliOption> &options)
{
    for (const std::string &a : args)
        if (a == "--help" || a == "-h") {
            printCommandHelp(command, positional, options);
            return ParseStatus::Help;
        }
    if (args.empty())
        return ParseStatus::Error;
    return parseCommandOptions(command, args, 1, options);
}

logic::CnfFormula
loadDimacs(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    std::ostringstream text;
    text << in.rdbuf();
    return logic::CnfFormula::parseDimacs(text.str());
}

pc::Circuit
loadCircuit(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    std::ostringstream text;
    text << in.rdbuf();
    return pc::parseText(text.str());
}

int
cmdSolve(const std::vector<std::string> &args)
{
    uint64_t budget = 0;
    bool no_preprocess = false;
    const std::vector<CliOption> options = {
        countOpt("--budget", 0, ~uint64_t(0), &budget,
                 "conflict budget (0 = unlimited)"),
        flagOpt("--no-preprocess", &no_preprocess,
                "skip the preprocessing pipeline"),
    };
    switch (parseSubcommand("solve", "<file.cnf>", args, options)) {
      case ParseStatus::Help: return 0;
      case ParseStatus::Error: return usage();
      case ParseStatus::Ok: break;
    }
    const bool preprocess = !no_preprocess;

    logic::CnfFormula f = loadDimacs(args[0]);
    std::printf("instance: %u vars, %zu clauses, %zu literals\n",
                f.numVars(), f.numClauses(), f.numLiterals());

    logic::Preprocessor pre(f);
    logic::CnfFormula simplified = f;
    if (preprocess) {
        pre.run();
        simplified = pre.simplified();
        const auto &ps = pre.stats();
        std::printf("preprocess: %zu -> %zu clauses (units %llu, pures "
                    "%llu, subsumed %llu, strengthened %llu, failed "
                    "lits %llu, BVE vars %llu)\n",
                    ps.clausesBefore, ps.clausesAfter,
                    (unsigned long long)ps.unitsFixed,
                    (unsigned long long)ps.pureLiteralsFixed,
                    (unsigned long long)ps.subsumedClauses,
                    (unsigned long long)ps.strengthenedClauses,
                    (unsigned long long)ps.failedLiterals,
                    (unsigned long long)ps.eliminatedVars);
        if (pre.knownUnsat()) {
            std::printf("result: UNSAT (by preprocessing)\n");
            return 20;
        }
    }

    logic::SolverConfig cfg;
    cfg.conflictBudget = budget;
    logic::CdclSolver solver(simplified, cfg);
    logic::SolveResult res = solver.solve();
    const auto &st = solver.stats();
    std::printf("result: %s\n",
                res == logic::SolveResult::Sat     ? "SAT"
                : res == logic::SolveResult::Unsat ? "UNSAT"
                                                   : "UNKNOWN (budget)");
    std::printf("search: %llu decisions, %llu propagations, %llu "
                "conflicts, %llu learned clauses, %llu restarts\n",
                (unsigned long long)st.decisions,
                (unsigned long long)st.propagations,
                (unsigned long long)st.conflicts,
                (unsigned long long)st.learnedClauses,
                (unsigned long long)st.restarts);

    if (res == logic::SolveResult::Sat) {
        std::vector<bool> model = solver.model();
        if (preprocess)
            model = pre.reconstructModel(model);
        if (!f.evaluate(model))
            panic("model fails to satisfy the original formula");
        std::printf("model verified against the original formula\n");
    }

    // What would this search cost on the accelerator?
    arch::ArchConfig acfg;
    size_t db_bytes = simplified.numLiterals() * 8;
    uint64_t cycles = arch::estimateCdclCycles(st, db_bytes, acfg);
    double seconds = double(cycles) * acfg.cycleSeconds();
    StatGroup ev;
    ev.inc("agg_decisions", st.decisions);
    ev.inc("agg_propagations", st.propagations);
    ev.inc("agg_literal_visits", st.literalVisits);
    ev.inc("cycles", cycles);
    energy::EnergyModel em;
    double joules =
        em.dynamicEnergyJoules(ev) + em.staticWatts() * seconds;
    std::printf("REASON estimate: %llu cycles (%.3f ms @ %.1f GHz), "
                "%.3f mJ\n",
                (unsigned long long)cycles, seconds * 1e3, acfg.clockGhz,
                joules * 1e3);
    return res == logic::SolveResult::Sat ? 10
           : res == logic::SolveResult::Unsat ? 20
                                              : 0;
}

int
cmdCount(const std::vector<std::string> &args)
{
    std::string nnf_path;
    const std::vector<CliOption> options = {
        textOpt("--nnf", &nnf_path, "export the d-DNNF in c2d format"),
    };
    switch (parseSubcommand("count", "<file.cnf>", args, options)) {
      case ParseStatus::Help: return 0;
      case ParseStatus::Error: return usage();
      case ParseStatus::Ok: break;
    }
    logic::CnfFormula f = loadDimacs(args[0]);
    logic::DnnfGraph g = logic::compileToDnnf(f);
    const auto &st = g.stats();
    std::printf("d-DNNF: %zu nodes, %zu edges (%llu decisions, %llu "
                "cache hits, %llu component splits)\n",
                g.numNodes(), g.numEdges(),
                (unsigned long long)st.decisions,
                (unsigned long long)st.cacheHits,
                (unsigned long long)st.componentSplits);
    std::printf("models: %.0f of 2^%u assignments\n", g.modelCount(),
                f.numVars());
    if (!nnf_path.empty()) {
        std::ofstream out(nnf_path);
        if (!out)
            fatal("cannot write '%s'", nnf_path.c_str());
        out << logic::toC2dFormat(g);
        std::printf("wrote c2d NNF to %s\n", nnf_path.c_str());
    }
    return 0;
}

int
cmdMarginals(const std::vector<std::string> &args)
{
    std::string pc_path;
    const std::vector<CliOption> options = {
        textOpt("--pc", &pc_path, "save the circuit in rpc text form"),
    };
    switch (parseSubcommand("marginals", "<file.cnf>", args, options)) {
      case ParseStatus::Help: return 0;
      case ParseStatus::Error: return usage();
      case ParseStatus::Ok: break;
    }
    logic::CnfFormula f = loadDimacs(args[0]);
    logic::DnnfGraph g = logic::compileToDnnf(f);
    if (g.modelCount() <= 0.0) {
        std::printf("formula is unsatisfiable; no conditional "
                    "distribution exists\n");
        return 20;
    }
    pc::Circuit circuit =
        pc::fromDnnf(g, logic::LitWeights::uniform(f.numVars()));
    std::printf("circuit: %zu nodes, %zu edges (smooth & decomposable)\n",
                circuit.numNodes(), circuit.numEdges());

    pc::Assignment no_evidence(f.numVars(), pc::kMissing);
    pc::MarginalTable table =
        pc::posteriorMarginals(circuit, no_evidence);
    for (uint32_t v = 0; v < f.numVars(); ++v)
        std::printf("  P(x%-3u = 1 | phi) = %.6f\n", v + 1,
                    table.prob[v][1]);
    if (!pc_path.empty()) {
        std::ofstream out(pc_path);
        if (!out)
            fatal("cannot write '%s'", pc_path.c_str());
        out << pc::toText(circuit);
        std::printf("wrote circuit to %s\n", pc_path.c_str());
    }
    return 0;
}

int
cmdCompile(const std::vector<std::string> &args)
{
    bool disasm = false;
    const std::vector<CliOption> options = {
        flagOpt("--disasm", &disasm, "print the program disassembly"),
    };
    switch (parseSubcommand("compile", "<file.cnf>", args, options)) {
      case ParseStatus::Help: return 0;
      case ParseStatus::Error: return usage();
      case ParseStatus::Ok: break;
    }

    logic::CnfFormula f = loadDimacs(args[0]);
    core::Dag dag = core::buildFromCnf(f);
    std::printf("unified DAG: %zu nodes, %zu edges\n", dag.numNodes(),
                dag.numEdges());

    arch::ArchConfig acfg;
    compiler::Program program =
        compiler::compile(dag, acfg.compilerTarget());
    std::printf("program: %zu blocks, %zu issue slots, leaf "
                "utilization %.0f%%\n",
                program.stats.numBlocks, program.schedule.size(),
                program.stats.avgLeafUtilization * 100.0);

    auto expl =
        compiler::encodeProgram(program, compiler::AddressMode::Explicit);
    auto autom =
        compiler::encodeProgram(program, compiler::AddressMode::Auto);
    std::printf("encoded size: %.2f KB explicit, %.2f KB auto-address "
                "(instruction-stream saving %.1f%%)\n",
                expl.kilobytes(), autom.kilobytes(),
                compiler::autoAddressSaving(program) * 100.0);

    // Evaluate the all-true assignment on the fabric.
    std::vector<double> inputs(dag.numInputs(), 1.0);
    arch::Accelerator accel(acfg);
    auto result = accel.run(program, inputs);
    std::printf("simulated: root=%g (formula %s under all-true), %llu "
                "cycles, PE utilization %.1f%%\n",
                result.rootValue,
                result.rootValue > 0.5 ? "satisfied" : "falsified",
                (unsigned long long)result.cycles,
                result.peUtilization * 100.0);

    if (disasm)
        std::fputs(compiler::disassemble(program).c_str(), stdout);
    return 0;
}

int
cmdFit(const std::vector<std::string> &args)
{
    uint64_t samples = 2000;
    uint64_t iters = 10;
    uint64_t seed = 1;
    std::string out_path;
    const std::vector<CliOption> options = {
        countOpt("--samples", 1, uint64_t(1) << 30, &samples,
                 "training samples drawn from the circuit"),
        countOpt("--iters", 1, 1u << 20, &iters,
                 "maximum EM iterations"),
        countOpt("--seed", 0, ~uint64_t(0), &seed, "sampling RNG seed"),
        textOpt("--out", &out_path, "write the fitted circuit here"),
    };
    switch (parseSubcommand("fit", "<file.rpc>", args, options)) {
      case ParseStatus::Help: return 0;
      case ParseStatus::Error: return usage();
      case ParseStatus::Ok: break;
    }

    pc::Circuit circuit = loadCircuit(args[0]);
    std::printf("circuit: %zu nodes, %zu edges, %u vars\n",
                circuit.numNodes(), circuit.numEdges(),
                circuit.numVars());

    Rng rng(seed);
    std::vector<pc::Assignment> data =
        pc::sampleDataset(rng, circuit, size_t(samples));
    pc::EmOptions opts; // inherits --shards / --fast-reductions
    opts.maxIterations = uint32_t(iters);
    const unsigned shards = util::resolveShardCount(
        opts.shards, opts.deterministic, data.size(),
        util::globalThreads());
    std::printf("fit: %zu samples, <=%u iterations, %u worker(s), "
                "%u shard(s), %s reductions\n",
                data.size(), opts.maxIterations, util::globalThreads(),
                shards,
                opts.deterministic ? "deterministic" : "fast");

    pc::EmTrace trace = pc::emTrain(circuit, data, opts);
    for (size_t i = 0; i < trace.logLikelihood.size(); ++i)
        std::printf("  iter %2zu: mean LL %.9f\n", i,
                    trace.logLikelihood[i]);
    double gain = trace.logLikelihood.back() - trace.logLikelihood[0];
    std::printf("converged after %u iteration(s), LL gain %.3e\n",
                trace.iterations, gain);
    if (gain < 0.0)
        // EM with Laplace smoothing is monotone in the *smoothed*
        // objective; at small sample counts the pseudo-counts can
        // legitimately pull the raw data LL down.
        std::printf("note: negative gain — smoothing pseudo-counts "
                    "(%.3g per count) dominate at this sample size\n",
                    opts.smoothing);

    if (!out_path.empty()) {
        std::ofstream out(out_path);
        if (!out)
            fatal("cannot write '%s'", out_path.c_str());
        out << pc::toText(circuit);
        std::printf("wrote fitted circuit to %s\n", out_path.c_str());
    }
    return 0;
}

int
cmdQuery(const std::vector<std::string> &args)
{
    double budget = 0.0;
    uint64_t rows = 8;
    uint64_t seed = 1;
    uint64_t missing_pct = 0;
    uint64_t is_samples = 0;
    const std::vector<CliOption> options = {
        realOpt("--budget", &budget,
                "accuracy budget (0 = exact tier, >0 = approximate "
                "tier with certified bounds)"),
        countOpt("--rows", 1, 1u << 20, &rows,
                 "queries sampled from the circuit"),
        countOpt("--seed", 0, ~uint64_t(0), &seed,
                 "query sampling RNG seed"),
        countOpt("--missing-pct", 0, 100, &missing_pct,
                 "percent of variables marginalized out per query"),
        countOpt("--is-samples", 0, 1u << 24, &is_samples,
                 "importance samples for the log-evidence estimate "
                 "(0 = off)"),
    };
    switch (parseSubcommand("query", "<file.rpc>", args, options)) {
      case ParseStatus::Help: return 0;
      case ParseStatus::Error: return usage();
      case ParseStatus::Ok: break;
    }

    pc::Circuit circuit = loadCircuit(args[0]);
    std::printf("circuit: %zu nodes, %zu edges, %u vars\n",
                circuit.numNodes(), circuit.numEdges(),
                circuit.numVars());

    Rng rng(seed);
    std::vector<pc::Assignment> queries =
        pc::sampleDataset(rng, circuit, size_t(rows));
    for (pc::Assignment &x : queries)
        for (uint32_t &v : x)
            if (rng.uniformInt(0, 99) < int64_t(missing_pct))
                v = pc::kMissing;

    // Through the engine, not a local evaluator: this is the serving
    // stack's tier-selection path (budget 0 = exact tier, positive =
    // approximate tier with certified bounds).
    sys::ReasonEngine engine;
    sys::Session session = engine.createSession(circuit);
    const bool approx = budget > 0.0;
    std::printf("tier: %s (budget %g)\n",
                approx ? "approximate" : "exact", budget);

    std::shared_ptr<const pc::FlatCircuit> flat =
        pc::cachedLowering(circuit);
    for (size_t q = 0; q < queries.size(); ++q) {
        const auto r = session.wait(session.submit(queries[q], budget));
        if (r->error != sys::REASON_OK)
            fatal("query %zu failed with error %d", q, r->error);
        if (approx)
            std::printf("row %3zu: log p = %.12f  bound [%.12f, "
                        "%.12f]\n",
                        q, r->outputs[0], r->boundLo[0],
                        r->boundHi[0]);
        else
            std::printf("row %3zu: log p = %.12f\n", q, r->outputs[0]);
        if (is_samples > 0) {
            const pc::LogEvidenceEstimate est = pc::estimateLogEvidence(
                *flat, queries[q], size_t(is_samples), seed);
            std::printf("         IS logZ = %.12f +/- %.3e "
                        "(%zu samples)\n",
                        est.logZ, est.stdError, est.samples);
        }
    }
    return 0;
}

/** Map a --policy argument onto the queue policy enum. */
bool
parseQueuePolicy(const std::string &text, sys::QueuePolicy *out)
{
    if (text == "reject") {
        *out = sys::QueuePolicy::RejectNew;
        return true;
    }
    if (text == "shed") {
        *out = sys::QueuePolicy::ShedOldest;
        return true;
    }
    return false;
}

#if REASON_HAS_SOCKETS

/** SIGINT/SIGTERM flag observed by the serve loop (graceful drain). */
volatile std::sig_atomic_t g_stop_signal = 0;

void
handleStopSignal(int)
{
    g_stop_signal = 1;
}

/**
 * `serve --listen`: run the reusable socket front-end
 * (sys::SocketServer) on loopback TCP.  Prints the bound address
 * (port 0 resolves to an ephemeral port) before accepting, so scripts
 * can wait for readiness.  SIGINT/SIGTERM trigger a graceful drain:
 * admission closes, queued work finishes within --drain-ms, the rest
 * expires, every in-flight answer is flushed, and the exit code says
 * whether the drain was clean.
 */
int
runServeSocket(const pc::Circuit &circuit,
               const sys::ServeOptions &serve, double maxBudget,
               uint16_t port, unsigned idleTimeoutMs,
               uint64_t drainDeadlineNs)
{
    sys::ReasonEngine engine(serve);
    sys::ServerOptions options;
    options.port = port;
    options.maxBudget = maxBudget;
    options.idleTimeoutMs = idleTimeoutMs;
    options.drainDeadlineNs = drainDeadlineNs;
    sys::SocketServer server(engine, pc::cachedLowering(circuit),
                             options);
    std::string error;
    if (!server.start(&error))
        fatal("cannot serve on 127.0.0.1:%u: %s", unsigned(port),
              error.c_str());
    std::printf("listening on 127.0.0.1:%u\n",
                unsigned(server.port()));
    std::fflush(stdout);

    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = handleStopSignal;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
    while (g_stop_signal == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));

    const bool clean = server.stop();
    const sys::ServerStats st = server.stats();
    const sys::EngineStats es = engine.stats();
    std::printf("drain: %s (%llu connections, %llu submits, %llu "
                "duplicates suppressed, %llu version rejects, %llu "
                "expired)\n",
                clean ? "clean" : "queued work expired",
                (unsigned long long)st.connections,
                (unsigned long long)st.submits,
                (unsigned long long)st.duplicatesSuppressed,
                (unsigned long long)st.versionRejects,
                (unsigned long long)es.expired);
    if (sys::FaultPlan *plan = sys::activeFaultPlan()) {
        const sys::FaultStats fs = plan->stats();
        std::printf("faults injected: %llu resets, %llu torn frames, "
                    "%llu short reads, %llu partial writes, %llu "
                    "delays, %llu stalls\n",
                    (unsigned long long)fs.resets,
                    (unsigned long long)fs.tornFrames,
                    (unsigned long long)fs.shortReads,
                    (unsigned long long)fs.partialWrites,
                    (unsigned long long)fs.delays,
                    (unsigned long long)fs.stalls);
    }
    return clean ? 0 : 1;
}

/** Aggregated outcome of one bench-client worker (one connection). */
struct BenchClientResult
{
    std::vector<sys::QueryOutcome> outcomes;
    sys::ClientStats stats;
    bool ok = false;
};

#endif // REASON_HAS_SOCKETS

int
cmdBenchClient(const std::vector<std::string> &args)
{
    uint64_t port = 0;
    std::string host = "127.0.0.1";
    uint64_t requests = 2000;
    uint64_t clients = 2;
    uint64_t pipeline = 64;
    uint64_t seed = 1;
    uint64_t retries = 16;
    uint64_t deadline_ms = 0;
    uint64_t client_id = 1;
    double budget = 0.0;
    const std::vector<CliOption> options = {
        countOpt("--port", 1, 65535, &port,
                 "server port (see `serve --listen`)"),
        realOpt("--budget", &budget,
                "accuracy budget: 0 = exact tier, >0 = approximate "
                "tier (bounds verified bitwise)"),
        textOpt("--host", &host, "server address (default loopback)"),
        countOpt("--requests", 1, uint64_t(1) << 30, &requests,
                 "total queries submitted across clients"),
        countOpt("--clients", 1, 256, &clients,
                 "client threads, one connection each"),
        countOpt("--pipeline", 1, 1u << 20, &pipeline,
                 "max in-flight requests per connection"),
        countOpt("--seed", 0, ~uint64_t(0), &seed,
                 "query sampling RNG seed"),
        countOpt("--retries", 0, 1u << 20, &retries,
                 "consecutive reconnect attempts before giving up"),
        countOpt("--deadline-ms", 0, 1u << 30, &deadline_ms,
                 "per-query deadline, on the wire and client-side "
                 "(0 = none)"),
        countOpt("--client-id", 0, ~uint64_t(0), &client_id,
                 "client identity base for idempotent retry (worker c "
                 "uses id+c; 0 = anonymous, no duplicate "
                 "suppression)"),
    };
    switch (parseSubcommand("bench-client", "<file.rpc>", args,
                            options)) {
      case ParseStatus::Help: return 0;
      case ParseStatus::Error: return usage();
      case ParseStatus::Ok: break;
    }
    if (port == 0) {
        std::fprintf(stderr, "bench-client: --port is required\n");
        return usage();
    }
#if !REASON_HAS_SOCKETS
    fatal("bench-client requires POSIX sockets (unavailable on this "
          "platform)");
#else
    pc::Circuit circuit = loadCircuit(args[0]);
    Rng rng(seed);
    const std::vector<pc::Assignment> queries =
        pc::sampleDataset(rng, circuit, size_t(requests));

    std::vector<double> values(queries.size(), 0.0);
    std::vector<double> bounds_lo(queries.size(), 0.0);
    std::vector<double> bounds_hi(queries.size(), 0.0);
    std::vector<uint8_t> got(queries.size(), 0);
    std::vector<std::vector<size_t>> slices(clients);
    for (size_t q = 0; q < queries.size(); ++q)
        slices[q % clients].push_back(q);
    const bool approx = budget > 0.0;

    std::printf("bench-client: %zu requests, %llu connection(s), "
                "pipeline %llu, %s:%llu\n",
                queries.size(), (unsigned long long)clients,
                (unsigned long long)pipeline, host.c_str(),
                (unsigned long long)port);

    std::vector<BenchClientResult> results(clients);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    for (uint64_t c = 0; c < clients; ++c)
        workers.emplace_back([&, c] {
            sys::ClientOptions copt;
            copt.host = host;
            copt.port = uint16_t(port);
            copt.clientId =
                client_id == 0 ? 0 : client_id + c;
            copt.pipeline = size_t(pipeline);
            copt.maxRetries = unsigned(retries);
            copt.seed = seed ^ (0x9e3779b97f4a7c15ull * (c + 1));
            copt.budget = budget;
            copt.deadlineNs = deadline_ms * 1'000'000ull;
            sys::Client client(copt);
            std::vector<pc::Assignment> mine;
            mine.reserve(slices[c].size());
            for (size_t q : slices[c])
                mine.push_back(queries[q]);
            results[c].ok =
                client.runBatch(mine, &results[c].outcomes);
            results[c].stats = client.stats();
        });
    for (std::thread &w : workers)
        w.join();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();

    bool transport_ok = true;
    uint64_t overloads = 0;
    uint64_t deadline_errors = 0;
    uint64_t other_errors = 0;
    sys::ClientStats rstats;
    std::vector<uint64_t> all_lat;
    for (uint64_t c = 0; c < clients; ++c) {
        const BenchClientResult &r = results[c];
        transport_ok = transport_ok && r.ok;
        rstats.connects += r.stats.connects;
        rstats.connectFailures += r.stats.connectFailures;
        rstats.retriesSent += r.stats.retriesSent;
        rstats.transportErrors += r.stats.transportErrors;
        for (size_t i = 0; i < r.outcomes.size(); ++i) {
            const sys::QueryOutcome &o = r.outcomes[i];
            const size_t q = slices[c][i];
            if (o.error == sys::REASON_OK) {
                if (o.tier != (approx ? 1 : 0)) {
                    ++other_errors; // wrong tier is a protocol bug
                    continue;
                }
                values[q] = o.value;
                if (approx) {
                    bounds_lo[q] = o.boundLo;
                    bounds_hi[q] = o.boundHi;
                }
                got[q] = 1;
                all_lat.push_back(o.latencyNs);
            } else if (o.error == sys::REASON_ERR_OVERLOAD) {
                ++overloads;
            } else if (o.error ==
                       sys::REASON_ERR_DEADLINE_EXCEEDED) {
                ++deadline_errors;
            } else if (o.error != sys::kClientErrTransport &&
                       o.error != sys::kClientErrVersionMismatch) {
                ++other_errors;
            }
            // Client-side transport/version outcomes are already
            // reflected in transport_ok via runBatch's return.
        }
    }
    std::sort(all_lat.begin(), all_lat.end());
    auto percentile = [&](double p) {
        if (all_lat.empty())
            return 0.0;
        const size_t idx = std::min(
            all_lat.size() - 1, size_t(p * double(all_lat.size())));
        return double(all_lat[idx]) * 1e-6;
    };

    // Bitwise verification against in-process one-at-a-time
    // submission — the serving determinism contract made observable
    // from outside the process.  On the approximate tier the interval
    // endpoints must match bit-for-bit too, not just the values.
    sys::ReasonEngine reference;
    sys::Session session = reference.createSession(circuit);
    uint64_t mismatches = 0;
    size_t answered = 0;
    std::vector<double> remote_answered;
    std::vector<double> local_answered;
    for (size_t q = 0; q < queries.size(); ++q) {
        if (!got[q])
            continue;
        ++answered;
        const auto r =
            session.wait(session.submit(queries[q], budget));
        if (r->error != sys::REASON_OK) {
            ++mismatches; // remote answered, local failed
            continue;
        }
        remote_answered.push_back(values[q]);
        local_answered.push_back(r->outputs[0]);
        if (std::bit_cast<uint64_t>(values[q]) !=
            std::bit_cast<uint64_t>(r->outputs[0]))
            ++mismatches;
        if (approx &&
            (std::bit_cast<uint64_t>(bounds_lo[q]) !=
                 std::bit_cast<uint64_t>(r->boundLo[0]) ||
             std::bit_cast<uint64_t>(bounds_hi[q]) !=
                 std::bit_cast<uint64_t>(r->boundHi[0])))
            ++mismatches;
    }

    const size_t completed =
        answered + size_t(overloads) + size_t(deadline_errors);
    std::printf("completed %zu/%zu in %.3f ms: %.1f req/s\n",
                completed, queries.size(), wall_ms,
                double(completed) / (wall_ms * 1e-3));
    std::printf("latency: p50 %.3f ms, p99 %.3f ms\n",
                percentile(0.50), percentile(0.99));
    std::printf("errors: %llu overload, %llu deadline, %llu other\n",
                (unsigned long long)overloads,
                (unsigned long long)deadline_errors,
                (unsigned long long)other_errors);
    std::printf("resilience: %llu connects, %llu connect failures, "
                "%llu retries, %llu transport errors\n",
                (unsigned long long)rstats.connects,
                (unsigned long long)rstats.connectFailures,
                (unsigned long long)rstats.retriesSent,
                (unsigned long long)rstats.transportErrors);
    std::printf("bitwise: %llu mismatches over %zu answered "
                "(checksum remote %016llx local %016llx)\n",
                (unsigned long long)mismatches, answered,
                (unsigned long long)wire::checksumValues(
                    remote_answered.data(), remote_answered.size()),
                (unsigned long long)wire::checksumValues(
                    local_answered.data(), local_answered.size()));
    if (!transport_ok)
        std::fprintf(stderr, "bench-client: transport failure\n");
    return transport_ok && mismatches == 0 && other_errors == 0 ? 0
                                                                : 1;
#endif
}

int
cmdServe(const std::vector<std::string> &args)
{
    uint64_t requests = 2000;
    uint64_t clients = 2;
    uint64_t max_batch = 64;
    uint64_t window_us = 0;
    uint64_t serve_threads = 1;
    uint64_t dispatchers = 1;
    uint64_t capacity = 0;
    std::string policy_text = "reject";
    bool auto_window = false;
    bool pin_threads = false;
    uint64_t listen_port = 0;
    bool listen_set = false;
    uint64_t seed = 1;
    uint64_t idle_timeout_ms = 0;
    uint64_t drain_ms = 5000;
    std::string fault_spec;
    // Sentinel -1 = uncapped; parseBudget only ever writes
    // non-negative finite values, so any explicit --max-budget caps.
    double max_budget = -1.0;
    std::vector<CliOption> options = {
        countOpt("--requests", 1, uint64_t(1) << 30, &requests,
                 "total queries submitted across clients"),
        countOpt("--clients", 1, 256, &clients,
                 "client threads, one engine session each"),
        countOpt("--max-batch", 1, 1u << 20, &max_batch,
                 "most rows per coalesced evaluation"),
        countOpt("--window-us", 0, 1u << 30, &window_us,
                 "linger for same-key late arrivals (microseconds)"),
        countOpt("--serve-threads", 0, util::kMaxThreads,
                 &serve_threads,
                 "engine evaluation pool workers (0 = hardware)"),
        countOpt("--dispatchers", 1, util::kMaxThreads, &dispatchers,
                 "dispatcher threads draining the queue"),
        countOpt("--capacity", 0, uint64_t(1) << 30, &capacity,
                 "queue capacity before shedding (0 = unbounded)"),
        textOpt("--policy", &policy_text,
                "full-queue policy: reject (new) or shed (oldest)"),
        flagOpt("--auto-window", &auto_window,
                "autotune the linger window from arrival/exec EWMAs"),
        flagOpt("--pin", &pin_threads,
                "pin dispatcher and eval threads to cores"),
        countOpt("--listen", 0, 65535, &listen_port,
                 "serve the binary wire protocol on loopback TCP"),
        realOpt("--max-budget", &max_budget,
                "largest accuracy budget accepted over the wire "
                "(default: uncapped)"),
        countOpt("--seed", 0, ~uint64_t(0), &seed,
                 "query sampling RNG seed"),
        textOpt("--fault-plan", &fault_spec,
                "deterministic fault-injection spec, e.g. "
                "seed=7,reset=0.01,torn=0.02,short=0.1 (also read "
                "from REASON_FAULT_PLAN)"),
        countOpt("--idle-timeout-ms", 0, 1u << 30, &idle_timeout_ms,
                 "drop connections silent this long (0 = never)"),
        countOpt("--drain-ms", 0, 1u << 30, &drain_ms,
                 "graceful-drain deadline on SIGINT/SIGTERM"),
    };
    switch (parseSubcommand("serve", "<file.rpc>", args, options)) {
      case ParseStatus::Help: return 0;
      case ParseStatus::Error: return usage();
      case ParseStatus::Ok: break;
    }
    sys::QueuePolicy policy = sys::QueuePolicy::RejectNew;
    if (!parseQueuePolicy(policy_text, &policy)) {
        std::fprintf(stderr, "serve: unknown --policy '%s'\n",
                     policy_text.c_str());
        return usage();
    }
    for (const std::string &a : args)
        listen_set = listen_set || a == "--listen";

    pc::Circuit circuit = loadCircuit(args[0]);
    std::printf("circuit: %zu nodes, %zu edges, %u vars\n",
                circuit.numNodes(), circuit.numEdges(),
                circuit.numVars());

    sys::ServeOptions serve;
    serve.maxBatch = unsigned(max_batch);
    serve.maxCoalesceWindowUs = unsigned(window_us);
    serve.serveThreads = unsigned(serve_threads);
    serve.dispatchers = unsigned(dispatchers);
    serve.queueCapacity = size_t(capacity);
    serve.queuePolicy = policy;
    serve.autoLingerWindow = auto_window;
    serve.pinThreads = pin_threads;

    // A fault plan makes the serving stack misbehave on purpose;
    // static because the installation is process-global and must
    // outlive every connection handler.
    static sys::FaultPlan fault_plan;
    if (fault_spec.empty()) {
        if (const char *env = std::getenv("REASON_FAULT_PLAN"))
            fault_spec = env;
    }
    if (!fault_spec.empty()) {
        std::string fault_error;
        if (!sys::FaultPlan::parse(fault_spec, &fault_plan,
                                   &fault_error))
            fatal("serve: bad --fault-plan: %s", fault_error.c_str());
        if (fault_plan.enabled()) {
            sys::installFaultPlan(&fault_plan);
            std::printf("fault plan: %s\n",
                        fault_plan.describe().c_str());
        }
    }

    if (listen_set) {
#if REASON_HAS_SOCKETS
        return runServeSocket(circuit, serve, max_budget,
                              uint16_t(listen_port),
                              unsigned(idle_timeout_ms),
                              drain_ms * 1'000'000ull);
#else
        fatal("serve --listen requires POSIX sockets (unavailable on "
              "this platform)");
#endif
    }

    Rng rng(seed);
    std::vector<pc::Assignment> queries =
        pc::sampleDataset(rng, circuit, size_t(requests));

    sys::ReasonEngine engine(serve);

    std::vector<sys::Session> sessions;
    for (uint64_t c = 0; c < clients; ++c)
        sessions.push_back(engine.createSession(circuit));

    std::printf("serve: %zu requests, %llu client(s), maxBatch %llu, "
                "window %llu us, %llu eval worker(s), %llu "
                "dispatcher(s), capacity %llu (%s)\n",
                queries.size(), (unsigned long long)clients,
                (unsigned long long)max_batch,
                (unsigned long long)window_us,
                (unsigned long long)serve_threads,
                (unsigned long long)dispatchers,
                (unsigned long long)capacity, policy_text.c_str());

    // Each client submits its slice asynchronously, then waits — the
    // backlog is what the engine coalesces across sessions.  Overload
    // shedding is an expected outcome under a bounded queue, not a
    // failure.
    std::vector<std::vector<uint64_t>> latencies(clients);
    std::vector<std::vector<double>> lls(clients);
    std::atomic<uint64_t> shed{0};
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    for (uint64_t c = 0; c < clients; ++c) {
        workers.emplace_back([&, c] {
            sys::Session &session = sessions[c];
            std::vector<sys::RequestHandle> handles;
            for (size_t q = c; q < queries.size(); q += clients)
                handles.push_back(session.submit(queries[q]));
            for (sys::RequestHandle &h : handles) {
                std::shared_ptr<const sys::Request> r = session.wait(h);
                if (r->error == sys::REASON_ERR_OVERLOAD) {
                    shed.fetch_add(1, std::memory_order_relaxed);
                    continue;
                }
                if (r->error != sys::REASON_OK)
                    fatal("request %llu failed with error %d",
                          (unsigned long long)h.id(), r->error);
                latencies[c].push_back(r->latencyNs());
                lls[c].push_back(r->outputs[0]);
            }
        });
    }
    for (std::thread &w : workers)
        w.join();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();

    std::vector<uint64_t> all_lat;
    double ll_sum = 0.0;
    for (uint64_t c = 0; c < clients; ++c) {
        all_lat.insert(all_lat.end(), latencies[c].begin(),
                       latencies[c].end());
        for (double ll : lls[c])
            ll_sum += ll;
    }
    std::sort(all_lat.begin(), all_lat.end());
    auto percentile = [&](double p) {
        if (all_lat.empty())
            return 0.0;
        const size_t idx = std::min(
            all_lat.size() - 1,
            size_t(p * double(all_lat.size())));
        return double(all_lat[idx]) * 1e-6;
    };

    const sys::EngineStats stats = engine.stats();
    std::printf("served %zu/%zu requests in %.3f ms: %.1f req/s "
                "(%llu shed)\n",
                all_lat.size(), queries.size(), wall_ms,
                double(queries.size()) / (wall_ms * 1e-3),
                (unsigned long long)shed.load());
    std::printf("latency: p50 %.3f ms, p99 %.3f ms, mean %.3f ms "
                "(engine reservoir p50 %.3f ms, p99 %.3f ms)\n",
                percentile(0.50), percentile(0.99),
                stats.meanLatencyMs, stats.p50LatencyMs,
                stats.p99LatencyMs);
    std::printf("batching: %llu batches, mean occupancy %.2f rows, "
                "max queue depth %llu, last linger %.1f us\n",
                (unsigned long long)stats.batches,
                stats.meanBatchOccupancy,
                (unsigned long long)stats.maxQueueDepth,
                stats.lastLingerUs);
    if (!all_lat.empty())
        std::printf("mean served log-likelihood: %.9f\n",
                    ll_sum / double(all_lat.size()));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> all(argv + 1, argv + argc);
    // Global flags precede the subcommand.
    size_t at = 0;
    util::ReductionPolicy reductions = util::reductionPolicy();
    while (at < all.size() && all[at].rfind("--", 0) == 0) {
        unsigned threads = 0;
        if (all[at] == "--version") {
            return cmdVersion();
        } else if (all[at] == "--threads" && at + 1 < all.size() &&
            util::parseThreadCount(all[at + 1].c_str(), &threads)) {
            util::setGlobalThreads(threads);
            at += 2;
        } else if (all[at] == "--shards" && at + 1 < all.size()) {
            // Shard counts are clamped to the dataset size downstream,
            // so unlike --threads they are not bounded by kMaxThreads.
            uint64_t shards = 0;
            if (!parseCount(all[at + 1], 0, uint64_t(1) << 30, &shards))
                return usage();
            reductions.shards = unsigned(shards);
            at += 2;
        } else if (all[at] == "--fast-reductions") {
            reductions.deterministic = false;
            at += 1;
        } else {
            return usage();
        }
    }
    util::setReductionPolicy(reductions);
    if (at >= all.size())
        return usage();
    std::string cmd = all[at];
    std::vector<std::string> args(all.begin() + at + 1, all.end());
    if (cmd == "version")
        return cmdVersion();
    if (cmd == "solve")
        return cmdSolve(args);
    if (cmd == "count")
        return cmdCount(args);
    if (cmd == "marginals")
        return cmdMarginals(args);
    if (cmd == "compile")
        return cmdCompile(args);
    if (cmd == "fit")
        return cmdFit(args);
    if (cmd == "query")
        return cmdQuery(args);
    if (cmd == "serve")
        return cmdServe(args);
    if (cmd == "bench-client")
        return cmdBenchClient(args);
    return usage();
}
