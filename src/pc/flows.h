/**
 * @file
 * Top-down circuit flows and flow-based pruning for probabilistic
 * circuits (REASON Sec. IV-B, "Pruning of PCs and HMMs via circuit flow").
 *
 * The flow F(n,c;x) measures the fraction of the root's probability mass
 * that passes through edge (n,c) when evaluating input x.  Edges whose
 * cumulative flow over a dataset is smallest contribute least to the
 * model likelihood; removing them bounds the average log-likelihood drop
 * by the removed flow mass.
 */

#ifndef REASON_PC_FLOWS_H
#define REASON_PC_FLOWS_H

#include <cstdint>
#include <vector>

#include "pc/pc.h"

namespace reason {
namespace pc {

/** Flow values for every edge, indexed per node by child position. */
struct EdgeFlows
{
    /** flows[n][k]: flow through edge (n, children[k]). */
    std::vector<std::vector<double>> flows;
    /** Top-down node flows F_n. */
    std::vector<double> nodeFlows;
};

/**
 * Compute per-edge flows for one assignment.
 * Root flow is 1; sum edges split flow by θ·p_c/p_n, product edges pass
 * the parent flow to every child.
 */
EdgeFlows computeFlows(const Circuit &circuit, const Assignment &x);

/** Accumulate flows over a dataset (sum of per-example flows). */
EdgeFlows accumulateFlows(const Circuit &circuit,
                          const std::vector<Assignment> &data);

/** Result of flow-based pruning. */
struct PcPruneResult
{
    Circuit pruned;
    uint64_t edgesRemoved = 0;
    uint64_t nodesRemoved = 0;
    /** Fraction of edges removed. */
    double edgeReduction = 0.0;
    /** Upper bound on the average log-likelihood decrease. */
    double logLikelihoodBound = 0.0;

    PcPruneResult() : pruned(1, 2) {}
};

/**
 * Prune sum-node edges whose cumulative normalized flow falls below
 * `flow_threshold` (fraction of the per-example root flow), then drop
 * unreachable nodes and renormalize the surviving sum weights.
 *
 * At least one child is always kept per sum node, so the circuit stays
 * well-formed.
 */
PcPruneResult pruneByFlow(const Circuit &circuit,
                          const std::vector<Assignment> &data,
                          double flow_threshold);

/**
 * Prune a fixed fraction of sum edges, lowest cumulative flow first.
 */
PcPruneResult pruneFraction(const Circuit &circuit,
                            const std::vector<Assignment> &data,
                            double fraction);

} // namespace pc
} // namespace reason

#endif // REASON_PC_FLOWS_H
