/**
 * @file
 * Reliability-layer tests for the serving stack: deadlines,
 * cancellation, graceful drain, deterministic fault injection, and
 * the resilient socket client against the socket server.
 *
 *  - deadlines: a request whose deadline passes while queued completes
 *    with REASON_ERR_DEADLINE_EXCEEDED; one a dispatcher picked up
 *    always completes normally, bit-identical to deadline-less runs;
 *  - cancellation: queued-only, never a torn result, exact stats;
 *  - drain: queued work finishes within the deadline (clean) or
 *    expires (dirty), admission closes with REASON_ERR_SHUTTING_DOWN,
 *    and drain is idempotent;
 *  - fault plans: spec parsing, canonical describe(), and the
 *    same-seed-same-schedule determinism contract;
 *  - sockets: client/server round trips stay bit-exact, injected
 *    faults are survived via reconnect + idempotent retry, version
 *    mismatches are answered explicitly, and a mute peer cannot hang
 *    the client — this file runs in the TSan/ASan CI matrix.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "pc/flat_cache.h"
#include "random_circuit.h"
#include "sys/engine.h"
#include "sys/fault.h"
#include "sys/net.h"
#include "sys/wire.h"
#include "util/rng.h"

#if REASON_HAS_SOCKETS
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "sys/client.h"
#include "sys/server.h"
#endif

using namespace reason;
using namespace reason::sys;

namespace {

bool
bitEqual(double a, double b)
{
    uint64_t ba, bb;
    std::memcpy(&ba, &a, sizeof ba);
    std::memcpy(&bb, &b, sizeof bb);
    return ba == bb;
}

/** One-at-a-time engine outputs: the coalescing-free reference. */
std::vector<double>
serveOneAtATime(const pc::Circuit &circuit,
                const std::vector<pc::Assignment> &rows)
{
    ServeOptions options;
    options.maxBatch = 1;
    ReasonEngine engine(options);
    Session session = engine.createSession(circuit);
    std::vector<double> out;
    for (const pc::Assignment &x : rows)
        out.push_back(session.wait(session.submit(x))->outputs[0]);
    return out;
}

constexpr uint64_t kSecondNs = 1'000'000'000ull;

} // namespace

// ---------------------------------------------------------------------------
// Deadlines.
// ---------------------------------------------------------------------------

TEST(Deadlines, GenerousDeadlineStaysBitIdentical)
{
    Rng rng(1401);
    pc::Circuit circuit = pc::randomCircuit(rng, 20, 2, 4, 6);
    std::vector<pc::Assignment> rows =
        pc::sampleDataset(rng, circuit, 17);
    std::vector<double> reference = serveOneAtATime(circuit, rows);

    ReasonEngine engine;
    Session session = engine.createSession(circuit);
    for (size_t i = 0; i < rows.size(); ++i) {
        std::shared_ptr<const Request> r = session.wait(
            session.submit(rows[i], 0.0, 30 * kSecondNs));
        ASSERT_EQ(r->error, REASON_OK) << "request " << i;
        EXPECT_TRUE(bitEqual(r->outputs[0], reference[i]))
            << "request " << i;
    }
    EngineStats stats = engine.stats();
    EXPECT_EQ(stats.expired, 0u);
    EXPECT_EQ(stats.executed, rows.size());
}

TEST(Deadlines, QueuedExpiryCompletesWithTypedError)
{
    Rng rng(1402);
    pc::Circuit circuit = pc::randomCircuit(rng, 20, 2, 4, 6);
    std::vector<pc::Assignment> rows =
        pc::sampleDataset(rng, circuit, 9);

    ServeOptions options;
    options.startPaused = true;
    ReasonEngine engine(options);
    Session session = engine.createSession(circuit);
    std::vector<RequestHandle> handles;
    for (const pc::Assignment &x : rows)
        handles.push_back(session.submit(x, 0.0, 1'000'000ull));
    // The pause guarantees every deadline passes while still queued.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    engine.resume();
    for (RequestHandle &h : handles)
        EXPECT_EQ(session.wait(h)->error,
                  REASON_ERR_DEADLINE_EXCEEDED);

    // Expired requests never execute, so the latency means stay
    // unbiased, and the accounting is exact.
    EngineStats stats = engine.stats();
    EXPECT_EQ(stats.expired, rows.size());
    EXPECT_EQ(stats.executed, 0u);
    EXPECT_EQ(stats.completed, rows.size());
    EXPECT_EQ(stats.completed,
              stats.executed + stats.shedRequests + stats.expired +
                  stats.cancelled);
}

TEST(Deadlines, MixedExpirySparesTheDeadlineless)
{
    Rng rng(1403);
    pc::Circuit circuit = pc::randomCircuit(rng, 20, 2, 4, 6);
    std::vector<pc::Assignment> rows =
        pc::sampleDataset(rng, circuit, 20);
    std::vector<double> reference = serveOneAtATime(circuit, rows);

    ServeOptions options;
    options.startPaused = true;
    ReasonEngine engine(options);
    Session session = engine.createSession(circuit);
    std::vector<RequestHandle> handles;
    for (size_t i = 0; i < rows.size(); ++i)
        handles.push_back(
            i % 2 == 0 ? session.submit(rows[i])
                       : session.submit(rows[i], 0.0, 1'000'000ull));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    engine.resume();

    size_t expired = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
        std::shared_ptr<const Request> r = session.wait(handles[i]);
        if (i % 2 == 0) {
            // Survivors are bit-identical to a deadline-less run:
            // expiry of neighbors must not change their batches' math.
            ASSERT_EQ(r->error, REASON_OK) << "request " << i;
            EXPECT_TRUE(bitEqual(r->outputs[0], reference[i]))
                << "request " << i;
        } else {
            EXPECT_EQ(r->error, REASON_ERR_DEADLINE_EXCEEDED);
            ++expired;
        }
    }
    EXPECT_EQ(engine.stats().expired, expired);
}

// ---------------------------------------------------------------------------
// Cancellation.
// ---------------------------------------------------------------------------

TEST(Cancellation, QueuedRequestCancelsWithTypedError)
{
    Rng rng(1404);
    pc::Circuit circuit = pc::randomCircuit(rng, 20, 2, 4, 6);
    std::vector<pc::Assignment> rows =
        pc::sampleDataset(rng, circuit, 4);

    ServeOptions options;
    options.startPaused = true;
    ReasonEngine engine(options);
    Session session = engine.createSession(circuit);
    RequestHandle keep = session.submit(rows[0]);
    RequestHandle drop = session.submit(rows[1]);
    EXPECT_TRUE(drop.cancel());
    // Cancellation is immediate — the request is already complete
    // even while the engine is still paused — and idempotent-ly
    // unrepeatable: the second cancel finds it finished.
    EXPECT_TRUE(session.poll(drop));
    EXPECT_FALSE(drop.cancel());
    engine.resume();
    EXPECT_EQ(session.wait(drop)->error, REASON_ERR_CANCELLED);
    EXPECT_EQ(session.wait(keep)->error, REASON_OK);

    EngineStats stats = engine.stats();
    EXPECT_EQ(stats.cancelled, 1u);
    EXPECT_EQ(stats.executed, 1u);
    EXPECT_EQ(stats.completed, 2u);
}

TEST(Cancellation, CompletedRequestCannotBeCancelled)
{
    Rng rng(1405);
    pc::Circuit circuit = pc::randomCircuit(rng, 20, 2, 4, 6);
    std::vector<pc::Assignment> rows =
        pc::sampleDataset(rng, circuit, 1);

    ReasonEngine engine;
    Session session = engine.createSession(circuit);
    RequestHandle h = session.submit(rows[0]);
    EXPECT_EQ(session.wait(h)->error, REASON_OK);
    // A finished request keeps its result; cancel() must refuse.
    EXPECT_FALSE(h.cancel());
    EXPECT_EQ(h.error(), REASON_OK);
    EXPECT_EQ(engine.stats().cancelled, 0u);
}

// ---------------------------------------------------------------------------
// Graceful drain.
// ---------------------------------------------------------------------------

TEST(Drain, FinishesQueuedWorkThenClosesAdmission)
{
    Rng rng(1406);
    pc::Circuit circuit = pc::randomCircuit(rng, 20, 2, 4, 6);
    std::vector<pc::Assignment> rows =
        pc::sampleDataset(rng, circuit, 12);
    std::vector<double> reference = serveOneAtATime(circuit, rows);

    ServeOptions options;
    options.startPaused = true;
    ReasonEngine engine(options);
    Session session = engine.createSession(circuit);
    std::vector<RequestHandle> handles;
    for (const pc::Assignment &x : rows)
        handles.push_back(session.submit(x));

    // Drain releases the pause, finishes the backlog, and reports a
    // clean drain because nothing expired.
    EXPECT_TRUE(engine.drain(30 * kSecondNs));
    for (size_t i = 0; i < rows.size(); ++i) {
        std::shared_ptr<const Request> r = session.wait(handles[i]);
        ASSERT_EQ(r->error, REASON_OK) << "request " << i;
        EXPECT_TRUE(bitEqual(r->outputs[0], reference[i]))
            << "request " << i;
    }
    // Admission is closed: late submissions complete immediately with
    // the shutdown error instead of queueing forever.
    RequestHandle late = session.submit(rows[0]);
    EXPECT_EQ(session.wait(late)->error, REASON_ERR_SHUTTING_DOWN);
    // Drain is one-way and idempotent: an already-drained engine
    // drains cleanly again.
    EXPECT_TRUE(engine.drain(0));
}

TEST(Drain, ZeroDeadlineExpiresTheBacklog)
{
    Rng rng(1407);
    pc::Circuit circuit = pc::randomCircuit(rng, 20, 2, 4, 6);
    std::vector<pc::Assignment> rows =
        pc::sampleDataset(rng, circuit, 32);

    ServeOptions options;
    options.startPaused = true;
    options.maxBatch = 1;
    ReasonEngine engine(options);
    Session session = engine.createSession(circuit);
    std::vector<RequestHandle> handles;
    for (const pc::Assignment &x : rows)
        handles.push_back(session.submit(x));

    // A zero deadline expires everything still queued when the drain
    // begins; a dispatcher may legitimately pick off a prefix first,
    // so assert the dichotomy rather than an exact split.
    EXPECT_FALSE(engine.drain(0));
    size_t expired = 0;
    for (RequestHandle &h : handles) {
        const int error = session.wait(h)->error;
        EXPECT_TRUE(error == REASON_OK ||
                    error == REASON_ERR_DEADLINE_EXCEEDED)
            << "unexpected error " << error;
        expired += error == REASON_ERR_DEADLINE_EXCEEDED;
    }
    EXPECT_GT(expired, 0u);
    EngineStats stats = engine.stats();
    EXPECT_EQ(stats.expired, expired);
    EXPECT_EQ(stats.completed, rows.size());
    EXPECT_EQ(stats.completed,
              stats.executed + stats.shedRequests + stats.expired +
                  stats.cancelled);
}

// ---------------------------------------------------------------------------
// Fault plans: parsing and determinism.
// ---------------------------------------------------------------------------

TEST(FaultPlanSpec, ParsesRoundTripsAndRejects)
{
    FaultPlan plan;
    std::string error;
    ASSERT_TRUE(FaultPlan::parse(
        "seed=42,reset=0.01,torn=0.02,short=0.1,partial=0.1,"
        "delay=0.05,delay_us=500,stall=0.02,stall_us=2000,"
        "reset_nth=100,stall_nth=50",
        &plan, &error))
        << error;
    EXPECT_TRUE(plan.enabled());
    // describe() is canonical: parsing it back yields the same plan.
    FaultPlan reparsed;
    ASSERT_TRUE(FaultPlan::parse(plan.describe(), &reparsed, &error))
        << error;
    EXPECT_EQ(plan.describe(), reparsed.describe());

    // An empty spec is a valid no-fault plan.
    FaultPlan none;
    ASSERT_TRUE(FaultPlan::parse("", &none, &error)) << error;
    EXPECT_FALSE(none.enabled());

    // Unknown keys, malformed values, and out-of-range probabilities
    // are rejected with a diagnostic, never half-applied.
    for (const char *bad :
         {"bogus=1", "reset=", "reset=abc", "reset=1.5",
          "torn=-0.25", "seed=", "reset_nth=xyz"}) {
        FaultPlan p;
        error.clear();
        EXPECT_FALSE(FaultPlan::parse(bad, &p, &error)) << bad;
        EXPECT_FALSE(error.empty()) << bad;
    }
}

TEST(FaultPlanSpec, SameSpecSameSchedule)
{
    // The whole point of seeded injection: two plans with the same
    // spec make identical per-event decisions, independent of timing.
    const std::string spec =
        "seed=7,reset=0.2,torn=0.2,short=0.3,partial=0.3";
    FaultPlan a;
    FaultPlan b;
    std::string error;
    ASSERT_TRUE(FaultPlan::parse(spec, &a, &error)) << error;
    ASSERT_TRUE(FaultPlan::parse(spec, &b, &error)) << error;
    bool anything_fired = false;
    for (int i = 0; i < 400; ++i) {
        const FaultAction ra = i % 2 == 0 ? a.onRecv(512)
                                          : a.onSend(512);
        const FaultAction rb = i % 2 == 0 ? b.onRecv(512)
                                          : b.onSend(512);
        EXPECT_EQ(ra.reset, rb.reset) << "event " << i;
        EXPECT_EQ(ra.maxBytes, rb.maxBytes) << "event " << i;
        EXPECT_EQ(ra.resetAfter, rb.resetAfter) << "event " << i;
        EXPECT_EQ(ra.delayUs, rb.delayUs) << "event " << i;
        anything_fired |= ra.reset || ra.maxBytes != 0;
    }
    EXPECT_TRUE(anything_fired) << "spec injected nothing in 400 events";
    const FaultStats sa = a.stats();
    const FaultStats sb = b.stats();
    EXPECT_EQ(sa.resets, sb.resets);
    EXPECT_EQ(sa.tornFrames, sb.tornFrames);
    EXPECT_EQ(sa.shortReads, sb.shortReads);
    EXPECT_EQ(sa.partialWrites, sb.partialWrites);
    EXPECT_EQ(sa.total(), sb.total());
    EXPECT_GT(sa.total(), 0u);
}

TEST(FaultPlanSpec, NthTriggersFireDeterministically)
{
    FaultPlan plan;
    std::string error;
    ASSERT_TRUE(FaultPlan::parse("reset_nth=3", &plan, &error))
        << error;
    size_t resets = 0;
    for (int i = 0; i < 12; ++i)
        resets += plan.onSend(64).reset;
    EXPECT_EQ(resets, 4u); // every 3rd of 12 events
    EXPECT_EQ(plan.stats().resets, 4u);
}

#if REASON_HAS_SOCKETS

// ---------------------------------------------------------------------------
// Socket serving: resilient client vs the socket server.
// ---------------------------------------------------------------------------

namespace {

struct ServerFixture
{
    ServeOptions serveOptions;
    ReasonEngine engine;
    SocketServer server;

    explicit ServerFixture(const pc::Circuit &circuit,
                           const ServerOptions &options = {})
        : serveOptions(makeServeOptions()),
          engine(serveOptions),
          server(engine, pc::cachedLowering(circuit), options)
    {
        std::string error;
        if (!server.start(&error))
            ADD_FAILURE() << "server start failed: " << error;
    }

    static ServeOptions
    makeServeOptions()
    {
        ServeOptions o;
        o.maxBatch = 8;
        o.serveThreads = 1;
        o.dispatchers = 2;
        return o;
    }
};

} // namespace

TEST(SocketReliability, RoundTripIsBitExactAndDrainsClean)
{
    Rng rng(1408);
    pc::Circuit circuit = pc::randomCircuit(rng, 16, 2, 4, 6);
    std::vector<pc::Assignment> rows =
        pc::sampleDataset(rng, circuit, 40);
    std::vector<double> reference = serveOneAtATime(circuit, rows);

    ServerFixture fx(circuit);
    ClientOptions copt;
    copt.port = fx.server.port();
    copt.clientId = 21;
    Client client(copt);
    EXPECT_TRUE(client.ping(0x600df00dull));
    std::vector<QueryOutcome> outcomes;
    EXPECT_TRUE(client.runBatch(rows, &outcomes));
    ASSERT_EQ(outcomes.size(), rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
        ASSERT_EQ(outcomes[i].error, REASON_OK) << "query " << i;
        EXPECT_TRUE(bitEqual(outcomes[i].value, reference[i]))
            << "query " << i;
        EXPECT_GT(outcomes[i].latencyNs, 0u) << "query " << i;
    }
    const ClientStats cs = client.stats();
    EXPECT_EQ(cs.connects, 1u);
    EXPECT_EQ(cs.retriesSent, 0u);
    EXPECT_EQ(cs.transportErrors, 0u);
    EXPECT_TRUE(fx.server.stop()) << "drain expired queued work";
    EXPECT_EQ(fx.server.stats().versionRejects, 0u);
}

TEST(SocketReliability, SurvivesInjectedFaultsBitExactly)
{
    Rng rng(1409);
    pc::Circuit circuit = pc::randomCircuit(rng, 16, 2, 4, 6);
    std::vector<pc::Assignment> rows =
        pc::sampleDataset(rng, circuit, 60);
    std::vector<double> reference = serveOneAtATime(circuit, rows);

    FaultPlan plan;
    std::string error;
    ASSERT_TRUE(FaultPlan::parse(
        "seed=13,reset=0.02,torn=0.02,short=0.15,partial=0.15", &plan,
        &error))
        << error;

    {
        ServerFixture fx(circuit);
        installFaultPlan(&plan);
        ClientOptions copt;
        copt.port = fx.server.port();
        copt.clientId = 33;
        copt.maxRetries = 200;
        copt.backoffBaseMs = 1;
        copt.backoffCapMs = 20;
        Client client(copt);
        std::vector<QueryOutcome> outcomes;
        // The contract under faults: every query still terminates
        // with the bit-exact answer — reconnect plus idempotent retry
        // hides every injected failure.
        EXPECT_TRUE(client.runBatch(rows, &outcomes));
        installFaultPlan(nullptr);
        ASSERT_EQ(outcomes.size(), rows.size());
        for (size_t i = 0; i < rows.size(); ++i) {
            ASSERT_EQ(outcomes[i].error, REASON_OK) << "query " << i;
            EXPECT_TRUE(bitEqual(outcomes[i].value, reference[i]))
                << "query " << i;
        }
        EXPECT_TRUE(fx.server.stop());
    }
    EXPECT_GT(plan.stats().total(), 0u)
        << "fault plan injected nothing";
}

TEST(SocketReliability, VersionMismatchIsAnsweredExplicitly)
{
    Rng rng(1410);
    pc::Circuit circuit = pc::randomCircuit(rng, 16, 2, 4, 6);
    ServerFixture fx(circuit);

    // Speak v2 at the server by hand: it must ack with its own
    // version and then close, never hang or execute anything.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(fx.server.port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    netSetRecvTimeoutMs(fd, 2000);
    std::vector<uint8_t> hello;
    wire::appendHello(hello, 2);
    ASSERT_TRUE(netSendAll(fd, hello.data(), hello.size()));

    wire::FrameDecoder decoder;
    std::vector<uint8_t> buf(4096);
    bool acked = false;
    bool closed = false;
    while (!closed) {
        const long n = netRecv(fd, buf.data(), buf.size());
        if (n <= 0) {
            closed = true;
            break;
        }
        decoder.feed(buf.data(), size_t(n));
        wire::Frame frame;
        while (decoder.next(&frame) ==
               wire::FrameDecoder::Status::Ok) {
            EXPECT_EQ(frame.type, wire::FrameType::HelloAck);
            EXPECT_EQ(frame.helloVersion, wire::kProtocolVersion);
            acked = true;
        }
    }
    ::close(fd);
    EXPECT_TRUE(acked) << "server closed without acking its version";
    EXPECT_TRUE(fx.server.stop());
    EXPECT_EQ(fx.server.stats().versionRejects, 1u);
}

TEST(SocketReliability, MutePeerCannotHangTheClient)
{
    // A listener that never accepts: connects succeed (backlog) but
    // the handshake gets no bytes, so the bounded receive wait and
    // the retry budget must terminate every query with a typed error.
    const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(listener, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    ASSERT_EQ(::listen(listener, 8), 0);
    socklen_t len = sizeof(addr);
    ASSERT_EQ(::getsockname(listener,
                            reinterpret_cast<sockaddr *>(&addr),
                            &len),
              0);

    ClientOptions copt;
    copt.port = ntohs(addr.sin_port);
    copt.maxRetries = 2;
    copt.backoffBaseMs = 1;
    copt.backoffCapMs = 5;
    copt.recvTimeoutMs = 100;
    Client client(copt);
    std::vector<pc::Assignment> rows = {{0u, 1u}, {1u, 0u}};
    std::vector<QueryOutcome> outcomes;
    EXPECT_FALSE(client.runBatch(rows, &outcomes));
    ASSERT_EQ(outcomes.size(), rows.size());
    for (const QueryOutcome &o : outcomes)
        EXPECT_EQ(o.error, kClientErrTransport);
    EXPECT_GT(client.stats().connectFailures, 0u);
    ::close(listener);
}

TEST(SocketReliability, DuplicateSubmitsReplayCachedAnswers)
{
    Rng rng(1411);
    pc::Circuit circuit = pc::randomCircuit(rng, 16, 2, 4, 6);
    std::vector<pc::Assignment> rows =
        pc::sampleDataset(rng, circuit, 15);

    ServerFixture fx(circuit);
    ClientOptions copt;
    copt.port = fx.server.port();
    copt.clientId = 55;

    std::vector<QueryOutcome> first;
    std::vector<QueryOutcome> second;
    {
        Client client(copt);
        EXPECT_TRUE(client.runBatch(rows, &first));
    }
    {
        // A second client with the same identity re-submitting the
        // same ids models a reconnect-and-retry after a lost answer:
        // the server must replay its cache, not re-execute.
        Client client(copt);
        EXPECT_TRUE(client.runBatch(rows, &second));
    }
    ASSERT_EQ(first.size(), rows.size());
    ASSERT_EQ(second.size(), rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
        ASSERT_EQ(first[i].error, REASON_OK) << "query " << i;
        ASSERT_EQ(second[i].error, REASON_OK) << "query " << i;
        EXPECT_TRUE(bitEqual(first[i].value, second[i].value))
            << "query " << i;
    }
    EXPECT_EQ(fx.server.stats().duplicatesSuppressed, rows.size());
    EXPECT_TRUE(fx.server.stop());
}

TEST(SocketReliability, ClientDeadlineCapsTheRetryLoop)
{
    Rng rng(1412);
    pc::Circuit circuit = pc::randomCircuit(rng, 16, 2, 4, 6);
    std::vector<pc::Assignment> rows =
        pc::sampleDataset(rng, circuit, 4);

    // Reset every connection attempt's traffic: no query can ever be
    // answered, so the per-query deadline is what terminates them.
    FaultPlan plan;
    std::string error;
    ASSERT_TRUE(FaultPlan::parse("reset_nth=1", &plan, &error))
        << error;
    ServerFixture fx(circuit);
    installFaultPlan(&plan);
    ClientOptions copt;
    copt.port = fx.server.port();
    copt.clientId = 77;
    copt.maxRetries = 100000; // the deadline, not the budget, ends it
    copt.backoffBaseMs = 1;
    copt.backoffCapMs = 5;
    copt.deadlineNs = 300 * 1'000'000ull; // 300 ms
    copt.recvTimeoutMs = 50;
    Client client(copt);
    std::vector<QueryOutcome> outcomes;
    client.runBatch(rows, &outcomes);
    installFaultPlan(nullptr);
    ASSERT_EQ(outcomes.size(), rows.size());
    for (const QueryOutcome &o : outcomes)
        EXPECT_EQ(o.error, REASON_ERR_DEADLINE_EXCEEDED);
    fx.server.stop();
}

#endif // REASON_HAS_SOCKETS
