#include "pc/flat_pc.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/numeric.h"

namespace reason {
namespace pc {

FlatCircuit::FlatCircuit(const Circuit &circuit)
    : numVars(circuit.numVars()), arity(circuit.arity()),
      root(circuit.root())
{
    reasonAssert(root != kInvalidNode, "circuit has no root");
    const size_t n = circuit.numNodes();
    types.resize(n);
    leafSlot.assign(n, kInvalidNode);
    edgeOffset.reserve(n + 1);
    edgeOffset.push_back(0);
    edgeTarget.reserve(circuit.numEdges());
    edgeLogWeight.reserve(circuit.numEdges());

    for (size_t i = 0; i < n; ++i) {
        const PcNode &node = circuit.node(NodeId(i));
        switch (node.type) {
          case PcNodeType::Leaf: {
            types[i] = kLeaf;
            leafSlot[i] = uint32_t(leafVar.size());
            leafVar.push_back(node.var);
            for (uint32_t v = 0; v < arity; ++v)
                leafLogDist.push_back(node.dist[v] > 0.0
                                          ? std::log(node.dist[v])
                                          : kLogZero);
            break;
          }
          case PcNodeType::Sum: {
            types[i] = kSum;
            for (size_t k = 0; k < node.children.size(); ++k) {
                edgeTarget.push_back(node.children[k]);
                edgeLogWeight.push_back(node.weights[k] > 0.0
                                            ? std::log(node.weights[k])
                                            : kLogZero);
            }
            break;
          }
          case PcNodeType::Product: {
            types[i] = kProduct;
            for (NodeId c : node.children) {
                edgeTarget.push_back(c);
                edgeLogWeight.push_back(kLogZero);
            }
            break;
          }
        }
        edgeOffset.push_back(uint32_t(edgeTarget.size()));
    }
}

CircuitEvaluator::CircuitEvaluator(const FlatCircuit &flat)
    : flat_(flat), logv_(flat.numNodes(), kLogZero)
{
    size_t max_fan_in = 0;
    for (size_t i = 0; i < flat.numNodes(); ++i)
        max_fan_in = std::max<size_t>(
            max_fan_in, flat.edgeOffset[i + 1] - flat.edgeOffset[i]);
    terms_.resize(max_fan_in, 0.0);
}

std::span<const double>
CircuitEvaluator::evaluate(const Assignment &x)
{
    reasonAssert(x.size() >= flat_.numVars, "assignment too short");
    double *val = logv_.data();
    const uint8_t *types = flat_.types.data();
    const uint32_t *off = flat_.edgeOffset.data();
    const uint32_t *tgt = flat_.edgeTarget.data();
    const double *lw = flat_.edgeLogWeight.data();
    const uint32_t *slot = flat_.leafSlot.data();
    const uint32_t *var = flat_.leafVar.data();
    const double *dist = flat_.leafLogDist.data();
    const uint32_t arity = flat_.arity;
    const size_t n = flat_.numNodes();

    for (size_t i = 0; i < n; ++i) {
        switch (types[i]) {
          case FlatCircuit::kLeaf: {
            const uint32_t s = slot[i];
            const uint32_t v = x[var[s]];
            if (v == kMissing) {
                val[i] = 0.0; // marginalized: sums to 1
            } else {
                reasonAssert(v < arity, "assignment value out of range");
                val[i] = dist[size_t(s) * arity + v];
            }
            break;
          }
          case FlatCircuit::kProduct: {
            // Straight-line add (no early break): -inf absorbs and no
            // operand can be +inf, so the result is unchanged and the
            // loop stays branch-free.
            double acc = 0.0;
            for (uint32_t e = off[i]; e < off[i + 1]; ++e)
                acc += val[tgt[e]];
            val[i] = acc;
            break;
          }
          case FlatCircuit::kSum: {
            // Two-pass log-sum-exp: one max scan, then exp-accumulate
            // against the max.  This spends one log per *node* instead
            // of one log1p+exp per *edge* (what sequential logAdd
            // costs), and after max subtraction the exp argument lies
            // in (-inf, 0] where fastExpNonPositive applies.  Terms
            // below the -40 cut contribute < 4e-18 relative and are
            // skipped; total deviation from sequential logAdd stays
            // orders of magnitude inside the 1e-12 contract.
            constexpr double kNegligible = -40.0;
            const uint32_t lo = off[i];
            const uint32_t hi_e = off[i + 1];
            double hi = kLogZero;
            double *terms = terms_.data();
            for (uint32_t e = lo; e < hi_e; ++e) {
                const double term = lw[e] + val[tgt[e]];
                terms[e - lo] = term;
                if (term > hi)
                    hi = term;
            }
            if (hi == kLogZero) {
                val[i] = kLogZero;
                break;
            }
            double acc = 0.0;
            for (uint32_t e = lo; e < hi_e; ++e) {
                const double d = terms[e - lo] - hi;
                if (d >= kNegligible)
                    acc += fastExpNonPositive(d);
            }
            val[i] = hi + std::log(acc);
            break;
          }
        }
    }
    return {logv_.data(), logv_.size()};
}

double
CircuitEvaluator::logLikelihood(const Assignment &x)
{
    return evaluate(x)[flat_.root];
}

void
CircuitEvaluator::logLikelihoodBatch(const std::vector<Assignment> &xs,
                                     std::span<double> out)
{
    reasonAssert(out.size() >= xs.size(), "batch output buffer too small");
    for (const Assignment &x : xs)
        reasonAssert(x.size() >= flat_.numVars, "assignment too short");
    size_t r = 0;
    if (xs.size() >= kBlock) {
        if (blockVal_.empty()) {
            blockVal_.resize(flat_.numNodes() * kBlock, 0.0);
            blockTerms_.resize(terms_.size() * kBlock, 0.0);
        }
        for (; r + kBlock <= xs.size(); r += kBlock)
            evaluateBlock(&xs[r], &out[r]);
    }
    for (; r < xs.size(); ++r)
        out[r] = evaluate(xs[r])[flat_.root];
}

void
CircuitEvaluator::evaluateBlock(const Assignment *rows, double *out)
{
    constexpr size_t B = kBlock;
    double *val = blockVal_.data();
    double *terms = blockTerms_.data();
    const uint8_t *types = flat_.types.data();
    const uint32_t *off = flat_.edgeOffset.data();
    const uint32_t *tgt = flat_.edgeTarget.data();
    const double *lw = flat_.edgeLogWeight.data();
    const uint32_t *slot = flat_.leafSlot.data();
    const uint32_t *var = flat_.leafVar.data();
    const double *dist = flat_.leafLogDist.data();
    const uint32_t arity = flat_.arity;
    const size_t n = flat_.numNodes();

    for (size_t i = 0; i < n; ++i) {
        double *vi = val + i * B;
        switch (types[i]) {
          case FlatCircuit::kLeaf: {
            const uint32_t s = slot[i];
            const uint32_t v_idx = var[s];
            const double *row_dist = dist + size_t(s) * arity;
            for (size_t b = 0; b < B; ++b) {
                const uint32_t v = rows[b][v_idx];
                if (v == kMissing) {
                    vi[b] = 0.0; // marginalized: sums to 1
                } else {
                    reasonAssert(v < arity,
                                 "assignment value out of range");
                    vi[b] = row_dist[v];
                }
            }
            break;
          }
          case FlatCircuit::kProduct: {
            double acc[B] = {0, 0, 0, 0, 0, 0, 0, 0};
            for (uint32_t e = off[i]; e < off[i + 1]; ++e) {
                const double *child = val + size_t(tgt[e]) * B;
                for (size_t b = 0; b < B; ++b)
                    acc[b] += child[b];
            }
            for (size_t b = 0; b < B; ++b)
                vi[b] = acc[b];
            break;
          }
          case FlatCircuit::kSum: {
            const uint32_t lo = off[i];
            const uint32_t hi_e = off[i + 1];
            double hi[B];
            for (size_t b = 0; b < B; ++b)
                hi[b] = kLogZero;
            for (uint32_t e = lo; e < hi_e; ++e) {
                const double *child = val + size_t(tgt[e]) * B;
                double *trow = terms + size_t(e - lo) * B;
                const double w = lw[e];
                for (size_t b = 0; b < B; ++b) {
                    const double t = w + child[b];
                    trow[b] = t;
                    hi[b] = std::max(hi[b], t);
                }
            }
            // Dead lanes (all terms -inf) would produce NaN in the
            // subtraction below; substitute 0 and restore afterwards.
            bool dead[B];
            for (size_t b = 0; b < B; ++b) {
                dead[b] = hi[b] == kLogZero;
                if (dead[b])
                    hi[b] = 0.0;
            }
            double acc[B] = {0, 0, 0, 0, 0, 0, 0, 0};
            for (uint32_t e = lo; e < hi_e; ++e) {
                const double *trow = terms + size_t(e - lo) * B;
                for (size_t b = 0; b < B; ++b)
                    acc[b] += fastExpNonPositive(trow[b] - hi[b]);
            }
            for (size_t b = 0; b < B; ++b)
                vi[b] = dead[b] ? kLogZero : hi[b] + std::log(acc[b]);
            break;
          }
        }
    }
    const double *root_val = val + size_t(flat_.root) * B;
    for (size_t b = 0; b < B; ++b)
        out[b] = root_val[b];
}

void
logDerivativesInto(const FlatCircuit &flat, std::span<const double> logv,
                   std::vector<double> &logd)
{
    const size_t n = flat.numNodes();
    reasonAssert(logv.size() == n, "log-value/graph size mismatch");
    logd.assign(n, kLogZero);
    logd[flat.root] = 0.0;

    const uint8_t *types = flat.types.data();
    const uint32_t *off = flat.edgeOffset.data();
    const uint32_t *tgt = flat.edgeTarget.data();
    const double *lw = flat.edgeLogWeight.data();

    for (size_t i = n; i-- > 0;) {
        if (logd[i] == kLogZero)
            continue;
        switch (types[i]) {
          case FlatCircuit::kLeaf:
            break;
          case FlatCircuit::kSum:
            for (uint32_t e = off[i]; e < off[i + 1]; ++e) {
                if (lw[e] == kLogZero)
                    continue;
                const uint32_t c = tgt[e];
                logd[c] = logAdd(logd[c], logd[i] + lw[e]);
            }
            break;
          case FlatCircuit::kProduct: {
            // dv_n/dv_c = prod of sibling values; handle zeros exactly.
            size_t zeros = 0;
            uint32_t zero_child = kInvalidNode;
            double finite_sum = 0.0;
            for (uint32_t e = off[i]; e < off[i + 1]; ++e) {
                const uint32_t c = tgt[e];
                if (logv[c] == kLogZero) {
                    ++zeros;
                    zero_child = c;
                } else {
                    finite_sum += logv[c];
                }
            }
            if (zeros >= 2)
                break;
            if (zeros == 1) {
                logd[zero_child] =
                    logAdd(logd[zero_child], logd[i] + finite_sum);
                break;
            }
            for (uint32_t e = off[i]; e < off[i + 1]; ++e) {
                const uint32_t c = tgt[e];
                logd[c] = logAdd(logd[c],
                                 logd[i] + finite_sum - logv[c]);
            }
            break;
          }
        }
    }
}

FlowAccumulator::FlowAccumulator(const FlatCircuit &flat)
    : flat_(flat), eval_(flat), flow_(flat.numNodes(), 0.0),
      edgeTotal_(flat.numEdges(), 0.0), nodeTotal_(flat.numNodes(), 0.0),
      leafTotal_(flat.numLeaves() * flat.arity, 0.0)
{
}

void
FlowAccumulator::add(const Assignment &x)
{
    ++count_;
    std::span<const double> val = eval_.evaluate(x);
    if (val[flat_.root] == kLogZero)
        return; // zero-probability evidence carries no flow

    std::fill(flow_.begin(), flow_.end(), 0.0);
    flow_[flat_.root] = 1.0;

    const uint8_t *types = flat_.types.data();
    const uint32_t *off = flat_.edgeOffset.data();
    const uint32_t *tgt = flat_.edgeTarget.data();
    const double *lw = flat_.edgeLogWeight.data();
    const uint32_t *slot = flat_.leafSlot.data();
    const uint32_t *var = flat_.leafVar.data();

    // Children precede parents, so a reverse scan visits parents first;
    // a node's flow is final when the scan reaches it.
    for (size_t i = flat_.numNodes(); i-- > 0;) {
        const double fn = flow_[i];
        if (fn == 0.0)
            continue;
        nodeTotal_[i] += fn;
        switch (types[i]) {
          case FlatCircuit::kLeaf: {
            const uint32_t s = slot[i];
            const uint32_t v = x[var[s]];
            if (v != kMissing)
                leafTotal_[size_t(s) * flat_.arity + v] += fn;
            break;
          }
          case FlatCircuit::kProduct:
            for (uint32_t e = off[i]; e < off[i + 1]; ++e) {
                edgeTotal_[e] += fn;
                flow_[tgt[e]] += fn;
            }
            break;
          case FlatCircuit::kSum:
            for (uint32_t e = off[i]; e < off[i + 1]; ++e) {
                if (lw[e] == kLogZero)
                    continue;
                const double child_val = val[tgt[e]];
                if (child_val == kLogZero)
                    continue;
                const double f =
                    std::exp(lw[e] + child_val - val[i]) * fn;
                edgeTotal_[e] += f;
                flow_[tgt[e]] += f;
            }
            break;
        }
    }
}

} // namespace pc
} // namespace reason
