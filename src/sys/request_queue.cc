#include "sys/request_queue.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "util/logging.h"

namespace reason {
namespace sys {

namespace {

uint64_t
nowNs()
{
    return steadyNowNs();
}

/** steadyNowNs value as a steady_clock time_point (for waits). */
std::chrono::steady_clock::time_point
steadyTimePoint(uint64_t ns)
{
    return std::chrono::steady_clock::time_point(
        std::chrono::nanoseconds(ns));
}

/** EWMA smoothing factor for arrival/execution tracking. */
constexpr double kEwmaAlpha = 0.2;

/** Linger cap when autotuning is on but no explicit window is set. */
constexpr unsigned kAutoLingerCapUs = 1000;

double
ewma(double current, double sample)
{
    return current <= 0.0
               ? sample
               : current + kEwmaAlpha * (sample - current);
}

/** Nearest-rank percentile of an already-sorted sample. */
double
percentileSorted(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const double rank = std::ceil(q * double(sorted.size()));
    const size_t idx =
        std::min(sorted.size() - 1,
                 size_t(std::max(rank - 1.0, 0.0)));
    return sorted[idx];
}

} // namespace

RequestQueue::RequestQueue(const QueueOptions &options)
    : options_(options)
{
    reservoir_.reserve(kLatencyReservoirSize);
}

void
RequestQueue::failLocked(const std::shared_ptr<Request> &request,
                         int error, uint64_t now)
{
    request->error = error;
    request->state = RequestState::Done;
    if (request->enqueuedNs == 0)
        request->enqueuedNs = now;
    request->completedNs = now;
    ++stats_.completed;
    if (error == REASON_ERR_OVERLOAD)
        ++stats_.shedRequests;
    else if (error == REASON_ERR_DEADLINE_EXCEEDED)
        ++stats_.expired;
    else if (error == REASON_ERR_CANCELLED)
        ++stats_.cancelled;
    doneCv_.notify_all();
}

void
RequestQueue::readyShardLocked(const ShardKey &key, Shard &shard)
{
    reasonAssert(!shard.inReady && !shard.inService,
                 "readying a held shard");
    shard.inReady = true;
    ready_.push_back(key);
    workCv_.notify_all();
}

void
RequestQueue::eraseShardIfIdleLocked(ShardMap::iterator it)
{
    if (it == shards_.end())
        return;
    Shard &shard = it->second;
    if (shard.pendingRequests == 0 && !shard.inService &&
        !shard.inReady)
        shards_.erase(it);
}

bool
RequestQueue::shedOldestLocked()
{
    // The age deque is an admission-ordered *view*; entries whose
    // request already left the queue (dispatched or shed) are pruned
    // here instead of eagerly at pop time.
    while (!age_.empty() &&
           age_.front()->state != RequestState::Queued)
        age_.pop_front();
    if (age_.empty())
        return false;
    std::shared_ptr<Request> victim = age_.front();
    age_.pop_front();

    auto sit = shards_.find(ShardKey{victim->groupKey, victim->mode});
    reasonAssert(sit != shards_.end(), "shed victim has no shard");
    Shard &shard = sit->second;
    bool removed = false;
    for (size_t li = 0; li < shard.lanes.size(); ++li) {
        Lane &lane = shard.lanes[li];
        if (lane.session != victim->session.get())
            continue;
        // The globally oldest queued request is necessarily the head
        // of its lane (lanes are FIFO in admission order).
        reasonAssert(lane.queue.front().get() == victim.get(),
                     "shed victim not at lane head");
        lane.queue.pop_front();
        if (lane.queue.empty()) {
            shard.lanes.erase(shard.lanes.begin() +
                              std::ptrdiff_t(li));
            if (shard.cursor > li)
                --shard.cursor;
        }
        removed = true;
        break;
    }
    reasonAssert(removed, "shed victim has no lane");
    --shard.pendingRequests;
    --totalPending_;
    failLocked(victim, REASON_ERR_OVERLOAD, nowNs());
    return true;
}

bool
RequestQueue::removeQueuedLocked(const std::shared_ptr<Request> &request)
{
    auto sit = shards_.find(ShardKey{request->groupKey, request->mode});
    if (sit == shards_.end())
        return false;
    Shard &shard = sit->second;
    for (size_t li = 0; li < shard.lanes.size(); ++li) {
        Lane &lane = shard.lanes[li];
        if (lane.session != request->session.get())
            continue;
        auto qit = std::find(lane.queue.begin(), lane.queue.end(),
                             request);
        if (qit == lane.queue.end())
            return false;
        lane.queue.erase(qit);
        if (lane.queue.empty()) {
            shard.lanes.erase(shard.lanes.begin() +
                              std::ptrdiff_t(li));
            if (shard.cursor > li)
                --shard.cursor;
        }
        --shard.pendingRequests;
        --totalPending_;
        eraseShardIfIdleLocked(shards_.find(
            ShardKey{request->groupKey, request->mode}));
        return true;
    }
    return false;
}

void
RequestQueue::noteDeadlineLocked(uint64_t deadlineNs)
{
    if (deadlineNs != 0 &&
        (minDeadlineNs_ == 0 || deadlineNs < minDeadlineNs_)) {
        minDeadlineNs_ = deadlineNs;
        // Deadline-aware waits must re-arm their wake-up time.
        workCv_.notify_all();
    }
}

size_t
RequestQueue::sweepExpiredLocked(uint64_t now)
{
    if (minDeadlineNs_ == 0 || now < minDeadlineNs_)
        return 0;
    size_t expired = 0;
    uint64_t min_next = 0;
    for (auto sit = shards_.begin(); sit != shards_.end();) {
        Shard &shard = sit->second;
        for (size_t li = 0; li < shard.lanes.size();) {
            Lane &lane = shard.lanes[li];
            for (size_t qi = 0; qi < lane.queue.size();) {
                const std::shared_ptr<Request> &r = lane.queue[qi];
                if (r->deadlineNs != 0 && r->deadlineNs <= now) {
                    std::shared_ptr<Request> victim = r;
                    lane.queue.erase(lane.queue.begin() +
                                     std::ptrdiff_t(qi));
                    --shard.pendingRequests;
                    --totalPending_;
                    ++expired;
                    failLocked(victim, REASON_ERR_DEADLINE_EXCEEDED,
                               now);
                    continue;
                }
                if (r->deadlineNs != 0 &&
                    (min_next == 0 || r->deadlineNs < min_next))
                    min_next = r->deadlineNs;
                ++qi;
            }
            if (lane.queue.empty()) {
                shard.lanes.erase(shard.lanes.begin() +
                                  std::ptrdiff_t(li));
                if (shard.cursor > li)
                    --shard.cursor;
            } else {
                ++li;
            }
        }
        // Idle shard entries left behind by the sweep can be erased
        // unless a dispatcher holds them (inService) or a stale ready_
        // entry still references them (popGroup handles gathering
        // nothing from those).
        auto cur = sit++;
        eraseShardIfIdleLocked(cur);
    }
    minDeadlineNs_ = min_next;
    return expired;
}

void
RequestQueue::failAllQueuedLocked(int error, uint64_t now)
{
    // Fail queued work but keep the shard entries themselves: a
    // dispatcher lingering inside popGroup holds a reference into the
    // map across its timed wait, so entries must stay stable here
    // (the same discipline as shutdown()).
    for (auto &entry : shards_) {
        Shard &shard = entry.second;
        for (Lane &lane : shard.lanes)
            for (const std::shared_ptr<Request> &r : lane.queue)
                failLocked(r, error, now);
        shard.lanes.clear();
        shard.pendingRequests = 0;
        shard.inReady = false;
    }
    ready_.clear();
    age_.clear();
    totalPending_ = 0;
    minDeadlineNs_ = 0;
}

void
RequestQueue::push(const std::shared_ptr<Request> &request)
{
    reasonAssert(request != nullptr, "null request");
    std::lock_guard<std::mutex> lock(mutex_);
    const uint64_t now = nowNs();
    request->enqueuedNs = now;
    request->ownerQueue = this;
    if (shutdown_) {
        failLocked(request, REASON_ERR_SHUTDOWN, now);
        return;
    }
    if (draining_) {
        failLocked(request, REASON_ERR_SHUTTING_DOWN, now);
        return;
    }
    // Expire aged work before judging capacity so a burst of dead
    // requests cannot trigger shedding of live ones (and so expiry
    // does not depend on a dispatcher being free to sweep).
    if (minDeadlineNs_ != 0 && now >= minDeadlineNs_)
        sweepExpiredLocked(now);
    if (options_.capacity > 0 &&
        totalPending_ >= options_.capacity) {
        // Shed before admitting so the pending count never exceeds
        // capacity; fall back to rejection if nothing is sheddable.
        if (options_.policy == QueuePolicy::RejectNew ||
            !shedOldestLocked()) {
            failLocked(request, REASON_ERR_OVERLOAD, now);
            return;
        }
    }

    if (lastArrivalNs_ != 0)
        ewmaInterArrivalNs_ =
            ewma(ewmaInterArrivalNs_, double(now - lastArrivalNs_));
    lastArrivalNs_ = now;

    const ShardKey key{request->groupKey, request->mode};
    Shard &shard = shards_[key];
    if (request->exclusive)
        shard.exclusive = true;
    Lane *lane = nullptr;
    for (Lane &l : shard.lanes)
        if (l.session == request->session.get()) {
            lane = &l;
            break;
        }
    if (lane == nullptr) {
        shard.lanes.push_back(Lane{request->session.get(), {}});
        lane = &shard.lanes.back();
    }
    lane->queue.push_back(request);
    ++shard.pendingRequests;
    ++totalPending_;
    noteDeadlineLocked(request->deadlineNs);
    if (options_.capacity > 0 &&
        options_.policy == QueuePolicy::ShedOldest)
        age_.push_back(request);

    stats_.requests += 1;
    stats_.rows += request->numRows();
    stats_.maxQueueDepth =
        std::max<uint64_t>(stats_.maxQueueDepth, totalPending_);

    if (!shard.inService && !shard.inReady)
        readyShardLocked(key, shard);
    // Wake lingering pops of this shard too (they hold it inService
    // and gather on every wakeup).
    workCv_.notify_all();
}

void
RequestQueue::gatherLocked(Shard &shard,
                           std::vector<std::shared_ptr<Request>> &group,
                           size_t &rowCount, size_t maxRows)
{
    const uint64_t now = nowNs();
    while (shard.pendingRequests > 0 && !shard.lanes.empty()) {
        if (shard.cursor >= shard.lanes.size())
            shard.cursor = 0;
        Lane &lane = shard.lanes[shard.cursor];
        std::shared_ptr<Request> head = lane.queue.front();
        if (head->deadlineNs != 0 && head->deadlineNs <= now) {
            // Expired while queued: drop at pop time instead of
            // spending batch slots on an answer nobody is waiting for.
            // minDeadlineNs_ stays a conservative lower bound; the
            // next sweep recomputes it exactly.
            lane.queue.pop_front();
            --shard.pendingRequests;
            --totalPending_;
            failLocked(head, REASON_ERR_DEADLINE_EXCEEDED, now);
            if (lane.queue.empty())
                shard.lanes.erase(shard.lanes.begin() +
                                  std::ptrdiff_t(shard.cursor));
            continue;
        }
        // The first request always rides (oversized explicit batches
        // still run); afterwards stop at the row budget.
        if (!group.empty() &&
            rowCount + head->numRows() > maxRows)
            break;
        rowCount += head->numRows();
        group.push_back(std::move(head));
        lane.queue.pop_front();
        --shard.pendingRequests;
        --totalPending_;
        if (lane.queue.empty())
            // Erasing shifts the next lane into cursor's slot, which
            // is exactly the round-robin successor.
            shard.lanes.erase(shard.lanes.begin() +
                              std::ptrdiff_t(shard.cursor));
        else
            ++shard.cursor;
        if (rowCount >= maxRows)
            break;
    }
}

unsigned
RequestQueue::effectiveLingerLocked(size_t rowCount, size_t maxRows,
                                    unsigned lingerUs)
{
    unsigned effective = lingerUs;
    if (options_.autoLinger) {
        const unsigned capUs =
            lingerUs > 0 ? lingerUs : kAutoLingerCapUs;
        effective = 0;
        if (ewmaInterArrivalNs_ > 0.0 && ewmaExecNs_ > 0.0 &&
            rowCount < maxRows) {
            // Expected time for arrivals to fill the remaining batch
            // slots; linger only while that wait is small next to the
            // batch execution it would amortize.
            const double fill_ns =
                ewmaInterArrivalNs_ * double(maxRows - rowCount);
            if (fill_ns < ewmaExecNs_)
                effective = unsigned(std::min(
                    fill_ns / 1000.0, double(capUs)));
        }
    }
    lastLingerUs_ = double(effective);
    return effective;
}

std::vector<std::shared_ptr<Request>>
RequestQueue::popGroup(size_t maxRows, unsigned lingerUs)
{
    if (maxRows == 0)
        maxRows = 1;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        // Deadline-aware wait: with pending deadlines the wait wakes
        // at the earliest one and sweeps, so expiry happens even when
        // no new work arrives (and even while paused).
        while (!(shutdown_ || (!paused_ && !ready_.empty()))) {
            if (minDeadlineNs_ != 0) {
                workCv_.wait_until(lock,
                                   steadyTimePoint(minDeadlineNs_));
                const uint64_t now = nowNs();
                if (minDeadlineNs_ != 0 && now >= minDeadlineNs_)
                    sweepExpiredLocked(now);
            } else {
                workCv_.wait(lock);
            }
        }
        if (ready_.empty())
            return {}; // shutdown: dispatcher exit signal

        const ShardKey key = ready_.front();
        ready_.pop_front();
        auto sit = shards_.find(key);
        reasonAssert(sit != shards_.end(), "ready shard missing");
        Shard &shard = sit->second;
        shard.inReady = false;
        shard.inService = true;

        std::vector<std::shared_ptr<Request>> group;
        size_t rowCount = 0;
        gatherLocked(shard, group, rowCount, maxRows);
        if (group.empty()) {
            // Shedding emptied the shard after it was readied.
            shard.inService = false;
            eraseShardIfIdleLocked(sit);
            continue;
        }

        const unsigned effLinger =
            effectiveLingerLocked(rowCount, maxRows, lingerUs);
        if (effLinger > 0 && rowCount < maxRows && !shutdown_ &&
            !paused_) {
            // Linger for matching late arrivals.  Spurious wakeups
            // only re-run the gather; the deadline bounds the added
            // latency.  A pause() ends the linger without gathering
            // further — work submitted during a pause must stay held
            // for the resume.  The shard stays inService, so no other
            // dispatcher can race this pop for its lanes.
            const auto deadline =
                std::chrono::steady_clock::now() +
                std::chrono::microseconds(effLinger);
            while (rowCount < maxRows && !shutdown_ && !paused_) {
                const bool timed_out =
                    workCv_.wait_until(lock, deadline) ==
                    std::cv_status::timeout;
                if (!paused_ && !shutdown_)
                    gatherLocked(shard, group, rowCount, maxRows);
                if (timed_out)
                    break;
            }
        }

        // Release the shard for concurrent pops; exclusive shards stay
        // held until complete() so stateful program execution is
        // serialized.  Re-readying goes behind other ready shards —
        // that is the cross-fingerprint fairness.  (`shard` stayed
        // valid across the linger waits: map references survive
        // rehashes, and only the inService holder may erase a shard —
        // but `sit` may not have, so re-find before erasing.)
        if (!shard.exclusive) {
            shard.inService = false;
            if (shard.pendingRequests > 0)
                readyShardLocked(key, shard);
            else
                eraseShardIfIdleLocked(shards_.find(key));
        }

        const uint64_t started = nowNs();
        for (const auto &r : group) {
            r->state = RequestState::Running;
            r->startedNs = started;
        }
        running_ += group.size();
        stats_.batches += 1;
        stats_.batchedRows += rowCount;
        return group;
    }
}

void
RequestQueue::recordLatencyLocked(double latencyMs)
{
    ++reservoirSeen_;
    if (reservoir_.size() < kLatencyReservoirSize) {
        reservoir_.push_back(latencyMs);
        return;
    }
    // Algorithm R with a deterministic LCG: each of the `seen` samples
    // ends up in the reservoir with equal probability.
    reservoirLcg_ = reservoirLcg_ * 6364136223846793005ull +
                    1442695040888963407ull;
    const uint64_t slot = reservoirLcg_ % reservoirSeen_;
    if (slot < kLatencyReservoirSize)
        reservoir_[size_t(slot)] = latencyMs;
}

void
RequestQueue::complete(const std::vector<std::shared_ptr<Request>> &group)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const uint64_t done = nowNs();
    reasonAssert(running_ >= group.size(),
                 "completing more than is running");
    running_ -= group.size();
    for (const auto &r : group) {
        r->state = RequestState::Done;
        r->completedNs = done;
        stats_.totalQueueNs += r->startedNs - r->enqueuedNs;
        stats_.totalLatencyNs += done - r->enqueuedNs;
        ++stats_.completed;
        ++stats_.executed;
        recordLatencyLocked(double(done - r->enqueuedNs) / 1e6);
    }
    if (!group.empty() && group.front()->startedNs > 0)
        ewmaExecNs_ = ewma(ewmaExecNs_,
                           double(done - group.front()->startedNs));
    if (!group.empty() && group.front()->exclusive && !shutdown_) {
        // Re-open the exclusive shard for its next group.
        auto sit = shards_.find(ShardKey{group.front()->groupKey,
                                         group.front()->mode});
        if (sit != shards_.end()) {
            Shard &shard = sit->second;
            shard.inService = false;
            if (shard.pendingRequests > 0)
                readyShardLocked(sit->first, shard);
            else
                eraseShardIfIdleLocked(sit);
        }
    }
    doneCv_.notify_all();
}

bool
RequestQueue::pollDone(const Request &request) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return request.state == RequestState::Done;
}

void
RequestQueue::waitDone(const Request &request) const
{
    std::unique_lock<std::mutex> lock(mutex_);
    doneCv_.wait(lock,
                 [&] { return request.state == RequestState::Done; });
}

bool
RequestQueue::cancel(const std::shared_ptr<Request> &request)
{
    reasonAssert(request != nullptr, "null request");
    std::lock_guard<std::mutex> lock(mutex_);
    if (request->state != RequestState::Queued)
        return false; // already dispatched (or done) — let it finish
    if (!removeQueuedLocked(request))
        return false;
    failLocked(request, REASON_ERR_CANCELLED, nowNs());
    return true;
}

size_t
RequestQueue::sweepExpired()
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sweepExpiredLocked(nowNs());
}

void
RequestQueue::beginDrain()
{
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
    // A paused engine must still drain its backlog.
    paused_ = false;
    workCv_.notify_all();
}

bool
RequestQueue::drainWait(uint64_t deadlineNs)
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (totalPending_ > 0 || running_ > 0) {
        const uint64_t now = nowNs();
        if (now >= deadlineNs)
            break;
        doneCv_.wait_until(lock, steadyTimePoint(deadlineNs));
    }
    const bool clean = totalPending_ == 0;
    if (!clean)
        failAllQueuedLocked(REASON_ERR_DEADLINE_EXCEEDED, nowNs());
    // In-flight groups always complete normally — wait them out
    // unbounded (dispatcher execution is finite by construction).
    doneCv_.wait(lock, [&] { return running_ == 0; });
    return clean;
}

void
RequestQueue::shutdown()
{
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
    const uint64_t done = nowNs();
    // Fail queued work but keep the shard entries themselves: a
    // dispatcher lingering inside popGroup holds a reference into the
    // map across its timed wait, so entries must stay stable here.
    for (auto &entry : shards_) {
        Shard &shard = entry.second;
        for (Lane &lane : shard.lanes)
            for (const auto &r : lane.queue) {
                // Failed, never executed: count completion only, so
                // the latency means keep their executed-requests
                // denominator (see QueueStats::executed).
                r->error = REASON_ERR_SHUTDOWN;
                r->state = RequestState::Done;
                r->completedNs = done;
                ++stats_.completed;
            }
        shard.lanes.clear();
        shard.pendingRequests = 0;
        shard.inReady = false;
    }
    ready_.clear();
    age_.clear();
    totalPending_ = 0;
    minDeadlineNs_ = 0;
    workCv_.notify_all();
    doneCv_.notify_all();
}

void
RequestQueue::pause()
{
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = true;
    // Wake lingering pops so they dispatch what they already gathered
    // instead of sleeping out their window.
    workCv_.notify_all();
}

void
RequestQueue::resume()
{
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
    workCv_.notify_all();
}

QueueStats
RequestQueue::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    QueueStats out = stats_;
    out.ewmaInterArrivalUs = ewmaInterArrivalNs_ / 1000.0;
    out.ewmaExecUs = ewmaExecNs_ / 1000.0;
    out.lastLingerUs = lastLingerUs_;
    if (!reservoir_.empty()) {
        std::vector<double> sorted = reservoir_;
        std::sort(sorted.begin(), sorted.end());
        out.p50LatencyMs = percentileSorted(sorted, 0.50);
        out.p99LatencyMs = percentileSorted(sorted, 0.99);
    }
    return out;
}

} // namespace sys
} // namespace reason
