#include "pc/approx.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/numeric.h"
#include "util/simd.h"

namespace reason {
namespace pc {

namespace {

/**
 * Relative slack padding the reported interval: the endpoints are
 * computed in floating point, so containment of the (equally rounded)
 * exact answer is certified up to accumulated rounding.  1e-9 of the
 * endpoint magnitude is orders beyond any chain of canonical-kernel
 * roundings while staying far inside the 1e-3 accuracy gate.
 */
constexpr double kBoundSlack = 1e-9;

double
padLo(double x)
{
    return x == kLogZero ? x : x - kBoundSlack * (1.0 + std::fabs(x));
}

double
padHi(double x)
{
    return x == kLogZero ? x : x + kBoundSlack * (1.0 + std::fabs(x));
}

/** Two-pass logsumexp over `n` staged terms, kLogZero terms skipped —
 *  the canonical sum-layer expressions at lane count 1. */
double
foldTerms(const double *terms, size_t n)
{
    double hi = kLogZero;
    for (size_t k = 0; k < n; ++k)
        if (terms[k] > hi)
            hi = terms[k];
    if (hi == kLogZero)
        return kLogZero;
    double acc = 0.0;
    for (size_t k = 0; k < n; ++k)
        if (terms[k] != kLogZero)
            acc += fastExpNonPositive(terms[k] - hi);
    return hi + simd::fastLogPositive(acc);
}

} // namespace

std::vector<double>
staticUpperBounds(const FlatCircuit &flat)
{
    const size_t n = flat.numNodes();
    std::vector<double> ub(n, kLogZero);
    std::vector<double> terms(std::max<uint32_t>(flat.maxFanIn, 1));
    for (size_t i = 0; i < n; ++i) {
        switch (flat.types[i]) {
          case FlatCircuit::kLeaf: {
            // A missing variable contributes exactly 0 (the
            // marginalization identity), an observed one at most the
            // largest log mass — never more than 0 for a normalized
            // leaf, but the max keeps the bound valid regardless.
            const uint32_t s = flat.leafSlot[i];
            double best = 0.0;
            for (uint32_t v = 0; v < flat.arity; ++v)
                best = std::max(
                    best, flat.leafLogDist[size_t(s) * flat.arity + v]);
            ub[i] = best;
            break;
          }
          case FlatCircuit::kProduct: {
            double acc = 0.0;
            for (uint32_t e = flat.edgeOffset[i];
                 e < flat.edgeOffset[i + 1]; ++e)
                acc += ub[flat.edgeTarget[e]];
            ub[i] = acc;
            break;
          }
          case FlatCircuit::kSum: {
            const uint32_t lo = flat.edgeOffset[i];
            const uint32_t hi = flat.edgeOffset[i + 1];
            for (uint32_t e = lo; e < hi; ++e)
                terms[e - lo] =
                    flat.edgeLogWeight[e] + ub[flat.edgeTarget[e]];
            ub[i] = foldTerms(terms.data(), hi - lo);
            break;
          }
        }
    }
    return ub;
}

ApproxEvaluator::ApproxEvaluator(const FlatCircuit &flat,
                                 const ApproxOptions &options)
    : flat_(flat)
{
    reasonAssert(std::isfinite(options.budget) && options.budget >= 0.0,
                 "accuracy budget must be finite and non-negative");
    reasonAssert(options.guideEdgeFlow == nullptr ||
                     options.guideEdgeFlow->size() == flat.numEdges(),
                 "guide edge flows must align with the lowering");

    const size_t n = flat.numNodes();
    const size_t m = flat.numEdges();
    const std::vector<double> ub = staticUpperBounds(flat);
    const std::vector<double> *guide = options.guideEdgeFlow;

    // Per-edge keep decision.  Sum nodes keep the edges whose score —
    // static weighted bound, or guided posterior flow — survives the
    // budget threshold, plus always the best edge; zero-weight edges
    // are free to drop (exact additive identities).  Products and
    // leaves keep everything.
    std::vector<uint8_t> keep(m, 1);
    std::vector<double> rest_ub_all(n, kLogZero);
    std::vector<double> rest_terms;
    for (size_t i = 0; i < n; ++i) {
        if (flat.types[i] != FlatCircuit::kSum)
            continue;
        const uint32_t lo = flat.edgeOffset[i];
        const uint32_t hi = flat.edgeOffset[i + 1];
        uint32_t active = 0;
        uint32_t best_edge = kInvalidNode;
        double best = kLogZero;
        for (uint32_t e = lo; e < hi; ++e) {
            const double score =
                guide ? (*guide)[e]
                      : flat.edgeLogWeight[e] + ub[flat.edgeTarget[e]];
            const bool mass =
                guide ? flat.edgeLogWeight[e] != kLogZero
                      : score != kLogZero;
            if (!mass) {
                keep[e] = 0; // contributes exactly nothing
                continue;
            }
            ++active;
            // First strict maximum; ties resolve to the earliest
            // edge, a deterministic choice.
            if (best_edge == kInvalidNode || score > best) {
                best_edge = e;
                best = score;
            }
        }
        if (active == 0)
            continue;
        if (guide) {
            // pruneByPosterior rule: keep edges whose calibration
            // flow reaches budget x the node's average active flow.
            double total = 0.0;
            for (uint32_t e = lo; e < hi; ++e)
                if (keep[e])
                    total += (*guide)[e];
            const double thr = options.budget * total / double(active);
            for (uint32_t e = lo; e < hi; ++e)
                if (keep[e] && e != best_edge && (*guide)[e] < thr)
                    keep[e] = 0;
        } else if (options.budget > 0.0) {
            // Beam rule: dropping every edge below
            // best + log(budget/active) discards at most `budget`
            // of the node's statically bounded mass.
            const double thr = best + std::log(options.budget) -
                               std::log(double(active));
            for (uint32_t e = lo; e < hi; ++e) {
                if (!keep[e] || e == best_edge)
                    continue;
                const double score =
                    flat.edgeLogWeight[e] + ub[flat.edgeTarget[e]];
                if (!(score > thr))
                    keep[e] = 0;
            }
        }
        // Pre-fold the dropped edges into one static rest bound; a
        // finite rest means real mass was discarded and the interval
        // must account for it.
        rest_terms.clear();
        for (uint32_t e = lo; e < hi; ++e)
            if (!keep[e])
                rest_terms.push_back(flat.edgeLogWeight[e] +
                                     ub[flat.edgeTarget[e]]);
        rest_ub_all[i] = foldTerms(rest_terms.data(), rest_terms.size());
        if (rest_ub_all[i] != kLogZero)
            exact_ = false;
    }

    // Root-reachable restriction over kept edges.
    std::vector<uint8_t> reach(n, 0);
    std::vector<uint32_t> stack;
    stack.push_back(flat.root);
    reach[flat.root] = 1;
    while (!stack.empty()) {
        const uint32_t i = stack.back();
        stack.pop_back();
        for (uint32_t e = flat.edgeOffset[i];
             e < flat.edgeOffset[i + 1]; ++e) {
            if (flat.types[i] == FlatCircuit::kSum && !keep[e])
                continue;
            const uint32_t c = flat.edgeTarget[e];
            if (!reach[c]) {
                reach[c] = 1;
                stack.push_back(c);
            }
        }
    }

    // Compact the kept sub-circuit in id order — children before
    // parents, and kept edges in CSR order, so the budget-0 walk runs
    // the canonical kernel over the exact same term sequence.
    std::vector<uint32_t> remap(n, kInvalidNode);
    uint32_t next = 0;
    for (size_t i = 0; i < n; ++i)
        if (reach[i])
            remap[i] = next++;
    types_.reserve(next);
    leafSlot_.reserve(next);
    restUb_.reserve(next);
    edgeOffset_.reserve(next + 1);
    edgeOffset_.push_back(0);
    uint32_t max_fan = 0;
    for (size_t i = 0; i < n; ++i) {
        if (!reach[i])
            continue;
        types_.push_back(flat.types[i]);
        leafSlot_.push_back(flat.leafSlot[i]);
        restUb_.push_back(rest_ub_all[i]);
        for (uint32_t e = flat.edgeOffset[i];
             e < flat.edgeOffset[i + 1]; ++e) {
            if (flat.types[i] == FlatCircuit::kSum && !keep[e])
                continue;
            edgeTarget_.push_back(remap[flat.edgeTarget[e]]);
            edgeLogWeight_.push_back(flat.edgeLogWeight[e]);
        }
        edgeOffset_.push_back(uint32_t(edgeTarget_.size()));
        max_fan = std::max(max_fan, edgeOffset_.back() -
                                        edgeOffset_[edgeOffset_.size() -
                                                    2]);
    }
    root_ = remap[flat.root];

    lo_.resize(types_.size(), kLogZero);
    hi_.resize(types_.size(), kLogZero);
    // +1 slot: the upper pass appends the rest bound as one extra term.
    terms_.resize(size_t(max_fan) + 1, 0.0);
}

ApproxResult
ApproxEvaluator::query(const Assignment &x)
{
    reasonAssert(x.size() >= flat_.numVars, "assignment too short");
    const size_t n = types_.size();
    double *lov = lo_.data();
    double *hiv = hi_.data();
    const uint32_t *off = edgeOffset_.data();
    const uint32_t *tgt = edgeTarget_.data();
    const double *lw = edgeLogWeight_.data();
    for (size_t i = 0; i < n; ++i) {
        switch (types_[i]) {
          case FlatCircuit::kLeaf: {
            const uint32_t s = leafSlot_[i];
            const uint32_t v = x[flat_.leafVar[s]];
            double val;
            if (v == kMissing) {
                val = 0.0; // marginalized: sums to 1
            } else {
                reasonAssert(v < flat_.arity,
                             "assignment value out of range");
                val = flat_.leafLogDist[size_t(s) * flat_.arity + v];
            }
            lov[i] = val;
            hiv[i] = val;
            break;
          }
          case FlatCircuit::kProduct: {
            double acc_lo = 0.0;
            double acc_hi = 0.0;
            for (uint32_t e = off[i]; e < off[i + 1]; ++e) {
                acc_lo += lov[tgt[e]];
                acc_hi += hiv[tgt[e]];
            }
            lov[i] = acc_lo;
            hiv[i] = acc_hi;
            break;
          }
          case FlatCircuit::kSum: {
            // Lower endpoint: the canonical two-pass logsumexp over
            // the kept edges — term for term the exact kernel, so a
            // nothing-dropped evaluator is bit-identical to
            // CircuitEvaluator.
            const uint32_t lo_e = off[i];
            const uint32_t hi_e = off[i + 1];
            const size_t fan = hi_e - lo_e;
            for (uint32_t e = lo_e; e < hi_e; ++e)
                terms_[e - lo_e] = lw[e] + lov[tgt[e]];
            lov[i] = foldTerms(terms_.data(), fan);
            // Upper endpoint: same fold with the per-node static rest
            // bound appended, covering every dropped edge.  A kLogZero
            // rest is an exact identity, so the exact case stays
            // bit-identical.
            for (uint32_t e = lo_e; e < hi_e; ++e)
                terms_[e - lo_e] = lw[e] + hiv[tgt[e]];
            terms_[fan] = restUb_[i];
            hiv[i] = foldTerms(terms_.data(), fan + 1);
            break;
          }
        }
    }
    ApproxResult r;
    r.value = lov[root_];
    if (exact_) {
        r.lo = r.value;
        r.hi = r.value;
    } else {
        r.lo = padLo(lov[root_]);
        r.hi = padHi(hiv[root_]);
    }
    return r;
}

void
ApproxEvaluator::queryBatch(const std::vector<Assignment> &xs,
                            std::vector<ApproxResult> &out)
{
    out.resize(xs.size());
    for (size_t i = 0; i < xs.size(); ++i)
        out[i] = query(xs[i]);
}

LogEvidenceEstimate
estimateLogEvidence(const FlatCircuit &flat, const Assignment &evidence,
                    size_t numSamples, uint64_t seed)
{
    reasonAssert(evidence.size() >= flat.numVars,
                 "evidence assignment too short");
    LogEvidenceEstimate est;
    est.samples = numSamples;
    if (numSamples == 0) {
        est.logZ = kLogZero;
        return est;
    }

    // Fixed-seed LCG (PCG multiplier/increment): the whole estimate is
    // one serial draw stream, a pure function of the arguments.
    uint64_t state = seed;
    auto next01 = [&state]() {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return double(state >> 11) * 0x1.0p-53;
    };

    std::vector<double> logw(numSamples, 0.0);
    std::vector<uint32_t> stack;
    for (size_t s = 0; s < numSamples; ++s) {
        double acc = 0.0;
        stack.clear();
        stack.push_back(flat.root);
        while (!stack.empty() && acc != kLogZero) {
            const uint32_t i = stack.back();
            stack.pop_back();
            switch (flat.types[i]) {
              case FlatCircuit::kLeaf: {
                const uint32_t slot = flat.leafSlot[i];
                const uint32_t v = evidence[flat.leafVar[slot]];
                if (v != kMissing) {
                    reasonAssert(v < flat.arity,
                                 "assignment value out of range");
                    acc += flat.leafLogDist[size_t(slot) * flat.arity +
                                            v];
                }
                break;
              }
              case FlatCircuit::kProduct: {
                for (uint32_t e = flat.edgeOffset[i];
                     e < flat.edgeOffset[i + 1]; ++e)
                    stack.push_back(flat.edgeTarget[e]);
                break;
              }
              case FlatCircuit::kSum: {
                const uint32_t lo = flat.edgeOffset[i];
                const uint32_t hi = flat.edgeOffset[i + 1];
                double total = 0.0;
                for (uint32_t e = lo; e < hi; ++e)
                    if (flat.edgeLogWeight[e] != kLogZero)
                        total += std::exp(flat.edgeLogWeight[e]);
                if (!(total > 0.0)) {
                    acc = kLogZero; // all-zero sum: exact zero mass
                    break;
                }
                const double u = next01() * total;
                double run = 0.0;
                uint32_t chosen = kInvalidNode;
                uint32_t last_pos = kInvalidNode;
                for (uint32_t e = lo; e < hi; ++e) {
                    if (flat.edgeLogWeight[e] == kLogZero)
                        continue;
                    last_pos = e;
                    run += std::exp(flat.edgeLogWeight[e]);
                    if (run >= u) {
                        chosen = e;
                        break;
                    }
                }
                if (chosen == kInvalidNode)
                    chosen = last_pos; // fp tail: fall to the last
                // Unnormalized sums need the proposal correction
                // w/q = total; log(1) == 0 keeps normalized sums
                // untouched.
                acc += std::log(total);
                stack.push_back(flat.edgeTarget[chosen]);
                break;
              }
            }
        }
        logw[s] = acc;
    }

    double peak = kLogZero;
    for (double w : logw)
        peak = std::max(peak, w);
    if (peak == kLogZero) {
        est.logZ = kLogZero;
        return est;
    }
    std::vector<double> a(numSamples, 0.0);
    double sum_a = 0.0;
    for (size_t s = 0; s < numSamples; ++s) {
        a[s] = logw[s] == kLogZero ? 0.0 : std::exp(logw[s] - peak);
        sum_a += a[s];
    }
    const double mean_a = sum_a / double(numSamples);
    est.logZ = peak + std::log(mean_a);
    if (numSamples > 1) {
        double ss = 0.0;
        for (double v : a)
            ss += (v - mean_a) * (v - mean_a);
        const double var = ss / double(numSamples - 1);
        // Delta method: se(log mean) ~= se(mean) / mean.
        est.stdError =
            std::sqrt(var / double(numSamples)) / mean_a;
    }
    return est;
}

} // namespace pc
} // namespace reason
