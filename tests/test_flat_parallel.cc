/**
 * @file
 * Tests for thread-parallel wavefront execution and the lowering cache:
 * every parallel path (core::Evaluator single/batch, pc::CircuitEvaluator
 * single/batch, pc::FlowAccumulator upward+downward, the reverse-
 * wavefront logDerivativesInto, sharded dataset flows, sharded EM, and
 * sharded Baum-Welch in deterministic mode) must be *bit-identical* to
 * the serial flat path across thread counts {1, 2, 4, 8}, and
 * cachedLowering must hit on unchanged structures and miss on mutation.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/dag.h"
#include "core/flat.h"
#include "hmm/hmm.h"
#include "pc/flat_cache.h"
#include "pc/flat_pc.h"
#include "pc/learn.h"
#include "pc/pc.h"
#include "util/numeric.h"
#include "util/parallel.h"
#include "util/rng.h"

using namespace reason;

namespace {

constexpr unsigned kThreadCounts[] = {1, 2, 4, 8};

/** Bitwise equality that treats every double as its bit pattern. */
::testing::AssertionResult
bitIdentical(std::span<const double> got, std::span<const double> want)
{
    if (got.size() != want.size())
        return ::testing::AssertionFailure()
               << "size " << got.size() << " vs " << want.size();
    for (size_t i = 0; i < got.size(); ++i)
        if (std::bit_cast<uint64_t>(got[i]) !=
            std::bit_cast<uint64_t>(want[i]))
            return ::testing::AssertionFailure()
                   << "index " << i << ": " << got[i] << " vs "
                   << want[i];
    return ::testing::AssertionSuccess();
}

/** Random DAG exercising every opcode, with weighted and plain sums. */
core::Dag
randomDag(Rng &rng, uint32_t num_inputs, uint32_t num_consts,
          uint32_t num_ops)
{
    core::Dag dag;
    for (uint32_t i = 0; i < num_inputs; ++i)
        dag.addInput();
    for (uint32_t i = 0; i < num_consts; ++i)
        dag.addConst(rng.uniformReal(-2.0, 2.0));
    for (uint32_t i = 0; i < num_ops; ++i) {
        size_t existing = dag.numNodes();
        uint32_t fan_in = uint32_t(rng.uniformInt(1, 4));
        std::vector<core::NodeId> operands;
        for (uint32_t k = 0; k < fan_in; ++k)
            operands.push_back(
                core::NodeId(rng.uniformInt(0, int64_t(existing) - 1)));
        switch (rng.uniformInt(0, 4)) {
          case 0:
            if (rng.bernoulli(0.5)) {
                std::vector<double> weights;
                for (uint32_t k = 0; k < fan_in; ++k)
                    weights.push_back(rng.uniformReal(-1.5, 1.5));
                dag.addOp(core::DagOp::Sum, std::move(operands),
                          std::move(weights));
            } else {
                dag.addOp(core::DagOp::Sum, std::move(operands));
            }
            break;
          case 1:
            dag.addOp(core::DagOp::Product, std::move(operands));
            break;
          case 2:
            dag.addOp(core::DagOp::Max, std::move(operands));
            break;
          case 3:
            dag.addOp(core::DagOp::Min, std::move(operands));
            break;
          default:
            operands.resize(1);
            dag.addOp(core::DagOp::Not, std::move(operands));
            break;
        }
    }
    dag.validate();
    return dag;
}

/**
 * Largest wavefront of a lowering.  The bit-identity sweeps assert it
 * exceeds the split grain, so the multi-worker paths (and their TSan
 * coverage) cannot silently degrade into inline execution if the test
 * circuits shrink or the grain grows.
 */
uint32_t
maxLevelWidth(const pc::FlatCircuit &flat)
{
    uint32_t widest = 0;
    for (size_t l = 0; l < flat.numLevels(); ++l)
        widest = std::max(widest,
                          flat.levelOffset[l + 1] - flat.levelOffset[l]);
    return widest;
}

/** Random partial assignments over the circuit's variables. */
std::vector<pc::Assignment>
randomAssignments(Rng &rng, const pc::Circuit &c, size_t count,
                  double missing_prob)
{
    std::vector<pc::Assignment> out(count);
    for (auto &x : out) {
        x.resize(c.numVars());
        for (uint32_t v = 0; v < c.numVars(); ++v)
            x[v] = rng.bernoulli(missing_prob)
                       ? pc::kMissing
                       : uint32_t(rng.uniformInt(0, c.arity() - 1));
    }
    return out;
}

} // namespace

TEST(ThreadPool, CoversRangeExactlyOnceWithValidWorkers)
{
    for (unsigned threads : kThreadCounts) {
        util::ThreadPool pool(threads);
        EXPECT_EQ(pool.numThreads(), threads);
        std::vector<int> hits(10000, 0);
        std::mutex m;
        unsigned max_worker = 0;
        pool.parallelFor(0, hits.size(), 1,
                         [&](size_t b, size_t e, unsigned worker) {
                             std::lock_guard<std::mutex> lock(m);
                             max_worker = std::max(max_worker, worker);
                             for (size_t i = b; i < e; ++i)
                                 ++hits[i];
                         });
        for (size_t i = 0; i < hits.size(); ++i)
            ASSERT_EQ(hits[i], 1) << "index " << i;
        EXPECT_LT(max_worker, threads);
    }
}

TEST(ThreadPool, RespectsMinGrain)
{
    util::ThreadPool pool(8);
    size_t calls = 0;
    // 100 items with min grain 64 -> only one chunk (inline).
    pool.parallelFor(0, 100, 64, [&](size_t b, size_t e, unsigned w) {
        ++calls;
        EXPECT_EQ(b, 0u);
        EXPECT_EQ(e, 100u);
        EXPECT_EQ(w, 0u);
    });
    EXPECT_EQ(calls, 1u);
}

TEST(ParallelEvaluator, DagBitIdenticalAcrossThreadCounts)
{
    for (uint64_t seed = 1; seed <= 4; ++seed) {
        Rng rng(seed * 19);
        core::Dag dag = randomDag(rng, 8, 3, 3000);
        core::FlatGraph flat = core::lowerDag(dag);

        std::vector<double> inputs(dag.numInputs());
        for (auto &v : inputs)
            v = rng.uniformReal(-1.0, 1.0);

        util::ThreadPool serial(1);
        core::Evaluator ref(flat, &serial);
        std::span<const double> ref_vals = ref.evaluate(inputs);
        std::vector<double> want(ref_vals.begin(), ref_vals.end());

        for (unsigned threads : kThreadCounts) {
            util::ThreadPool pool(threads);
            core::Evaluator eval(flat, &pool);
            EXPECT_TRUE(bitIdentical(eval.evaluate(inputs), want))
                << "threads=" << threads;
        }
    }
}

TEST(ParallelEvaluator, DagBatchBitIdenticalAcrossThreadCounts)
{
    Rng rng(7);
    core::Dag dag = randomDag(rng, 12, 2, 800);
    core::FlatGraph flat = core::lowerDag(dag);

    const size_t rows = 64;
    std::vector<double> batch(rows * dag.numInputs());
    for (auto &v : batch)
        v = rng.uniformReal(-1.0, 1.0);

    util::ThreadPool serial(1);
    core::Evaluator ref(flat, &serial);
    std::vector<double> want(rows);
    ref.evaluateBatch(batch, rows, want);

    for (unsigned threads : kThreadCounts) {
        util::ThreadPool pool(threads);
        core::Evaluator eval(flat, &pool);
        std::vector<double> got(rows);
        eval.evaluateBatch(batch, rows, got);
        EXPECT_TRUE(bitIdentical(got, want)) << "threads=" << threads;
        // Reuse must not disturb results (scratch is warm now).
        eval.evaluateBatch(batch, rows, got);
        EXPECT_TRUE(bitIdentical(got, want)) << "threads=" << threads;
    }
}

TEST(ParallelCircuitEvaluator, ValuesBitIdenticalAcrossThreadCounts)
{
    Rng rng(23);
    pc::Circuit c = pc::randomCircuit(rng, 768, 2, 4, 8);
    pc::FlatCircuit flat(c);
    ASSERT_GE(maxLevelWidth(flat), 2 * pc::kMinWavefrontNodesPerChunk)
        << "circuit too small: level slices would never split";
    auto xs = randomAssignments(rng, c, 6, 0.25);

    util::ThreadPool serial(1);
    pc::CircuitEvaluator ref(flat, &serial);
    for (const auto &x : xs) {
        std::span<const double> ref_vals = ref.evaluate(x);
        std::vector<double> want(ref_vals.begin(), ref_vals.end());
        for (unsigned threads : kThreadCounts) {
            util::ThreadPool pool(threads);
            pc::CircuitEvaluator eval(flat, &pool);
            EXPECT_TRUE(bitIdentical(eval.evaluate(x), want))
                << "threads=" << threads;
        }
    }
}

TEST(ParallelCircuitEvaluator, BatchBitIdenticalAcrossThreadCounts)
{
    Rng rng(29);
    pc::Circuit c = pc::randomCircuit(rng, 64, 3, 3, 6);
    pc::FlatCircuit flat(c);
    // 67 rows: full blocks plus a masked-tail block (3 live lanes).
    auto xs = randomAssignments(rng, c, 67, 0.2);

    util::ThreadPool serial(1);
    pc::CircuitEvaluator ref(flat, &serial);
    std::vector<double> want(xs.size());
    ref.logLikelihoodBatch(xs, want);

    for (unsigned threads : kThreadCounts) {
        util::ThreadPool pool(threads);
        pc::CircuitEvaluator eval(flat, &pool);
        std::vector<double> got(xs.size());
        eval.logLikelihoodBatch(xs, got);
        EXPECT_TRUE(bitIdentical(got, want)) << "threads=" << threads;
        eval.logLikelihoodBatch(xs, got);
        EXPECT_TRUE(bitIdentical(got, want)) << "threads=" << threads;
    }
}

TEST(ParallelFlowAccumulator, TotalsBitIdenticalAcrossThreadCounts)
{
    Rng rng(31);
    pc::Circuit c = pc::randomCircuit(rng, 768, 2, 4, 8);
    pc::FlatCircuit flat(c);
    ASSERT_GE(maxLevelWidth(flat), 2 * pc::kMinWavefrontNodesPerChunk)
        << "circuit too small: downward gather would never split";
    auto data = randomAssignments(rng, c, 12, 0.3);

    util::ThreadPool serial(1);
    pc::FlowAccumulator ref(flat, &serial);
    for (const auto &x : data)
        ref.add(x);

    for (unsigned threads : kThreadCounts) {
        util::ThreadPool pool(threads);
        pc::FlowAccumulator acc(flat, &pool);
        for (const auto &x : data)
            acc.add(x);
        EXPECT_EQ(acc.count(), ref.count());
        EXPECT_TRUE(bitIdentical(acc.edgeFlow(), ref.edgeFlow()))
            << "threads=" << threads;
        EXPECT_TRUE(bitIdentical(acc.nodeFlow(), ref.nodeFlow()))
            << "threads=" << threads;
        EXPECT_TRUE(bitIdentical(acc.leafValueFlow(),
                                 ref.leafValueFlow()))
            << "threads=" << threads;
    }
}

TEST(ParallelFlowAccumulator, ZeroProbabilityBranchesMatchSerial)
{
    // Deterministic leaves create exact log-zero children on sum edges
    // and zero-probability evidence, exercising every skip branch of
    // the downward pass in both formulations.
    pc::Circuit c(2, 2);
    pc::NodeId a0 = c.addLeaf(0, {1.0, 0.0});
    pc::NodeId a1 = c.addLeaf(1, {0.25, 0.75});
    pc::NodeId b0 = c.addLeaf(0, {0.0, 1.0});
    pc::NodeId b1 = c.addLeaf(1, {1.0, 0.0});
    pc::NodeId pa = c.addProduct({a0, a1});
    pc::NodeId pb = c.addProduct({b0, b1});
    c.markRoot(c.addSum({pa, pb}, {0.6, 0.4}));
    pc::FlatCircuit flat(c);

    std::vector<pc::Assignment> data{
        {0, 0}, {0, 1}, {1, 0}, {1, 1} /* impossible */,
        {pc::kMissing, 1}, {0, pc::kMissing}};

    util::ThreadPool serial(1);
    pc::FlowAccumulator ref(flat, &serial);
    for (const auto &x : data)
        ref.add(x);

    for (unsigned threads : kThreadCounts) {
        util::ThreadPool pool(threads);
        pc::FlowAccumulator acc(flat, &pool);
        for (const auto &x : data)
            acc.add(x);
        EXPECT_TRUE(bitIdentical(acc.edgeFlow(), ref.edgeFlow()));
        EXPECT_TRUE(bitIdentical(acc.nodeFlow(), ref.nodeFlow()));
        EXPECT_TRUE(
            bitIdentical(acc.leafValueFlow(), ref.leafValueFlow()));
    }
}

TEST(ParallelDerivatives, BitIdenticalAcrossThreadCounts)
{
    Rng rng(47);
    pc::Circuit c = pc::randomCircuit(rng, 768, 2, 4, 8);
    pc::FlatCircuit flat(c);
    ASSERT_GE(maxLevelWidth(flat), 2 * pc::kMinWavefrontNodesPerChunk)
        << "circuit too small: derivative gather would never split";
    auto xs = randomAssignments(rng, c, 6, 0.25);

    util::ThreadPool serial(1);
    pc::CircuitEvaluator ref(flat, &serial);
    std::vector<double> want;
    std::vector<double> got;
    for (const auto &x : xs) {
        std::span<const double> logv = ref.evaluate(x);
        pc::logDerivativesInto(flat, logv, want, &serial);
        for (unsigned threads : kThreadCounts) {
            util::ThreadPool pool(threads);
            pc::logDerivativesInto(flat, logv, got, &pool);
            EXPECT_TRUE(bitIdentical(got, want))
                << "threads=" << threads;
        }
    }
}

TEST(ParallelDerivatives, ZeroProbabilityBranchesMatchSerial)
{
    // Deterministic leaves force exact log-zero children under product
    // nodes and zero-probability evidence, exercising the zeros==1 and
    // zeros>=2 product branches of both derivative formulations.
    pc::Circuit c(2, 2);
    pc::NodeId a0 = c.addLeaf(0, {1.0, 0.0});
    pc::NodeId a1 = c.addLeaf(1, {0.25, 0.75});
    pc::NodeId b0 = c.addLeaf(0, {0.0, 1.0});
    pc::NodeId b1 = c.addLeaf(1, {1.0, 0.0});
    pc::NodeId pa = c.addProduct({a0, a1});
    pc::NodeId pb = c.addProduct({b0, b1});
    pc::NodeId pz = c.addProduct({a0, b0}); // always log-zero pair
    c.markRoot(c.addSum({pa, pb, pz}, {0.5, 0.3, 0.2}));
    pc::FlatCircuit flat(c);

    std::vector<pc::Assignment> data{
        {0, 0}, {0, 1}, {1, 0}, {1, 1},
        {pc::kMissing, 1}, {0, pc::kMissing},
        {pc::kMissing, pc::kMissing}};

    util::ThreadPool serial(1);
    pc::CircuitEvaluator ref(flat, &serial);
    std::vector<double> want;
    std::vector<double> got;
    for (const auto &x : data) {
        std::span<const double> logv = ref.evaluate(x);
        pc::logDerivativesInto(flat, logv, want, &serial);
        for (unsigned threads : kThreadCounts) {
            util::ThreadPool pool(threads);
            pc::logDerivativesInto(flat, logv, got, &pool);
            EXPECT_TRUE(bitIdentical(got, want))
                << "threads=" << threads;
        }
    }
}

TEST(ShardedFlows, DeterministicAcrossThreadCounts)
{
    Rng rng(53);
    pc::Circuit c = pc::randomCircuit(rng, 64, 2, 3, 6);
    pc::FlatCircuit flat(c);
    auto data = randomAssignments(rng, c, 23, 0.3);

    // shards == 1 must reproduce the legacy serial left fold exactly.
    util::ThreadPool serial(1);
    pc::FlowAccumulator legacy(flat, &serial);
    for (const auto &x : data)
        legacy.add(x);
    pc::DatasetFlows one =
        pc::accumulateDatasetFlows(flat, data, {1, true}, &serial);
    EXPECT_EQ(one.shards, 1u);
    EXPECT_EQ(one.count, legacy.count());
    EXPECT_TRUE(bitIdentical(one.edgeFlow, legacy.edgeFlow()));
    EXPECT_TRUE(bitIdentical(one.nodeFlow, legacy.nodeFlow()));
    EXPECT_TRUE(bitIdentical(one.leafValueFlow, legacy.leafValueFlow()));

    // Deterministic auto sharding: the shard count and reduction shape
    // ignore the worker count, so totals are bit-identical across
    // thread counts (and across explicit shard counts vs themselves).
    pc::DatasetFlows want =
        pc::accumulateDatasetFlows(flat, data, {0, true}, &serial);
    EXPECT_EQ(want.shards, util::kAutoReductionShards);
    EXPECT_EQ(want.count, data.size());
    for (unsigned threads : kThreadCounts) {
        util::ThreadPool pool(threads);
        pc::DatasetFlows got =
            pc::accumulateDatasetFlows(flat, data, {0, true}, &pool);
        EXPECT_EQ(got.shards, want.shards);
        EXPECT_TRUE(bitIdentical(got.edgeFlow, want.edgeFlow))
            << "threads=" << threads;
        EXPECT_TRUE(bitIdentical(got.nodeFlow, want.nodeFlow))
            << "threads=" << threads;
        EXPECT_TRUE(bitIdentical(got.leafValueFlow, want.leafValueFlow))
            << "threads=" << threads;
    }

    // Datasets smaller than the auto target keep a single shard (and
    // with it the per-sample wavefront engine): auto resolution is a
    // function of the data alone, never of the workers.
    std::vector<pc::Assignment> tiny(data.begin(), data.begin() + 4);
    for (unsigned threads : kThreadCounts) {
        util::ThreadPool pool(threads);
        pc::DatasetFlows small =
            pc::accumulateDatasetFlows(flat, tiny, {0, true}, &pool);
        EXPECT_EQ(small.shards, 1u) << "threads=" << threads;
        EXPECT_EQ(small.count, tiny.size());
    }

    // Fast mode shards per worker: still valid totals (vs the 1e-10
    // differential contract), same sample count.
    for (unsigned threads : kThreadCounts) {
        util::ThreadPool pool(threads);
        pc::DatasetFlows fast =
            pc::accumulateDatasetFlows(flat, data, {0, false}, &pool);
        EXPECT_EQ(fast.shards, std::min<unsigned>(threads, 23));
        EXPECT_EQ(fast.count, data.size());
        for (size_t i = 0; i < fast.edgeFlow.size(); ++i)
            ASSERT_NEAR(fast.edgeFlow[i], want.edgeFlow[i], 1e-10);
    }
}

namespace {

/** All learned parameters of a circuit, flattened for bit comparison. */
std::vector<double>
circuitParams(const pc::Circuit &c)
{
    std::vector<double> params;
    for (pc::NodeId id = 0; id < c.numNodes(); ++id) {
        const pc::PcNode &n = c.node(id);
        params.insert(params.end(), n.weights.begin(), n.weights.end());
        params.insert(params.end(), n.dist.begin(), n.dist.end());
    }
    return params;
}

/** All parameters of an HMM, flattened for bit comparison. */
std::vector<double>
hmmParams(const hmm::Hmm &h)
{
    std::vector<double> params;
    for (uint32_t s = 0; s < h.numStates(); ++s)
        params.push_back(h.initial(s));
    for (uint32_t i = 0; i < h.numStates(); ++i)
        for (uint32_t j = 0; j < h.numStates(); ++j)
            params.push_back(h.transition(i, j));
    for (uint32_t s = 0; s < h.numStates(); ++s)
        for (uint32_t m = 0; m < h.numSymbols(); ++m)
            params.push_back(h.emission(s, m));
    return params;
}

} // namespace

TEST(ShardedEm, DeterministicAcrossThreadCounts)
{
    Rng rng(59);
    pc::Circuit truth = pc::randomCircuit(rng, 8, 2);
    auto data = pc::sampleDataset(rng, truth, 60);
    pc::Circuit model = pc::randomCircuit(rng, 8, 2);

    pc::EmOptions opts;
    opts.maxIterations = 3;
    opts.tolerance = 0.0; // run every iteration
    opts.shards = 0;
    opts.deterministic = true;

    // emTrain reaches the pool through the global knob; sweep it and
    // demand bit-identical parameters and traces.
    std::vector<double> want_params;
    std::vector<double> want_trace;
    for (unsigned threads : kThreadCounts) {
        util::setGlobalThreads(threads);
        pc::Circuit m = model;
        pc::EmTrace trace = pc::emTrain(m, data, opts);
        std::vector<double> params = circuitParams(m);
        if (threads == 1) {
            want_params = params;
            want_trace = trace.logLikelihood;
            continue;
        }
        EXPECT_TRUE(bitIdentical(params, want_params))
            << "threads=" << threads;
        EXPECT_TRUE(bitIdentical(trace.logLikelihood, want_trace))
            << "threads=" << threads;
    }
    util::setGlobalThreads(0); // restore the default pool
}

TEST(ShardedBaumWelch, DeterministicAcrossThreadCounts)
{
    Rng rng(61);
    hmm::Hmm truth = hmm::Hmm::random(rng, 5, 4, 0.6);
    std::vector<hmm::Sequence> data(12);
    for (auto &seq : data)
        truth.sample(rng, 16, &seq);
    hmm::Hmm init = hmm::Hmm::random(rng, 5, 4);

    hmm::BaumWelchOptions opts;
    opts.maxIterations = 3;
    opts.tolerance = 0.0;
    opts.shards = 0;
    opts.deterministic = true;

    std::vector<double> want_params;
    std::vector<double> want_trace;
    for (unsigned threads : kThreadCounts) {
        util::ThreadPool pool(threads);
        hmm::Hmm model = init;
        hmm::BaumWelchTrace trace =
            hmm::baumWelch(model, data, opts, &pool);
        std::vector<double> params = hmmParams(model);
        if (threads == 1) {
            want_params = params;
            want_trace = trace.logLikelihood;
            continue;
        }
        EXPECT_TRUE(bitIdentical(params, want_params))
            << "threads=" << threads;
        EXPECT_TRUE(bitIdentical(trace.logLikelihood, want_trace))
            << "threads=" << threads;
    }
}

TEST(FlatCircuitSchedule, LevelsAndTransposeAreConsistent)
{
    Rng rng(37);
    pc::Circuit c = pc::randomCircuit(rng, 32, 2, 3, 5);
    pc::FlatCircuit flat(c);

    // Every node appears exactly once in the level schedule, and a
    // node's children all sit in strictly lower levels.
    std::vector<uint32_t> level_of(flat.numNodes(), ~0u);
    size_t scheduled = 0;
    for (size_t l = 0; l < flat.numLevels(); ++l)
        for (uint32_t k = flat.levelOffset[l]; k < flat.levelOffset[l + 1];
             ++k) {
            ASSERT_EQ(level_of[flat.levelNodes[k]], ~0u);
            level_of[flat.levelNodes[k]] = uint32_t(l);
            ++scheduled;
        }
    EXPECT_EQ(scheduled, flat.numNodes());
    for (size_t i = 0; i < flat.numNodes(); ++i)
        for (uint32_t e = flat.edgeOffset[i]; e < flat.edgeOffset[i + 1];
             ++e)
            EXPECT_LT(level_of[flat.edgeTarget[e]], level_of[i]);

    // The transpose lists each forward edge exactly once, under its
    // child, in descending parent order.
    std::vector<int> edge_seen(flat.numEdges(), 0);
    for (size_t c_id = 0; c_id < flat.numNodes(); ++c_id) {
        uint32_t prev_parent = ~0u;
        for (uint32_t pe = flat.parentOffset[c_id];
             pe < flat.parentOffset[c_id + 1]; ++pe) {
            const uint32_t e = flat.parentEdge[pe];
            ++edge_seen[e];
            EXPECT_EQ(flat.edgeTarget[e], c_id);
            const uint32_t parent = flat.edgeSource[e];
            EXPECT_LE(parent, prev_parent);
            prev_parent = parent;
        }
    }
    for (size_t e = 0; e < flat.numEdges(); ++e)
        EXPECT_EQ(edge_seen[e], 1) << "edge " << e;
}

TEST(FlatCache, HitsOnUnchangedCircuitAndMissesOnMutation)
{
    pc::clearFlatCache();
    Rng rng(41);
    pc::Circuit c = pc::randomCircuit(rng, 12, 2, 2, 3);

    auto first = pc::cachedLowering(c);
    auto second = pc::cachedLowering(c);
    EXPECT_EQ(first.get(), second.get());
    auto stats = pc::flatCacheStats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 1u);

    // Parameter mutation (what EM does every iteration) must miss.
    for (pc::NodeId id = 0; id < c.numNodes(); ++id) {
        if (c.node(id).type == pc::PcNodeType::Leaf) {
            auto &dist = c.mutableNode(id).dist;
            std::swap(dist[0], dist[1]);
            break;
        }
    }
    auto third = pc::cachedLowering(c);
    EXPECT_NE(third.get(), first.get());
    stats = pc::flatCacheStats();
    EXPECT_EQ(stats.misses, 2u);

    // The fresh lowering reflects the mutation.
    util::ThreadPool serial(1);
    pc::CircuitEvaluator eval(*third, &serial);
    pc::Assignment x(c.numVars(), pc::kMissing);
    x[0] = 0;
    EXPECT_NEAR(eval.logLikelihood(x), c.logLikelihood(x), 1e-12);

    // The original lowering lives on through its shared_ptr.
    EXPECT_EQ(first->numNodes(), c.numNodes());
}

TEST(FlatCache, DagLoweringsAreCachedByIdentity)
{
    pc::clearFlatCache();
    Rng rng(43);
    core::Dag dag = randomDag(rng, 4, 2, 50);

    auto first = pc::cachedLowering(dag);
    auto second = pc::cachedLowering(dag);
    EXPECT_EQ(first.get(), second.get());

    // Structural growth changes the fingerprint.
    dag.addOp(core::DagOp::Not, {core::NodeId(0)});
    auto third = pc::cachedLowering(dag);
    EXPECT_NE(third.get(), first.get());
    EXPECT_EQ(third->numNodes(), dag.numNodes());

    auto stats = pc::flatCacheStats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 2u);
}
