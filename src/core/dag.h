/**
 * @file
 * Unified DAG representation of symbolic and probabilistic reasoning
 * kernels (REASON Sec. IV-A).
 *
 * Every kernel — SAT/FOL deduction, probabilistic-circuit aggregation,
 * HMM message passing — is expressed as a DAG whose nodes are atomic
 * reasoning operations and whose edges are data dependencies.  Booleans
 * are embedded as {0,1} doubles so logical connectives become Min/Max/Not
 * and probabilistic aggregation becomes Sum/Product; the same node set is
 * what the compiler maps onto the reconfigurable tree PEs.
 */

#ifndef REASON_CORE_DAG_H
#define REASON_CORE_DAG_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace reason {
namespace core {

/** Node identifier within a Dag. */
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = ~0u;

/** Atomic reasoning operation of a DAG node. */
enum class DagOp : uint8_t
{
    Input,   ///< external value, identified by `tag`
    Const,   ///< compile-time constant, stored in `value`
    Sum,     ///< (optionally weighted) addition — probabilistic mixture
    Product, ///< multiplication — factorization / logical AND on {0,1}
    Max,     ///< maximum — logical OR on {0,1}, max-product decoding
    Min,     ///< minimum — logical AND on {0,1}
    Not      ///< 1 - x — logical negation on {0,1}
};

/** Printable op name. */
const char *dagOpName(DagOp op);

/** One DAG node. */
struct DagNode
{
    DagOp op = DagOp::Const;
    /** Operand node ids; empty for Input/Const. */
    std::vector<NodeId> inputs;
    /**
     * Sum only: per-edge weights aligned with inputs.  Empty means all
     * weights are 1 (plain addition).
     */
    std::vector<double> weights;
    /** Const only: the constant value. */
    double value = 0.0;
    /** Input only: external input slot index. */
    uint32_t tag = 0;
};

/** Aggregate size metrics used by Table IV's memory accounting. */
struct DagStats
{
    size_t numNodes = 0;
    size_t numEdges = 0;
    size_t numWeights = 0;
    size_t numInputs = 0;
    /** Maximum fan-in over all nodes. */
    size_t maxFanIn = 0;
    /** Longest input-to-root path length (levels). */
    size_t depth = 0;
    /** Estimated storage footprint in bytes (node + edge + weight). */
    size_t memoryBytes = 0;
};

/**
 * A directed acyclic graph of reasoning operations, stored in topological
 * order (operands strictly precede their consumers).
 */
class Dag
{
  public:
    Dag() = default;

    size_t numNodes() const { return nodes_.size(); }
    size_t numEdges() const;
    uint32_t numInputs() const { return numInputs_; }
    NodeId root() const { return root_; }

    const DagNode &node(NodeId id) const { return nodes_.at(id); }
    const std::vector<DagNode> &nodes() const { return nodes_; }

    /** Add an external input slot; `tag` defaults to the next slot. */
    NodeId addInput();
    NodeId addInput(uint32_t tag);

    /** Add a constant node. */
    NodeId addConst(double value);

    /** Add an operation node over existing operands. */
    NodeId addOp(DagOp op, std::vector<NodeId> inputs,
                 std::vector<double> weights = {});

    /** Declare the root (defaults to the last added node). */
    void markRoot(NodeId id);

    /**
     * Evaluate the whole DAG given external input values (indexed by
     * input tag).  Returns per-node values; result at root().
     */
    std::vector<double> evaluate(const std::vector<double> &inputs) const;

    /** Evaluate and return only the root value. */
    double evaluateRoot(const std::vector<double> &inputs) const;

    /** Structural invariants; panic()s on violation. */
    void validate() const;

    /** Size/shape statistics. */
    DagStats stats() const;

    /** True when every operation node has fan-in <= 2. */
    bool isTwoInput() const;

    /** Human-readable dump (small DAGs only). */
    std::string toString() const;

  private:
    std::vector<DagNode> nodes_;
    NodeId root_ = kInvalidNode;
    uint32_t numInputs_ = 0;
};

/**
 * Dead-node elimination: drop nodes unreachable from the root.  Input
 * slots are preserved (tags are stable).  Returns the count removed.
 */
size_t eliminateDeadNodes(Dag &dag);

} // namespace core
} // namespace reason

#endif // REASON_CORE_DAG_H
