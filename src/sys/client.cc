#include "sys/client.h"

#if REASON_HAS_SOCKETS

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "sys/request_queue.h" // ReasonError codes

namespace reason {
namespace sys {

namespace {

uint64_t
nowNs()
{
    return uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Receive-wait granularity: short enough to notice deadlines. */
constexpr unsigned kPumpTimeoutMs = 50;

enum QueryState : uint8_t
{
    kUnsent = 0,
    kInflight = 1,
    kDone = 2
};

} // namespace

Client::Client(const ClientOptions &options)
    : options_(options), jitterLcg_(options.seed * 2654435761u + 1)
{
    if (options_.pipeline == 0)
        options_.pipeline = 1;
}

Client::~Client()
{
    disconnect();
}

void
Client::disconnect()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    // A poisoned or mid-frame decoder must never survive the
    // connection it was decoding.
    decoder_ = wire::FrameDecoder();
}

bool
Client::ensureConnected()
{
    if (fd_ >= 0)
        return true;
    if (versionMismatch_)
        return false;
    if (consecutiveFailures_ > 0) {
        // Capped exponential backoff with deterministic jitter: the
        // jitter decorrelates clients sharing a seed base without
        // making runs irreproducible.
        const unsigned shift =
            std::min(consecutiveFailures_ - 1, 16u);
        uint64_t delay_ms =
            std::min<uint64_t>(options_.backoffCapMs,
                               uint64_t(options_.backoffBaseMs)
                                   << shift);
        jitterLcg_ = jitterLcg_ * 6364136223846793005ull +
                     1442695040888963407ull;
        delay_ms += (jitterLcg_ >> 33) %
                    (uint64_t(options_.backoffBaseMs) + 1);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(delay_ms));
    }

    const auto fail = [&] {
        ++consecutiveFailures_;
        ++stats_.connectFailures;
        disconnect();
        return false;
    };

    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        return fail();
    netPrepareSocket(fd_);
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (::inet_pton(AF_INET, options_.host.c_str(),
                    &addr.sin_addr) != 1 ||
        ::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0)
        return fail();
    netSetRecvTimeoutMs(fd_, options_.recvTimeoutMs);

    // Synchronous handshake: Hello out, HelloAck back, versions must
    // match.  A mismatch is authoritative — no amount of reconnecting
    // fixes it — so it poisons the client permanently.
    std::vector<uint8_t> hello;
    wire::appendHello(hello, wire::kProtocolVersion,
                      options_.clientId);
    if (!netSendAll(fd_, hello.data(), hello.size()))
        return fail();
    std::vector<uint8_t> inbuf(4096);
    for (;;) {
        wire::Frame frame;
        const auto status = decoder_.next(&frame);
        if (status == wire::FrameDecoder::Status::Ok) {
            if (frame.type != wire::FrameType::HelloAck)
                return fail();
            if (frame.helloVersion != wire::kProtocolVersion) {
                versionMismatch_ = true;
                disconnect();
                return false;
            }
            break;
        }
        if (status == wire::FrameDecoder::Status::Malformed)
            return fail();
        const long n = netRecv(fd_, inbuf.data(), inbuf.size());
        if (n <= 0)
            return fail(); // EOF, timeout, or reset during handshake
        decoder_.feed(inbuf.data(), size_t(n));
    }
    ++stats_.connects;
    return true;
}

bool
Client::runBatch(const std::vector<pc::Assignment> &queries,
                 std::vector<QueryOutcome> *outcomes,
                 uint64_t idBase)
{
    const size_t n = queries.size();
    outcomes->assign(n, QueryOutcome{});

    std::vector<uint8_t> state(n, kUnsent);
    // First-send timestamp: end-to-end latency spans retries.
    std::vector<uint64_t> firstSentNs(n, 0);
    // Per-query absolute deadline, anchored once at batch start.
    std::vector<uint64_t> deadline(n, 0);
    if (options_.deadlineNs != 0) {
        const uint64_t start = nowNs();
        for (size_t i = 0; i < n; ++i)
            deadline[i] = start + options_.deadlineNs;
    }

    size_t done = 0;
    size_t inflight = 0;
    size_t next_send = 0;
    uint64_t last_progress = nowNs();
    std::vector<uint8_t> inbuf(1 << 16);
    std::vector<uint8_t> out;

    const auto finishRemaining = [&](int error) {
        for (size_t i = 0; i < n; ++i)
            if (state[i] != kDone) {
                state[i] = kDone;
                (*outcomes)[i].error = error;
                ++done;
            }
    };
    const auto transportError = [&] {
        ++consecutiveFailures_;
        ++stats_.transportErrors;
        disconnect();
    };

    while (done < n) {
        // Client-side deadline enforcement covers the whole retry
        // loop: a query that cannot be answered in time terminates
        // with the same error code the server-side expiry uses.
        if (options_.deadlineNs != 0) {
            const uint64_t now = nowNs();
            for (size_t i = 0; i < n; ++i) {
                if (state[i] == kDone || deadline[i] > now)
                    continue;
                if (state[i] == kInflight)
                    --inflight;
                state[i] = kDone;
                (*outcomes)[i].error = REASON_ERR_DEADLINE_EXCEEDED;
                ++done;
            }
            if (done == n)
                break;
        }

        if (fd_ < 0) {
            if (versionMismatch_) {
                finishRemaining(kClientErrVersionMismatch);
                return false;
            }
            if (consecutiveFailures_ > options_.maxRetries) {
                finishRemaining(kClientErrTransport);
                return false;
            }
            if (!ensureConnected())
                continue;
            // Fresh connection: everything unanswered is re-sent
            // under its original id — the server's duplicate cache
            // keeps the retry idempotent.
            for (size_t i = 0; i < n; ++i)
                if (state[i] == kInflight) {
                    state[i] = kUnsent;
                    --inflight;
                    ++stats_.retriesSent;
                }
            next_send = 0;
            netSetRecvTimeoutMs(fd_, kPumpTimeoutMs);
            last_progress = nowNs();
        }

        // Fill the pipeline.
        bool send_failed = false;
        while (inflight < options_.pipeline) {
            while (next_send < n && state[next_send] != kUnsent)
                ++next_send;
            if (next_send >= n)
                break;
            const size_t q = next_send;
            wire::SubmitFrame submit;
            submit.id = idBase + q;
            submit.mode =
                options_.budget > 0.0
                    ? uint32_t(REASON_MODE_APPROX)
                    : uint32_t(REASON_MODE_PROBABILISTIC);
            submit.budget = options_.budget;
            if (deadline[q] != 0) {
                const uint64_t now = nowNs();
                // Remaining time at this send — re-anchored per
                // attempt, so a retry does not get a fresh budget.
                submit.deadlineNs =
                    deadline[q] > now ? deadline[q] - now : 1;
            }
            submit.numVars = uint32_t(queries[q].size());
            submit.rows.push_back(queries[q]);
            out.clear();
            wire::appendSubmit(out, submit);
            if (!netSendAll(fd_, out.data(), out.size())) {
                send_failed = true;
                break;
            }
            state[q] = kInflight;
            ++inflight;
            if (firstSentNs[q] == 0)
                firstSentNs[q] = nowNs();
        }
        if (send_failed) {
            transportError();
            continue;
        }
        if (inflight == 0)
            continue; // everything left expired client-side

        // Bounded receive; timeouts only re-check deadlines and the
        // progress bound.
        const long r = netRecv(fd_, inbuf.data(), inbuf.size());
        if (r == 0) {
            transportError(); // orderly EOF with queries in flight
            continue;
        }
        if (r < 0) {
            if (!netRecvTimedOut()) {
                transportError();
                continue;
            }
            // No bytes within the pump window: tolerate until the
            // overall receive bound, then treat the silence as a
            // transport failure (a wedged peer must not hang us).
            if (nowNs() - last_progress >
                uint64_t(options_.recvTimeoutMs) * 1'000'000ull)
                transportError();
            continue;
        }
        decoder_.feed(inbuf.data(), size_t(r));

        bool violated = false;
        for (;;) {
            wire::Frame frame;
            const auto status = decoder_.next(&frame);
            if (status == wire::FrameDecoder::Status::NeedMore)
                break;
            if (status == wire::FrameDecoder::Status::Malformed) {
                violated = true;
                break;
            }
            if (frame.type == wire::FrameType::Pong)
                continue; // stray heartbeat echo
            if (frame.type != wire::FrameType::Result) {
                violated = true;
                break;
            }
            const uint64_t id = frame.result.id;
            if (id < idBase || id - idBase >= n ||
                state[size_t(id - idBase)] != kInflight) {
                violated = true; // unknown or duplicate id
                break;
            }
            const size_t q = size_t(id - idBase);
            QueryOutcome &o = (*outcomes)[q];
            if (frame.result.error != 0) {
                // Authoritative server answer — never retried.
                o.error = frame.result.error;
            } else if (frame.result.values.size() != 1) {
                violated = true; // success must carry one row
                break;
            } else {
                o.error = REASON_OK;
                o.value = frame.result.values[0];
                o.tier = frame.result.tier;
                if (frame.result.tier == 1) {
                    o.boundLo = frame.result.boundLo[0];
                    o.boundHi = frame.result.boundHi[0];
                }
            }
            state[q] = kDone;
            ++done;
            --inflight;
            consecutiveFailures_ = 0; // progress
            last_progress = nowNs();
            o.latencyNs = last_progress - firstSentNs[q];
        }
        if (violated)
            transportError();
    }

    for (const QueryOutcome &o : *outcomes)
        if (o.error == kClientErrTransport ||
            o.error == kClientErrVersionMismatch)
            return false;
    return true;
}

bool
Client::ping(uint64_t token)
{
    // Heartbeats are for idle connections: any non-Pong traffic here
    // is a protocol violation.
    if (versionMismatch_ || !ensureConnected())
        return false;
    std::vector<uint8_t> out;
    wire::appendPing(out, token);
    if (!netSendAll(fd_, out.data(), out.size())) {
        disconnect();
        return false;
    }
    netSetRecvTimeoutMs(fd_, options_.recvTimeoutMs);
    std::vector<uint8_t> inbuf(4096);
    for (;;) {
        wire::Frame frame;
        const auto status = decoder_.next(&frame);
        if (status == wire::FrameDecoder::Status::Ok) {
            if (frame.type == wire::FrameType::Pong &&
                frame.pingToken == token)
                return true;
            disconnect();
            return false;
        }
        if (status == wire::FrameDecoder::Status::Malformed) {
            disconnect();
            return false;
        }
        const long r = netRecv(fd_, inbuf.data(), inbuf.size());
        if (r <= 0) {
            disconnect();
            return false;
        }
        decoder_.feed(inbuf.data(), size_t(r));
    }
}

} // namespace sys
} // namespace reason

#endif // REASON_HAS_SOCKETS
