/**
 * @file
 * Tests for probabilistic circuits: evaluation against brute-force
 * enumeration, normalization of smooth & decomposable circuits, circuit
 * flows (conservation laws), flow-based pruning (likelihood bound), and
 * EM parameter learning.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "pc/flows.h"
#include "pc/learn.h"
#include "pc/pc.h"
#include "util/numeric.h"
#include "util/rng.h"

using namespace reason;
using namespace reason::pc;

namespace {

/** Tiny hand-built mixture over two binary variables. */
Circuit
tinyMixture()
{
    Circuit c(2, 2);
    NodeId l0 = c.addLeaf(0, {0.8, 0.2});
    NodeId l1 = c.addLeaf(1, {0.3, 0.7});
    NodeId p0 = c.addProduct({l0, l1});
    NodeId l2 = c.addLeaf(0, {0.1, 0.9});
    NodeId l3 = c.addLeaf(1, {0.5, 0.5});
    NodeId p1 = c.addProduct({l2, l3});
    NodeId s = c.addSum({p0, p1}, {0.6, 0.4});
    c.markRoot(s);
    c.validate();
    return c;
}

} // namespace

TEST(Circuit, HandComputedLikelihood)
{
    Circuit c = tinyMixture();
    // P(x0=0, x1=1) = 0.6*0.8*0.7 + 0.4*0.1*0.5 = 0.336 + 0.02 = 0.356
    EXPECT_NEAR(std::exp(c.logLikelihood({0, 1})), 0.356, 1e-12);
}

TEST(Circuit, MarginalizationViaMissing)
{
    Circuit c = tinyMixture();
    // Marginal over x1: P(x0=0) = 0.6*0.8 + 0.4*0.1 = 0.52
    EXPECT_NEAR(std::exp(c.logLikelihood({0, kMissing})), 0.52, 1e-12);
    // All-missing marginal = 1.
    EXPECT_NEAR(std::exp(c.logLikelihood({kMissing, kMissing})), 1.0,
                1e-12);
}

TEST(Circuit, SmoothDecomposableDetection)
{
    Circuit c = tinyMixture();
    EXPECT_TRUE(c.isSmoothAndDecomposable());

    // A sum over different scopes is not smooth.
    Circuit bad(2, 2);
    NodeId l0 = bad.addLeaf(0, {0.5, 0.5});
    NodeId l1 = bad.addLeaf(1, {0.5, 0.5});
    bad.markRoot(bad.addSum({l0, l1}, {0.5, 0.5}));
    EXPECT_FALSE(bad.isSmoothAndDecomposable());
}

/** Random circuits must be normalized: partition function = 1. */
class RandomCircuitProps : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomCircuitProps, PartitionFunctionIsOne)
{
    Rng rng(GetParam() * 33331 + 1);
    uint32_t vars = 4 + GetParam() % 4;
    Circuit c = randomCircuit(rng, vars, 2);
    EXPECT_TRUE(c.isSmoothAndDecomposable());
    EXPECT_NEAR(c.bruteForceLogZ(), 0.0, 1e-9);
}

TEST_P(RandomCircuitProps, MarginalEqualsSumOfCompletions)
{
    Rng rng(GetParam() * 911 + 2);
    Circuit c = randomCircuit(rng, 5, 2);
    // P(x0=1) must equal sum over completions of the other vars.
    Assignment q(5, kMissing);
    q[0] = 1;
    double marginal = std::exp(c.logLikelihood(q));
    double total = 0.0;
    for (uint32_t m = 0; m < 16; ++m) {
        Assignment x(5);
        x[0] = 1;
        for (uint32_t v = 1; v < 5; ++v)
            x[v] = (m >> (v - 1)) & 1;
        total += std::exp(c.logLikelihood(x));
    }
    EXPECT_NEAR(marginal, total, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomCircuitProps,
                         ::testing::Range(0, 12));

TEST(Circuit, MapCompletionIsConsistent)
{
    Circuit c = tinyMixture();
    Assignment partial{kMissing, 1};
    Assignment filled = c.mapCompletion(partial);
    EXPECT_EQ(filled[1], 1u);
    ASSERT_LT(filled[0], 2u);
    // MAP completion must have likelihood >= any other completion's
    // within the same evidence for this selective-enough circuit.
    Assignment other = filled;
    other[0] = 1 - filled[0];
    EXPECT_GE(c.logLikelihood(filled), c.logLikelihood(other) - 1e-9);
}

TEST(Circuit, SamplerMatchesDistribution)
{
    Rng rng(404);
    Circuit c = tinyMixture();
    auto data = sampleDataset(rng, c, 40000);
    // Empirical P(x0=0, x1=1) vs exact 0.356.
    size_t hits = 0;
    for (const auto &x : data)
        hits += (x[0] == 0 && x[1] == 1) ? 1 : 0;
    EXPECT_NEAR(double(hits) / data.size(), 0.356, 0.01);
}

TEST(Flows, RootFlowIsOneAndSumsConserve)
{
    Rng rng(5);
    Circuit c = randomCircuit(rng, 6, 2);
    auto data = sampleDataset(rng, c, 1);
    EdgeFlows ef = computeFlows(c, data[0]);
    EXPECT_DOUBLE_EQ(ef.nodeFlows[c.root()], 1.0);
    // For each sum node, child edge flows sum to the node's flow.
    for (NodeId id = 0; id < c.numNodes(); ++id) {
        const PcNode &n = c.node(id);
        if (n.type != PcNodeType::Sum)
            continue;
        double total = 0.0;
        for (size_t k = 0; k < n.children.size(); ++k)
            total += ef.flows[id][k];
        EXPECT_NEAR(total, ef.nodeFlows[id], 1e-9);
    }
}

TEST(Flows, ZeroEvidenceCarriesNoFlow)
{
    Circuit c(1, 2);
    NodeId leaf = c.addLeaf(0, {1.0, 0.0});
    c.markRoot(leaf);
    EdgeFlows ef = computeFlows(c, {1}); // impossible evidence
    EXPECT_DOUBLE_EQ(ef.nodeFlows[c.root()], 0.0);
}

TEST(PruneByFlow, KeepsCircuitValidAndBoundsLikelihood)
{
    Rng rng(6);
    Circuit c = randomCircuit(rng, 8, 2, 3, 6);
    auto data = sampleDataset(rng, c, 200);
    double ll_before = 0.0;
    for (const auto &x : data)
        ll_before += c.logLikelihood(x);
    ll_before /= double(data.size());

    PcPruneResult pr = pruneByFlow(c, data, 0.02);
    EXPECT_GT(pr.edgesRemoved, 0u);
    pr.pruned.validate();

    double ll_after = 0.0;
    for (const auto &x : data)
        ll_after += pr.pruned.logLikelihood(x);
    ll_after /= double(data.size());

    // Note: pruned sum weights are renormalized, which can only help;
    // the paper's bound applies to the unnormalized drop.
    EXPECT_GE(ll_after, ll_before - pr.logLikelihoodBound - 0.05);
}

TEST(PruneFraction, RemovesRequestedShare)
{
    Rng rng(7);
    Circuit c = randomCircuit(rng, 8, 2, 3, 6);
    auto data = sampleDataset(rng, c, 100);
    size_t sum_edges = 0;
    for (NodeId id = 0; id < c.numNodes(); ++id)
        if (c.node(id).type == PcNodeType::Sum)
            sum_edges += c.node(id).children.size();
    PcPruneResult pr = pruneFraction(c, data, 0.3);
    EXPECT_GT(pr.edgesRemoved, 0u);
    EXPECT_LE(pr.edgesRemoved, sum_edges);
    pr.pruned.validate();
    // Pruned circuit must still produce finite likelihoods on data.
    for (const auto &x : data)
        EXPECT_GT(pr.pruned.logLikelihood(x), kLogZero);
}

TEST(PruneFraction, NeverOrphansSumNodes)
{
    Rng rng(8);
    Circuit c = randomCircuit(rng, 6, 2, 2, 4);
    auto data = sampleDataset(rng, c, 50);
    PcPruneResult pr = pruneFraction(c, data, 0.9);
    for (NodeId id = 0; id < pr.pruned.numNodes(); ++id) {
        const PcNode &n = pr.pruned.node(id);
        if (n.type == PcNodeType::Sum)
            EXPECT_GE(n.children.size(), 1u);
    }
}

TEST(Em, TrainingImprovesLikelihood)
{
    Rng rng(9);
    // Data from a "true" circuit, model starts at random parameters.
    Circuit truth = randomCircuit(rng, 6, 2);
    auto data = sampleDataset(rng, truth, 400);
    Circuit model = randomCircuit(rng, 6, 2);
    double before = meanLogLikelihood(model, data);
    EmConfig cfg;
    cfg.maxIterations = 15;
    EmTrace trace = emTrain(model, data, cfg);
    double after = meanLogLikelihood(model, data);
    EXPECT_GT(after, before);
    EXPECT_GE(trace.logLikelihood.size(), 2u);
    // Trend is upward: final beats initial by a clear margin or the run
    // converged immediately.
    EXPECT_GE(after - before, -1e-9);
}

TEST(Em, KeepsParametersNormalized)
{
    Rng rng(10);
    Circuit model = randomCircuit(rng, 5, 2);
    auto data = sampleDataset(rng, model, 100);
    emTrain(model, data);
    model.validate(); // checks weight normalization
    EXPECT_NEAR(model.bruteForceLogZ(), 0.0, 1e-9);
}
