/**
 * @file
 * Scale-out serving tests (sys::ReasonEngine with multiple dispatcher
 * threads, bounded queues, and the socket wire protocol):
 *
 *  - bit-identity: outputs match one-at-a-time submission for every
 *    dispatcher count x queue policy combination (the determinism
 *    contract shedding and scale-out must not weaken);
 *  - backpressure: a full bounded queue rejects (RejectNew) or sheds
 *    (ShedOldest) with REASON_ERR_OVERLOAD, with exact deterministic
 *    accounting when the backlog is built under pause, and the queue
 *    depth never exceeds capacity;
 *  - fairness: a flooding session cannot starve a light session —
 *    per-session lanes are drained round-robin, so the light rows
 *    start well before the flood's tail;
 *  - linger autotuning smoke: EWMAs populate and outputs stay exact;
 *  - wire protocol: encode/decode round-trips every frame type with
 *    bit-exact doubles, and malformed input (truncations, bad
 *    lengths, unknown types, random garbage) poisons the decoder
 *    instead of crashing — this file is part of the TSan/ASan CI
 *    matrix, so the concurrency paths run under the sanitizers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>
#include <vector>

#include "random_circuit.h"
#include "sys/engine.h"
#include "sys/wire.h"
#include "util/rng.h"

using namespace reason;
using namespace reason::sys;

namespace {

bool
bitEqual(double a, double b)
{
    uint64_t ba, bb;
    std::memcpy(&ba, &a, sizeof ba);
    std::memcpy(&bb, &b, sizeof bb);
    return ba == bb;
}

/** One-at-a-time engine outputs: the coalescing-free reference. */
std::vector<double>
serveOneAtATime(const pc::Circuit &circuit,
                const std::vector<pc::Assignment> &rows)
{
    ServeOptions options;
    options.maxBatch = 1;
    ReasonEngine engine(options);
    Session session = engine.createSession(circuit);
    std::vector<double> out;
    for (const pc::Assignment &x : rows)
        out.push_back(session.wait(session.submit(x))->outputs[0]);
    return out;
}

} // namespace

// ---------------------------------------------------------------------------
// Bit-identity across dispatcher counts and queue policies.
// ---------------------------------------------------------------------------

TEST(EngineMt, BitIdenticalAcrossDispatchersAndPolicies)
{
    Rng rng(901);
    pc::Circuit circuit = pc::randomCircuit(rng, 28, 2, 4, 7);
    std::vector<pc::Assignment> rows =
        pc::sampleDataset(rng, circuit, 53);
    std::vector<double> reference = serveOneAtATime(circuit, rows);

    constexpr size_t kSessions = 3;
    for (unsigned dispatchers : {1u, 2u, 4u}) {
        for (QueuePolicy policy :
             {QueuePolicy::RejectNew, QueuePolicy::ShedOldest}) {
            ServeOptions options;
            options.maxBatch = 8;
            options.dispatchers = dispatchers;
            options.queuePolicy = policy;
            options.startPaused = true;
            ReasonEngine engine(options);
            std::vector<Session> sessions;
            for (size_t s = 0; s < kSessions; ++s)
                sessions.push_back(engine.createSession(circuit));
            std::vector<RequestHandle> handles;
            for (size_t i = 0; i < rows.size(); ++i)
                handles.push_back(
                    sessions[i % kSessions].submit(rows[i]));
            engine.resume();
            for (size_t i = 0; i < rows.size(); ++i) {
                std::shared_ptr<const Request> r =
                    sessions[i % kSessions].wait(handles[i]);
                ASSERT_EQ(r->error, REASON_OK)
                    << dispatchers << " dispatchers, request " << i;
                EXPECT_TRUE(bitEqual(r->outputs[0], reference[i]))
                    << dispatchers << " dispatchers, request " << i;
            }
            EngineStats stats = engine.stats();
            EXPECT_EQ(stats.completed, rows.size());
            EXPECT_EQ(stats.executed, rows.size());
            EXPECT_EQ(stats.shedRequests, 0u);
        }
    }
}

// ---------------------------------------------------------------------------
// Backpressure and load shedding on a bounded queue.
// ---------------------------------------------------------------------------

TEST(EngineMt, RejectNewFailsOverflowWithOverloadError)
{
    Rng rng(902);
    pc::Circuit circuit = pc::randomCircuit(rng, 20, 2, 3, 6);
    std::vector<pc::Assignment> rows =
        pc::sampleDataset(rng, circuit, 24);
    std::vector<double> reference = serveOneAtATime(circuit, rows);

    const size_t capacity = rows.size() / 2;
    ServeOptions options;
    options.maxBatch = 4;
    options.dispatchers = 2;
    options.queueCapacity = capacity;
    options.queuePolicy = QueuePolicy::RejectNew;
    options.startPaused = true;
    ReasonEngine engine(options);
    Session session = engine.createSession(circuit);
    std::vector<RequestHandle> handles;
    for (const pc::Assignment &x : rows)
        handles.push_back(session.submit(x));
    // RejectNew admits the first `capacity` submissions and fails the
    // rest immediately — before resume() even runs a batch.
    for (size_t i = capacity; i < rows.size(); ++i) {
        EXPECT_TRUE(session.poll(handles[i])) << "request " << i;
        EXPECT_EQ(session.wait(handles[i])->error,
                  REASON_ERR_OVERLOAD)
            << "request " << i;
    }
    engine.resume();
    for (size_t i = 0; i < capacity; ++i) {
        std::shared_ptr<const Request> r = session.wait(handles[i]);
        ASSERT_EQ(r->error, REASON_OK) << "request " << i;
        EXPECT_TRUE(bitEqual(r->outputs[0], reference[i]))
            << "request " << i;
    }
    EngineStats stats = engine.stats();
    EXPECT_EQ(stats.shedRequests, rows.size() - capacity);
    EXPECT_LE(stats.maxQueueDepth, capacity);
    // Latency means count only the requests that actually executed;
    // instant rejections must not drag the means toward zero.
    EXPECT_EQ(stats.completed, rows.size());
    EXPECT_EQ(stats.executed, capacity);
}

TEST(EngineMt, ShedOldestKeepsNewestAndBoundsDepth)
{
    Rng rng(903);
    pc::Circuit circuit = pc::randomCircuit(rng, 20, 2, 3, 6);
    std::vector<pc::Assignment> rows =
        pc::sampleDataset(rng, circuit, 26);
    std::vector<double> reference = serveOneAtATime(circuit, rows);

    const size_t capacity = rows.size() / 2;
    ServeOptions options;
    options.maxBatch = 4;
    options.dispatchers = 2;
    options.queueCapacity = capacity;
    options.queuePolicy = QueuePolicy::ShedOldest;
    options.startPaused = true;
    ReasonEngine engine(options);
    Session session = engine.createSession(circuit);
    std::vector<RequestHandle> handles;
    for (const pc::Assignment &x : rows)
        handles.push_back(session.submit(x));
    engine.resume();
    // ShedOldest evicts the globally oldest queued request per
    // over-capacity admission, so under a paused backlog exactly the
    // first half is shed and the newest half executes.
    for (size_t i = 0; i < rows.size(); ++i) {
        std::shared_ptr<const Request> r = session.wait(handles[i]);
        if (i < rows.size() - capacity) {
            EXPECT_EQ(r->error, REASON_ERR_OVERLOAD)
                << "request " << i;
        } else {
            ASSERT_EQ(r->error, REASON_OK) << "request " << i;
            EXPECT_TRUE(bitEqual(r->outputs[0], reference[i]))
                << "request " << i;
        }
    }
    EngineStats stats = engine.stats();
    EXPECT_EQ(stats.shedRequests, rows.size() - capacity);
    EXPECT_LE(stats.maxQueueDepth, capacity);
    EXPECT_EQ(stats.completed, rows.size());
    EXPECT_EQ(stats.executed, capacity);
}

// ---------------------------------------------------------------------------
// Per-session fairness under a flooding client.
// ---------------------------------------------------------------------------

TEST(EngineMt, LightSessionNotStarvedByFloodingSession)
{
    Rng rng(904);
    pc::Circuit circuit = pc::randomCircuit(rng, 24, 2, 3, 6);
    std::vector<pc::Assignment> flood_rows =
        pc::sampleDataset(rng, circuit, 64);
    std::vector<pc::Assignment> light_rows =
        pc::sampleDataset(rng, circuit, 4);

    ServeOptions options;
    options.maxBatch = 4;
    options.dispatchers = 2;
    options.startPaused = true;
    ReasonEngine engine(options);
    Session flooder = engine.createSession(circuit);
    Session light = engine.createSession(circuit);
    std::vector<RequestHandle> flood_handles;
    for (const pc::Assignment &x : flood_rows)
        flood_handles.push_back(flooder.submit(x));
    std::vector<RequestHandle> light_handles;
    for (const pc::Assignment &x : light_rows)
        light_handles.push_back(light.submit(x));
    engine.resume();

    uint64_t light_last_start = 0;
    for (const RequestHandle &h : light_handles) {
        std::shared_ptr<const Request> r = light.wait(h);
        ASSERT_EQ(r->error, REASON_OK);
        light_last_start = std::max(light_last_start, r->startedNs);
    }
    uint64_t flood_last_start = 0;
    for (const RequestHandle &h : flood_handles) {
        std::shared_ptr<const Request> r = flooder.wait(h);
        ASSERT_EQ(r->error, REASON_OK);
        flood_last_start = std::max(flood_last_start, r->startedNs);
    }
    // Session lanes are gathered round-robin, so the light session's
    // rows ride the earliest batches even though the flooder enqueued
    // its entire backlog first; the flood's tail starts strictly
    // later.
    EXPECT_LT(light_last_start, flood_last_start)
        << "light session waited behind the flood";
}

// ---------------------------------------------------------------------------
// Coalesce-linger autotuning smoke (EWMAs populate; bits unchanged).
// ---------------------------------------------------------------------------

TEST(EngineMt, AutoLingerTunesWithoutChangingBits)
{
    Rng rng(905);
    pc::Circuit circuit = pc::randomCircuit(rng, 20, 2, 3, 6);
    std::vector<pc::Assignment> rows =
        pc::sampleDataset(rng, circuit, 40);
    std::vector<double> reference = serveOneAtATime(circuit, rows);

    ServeOptions options;
    options.maxBatch = 8;
    options.dispatchers = 2;
    options.autoLingerWindow = true;
    ReasonEngine engine(options);
    Session session = engine.createSession(circuit);
    std::vector<RequestHandle> handles;
    for (const pc::Assignment &x : rows)
        handles.push_back(session.submit(x));
    for (size_t i = 0; i < rows.size(); ++i) {
        std::shared_ptr<const Request> r = session.wait(handles[i]);
        ASSERT_EQ(r->error, REASON_OK);
        EXPECT_TRUE(bitEqual(r->outputs[0], reference[i]));
    }
    EngineStats stats = engine.stats();
    // The EWMAs have seen real traffic; the tuned linger is clamped
    // to a sane non-negative window.
    EXPECT_GT(stats.ewmaExecUs, 0.0);
    EXPECT_GE(stats.ewmaInterArrivalUs, 0.0);
    EXPECT_GE(stats.lastLingerUs, 0.0);
}

// ---------------------------------------------------------------------------
// Approximate tier through the serving stack: tier selection,
// bit-identical results and bounds across every scale-out shape,
// and budget validation.
// ---------------------------------------------------------------------------

namespace {

struct ApproxReference
{
    std::vector<double> value, lo, hi;
};

/** One-at-a-time budgeted submission: the scale-out ground truth. */
ApproxReference
serveApproxOneAtATime(const pc::Circuit &circuit,
                      const std::vector<pc::Assignment> &rows,
                      const std::vector<double> &budgets)
{
    ServeOptions options;
    options.maxBatch = 1;
    ReasonEngine engine(options);
    Session session = engine.createSession(circuit);
    ApproxReference ref;
    for (size_t i = 0; i < rows.size(); ++i) {
        std::shared_ptr<const Request> r =
            session.wait(session.submit(rows[i], budgets[i]));
        EXPECT_EQ(r->error, REASON_OK);
        ref.value.push_back(r->outputs[0]);
        if (budgets[i] > 0.0) {
            ref.lo.push_back(r->boundLo[0]);
            ref.hi.push_back(r->boundHi[0]);
        } else {
            // Exact tier: the degenerate point interval.
            ref.lo.push_back(r->outputs[0]);
            ref.hi.push_back(r->outputs[0]);
        }
    }
    return ref;
}

} // namespace

TEST(EngineMt, ApproxBitIdenticalAcrossDispatchersThreadsAndBatches)
{
    Rng rng(907);
    pc::Circuit circuit = pc::randomCircuit(rng, 26, 2, 4, 7);
    std::vector<pc::Assignment> rows =
        pc::sampleDataset(rng, circuit, 48);
    // Mixed traffic: exact (0), and three distinct approx budgets, so
    // one run covers tier selection, per-budget evaluator caching,
    // and approx/exact shard separation at once.
    std::vector<double> budgets(rows.size());
    const double kTiers[] = {0.0, 1e-3, 0.1, 1.0};
    for (size_t i = 0; i < rows.size(); ++i)
        budgets[i] = kTiers[i % 4];
    const ApproxReference ref =
        serveApproxOneAtATime(circuit, rows, budgets);

    constexpr size_t kSessions = 3;
    for (unsigned dispatchers : {1u, 2u, 4u}) {
        for (unsigned serve_threads : {1u, 2u, 4u, 8u}) {
            for (unsigned max_batch : {1u, 8u, 64u}) {
                // Trim the sweep: vary one axis at a time around the
                // (2 dispatchers, 2 threads, 8 batch) center, keeping
                // the run TSan-friendly.
                if ((dispatchers != 2) + (serve_threads != 2) +
                        (max_batch != 8) >
                    1)
                    continue;
                ServeOptions options;
                options.maxBatch = max_batch;
                options.serveThreads = serve_threads;
                options.dispatchers = dispatchers;
                options.startPaused = true;
                ReasonEngine engine(options);
                std::vector<Session> sessions;
                for (size_t s = 0; s < kSessions; ++s)
                    sessions.push_back(engine.createSession(circuit));
                std::vector<RequestHandle> handles;
                for (size_t i = 0; i < rows.size(); ++i)
                    handles.push_back(sessions[i % kSessions].submit(
                        rows[i], budgets[i]));
                engine.resume();
                for (size_t i = 0; i < rows.size(); ++i) {
                    std::shared_ptr<const Request> r =
                        sessions[i % kSessions].wait(handles[i]);
                    ASSERT_EQ(r->error, REASON_OK)
                        << dispatchers << "d/" << serve_threads
                        << "t/" << max_batch << "b, request " << i;
                    EXPECT_TRUE(
                        bitEqual(r->outputs[0], ref.value[i]))
                        << "request " << i;
                    if (budgets[i] > 0.0) {
                        EXPECT_EQ(r->mode, REASON_MODE_APPROX);
                        ASSERT_EQ(r->boundLo.size(), 1u);
                        ASSERT_EQ(r->boundHi.size(), 1u);
                        EXPECT_TRUE(
                            bitEqual(r->boundLo[0], ref.lo[i]))
                            << "request " << i;
                        EXPECT_TRUE(
                            bitEqual(r->boundHi[0], ref.hi[i]))
                            << "request " << i;
                        // The certified interval always brackets the
                        // returned value.
                        EXPECT_LE(r->boundLo[0], r->outputs[0]);
                        EXPECT_GE(r->boundHi[0], r->outputs[0]);
                    } else {
                        EXPECT_EQ(r->mode, REASON_MODE_PROBABILISTIC);
                        EXPECT_TRUE(r->boundLo.empty());
                        EXPECT_TRUE(r->boundHi.empty());
                    }
                }
            }
        }
    }
}

TEST(EngineMt, ApproxBatchSubmissionMatchesPerRow)
{
    Rng rng(908);
    pc::Circuit circuit = pc::randomCircuit(rng, 24, 2, 3, 6);
    std::vector<pc::Assignment> rows =
        pc::sampleDataset(rng, circuit, 9);
    const double budget = 0.05;
    std::vector<double> budgets(rows.size(), budget);
    const ApproxReference ref =
        serveApproxOneAtATime(circuit, rows, budgets);

    ReasonEngine engine;
    Session session = engine.createSession(circuit);
    std::shared_ptr<const Request> r =
        session.wait(session.submitBatch(rows, budget));
    ASSERT_EQ(r->error, REASON_OK);
    ASSERT_EQ(r->outputs.size(), rows.size());
    ASSERT_EQ(r->boundLo.size(), rows.size());
    ASSERT_EQ(r->boundHi.size(), rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
        EXPECT_TRUE(bitEqual(r->outputs[i], ref.value[i]));
        EXPECT_TRUE(bitEqual(r->boundLo[i], ref.lo[i]));
        EXPECT_TRUE(bitEqual(r->boundHi[i], ref.hi[i]));
    }
}

TEST(EngineMt, InvalidBudgetsRejectedAtSubmission)
{
    Rng rng(909);
    pc::Circuit circuit = pc::randomCircuit(rng, 20, 2, 3, 6);
    std::vector<pc::Assignment> rows =
        pc::sampleDataset(rng, circuit, 2);

    ReasonEngine engine;
    Session session = engine.createSession(circuit);
    const double bad[] = {-1.0, -1e-300,
                          std::numeric_limits<double>::quiet_NaN(),
                          std::numeric_limits<double>::infinity(),
                          -std::numeric_limits<double>::infinity()};
    for (double budget : bad) {
        std::shared_ptr<const Request> r =
            session.wait(session.submit(rows[0], budget));
        EXPECT_EQ(r->error, REASON_ERR_BAD_BUDGET)
            << "budget " << budget;
        EXPECT_TRUE(r->outputs.empty());
        EXPECT_TRUE(r->boundLo.empty());
    }
    // -0.0 is zero: the exact tier, not an error.
    std::shared_ptr<const Request> ok =
        session.wait(session.submit(rows[0], -0.0));
    EXPECT_EQ(ok->error, REASON_OK);
    EXPECT_EQ(ok->mode, REASON_MODE_PROBABILISTIC);
    // The session still serves normal traffic afterwards.
    std::shared_ptr<const Request> after =
        session.wait(session.submit(rows[1]));
    EXPECT_EQ(after->error, REASON_OK);
}

// ---------------------------------------------------------------------------
// Wire protocol: round-trip and malformed-input robustness.
// ---------------------------------------------------------------------------

TEST(WireProtocol, RoundTripsEveryFrameTypeBitExact)
{
    namespace wire = reason::sys::wire;

    wire::SubmitFrame submit;
    submit.id = 0x0123456789abcdefull;
    submit.deadlineNs = 0xfedcba9876543210ull;
    submit.numVars = 3;
    submit.rows = {{0u, 1u, 0xffffffffu}, {2u, 0u, 1u}};

    wire::ResultFrame result;
    result.id = 42;
    result.error = REASON_ERR_OVERLOAD;
    // Exercise bit-exact transport: negative zero, a subnormal, and a
    // quiet NaN all survive only if doubles travel as raw bits.
    result.values = {-0.0, 5e-324,
                     std::numeric_limits<double>::quiet_NaN(),
                     -123.456789};

    std::vector<uint8_t> bytes;
    wire::appendHello(bytes, wire::kProtocolVersion,
                      0xc11e471d00000007ull);
    wire::appendHelloAck(bytes);
    wire::appendSubmit(bytes, submit);
    wire::appendResult(bytes, result);
    wire::appendPing(bytes, 0xdeadbeefcafef00dull);
    wire::appendPong(bytes, 0xdeadbeefcafef00dull);

    // Feed in 3-byte chunks so every frame crosses feed() boundaries.
    wire::FrameDecoder decoder;
    std::vector<wire::Frame> frames;
    for (size_t at = 0; at < bytes.size(); at += 3) {
        decoder.feed(bytes.data() + at,
                     std::min<size_t>(3, bytes.size() - at));
        wire::Frame f;
        while (decoder.next(&f) == wire::FrameDecoder::Status::Ok)
            frames.push_back(f);
    }
    ASSERT_FALSE(decoder.poisoned());
    ASSERT_EQ(frames.size(), 6u);

    EXPECT_EQ(frames[0].type, wire::FrameType::Hello);
    EXPECT_EQ(frames[0].helloVersion, wire::kProtocolVersion);
    EXPECT_EQ(frames[0].helloClientId, 0xc11e471d00000007ull);
    EXPECT_EQ(frames[1].type, wire::FrameType::HelloAck);
    EXPECT_EQ(frames[1].helloVersion, wire::kProtocolVersion);

    EXPECT_EQ(frames[2].type, wire::FrameType::Submit);
    EXPECT_EQ(frames[2].submit.id, submit.id);
    EXPECT_EQ(frames[2].submit.deadlineNs, submit.deadlineNs);
    EXPECT_EQ(frames[2].submit.numVars, submit.numVars);
    EXPECT_EQ(frames[2].submit.rows, submit.rows);

    EXPECT_EQ(frames[4].type, wire::FrameType::Ping);
    EXPECT_EQ(frames[4].pingToken, 0xdeadbeefcafef00dull);
    EXPECT_EQ(frames[5].type, wire::FrameType::Pong);
    EXPECT_EQ(frames[5].pingToken, 0xdeadbeefcafef00dull);

    EXPECT_EQ(frames[3].type, wire::FrameType::Result);
    EXPECT_EQ(frames[3].result.id, result.id);
    EXPECT_EQ(frames[3].result.error, result.error);
    ASSERT_EQ(frames[3].result.values.size(), result.values.size());
    for (size_t i = 0; i < result.values.size(); ++i)
        EXPECT_TRUE(bitEqual(frames[3].result.values[i],
                             result.values[i]))
            << "value " << i;

    // The checksum helpers agree on the decoded values, so remote and
    // in-process runs can prove bitwise equality.
    EXPECT_EQ(wire::checksumValues(frames[3].result.values.data(),
                                   frames[3].result.values.size()),
              wire::checksumValues(result.values.data(),
                                   result.values.size()));
}

TEST(WireProtocol, MalformedFramesPoisonInsteadOfCrashing)
{
    namespace wire = reason::sys::wire;
    using Status = wire::FrameDecoder::Status;

    auto decode_all = [](const std::vector<uint8_t> &bytes) {
        wire::FrameDecoder decoder;
        decoder.feed(bytes.data(), bytes.size());
        wire::Frame f;
        Status status;
        size_t guard = 0;
        while ((status = decoder.next(&f)) == Status::Ok) {
            if (++guard >= 10000u) {
                ADD_FAILURE() << "decoder failed to consume";
                break;
            }
        }
        return status;
    };

    // Zero length: frames carry at least the type byte.
    EXPECT_EQ(decode_all({0, 0, 0, 0, 1}), Status::Malformed);
    // Length beyond kMaxFrameBytes: framing-error guard.
    EXPECT_EQ(decode_all({0xff, 0xff, 0xff, 0xff, 1}),
              Status::Malformed);
    // Unknown frame type.
    EXPECT_EQ(decode_all({1, 0, 0, 0, 99}), Status::Malformed);
    // Hello with a short payload.
    EXPECT_EQ(decode_all({3, 0, 0, 0, 1, 0, 0}), Status::Malformed);
    // Submit whose row payload disagrees with its declared shape.
    {
        std::vector<uint8_t> bytes;
        wire::SubmitFrame submit;
        submit.id = 7;
        submit.numVars = 2;
        submit.rows = {{1u, 0u}};
        wire::appendSubmit(bytes, submit);
        bytes.pop_back(); // truncate the last row value
        bytes[0] -= 1;    // keep the length prefix consistent
        EXPECT_EQ(decode_all(bytes), Status::Malformed);
    }
    // Shape attacks: a Submit header with no row payload (v3 body is
    // type + id(8) + mode(4) + budget(8) + deadlineNs(8) +
    // numRows(4) + numVars(4) = 37 bytes) must never turn its
    // declared shape into a huge allocation.
    auto shape_frame = [](uint32_t num_rows, uint32_t num_vars) {
        std::vector<uint8_t> bytes = {
            37, 0, 0, 0, uint8_t(wire::FrameType::Submit)};
        bytes.insert(bytes.end(), 8, 0);  // id
        bytes.insert(bytes.end(), 4, 0);  // mode
        bytes.insert(bytes.end(), 8, 0);  // budget bits
        bytes.insert(bytes.end(), 8, 0);  // deadlineNs
        for (int i = 0; i < 4; ++i)
            bytes.push_back(uint8_t(num_rows >> (8 * i)));
        for (int i = 0; i < 4; ++i)
            bytes.push_back(uint8_t(num_vars >> (8 * i)));
        return bytes;
    };
    // numVars == 0 must not validate an arbitrary declared row count
    // against the empty payload (a 21-byte frame would otherwise
    // resize ~4G rows and likely kill the server on bad_alloc).
    EXPECT_EQ(decode_all(shape_frame(0xffffffffu, 0)),
              Status::Malformed);
    // 2^31 rows x 2^31 vars x 4 bytes wraps 64-bit size_t to zero;
    // the division-based shape check still rejects it.
    EXPECT_EQ(decode_all(shape_frame(0x80000000u, 0x80000000u)),
              Status::Malformed);
    // An empty batch (numVars set, zero rows) stays decodable.
    {
        const std::vector<uint8_t> bytes = shape_frame(0, 4);
        wire::FrameDecoder decoder;
        decoder.feed(bytes.data(), bytes.size());
        wire::Frame f;
        EXPECT_EQ(decoder.next(&f), Status::Ok);
        EXPECT_EQ(f.submit.numVars, 4u);
        EXPECT_TRUE(f.submit.rows.empty());
    }
    // Submit frames cut at each v3 field boundary (after id, mid
    // mode, after mode, mid budget, after budget, mid deadline,
    // after deadline, mid numRows, after numRows, mid numVars) are
    // framing violations, not misparses of the shorter v2 layout.
    {
        std::vector<uint8_t> full;
        wire::SubmitFrame submit;
        submit.id = 9;
        submit.mode = 3;
        submit.budget = 0.25;
        submit.deadlineNs = 123456789;
        submit.numVars = 2;
        submit.rows = {{1u, 0u}};
        wire::appendSubmit(full, submit);
        for (size_t body :
             {8u, 10u, 12u, 16u, 20u, 24u, 28u, 30u, 32u, 34u}) {
            std::vector<uint8_t> cut(full.begin() + 4,
                                     full.begin() + 5 + long(body));
            std::vector<uint8_t> bytes = {uint8_t(body + 1), 0, 0, 0};
            bytes.insert(bytes.end(), cut.begin(), cut.end());
            EXPECT_EQ(decode_all(bytes), Status::Malformed)
                << "body " << body;
        }
    }
    // Result tier byte is framing: tier 2 is invalid outright, and a
    // tier that disagrees with the payload length (bounds missing on
    // tier 1, trailing bounds on tier 0) is Malformed too.
    {
        std::vector<uint8_t> full;
        wire::ResultFrame result;
        result.id = 5;
        result.tier = 1;
        result.values = {-1.5};
        result.boundLo = {-2.0};
        result.boundHi = {-1.0};
        wire::appendResult(full, result);
        std::vector<uint8_t> bad_tier = full;
        bad_tier[4 + 1 + 8 + 4] = 2; // tier byte after type+id+error
        EXPECT_EQ(decode_all(bad_tier), Status::Malformed);
        std::vector<uint8_t> tier0_with_bounds = full;
        tier0_with_bounds[4 + 1 + 8 + 4] = 0;
        EXPECT_EQ(decode_all(tier0_with_bounds), Status::Malformed);
        std::vector<uint8_t> no_bounds;
        wire::ResultFrame plain;
        plain.id = 5;
        plain.values = {-1.5};
        wire::appendResult(no_bounds, plain);
        std::vector<uint8_t> tier1_without_bounds = no_bounds;
        tier1_without_bounds[4 + 1 + 8 + 4] = 1;
        EXPECT_EQ(decode_all(tier1_without_bounds), Status::Malformed);
    }
    // A truncated valid frame is NeedMore, not Malformed.
    {
        std::vector<uint8_t> bytes;
        wire::appendHello(bytes);
        bytes.resize(bytes.size() - 2);
        EXPECT_EQ(decode_all(bytes), Status::NeedMore);
    }
    // Heartbeats are framed like everything else: a Ping cut inside
    // its token is truncation, and trailing bytes are a shape
    // violation, not silently ignored padding.
    {
        std::vector<uint8_t> ping;
        wire::appendPing(ping, 0x1122334455667788ull);
        std::vector<uint8_t> cut(ping.begin(), ping.end() - 3);
        cut[0] -= 3; // keep the length prefix consistent
        EXPECT_EQ(decode_all(cut), Status::Malformed);
        std::vector<uint8_t> padded = ping;
        padded.push_back(0);
        padded[0] += 1;
        EXPECT_EQ(decode_all(padded), Status::Malformed);
    }
    // Version negotiation never poisons framing.  A v2 Hello (no
    // clientId field) still decodes, so the server can answer the
    // mismatch explicitly; a future-version Hello with trailing
    // fields we do not know decodes too; but a v3 Hello with
    // trailing bytes is a shape violation of a layout we *do* know.
    {
        std::vector<uint8_t> v2;
        wire::appendHello(v2, 2);
        wire::FrameDecoder decoder;
        decoder.feed(v2.data(), v2.size());
        wire::Frame f;
        ASSERT_EQ(decoder.next(&f), Status::Ok);
        EXPECT_EQ(f.type, wire::FrameType::Hello);
        EXPECT_EQ(f.helloVersion, 2u);
        EXPECT_EQ(f.helloClientId, 0u);

        std::vector<uint8_t> v4;
        wire::appendHello(v4, 4, 77);
        v4.push_back(0xab); // hypothetical v4-only trailing field
        v4[0] += 1;
        wire::FrameDecoder decoder4;
        decoder4.feed(v4.data(), v4.size());
        ASSERT_EQ(decoder4.next(&f), Status::Ok);
        EXPECT_EQ(f.helloVersion, 4u);
        EXPECT_EQ(f.helloClientId, 77u);

        std::vector<uint8_t> v3;
        wire::appendHello(v3, 3, 77);
        v3.push_back(0xab);
        v3[0] += 1;
        EXPECT_EQ(decode_all(v3), Status::Malformed);
    }
    // The poison reason names the precise failure class, so the
    // server's diagnostics (and retry policy) can tell a framing bug
    // from a shape attack.
    {
        auto reason_of = [](const std::vector<uint8_t> &bytes) {
            wire::FrameDecoder decoder;
            decoder.feed(bytes.data(), bytes.size());
            wire::Frame f;
            while (decoder.next(&f) == Status::Ok) {
            }
            return decoder.poisonReason();
        };
        EXPECT_EQ(reason_of({0, 0, 0, 0, 1}), "length");
        EXPECT_EQ(reason_of({1, 0, 0, 0, 99}), "type");
        EXPECT_EQ(reason_of({3, 0, 0, 0, 1, 0, 0}), "truncation");
        EXPECT_EQ(reason_of(shape_frame(0xffffffffu, 0)), "shape");
        std::vector<uint8_t> bad_tier;
        wire::ResultFrame result;
        result.id = 5;
        result.values = {-1.5};
        wire::appendResult(bad_tier, result);
        bad_tier[4 + 1 + 8 + 4] = 2;
        EXPECT_EQ(reason_of(bad_tier), "tier");
        // A healthy decoder reports no reason at all.
        std::vector<uint8_t> good;
        wire::appendHello(good);
        EXPECT_EQ(reason_of(good), "");
    }
    // Once poisoned, the decoder stays poisoned even after good data.
    {
        wire::FrameDecoder decoder;
        const uint8_t bad[] = {0, 0, 0, 0, 1};
        decoder.feed(bad, sizeof bad);
        wire::Frame f;
        EXPECT_EQ(decoder.next(&f), Status::Malformed);
        std::vector<uint8_t> good;
        wire::appendHello(good);
        decoder.feed(good.data(), good.size());
        EXPECT_EQ(decoder.next(&f), Status::Malformed);
        EXPECT_TRUE(decoder.poisoned());
    }
}

TEST(WireProtocol, SubmitModeAndBudgetRoundTripBitExact)
{
    namespace wire = reason::sys::wire;

    // NaN payloads and -0.0 must survive the trip bit-exactly: the
    // server validates what the client actually sent, so the wire
    // layer may not canonicalize them.
    const double budgets[] = {
        0.0, -0.0, 0.25,
        std::bit_cast<double>(0x7ff8000000000badull), // NaN payload
        -std::numeric_limits<double>::infinity()};
    for (double budget : budgets) {
        for (uint32_t mode : {0u, 3u, 7u}) {
            wire::SubmitFrame submit;
            submit.id = 11;
            submit.mode = mode;
            submit.budget = budget;
            submit.numVars = 2;
            submit.rows = {{0u, 1u}};
            std::vector<uint8_t> bytes;
            wire::appendSubmit(bytes, submit);
            wire::FrameDecoder decoder;
            decoder.feed(bytes.data(), bytes.size());
            wire::Frame f;
            ASSERT_EQ(decoder.next(&f),
                      wire::FrameDecoder::Status::Ok)
                << "mode " << mode;
            EXPECT_EQ(f.submit.mode, mode);
            EXPECT_TRUE(bitEqual(f.submit.budget, budget))
                << "mode " << mode;
            EXPECT_EQ(f.submit.rows, submit.rows);
        }
    }
}

TEST(WireProtocol, ValidateSubmitMapsSemanticViolationsToErrors)
{
    namespace wire = reason::sys::wire;

    auto frame = [](uint32_t mode, double budget) {
        wire::SubmitFrame f;
        f.mode = mode;
        f.budget = budget;
        return f;
    };
    // The two real modes with their legal budgets.
    EXPECT_EQ(wire::validateSubmit(
                  frame(uint32_t(REASON_MODE_PROBABILISTIC), 0.0)),
              REASON_OK);
    EXPECT_EQ(wire::validateSubmit(
                  frame(uint32_t(REASON_MODE_APPROX), 0.0)),
              REASON_OK);
    EXPECT_EQ(wire::validateSubmit(
                  frame(uint32_t(REASON_MODE_APPROX), 0.5)),
              REASON_OK);
    // Unknown modes answer BAD_MODE instead of poisoning the decoder.
    for (uint32_t mode : {1u, 2u, 4u, 99u, 0xffffffffu})
        EXPECT_EQ(wire::validateSubmit(frame(mode, 0.0)),
                  REASON_ERR_BAD_MODE)
            << "mode " << mode;
    // Garbage budgets answer BAD_BUDGET: NaN (any payload), the
    // infinities, negatives, and a budget smuggled onto the exact
    // mode.
    EXPECT_EQ(wire::validateSubmit(frame(
                  uint32_t(REASON_MODE_APPROX),
                  std::numeric_limits<double>::quiet_NaN())),
              REASON_ERR_BAD_BUDGET);
    EXPECT_EQ(wire::validateSubmit(frame(
                  uint32_t(REASON_MODE_APPROX),
                  std::numeric_limits<double>::infinity())),
              REASON_ERR_BAD_BUDGET);
    EXPECT_EQ(wire::validateSubmit(
                  frame(uint32_t(REASON_MODE_APPROX), -1e-9)),
              REASON_ERR_BAD_BUDGET);
    EXPECT_EQ(wire::validateSubmit(
                  frame(uint32_t(REASON_MODE_PROBABILISTIC), 0.5)),
              REASON_ERR_BAD_BUDGET);
    // -0.0 passes the sign test bit-for-bit (it *is* zero).
    EXPECT_EQ(wire::validateSubmit(
                  frame(uint32_t(REASON_MODE_PROBABILISTIC), -0.0)),
              REASON_OK);
}

TEST(WireProtocol, ResultBoundsRoundTripBitExact)
{
    namespace wire = reason::sys::wire;

    wire::ResultFrame result;
    result.id = 77;
    result.tier = 1;
    result.values = {-3.25, -0.0};
    result.boundLo = {std::bit_cast<double>(0x7ff8000000c0ffeeull),
                      -std::numeric_limits<double>::infinity()};
    result.boundHi = {-3.0, -0.0};

    std::vector<uint8_t> bytes;
    wire::appendResult(bytes, result);
    wire::FrameDecoder decoder;
    decoder.feed(bytes.data(), bytes.size());
    wire::Frame f;
    ASSERT_EQ(decoder.next(&f), wire::FrameDecoder::Status::Ok);
    EXPECT_EQ(f.result.tier, 1);
    ASSERT_EQ(f.result.boundLo.size(), 2u);
    ASSERT_EQ(f.result.boundHi.size(), 2u);
    for (size_t i = 0; i < 2; ++i) {
        EXPECT_TRUE(bitEqual(f.result.values[i], result.values[i]));
        EXPECT_TRUE(bitEqual(f.result.boundLo[i], result.boundLo[i]));
        EXPECT_TRUE(bitEqual(f.result.boundHi[i], result.boundHi[i]));
    }

    // Tier 0 results never carry bounds, even if the encoder's frame
    // struct had stale vectors in it.
    wire::ResultFrame plain;
    plain.id = 78;
    plain.tier = 0;
    plain.values = {-1.0};
    plain.boundLo = {-9.0}; // ignored by the encoder on tier 0
    plain.boundHi = {-0.5};
    bytes.clear();
    wire::appendResult(bytes, plain);
    decoder.feed(bytes.data(), bytes.size());
    ASSERT_EQ(decoder.next(&f), wire::FrameDecoder::Status::Ok);
    EXPECT_EQ(f.result.tier, 0);
    EXPECT_TRUE(f.result.boundLo.empty());
    EXPECT_TRUE(f.result.boundHi.empty());
}

TEST(WireProtocol, RandomGarbageNeverCrashesTheDecoder)
{
    namespace wire = reason::sys::wire;
    using Status = wire::FrameDecoder::Status;

    Rng rng(906);
    for (int trial = 0; trial < 200; ++trial) {
        wire::FrameDecoder decoder;
        const size_t total = 1 + size_t(rng() % 512);
        std::vector<uint8_t> bytes(total);
        for (uint8_t &b : bytes)
            b = uint8_t(rng());
        size_t at = 0;
        while (at < bytes.size()) {
            const size_t chunk = std::min<size_t>(
                1 + size_t(rng() % 64), bytes.size() - at);
            decoder.feed(bytes.data() + at, chunk);
            at += chunk;
            wire::Frame f;
            Status status;
            size_t guard = 0;
            while ((status = decoder.next(&f)) == Status::Ok)
                ASSERT_LT(++guard, 10000u)
                    << "decoder failed to consume";
            if (status == Status::Malformed)
                break; // poisoned: framing is lost by contract
        }
    }
}
