/**
 * @file
 * Minimal reusable thread pool with a deterministic parallel-for, the
 * software backbone of wavefront (level-parallel) execution in the flat
 * kernel engines (core/flat.h, pc/flat_pc.h).
 *
 * Design contract, relied on by every flat evaluator:
 *
 *  - **Deterministic partitioning.**  `parallelFor(begin, end, ...)`
 *    splits the index range into at most numThreads() *contiguous*
 *    chunks whose boundaries depend only on the range size and the
 *    thread count — never on scheduling races.  Chunk i is always
 *    executed by worker i (worker 0 is the calling thread), so
 *    per-worker scratch buffers are reused stably across calls.
 *  - **No hidden reductions.**  The pool only runs disjoint index
 *    ranges; all accumulation policy stays in the caller, which is how
 *    the flat engines guarantee bit-identical results for any thread
 *    count (each output cell has exactly one writer and an unchanged
 *    floating-point expression).
 *  - **Inline fallback.**  Ranges smaller than twice `min_grain` (and
 *    all work on a 1-thread pool) run inline on the caller with zero
 *    synchronization, so sprinkling parallelFor over small levels is
 *    free.
 *
 * Thread-safety: a ThreadPool may be shared by many evaluators, but
 * parallelFor is *not* reentrant — only one parallelFor may be active
 * on a pool at a time (nested or concurrent calls from worker threads
 * must use a different pool or run inline).  The global pool accessors
 * follow the setLogLevel convention: configure once at startup.
 */

#ifndef REASON_UTIL_PARALLEL_H
#define REASON_UTIL_PARALLEL_H

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

namespace reason {
namespace util {

class ThreadPool
{
  public:
    /**
     * Create a pool with `threads` total workers including the calling
     * thread (so `threads - 1` OS threads are spawned).  `threads == 0`
     * uses std::thread::hardware_concurrency().  With `pin_threads`,
     * each spawned worker pins itself to core `(pin_base +
     * worker_index) mod hardware_concurrency` (best effort — see
     * pinCurrentThreadToCore; the calling thread is never pinned by
     * the pool).  Owners of several pools pass distinct `pin_base`
     * offsets so pools occupy disjoint core blocks instead of all
     * stacking on cores 0..threads-1 (see ReasonEngine).
     */
    explicit ThreadPool(unsigned threads = 0, bool pin_threads = false,
                        unsigned pin_base = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total workers, including the calling thread; always >= 1. */
    unsigned numThreads() const
    {
        return unsigned(workers_.size()) + 1;
    }

    /** Raw chunk callback: [begin, end) slice plus the worker index. */
    using RangeFn = void (*)(void *ctx, size_t begin, size_t end,
                             unsigned worker);

    /**
     * Run `fn` over [begin, end) split into deterministic contiguous
     * chunks, one per participating worker; blocks until every chunk
     * has finished.  At most `(end - begin) / min_grain` workers
     * participate so no chunk is smaller than `min_grain` (the whole
     * range runs inline on the caller when that limit is 1).
     */
    void parallelForRaw(size_t begin, size_t end, size_t min_grain,
                        RangeFn fn, void *ctx);

    /** Typed wrapper: f(chunk_begin, chunk_end, worker_index). */
    template <typename F>
    void
    parallelFor(size_t begin, size_t end, size_t min_grain, F &&f)
    {
        parallelForRaw(
            begin, end, min_grain,
            [](void *ctx, size_t b, size_t e, unsigned w) {
                (*static_cast<std::remove_reference_t<F> *>(ctx))(b, e, w);
            },
            &f);
    }

  private:
    void workerLoop(unsigned worker_index);

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    /** Monotone job counter; workers run one job per increment. */
    uint64_t generation_ = 0;
    /** Workers still to finish the current job (or acknowledge skip). */
    unsigned pending_ = 0;
    bool shutdown_ = false;
    bool pinThreads_ = false;
    /** First core of this pool's pin block (worker w -> base + w). */
    unsigned pinBase_ = 0;
    /** Current job (valid while pending_ > 0). */
    RangeFn jobFn_ = nullptr;
    void *jobCtx_ = nullptr;
    size_t jobBegin_ = 0;
    size_t jobEnd_ = 0;
    unsigned jobChunks_ = 0;
};

/**
 * Process-wide evaluation pool used by the flat engines when no pool is
 * passed explicitly.  Created lazily with the thread count from
 * setGlobalThreads (default: hardware concurrency).
 */
ThreadPool &globalThreadPool();

/**
 * Set the worker count of the global pool (the `--threads` knob of the
 * CLI, bench_eval, and sys::ReasonRuntime).  `n == 0` restores the
 * hardware-concurrency default.  Recreates the pool; call at startup or
 * between evaluation phases, never while a parallelFor is in flight.
 */
void setGlobalThreads(unsigned n);

/** Worker count the global pool has (or would be created with). */
unsigned globalThreads();

/**
 * Parse a user-supplied thread count (CLI/bench `--threads` values).
 * Accepts decimal integers in [0, kMaxThreads] (0 = hardware
 * concurrency); rejects negatives, garbage, and absurd counts instead
 * of wrapping them into ~4-billion-thread pool requests.
 *
 * @return true and sets *out on success, false otherwise.
 */
inline constexpr unsigned kMaxThreads = 1024;
bool parseThreadCount(const char *text, unsigned *out);

/**
 * Pin the calling thread to core `core mod hardware_concurrency`
 * (NUMA/affinity knob of the serving engine and thread pools).  Best
 * effort: returns true when the affinity call succeeded, false where
 * the platform has no thread-affinity support (a no-op there) or the
 * call failed.  Results never depend on pinning — it only affects
 * locality.
 */
bool pinCurrentThreadToCore(unsigned core);

/**
 * Process-wide policy for sample-sharded learning reductions (EM flow
 * accumulation, Baum-Welch statistics).  Learning entry points read
 * this policy into their per-call options at construction, so it acts
 * as a default, not an override: explicitly set option fields win.
 *
 *  - `shards == 0` (auto): deterministic mode shards into a *fixed*
 *    count (kAutoReductionShards) that does not depend on the worker
 *    count, so results are bit-identical for any thread count; fast
 *    mode shards into one per pool worker.  Datasets smaller than the
 *    target resolve to a single shard, keeping per-sample wavefront
 *    parallelism instead of degenerate tiny shards.
 *  - `shards == 1` reproduces the legacy serial accumulation exactly
 *    (single left-fold over the dataset, no reduction tree).
 *  - `deterministic == false` (fast mode) relaxes *only* the reduction
 *    shape: shard contents and per-sample math are unchanged, but the
 *    shard count follows the pool size, so low-order bits of the merged
 *    totals may differ between thread counts.
 *
 * Like setGlobalThreads, configure at startup or between phases.
 */
struct ReductionPolicy
{
    unsigned shards = 0;
    bool deterministic = true;
};

ReductionPolicy reductionPolicy();
void setReductionPolicy(const ReductionPolicy &policy);

/** Fixed shard count of deterministic auto-sharding. */
inline constexpr unsigned kAutoReductionShards = 8;

/**
 * Resolve an options-level (shards, deterministic) pair against a
 * dataset size and worker count: 0 = auto per ReductionPolicy rules
 * (one shard when the dataset is smaller than the target count), and
 * the result is clamped to [1, samples].  Deterministic resolution
 * ignores `workers` entirely, which is what makes the merged totals
 * independent of the thread count.
 */
unsigned resolveShardCount(unsigned shards, bool deterministic,
                           size_t samples, unsigned workers);

/**
 * Fixed-shape pairwise tree reduction over `shards` slots: merge(a, b)
 * is called to fold slot b into slot a, with a shape that depends only
 * on the shard count — never on thread scheduling.  Slot 0 holds the
 * final total.  With shards <= 1 this is a no-op.
 */
template <typename Merge>
inline void
treeReduce(size_t shards, Merge &&merge)
{
    for (size_t stride = 1; stride < shards; stride *= 2)
        for (size_t i = 0; i + stride < shards; i += 2 * stride)
            merge(i, i + stride);
}

/**
 * Run `fold(shard, begin, end)` over every contiguous shard slice of
 * `samples` items, shards split across pool workers (each shard folded
 * by exactly one worker).  Slice boundaries are a function of
 * (samples, shards) alone — the deterministic-placement contract every
 * sharded learning reduction relies on, kept in one place.
 */
template <typename Fold>
inline void
shardSlices(ThreadPool &pool, size_t samples, unsigned shards,
            Fold &&fold)
{
    pool.parallelFor(0, shards, 1,
                     [&](size_t b, size_t e, unsigned) {
                         for (size_t s = b; s < e; ++s)
                             fold(s, samples * s / shards,
                                  samples * (s + 1) / shards);
                     });
}

} // namespace util
} // namespace reason

#endif // REASON_UTIL_PARALLEL_H
