/**
 * @file
 * Benes network model (Sec. V-B): the rearrangeably non-blocking N-to-N
 * crossbar that routes register-bank operands to tree-PE leaf inputs,
 * decoupling SRAM banking from DAG mapping.
 *
 * Implements real route computation via the classic looping algorithm on
 * the recursive (2x2-switch) Benes topology, so tests can verify that any
 * permutation routes conflict-free and benches can count switch settings.
 */

#ifndef REASON_ARCH_BENES_H
#define REASON_ARCH_BENES_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace reason {
namespace arch {

/**
 * A Benes network on N = 2^k endpoints built from 2x2 switches arranged
 * in 2k-1 stages of N/2 switches each.
 */
class BenesNetwork
{
  public:
    /** @param log2_n k, so the network has 2^k inputs/outputs. */
    explicit BenesNetwork(uint32_t log2_n);

    uint32_t numEndpoints() const { return 1u << log2N_; }
    uint32_t numStages() const { return 2 * log2N_ - 1; }
    uint32_t numSwitches() const
    {
        return numStages() * (numEndpoints() / 2);
    }

    /**
     * Compute switch settings realizing the permutation
     * dest[i] = output of input i.  `dest` must be a permutation of
     * [0, N).
     *
     * @return per-stage, per-switch "crossed" flags.
     */
    std::vector<std::vector<bool>> route(
        const std::vector<uint32_t> &dest) const;

    /**
     * Evaluate the network under given switch settings: output[i] is the
     * input arriving at output port i.
     */
    std::vector<uint32_t> evaluate(
        const std::vector<std::vector<bool>> &settings) const;

    /**
     * Convenience check: does `route` produce settings that realize the
     * permutation exactly (always true for valid permutations).
     */
    bool verifyPermutation(const std::vector<uint32_t> &dest) const;

  private:
    void routeRecursive(const std::vector<uint32_t> &dest,
                        const std::vector<uint32_t> &inputs,
                        uint32_t first_stage, uint32_t last_stage,
                        uint32_t offset,
                        std::vector<std::vector<bool>> &settings) const;

    uint32_t log2N_;
};

} // namespace arch
} // namespace reason

#endif // REASON_ARCH_BENES_H
