#include "sys/system.h"

#include <algorithm>

#include "arch/symbolic.h"
#include "util/logging.h"

namespace reason {
namespace sys {

const char *
platformName(Platform p)
{
    switch (p) {
      case Platform::ReasonAccel: return "REASON";
      case Platform::OrinNx: return "Orin NX";
      case Platform::RtxA6000: return "RTX A6000";
      case Platform::XeonCpu: return "Xeon CPU";
      case Platform::V100: return "V100";
      case Platform::A100: return "A100";
      case Platform::TpuLike: return "TPU-like";
      case Platform::DpuLike: return "DPU-like";
    }
    return "?";
}

namespace {

baselines::DeviceModel
deviceFor(Platform p)
{
    switch (p) {
      case Platform::OrinNx: return baselines::orinNx();
      case Platform::RtxA6000: return baselines::rtxA6000();
      case Platform::XeonCpu: return baselines::xeonCpu();
      case Platform::V100: return baselines::v100();
      case Platform::A100: return baselines::a100();
      case Platform::TpuLike: return baselines::tpuLike();
      case Platform::DpuLike: return baselines::dpuLike();
      case Platform::ReasonAccel:
        panic("REASON has no baseline device model");
    }
    panic("unknown platform");
}

/** Effective DAG-node throughput of the REASON fabric (nodes/cycle). */
double
reasonNodesPerCycle(const arch::ArchConfig &cfg)
{
    // Pipelined tree PEs sustain ~70% of peak node occupancy on
    // irregular DAGs (block leaf utilization + dependence stalls),
    // matching the cycle simulator's measured utilization.
    return double(cfg.numPes) * double(cfg.nodesPerPe()) * 0.70;
}

} // namespace

StageCost
symbolicCost(Platform platform, const workloads::SymbolicOps &ops,
             const arch::ArchConfig &cfg, energy::TechNode node)
{
    StageCost cost;
    if (platform == Platform::ReasonAccel) {
        uint64_t cycles = 0;
        // SAT kernels: hardware event charges.
        cycles += arch::estimateCdclCycles(ops.sat, ops.clauseDbBytes,
                                           cfg);
        // Probabilistic DAG kernels: pipelined tree execution.
        cycles += static_cast<uint64_t>(
            double(ops.totalDagNodes()) / reasonNodesPerCycle(cfg));
        cost.seconds = double(cycles) * cfg.cycleSeconds();

        // Synthesize the event counts the energy model prices.
        StatGroup ev;
        ev.inc("agg_decisions", ops.sat.decisions);
        ev.inc("agg_propagations", ops.sat.propagations);
        ev.inc("agg_literal_visits", ops.sat.literalVisits);
        uint64_t dag_nodes = ops.totalDagNodes();
        ev.inc("tree_add_ops", dag_nodes / 2);
        ev.inc("tree_mul_ops", dag_nodes / 2);
        ev.inc("regfile_reads", dag_nodes * 2 / 3);
        ev.inc("regfile_writes", dag_nodes / 4);
        ev.inc("sram_accesses", dag_nodes / 8);
        ev.inc("dma_bytes",
               static_cast<uint64_t>(ops.probBytes * 0.05));
        ev.inc("cycles", cycles);
        energy::EnergyModel em(node);
        cost.joules = em.dynamicEnergyJoules(ev) +
                      em.staticWatts() * cost.seconds;
        return cost;
    }

    baselines::DeviceModel dev = deviceFor(platform);
    double seconds = 0.0;
    double joules = 0.0;
    if (ops.sat.propagations > 0) {
        baselines::KernelWork w;
        w.cls = baselines::KernelClass::SymbolicBcp;
        w.propagations = ops.sat.propagations;
        w.literalVisits = ops.sat.literalVisits;
        seconds += dev.seconds(w);
        joules += dev.joules(w);
    }
    if (ops.pcDagNodes > 0) {
        baselines::KernelWork w;
        w.cls = baselines::KernelClass::ProbCircuit;
        w.dagNodes = ops.pcDagNodes;
        w.bytes = ops.probBytes / 2;
        seconds += dev.seconds(w);
        joules += dev.joules(w);
    }
    if (ops.hmmDagNodes > 0) {
        baselines::KernelWork w;
        w.cls = baselines::KernelClass::HmmSequential;
        w.dagNodes = ops.hmmDagNodes;
        w.bytes = ops.probBytes / 2;
        seconds += dev.seconds(w);
        joules += dev.joules(w);
    }
    cost.seconds = seconds;
    cost.joules = joules;
    return cost;
}

double
neuralFlops(const workloads::TaskBundle &bundle,
            const workloads::SymbolicOps &ops)
{
    StageCost sym_a6000 = symbolicCost(Platform::RtxA6000, ops);
    double f = bundle.neuralFractionA6000;
    double neural_seconds = sym_a6000.seconds * f / (1.0 - f);
    baselines::DeviceModel a6000 = baselines::rtxA6000();
    return neural_seconds * a6000.peakTflops * 1e12 *
           a6000.denseEfficiency;
}

StageCost
neuralCost(Platform platform, double flops)
{
    // The REASON system hosts its neural stage on the GPU it plugs into
    // (edge deployment target: Orin-class SMs, Sec. VII-A).
    baselines::DeviceModel dev =
        platform == Platform::ReasonAccel
            ? deviceFor(Platform::OrinNx)
            : deviceFor(platform);
    baselines::KernelWork w;
    w.cls = baselines::KernelClass::DenseMatMul;
    w.flops = flops;
    w.bytes = flops / 40.0; // transformer-class operational intensity
    StageCost c;
    c.seconds = dev.seconds(w);
    c.joules = dev.joules(w);
    return c;
}

EndToEnd
pipelinedComposition(StageCost neural, StageCost symbolic,
                     uint32_t batches)
{
    reasonAssert(batches >= 1, "need at least one batch");
    EndToEnd e;
    e.neuralSeconds = neural.seconds * batches;
    e.symbolicSeconds = symbolic.seconds * batches;
    double steady = std::max(neural.seconds, symbolic.seconds);
    // Fill + steady-state overlap + drain.
    e.totalSeconds = neural.seconds +
                     steady * (batches > 1 ? batches - 1 : 0) +
                     symbolic.seconds;
    e.handoffSeconds = 0.0; // shared L2, flag-based sync
    e.totalJoules = (neural.joules + symbolic.joules) * batches;
    return e;
}

EndToEnd
serialComposition(StageCost neural, StageCost symbolic, uint32_t batches,
                  double handoff_fraction)
{
    reasonAssert(batches >= 1, "need at least one batch");
    EndToEnd e;
    e.neuralSeconds = neural.seconds * batches;
    e.symbolicSeconds = symbolic.seconds * batches;
    double per_batch = neural.seconds + symbolic.seconds;
    e.handoffSeconds = per_batch * handoff_fraction * batches;
    e.totalSeconds = per_batch * batches + e.handoffSeconds;
    e.totalJoules = (neural.joules + symbolic.joules) * batches * 1.05;
    return e;
}

double
accelNeuralMacsPerSec(Platform p, const arch::ArchConfig &cfg)
{
    // REASON SpMSpM mode: leaves multiply, internal nodes reduce.
    double reason_rate = double(cfg.numPes) *
                         double(cfg.leavesPerPe()) * cfg.clockGhz * 1e9 *
                         0.8;
    switch (p) {
      case Platform::ReasonAccel:
        return reason_rate;
      case Platform::TpuLike:
        // Systolic arrays win on dense tiles even at small batch.
        return reason_rate * 1.45;
      case Platform::DpuLike:
        // Fewer nodes (8 PEs / 56 nodes) and no banked operand routing.
        return reason_rate * 0.23;
      default:
        return reason_rate;
    }
}

} // namespace sys
} // namespace reason
