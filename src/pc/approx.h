/**
 * @file
 * Query-time budgeted approximate inference over the flat CSR
 * substrate: the anytime tier of the serving stack (REASON Sec. V-B
 * applied to the PC workload; cf. A-NeSI-style budgeted approximate
 * inference).
 *
 * Three pieces:
 *
 *  - **staticUpperBounds** — per-node, evidence-independent upper
 *    bounds on the log value any assignment can produce (leaf: at
 *    most the largest log mass, never below the missing-value
 *    identity 0; product: sum of child bounds; sum: logsumexp of
 *    weighted child bounds).  These order sum edges by the most mass
 *    they could ever contribute.
 *
 *  - **ApproxEvaluator** — a top-k/beam evaluator: at construction it
 *    keeps, per sum node, the edges whose static score is within the
 *    accuracy budget of the node's best edge (always keeping the
 *    best), drops the rest, restricts to the root-reachable
 *    sub-circuit, and pre-folds the dropped edges of each sum into a
 *    single static *rest* bound.  A query then runs one scalar
 *    interval pass over the kept sub-circuit: the lower endpoint is
 *    the exact log value of the pruned circuit (the canonical
 *    sum-layer kernel expressions of flat_pc.cc, term for term), the
 *    upper endpoint additionally folds each sum's rest bound.  The
 *    reported interval **always contains the exact answer** — the
 *    differential harness (tests/test_approx.cc) enforces zero
 *    violations over the random-circuit corpus.  With budget 0 the
 *    evaluator keeps every mass-bearing edge in CSR order and the
 *    value is **bit-identical** to CircuitEvaluator — the exact tier
 *    expressed as the degenerate beam.
 *
 *    The optional posterior guide (calibration edge flows from
 *    FlowAccumulator / accumulateDatasetFlows) replaces the static
 *    score with observed posterior usage — the query-time
 *    generalization of hmm::pruneByPosterior's
 *    threshold-relative-to-average-usage rule.  Soundness does not
 *    depend on the guide: the rest bounds always cover whatever was
 *    dropped.
 *
 *  - **estimateLogEvidence** — an importance-sampled (likelihood
 *    weighting) estimator of log P(evidence) with a variance-derived
 *    standard error, driven by a fixed-seed LCG so the estimate is a
 *    pure function of (circuit, evidence, samples, seed).
 *
 * **Determinism contract.**  Construction and queries are pure
 * functions of (FlatCircuit, options) and the assignment: no global
 * RNG, no thread-count dependence (queries are scalar and
 * row-independent), so results are bit-identical across threads,
 * batch shapes, and dispatcher counts — the same contract as every
 * exact kernel.
 *
 * **Thread-safety.**  One ApproxEvaluator serves one caller at a
 * time (scratch reuse); the referenced FlatCircuit must outlive it.
 * Immutable after construction except for the query scratch, so one
 * evaluator per thread over a shared FlatCircuit is the concurrent
 * pattern.
 */

#ifndef REASON_PC_APPROX_H
#define REASON_PC_APPROX_H

#include <cstdint>
#include <vector>

#include "pc/flat_pc.h"

namespace reason {
namespace pc {

/**
 * Evidence-independent per-node upper bounds on the log value, valid
 * for every (possibly partial) assignment.  Computed in one id-order
 * pass (children precede parents in FlatCircuit).
 */
std::vector<double> staticUpperBounds(const FlatCircuit &flat);

/** Construction knobs of an ApproxEvaluator. */
struct ApproxOptions
{
    /**
     * Accuracy budget: the fraction of a sum node's statically
     * bounded edge mass the beam may drop.  0 (default) keeps every
     * mass-bearing edge — the exact tier, bit-identical to
     * CircuitEvaluator.  Larger budgets prune more aggressively and
     * widen the reported bound monotonically (nested keep sets).
     * Must be finite and non-negative.
     */
    double budget = 0.0;
    /**
     * Optional posterior guide: calibration edge flows aligned with
     * FlatCircuit::edgeTarget (FlowAccumulator::edgeFlow or
     * DatasetFlows::edgeFlow).  When set, an edge is kept iff its
     * observed flow reaches `budget` times the node's average active
     * flow (the pruneByPosterior rule); the static bounds still cover
     * whatever the guide drops, so the interval stays sound.  The
     * pointee must stay alive during construction only.
     */
    const std::vector<double> *guideEdgeFlow = nullptr;
};

/** One approximate query answer: point value plus a containing bound. */
struct ApproxResult
{
    /** Exact log value of the pruned circuit (the lower endpoint
     *  before slack padding); bit-identical to the exact tier when
     *  nothing mass-bearing was pruned. */
    double value = 0.0;
    /** Certified interval: lo <= exact log-likelihood <= hi. */
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * Budgeted beam evaluator over a FlatCircuit (see file comment).
 * Construction cost is one pass over nodes + edges; queries visit
 * only the kept sub-circuit.
 */
class ApproxEvaluator
{
  public:
    ApproxEvaluator(const FlatCircuit &flat,
                    const ApproxOptions &options = {});

    /** Interval query for one (possibly partial) assignment. */
    ApproxResult query(const Assignment &x);

    /**
     * Batched interval queries: one result per row.  Rows are
     * evaluated independently by the scalar query kernel, so every
     * row is bit-identical to a standalone query() — the coalescing
     * contract of the serving engine.
     */
    void queryBatch(const std::vector<Assignment> &xs,
                    std::vector<ApproxResult> &out);

    /** Nodes kept after pruning + reachability restriction. */
    size_t keptNodes() const { return types_.size(); }
    /** Edges kept across all kept nodes. */
    size_t keptEdges() const { return edgeTarget_.size(); }
    /** Nodes / edges of the underlying FlatCircuit. */
    size_t totalNodes() const { return flat_.numNodes(); }
    size_t totalEdges() const { return flat_.numEdges(); }
    /**
     * True when no mass-bearing edge was dropped anywhere: queries
     * then report lo == value == hi with zero slack, bit-identical
     * to the exact tier (always the case at budget 0).
     */
    bool isExact() const { return exact_; }

    const FlatCircuit &flat() const { return flat_; }

  private:
    const FlatCircuit &flat_;
    bool exact_ = true;

    /** Compact kept sub-circuit, id order preserved (topological). */
    std::vector<uint8_t> types_;
    std::vector<uint32_t> edgeOffset_;
    std::vector<uint32_t> edgeTarget_; ///< compact ids
    std::vector<double> edgeLogWeight_;
    /** Per kept node: original leaf slot, or kInvalidNode. */
    std::vector<uint32_t> leafSlot_;
    /** Per kept node: logsumexp of (weight + static ub) over this
     *  sum's *dropped* edges; kLogZero when nothing was dropped. */
    std::vector<double> restUb_;
    uint32_t root_ = kInvalidNode;

    /** Query scratch: per-node interval endpoints + sum-term buffer. */
    std::vector<double> lo_;
    std::vector<double> hi_;
    std::vector<double> terms_;
};

/** Importance-sampling estimate of log P(evidence). */
struct LogEvidenceEstimate
{
    /** Log of the sample mean of the importance weights. */
    double logZ = 0.0;
    /**
     * Delta-method standard error of logZ (relative standard error
     * of the linear-space mean); 0 when the estimate is exact-zero
     * or from a single sample.
     */
    double stdError = 0.0;
    size_t samples = 0;
};

/**
 * Likelihood-weighted estimate of log P(evidence): top-down descent
 * sampling each sum edge proportionally to its weight, accumulating
 * the evidence leaf masses (kMissing variables marginalize out).
 * Unbiased in linear space for smooth, decomposable circuits.
 * Driven by a private LCG seeded with `seed`: the result is a pure
 * deterministic function of the arguments.
 */
LogEvidenceEstimate estimateLogEvidence(const FlatCircuit &flat,
                                        const Assignment &evidence,
                                        size_t numSamples,
                                        uint64_t seed);

} // namespace pc
} // namespace reason

#endif // REASON_PC_APPROX_H
