#include "sys/request_queue.h"

#include <chrono>

#include "util/logging.h"

namespace reason {
namespace sys {

namespace {

uint64_t
nowNs()
{
    return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now()
                            .time_since_epoch())
                        .count());
}

} // namespace

void
RequestQueue::push(const std::shared_ptr<Request> &request)
{
    reasonAssert(request != nullptr, "null request");
    std::lock_guard<std::mutex> lock(mutex_);
    request->enqueuedNs = nowNs();
    if (shutdown_) {
        request->error = REASON_ERR_SHUTDOWN;
        request->state = RequestState::Done;
        request->completedNs = request->enqueuedNs;
        ++stats_.completed;
        doneCv_.notify_all();
        return;
    }
    pending_.push_back(request);
    stats_.requests += 1;
    stats_.rows += request->numRows();
    stats_.maxQueueDepth =
        std::max<uint64_t>(stats_.maxQueueDepth, pending_.size());
    workCv_.notify_all();
}

std::vector<std::shared_ptr<Request>>
RequestQueue::popGroup(size_t maxRows, unsigned lingerUs)
{
    if (maxRows == 0)
        maxRows = 1;
    std::unique_lock<std::mutex> lock(mutex_);
    workCv_.wait(lock, [&] {
        return shutdown_ || (!paused_ && !pending_.empty());
    });
    if (pending_.empty())
        return {}; // shutdown: dispatcher exit signal

    std::vector<std::shared_ptr<Request>> group;
    group.push_back(pending_.front());
    pending_.pop_front();
    const void *key = group.front()->groupKey;
    const ReasonMode mode = group.front()->mode;
    size_t rowCount = group.front()->numRows();

    auto gatherMatches = [&] {
        for (auto it = pending_.begin();
             it != pending_.end() && rowCount < maxRows;) {
            Request &r = **it;
            if (r.groupKey == key && r.mode == mode &&
                rowCount + r.numRows() <= maxRows) {
                rowCount += r.numRows();
                group.push_back(*it);
                it = pending_.erase(it);
            } else {
                ++it;
            }
        }
    };
    gatherMatches();

    if (lingerUs > 0 && rowCount < maxRows && !shutdown_ &&
        !paused_) {
        // Linger for matching late arrivals.  Spurious wakeups only
        // re-run the gather; the deadline bounds the added latency.
        // A pause() ends the linger without gathering further — work
        // submitted during a pause must stay held for the resume.
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::microseconds(lingerUs);
        while (rowCount < maxRows && !shutdown_ && !paused_) {
            const bool timed_out =
                workCv_.wait_until(lock, deadline) ==
                std::cv_status::timeout;
            if (!paused_)
                gatherMatches();
            if (timed_out)
                break;
        }
    }

    const uint64_t started = nowNs();
    for (const auto &r : group) {
        r->state = RequestState::Running;
        r->startedNs = started;
    }
    stats_.batches += 1;
    stats_.batchedRows += rowCount;
    return group;
}

void
RequestQueue::complete(const std::vector<std::shared_ptr<Request>> &group)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const uint64_t done = nowNs();
    for (const auto &r : group) {
        r->state = RequestState::Done;
        r->completedNs = done;
        stats_.totalQueueNs += r->startedNs - r->enqueuedNs;
        stats_.totalLatencyNs += done - r->enqueuedNs;
        ++stats_.completed;
    }
    doneCv_.notify_all();
}

bool
RequestQueue::pollDone(const Request &request) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return request.state == RequestState::Done;
}

void
RequestQueue::waitDone(const Request &request) const
{
    std::unique_lock<std::mutex> lock(mutex_);
    doneCv_.wait(lock,
                 [&] { return request.state == RequestState::Done; });
}

void
RequestQueue::shutdown()
{
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
    const uint64_t done = nowNs();
    for (const auto &r : pending_) {
        r->error = REASON_ERR_SHUTDOWN;
        r->state = RequestState::Done;
        r->completedNs = done;
        stats_.totalQueueNs += done - r->enqueuedNs;
        stats_.totalLatencyNs += done - r->enqueuedNs;
        ++stats_.completed;
    }
    pending_.clear();
    workCv_.notify_all();
    doneCv_.notify_all();
}

void
RequestQueue::pause()
{
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = true;
    // Wake a lingering popGroup so it dispatches what it already
    // gathered instead of sleeping out its window.
    workCv_.notify_all();
}

void
RequestQueue::resume()
{
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
    workCv_.notify_all();
}

QueueStats
RequestQueue::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace sys
} // namespace reason
