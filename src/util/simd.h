/**
 * @file
 * Portable fixed-width SIMD layer for the hot numeric kernels.
 *
 * Every kernel in the flat engines is written against an **8-lane pack
 * of doubles** (`simd::Pack`, matching `pc::CircuitEvaluator::kBlock`),
 * regardless of what the hardware provides.  The backend — selected at
 * compile time from the target ISA — implements the pack with native
 * registers:
 *
 *   | backend | selected when                   | pack storage   |
 *   |---------|---------------------------------|----------------|
 *   | avx512f | `__AVX512F__`                   | 1 × `__m512d`  |
 *   | avx2    | `__AVX2__`                      | 2 × `__m256d`  |
 *   | sse2    | x86-64 baseline (`__SSE2__`)    | 4 × `__m128d`  |
 *   | neon    | `__aarch64__` + `__ARM_NEON`    | 4 × `float64x2_t` |
 *   | scalar  | `REASON_FORCE_SCALAR` or other  | `double[8]`    |
 *
 * **Bit-exactness contract.**  All pack operations are lane-parallel
 * IEEE-754 double operations (no FMA contraction, no reassociation),
 * and the transcendental pair (`expNonPositive`, `logPositive`) is one
 * shared algorithm expressed over the backend primitives — so every
 * backend, including the forced-scalar fallback, produces **bit
 * identical** results lane for lane.  The only order-sensitive
 * operations are the horizontal reductions, which use one documented
 * fixed tree shape (`((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`) on every
 * backend.  Lanes never interact otherwise, so results are independent
 * of the native register width.
 *
 * **Accuracy contract.**
 *  - `expNonPositive` matches `reason::fastExpNonPositive` (numeric.h)
 *    bit for bit: Cody-Waite reduction + degree-13 Taylor, relative
 *    error ~1e-16 over x <= 0; inputs below -708 clamp to ~5e-308
 *    (never 0).  Inputs must not be NaN; x slightly positive (< ln2/2)
 *    is tolerated and exact at x == 0.
 *  - `logPositive` and its scalar twin `fastLogPositive` implement the
 *    standard fdlibm-style decomposition (x = 2^k · m, m in
 *    [sqrt(2)/2, sqrt(2)), atanh-series remainder): relative error
 *    < 2 ulp over all positive, finite, *normal* inputs.  Zero,
 *    subnormal, negative, and non-finite inputs are out of contract
 *    (no traps or NaNs for +0, but the value is meaningless — callers
 *    mask such lanes).
 *
 * The vectorizer-resistant reference kernels used by `bench_eval` to
 * measure the SIMD speedup honestly are marked `REASON_NOVECTORIZE`
 * (GCC, whole function) and carry `REASON_NOVECTORIZE_LOOP` on every
 * loop (clang, per loop).
 */

#ifndef REASON_UTIL_SIMD_H
#define REASON_UTIL_SIMD_H

#include <bit>
#include <cstddef>
#include <cstdint>

#include "util/numeric.h"

// ---------------------------------------------------------------------------
// Backend selection (compile time).  REASON_FORCE_SCALAR wins so the
// scalar fallback can be exercised on any host.
// ---------------------------------------------------------------------------
#if defined(REASON_FORCE_SCALAR)
#define REASON_SIMD_SCALAR 1
#elif defined(__AVX512F__)
#define REASON_SIMD_AVX512 1
#include <immintrin.h>
#elif defined(__AVX2__)
#define REASON_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64)
#define REASON_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define REASON_SIMD_NEON 1
#include <arm_neon.h>
#else
#define REASON_SIMD_SCALAR 1
#endif

// ---------------------------------------------------------------------------
// ABI namespace.  Everything below lives in an ISA-keyed *inline*
// namespace, so a translation unit compiled with, say, -mavx2 emits
// its inline kernels under distinct mangled names from the baseline
// TUs.  That is what makes runtime ISA dispatch (simd_dispatch.h) safe:
// the per-ISA kernel TUs can coexist in one binary without the linker
// comdat-folding a wide-ISA instantiation into baseline callers (which
// would SIGILL on narrow hosts).  Ordinary code is unaffected — the
// namespace is inline, so `simd::Pack` etc. resolve as before.
// ---------------------------------------------------------------------------
#if defined(REASON_SIMD_AVX512)
#define REASON_SIMD_ABI abi_avx512f
#elif defined(REASON_SIMD_AVX2)
#define REASON_SIMD_ABI abi_avx2
#elif defined(REASON_SIMD_SSE2)
#define REASON_SIMD_ABI abi_sse2
#elif defined(REASON_SIMD_NEON)
#define REASON_SIMD_ABI abi_neon
#else
#define REASON_SIMD_ABI abi_scalar
#endif

/**
 * Marks a reference kernel the auto-vectorizer must leave scalar.  On
 * GCC the function attribute covers the whole body; clang has no such
 * attribute, so reference kernels must ALSO place
 * REASON_NOVECTORIZE_LOOP immediately before every loop (it disables
 * vectorization for exactly one following loop).
 */
#if defined(__clang__)
#define REASON_NOVECTORIZE
#define REASON_NOVECTORIZE_LOOP _Pragma("clang loop vectorize(disable)")
#elif defined(__GNUC__)
#define REASON_NOVECTORIZE __attribute__((optimize("no-tree-vectorize")))
#define REASON_NOVECTORIZE_LOOP
#else
#define REASON_NOVECTORIZE
#define REASON_NOVECTORIZE_LOOP
#endif

namespace reason {
namespace simd {
inline namespace REASON_SIMD_ABI {

/** Lanes per pack — fixed at 8 on every backend (== kBlock rows). */
inline constexpr size_t kLanes = 8;

/**
 * Scalar twin of Pack logPositive: fdlibm-style log for positive,
 * finite, normal x (see the accuracy contract above).  The serial
 * walkers use this so single-row evaluation stays bit-identical to the
 * blocked SIMD path lane for lane.
 */
inline double
fastLogPositive(double x)
{
    constexpr double kLn2Hi = 6.93147180369123816490e-01;
    constexpr double kLn2Lo = 1.90821492927058770002e-10;
    // Minimax coefficients of the standard atanh-series remainder.
    constexpr double kLg1 = 6.666666666666735130e-01;
    constexpr double kLg2 = 3.999999999940941908e-01;
    constexpr double kLg3 = 2.857142874366239149e-01;
    constexpr double kLg4 = 2.222219843214978396e-01;
    constexpr double kLg5 = 1.818357216161805012e-01;
    constexpr double kLg6 = 1.531383769920937332e-01;
    constexpr double kLg7 = 1.479819860511658591e-01;
    constexpr double kSqrt2 = 1.41421356237309514547;

    const uint64_t bits = std::bit_cast<uint64_t>(x);
    int64_t k = int64_t(bits >> 52) - 1023;
    double m = std::bit_cast<double>(
        (bits & 0x000FFFFFFFFFFFFFull) | 0x3FF0000000000000ull);
    // Renormalize m into [sqrt(2)/2, sqrt(2)); halving is exact.
    const bool big = m > kSqrt2;
    m = big ? m * 0.5 : m;
    double dk = double(k) + (big ? 1.0 : 0.0);

    const double f = m - 1.0;
    const double s = f / (2.0 + f);
    const double z = s * s;
    const double w = z * z;
    const double t1 = w * (kLg2 + w * (kLg4 + w * kLg6));
    const double t2 = z * (kLg1 + w * (kLg3 + w * (kLg5 + w * kLg7)));
    const double r = t2 + t1;
    const double hfsq = 0.5 * f * f;
    return dk * kLn2Hi - ((hfsq - (s * (hfsq + r) + dk * kLn2Lo)) - f);
}

// ---------------------------------------------------------------------------
// Backend primitives.  Each backend defines Pack / Mask / PackI and the
// same minimal operation set; everything above this layer is generic.
// ---------------------------------------------------------------------------

#if defined(REASON_SIMD_AVX512)

inline constexpr const char *kIsaName = "avx512f";
inline constexpr unsigned kNativeLanes = 8;

struct Pack
{
    __m512d v;
};
struct Mask
{
    __mmask8 m;
};
struct PackI
{
    __m512i v;
};

inline Pack splat(double x) { return {_mm512_set1_pd(x)}; }
inline Pack load(const double *p) { return {_mm512_loadu_pd(p)}; }
inline void store(double *p, Pack a) { _mm512_storeu_pd(p, a.v); }
inline Pack add(Pack a, Pack b) { return {_mm512_add_pd(a.v, b.v)}; }
inline Pack sub(Pack a, Pack b) { return {_mm512_sub_pd(a.v, b.v)}; }
inline Pack mul(Pack a, Pack b) { return {_mm512_mul_pd(a.v, b.v)}; }
inline Pack div(Pack a, Pack b) { return {_mm512_div_pd(a.v, b.v)}; }
inline Pack max(Pack a, Pack b) { return {_mm512_max_pd(a.v, b.v)}; }
inline Pack min(Pack a, Pack b) { return {_mm512_min_pd(a.v, b.v)}; }
inline Mask cmpEq(Pack a, Pack b)
{
    return {_mm512_cmp_pd_mask(a.v, b.v, _CMP_EQ_OQ)};
}
inline Mask cmpGt(Pack a, Pack b)
{
    return {_mm512_cmp_pd_mask(a.v, b.v, _CMP_GT_OQ)};
}
inline Pack select(Mask c, Pack ifTrue, Pack ifFalse)
{
    return {_mm512_mask_blend_pd(c.m, ifFalse.v, ifTrue.v)};
}
inline PackI toBits(Pack a) { return {_mm512_castpd_si512(a.v)}; }
inline Pack fromBits(PackI a) { return {_mm512_castsi512_pd(a.v)}; }
inline PackI splatI(int64_t x) { return {_mm512_set1_epi64(x)}; }
inline PackI addI(PackI a, PackI b)
{
    return {_mm512_add_epi64(a.v, b.v)};
}
inline PackI subI(PackI a, PackI b)
{
    return {_mm512_sub_epi64(a.v, b.v)};
}
inline PackI andI(PackI a, PackI b)
{
    return {_mm512_and_si512(a.v, b.v)};
}
inline PackI orI(PackI a, PackI b)
{
    return {_mm512_or_si512(a.v, b.v)};
}
template <int K>
inline PackI
shlI(PackI a)
{
    return {_mm512_slli_epi64(a.v, K)};
}
template <int K>
inline PackI
shrI(PackI a)
{
    return {_mm512_srli_epi64(a.v, K)};
}

#elif defined(REASON_SIMD_AVX2)

inline constexpr const char *kIsaName = "avx2";
inline constexpr unsigned kNativeLanes = 4;

struct Pack
{
    __m256d lo, hi;
};
struct Mask
{
    __m256d lo, hi;
};
struct PackI
{
    __m256i lo, hi;
};

inline Pack splat(double x)
{
    const __m256d v = _mm256_set1_pd(x);
    return {v, v};
}
inline Pack load(const double *p)
{
    return {_mm256_loadu_pd(p), _mm256_loadu_pd(p + 4)};
}
inline void
store(double *p, Pack a)
{
    _mm256_storeu_pd(p, a.lo);
    _mm256_storeu_pd(p + 4, a.hi);
}
inline Pack add(Pack a, Pack b)
{
    return {_mm256_add_pd(a.lo, b.lo), _mm256_add_pd(a.hi, b.hi)};
}
inline Pack sub(Pack a, Pack b)
{
    return {_mm256_sub_pd(a.lo, b.lo), _mm256_sub_pd(a.hi, b.hi)};
}
inline Pack mul(Pack a, Pack b)
{
    return {_mm256_mul_pd(a.lo, b.lo), _mm256_mul_pd(a.hi, b.hi)};
}
inline Pack div(Pack a, Pack b)
{
    return {_mm256_div_pd(a.lo, b.lo), _mm256_div_pd(a.hi, b.hi)};
}
inline Pack max(Pack a, Pack b)
{
    return {_mm256_max_pd(a.lo, b.lo), _mm256_max_pd(a.hi, b.hi)};
}
inline Pack min(Pack a, Pack b)
{
    return {_mm256_min_pd(a.lo, b.lo), _mm256_min_pd(a.hi, b.hi)};
}
inline Mask cmpEq(Pack a, Pack b)
{
    return {_mm256_cmp_pd(a.lo, b.lo, _CMP_EQ_OQ),
            _mm256_cmp_pd(a.hi, b.hi, _CMP_EQ_OQ)};
}
inline Mask cmpGt(Pack a, Pack b)
{
    return {_mm256_cmp_pd(a.lo, b.lo, _CMP_GT_OQ),
            _mm256_cmp_pd(a.hi, b.hi, _CMP_GT_OQ)};
}
inline Pack select(Mask c, Pack ifTrue, Pack ifFalse)
{
    return {_mm256_blendv_pd(ifFalse.lo, ifTrue.lo, c.lo),
            _mm256_blendv_pd(ifFalse.hi, ifTrue.hi, c.hi)};
}
inline PackI toBits(Pack a)
{
    return {_mm256_castpd_si256(a.lo), _mm256_castpd_si256(a.hi)};
}
inline Pack fromBits(PackI a)
{
    return {_mm256_castsi256_pd(a.lo), _mm256_castsi256_pd(a.hi)};
}
inline PackI splatI(int64_t x)
{
    const __m256i v = _mm256_set1_epi64x(x);
    return {v, v};
}
inline PackI addI(PackI a, PackI b)
{
    return {_mm256_add_epi64(a.lo, b.lo), _mm256_add_epi64(a.hi, b.hi)};
}
inline PackI subI(PackI a, PackI b)
{
    return {_mm256_sub_epi64(a.lo, b.lo), _mm256_sub_epi64(a.hi, b.hi)};
}
inline PackI andI(PackI a, PackI b)
{
    return {_mm256_and_si256(a.lo, b.lo), _mm256_and_si256(a.hi, b.hi)};
}
inline PackI orI(PackI a, PackI b)
{
    return {_mm256_or_si256(a.lo, b.lo), _mm256_or_si256(a.hi, b.hi)};
}
template <int K>
inline PackI
shlI(PackI a)
{
    return {_mm256_slli_epi64(a.lo, K), _mm256_slli_epi64(a.hi, K)};
}
template <int K>
inline PackI
shrI(PackI a)
{
    return {_mm256_srli_epi64(a.lo, K), _mm256_srli_epi64(a.hi, K)};
}

#elif defined(REASON_SIMD_SSE2)

inline constexpr const char *kIsaName = "sse2";
inline constexpr unsigned kNativeLanes = 2;

struct Pack
{
    __m128d q[4];
};
struct Mask
{
    __m128d q[4];
};
struct PackI
{
    __m128i q[4];
};

inline Pack
splat(double x)
{
    const __m128d v = _mm_set1_pd(x);
    return {{v, v, v, v}};
}
inline Pack
load(const double *p)
{
    return {{_mm_loadu_pd(p), _mm_loadu_pd(p + 2), _mm_loadu_pd(p + 4),
             _mm_loadu_pd(p + 6)}};
}
inline void
store(double *p, Pack a)
{
    _mm_storeu_pd(p, a.q[0]);
    _mm_storeu_pd(p + 2, a.q[1]);
    _mm_storeu_pd(p + 4, a.q[2]);
    _mm_storeu_pd(p + 6, a.q[3]);
}
#define REASON_SIMD_SSE2_BINOP(name, op)                                  \
    inline Pack name(Pack a, Pack b)                                      \
    {                                                                     \
        return {{op(a.q[0], b.q[0]), op(a.q[1], b.q[1]),                  \
                 op(a.q[2], b.q[2]), op(a.q[3], b.q[3])}};                \
    }
REASON_SIMD_SSE2_BINOP(add, _mm_add_pd)
REASON_SIMD_SSE2_BINOP(sub, _mm_sub_pd)
REASON_SIMD_SSE2_BINOP(mul, _mm_mul_pd)
REASON_SIMD_SSE2_BINOP(div, _mm_div_pd)
REASON_SIMD_SSE2_BINOP(max, _mm_max_pd)
REASON_SIMD_SSE2_BINOP(min, _mm_min_pd)
#undef REASON_SIMD_SSE2_BINOP
inline Mask
cmpEq(Pack a, Pack b)
{
    return {{_mm_cmpeq_pd(a.q[0], b.q[0]), _mm_cmpeq_pd(a.q[1], b.q[1]),
             _mm_cmpeq_pd(a.q[2], b.q[2]),
             _mm_cmpeq_pd(a.q[3], b.q[3])}};
}
inline Mask
cmpGt(Pack a, Pack b)
{
    return {{_mm_cmpgt_pd(a.q[0], b.q[0]), _mm_cmpgt_pd(a.q[1], b.q[1]),
             _mm_cmpgt_pd(a.q[2], b.q[2]),
             _mm_cmpgt_pd(a.q[3], b.q[3])}};
}
inline Pack
select(Mask c, Pack ifTrue, Pack ifFalse)
{
    Pack r;
    for (int i = 0; i < 4; ++i)
        r.q[i] = _mm_or_pd(_mm_and_pd(c.q[i], ifTrue.q[i]),
                           _mm_andnot_pd(c.q[i], ifFalse.q[i]));
    return r;
}
inline PackI
toBits(Pack a)
{
    return {{_mm_castpd_si128(a.q[0]), _mm_castpd_si128(a.q[1]),
             _mm_castpd_si128(a.q[2]), _mm_castpd_si128(a.q[3])}};
}
inline Pack
fromBits(PackI a)
{
    return {{_mm_castsi128_pd(a.q[0]), _mm_castsi128_pd(a.q[1]),
             _mm_castsi128_pd(a.q[2]), _mm_castsi128_pd(a.q[3])}};
}
inline PackI
splatI(int64_t x)
{
    const __m128i v = _mm_set1_epi64x(x);
    return {{v, v, v, v}};
}
inline PackI
addI(PackI a, PackI b)
{
    return {{_mm_add_epi64(a.q[0], b.q[0]), _mm_add_epi64(a.q[1], b.q[1]),
             _mm_add_epi64(a.q[2], b.q[2]),
             _mm_add_epi64(a.q[3], b.q[3])}};
}
inline PackI
subI(PackI a, PackI b)
{
    return {{_mm_sub_epi64(a.q[0], b.q[0]), _mm_sub_epi64(a.q[1], b.q[1]),
             _mm_sub_epi64(a.q[2], b.q[2]),
             _mm_sub_epi64(a.q[3], b.q[3])}};
}
inline PackI
andI(PackI a, PackI b)
{
    return {{_mm_and_si128(a.q[0], b.q[0]), _mm_and_si128(a.q[1], b.q[1]),
             _mm_and_si128(a.q[2], b.q[2]),
             _mm_and_si128(a.q[3], b.q[3])}};
}
inline PackI
orI(PackI a, PackI b)
{
    return {{_mm_or_si128(a.q[0], b.q[0]), _mm_or_si128(a.q[1], b.q[1]),
             _mm_or_si128(a.q[2], b.q[2]), _mm_or_si128(a.q[3], b.q[3])}};
}
template <int K>
inline PackI
shlI(PackI a)
{
    return {{_mm_slli_epi64(a.q[0], K), _mm_slli_epi64(a.q[1], K),
             _mm_slli_epi64(a.q[2], K), _mm_slli_epi64(a.q[3], K)}};
}
template <int K>
inline PackI
shrI(PackI a)
{
    return {{_mm_srli_epi64(a.q[0], K), _mm_srli_epi64(a.q[1], K),
             _mm_srli_epi64(a.q[2], K), _mm_srli_epi64(a.q[3], K)}};
}

#elif defined(REASON_SIMD_NEON)

inline constexpr const char *kIsaName = "neon";
inline constexpr unsigned kNativeLanes = 2;

struct Pack
{
    float64x2_t q[4];
};
struct Mask
{
    uint64x2_t q[4];
};
struct PackI
{
    int64x2_t q[4];
};

inline Pack
splat(double x)
{
    const float64x2_t v = vdupq_n_f64(x);
    return {{v, v, v, v}};
}
inline Pack
load(const double *p)
{
    return {{vld1q_f64(p), vld1q_f64(p + 2), vld1q_f64(p + 4),
             vld1q_f64(p + 6)}};
}
inline void
store(double *p, Pack a)
{
    vst1q_f64(p, a.q[0]);
    vst1q_f64(p + 2, a.q[1]);
    vst1q_f64(p + 4, a.q[2]);
    vst1q_f64(p + 6, a.q[3]);
}
#define REASON_SIMD_NEON_BINOP(name, op)                                  \
    inline Pack name(Pack a, Pack b)                                      \
    {                                                                     \
        return {{op(a.q[0], b.q[0]), op(a.q[1], b.q[1]),                  \
                 op(a.q[2], b.q[2]), op(a.q[3], b.q[3])}};                \
    }
REASON_SIMD_NEON_BINOP(add, vaddq_f64)
REASON_SIMD_NEON_BINOP(sub, vsubq_f64)
REASON_SIMD_NEON_BINOP(mul, vmulq_f64)
REASON_SIMD_NEON_BINOP(div, vdivq_f64)
REASON_SIMD_NEON_BINOP(max, vmaxq_f64)
REASON_SIMD_NEON_BINOP(min, vminq_f64)
#undef REASON_SIMD_NEON_BINOP
inline Mask
cmpEq(Pack a, Pack b)
{
    return {{vceqq_f64(a.q[0], b.q[0]), vceqq_f64(a.q[1], b.q[1]),
             vceqq_f64(a.q[2], b.q[2]), vceqq_f64(a.q[3], b.q[3])}};
}
inline Mask
cmpGt(Pack a, Pack b)
{
    return {{vcgtq_f64(a.q[0], b.q[0]), vcgtq_f64(a.q[1], b.q[1]),
             vcgtq_f64(a.q[2], b.q[2]), vcgtq_f64(a.q[3], b.q[3])}};
}
inline Pack
select(Mask c, Pack ifTrue, Pack ifFalse)
{
    Pack r;
    for (int i = 0; i < 4; ++i)
        r.q[i] = vbslq_f64(c.q[i], ifTrue.q[i], ifFalse.q[i]);
    return r;
}
inline PackI
toBits(Pack a)
{
    return {{vreinterpretq_s64_f64(a.q[0]), vreinterpretq_s64_f64(a.q[1]),
             vreinterpretq_s64_f64(a.q[2]),
             vreinterpretq_s64_f64(a.q[3])}};
}
inline Pack
fromBits(PackI a)
{
    return {{vreinterpretq_f64_s64(a.q[0]), vreinterpretq_f64_s64(a.q[1]),
             vreinterpretq_f64_s64(a.q[2]),
             vreinterpretq_f64_s64(a.q[3])}};
}
inline PackI
splatI(int64_t x)
{
    const int64x2_t v = vdupq_n_s64(x);
    return {{v, v, v, v}};
}
inline PackI
addI(PackI a, PackI b)
{
    return {{vaddq_s64(a.q[0], b.q[0]), vaddq_s64(a.q[1], b.q[1]),
             vaddq_s64(a.q[2], b.q[2]), vaddq_s64(a.q[3], b.q[3])}};
}
inline PackI
subI(PackI a, PackI b)
{
    return {{vsubq_s64(a.q[0], b.q[0]), vsubq_s64(a.q[1], b.q[1]),
             vsubq_s64(a.q[2], b.q[2]), vsubq_s64(a.q[3], b.q[3])}};
}
inline PackI
andI(PackI a, PackI b)
{
    return {{vandq_s64(a.q[0], b.q[0]), vandq_s64(a.q[1], b.q[1]),
             vandq_s64(a.q[2], b.q[2]), vandq_s64(a.q[3], b.q[3])}};
}
inline PackI
orI(PackI a, PackI b)
{
    return {{vorrq_s64(a.q[0], b.q[0]), vorrq_s64(a.q[1], b.q[1]),
             vorrq_s64(a.q[2], b.q[2]), vorrq_s64(a.q[3], b.q[3])}};
}
template <int K>
inline PackI
shlI(PackI a)
{
    return {{vshlq_n_s64(a.q[0], K), vshlq_n_s64(a.q[1], K),
             vshlq_n_s64(a.q[2], K), vshlq_n_s64(a.q[3], K)}};
}
template <int K>
inline PackI
shrI(PackI a)
{
    return {{vreinterpretq_s64_u64(
                 vshrq_n_u64(vreinterpretq_u64_s64(a.q[0]), K)),
             vreinterpretq_s64_u64(
                 vshrq_n_u64(vreinterpretq_u64_s64(a.q[1]), K)),
             vreinterpretq_s64_u64(
                 vshrq_n_u64(vreinterpretq_u64_s64(a.q[2]), K)),
             vreinterpretq_s64_u64(
                 vshrq_n_u64(vreinterpretq_u64_s64(a.q[3]), K))}};
}

#else // REASON_SIMD_SCALAR

inline constexpr const char *kIsaName = "scalar";
inline constexpr unsigned kNativeLanes = 1;

struct Pack
{
    double l[kLanes];
};
struct Mask
{
    bool l[kLanes];
};
struct PackI
{
    int64_t l[kLanes];
};

inline Pack
splat(double x)
{
    Pack r;
    for (size_t i = 0; i < kLanes; ++i)
        r.l[i] = x;
    return r;
}
inline Pack
load(const double *p)
{
    Pack r;
    for (size_t i = 0; i < kLanes; ++i)
        r.l[i] = p[i];
    return r;
}
inline void
store(double *p, Pack a)
{
    for (size_t i = 0; i < kLanes; ++i)
        p[i] = a.l[i];
}
#define REASON_SIMD_SCALAR_BINOP(name, expr)                              \
    inline Pack name(Pack a, Pack b)                                      \
    {                                                                     \
        Pack r;                                                           \
        for (size_t i = 0; i < kLanes; ++i)                               \
            r.l[i] = (expr);                                              \
        return r;                                                         \
    }
REASON_SIMD_SCALAR_BINOP(add, a.l[i] + b.l[i])
REASON_SIMD_SCALAR_BINOP(sub, a.l[i] - b.l[i])
REASON_SIMD_SCALAR_BINOP(mul, a.l[i] * b.l[i])
REASON_SIMD_SCALAR_BINOP(div, a.l[i] / b.l[i])
REASON_SIMD_SCALAR_BINOP(max, a.l[i] > b.l[i] ? a.l[i] : b.l[i])
REASON_SIMD_SCALAR_BINOP(min, a.l[i] < b.l[i] ? a.l[i] : b.l[i])
#undef REASON_SIMD_SCALAR_BINOP
inline Mask
cmpEq(Pack a, Pack b)
{
    Mask r;
    for (size_t i = 0; i < kLanes; ++i)
        r.l[i] = a.l[i] == b.l[i];
    return r;
}
inline Mask
cmpGt(Pack a, Pack b)
{
    Mask r;
    for (size_t i = 0; i < kLanes; ++i)
        r.l[i] = a.l[i] > b.l[i];
    return r;
}
inline Pack
select(Mask c, Pack ifTrue, Pack ifFalse)
{
    Pack r;
    for (size_t i = 0; i < kLanes; ++i)
        r.l[i] = c.l[i] ? ifTrue.l[i] : ifFalse.l[i];
    return r;
}
inline PackI
toBits(Pack a)
{
    PackI r;
    for (size_t i = 0; i < kLanes; ++i)
        r.l[i] = std::bit_cast<int64_t>(a.l[i]);
    return r;
}
inline Pack
fromBits(PackI a)
{
    Pack r;
    for (size_t i = 0; i < kLanes; ++i)
        r.l[i] = std::bit_cast<double>(a.l[i]);
    return r;
}
inline PackI
splatI(int64_t x)
{
    PackI r;
    for (size_t i = 0; i < kLanes; ++i)
        r.l[i] = x;
    return r;
}
inline PackI
addI(PackI a, PackI b)
{
    PackI r;
    for (size_t i = 0; i < kLanes; ++i)
        r.l[i] = a.l[i] + b.l[i];
    return r;
}
inline PackI
subI(PackI a, PackI b)
{
    PackI r;
    for (size_t i = 0; i < kLanes; ++i)
        r.l[i] = a.l[i] - b.l[i];
    return r;
}
inline PackI
andI(PackI a, PackI b)
{
    PackI r;
    for (size_t i = 0; i < kLanes; ++i)
        r.l[i] = a.l[i] & b.l[i];
    return r;
}
inline PackI
orI(PackI a, PackI b)
{
    PackI r;
    for (size_t i = 0; i < kLanes; ++i)
        r.l[i] = a.l[i] | b.l[i];
    return r;
}
template <int K>
inline PackI
shlI(PackI a)
{
    PackI r;
    for (size_t i = 0; i < kLanes; ++i)
        r.l[i] = int64_t(uint64_t(a.l[i]) << K);
    return r;
}
template <int K>
inline PackI
shrI(PackI a)
{
    PackI r;
    for (size_t i = 0; i < kLanes; ++i)
        r.l[i] = int64_t(uint64_t(a.l[i]) >> K);
    return r;
}

#endif // backend selection

// ---------------------------------------------------------------------------
// Generic layer: everything below is backend-independent.
// ---------------------------------------------------------------------------

/** First n lanes from p, remaining lanes filled with `fill` (n <= 8). */
inline Pack
loadN(const double *p, size_t n, double fill)
{
    double buf[kLanes];
    for (size_t i = 0; i < kLanes; ++i)
        buf[i] = i < n ? p[i] : fill;
    return load(buf);
}

/** Store only the first n lanes (n <= 8). */
inline void
storeN(double *p, size_t n, Pack a)
{
    double buf[kLanes];
    store(buf, a);
    for (size_t i = 0; i < n; ++i)
        p[i] = buf[i];
}

/**
 * Horizontal sum with the fixed tree shape
 * `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))` — identical on every
 * backend, so reductions are bit-stable across ISAs too.
 */
inline double
reduceAdd(Pack a)
{
    double b[kLanes];
    store(b, a);
    return ((b[0] + b[1]) + (b[2] + b[3])) +
           ((b[4] + b[5]) + (b[6] + b[7]));
}

/** Horizontal max (order-insensitive; same tree shape for symmetry). */
inline double
reduceMax(Pack a)
{
    double b[kLanes];
    store(b, a);
    const double m01 = b[0] > b[1] ? b[0] : b[1];
    const double m23 = b[2] > b[3] ? b[2] : b[3];
    const double m45 = b[4] > b[5] ? b[4] : b[5];
    const double m67 = b[6] > b[7] ? b[6] : b[7];
    const double lo = m01 > m23 ? m01 : m23;
    const double hi = m45 > m67 ? m45 : m67;
    return lo > hi ? lo : hi;
}

/** Horizontal min (order-insensitive; same tree shape for symmetry). */
inline double
reduceMin(Pack a)
{
    double b[kLanes];
    store(b, a);
    const double m01 = b[0] < b[1] ? b[0] : b[1];
    const double m23 = b[2] < b[3] ? b[2] : b[3];
    const double m45 = b[4] < b[5] ? b[4] : b[5];
    const double m67 = b[6] < b[7] ? b[6] : b[7];
    const double lo = m01 < m23 ? m01 : m23;
    const double hi = m45 < m67 ? m45 : m67;
    return lo < hi ? lo : hi;
}

/**
 * Lane-parallel `fastExpNonPositive`: bit-identical to the scalar
 * version in numeric.h (same clamp, Cody-Waite split, Horner chain,
 * and exponent assembly — the integer k is recovered from the bits of
 * the shifted value, which equals the scalar int64 cast exactly).
 * Inputs must not be NaN.
 */
inline Pack
expNonPositive(Pack x)
{
    constexpr double kLog2e = 1.4426950408889634074;
    constexpr double kLn2Hi = 6.93147180369123816490e-01;
    constexpr double kLn2Lo = 1.90821492927058770002e-10;
    constexpr double kShift = 6755399441055744.0; // 2^52 + 2^51
    const int64_t kShiftBits = std::bit_cast<int64_t>(kShift);

    x = max(x, splat(-708.0));
    const Pack shift = splat(kShift);
    const Pack t = add(mul(x, splat(kLog2e)), shift);
    const Pack kd = sub(t, shift);
    // t = kShift + k exactly and ulp(t) == 1 in that binade, so the
    // integer k is the bit distance from kShift.
    const PackI k = subI(toBits(t), splatI(kShiftBits));
    const Pack r =
        sub(sub(x, mul(kd, splat(kLn2Hi))), mul(kd, splat(kLn2Lo)));
    Pack p = splat(1.0 / 6227020800.0); // 1/13!
    p = add(mul(p, r), splat(1.0 / 479001600.0));
    p = add(mul(p, r), splat(1.0 / 39916800.0));
    p = add(mul(p, r), splat(1.0 / 3628800.0));
    p = add(mul(p, r), splat(1.0 / 362880.0));
    p = add(mul(p, r), splat(1.0 / 40320.0));
    p = add(mul(p, r), splat(1.0 / 5040.0));
    p = add(mul(p, r), splat(1.0 / 720.0));
    p = add(mul(p, r), splat(1.0 / 120.0));
    p = add(mul(p, r), splat(1.0 / 24.0));
    p = add(mul(p, r), splat(1.0 / 6.0));
    p = add(mul(p, r), splat(0.5));
    p = add(mul(p, r), splat(1.0));
    p = add(mul(p, r), splat(1.0));
    const PackI pow2 = shlI<52>(addI(k, splatI(1023)));
    return mul(p, fromBits(pow2));
}

/** Lane-parallel `fastLogPositive` (same algorithm, same bits). */
inline Pack
logPositive(Pack x)
{
    constexpr double kLn2Hi = 6.93147180369123816490e-01;
    constexpr double kLn2Lo = 1.90821492927058770002e-10;
    constexpr double kLg1 = 6.666666666666735130e-01;
    constexpr double kLg2 = 3.999999999940941908e-01;
    constexpr double kLg3 = 2.857142874366239149e-01;
    constexpr double kLg4 = 2.222219843214978396e-01;
    constexpr double kLg5 = 1.818357216161805012e-01;
    constexpr double kLg6 = 1.531383769920937332e-01;
    constexpr double kLg7 = 1.479819860511658591e-01;
    constexpr double kSqrt2 = 1.41421356237309514547;
    constexpr double kMagic = 6755399441055744.0; // 2^52 + 2^51
    const int64_t kMagicBits = std::bit_cast<int64_t>(kMagic);

    const PackI bits = toBits(x);
    // m = mantissa with the exponent field forced to [1, 2).
    Pack m = fromBits(orI(andI(bits, splatI(0x000FFFFFFFFFFFFFll)),
                          splatI(0x3FF0000000000000ll)));
    // Unbiased exponent as a double via the magic-constant trick:
    // (bits >> 52) is the biased exponent in [1, 2046]; writing it
    // into kMagic's low mantissa bits yields double(kMagic + e)
    // exactly (ulp == 1 in that binade), so the subtraction recovers
    // the exact integer as a double — identical to the scalar
    // double(int64) conversion.
    const Pack ed =
        sub(fromBits(orI(shrI<52>(bits), splatI(kMagicBits))),
            splat(kMagic));
    Pack dk = sub(ed, splat(1023.0));
    const Mask big = cmpGt(m, splat(kSqrt2));
    m = select(big, mul(m, splat(0.5)), m);
    dk = add(dk, select(big, splat(1.0), splat(0.0)));

    const Pack f = sub(m, splat(1.0));
    const Pack s = div(f, add(splat(2.0), f));
    const Pack z = mul(s, s);
    const Pack w = mul(z, z);
    const Pack t1 = mul(
        w, add(splat(kLg2),
               mul(w, add(splat(kLg4), mul(w, splat(kLg6))))));
    const Pack t2 = mul(
        z,
        add(splat(kLg1),
            mul(w, add(splat(kLg3),
                       mul(w, add(splat(kLg5),
                                  mul(w, splat(kLg7))))))));
    const Pack r = add(t2, t1);
    const Pack hfsq = mul(splat(0.5), mul(f, f));
    // dk*Hi - ((hfsq - (s*(hfsq+r) + dk*Lo)) - f)
    const Pack inner =
        add(mul(s, add(hfsq, r)), mul(dk, splat(kLn2Lo)));
    return sub(mul(dk, splat(kLn2Hi)), sub(sub(hfsq, inner), f));
}

/**
 * log(sum_i exp(xs[i])) over a contiguous buffer with the canonical
 * two-pass kernel: vectorized max scan, then masked exp-accumulation
 * into 8 lane partials folded by the fixed reduction tree, then one
 * `fastLogPositive`.  `kLogZero` entries are exact additive identities
 * (they are masked out, not clamped), so the result matches a chained
 * `logAdd` fold to ~1e-15.  Returns kLogZero when every term (or n
 * itself) is zero/-inf.  Deterministic for a given n on every backend.
 */
inline double
logSumExpMasked(const double *xs, size_t n)
{
    if (n == 0)
        return kLogZero;
    if (n == 1)
        return xs[0]; // == hi + log(exp(0)) == hi + 0 exactly
    if (n <= kLanes) {
        // Small fan-in fast path (the common case in circuit
        // transposes): same masked lanes and the same fixed reduction
        // tree as the pack path below — bit-identical — without the
        // pack/buffer round trips.
        double hi = xs[0];
        for (size_t i = 1; i < n; ++i)
            hi = xs[i] > hi ? xs[i] : hi;
        if (hi == kLogZero)
            return kLogZero;
        double c[kLanes] = {0, 0, 0, 0, 0, 0, 0, 0};
        for (size_t i = 0; i < n; ++i)
            c[i] = xs[i] == kLogZero ? 0.0
                                     : fastExpNonPositive(xs[i] - hi);
        return hi + fastLogPositive(((c[0] + c[1]) + (c[2] + c[3])) +
                                    ((c[4] + c[5]) + (c[6] + c[7])));
    }
    const Pack neg_inf = splat(kLogZero);
    Pack hi_v = neg_inf;
    size_t i = 0;
    for (; i + kLanes <= n; i += kLanes)
        hi_v = max(hi_v, load(xs + i));
    if (i < n)
        hi_v = max(hi_v, loadN(xs + i, n - i, kLogZero));
    const double hi = reduceMax(hi_v);
    if (hi == kLogZero)
        return kLogZero;

    const Pack hi_p = splat(hi);
    const Pack zero = splat(0.0);
    Pack acc = zero;
    for (i = 0; i + kLanes <= n; i += kLanes) {
        const Pack t = load(xs + i);
        const Pack e = expNonPositive(sub(t, hi_p));
        acc = add(acc, select(cmpEq(t, neg_inf), zero, e));
    }
    if (i < n) {
        const Pack t = loadN(xs + i, n - i, kLogZero);
        const Pack e = expNonPositive(sub(t, hi_p));
        acc = add(acc, select(cmpEq(t, neg_inf), zero, e));
    }
    return hi + fastLogPositive(reduceAdd(acc));
}

/**
 * Masked exp-multiply: out[i] = args[i] == -inf ? 0
 *                               : expNonPositive(args[i]) * scale[i].
 * The downward-flow building block: -inf encodes "edge carries no
 * flow" and must contribute an exact additive identity, while live
 * lanes pay one vectorized exp.  args must not contain NaN.
 */
inline void
expMulOrZero(const double *args, const double *scale, double *out,
             size_t n)
{
    const Pack neg_inf = splat(kLogZero);
    const Pack zero = splat(0.0);
    size_t i = 0;
    for (; i + kLanes <= n; i += kLanes) {
        const Pack a = load(args + i);
        // Masked lanes are clamped by expNonPositive, so computing
        // then blending is NaN-free and branch-free.
        const Pack f = mul(expNonPositive(a), load(scale + i));
        store(out + i, select(cmpEq(a, neg_inf), zero, f));
    }
    // Lanes are independent, so the scalar tail (and the common
    // small-fan-in case) is bit-identical to a masked pack.
    for (; i < n; ++i)
        out[i] = args[i] == kLogZero
                     ? 0.0
                     : fastExpNonPositive(args[i]) * scale[i];
}

/**
 * The staged half of sumLayerBlock (below): `terms` already holds the
 * fan-in edge terms, edge-major (fanin * kLanes doubles).  Split out
 * so the runtime-dispatched kernel tables (simd_dispatch.h) can run
 * the two-pass scan in a wider ISA than the caller staged the terms
 * with — bit-identical by the backend contract, since the scan
 * computes max, expNonPositive, and logPositive over the same values
 * in the same order.
 */
inline Pack
sumLayerBlockStaged(size_t fanin, const double *terms)
{
    const Pack neg_inf = splat(kLogZero);
    const Pack zero = splat(0.0);
    Pack hi = neg_inf;
    for (size_t e = 0; e < fanin; ++e)
        hi = max(hi, load(terms + e * kLanes));
    const Mask dead = cmpEq(hi, neg_inf);
    const Pack hi_safe = select(dead, zero, hi);
    Pack acc = zero;
    for (size_t e = 0; e < fanin; ++e) {
        const Pack t = load(terms + e * kLanes);
        const Pack ex = expNonPositive(sub(t, hi_safe));
        acc = add(acc, select(cmpEq(t, neg_inf), zero, ex));
    }
    return select(dead, neg_inf, add(hi, logPositive(acc)));
}

/**
 * Canonical sum-layer two-pass logsumexp over one 8-lane SoA block:
 * `term_at(e)` produces the 8 row-lane terms of fan-in edge e (each is
 * also staged to `terms_scratch`, edge-major, for the second pass),
 * `-inf` terms are exact additive identities, and dead lanes (every
 * term `-inf`) come back as `-inf`.  This is THE sum-node kernel: the
 * production block evaluator (pc::CircuitEvaluator::evaluateBlock)
 * and bench_eval's gated kernel_logsumexp micro-bench both call it,
 * so the measured kernel is the shipped one.
 */
template <typename TermAt>
inline Pack
sumLayerBlock(size_t fanin, double *terms_scratch, TermAt term_at)
{
    for (size_t e = 0; e < fanin; ++e)
        store(terms_scratch + e * kLanes, term_at(e));
    return sumLayerBlockStaged(fanin, terms_scratch);
}

/**
 * dst[i] += src[i] for i in [0, n): the element-wise merge fold of the
 * sharded reductions.  Lanes are independent, so this is bit-identical
 * to the scalar loop on every backend.
 */
inline void
addInto(double *dst, const double *src, size_t n)
{
    size_t i = 0;
    for (; i + kLanes <= n; i += kLanes)
        store(dst + i, add(load(dst + i), load(src + i)));
    for (; i < n; ++i)
        dst[i] += src[i];
}

} // inline namespace REASON_SIMD_ABI

/** Compile-time selected backend name ("avx512f", "avx2", ...). */
const char *isaName();
/** Native register lanes of the selected backend (1 for scalar). */
unsigned nativeLanes();
/**
 * Runtime-detected CPU SIMD features (space-separated, e.g.
 * "sse2 avx avx2 fma avx512f"), independent of what the build targets;
 * reported in bench provenance and `reason_cli --version`.
 */
const char *cpuFeatures();

} // namespace simd
} // namespace reason

#endif // REASON_UTIL_SIMD_H
