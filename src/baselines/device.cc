#include "baselines/device.h"

#include <algorithm>

#include "util/logging.h"

namespace reason {
namespace baselines {

const char *
kernelClassName(KernelClass cls)
{
    switch (cls) {
      case KernelClass::DenseMatMul: return "MatMul";
      case KernelClass::Softmax: return "Softmax";
      case KernelClass::SparseMatVec: return "SparseMatVec";
      case KernelClass::SymbolicBcp: return "Logic";
      case KernelClass::ProbCircuit: return "Marginal";
      case KernelClass::HmmSequential: return "Bayesian";
    }
    return "?";
}

double
DeviceModel::seconds(const KernelWork &work) const
{
    switch (work.cls) {
      case KernelClass::DenseMatMul:
      case KernelClass::Softmax: {
        double compute_s =
            work.flops / (peakTflops * 1e12 * denseEfficiency);
        double mem_s = work.bytes / (dramGBps * 1e9);
        return std::max(compute_s, mem_s);
      }
      case KernelClass::SparseMatVec: {
        // Bandwidth-bound with poor locality: effective BW is halved.
        double mem_s = work.bytes / (dramGBps * 1e9 * 0.5);
        double compute_s =
            work.flops / (peakTflops * 1e12 * denseEfficiency * 0.3);
        return std::max(compute_s, mem_s);
      }
      case KernelClass::SymbolicBcp: {
        double t = double(work.propagations) / propsPerSec;
        // Literal scans ride along at ~8 visits per propagation slot.
        t += double(work.literalVisits) / (propsPerSec * 8.0);
        return t;
      }
      case KernelClass::ProbCircuit:
      case KernelClass::HmmSequential:
        return double(work.dagNodes) / dagNodesPerSec;
    }
    return 0.0;
}

double
DeviceModel::joules(const KernelWork &work) const
{
    double t = seconds(work);
    bool irregular = work.cls == KernelClass::SymbolicBcp ||
                     work.cls == KernelClass::ProbCircuit ||
                     work.cls == KernelClass::HmmSequential ||
                     work.cls == KernelClass::SparseMatVec;
    double watts;
    if (irregular) {
        watts = irregularActiveWatts > 0.0
                    ? irregularActiveWatts
                    : idleWatts + (tdpWatts - idleWatts) *
                                      irregularPowerFraction * 0.5;
    } else {
        watts = idleWatts + (tdpWatts - idleWatts) * 0.85;
    }
    return watts * t;
}

// ---------------------------------------------------------------------
// Presets.  Peak numbers follow public datasheets (Table III); the
// irregular-kernel effective rates are calibrated against the paper's
// profiling: REASON at 500 MHz sustains ~30 G DAG-node/s and ~200 M
// propagation/s, and the paper reports it 12-50x faster than GPUs and
// ~98x faster than the CPU on these kernels.
// ---------------------------------------------------------------------

DeviceModel
xeonCpu()
{
    DeviceModel d;
    d.name = "Xeon CPU";
    d.techNm = 10;
    d.peakTflops = 3.2; // 60 cores AVX-512 fp32
    d.dramGBps = 307.0;
    d.tdpWatts = 270.0;
    d.idleWatts = 95.0;
    d.denseEfficiency = 0.55;
    // Pointer-chasing kernels run essentially single-thread with
    // DRAM-latency-bound steps (<5% parallel efficiency, Sec. VII-C).
    d.dagNodesPerSec = 0.30e9;
    d.propsPerSec = 4.3e6;
    d.irregularPowerFraction = 0.55;
    // Single active core + uncore/DRAM share during pointer chasing.
    d.irregularActiveWatts = 18.0;
    return d;
}

DeviceModel
rtxA6000()
{
    DeviceModel d;
    d.name = "RTX A6000";
    d.techNm = 8;
    d.peakTflops = 38.7;
    d.dramGBps = 768.0;
    d.tdpWatts = 300.0;
    d.idleWatts = 60.0;
    d.denseEfficiency = 0.62;
    // Warp divergence + uncoalesced access (Tab. II): ~12x behind
    // REASON on irregular reasoning kernels.
    d.dagNodesPerSec = 2.45e9;
    d.propsPerSec = 35.0e6;
    d.irregularPowerFraction = 0.62;
    d.irregularActiveWatts = 119.0; // underutilized SMs, GDDR active
    return d;
}

DeviceModel
orinNx()
{
    DeviceModel d;
    d.name = "Orin NX";
    d.techNm = 8;
    d.peakTflops = 3.76; // fp16 dense
    d.dramGBps = 102.4;
    d.tdpWatts = 15.0;
    d.idleWatts = 5.0;
    d.denseEfficiency = 0.55;
    // Edge GPU: fewer SMs, smaller caches: ~50x behind REASON.
    d.dagNodesPerSec = 0.59e9;
    d.propsPerSec = 8.4e6;
    d.irregularPowerFraction = 0.70;
    d.irregularActiveWatts = 13.2;
    return d;
}

DeviceModel
v100()
{
    DeviceModel d;
    d.name = "V100";
    d.techNm = 12;
    d.peakTflops = 15.7;
    d.dramGBps = 900.0;
    d.tdpWatts = 300.0;
    d.idleWatts = 55.0;
    d.denseEfficiency = 0.60;
    d.dagNodesPerSec = 6.0e9; // ~4.9x behind REASON
    d.propsPerSec = 86.0e6;
    d.irregularPowerFraction = 0.60;
    d.irregularActiveWatts = 295.0; // HBM2 keeps board power high
    return d;
}

DeviceModel
a100()
{
    DeviceModel d;
    d.name = "A100";
    d.techNm = 7;
    d.peakTflops = 77.0; // tf32
    d.dramGBps = 1555.0;
    d.tdpWatts = 400.0;
    d.idleWatts = 70.0;
    d.denseEfficiency = 0.65;
    d.dagNodesPerSec = 18.4e9; // ~1.6x behind REASON
    d.propsPerSec = 264.0e6;
    d.irregularPowerFraction = 0.58;
    d.irregularActiveWatts = 348.0;
    return d;
}

DeviceModel
tpuLike()
{
    DeviceModel d;
    d.name = "TPU-like";
    d.techNm = 7;
    d.peakTflops = 91.0; // 8x 128x128 systolic @ bf16
    d.dramGBps = 614.0;
    d.tdpWatts = 192.0;
    d.idleWatts = 45.0;
    d.denseEfficiency = 0.80; // systolic arrays excel at GEMM
    // Irregular DAG/BCP work must be cast to dense matmuls: ~25x
    // (probabilistic) to ~90x (symbolic) behind REASON.
    d.dagNodesPerSec = 1.18e9;
    d.propsPerSec = 4.2e6;
    d.irregularPowerFraction = 0.55;
    return d;
}

DeviceModel
dpuLike()
{
    DeviceModel d;
    d.name = "DPU-like";
    d.techNm = 28;
    d.peakTflops = 0.056; // 8 PEs / 56 nodes @ 500 MHz
    d.dramGBps = 12.8;
    d.tdpWatts = 1.10;
    d.idleWatts = 0.25;
    d.denseEfficiency = 0.45; // tree array is not a GEMM engine
    // Handles irregular DAGs natively but lacks REASON's banked
    // register file, Benes routing, and pipeline-aware scheduling
    // (~5x behind on PCs) and has no watched-literal/BCP hardware
    // (~22x behind on SAT).
    d.dagNodesPerSec = 5.9e9;
    d.propsPerSec = 18.0e6;
    d.irregularPowerFraction = 0.80;
    return d;
}

std::vector<DeviceModel>
allBaselines()
{
    return {orinNx(), rtxA6000(), xeonCpu(), tpuLike(), dpuLike()};
}

GpuKernelMetrics
gpuKernelMetrics(KernelClass cls)
{
    // Analytic divergence/locality model: each kernel class is
    // characterized by (branch regularity r, access locality l,
    // arithmetic intensity ai), mapped to the Tab. II observables.
    double r; // 0..1 branch regularity
    double l; // 0..1 spatial/temporal locality
    double ai; // flops per byte
    switch (cls) {
      case KernelClass::DenseMatMul: r = 0.99; l = 0.95; ai = 60.0; break;
      case KernelClass::Softmax:     r = 0.98; l = 0.80; ai = 4.0;  break;
      case KernelClass::SparseMatVec:r = 0.62; l = 0.45; ai = 0.6;  break;
      case KernelClass::SymbolicBcp: r = 0.55; l = 0.30; ai = 0.12; break;
      case KernelClass::ProbCircuit: r = 0.64; l = 0.38; ai = 0.35; break;
      case KernelClass::HmmSequential:r = 0.58; l = 0.36; ai = 0.28; break;
      default: r = 0.5; l = 0.5; ai = 1.0; break;
    }
    GpuKernelMetrics m;
    double ai_sat = std::min(1.0, ai / 10.0); // compute-bound fraction
    m.computeThroughputPct = 100.0 * (0.35 * r + 0.65 * ai_sat * r);
    m.aluUtilizationPct = 100.0 * (0.30 * r + 0.25 * l + 0.45 * ai_sat);
    m.l1HitRatePct = 100.0 * (0.30 + 0.62 * l);
    m.l2HitRatePct = 100.0 * (0.28 + 0.48 * l);
    m.l1ThroughputPct = 100.0 * (0.12 + 0.72 * l * r);
    m.l2ThroughputPct = 100.0 * (0.08 + 0.36 * l * r);
    // Low-locality kernels spill to DRAM: BW utilization rises as
    // locality falls (Tab. II: symbolic kernels are DRAM-bound).
    m.dramBwUtilizationPct = 100.0 * (0.25 + 0.52 * (1.0 - l));
    m.warpExecEfficiencyPct = 100.0 * (0.25 + 0.73 * r);
    m.branchEfficiencyPct = 100.0 * (0.45 + 0.54 * r);
    m.eligibleWarpsPct = 100.0 * (0.015 + 0.058 * r * l);
    return m;
}

double
operationalIntensity(KernelClass cls)
{
    switch (cls) {
      case KernelClass::DenseMatMul: return 60.0;
      case KernelClass::Softmax: return 4.0;
      case KernelClass::SparseMatVec: return 0.6;
      case KernelClass::SymbolicBcp: return 0.12;
      case KernelClass::ProbCircuit: return 0.35;
      case KernelClass::HmmSequential: return 0.28;
    }
    return 1.0;
}

} // namespace baselines
} // namespace reason
