/**
 * @file
 * Seeded random probabilistic-circuit generator for differential
 * testing (tests/test_flat_random.cc).
 *
 * The generated DAGs deliberately cover the structures the flat
 * engines special-case: mixed sum/product arities, shared sub-DAGs
 * (children drawn uniformly from every node built so far), degenerate
 * single-child sums and products, leaves whose distributions contain
 * exact zeros, and all-zero-weight sum nodes (installed by mutating a
 * normalized sum after construction, the only way past addSum's
 * positive-mass check).  Circuits are *not* necessarily smooth or
 * decomposable — the reference walkers and the flat engines must agree
 * on arbitrary well-formed DAGs.
 */

#ifndef REASON_TESTS_RANDOM_CIRCUIT_H
#define REASON_TESTS_RANDOM_CIRCUIT_H

#include <cstdint>
#include <vector>

#include "pc/pc.h"
#include "util/rng.h"

namespace reason {
namespace testutil {

/** Random leaf distribution; may contain exact zeros but never all. */
inline std::vector<double>
randomLeafDist(Rng &rng, uint32_t arity)
{
    std::vector<double> dist(arity, 0.0);
    for (uint32_t v = 0; v < arity; ++v)
        dist[v] = rng.bernoulli(0.25) ? 0.0 : rng.uniformReal(0.05, 1.0);
    // addLeaf requires positive mass.
    dist[uint32_t(rng.uniformInt(0, arity - 1))] =
        rng.uniformReal(0.05, 1.0);
    return dist;
}

/**
 * One random circuit: 2-6 variables of arity 2-3, roughly 10-50 nodes.
 * Every structural degenerate case above appears with fixed
 * probability, so ~200 draws cover each many times over.
 */
inline pc::Circuit
randomTestCircuit(Rng &rng)
{
    const uint32_t num_vars = uint32_t(rng.uniformInt(2, 6));
    const uint32_t arity = uint32_t(rng.uniformInt(2, 3));
    pc::Circuit c(num_vars, arity);

    std::vector<pc::NodeId> pool;
    // One leaf per variable so every circuit can touch every variable.
    for (uint32_t v = 0; v < num_vars; ++v)
        pool.push_back(c.addLeaf(v, randomLeafDist(rng, arity)));

    auto pick = [&]() {
        return pool[size_t(rng.uniformInt(0, int64_t(pool.size()) - 1))];
    };
    auto pick_children = [&](uint32_t lo, uint32_t hi) {
        std::vector<pc::NodeId> children;
        const uint32_t fan = uint32_t(rng.uniformInt(lo, hi));
        for (uint32_t k = 0; k < fan; ++k)
            children.push_back(pick()); // duplicates allowed
        return children;
    };

    const uint32_t interior = uint32_t(rng.uniformInt(6, 40));
    for (uint32_t i = 0; i < interior; ++i) {
        switch (rng.uniformInt(0, 5)) {
          case 0: // extra leaf (shared sub-DAG fodder)
            pool.push_back(
                c.addLeaf(uint32_t(rng.uniformInt(0, num_vars - 1)),
                          randomLeafDist(rng, arity)));
            break;
          case 1: { // degenerate single-child sum
            pool.push_back(c.addSum({pick()}, {1.0}));
            break;
          }
          case 2: // degenerate single-child product
            pool.push_back(c.addProduct({pick()}));
            break;
          case 3: { // all-zero-weight sum (mutated past normalization)
            std::vector<pc::NodeId> children = pick_children(1, 3);
            std::vector<double> weights(children.size(), 1.0);
            pc::NodeId id =
                c.addSum(std::move(children), std::move(weights));
            for (double &w : c.mutableNode(id).weights)
                w = 0.0;
            pool.push_back(id);
            break;
          }
          case 4: { // mixed-arity sum, weights may include zeros
            std::vector<pc::NodeId> children = pick_children(2, 5);
            std::vector<double> weights(children.size(), 0.0);
            for (double &w : weights)
                w = rng.bernoulli(0.2) ? 0.0
                                       : rng.uniformReal(0.1, 1.0);
            weights[0] = rng.uniformReal(0.1, 1.0); // positive mass
            pool.push_back(
                c.addSum(std::move(children), std::move(weights)));
            break;
          }
          default: // mixed-arity product
            pool.push_back(c.addProduct(pick_children(2, 4)));
            break;
        }
    }

    // Root: a sum over a handful of recent nodes, so most of the DAG
    // is reachable and the root is never the all-zero degenerate.
    std::vector<pc::NodeId> root_children = pick_children(2, 4);
    std::vector<double> root_weights;
    for (size_t k = 0; k < root_children.size(); ++k)
        root_weights.push_back(rng.uniformReal(0.1, 1.0));
    c.markRoot(c.addSum(std::move(root_children),
                        std::move(root_weights)));
    return c;
}

/** Random assignments, a `missing_prob` fraction marginalized out. */
inline std::vector<pc::Assignment>
randomPartialAssignments(Rng &rng, const pc::Circuit &c, size_t count,
                         double missing_prob)
{
    std::vector<pc::Assignment> out(count);
    for (auto &x : out) {
        x.resize(c.numVars());
        for (uint32_t v = 0; v < c.numVars(); ++v)
            x[v] = rng.bernoulli(missing_prob)
                       ? pc::kMissing
                       : uint32_t(rng.uniformInt(0, c.arity() - 1));
    }
    return out;
}

} // namespace testutil
} // namespace reason

#endif // REASON_TESTS_RANDOM_CIRCUIT_H
