/**
 * @file
 * Cross-module integration tests: full pipelines from workload
 * generation through algorithm optimization, compilation, cycle
 * simulation, system composition, and energy reporting — the paths the
 * benches exercise, verified end to end.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "arch/accelerator.h"
#include "arch/symbolic.h"
#include "compiler/compile.h"
#include "core/pipeline.h"
#include "energy/energy_model.h"
#include "sys/system.h"
#include "util/rng.h"
#include "workloads/timing.h"
#include "workloads/workloads.h"

using namespace reason;

TEST(EndToEnd, PcWorkloadThroughFullStack)
{
    // Generate -> optimize -> compile -> simulate -> verify numerics.
    workloads::TaskBundle b = workloads::generate(
        workloads::DatasetId::AwA2, workloads::TaskScale::Small, 21);
    ASSERT_TRUE(b.hasPc());

    pc::Circuit pruned(1, 2);
    std::vector<pc::NodeId> leaf_order;
    core::OptimizedKernel k = core::optimizeCircuit(
        b.pcs.classCircuits[0], b.pcs.calibration, {}, &pruned,
        &leaf_order);

    arch::ArchConfig cfg;
    compiler::Program prog =
        compiler::compile(k.dag, cfg.compilerTarget());
    arch::Accelerator accel(cfg);

    for (int q = 0; q < 5; ++q) {
        auto inputs = core::circuitLeafInputs(pruned, leaf_order,
                                              b.pcs.queries[q]);
        arch::ExecutionResult r = accel.run(prog, inputs);
        double want = std::exp(pruned.logLikelihood(b.pcs.queries[q]));
        EXPECT_NEAR(r.rootValue, want, 1e-9 * want + 1e-12);
    }
}

TEST(EndToEnd, SatWorkloadOnAcceleratorAgreesWithTruth)
{
    workloads::TaskBundle b = workloads::generate(
        workloads::DatasetId::FOLIO, workloads::TaskScale::Small, 22);
    ASSERT_TRUE(b.hasSat());
    arch::ArchConfig cfg;
    size_t checked = 0;
    for (size_t i = 0; i < b.sat.instances.size() && checked < 4; ++i) {
        logic::SolveResult sw = logic::solveCnf(b.sat.instances[i]);
        arch::SymbolicTiming hw =
            arch::solveOnAccelerator(b.sat.instances[i], cfg, 3);
        EXPECT_EQ(hw.result, sw);
        ++checked;
    }
}

TEST(EndToEnd, EnergyReportFromSimulatedExecution)
{
    Rng rng(23);
    pc::Circuit c = pc::randomCircuit(rng, 10, 2, 3, 6);
    core::Dag dag = core::buildFromCircuit(c);
    arch::ArchConfig cfg;
    compiler::Program prog =
        compiler::compile(dag, cfg.compilerTarget());
    arch::Accelerator accel(cfg);
    auto data = pc::sampleDataset(rng, c, 1);
    std::vector<pc::NodeId> leaf_order;
    core::buildFromCircuit(c, &leaf_order);
    auto inputs = core::circuitLeafInputs(c, leaf_order, data[0]);
    arch::ExecutionResult r = accel.run(prog, inputs);

    energy::EnergyModel em;
    energy::EnergyReport rep =
        em.report(r.events, r.seconds(cfg));
    EXPECT_GT(rep.totalJoules, 0.0);
    EXPECT_GT(rep.averageWatts, 0.0);
    EXPECT_LT(rep.averageWatts, 20.0);
}

TEST(EndToEnd, Fig11StyleOrderingOnRealBundle)
{
    workloads::TaskBundle b = workloads::generate(
        workloads::DatasetId::XSTest, workloads::TaskScale::Small, 24);
    workloads::SymbolicOps ops = workloads::measureSymbolicOps(b);
    double reason =
        sys::symbolicCost(sys::Platform::ReasonAccel, ops).seconds;
    double rtx =
        sys::symbolicCost(sys::Platform::RtxA6000, ops).seconds;
    double orin =
        sys::symbolicCost(sys::Platform::OrinNx, ops).seconds;
    double xeon =
        sys::symbolicCost(sys::Platform::XeonCpu, ops).seconds;
    EXPECT_LT(reason, rtx);
    EXPECT_LT(rtx, orin);
    EXPECT_LT(orin, xeon);
}

TEST(EndToEnd, CodesignAblationOrdering)
{
    // Table V shape: algo-only < baseline; algo+hardware << algo-only.
    workloads::TaskBundle b = workloads::generate(
        workloads::DatasetId::TwinSafety, workloads::TaskScale::Small,
        25);
    workloads::SymbolicOps base = workloads::measureSymbolicOps(b);
    workloads::SymbolicOps opt = workloads::measureSymbolicOps(b, true);

    double orin_base =
        sys::symbolicCost(sys::Platform::OrinNx, base).seconds;
    double orin_opt =
        sys::symbolicCost(sys::Platform::OrinNx, opt).seconds;
    double reason_opt =
        sys::symbolicCost(sys::Platform::ReasonAccel, opt).seconds;
    EXPECT_LE(orin_opt, orin_base);
    EXPECT_LT(reason_opt, orin_opt * 0.2);
}

TEST(EndToEnd, RealTimeTargetWithinReach)
{
    // Paper: ~0.8 s per task on the full system.  A small bundle must
    // compose to well under a second on the REASON platform.
    workloads::TaskBundle b = workloads::generate(
        workloads::DatasetId::CoAuthor, workloads::TaskScale::Small,
        26);
    workloads::SymbolicOps ops = workloads::measureSymbolicOps(b, true);
    sys::StageCost sym =
        sys::symbolicCost(sys::Platform::ReasonAccel, ops);
    double flops = sys::neuralFlops(b, ops);
    sys::StageCost neu =
        sys::neuralCost(sys::Platform::ReasonAccel, flops);
    sys::EndToEnd e = sys::pipelinedComposition(neu, sym, 8);
    EXPECT_LT(e.totalSeconds, 1.0);
}
