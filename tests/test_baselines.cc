/**
 * @file
 * Baseline device model tests: preset sanity, roofline behavior, the
 * irregular-kernel performance ordering that drives Figs. 11/13, and
 * the Table II micro-metric model's orderings.
 */

#include <gtest/gtest.h>

#include "baselines/device.h"

using namespace reason;
using namespace reason::baselines;

TEST(Device, PresetsHavePhysicalNumbers)
{
    for (const DeviceModel &d : allBaselines()) {
        EXPECT_GT(d.peakTflops, 0.0) << d.name;
        EXPECT_GT(d.dramGBps, 0.0) << d.name;
        EXPECT_GT(d.tdpWatts, d.idleWatts) << d.name;
        EXPECT_GT(d.dagNodesPerSec, 0.0) << d.name;
        EXPECT_GT(d.propsPerSec, 0.0) << d.name;
    }
}

TEST(Device, DenseKernelRoofline)
{
    DeviceModel gpu = rtxA6000();
    KernelWork compute_bound;
    compute_bound.cls = KernelClass::DenseMatMul;
    compute_bound.flops = 1e12;
    compute_bound.bytes = 1e6;
    KernelWork memory_bound = compute_bound;
    memory_bound.flops = 1e6;
    memory_bound.bytes = 1e11;
    // Compute-bound time follows flops, memory-bound follows bytes.
    EXPECT_NEAR(gpu.seconds(compute_bound),
                1e12 / (gpu.peakTflops * 1e12 * gpu.denseEfficiency),
                1e-9);
    EXPECT_NEAR(gpu.seconds(memory_bound), 1e11 / (gpu.dramGBps * 1e9),
                1e-6);
}

TEST(Device, IrregularOrderingMatchesPaper)
{
    // Symbolic BCP throughput: RTX > Orin > Xeon (Fig. 11's 12/50/98x
    // gaps against REASON).
    EXPECT_GT(rtxA6000().propsPerSec, orinNx().propsPerSec);
    EXPECT_GT(orinNx().propsPerSec, xeonCpu().propsPerSec);
    // Server accelerators: A100 > V100 > RTX on DAG kernels.
    EXPECT_GT(a100().dagNodesPerSec, v100().dagNodesPerSec);
    EXPECT_GT(v100().dagNodesPerSec, rtxA6000().dagNodesPerSec);
    // The TPU-like systolic array is the worst symbolic engine.
    EXPECT_LT(tpuLike().propsPerSec, dpuLike().propsPerSec);
}

TEST(Device, SymbolicKernelTimeScalesWithWork)
{
    DeviceModel d = orinNx();
    KernelWork w;
    w.cls = KernelClass::SymbolicBcp;
    w.propagations = 1000;
    w.literalVisits = 8000;
    double t1 = d.seconds(w);
    w.propagations *= 10;
    w.literalVisits *= 10;
    EXPECT_NEAR(d.seconds(w), 10 * t1, 1e-12);
}

TEST(Device, EnergyReflectsPowerStates)
{
    DeviceModel d = rtxA6000();
    KernelWork dense;
    dense.cls = KernelClass::DenseMatMul;
    dense.flops = 1e12;
    dense.bytes = 1e9;
    KernelWork sparse;
    sparse.cls = KernelClass::ProbCircuit;
    sparse.dagNodes = uint64_t(d.dagNodesPerSec * d.seconds(dense));
    // Same runtime, but irregular kernels draw less than dense peak.
    double t_dense = d.seconds(dense);
    double t_sparse = d.seconds(sparse);
    ASSERT_NEAR(t_dense, t_sparse, t_dense * 0.01);
    EXPECT_GT(d.joules(dense), d.joules(sparse));
}

TEST(GpuMetrics, MatMulVsLogicOrdering)
{
    GpuKernelMetrics mm = gpuKernelMetrics(KernelClass::DenseMatMul);
    GpuKernelMetrics logic = gpuKernelMetrics(KernelClass::SymbolicBcp);
    // Table II orderings.
    EXPECT_GT(mm.computeThroughputPct, logic.computeThroughputPct);
    EXPECT_GT(mm.aluUtilizationPct, logic.aluUtilizationPct);
    EXPECT_GT(mm.l1HitRatePct, logic.l1HitRatePct);
    EXPECT_GT(mm.warpExecEfficiencyPct, logic.warpExecEfficiencyPct);
    EXPECT_GT(mm.eligibleWarpsPct, logic.eligibleWarpsPct);
    // Irregular kernels lean on DRAM bandwidth.
    EXPECT_LT(mm.dramBwUtilizationPct, logic.dramBwUtilizationPct);
}

TEST(GpuMetrics, AllKernelsInPercentRange)
{
    for (KernelClass cls :
         {KernelClass::DenseMatMul, KernelClass::Softmax,
          KernelClass::SparseMatVec, KernelClass::SymbolicBcp,
          KernelClass::ProbCircuit, KernelClass::HmmSequential}) {
        GpuKernelMetrics m = gpuKernelMetrics(cls);
        for (double v :
             {m.computeThroughputPct, m.aluUtilizationPct,
              m.l1ThroughputPct, m.l2ThroughputPct, m.l1HitRatePct,
              m.l2HitRatePct, m.dramBwUtilizationPct,
              m.warpExecEfficiencyPct, m.branchEfficiencyPct,
              m.eligibleWarpsPct}) {
            EXPECT_GE(v, 0.0) << kernelClassName(cls);
            EXPECT_LE(v, 100.0) << kernelClassName(cls);
        }
    }
}

TEST(GpuMetrics, OperationalIntensityOrdering)
{
    // Roofline x-axis (Fig. 3(d)): neural >> probabilistic > symbolic.
    EXPECT_GT(operationalIntensity(KernelClass::DenseMatMul),
              operationalIntensity(KernelClass::ProbCircuit));
    EXPECT_GT(operationalIntensity(KernelClass::ProbCircuit),
              operationalIntensity(KernelClass::SymbolicBcp));
}
