/**
 * @file
 * Table IV reproduction: REASON algorithm-optimization performance —
 * task metric before vs after the unify/prune/regularize pipeline, and
 * the memory footprint reduction, for the ten reasoning tasks.
 *
 * Paper shape: metric preserved within noise; memory down 21-43 %
 * (avg ≈ 31.7 %).
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/pipeline.h"
#include "hmm/hmm.h"
#include "logic/implication_graph.h"
#include "pc/flows.h"
#include "util/stats.h"
#include "util/table.h"
#include "workloads/workloads.h"

using namespace reason;
using workloads::DatasetId;
using workloads::TaskBundle;
using workloads::TaskScale;

namespace {

void
BM_PruneCnf(benchmark::State &state)
{
    TaskBundle b = workloads::generate(DatasetId::MiniF2F,
                                       TaskScale::Small, 2);
    for (auto _ : state) {
        auto pr = logic::pruneCnf(b.sat.instances[0]);
        benchmark::DoNotOptimize(pr.literalsRemoved);
    }
}
BENCHMARK(BM_PruneCnf)->Unit(benchmark::kMillisecond);

void
BM_PruneCircuitByFlow(benchmark::State &state)
{
    TaskBundle b =
        workloads::generate(DatasetId::AwA2, TaskScale::Small, 2);
    for (auto _ : state) {
        auto pr = pc::pruneByFlow(b.pcs.classCircuits[0],
                                  b.pcs.calibration, 1e-3);
        benchmark::DoNotOptimize(pr.edgesRemoved);
    }
}
BENCHMARK(BM_PruneCircuitByFlow)->Unit(benchmark::kMillisecond);

struct Row
{
    double metric_before;
    double metric_after;
    double memory_reduction;
};

/** Memory accounting through the pipeline, per kernel family. */
Row
evaluateDataset(DatasetId d)
{
    TaskBundle b = workloads::generate(d, TaskScale::Small, 13);
    Row row{};
    row.metric_before = workloads::taskMetric(b);

    double bytes_before = 0.0, bytes_after = 0.0;
    core::PipelineConfig cfg;
    cfg.pcFlowThreshold = 2e-2;

    TaskBundle optimized = b;
    for (size_t i = 0; i < b.sat.instances.size(); ++i) {
        core::OptimizedKernel k =
            core::optimizeCnf(b.sat.instances[i], cfg);
        bytes_before += double(k.statsBefore.memoryBytes);
        bytes_after += double(k.statsAfter.memoryBytes);
        optimized.sat.instances[i] =
            logic::pruneCnf(b.sat.instances[i]).pruned;
    }
    for (size_t i = 0; i < b.pcs.classCircuits.size(); ++i) {
        pc::Circuit pruned(1, 2);
        core::OptimizedKernel k = core::optimizeCircuit(
            b.pcs.classCircuits[i], b.pcs.calibration, cfg, &pruned);
        bytes_before += double(k.statsBefore.memoryBytes);
        bytes_after += double(k.statsAfter.memoryBytes);
        optimized.pcs.classCircuits[i] = pruned;
    }
    if (b.hasHmm()) {
        hmm::Hmm pruned(1, 1);
        core::OptimizedKernel k =
            core::optimizeHmm(b.hmms.model, b.hmms.calibration,
                              b.hmms.queries.front(), cfg, &pruned);
        bytes_before += double(k.statsBefore.memoryBytes);
        bytes_after += double(k.statsAfter.memoryBytes);
        optimized.hmms.model = pruned;
    }

    row.metric_after = workloads::taskMetric(optimized);
    row.memory_reduction =
        bytes_before > 0.0 ? 1.0 - bytes_after / bytes_before : 0.0;
    return row;
}

void
printTable4()
{
    Table t({"Workload", "Benchmark", "Metric", "Baseline",
             "After REASON opt.", "Memory reduction"});
    StatAccumulator mem;
    for (DatasetId d : workloads::allDatasets()) {
        TaskBundle probe = workloads::generate(d, TaskScale::Small, 13);
        Row row = evaluateDataset(d);
        mem.add(row.memory_reduction);
        t.addRow({workloads::workloadName(probe.workload),
                  workloads::datasetName(d), probe.metricName,
                  Table::percent(row.metric_before),
                  Table::percent(row.metric_after),
                  Table::percent(row.memory_reduction)});
    }
    t.addRow({"-", "average", "-", "-", "-",
              Table::percent(mem.mean())});
    std::printf("\n");
    t.print("Table IV — algorithm optimization: metric preserved, "
            "memory reduced (paper: 21-43%, avg 31.7%)");
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printTable4();
    return 0;
}
