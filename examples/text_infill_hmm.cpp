/**
 * @file
 * Ctrl-G-style constrained text infilling (Table I): an HMM distilled
 * from the language model enforces keyword constraints during decoding.
 * The forward-pass DAG is pruned by posterior usage (Sec. IV-B), then
 * run through the unified-DAG compiler onto the accelerator; Viterbi
 * decoding checks the infill constraints.
 */

#include <cmath>
#include <cstdio>

#include "arch/accelerator.h"
#include "compiler/compile.h"
#include "core/pipeline.h"
#include "hmm/hmm.h"
#include "util/rng.h"
#include "workloads/workloads.h"

using namespace reason;

int
main()
{
    workloads::TaskBundle bundle = workloads::generate(
        workloads::DatasetId::CoAuthor, workloads::TaskScale::Small, 33);
    const hmm::Hmm &model = bundle.hmms.model;
    std::printf("HMM: %u states, %u symbols, %zu active transitions\n",
                model.numStates(), model.numSymbols(),
                model.numActiveTransitions());

    // Prune by posterior usage over the calibration sequences.
    hmm::HmmPruneResult pruned = hmm::pruneByPosterior(
        model, bundle.hmms.calibration, 1e-4);
    std::printf("pruning: -%llu transitions, -%llu emissions "
                "(-%.1f%% parameters)\n",
                static_cast<unsigned long long>(
                    pruned.transitionsRemoved),
                static_cast<unsigned long long>(
                    pruned.emissionsRemoved),
                pruned.parameterReduction * 100.0);

    // Compile the forward-likelihood DAG of the first query and run it.
    const hmm::Sequence &query = bundle.hmms.queries.front();
    core::Dag dag = core::buildFromHmm(pruned.pruned, query);
    arch::ArchConfig cfg;
    compiler::Program prog =
        compiler::compile(dag, cfg.compilerTarget());
    arch::Accelerator accel(cfg);
    arch::ExecutionResult r = accel.run(prog, {});
    double want =
        std::exp(hmm::sequenceLogLikelihood(pruned.pruned, query));
    std::printf("\nforward likelihood: accel %.6g vs software %.6g\n",
                r.rootValue, want);
    std::printf("cycles per sequence: %llu (%.2f us)\n",
                static_cast<unsigned long long>(r.cycles),
                r.seconds(cfg) * 1e6);

    // Constraint-satisfying decode success over the query set.
    double success_full = workloads::hmmConstraintSuccess(
        model, bundle.hmms.queries, bundle.hmms.constraints);
    double success_pruned = workloads::hmmConstraintSuccess(
        pruned.pruned, bundle.hmms.queries, bundle.hmms.constraints);
    std::printf("\ninfill success rate: %.1f%% full model, "
                "%.1f%% pruned model\n",
                success_full * 100.0, success_pruned * 100.0);

    // Show one decoded path with its constraints.
    hmm::ViterbiResult v = hmm::viterbi(pruned.pruned, query);
    std::printf("decoded path (first 16 states):");
    for (size_t t = 0; t < v.path.size() && t < 16; ++t)
        std::printf(" %u", v.path[t]);
    std::printf("\nconstraints (pos->state):");
    for (size_t i = 0; i < bundle.hmms.constraints.size() && i < 6; ++i)
        std::printf(" %u->%u", bundle.hmms.constraints[i].first,
                    bundle.hmms.constraints[i].second);
    std::printf("\n");
    return 0;
}
