/**
 * @file
 * AVX2 kernel table for the runtime dispatcher.  Built with -mavx2
 * appended (see CMakeLists.txt); self-gates on the raw compiler macros
 * rather than trusting the build system, so a -march=native build that
 * already targets AVX-512 (where this TU would duplicate the AVX-512
 * table) or a scalar-forced build exports only a null accessor.
 */

#include "util/simd_dispatch.h"

#if defined(__AVX2__) && !defined(__AVX512F__) && \
    !defined(REASON_FORCE_SCALAR)

#define REASON_SIMD_KERNEL_ACCESSOR avx2KernelTable
#include "util/simd_kernels.inc"

#else

namespace reason {
namespace simd {
namespace detail {

const KernelTable *
avx2KernelTable()
{
    return nullptr;
}

} // namespace detail
} // namespace simd
} // namespace reason

#endif
