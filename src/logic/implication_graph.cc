#include "logic/implication_graph.h"

#include <algorithm>

#include "util/logging.h"

namespace reason {
namespace logic {

ImplicationGraph::ImplicationGraph(const CnfFormula &formula)
{
    adj_.resize(size_t(formula.numVars()) * 2);
    for (const auto &clause : formula.clauses()) {
        if (clause.size() != 2)
            continue;
        Lit a = clause[0];
        Lit b = clause[1];
        if (a.var() == b.var())
            continue; // tautology or duplicate-literal clause
        adj_[(~a).code()].push_back(b);
        adj_[(~b).code()].push_back(a);
        numEdges_ += 2;
    }
}

const std::vector<Lit> &
ImplicationGraph::successors(Lit from) const
{
    return adj_.at(from.code());
}

const std::vector<bool> &
ImplicationGraph::reachableSet(Lit from)
{
    auto it = memo_.find(from.code());
    if (it != memo_.end())
        return it->second;

    std::vector<bool> visited(adj_.size(), false);
    std::vector<Lit> stack;
    for (Lit next : adj_[from.code()]) {
        if (!visited[next.code()]) {
            visited[next.code()] = true;
            stack.push_back(next);
        }
    }
    while (!stack.empty()) {
        Lit cur = stack.back();
        stack.pop_back();
        for (Lit next : adj_[cur.code()]) {
            if (!visited[next.code()]) {
                visited[next.code()] = true;
                stack.push_back(next);
            }
        }
    }
    return memo_.emplace(from.code(), std::move(visited)).first->second;
}

bool
ImplicationGraph::reachable(Lit from, Lit to)
{
    return reachableSet(from)[to.code()];
}

bool
ImplicationGraph::isFailedLiteral(Lit l)
{
    return reachable(l, ~l);
}

CnfPruneResult
pruneCnf(const CnfFormula &formula)
{
    CnfPruneResult res;
    ImplicationGraph graph(formula);

    // Phase 1: failed literal detection.  a -> ~a means a is false in all
    // models; record the forced polarity.
    std::vector<LBool> forced(formula.numVars(), LBool::Undef);
    for (uint32_t v = 0; v < formula.numVars(); ++v) {
        Lit pos = Lit::make(v, false);
        Lit neg = Lit::make(v, true);
        bool pos_failed = graph.isFailedLiteral(pos);
        bool neg_failed = graph.isFailedLiteral(neg);
        if (pos_failed && neg_failed) {
            // Both polarities failed: formula is unsatisfiable.  Emit the
            // canonical empty-clause formula.
            res.pruned = CnfFormula(formula.numVars());
            res.pruned.addClause(Clause{});
            res.clausesRemoved = formula.numClauses();
            res.literalsRemoved = formula.numLiterals();
            res.literalReduction = 1.0;
            res.failedLiterals += 2;
            return res;
        }
        if (pos_failed) {
            forced[v] = LBool::False;
            ++res.failedLiterals;
        } else if (neg_failed) {
            forced[v] = LBool::True;
            ++res.failedLiterals;
        }
    }

    // Phase 2: rebuild clauses under forced assignments, then apply
    // sequential hidden-literal elimination.
    CnfFormula out(formula.numVars());
    // Re-assert forced variables as units so equivalence is preserved.
    for (uint32_t v = 0; v < formula.numVars(); ++v)
        if (forced[v] != LBool::Undef)
            out.addClause({Lit::make(v, forced[v] == LBool::False)});

    for (const auto &clause : formula.clauses()) {
        // Apply forced assignments.
        bool satisfied = false;
        Clause current;
        for (const Lit &l : clause) {
            LBool f = forced[l.var()];
            if (f == LBool::Undef) {
                current.push_back(l);
                continue;
            }
            bool lit_true = (f == LBool::True) != l.negated();
            if (lit_true) {
                satisfied = true;
                break;
            }
            ++res.literalsRemoved; // literal falsified by failed-literal
        }
        if (satisfied) {
            ++res.clausesRemoved;
            res.literalsRemoved += clause.size();
            continue;
        }

        // Sequential hidden-literal elimination: drop lit i when some
        // still-present lit j is reachable from it.
        bool removed_any = true;
        while (removed_any && current.size() > 1) {
            removed_any = false;
            for (size_t i = 0; i < current.size(); ++i) {
                const auto &reach = graph.reachableSet(current[i]);
                for (size_t j = 0; j < current.size(); ++j) {
                    if (i == j)
                        continue;
                    if (reach[current[j].code()]) {
                        current.erase(current.begin() +
                                      static_cast<long>(i));
                        ++res.literalsRemoved;
                        removed_any = true;
                        break;
                    }
                }
                if (removed_any)
                    break;
            }
        }
        out.addClause(std::move(current));
    }

    size_t before = formula.numLiterals();
    size_t after = out.numLiterals();
    res.literalReduction =
        before == 0 ? 0.0
                    : 1.0 - static_cast<double>(after) /
                                static_cast<double>(before);
    res.pruned = std::move(out);
    return res;
}

} // namespace logic
} // namespace reason
