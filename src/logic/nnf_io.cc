#include "logic/nnf_io.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "util/logging.h"

namespace reason {
namespace logic {

std::string
toC2dFormat(const DnnfGraph &graph)
{
    // c2d's root is the *last* node, and readers expect every node to
    // matter; emit only nodes reachable from the root, renumbered in
    // topological order (the compiler's hash-consed singletons may
    // leave unused True/False/Lit nodes behind).
    std::vector<bool> reachable(graph.numNodes(), false);
    reachable[graph.root()] = true;
    for (size_t i = graph.numNodes(); i-- > 0;) {
        if (!reachable[i])
            continue;
        for (NnfId c : graph.node(NnfId(i)).children)
            reachable[c] = true;
    }
    std::vector<NnfId> renumber(graph.numNodes(), kInvalidNnf);
    size_t kept = 0, edges = 0;
    for (size_t i = 0; i < graph.numNodes(); ++i) {
        if (!reachable[i])
            continue;
        renumber[i] = NnfId(kept++);
        edges += graph.node(NnfId(i)).children.size();
    }

    std::ostringstream os;
    os << "nnf " << kept << " " << edges << " " << graph.numVars()
       << "\n";
    for (size_t i = 0; i < graph.numNodes(); ++i) {
        if (!reachable[i])
            continue;
        const NnfNode &node = graph.node(NnfId(i));
        switch (node.type) {
          case NnfType::True:
            os << "A 0\n";
            break;
          case NnfType::False:
            os << "O 0 0\n";
            break;
          case NnfType::Lit:
            os << "L " << node.lit.toDimacs() << "\n";
            break;
          case NnfType::And:
            os << "A " << node.children.size();
            for (NnfId c : node.children)
                os << " " << renumber[c];
            os << "\n";
            break;
          case NnfType::Or:
            // c2d records the decision variable 1-based (0 = none).
            os << "O " << (node.decisionVar + 1) << " "
               << node.children.size();
            for (NnfId c : node.children)
                os << " " << renumber[c];
            os << "\n";
            break;
        }
    }
    return os.str();
}

// ---------------------------------------------------------------------------
// Streaming pull parser
// ---------------------------------------------------------------------------

namespace {

/** Id-domain caps checked against the declared header counts before
 *  any use: node ids must fit NnfId with kInvalidNnf reserved, edge
 *  counts must fit the 32-bit CSR offsets of the flat consumers, and
 *  variables must fit the Lit packing (2*var+polarity in 32 bits). */
constexpr uint64_t kMaxDeclaredNodes = 0xfffffffeull;
constexpr uint64_t kMaxDeclaredEdges = 0xfffffffeull;
constexpr uint64_t kMaxDeclaredVars = 0x7fffffffull;

/** Upper bound on any reservation made from a *declared* count; real
 *  growth beyond this is paid only as actual tokens arrive, so a
 *  hostile header cannot trigger an oversized allocation. */
constexpr size_t kMaxUpfrontReserve = size_t(1) << 16;

} // namespace

bool
NnfStreamParser::fail(size_t line, std::string message)
{
    if (!failed_) {
        failed_ = true;
        error_.message = std::move(message);
        error_.line = line;
    }
    return false;
}

bool
NnfStreamParser::nextLine()
{
    while (std::getline(in_, line_)) {
        ++lineNo_;
        linePos_ = 0;
        if (!line_.empty() && line_.back() == '\r')
            line_.pop_back(); // tolerate CRLF files
        if (line_.find_first_not_of(" \t") != std::string::npos)
            return true; // skip blank lines
    }
    return false;
}

bool
NnfStreamParser::nextToken(std::string_view *out)
{
    size_t b = line_.find_first_not_of(" \t", linePos_);
    if (b == std::string::npos)
        return false;
    size_t e = line_.find_first_of(" \t", b);
    if (e == std::string::npos)
        e = line_.size();
    *out = std::string_view(line_).substr(b, e - b);
    linePos_ = e;
    return true;
}

bool
NnfStreamParser::parseInt(int64_t *out, const char *what)
{
    std::string_view tok;
    if (!nextToken(&tok))
        return fail(lineNo_,
                    std::string("truncated line: missing ") + what);
    std::string buf(tok);
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(buf.c_str(), &end, 10);
    if (errno == ERANGE || end != buf.c_str() + buf.size())
        return fail(lineNo_, "bad integer '" + buf + "' for " + what);
    *out = v;
    return true;
}

bool
NnfStreamParser::parseCount(uint64_t *out, const char *what)
{
    int64_t v = 0;
    if (!parseInt(&v, what))
        return false;
    if (v < 0)
        return fail(lineNo_, std::string("negative ") + what);
    *out = uint64_t(v);
    return true;
}

bool
NnfStreamParser::readChildren(size_t count)
{
    children_.clear();
    // The declared arity is *not* trusted for the reservation; the
    // buffer grows only as actual child tokens arrive, so a huge
    // arity on a truncated line fails cleanly instead of allocating.
    children_.reserve(std::min(count, kMaxUpfrontReserve));
    for (size_t k = 0; k < count; ++k) {
        int64_t v = 0;
        if (!parseInt(&v, "child reference"))
            return false;
        if (v < 0 || uint64_t(v) >= nodesSeen_)
            return fail(lineNo_,
                        "bad child reference " + std::to_string(v) +
                            " in node " + std::to_string(nodesSeen_) +
                            " (children must reference earlier nodes)");
        children_.push_back(NnfId(v));
    }
    return true;
}

NnfStreamParser::NnfStreamParser(std::istream &in)
    : in_(in)
{
    if (!nextLine()) {
        fail(lineNo_, "missing 'nnf' header");
        return;
    }
    std::string_view tag;
    if (!nextToken(&tag) || tag != "nnf") {
        fail(lineNo_, "missing 'nnf' header");
        return;
    }
    uint64_t nodes = 0, edges = 0, vars = 0;
    if (!parseCount(&nodes, "header node count") ||
        !parseCount(&edges, "header edge count") ||
        !parseCount(&vars, "header variable count"))
        return;
    if (nodes > kMaxDeclaredNodes) {
        fail(lineNo_, "declared node count " + std::to_string(nodes) +
                          " overflows the node id domain");
        return;
    }
    if (edges > kMaxDeclaredEdges) {
        fail(lineNo_, "declared edge count " + std::to_string(edges) +
                          " overflows the edge id domain");
        return;
    }
    if (vars > kMaxDeclaredVars) {
        fail(lineNo_, "declared variable count " + std::to_string(vars) +
                          " overflows the literal domain");
        return;
    }
    std::string_view extra;
    if (nextToken(&extra)) {
        fail(lineNo_, "trailing tokens after the 'nnf' header");
        return;
    }
    header_.numNodes = nodes;
    header_.numEdges = edges;
    header_.numVars = uint32_t(vars);
    headerOk_ = true;
}

NnfStreamParser::Status
NnfStreamParser::next(Node *out)
{
    if (failed_)
        return Status::Error;
    if (!nextLine()) {
        if (nodesSeen_ != header_.numNodes) {
            fail(lineNo_,
                 "header declared " + std::to_string(header_.numNodes) +
                     " nodes, found " + std::to_string(nodesSeen_));
            return Status::Error;
        }
        if (edgesSeen_ != header_.numEdges) {
            fail(lineNo_,
                 "header declared " + std::to_string(header_.numEdges) +
                     " edges, found " + std::to_string(edgesSeen_));
            return Status::Error;
        }
        if (nodesSeen_ == 0) {
            fail(lineNo_, "empty graph");
            return Status::Error;
        }
        return Status::End;
    }
    if (nodesSeen_ == header_.numNodes) {
        fail(lineNo_, "more nodes than the declared " +
                          std::to_string(header_.numNodes));
        return Status::Error;
    }

    std::string_view tag;
    nextToken(&tag); // the line is non-blank, so this succeeds
    Node node;
    if (tag == "L") {
        int64_t d = 0;
        if (!parseInt(&d, "literal"))
            return Status::Error;
        if (d == 0) {
            fail(lineNo_, "bad literal line: literal 0");
            return Status::Error;
        }
        // Range check before negating so INT64_MIN cannot overflow.
        if (d > int64_t(header_.numVars) ||
            d < -int64_t(header_.numVars)) {
            fail(lineNo_,
                 "literal variable " + std::to_string(d) +
                     " out of the declared " +
                     std::to_string(header_.numVars));
            return Status::Error;
        }
        node.type = NnfType::Lit;
        node.lit = Lit::fromDimacs(d);
    } else if (tag == "A") {
        uint64_t k = 0;
        if (!parseCount(&k, "conjunction arity"))
            return Status::Error;
        if (k == 0) {
            node.type = NnfType::True;
        } else {
            if (k > header_.numEdges - edgesSeen_) {
                fail(lineNo_,
                     "conjunction arity " + std::to_string(k) +
                         " exceeds the remaining declared edge budget");
                return Status::Error;
            }
            if (!readChildren(size_t(k)))
                return Status::Error;
            edgesSeen_ += k;
            node.type = NnfType::And;
            node.children = children_;
        }
    } else if (tag == "O") {
        int64_t decision = 0;
        uint64_t k = 0;
        if (!parseInt(&decision, "decision variable"))
            return Status::Error;
        if (decision < 0) {
            fail(lineNo_, "bad disjunction line: negative decision");
            return Status::Error;
        }
        if (!parseCount(&k, "disjunction arity"))
            return Status::Error;
        if (k == 0) {
            node.type = NnfType::False;
        } else {
            if (k != 2) {
                fail(lineNo_, "decision Or must have two children, got " +
                                  std::to_string(k));
                return Status::Error;
            }
            if (decision == 0) {
                fail(lineNo_,
                     "nonempty Or without a decision variable");
                return Status::Error;
            }
            if (uint64_t(decision) > header_.numVars) {
                fail(lineNo_,
                     "decision variable " + std::to_string(decision) +
                         " out of the declared " +
                         std::to_string(header_.numVars));
                return Status::Error;
            }
            if (2 > header_.numEdges - edgesSeen_) {
                fail(lineNo_,
                     "disjunction exceeds the declared edge budget");
                return Status::Error;
            }
            if (!readChildren(2))
                return Status::Error;
            edgesSeen_ += 2;
            node.type = NnfType::Or;
            node.decisionVar = uint32_t(decision - 1);
            node.children = children_;
        }
    } else {
        fail(lineNo_,
             "unknown node tag '" + std::string(tag) + "'");
        return Status::Error;
    }

    std::string_view extra;
    if (nextToken(&extra)) {
        fail(lineNo_, "trailing tokens after node " +
                          std::to_string(nodesSeen_));
        return Status::Error;
    }
    ++nodesSeen_;
    *out = node;
    return Status::Node;
}

// ---------------------------------------------------------------------------
// Whole-graph loads
// ---------------------------------------------------------------------------

DnnfGraph
parseC2dFormat(const std::string &text, NnfError *err)
{
    *err = NnfError{};
    std::istringstream is(text);
    NnfStreamParser parser(is);
    std::vector<NnfNode> nodes;
    std::vector<size_t> nodeLine;

    NnfStreamParser::Node item;
    for (;;) {
        NnfStreamParser::Status st = parser.next(&item);
        if (st == NnfStreamParser::Status::Error) {
            *err = parser.error();
            return DnnfGraph();
        }
        if (st == NnfStreamParser::Status::End)
            break;
        NnfNode node;
        node.type = item.type;
        node.lit = item.lit;
        node.decisionVar = item.decisionVar;
        node.children.assign(item.children.begin(),
                             item.children.end());
        if (nodes.empty()) {
            size_t reserve = std::min(size_t(parser.header().numNodes),
                                      kMaxUpfrontReserve);
            nodes.reserve(reserve);
            nodeLine.reserve(reserve);
        }
        nodeLine.push_back(parser.line());
        nodes.push_back(std::move(node));
    }

    // fromNodes() panic()s on non-decomposable input (an internal
    // invariant for compiler-produced graphs), so vet And scopes here
    // and turn the violation into a clean error instead.
    std::vector<std::vector<uint32_t>> scope(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
        const NnfNode &node = nodes[i];
        switch (node.type) {
          case NnfType::True:
          case NnfType::False:
            break;
          case NnfType::Lit:
            scope[i].push_back(node.lit.var());
            break;
          case NnfType::And:
          case NnfType::Or: {
            size_t total = 0;
            for (NnfId c : node.children) {
                scope[i].insert(scope[i].end(), scope[c].begin(),
                                scope[c].end());
                total += scope[c].size();
            }
            std::sort(scope[i].begin(), scope[i].end());
            scope[i].erase(
                std::unique(scope[i].begin(), scope[i].end()),
                scope[i].end());
            if (node.type == NnfType::And && scope[i].size() != total) {
                err->message =
                    "And children must have pairwise disjoint scopes";
                err->line = nodeLine[i];
                return DnnfGraph();
            }
            break;
          }
        }
    }

    NnfId root = NnfId(nodes.size() - 1); // c2d: the last node is the root
    return DnnfGraph::fromNodes(std::move(nodes), root,
                                parser.header().numVars);
}

DnnfGraph
parseC2dFormat(const std::string &text)
{
    NnfError err;
    DnnfGraph g = parseC2dFormat(text, &err);
    if (!err.ok())
        fatal("parseC2dFormat: %s (line %zu)", err.message.c_str(),
              err.line);
    return g;
}

} // namespace logic
} // namespace reason
