/**
 * @file
 * Seed-vs-flat evaluation benchmark: times repeated Circuit
 * log-likelihood passes on a >=100k-node random circuit through the
 * reference AoS walker (Circuit::logLikelihood, one allocation per
 * call) and the flat CSR engine (pc::CircuitEvaluator, allocation-free
 * batched), plus the linear-domain Dag-vs-core::Evaluator pair.
 *
 * Emits one machine-readable JSON line per engine pair (prefix
 * "BENCH_JSON ") so the perf trajectory can be tracked across PRs:
 *
 *   ./bench_eval [num_vars] [reps]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/builders.h"
#include "core/flat.h"
#include "pc/flat_pc.h"
#include "pc/pc.h"
#include "util/numeric.h"
#include "util/rng.h"

using namespace reason;
using Clock = std::chrono::steady_clock;

namespace {

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    uint32_t num_vars = argc > 1 ? uint32_t(std::atoi(argv[1])) : 1500;
    size_t reps = argc > 2 ? size_t(std::atoi(argv[2])) : 1000;
    if (num_vars < 2 || reps == 0) {
        std::fprintf(stderr,
                     "usage: bench_eval [num_vars >= 2] [reps >= 1]\n");
        return 1;
    }

    Rng rng(2026);
    // num_sums=8, num_inputs=16 yields ~72 interior nodes per region:
    // 1500 vars -> ~120k nodes, ~380k edges.
    pc::Circuit circuit = pc::randomCircuit(rng, num_vars, 2, 8, 16);
    std::printf("circuit: %zu nodes, %zu edges, %u vars\n",
                circuit.numNodes(), circuit.numEdges(),
                circuit.numVars());

    std::vector<pc::Assignment> data =
        pc::sampleDataset(rng, circuit, reps);

    // --- log-domain: Circuit::logLikelihood vs flat batched ------------
    volatile double sink = 0.0;
    // Warm-up both paths (page in the circuit, prime caches).
    sink += circuit.logLikelihood(data[0]);

    Clock::time_point t0 = Clock::now();
    pc::FlatCircuit flat(circuit);
    pc::CircuitEvaluator eval(flat);
    double lower_ms = msSince(t0);
    sink += eval.logLikelihood(data[0]);

    t0 = Clock::now();
    double seed_acc = 0.0;
    for (const auto &x : data)
        seed_acc += circuit.logLikelihood(x);
    double seed_ms = msSince(t0);

    std::vector<double> flat_ll(data.size());
    t0 = Clock::now();
    eval.logLikelihoodBatch(data, flat_ll);
    double flat_ms = msSince(t0);

    double flat_acc = 0.0;
    double max_diff = 0.0;
    for (size_t i = 0; i < data.size(); ++i) {
        flat_acc += flat_ll[i];
        double d = std::fabs(flat_ll[i] -
                             circuit.logLikelihood(data[i]));
        max_diff = std::max(max_diff, d);
    }
    double speedup = seed_ms / (flat_ms + lower_ms);
    std::printf("BENCH_JSON {\"bench\":\"bench_eval\",\"engine\":"
                "\"circuit_loglik\",\"nodes\":%zu,\"edges\":%zu,"
                "\"reps\":%zu,\"seed_ms\":%.3f,\"flat_ms\":%.3f,"
                "\"lower_ms\":%.3f,\"speedup\":%.2f,"
                "\"max_abs_diff\":%.3e}\n",
                circuit.numNodes(), circuit.numEdges(), reps, seed_ms,
                flat_ms, lower_ms, speedup, max_diff);
    std::printf("seed %.3f ms, flat %.3f ms (+%.3f ms lowering): "
                "%.2fx %s (target >=5x), max |diff| %.2e\n",
                seed_ms, flat_ms, lower_ms, speedup,
                speedup >= 5.0 ? "PASS" : "BELOW TARGET", max_diff);

    // --- linear domain: Dag::evaluate vs core::Evaluator ---------------
    core::Dag dag = core::buildFromCircuit(circuit);
    const size_t dag_reps = reps / 4 ? reps / 4 : 1;
    std::vector<double> inputs(dag.numInputs(), 1.0);

    sink += dag.evaluateRoot(inputs);
    t0 = Clock::now();
    double dag_acc = 0.0;
    for (size_t i = 0; i < dag_reps; ++i) {
        inputs[i % inputs.size()] = 0.5 + double(i % 3) * 0.25;
        dag_acc += dag.evaluateRoot(inputs);
    }
    double dag_seed_ms = msSince(t0);

    t0 = Clock::now();
    core::FlatGraph fg = core::lowerDag(dag);
    core::Evaluator fev(fg);
    double dag_lower_ms = msSince(t0);
    sink += fev.evaluateRoot(inputs);

    std::fill(inputs.begin(), inputs.end(), 1.0);
    t0 = Clock::now();
    double dag_flat_acc = 0.0;
    for (size_t i = 0; i < dag_reps; ++i) {
        inputs[i % inputs.size()] = 0.5 + double(i % 3) * 0.25;
        dag_flat_acc += fev.evaluateRoot(inputs);
    }
    double dag_flat_ms = msSince(t0);
    double dag_speedup = dag_seed_ms / (dag_flat_ms + dag_lower_ms);
    std::printf("BENCH_JSON {\"bench\":\"bench_eval\",\"engine\":"
                "\"dag_eval\",\"nodes\":%zu,\"edges\":%zu,\"reps\":%zu,"
                "\"seed_ms\":%.3f,\"flat_ms\":%.3f,\"lower_ms\":%.3f,"
                "\"speedup\":%.2f,\"max_abs_diff\":%.3e}\n",
                dag.numNodes(), dag.numEdges(), dag_reps, dag_seed_ms,
                dag_flat_ms, dag_lower_ms, dag_speedup,
                std::fabs(dag_acc - dag_flat_acc));
    std::printf("dag: seed %.3f ms, flat %.3f ms: %.2fx\n", dag_seed_ms,
                dag_flat_ms, dag_speedup);

    (void)sink;
    (void)seed_acc;
    (void)flat_acc;
    return 0;
}
