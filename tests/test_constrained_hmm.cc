/**
 * @file
 * Tests for constrained and k-best HMM decoding, validated against
 * brute-force path enumeration on small models: constrained Viterbi,
 * constrained likelihood, constraint satisfaction probability, k-best
 * list Viterbi, and posterior decoding.
 */

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "hmm/constrained.h"
#include "hmm/hmm.h"
#include "util/numeric.h"
#include "util/rng.h"

using namespace reason;
using namespace reason::hmm;

namespace {

/** All state paths of the given length. */
std::vector<std::vector<uint32_t>>
allPaths(uint32_t num_states, size_t len)
{
    std::vector<std::vector<uint32_t>> paths;
    uint64_t combos = 1;
    for (size_t t = 0; t < len; ++t)
        combos *= num_states;
    for (uint64_t n = 0; n < combos; ++n) {
        std::vector<uint32_t> path(len);
        uint64_t rem = n;
        for (size_t t = 0; t < len; ++t) {
            path[t] = uint32_t(rem % num_states);
            rem /= num_states;
        }
        paths.push_back(std::move(path));
    }
    return paths;
}

/** log P(path, obs). */
double
pathLogProb(const Hmm &h, const std::vector<uint32_t> &path,
            const Sequence &obs)
{
    auto lp = [](double p) { return p > 0.0 ? std::log(p) : kLogZero; };
    double acc = lp(h.initial(path[0])) + lp(h.emission(path[0], obs[0]));
    for (size_t t = 1; t < path.size(); ++t) {
        acc += lp(h.transition(path[t - 1], path[t]));
        acc += lp(h.emission(path[t], obs[t]));
    }
    return acc;
}

bool
satisfies(const std::vector<uint32_t> &path, const DecodeConstraints &dc)
{
    for (size_t t = 0; t < path.size(); ++t)
        if (!dc.admits(uint32_t(t), path[t]))
            return false;
    return true;
}

} // namespace

struct ConstrainedParam
{
    uint32_t states;
    uint32_t symbols;
    size_t length;
    uint64_t seed;
    bool banded;
};

class ConstrainedSweep : public ::testing::TestWithParam<ConstrainedParam>
{
  protected:
    Hmm
    make() const
    {
        Rng rng(GetParam().seed);
        auto p = GetParam();
        return p.banded ? Hmm::banded(rng, p.states, p.symbols, 1, 0.5)
                        : Hmm::random(rng, p.states, p.symbols);
    }

    Sequence
    observe(const Hmm &h) const
    {
        Rng rng(GetParam().seed + 1);
        Sequence obs;
        h.sample(rng, GetParam().length, &obs);
        return obs;
    }

    DecodeConstraints
    constraints() const
    {
        auto p = GetParam();
        DecodeConstraints dc;
        dc.required.push_back({uint32_t(p.length / 2), p.states / 2});
        dc.forbidden.push_back({0, p.states - 1});
        if (p.length >= 4)
            dc.forbidden.push_back({uint32_t(p.length - 1), 0});
        return dc;
    }
};

TEST_P(ConstrainedSweep, ViterbiMatchesBruteForce)
{
    Hmm h = make();
    Sequence obs = observe(h);
    DecodeConstraints dc = constraints();

    ViterbiResult got = constrainedViterbi(h, obs, dc);

    double best = kLogZero;
    for (const auto &path : allPaths(h.numStates(), obs.size())) {
        if (!satisfies(path, dc))
            continue;
        best = std::max(best, pathLogProb(h, path, obs));
    }
    if (best == kLogZero) {
        EXPECT_EQ(got.logProb, kLogZero);
        EXPECT_TRUE(got.path.empty());
        return;
    }
    EXPECT_NEAR(got.logProb, best, 1e-9);
    EXPECT_TRUE(satisfies(got.path, dc));
    EXPECT_NEAR(pathLogProb(h, got.path, obs), got.logProb, 1e-9);
}

TEST_P(ConstrainedSweep, LikelihoodMatchesPathSum)
{
    Hmm h = make();
    Sequence obs = observe(h);
    DecodeConstraints dc = constraints();

    double acc = kLogZero;
    for (const auto &path : allPaths(h.numStates(), obs.size())) {
        if (!satisfies(path, dc))
            continue;
        acc = logAdd(acc, pathLogProb(h, path, obs));
    }
    double got = constrainedLogLikelihood(h, obs, dc);
    if (acc == kLogZero)
        EXPECT_EQ(got, kLogZero);
    else
        EXPECT_NEAR(got, acc, 1e-9);
}

TEST_P(ConstrainedSweep, UnconstrainedReducesToStandard)
{
    Hmm h = make();
    Sequence obs = observe(h);
    DecodeConstraints none;

    ViterbiResult plain = viterbi(h, obs);
    ViterbiResult constrained = constrainedViterbi(h, obs, none);
    EXPECT_NEAR(constrained.logProb, plain.logProb, 1e-9);

    EXPECT_NEAR(constrainedLogLikelihood(h, obs, none),
                sequenceLogLikelihood(h, obs), 1e-9);
    EXPECT_NEAR(constraintSatisfactionProbability(h, obs, none), 1.0,
                1e-12);
}

TEST_P(ConstrainedSweep, SatisfactionProbabilityMatchesEnumeration)
{
    Hmm h = make();
    Sequence obs = observe(h);
    DecodeConstraints dc = constraints();

    double sat = kLogZero, all = kLogZero;
    for (const auto &path : allPaths(h.numStates(), obs.size())) {
        double lp = pathLogProb(h, path, obs);
        all = logAdd(all, lp);
        if (satisfies(path, dc))
            sat = logAdd(sat, lp);
    }
    double expected = sat == kLogZero ? 0.0 : std::exp(sat - all);
    EXPECT_NEAR(constraintSatisfactionProbability(h, obs, dc), expected,
                1e-9);
}

TEST_P(ConstrainedSweep, KBestMatchesBruteForceTopK)
{
    Hmm h = make();
    Sequence obs = observe(h);
    const uint32_t k = 5;

    std::vector<double> expected;
    for (const auto &path : allPaths(h.numStates(), obs.size())) {
        double lp = pathLogProb(h, path, obs);
        if (lp != kLogZero)
            expected.push_back(lp);
    }
    std::sort(expected.rbegin(), expected.rend());
    if (expected.size() > k)
        expected.resize(k);

    auto got = kBestPaths(h, obs, k);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_NEAR(got[i].logProb, expected[i], 1e-9) << "rank " << i;
        EXPECT_NEAR(pathLogProb(h, got[i].path, obs), got[i].logProb,
                    1e-9);
    }
    // Paths must be pairwise distinct.
    for (size_t i = 0; i < got.size(); ++i)
        for (size_t j = i + 1; j < got.size(); ++j)
            EXPECT_NE(got[i].path, got[j].path);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConstrainedSweep,
    ::testing::Values(ConstrainedParam{2, 3, 5, 1, false},
                      ConstrainedParam{3, 3, 5, 2, false},
                      ConstrainedParam{3, 4, 6, 3, false},
                      ConstrainedParam{4, 3, 5, 4, false},
                      ConstrainedParam{4, 4, 6, 5, true},
                      ConstrainedParam{5, 4, 5, 6, true},
                      ConstrainedParam{3, 5, 7, 7, true},
                      ConstrainedParam{2, 2, 8, 8, false}));

TEST(Constrained, KBestFirstEqualsViterbi)
{
    Rng rng(11);
    Hmm h = Hmm::random(rng, 6, 5);
    Sequence obs;
    h.sample(rng, 12, &obs);
    auto best = kBestPaths(h, obs, 1);
    ASSERT_EQ(best.size(), 1u);
    ViterbiResult vit = viterbi(h, obs);
    EXPECT_NEAR(best[0].logProb, vit.logProb, 1e-9);
    EXPECT_EQ(best[0].path, vit.path);
}

TEST(Constrained, InfeasibleConstraintsDetected)
{
    Rng rng(12);
    Hmm h = Hmm::random(rng, 3, 3);
    Sequence obs;
    h.sample(rng, 4, &obs);
    DecodeConstraints dc;
    // Forbid every state at position 2.
    for (uint32_t s = 0; s < 3; ++s)
        dc.forbidden.push_back({2, s});
    ViterbiResult r = constrainedViterbi(h, obs, dc);
    EXPECT_EQ(r.logProb, kLogZero);
    EXPECT_EQ(constraintSatisfactionProbability(h, obs, dc), 0.0);
}

TEST(Constrained, RequiredStatePinsPath)
{
    Rng rng(13);
    Hmm h = Hmm::random(rng, 4, 4);
    Sequence obs;
    h.sample(rng, 6, &obs);
    for (uint32_t s = 0; s < 4; ++s) {
        DecodeConstraints dc;
        dc.required.push_back({3, s});
        ViterbiResult r = constrainedViterbi(h, obs, dc);
        if (r.logProb != kLogZero)
            EXPECT_EQ(r.path[3], s);
    }
}

TEST(Constrained, PosteriorDecodeMatchesEnumeration)
{
    Rng rng(14);
    Hmm h = Hmm::random(rng, 3, 3);
    Sequence obs;
    h.sample(rng, 5, &obs);

    // Brute-force per-position posterior.
    std::vector<std::vector<double>> post(
        obs.size(), std::vector<double>(3, kLogZero));
    for (const auto &path : allPaths(3, obs.size())) {
        double lp = pathLogProb(h, path, obs);
        if (lp == kLogZero)
            continue;
        for (size_t t = 0; t < path.size(); ++t)
            post[t][path[t]] = logAdd(post[t][path[t]], lp);
    }
    auto decoded = posteriorDecode(h, obs);
    ASSERT_EQ(decoded.size(), obs.size());
    for (size_t t = 0; t < obs.size(); ++t) {
        uint32_t expected = uint32_t(
            std::max_element(post[t].begin(), post[t].end()) -
            post[t].begin());
        EXPECT_EQ(decoded[t], expected) << "position " << t;
    }
}

TEST(Constrained, ValidateRejectsContradictions)
{
    DecodeConstraints dc;
    dc.required.push_back({1, 0});
    dc.required.push_back({1, 2});
    EXPECT_DEATH(dc.validate(3, 4), "contradictory");
}

TEST(Constrained, ValidateRejectsOutOfRange)
{
    DecodeConstraints dc;
    dc.required.push_back({9, 0});
    EXPECT_DEATH(dc.validate(3, 4), "beyond length");
}
