/**
 * @file
 * DRAM timing-model tests (arch/dram): address-map bit slicing,
 * per-bank state-machine timing (tRCD/tRP/tCAS/tRAS), FR-FCFS
 * scheduling, bounded request queues, timing invariants over a random
 * corpus, determinism, DMA session row coalescing, and the DmaEngine /
 * BcpPipeline / Accelerator integration points.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "arch/accelerator.h"
#include "arch/dram.h"
#include "arch/memory.h"
#include "arch/symbolic.h"
#include "compiler/compile.h"
#include "dag_test_util.h"
#include "logic/cnf.h"
#include "util/rng.h"

using namespace reason;
using namespace reason::arch;

namespace {

ArchConfig
defaultCfg()
{
    return ArchConfig{};
}

/** Single-channel config: bank/row behavior without channel striping. */
ArchConfig
oneChannelCfg()
{
    ArchConfig cfg;
    cfg.dramChannels = 1;
    return cfg;
}

} // namespace

TEST(DramAddressMap, DecodeEncodeRoundTrip)
{
    ArchConfig cfg = defaultCfg();
    DramAddressMap map(cfg.dramChannels, cfg.dramRanksPerChannel,
                       cfg.dramBanksPerRank, cfg.dramRowBytes,
                       cfg.dramBurstBytes);
    Rng rng(42);
    for (int i = 0; i < 2000; ++i) {
        uint64_t addr = uint64_t(rng.uniformInt(0, (1 << 28) - 1));
        DramCoord c = map.decode(addr);
        EXPECT_LT(c.channel, map.channels());
        EXPECT_LT(c.rank, map.ranks());
        EXPECT_LT(c.bank, map.banksPerRank());
        EXPECT_LT(c.col, map.burstsPerRow());
        // encode returns the burst-aligned address.
        EXPECT_EQ(map.encode(c), addr - addr % map.burstBytes());
    }
}

TEST(DramAddressMap, SequentialBurstsStripeChannels)
{
    ArchConfig cfg = defaultCfg();
    DramAddressMap map(cfg.dramChannels, cfg.dramRanksPerChannel,
                       cfg.dramBanksPerRank, cfg.dramRowBytes,
                       cfg.dramBurstBytes);
    for (uint32_t i = 0; i < 4 * map.channels(); ++i) {
        DramCoord c = map.decode(uint64_t(i) * map.burstBytes());
        EXPECT_EQ(c.channel, i % map.channels())
            << "sequential bursts must rotate channels";
    }
}

TEST(DramAddressMap, RowSpanWindowSharesRow)
{
    ArchConfig cfg = defaultCfg();
    DramAddressMap map(cfg.dramChannels, cfg.dramRanksPerChannel,
                       cfg.dramBanksPerRank, cfg.dramRowBytes,
                       cfg.dramBurstBytes);
    const uint64_t span = map.rowSpanBytes();
    // Every burst inside one row-stripe window lands in row 0, bank 0.
    for (uint64_t a = 0; a < span; a += map.burstBytes()) {
        DramCoord c = map.decode(a);
        EXPECT_EQ(c.row, 0u);
        EXPECT_EQ(c.bank, 0u);
    }
    // The next window moves on (next bank at default geometry).
    DramCoord next = map.decode(span);
    EXPECT_TRUE(next.row != 0 || next.bank != 0);
}

TEST(DramTiming, ClosedBankPaysActivate)
{
    DramModel dram(defaultCfg());
    uint64_t done = dram.read(0, 0, 1);
    EXPECT_EQ(done, dram.minClosedRowLatencyCycles());
    EXPECT_EQ(dram.rowMisses(), 1u);
    EXPECT_EQ(dram.rowHits(), 0u);
}

TEST(DramTiming, OpenRowHitIsMinimumLatency)
{
    ArchConfig cfg = defaultCfg();
    DramModel dram(cfg);
    uint64_t t1 = dram.read(0, 0, 1);
    // Next column of the same open row, same channel 0 / bank 0.
    uint64_t same_row = uint64_t(cfg.dramBurstBytes) * cfg.dramChannels;
    uint64_t t2 = dram.read(t1, same_row, 1);
    EXPECT_EQ(t2 - t1, dram.minLatencyCycles());
    EXPECT_EQ(dram.rowHits(), 1u);
}

TEST(DramTiming, ConflictPaysTRasTRpAndActivate)
{
    ArchConfig cfg = defaultCfg();
    DramModel dram(cfg);
    uint64_t t1 = dram.read(0, 0, 1); // activates row 0 at cycle 0
    EXPECT_EQ(t1, 19u);               // tRCD 9 + tCAS 9 + burst 1
    // Same channel/bank, different row: burst index with row bit set
    // (ch 3 bits, col 6 bits, bank 3 bits -> row at bit 12).
    uint64_t conflicting = (uint64_t(1) << 12) * cfg.dramBurstBytes;
    ASSERT_EQ(dram.map().decode(conflicting).channel, 0u);
    ASSERT_EQ(dram.map().decode(conflicting).bank, 0u);
    ASSERT_EQ(dram.map().decode(conflicting).row, 1u);
    uint64_t t2 = dram.read(t1, conflicting, 1);
    // Precharge waits for tRAS (activate at 0 -> earliest PRE at 21),
    // then tRP + tRCD + tCAS + burst: 21 + 9 + 9 + 9 + 1 = 49.
    EXPECT_EQ(t2, 49u);
    EXPECT_EQ(dram.rowConflicts(), 1u);
}

TEST(DramTiming, FrFcfsServicesOpenRowFirst)
{
    DramModel dram(oneChannelCfg());
    // Batch: row 0 burst, row 1 burst (same bank), row 0 burst again.
    // FCFS order would pay two row switches; FR-FCFS reorders the
    // second row-0 burst ahead of the row-1 burst, leaving exactly one
    // conflict and one hit.
    const uint32_t bb = 32;
    std::vector<DramRequest> reqs = {
        {0, 1},                        // row 0, col 0: miss (activate)
        {(uint64_t(1) << 9) * bb, 1},  // row 1, col 0: conflict
        {bb, 1},                       // row 0, col 1: hit if reordered
    };
    ASSERT_EQ(dram.map().decode(reqs[1].addr).row, 1u);
    ASSERT_EQ(dram.map().decode(reqs[1].addr).bank, 0u);
    dram.readBatch(0, reqs);
    EXPECT_EQ(dram.rowMisses(), 1u);
    EXPECT_EQ(dram.rowHits(), 1u);
    EXPECT_EQ(dram.rowConflicts(), 1u);
}

TEST(DramTiming, QueueBoundRespected)
{
    ArchConfig cfg = defaultCfg();
    cfg.dramQueueDepth = 4;
    DramModel dram(cfg);
    // One large request floods a single channel's queue via many rows.
    std::vector<DramRequest> reqs;
    for (int i = 0; i < 200; ++i)
        reqs.push_back(
            {uint64_t(i) * cfg.dramChannels * cfg.dramBurstBytes, 1});
    dram.readBatch(0, reqs);
    EXPECT_LE(dram.maxQueueOccupancy(), 4u);
    EXPECT_EQ(dram.bursts(), 200u);
}

TEST(DramTiming, RandomCorpusRespectsInvariants)
{
    ArchConfig cfg = defaultCfg();
    DramModel dram(cfg);
    Rng rng(7);
    uint64_t now = 0;
    uint64_t last_done = 0;
    for (int i = 0; i < 5000; ++i) {
        now += uint64_t(rng.uniformInt(0, 6));
        uint64_t addr = uint64_t(rng.uniformInt(0, (8 << 20) - 1));
        size_t bytes = size_t(rng.uniformInt(1, 192));
        uint64_t done = dram.read(now, addr, bytes);
        // No response before the minimum (open-row) latency.
        ASSERT_GE(done, now + dram.minLatencyCycles());
        last_done = std::max(last_done, done);
    }
    // Sustained bandwidth at or below the structural peak.
    ASSERT_GT(last_done, 0u);
    double sustained = double(dram.bytesRead()) / double(last_done);
    EXPECT_LE(sustained, dram.peakBytesPerCycle() + 1e-9);
    // All bursts are classified exactly once.
    EXPECT_EQ(dram.rowHits() + dram.rowMisses() + dram.rowConflicts(),
              dram.bursts());
}

TEST(DramTiming, DeterministicAcrossRuns)
{
    auto run = [](uint64_t &checksum) {
        DramModel dram(defaultCfg());
        Rng rng(1234);
        uint64_t now = 0;
        checksum = 0;
        for (int i = 0; i < 1000; ++i) {
            now += uint64_t(rng.uniformInt(0, 4));
            uint64_t addr = uint64_t(rng.uniformInt(0, (4 << 20) - 1));
            checksum +=
                dram.read(now, addr, size_t(rng.uniformInt(1, 128)));
        }
        checksum = checksum * 31 + dram.rowHits();
        checksum = checksum * 31 + dram.rowConflicts();
        checksum = checksum * 31 + dram.lastCompletionCycle();
    };
    uint64_t a = 0, b = 0;
    run(a);
    run(b);
    EXPECT_EQ(a, b) << "model must be bit-identical across runs";
}

TEST(DramStats, ExportCoversAggregateAndPerBank)
{
    DramModel dram(defaultCfg());
    dram.read(0, 0, 4096); // touches several channels
    StatGroup g;
    dram.exportStats(g);
    EXPECT_EQ(g.get("dram_bursts"), dram.bursts());
    EXPECT_EQ(g.get("dram_bytes"), dram.bytesRead());
    EXPECT_EQ(g.get("dram_row_hits") + g.get("dram_row_misses") +
                  g.get("dram_row_conflicts"),
              dram.bursts());
    // Per-bank keys exist for touched banks (channel 0, bank 0 is hit
    // by address 0) and match the bank counters.
    const DramBankCounters &bc = dram.bankCounters(0, 0);
    EXPECT_EQ(g.get("dram_c0_b0_hits"), bc.hits);
    EXPECT_EQ(g.get("dram_c0_b0_misses"), bc.misses);
}

TEST(DmaSession, CoalescesAdjacentWordsIntoOneRun)
{
    DramModel dram(defaultCfg());
    DmaSession session(dram, 8);
    // 256 adjacent words = 2 KiB, inside one row-stripe window.
    for (uint64_t i = 0; i < 256; ++i)
        session.requestWord(i * 8);
    uint64_t done = session.complete(0);
    EXPECT_GT(done, 0u);
    EXPECT_EQ(session.wordsRequested(), 256u);
    EXPECT_EQ(session.runsIssued(), 1u);
    EXPECT_EQ(dram.bursts(), 2048u / 32u);
}

TEST(DmaSession, DeduplicatesRepeatedWords)
{
    DramModel dram(defaultCfg());
    DmaSession session(dram, 8);
    session.requestWord(64);
    session.requestWord(64);
    session.requestWord(72);
    session.complete(0);
    EXPECT_EQ(session.duplicateWords(), 1u);
    EXPECT_EQ(dram.bursts(), 1u) << "both words share one burst";
}

TEST(DmaSession, StreamingBeatsRandomLocality)
{
    // Footprint must exceed banks x one-row coverage so random order
    // actually provokes row conflicts (256 KiB = 2 rows per bank at
    // the default geometry).
    const uint64_t kWords = 32768;
    std::vector<uint64_t> order(kWords);
    for (uint64_t i = 0; i < kWords; ++i)
        order[i] = i;

    auto run = [&](const std::vector<uint64_t> &words, double &hit_rate) {
        DramModel dram(defaultCfg());
        DmaSession session(dram, 8);
        uint64_t now = 0;
        for (size_t i = 0; i < words.size(); ++i) {
            session.requestWord(words[i] * 8);
            if ((i + 1) % 256 == 0)
                now = session.complete(now);
        }
        now = session.complete(now);
        hit_rate = dram.rowHitRate();
        return now;
    };

    double stream_hits = 0.0, random_hits = 0.0;
    uint64_t stream_cycles = run(order, stream_hits);
    Rng rng(99);
    rng.shuffle(order);
    uint64_t random_cycles = run(order, random_hits);

    EXPECT_GT(stream_hits, random_hits);
    EXPECT_LT(stream_cycles, random_cycles);
}

TEST(DmaEngineLegacy, BandwidthTermChargesTransferTime)
{
    // bytes_per_cycle = 8: 64 bytes add ceil(64/8) = 8 cycles.
    DmaEngine dma(10, 2, 8);
    EXPECT_EQ(dma.issue(0, 64), 18u);
    EXPECT_EQ(dma.issue(0, 4), 11u); // partial cycle rounds up
    // Rate 0 disables the term (pure-latency legacy behavior).
    DmaEngine flat(10, 2, 0);
    EXPECT_EQ(flat.issue(0, 64), 10u);
}

TEST(DmaEngineDram, IssueAtRoutesThroughModel)
{
    ArchConfig cfg = defaultCfg();
    DramModel dram(cfg);
    DmaEngine dma(cfg.dmaLatencyCycles, 4);
    dma.attachDram(&dram);
    // Closed-row fetch: latency comes from the model, not the flat
    // constant (19 cycles at default timing vs dmaLatencyCycles = 24).
    EXPECT_EQ(dma.issueAt(0, 0, 32), dram.minClosedRowLatencyCycles());
    EXPECT_EQ(dram.bursts(), 1u);
    EXPECT_EQ(dma.requests(), 1u);
    // Detached, issueAt falls back to the legacy path.
    dma.attachDram(nullptr);
    uint64_t done = dma.issueAt(100, 0, 32);
    EXPECT_EQ(done, 100u + cfg.dmaLatencyCycles);
}

TEST(BcpPipeline, ClauseMissesGoThroughDram)
{
    logic::CnfFormula f(40);
    for (int i = 0; i + 2 < 40; ++i)
        f.addClause({-(i + 1), i + 2, i + 3});

    ArchConfig starved;
    starved.sramBytes = 64; // force misses
    BcpPipeline pipe(f, starved);
    ASSERT_NE(pipe.dram(), nullptr);
    BcpResult r = pipe.decide(logic::Lit::make(0, false));
    EXPECT_GT(pipe.events().get("dma_fetches"), 0u);
    EXPECT_GT(pipe.dram()->bursts(), 0u);

    // Legacy mode: no model, identical functional behavior.
    ArchConfig legacy = starved;
    legacy.dramModelEnabled = false;
    BcpPipeline pipe2(f, legacy);
    EXPECT_EQ(pipe2.dram(), nullptr);
    BcpResult r2 = pipe2.decide(logic::Lit::make(0, false));
    ASSERT_EQ(r2.implications.size(), r.implications.size());
    for (size_t i = 0; i < r.implications.size(); ++i)
        EXPECT_EQ(r2.implications[i], r.implications[i]);
    EXPECT_EQ(r2.conflict, r.conflict);
}

TEST(AcceleratorDram, PreloadGoesThroughSession)
{
    Rng rng(606);
    core::Dag dag = testutil::randomDag(rng, 8, 100, 4);
    ArchConfig cfg;
    compiler::Program p = compile(dag, cfg.compilerTarget());
    Accelerator accel(cfg);
    auto inputs = testutil::randomInputs(rng, 8);

    ExecutionResult r = accel.run(p, inputs);
    EXPECT_GT(r.events.get("dram_bursts"), 0u);
    EXPECT_GT(r.events.get("dma_session_words"), 0u);
    EXPECT_GT(r.dmaStallCycles, 0u);

    // Preloaded runs skip the DRAM preload entirely.
    ExecutionResult pre = accel.run(p, inputs, /*preloaded=*/true);
    EXPECT_EQ(pre.events.get("dram_bursts"), 0u);
    EXPECT_EQ(pre.dmaStallCycles, 0u);
    EXPECT_DOUBLE_EQ(pre.rootValue, r.rootValue);

    // Legacy mode reproduces the flat preload formula.
    ArchConfig legacy = cfg;
    legacy.dramModelEnabled = false;
    Accelerator laccel(legacy);
    ExecutionResult lr = laccel.run(p, inputs);
    uint64_t words = p.inputs.size();
    uint64_t expect = legacy.dmaLatencyCycles +
                      (words + legacy.numBanks - 1) / legacy.numBanks;
    EXPECT_EQ(lr.dmaStallCycles, expect);
    EXPECT_DOUBLE_EQ(lr.rootValue, r.rootValue);
}

TEST(AcceleratorDram, PreloadDeterministic)
{
    Rng rng(607);
    core::Dag dag = testutil::randomDag(rng, 8, 120, 4);
    ArchConfig cfg;
    compiler::Program p = compile(dag, cfg.compilerTarget());
    Accelerator accel(cfg);
    auto inputs = testutil::randomInputs(rng, 8);
    ExecutionResult a = accel.run(p, inputs);
    ExecutionResult b = accel.run(p, inputs);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.dmaStallCycles, b.dmaStallCycles);
    EXPECT_EQ(a.events.get("dram_row_hits"),
              b.events.get("dram_row_hits"));
}
