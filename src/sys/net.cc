#include "sys/net.h"

#if REASON_HAS_SOCKETS

#include <cerrno>
#include <chrono>
#include <thread>

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>

#include "sys/fault.h"

namespace reason {
namespace sys {

namespace {

#if defined(MSG_NOSIGNAL)
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;
#endif

void
applyDelay(const FaultAction &act)
{
    if (act.delayUs > 0)
        std::this_thread::sleep_for(
            std::chrono::microseconds(act.delayUs));
}

/**
 * Realize an injected reset: shutdown(2) both directions, so the peer
 * observes a genuinely torn connection (EOF / ECONNRESET) and every
 * later local operation on the fd fails — exactly the failure shape a
 * real mid-flight disconnect produces.
 */
void
injectReset(int fd)
{
    ::shutdown(fd, SHUT_RDWR);
}

} // namespace

void
netPrepareSocket(int fd)
{
#if defined(SO_NOSIGPIPE)
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one,
                       sizeof(one));
#else
    (void)fd; // MSG_NOSIGNAL handles it per send
#endif
}

bool
netSendAll(int fd, const void *data, size_t n)
{
    const char *p = static_cast<const char *>(data);
    size_t cap = n;      // injected torn/partial-write prefix bound
    bool torn = false;   // reset once the capped prefix went out
    if (FaultPlan *plan = activeFaultPlan()) {
        const FaultAction act = plan->onSend(n);
        applyDelay(act);
        if (act.reset) {
            injectReset(fd);
            return false;
        }
        if (act.maxBytes != 0 && act.maxBytes < n) {
            if (act.resetAfter) {
                cap = act.maxBytes;
                torn = true;
            }
            // A plain partial write is transparent to the sender (the
            // loop below already fragments); only the capped-prefix +
            // reset combination changes what the peer observes.
        }
    }
    size_t sent = 0;
    while (sent < n) {
        const size_t want = torn ? cap - sent : n - sent;
        if (torn && want == 0)
            break;
        const ssize_t rc = ::send(fd, p + sent, want, kSendFlags);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += size_t(rc);
    }
    if (torn) {
        injectReset(fd);
        return false;
    }
    return true;
}

long
netRecv(int fd, void *data, size_t n)
{
    size_t want = n;
    if (FaultPlan *plan = activeFaultPlan()) {
        const FaultAction act = plan->onRecv(n);
        applyDelay(act);
        if (act.reset) {
            injectReset(fd);
            errno = ECONNRESET;
            return -1;
        }
        if (act.maxBytes != 0 && act.maxBytes < want)
            want = act.maxBytes; // short read: callers must loop
    }
    for (;;) {
        const ssize_t rc = ::recv(fd, data, want, 0);
        if (rc < 0 && errno == EINTR)
            continue;
        return long(rc);
    }
}

bool
netSetRecvTimeoutMs(int fd, unsigned ms)
{
    struct timeval tv;
    tv.tv_sec = ms / 1000;
    tv.tv_usec = suseconds_t((ms % 1000) * 1000);
    return ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv,
                        sizeof(tv)) == 0;
}

bool
netRecvTimedOut()
{
    return errno == EAGAIN || errno == EWOULDBLOCK;
}

} // namespace sys
} // namespace reason

#endif // REASON_HAS_SOCKETS
