/**
 * @file
 * The REASON programming interface (Sec. VI-B, Listing 1):
 * REASON_execute / REASON_check_status over shared-memory flag buffers.
 *
 * Since the serving redesign this is a thin compatibility shim over
 * sys::ReasonEngine (sys/engine.h): a ReasonRuntime owns one engine
 * with one program session and turns every REASON_execute call into a
 * submit + blocking wait, preserving the original single-tenant
 * polling semantics (simulated-cycle accounting included) bit for bit.
 * New code should use the engine directly — it serves many sessions,
 * overlaps submission with execution, and coalesces requests into
 * batched evaluations.
 *
 * The runtime simulates the co-processor side: the host (GPU SM proxy)
 * writes neural results into shared memory and sets `neural_ready`;
 * REASON polls the flag, runs the compiled symbolic kernel on the cycle
 * simulator, writes results back, and raises `symbolic_ready`.
 */

#ifndef REASON_SYS_REASON_API_H
#define REASON_SYS_REASON_API_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "arch/accelerator.h"
#include "compiler/program.h"
#include "sys/engine.h"

namespace reason {
namespace sys {

/**
 * Host-visible shared memory segment: data buffers plus the
 * neural_ready / symbolic_ready synchronization flags.
 */
struct SharedMemory
{
    std::vector<double> neuralBuffer;
    std::vector<double> symbolicBuffer;
    bool neuralReady = false;
    bool symbolicReady = false;
};

/** Learning-reduction determinism selector for RuntimeOptions. */
enum class LearnReduction : uint8_t
{
    /** Keep the current process-wide util::ReductionPolicy mode. */
    Inherit = 0,
    /** Fixed-shape reductions, bit-identical for any thread count. */
    Deterministic,
    /** Shard per worker; relaxes only the reduction shape. */
    Fast
};

/**
 * Runtime-level execution options (Sec. VI-B extensions).
 */
struct RuntimeOptions
{
    /**
     * Worker count for the functional (flat wavefront) evaluation
     * paths reached through this runtime.  Applied process-wide via
     * util::setGlobalThreads at construction; 0 leaves the current
     * global setting untouched.  Thread-parallel evaluation is
     * bit-identical to serial, so this knob never changes results.
     * Evaluators resolve the global pool per call (never caching the
     * pointer), but the runtime must not be constructed while another
     * thread is mid-evaluation on the global pool — configure at
     * startup or between evaluation phases.
     */
    unsigned evalThreads = 0;

    /**
     * Sample-shard count of the learning reductions (EM flow
     * accumulation, Baum-Welch statistics) reached through this
     * process.  Applied to util::ReductionPolicy at construction; 0
     * leaves the current policy untouched (its own 0 means auto).
     */
    unsigned learnShards = 0;

    /**
     * Determinism mode of those reductions; Inherit leaves the current
     * policy untouched.  Deterministic reductions are bit-identical
     * across thread counts; Fast shards per worker (see
     * util::ReductionPolicy).
     */
    LearnReduction learnReduction = LearnReduction::Inherit;

    /**
     * Serving knobs forwarded to the embedded sys::ReasonEngine (see
     * ServeOptions for semantics).  They do not change Listing-1
     * results — the shim submits and waits one batch at a time, so
     * coalescing never crosses a REASON_execute call — but they apply
     * when the runtime's engine is shared with async submitters.
     */
    unsigned maxBatch = 64;
    /** ServeOptions::maxCoalesceWindowUs. */
    unsigned maxCoalesceWindowUs = 0;
    /** ServeOptions::serveThreads (0 = hardware concurrency). */
    unsigned serveThreads = 1;
    /** ServeOptions::dispatchers (0 behaves as 1). */
    unsigned dispatchers = 1;
    /** ServeOptions::queueCapacity (0 = unbounded). */
    size_t queueCapacity = 0;
    /** ServeOptions::queuePolicy. */
    QueuePolicy queuePolicy = QueuePolicy::RejectNew;
    /** ServeOptions::autoLingerWindow. */
    bool autoLingerWindow = false;
    /**
     * Pin engine dispatchers and pool workers to cores
     * (ServeOptions::pinThreads; best effort, no-op where
     * unsupported).
     */
    bool pinThreads = false;
};

/**
 * Simulated REASON co-processor runtime implementing the C-style
 * interface of Listing 1, as a compatibility shim over ReasonEngine.
 */
class ReasonRuntime
{
  public:
    ReasonRuntime(const arch::ArchConfig &config,
                  compiler::Program program);
    ReasonRuntime(const arch::ArchConfig &config,
                  compiler::Program program,
                  const RuntimeOptions &options);

    /** Shared memory visible to both host and co-processor. */
    SharedMemory &sharedMemory() { return shm_; }

    /**
     * Trigger symbolic execution for one batch (Listing 1).
     * The neural buffer must hold batch_size * numInputs doubles; the
     * symbolic buffer receives batch_size root values.
     *
     * @return REASON_OK (0) on success, or a distinct negative
     *         ReasonError (sys/request_queue.h):
     *         REASON_ERR_BAD_BATCH for batch_size <= 0,
     *         REASON_ERR_NULL_BUFFER for a null neural or symbolic
     *         buffer, REASON_ERR_BAD_MODE when *reasoning_mode is not
     *         a ReasonMode value (a null pointer defaults to
     *         REASON_MODE_PROBABILISTIC), and
     *         REASON_ERR_DUPLICATE_BATCH when batch_id was already
     *         executed on this runtime (ids are tracked forever;
     *         resubmission was previously a silent last-write-wins
     *         overwrite and is now a documented error).
     */
    int REASON_execute(int batch_id, int batch_size,
                       const void *neural_buffer,
                       const void *reasoning_mode,
                       void *symbolic_buffer);

    /**
     * Query execution status (Listing 1).  With blocking=true, waits
     * (advances simulated time) until the batch completes.
     *
     * @return REASON_IDLE or REASON_EXECUTION.
     */
    int REASON_check_status(int batch_id, bool blocking);

    /** Simulated cycles consumed so far. */
    uint64_t totalCycles() const { return now_; }

    /** Per-batch execution results. */
    const std::unordered_map<int, arch::ExecutionResult> &results() const
    {
        return results_;
    }

    /** The serving engine backing this runtime (shared sessions etc.). */
    ReasonEngine &engine() { return engine_; }

  private:
    ReasonEngine engine_;
    Session session_;
    SharedMemory shm_;
    uint64_t now_ = 0;
    /** batch id -> completion cycle. */
    std::unordered_map<int, uint64_t> completion_;
    std::unordered_map<int, arch::ExecutionResult> results_;
};

} // namespace sys
} // namespace reason

#endif // REASON_SYS_REASON_API_H
