/**
 * @file
 * Submission queue of the async serving engine (sys::ReasonEngine):
 * request records, their lifecycle, the error-code contract shared
 * with the Listing-1 compatibility shim, and the coalescing pop that
 * turns independent queued requests into one batched evaluation.
 *
 * The queue is the synchronization hub of the engine.  Requests are
 * sharded by their coalescing key (circuit lowering fingerprint +
 * reasoning mode), each shard holds one FIFO lane per submitting
 * session, and any number of dispatcher threads pop coalesced groups:
 *
 *  - **Per-fingerprint shards.**  A popped group always comes from one
 *    shard, so a batch never mixes lowerings or modes.  Ready shards
 *    are served oldest-first, and a shard with remaining work is
 *    re-readied behind the others, so no fingerprint monopolizes the
 *    dispatchers.
 *  - **Session-fair lanes.**  Within a shard the gather round-robins
 *    across session lanes, so a tenant flooding one session cannot
 *    starve light tenants sharing the fingerprint: every lane
 *    contributes to every batch it has work for.
 *  - **Bounded admission.**  With a nonzero capacity the queue holds at
 *    most `capacity` pending requests.  Overload either rejects the new
 *    request or sheds the globally oldest queued one (QueuePolicy),
 *    completing the victim with REASON_ERR_OVERLOAD — clients always
 *    get an answer, the queue never grows without bound.
 *  - **Exclusive shards.**  Program (Listing-1) requests mutate their
 *    session's accelerator state, so their shards admit one in-flight
 *    group at a time; circuit shards are stateless and may be drained
 *    by several dispatchers concurrently.
 *  - **Linger autotuning.**  The queue tracks EWMAs of request
 *    inter-arrival time and batch execution time; when enabled, the
 *    coalesce linger window is derived from them (wait only while the
 *    expected fill time is cheap next to the execution it amortizes).
 *
 * Every state transition happens under one mutex so poll/wait observe
 * a consistent lifecycle, and shedding/fairness decisions are atomic
 * with respect to submission.
 */

#ifndef REASON_SYS_REQUEST_QUEUE_H
#define REASON_SYS_REQUEST_QUEUE_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "arch/accelerator.h"
#include "pc/pc.h"

namespace reason {
namespace sys {

/** Execution status returned by REASON_check_status. */
enum ReasonStatus : int { REASON_IDLE = 0, REASON_EXECUTION = 1 };

/** Reasoning mode selector (Sec. V-B). */
enum ReasonMode : int
{
    REASON_MODE_PROBABILISTIC = 0,
    REASON_MODE_SYMBOLIC = 1,
    REASON_MODE_SPMSPM = 2,
    /**
     * Approximate/anytime circuit tier: the request carries an
     * accuracy budget and its results carry certified error bounds
     * (pc::ApproxEvaluator).  Only valid for circuit sessions; the
     * engine selects this mode itself when a submission's budget is
     * positive.
     */
    REASON_MODE_APPROX = 3
};

/**
 * Error codes of the serving engine and the Listing-1 interface
 * (REASON_execute returns these directly; engine submissions surface
 * them through Request::error).  All failures are negative and
 * distinct; REASON_OK is zero.
 */
enum ReasonError : int
{
    REASON_OK = 0,
    /** batch_size <= 0, or an empty row set. */
    REASON_ERR_BAD_BATCH = -1,
    /** Null neural or symbolic buffer. */
    REASON_ERR_NULL_BUFFER = -2,
    /** reasoning_mode is not a ReasonMode value. */
    REASON_ERR_BAD_MODE = -3,
    /** batch_id was already executed (duplicate resubmission). */
    REASON_ERR_DUPLICATE_BATCH = -4,
    /** An assignment row is too short or holds an out-of-range value. */
    REASON_ERR_BAD_ASSIGNMENT = -5,
    /** Submission kind does not match the session kind (or no session). */
    REASON_ERR_WRONG_SESSION = -6,
    /** Engine shut down before the request could execute. */
    REASON_ERR_SHUTDOWN = -7,
    /**
     * Bounded queue at capacity: this submission was rejected
     * (QueuePolicy::RejectNew) or a queued request was shed to admit a
     * newer one (QueuePolicy::ShedOldest).
     */
    REASON_ERR_OVERLOAD = -8,
    /**
     * Invalid accuracy budget: NaN, infinite, negative — or, at the
     * wire layer, above the server's configured --max-budget cap.
     */
    REASON_ERR_BAD_BUDGET = -9,
    /**
     * The request's deadline passed before a dispatcher picked it up
     * (expired at pop time or by a lane sweep), or a drain deadline
     * expired with the request still queued.  A request that began
     * executing always completes normally — deadlines never interrupt
     * evaluation, so non-expired results stay bit-identical.
     */
    REASON_ERR_DEADLINE_EXCEEDED = -10,
    /** The client cancelled the request while it was still queued. */
    REASON_ERR_CANCELLED = -11,
    /**
     * The engine is draining (ReasonEngine::drain): admission is
     * closed, queued work is being finished, new submissions are
     * refused.  Distinct from REASON_ERR_SHUTDOWN so clients can tell
     * "retry elsewhere / later" from "the engine died under me".
     */
    REASON_ERR_SHUTTING_DOWN = -12
};

/** What a full bounded queue does with the overflow. */
enum class QueuePolicy : uint8_t
{
    /** Complete the *new* submission with REASON_ERR_OVERLOAD. */
    RejectNew = 0,
    /**
     * Admit the new submission and complete the globally *oldest*
     * still-queued request with REASON_ERR_OVERLOAD instead (fresh
     * work is worth more than stale work under overload).
     */
    ShedOldest = 1
};

/** Admission-control and autotuning knobs of the queue. */
struct QueueOptions
{
    /** Max pending requests; 0 = unbounded (no shedding). */
    size_t capacity = 0;
    QueuePolicy policy = QueuePolicy::RejectNew;
    /**
     * Derive the coalesce linger window from the arrival/execution
     * EWMAs instead of using the configured window verbatim (the
     * configured window then acts as the upper cap).
     */
    bool autoLinger = false;
};

/** Lifecycle of a request inside the engine. */
enum class RequestState : uint8_t
{
    /** Waiting in the submission queue. */
    Queued,
    /** Popped by a dispatcher, evaluation in flight. */
    Running,
    /** Finished: outputs (or error) are final, waiters are released. */
    Done
};

struct SessionState;
class RequestQueue;

/**
 * Steady-clock nanoseconds since the clock epoch — the timebase of
 * every Request timestamp and deadline (deadlines are absolute values
 * on this clock, so they survive queue hops without re-anchoring).
 */
inline uint64_t
steadyNowNs()
{
    return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now()
                            .time_since_epoch())
                        .count());
}

/**
 * One serving request.  Owned jointly by the submitting RequestHandle
 * and the queue/dispatcher (shared_ptr), so a handle stays readable
 * even after the engine is destroyed.
 *
 * Mutable fields are written under the RequestQueue mutex (state,
 * timestamps) or exclusively by the dispatcher while Running (outputs,
 * exec, error); clients must read them only after poll()/wait()
 * reports completion.
 */
struct Request
{
    uint64_t id = 0;
    /**
     * Coalescing and sharding key: requests with the same key (and
     * mode) may share one batched evaluation and live in one dispatch
     * shard.  Circuit sessions use the cached lowering pointer
     * (structural fingerprint identity via pc::cachedLowering);
     * program sessions use their private session state, so Listing-1
     * batches never coalesce across sessions.
     */
    const void *groupKey = nullptr;
    ReasonMode mode = REASON_MODE_PROBABILISTIC;
    /**
     * Stateful execution: the shard admits one in-flight group at a
     * time (program sessions mutate accelerator state).
     */
    bool exclusive = false;
    /** Owning session; keeps the lowering / accelerator alive. */
    std::shared_ptr<SessionState> session;

    /** Circuit-mode payload: one assignment per requested row. */
    std::vector<pc::Assignment> rows;
    /**
     * Approximate tier (REASON_MODE_APPROX): the accuracy budget the
     * submission carried (pc::ApproxOptions::budget).  Part of the
     * coalescing identity — the dispatcher evaluates each request
     * with an evaluator built for exactly this budget.
     */
    double accuracyBudget = 0.0;
    /** Program-mode payload: row-major inputs, batchSize rows. */
    std::vector<double> inputs;
    int batchSize = 0;

    /** One output per row: log-likelihoods (circuit) or root values. */
    std::vector<double> outputs;
    /**
     * Approximate tier: certified per-row interval endpoints,
     * boundLo[r] <= exact log-likelihood of row r <= boundHi[r].
     * Empty for exact-tier and program requests.
     */
    std::vector<double> boundLo;
    std::vector<double> boundHi;
    /** Program mode: execution result of the final row. */
    arch::ExecutionResult exec;
    /** Program mode: simulated cycles summed over the batch rows. */
    uint64_t execCycles = 0;
    /** REASON_OK or a ReasonError; final once state is Done. */
    int error = REASON_OK;

    /**
     * Absolute steady-clock deadline (steadyNowNs timebase); 0 = no
     * deadline.  Enforced while the request is *queued* only: a
     * dispatcher drops expired requests at pop time and the queue
     * sweeps aged lanes, completing victims with
     * REASON_ERR_DEADLINE_EXCEEDED.  Once Running, the request always
     * completes normally (bit-identity of non-expired results).
     */
    uint64_t deadlineNs = 0;

    RequestState state = RequestState::Queued;
    /** steady_clock nanoseconds; zero until the stage is reached. */
    uint64_t enqueuedNs = 0;
    uint64_t startedNs = 0;
    uint64_t completedNs = 0;

    /**
     * The queue this request was pushed into (set under the queue
     * mutex at push; null for requests rejected at submit).  Enables
     * RequestHandle::cancel() — valid only while the owning engine is
     * alive, the same lifetime contract as wait/poll.
     */
    RequestQueue *ownerQueue = nullptr;

    /** Rows requested (either payload kind). */
    size_t numRows() const
    {
        return rows.empty() ? size_t(batchSize) : rows.size();
    }
    /** Enqueue-to-completion latency; meaningful once Done. */
    uint64_t latencyNs() const { return completedNs - enqueuedNs; }
};

/** Counters accumulated by the queue since engine construction. */
struct QueueStats
{
    /** Requests admitted (excludes validation and RejectNew rejects). */
    uint64_t requests = 0;
    /** Rows across admitted requests. */
    uint64_t rows = 0;
    /** Coalesced groups handed to dispatchers. */
    uint64_t batches = 0;
    /** Rows across those groups (batchedRows / batches = occupancy). */
    uint64_t batchedRows = 0;
    /** Deepest pending-request count observed at admission time. */
    uint64_t maxQueueDepth = 0;
    /** Sum of enqueue-to-start times over executed requests. */
    uint64_t totalQueueNs = 0;
    /** Sum of enqueue-to-completion times over executed requests. */
    uint64_t totalLatencyNs = 0;
    /** Requests completed (including shutdown/overload failures). */
    uint64_t completed = 0;
    /**
     * Requests that ran to completion through a dispatcher — the
     * denominator of the latency/queue-time means and the reservoir
     * population.  Shed, rejected, and shutdown-failed requests count
     * in `completed` only, so overload cannot bias the means low.
     */
    uint64_t executed = 0;
    /** Requests completed with REASON_ERR_OVERLOAD (both policies). */
    uint64_t shedRequests = 0;
    /**
     * Requests completed with REASON_ERR_DEADLINE_EXCEEDED (deadline
     * passed while queued, or expired by a drain deadline).  Like shed
     * requests these never count in `executed`, so latency means stay
     * unbiased under deadline pressure.
     */
    uint64_t expired = 0;
    /** Requests completed with REASON_ERR_CANCELLED (client cancel). */
    uint64_t cancelled = 0;

    /** Latency percentiles over executed requests (reservoir sample). */
    double p50LatencyMs = 0.0;
    double p99LatencyMs = 0.0;

    /** Autotuning state snapshot (zero until enough traffic). */
    double ewmaInterArrivalUs = 0.0;
    double ewmaExecUs = 0.0;
    /** Most recent effective linger window a pop used. */
    double lastLingerUs = 0.0;

    /** Mean rows per coalesced batch (the occupancy statistic). */
    double
    meanBatchOccupancy() const
    {
        return batches == 0 ? 0.0
                            : double(batchedRows) / double(batches);
    }
};

/** Latency samples kept for the p50/p99 estimate (Algorithm R). */
inline constexpr size_t kLatencyReservoirSize = 2048;

/**
 * Thread-safe sharded submission queue with cross-request coalescing,
 * bounded admission, and session-fair scheduling (see file comment for
 * the full topology).
 *
 * Clients push requests and wait on completion; any number of
 * dispatchers pop coalesced groups concurrently.  popGroup picks the
 * oldest ready shard, gathers up to `maxRows` rows round-robin across
 * its session lanes, and optionally lingers for late arrivals before
 * dispatching.  The first gathered request is always admitted even if
 * it alone exceeds maxRows (oversized explicit batches still run).
 */
class RequestQueue
{
  public:
    explicit RequestQueue(const QueueOptions &options = {});
    RequestQueue(const RequestQueue &) = delete;
    RequestQueue &operator=(const RequestQueue &) = delete;

    /**
     * Enqueue a request (state must be Queued).  After shutdown() the
     * request is immediately completed with REASON_ERR_SHUTDOWN; at
     * capacity it is rejected — or an older request shed — with
     * REASON_ERR_OVERLOAD per the configured policy.  Never blocks.
     */
    void push(const std::shared_ptr<Request> &request);

    /**
     * Block until work is available (or shutdown), then pop one
     * coalesced group and mark it Running.  Returns an empty vector
     * only at shutdown — the dispatcher's exit signal.  Safe to call
     * from any number of dispatcher threads; concurrent pops always
     * receive disjoint groups.
     */
    std::vector<std::shared_ptr<Request>> popGroup(size_t maxRows,
                                                   unsigned lingerUs);

    /**
     * Mark an executed group Done and release its waiters.  For
     * exclusive shards this also re-opens the shard for the next
     * group.
     */
    void complete(const std::vector<std::shared_ptr<Request>> &group);

    /** True once the request has completed (never blocks). */
    bool pollDone(const Request &request) const;

    /** Block until the request completes. */
    void waitDone(const Request &request) const;

    /**
     * Remove a still-queued request, completing it with
     * REASON_ERR_CANCELLED.  Returns false when the request is already
     * Running or Done (executing requests always complete normally) or
     * was never queued here — cancellation never yields a torn result.
     */
    bool cancel(const std::shared_ptr<Request> &request);

    /**
     * Fail every queued request whose deadline has passed with
     * REASON_ERR_DEADLINE_EXCEEDED (the aged-lane sweep; also run
     * internally at pop time and from deadline-aware waits).  Returns
     * the number of requests expired.
     */
    size_t sweepExpired();

    /**
     * Close admission: every subsequent push completes immediately
     * with REASON_ERR_SHUTTING_DOWN.  Dispatching continues (a pause
     * is released) so queued work can finish — the first half of a
     * graceful drain.
     */
    void beginDrain();

    /**
     * Block until all queued and in-flight work has completed, or
     * until `deadlineNs` (absolute, steadyNowNs timebase).  At the
     * deadline, still-queued requests are expired with
     * REASON_ERR_DEADLINE_EXCEEDED; in-flight groups are always waited
     * out (they complete normally).  Returns true when every queued
     * request finished without expiry.  Call beginDrain() first or new
     * work can starve the wait.
     */
    bool drainWait(uint64_t deadlineNs);

    /**
     * Stop dispatching: pending requests are completed with
     * REASON_ERR_SHUTDOWN, waiters and dispatchers are woken.
     * A group already popped may still be complete()d normally.
     */
    void shutdown();

    /** Hold dispatching (queued work accumulates and coalesces). */
    void pause();
    /** Resume dispatching after pause(). */
    void resume();

    QueueStats stats() const;

  private:
    /** One session's FIFO of queued requests within a shard. */
    struct Lane
    {
        const void *session = nullptr;
        std::deque<std::shared_ptr<Request>> queue;
    };

    /** All queued work sharing one (groupKey, mode) coalescing key. */
    struct Shard
    {
        std::vector<Lane> lanes;
        /** Next lane index the gather serves (round-robin). */
        size_t cursor = 0;
        /** Queued requests across all lanes. */
        size_t pendingRequests = 0;
        /** Program shard: one in-flight group at a time. */
        bool exclusive = false;
        /** A dispatcher holds this shard (gather/linger/exclusive). */
        bool inService = false;
        /** Shard is queued in ready_. */
        bool inReady = false;
    };

    using ShardKey = std::pair<const void *, int>;
    struct ShardKeyHash
    {
        size_t operator()(const ShardKey &k) const
        {
            return std::hash<const void *>()(k.first) ^
                   (std::hash<int>()(k.second) * 0x9e3779b97f4a7c15ull);
        }
    };
    using ShardMap = std::unordered_map<ShardKey, Shard, ShardKeyHash>;

    void readyShardLocked(const ShardKey &key, Shard &shard);
    void eraseShardIfIdleLocked(ShardMap::iterator it);
    /** Gather up to maxRows into group, round-robin over lanes. */
    void gatherLocked(Shard &shard,
                      std::vector<std::shared_ptr<Request>> &group,
                      size_t &rowCount, size_t maxRows);
    /** Drop the globally oldest queued request (ShedOldest). */
    bool shedOldestLocked();
    /** Complete a request that never ran (overload/shutdown/expiry). */
    void failLocked(const std::shared_ptr<Request> &request, int error,
                    uint64_t now);
    /** Remove `request` from its lane; false if not found queued. */
    bool removeQueuedLocked(const std::shared_ptr<Request> &request);
    /** Expire queued requests past `now`; recompute minDeadlineNs_. */
    size_t sweepExpiredLocked(uint64_t now);
    /** Fail every queued request with `error` (drain expiry). */
    void failAllQueuedLocked(int error, uint64_t now);
    /** Track the earliest pending deadline for deadline-aware waits. */
    void noteDeadlineLocked(uint64_t deadlineNs);
    /** Effective linger window for a pop that gathered rowCount rows. */
    unsigned effectiveLingerLocked(size_t rowCount, size_t maxRows,
                                   unsigned lingerUs);
    void recordLatencyLocked(double latencyMs);

    QueueOptions options_;
    mutable std::mutex mutex_;
    /** Wakes dispatchers: new work, re-readied shard, resume, shutdown. */
    std::condition_variable workCv_;
    /** Wakes client waiters: request completion, shutdown. */
    mutable std::condition_variable doneCv_;

    ShardMap shards_;
    /** Shards with queued work and no holder, oldest readied first. */
    std::deque<ShardKey> ready_;
    /**
     * Admission-ordered view of queued requests, kept only under
     * QueuePolicy::ShedOldest; completed entries are pruned lazily.
     */
    std::deque<std::shared_ptr<Request>> age_;
    /** Queued requests across all shards. */
    size_t totalPending_ = 0;
    /** Requests popped (Running) but not yet complete()d. */
    size_t running_ = 0;
    /**
     * Earliest deadline among queued requests, or 0 when none carry
     * one.  Maintained as a lower bound (stale removals leave it
     * conservative); recomputed exactly by every sweep.  Lets
     * dispatcher waits wake at the next expiry instead of hanging.
     */
    uint64_t minDeadlineNs_ = 0;
    bool shutdown_ = false;
    bool paused_ = false;
    /** Admission closed by beginDrain(). */
    bool draining_ = false;

    QueueStats stats_;

    /** EWMA state for linger autotuning (nanoseconds). */
    uint64_t lastArrivalNs_ = 0;
    double ewmaInterArrivalNs_ = 0.0;
    double ewmaExecNs_ = 0.0;
    double lastLingerUs_ = 0.0;

    /** Fixed-size latency reservoir (Algorithm R, LCG replacement). */
    std::vector<double> reservoir_;
    uint64_t reservoirSeen_ = 0;
    uint64_t reservoirLcg_ = 0x9e3779b97f4a7c15ull;
};

} // namespace sys
} // namespace reason

#endif // REASON_SYS_REQUEST_QUEUE_H
