/**
 * @file
 * System-layer tests: the Listing-1 programming interface state machine,
 * the two-level pipeline composition math (Sec. VI-C), and the
 * cross-platform symbolic-cost ordering behind Fig. 11.
 */

#include <gtest/gtest.h>

#include "compiler/compile.h"
#include "dag_test_util.h"
#include "sys/reason_api.h"
#include "sys/system.h"
#include "util/rng.h"

using namespace reason;
using namespace reason::sys;

namespace {

workloads::SymbolicOps
sampleOps()
{
    workloads::SymbolicOps ops;
    ops.sat.decisions = 5000;
    ops.sat.propagations = 400000;
    ops.sat.literalVisits = 2500000;
    ops.sat.conflicts = 3000;
    ops.sat.learnedLiterals = 45000;
    ops.clauseDbBytes = 512 * 1024;
    ops.pcDagNodes = 3000000;
    ops.hmmDagNodes = 1500000;
    ops.probBytes = 5.0e7;
    return ops;
}

} // namespace

TEST(ReasonApi, ExecuteAndStatusRoundTrip)
{
    Rng rng(12);
    core::Dag dag = testutil::randomDag(rng, 4, 20, 3);
    arch::ArchConfig cfg;
    compiler::Program prog =
        compiler::compile(dag, cfg.compilerTarget());
    ReasonRuntime rt(cfg, prog);

    std::vector<double> neural = testutil::randomInputs(rng, 4);
    std::vector<double> symbolic(1, 0.0);
    int mode = REASON_MODE_PROBABILISTIC;
    int rc = rt.REASON_execute(7, 1, neural.data(), &mode,
                               symbolic.data());
    EXPECT_EQ(rc, 0);
    EXPECT_DOUBLE_EQ(symbolic[0], dag.evaluateRoot(neural));
    EXPECT_EQ(rt.REASON_check_status(7, false), REASON_IDLE);
    EXPECT_TRUE(rt.sharedMemory().symbolicReady);
    EXPECT_GT(rt.totalCycles(), 0u);
}

TEST(ReasonApi, BatchProcessing)
{
    Rng rng(13);
    core::Dag dag = testutil::randomDag(rng, 3, 15, 3);
    arch::ArchConfig cfg;
    compiler::Program prog =
        compiler::compile(dag, cfg.compilerTarget());
    ReasonRuntime rt(cfg, prog);

    const int batch = 4;
    std::vector<double> neural;
    std::vector<std::vector<double>> per_item;
    for (int b = 0; b < batch; ++b) {
        auto x = testutil::randomInputs(rng, 3);
        per_item.push_back(x);
        neural.insert(neural.end(), x.begin(), x.end());
    }
    std::vector<double> symbolic(batch, 0.0);
    EXPECT_EQ(rt.REASON_execute(1, batch, neural.data(), nullptr,
                                symbolic.data()),
              0);
    for (int b = 0; b < batch; ++b)
        EXPECT_DOUBLE_EQ(symbolic[b], dag.evaluateRoot(per_item[b]));
}

TEST(ReasonApi, RejectsBadArguments)
{
    Rng rng(14);
    core::Dag dag = testutil::randomDag(rng, 3, 10, 3);
    arch::ArchConfig cfg;
    ReasonRuntime rt(cfg, compiler::compile(dag, cfg.compilerTarget()));
    std::vector<double> buf(3, 0.0);
    EXPECT_LT(rt.REASON_execute(0, 0, buf.data(), nullptr, buf.data()),
              0);
    EXPECT_LT(rt.REASON_execute(0, 1, nullptr, nullptr, buf.data()), 0);
    // Status of an unknown batch is IDLE.
    EXPECT_EQ(rt.REASON_check_status(99, false), REASON_IDLE);
}

TEST(Pipeline, OverlapHidesShorterStage)
{
    StageCost neural{0.010, 1.0};
    StageCost symbolic{0.002, 0.1};
    EndToEnd e = pipelinedComposition(neural, symbolic, 10);
    // Steady state is dominated by the 10 ms neural stage.
    EXPECT_NEAR(e.totalSeconds, 0.010 + 9 * 0.010 + 0.002, 1e-12);
    EXPECT_DOUBLE_EQ(e.handoffSeconds, 0.0);
}

TEST(Pipeline, SerialCompositionAddsHandoff)
{
    StageCost neural{0.010, 1.0};
    StageCost symbolic{0.020, 0.5};
    EndToEnd serial = serialComposition(neural, symbolic, 10, 0.15);
    EndToEnd overlap = pipelinedComposition(neural, symbolic, 10);
    EXPECT_GT(serial.totalSeconds, overlap.totalSeconds);
    EXPECT_NEAR(serial.handoffSeconds, 0.030 * 0.15 * 10, 1e-12);
}

TEST(Pipeline, SingleBatchDegenerates)
{
    StageCost neural{0.010, 0.0};
    StageCost symbolic{0.004, 0.0};
    EndToEnd e = pipelinedComposition(neural, symbolic, 1);
    EXPECT_NEAR(e.totalSeconds, 0.014, 1e-12);
}

TEST(SymbolicCost, ReasonBeatsAllBaselines)
{
    workloads::SymbolicOps ops = sampleOps();
    StageCost reason = symbolicCost(Platform::ReasonAccel, ops);
    for (Platform p : {Platform::RtxA6000, Platform::OrinNx,
                       Platform::XeonCpu, Platform::TpuLike,
                       Platform::DpuLike}) {
        StageCost c = symbolicCost(p, ops);
        EXPECT_GT(c.seconds, reason.seconds) << platformName(p);
        EXPECT_GT(c.joules, reason.joules) << platformName(p);
    }
}

TEST(SymbolicCost, PaperOrderingAcrossGpusAndCpu)
{
    workloads::SymbolicOps ops = sampleOps();
    double rtx = symbolicCost(Platform::RtxA6000, ops).seconds;
    double orin = symbolicCost(Platform::OrinNx, ops).seconds;
    double xeon = symbolicCost(Platform::XeonCpu, ops).seconds;
    EXPECT_LT(rtx, orin);
    EXPECT_LT(orin, xeon);
}

TEST(SymbolicCost, SpeedupBandsMatchFig11)
{
    workloads::SymbolicOps ops = sampleOps();
    double reason = symbolicCost(Platform::ReasonAccel, ops).seconds;
    double rtx = symbolicCost(Platform::RtxA6000, ops).seconds;
    double orin = symbolicCost(Platform::OrinNx, ops).seconds;
    double xeon = symbolicCost(Platform::XeonCpu, ops).seconds;
    // Paper: ~12x vs desktop GPU, ~50x vs edge GPU, ~98x vs CPU.
    EXPECT_GT(rtx / reason, 6.0);
    EXPECT_LT(rtx / reason, 25.0);
    EXPECT_GT(orin / reason, 30.0);
    EXPECT_LT(orin / reason, 80.0);
    EXPECT_GT(xeon / reason, 60.0);
    EXPECT_LT(xeon / reason, 160.0);
}

TEST(NeuralCost, FlopsDeriveFromPaperSplit)
{
    workloads::TaskBundle b =
        workloads::generate(workloads::DatasetId::IMO,
                            workloads::TaskScale::Small, 5);
    workloads::SymbolicOps ops = workloads::measureSymbolicOps(b);
    double flops = neuralFlops(b, ops);
    EXPECT_GT(flops, 0.0);
    // Check the split reproduces on the A6000 model.
    StageCost sym = symbolicCost(Platform::RtxA6000, ops);
    StageCost neu = neuralCost(Platform::RtxA6000, flops);
    double frac = neu.seconds / (neu.seconds + sym.seconds);
    EXPECT_NEAR(frac, b.neuralFractionA6000, 0.08);
}

TEST(AccelNeural, Fig13Ordering)
{
    arch::ArchConfig cfg;
    double reason = accelNeuralMacsPerSec(Platform::ReasonAccel, cfg);
    double tpu = accelNeuralMacsPerSec(Platform::TpuLike, cfg);
    double dpu = accelNeuralMacsPerSec(Platform::DpuLike, cfg);
    EXPECT_GT(tpu, reason);
    EXPECT_LT(dpu, reason);
    // Shape: TPU ~1.45x faster, DPU ~4.3x slower.
    EXPECT_NEAR(tpu / reason, 1.45, 0.1);
    EXPECT_NEAR(reason / dpu, 4.3, 0.5);
}
