/**
 * @file
 * SpMSpM mode (Sec. V-B): sparse-matrix kernels mapped onto the tree
 * fabric.  Leaf nodes act as multipliers over matched nonzeros and the
 * internal nodes as a reduction tree — the MAERI/DPU-style execution
 * pattern that lets small neural or neural-symbolic layers run on
 * REASON without leaving the accelerator.
 *
 * The mapping reuses the unified DAG path: a sparse matrix-vector (or
 * matrix-matrix) product is expressed as weighted-Sum DAG nodes, so the
 * existing compiler (block decomposition, leaf-affine weights, bank
 * mapping) and the cycle simulator execute it unchanged.
 */

#ifndef REASON_ARCH_SPMSPM_H
#define REASON_ARCH_SPMSPM_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/dag.h"

namespace reason {

class Rng;

namespace arch {

/** Compressed sparse row matrix. */
struct CsrMatrix
{
    uint32_t rows = 0;
    uint32_t cols = 0;
    std::vector<uint32_t> rowPtr; ///< size rows+1
    std::vector<uint32_t> colIdx; ///< size nnz
    std::vector<double> values;   ///< size nnz

    size_t nnz() const { return values.size(); }
    double density() const
    {
        return rows && cols
                   ? double(nnz()) / (double(rows) * double(cols))
                   : 0.0;
    }

    /** Structural validation; panic()s on malformed CSR. */
    void validate() const;

    /** Dense row extraction (testing convenience). */
    std::vector<double> denseRow(uint32_t r) const;
};

/** Random sparse matrix with the given fill probability. */
CsrMatrix randomSparse(Rng &rng, uint32_t rows, uint32_t cols,
                       double density);

/** Reference y = A * x. */
std::vector<double> spmv(const CsrMatrix &a, const std::vector<double> &x);

/** Reference C = A * B (CSR x CSR -> CSR, classic row-merge). */
CsrMatrix spmspm(const CsrMatrix &a, const CsrMatrix &b);

/**
 * SpMV as a unified DAG: input slot j carries x[j]; each nonempty row
 * becomes a weighted Sum over its nonzero columns.
 *
 * @param row_outputs receives, for each matrix row, the DAG node id of
 *        its dot product (kInvalidNode for empty rows).
 * @param combine optional per-row weights; when given, the DAG root is
 *        sum_r combine[r] * y[r] so a single root value checks the
 *        whole product (used by the equivalence tests); otherwise the
 *        root is the plain sum of the row outputs.
 */
core::Dag buildSpmvDag(const CsrMatrix &a,
                       std::vector<core::NodeId> *row_outputs = nullptr,
                       const std::vector<double> *combine = nullptr);

/**
 * One output column of C = A * B as a DAG: input slot r carries column
 * j of B gathered as a dense vector (b_col[r] = B[r][j]); the DAG
 * computes combine-weighted A * b_col exactly like buildSpmvDag.
 */
core::Dag buildSpmspmColumnDag(const CsrMatrix &a,
                               const std::vector<double> &combine);

/** Work estimate in multiply-accumulate operations. */
uint64_t spmvMacs(const CsrMatrix &a);

} // namespace arch
} // namespace reason

#endif // REASON_ARCH_SPMSPM_H
