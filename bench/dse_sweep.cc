/**
 * @file
 * Sec. V-F reproduction: design space exploration over tree depth (D),
 * register banks (B), and registers per bank (R).  A representative
 * probabilistic workload (PC + HMM DAGs) is compiled and executed on
 * the cycle simulator for each configuration; latency, energy (with an
 * area-proportional static term), and energy-delay product are
 * reported.
 *
 * Paper shape: the (D=3, B=64, R=32) configuration offers the best
 * latency/energy trade-off.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "arch/accelerator.h"
#include "compiler/compile.h"
#include "core/builders.h"
#include "energy/energy_model.h"
#include "hmm/hmm.h"
#include "pc/pc.h"
#include "util/numeric.h"
#include "util/rng.h"
#include "util/table.h"

using namespace reason;

namespace {

void
BM_CompileRepresentativeDag(benchmark::State &state)
{
    Rng rng(3);
    pc::Circuit c = pc::randomCircuit(rng, 24, 2, 3, 6);
    core::Dag dag = core::buildFromCircuit(c);
    for (auto _ : state)
        benchmark::DoNotOptimize(compiler::compile(dag));
}
BENCHMARK(BM_CompileRepresentativeDag)->Unit(benchmark::kMillisecond);

struct DsePoint
{
    uint32_t d, b, r;
    double latency_us;
    double energy_uj;
    double edp; // us * uJ
};

DsePoint
evaluate(uint32_t D, uint32_t B, uint32_t R,
         const std::vector<core::Dag> &dags,
         const std::vector<std::vector<double>> &inputs)
{
    arch::ArchConfig cfg;
    cfg.treeDepth = D;
    cfg.numBanks = B;
    cfg.regsPerBank = R;
    // The PE count is fixed at 12 as in the paper's sweep; D trades
    // per-PE fusion capacity against pipeline depth.
    // Timing closure: a depth-4 combinational tree plus the wider
    // Benes stage misses 500 MHz at 28 nm; synthesis retimes to a
    // slower clock (the paper's D=3 choice reflects this).
    if (D > 3)
        cfg.clockGhz = 0.38;
    if (cfg.numBanks < cfg.numPes)
        return {D, B, R, -1.0, -1.0, -1.0}; // infeasible: output ports
    arch::Accelerator accel(cfg);
    // Register-file access energy grows with bank depth (bitline
    // capacitance ~ R) and crossbar width (mux depth ~ log2 B).
    energy::EnergyTable et;
    double rf_scale = 0.7 + 0.3 * double(R) / 32.0;
    double net_pj = 0.15 * double(ceilLog2(B));
    et.regfileReadPj = et.regfileReadPj * rf_scale + net_pj;
    et.regfileWritePj = et.regfileWritePj * rf_scale;
    energy::EnergyModel em(energy::TechNode::Tsmc28, et);

    uint64_t cycles = 0;
    StatGroup events;
    for (size_t i = 0; i < dags.size(); ++i) {
        compiler::Program prog =
            compiler::compile(dags[i], cfg.compilerTarget());
        arch::ExecutionResult r = accel.run(prog, inputs[i]);
        cycles += r.cycles;
        for (const auto &kv : r.events.all())
            events.inc(kv.first, kv.second);
    }
    double seconds = double(cycles) * cfg.cycleSeconds();
    // Static power scales with the compute-node and register-file area.
    double node_ratio =
        double(cfg.totalTreeNodes()) / 84.0; // default 12x7
    double rf_ratio = double(B) * double(R) / (64.0 * 32.0);
    double static_w = 0.35 * (0.6 * node_ratio + 0.4 * rf_ratio);
    double joules =
        em.dynamicEnergyJoules(events) + static_w * seconds;

    DsePoint p;
    p.d = D;
    p.b = B;
    p.r = R;
    p.latency_us = seconds * 1e6;
    p.energy_uj = joules * 1e6;
    p.edp = p.latency_us * p.energy_uj;
    return p;
}

/** Representative mix: three wide-fan-in PCs plus one unrolled HMM. */
void
buildWorkload(std::vector<core::Dag> &dags,
              std::vector<std::vector<double>> &inputs)
{
    Rng rng(11);
    for (int i = 0; i < 3; ++i) {
        pc::Circuit c =
            pc::randomCircuit(rng, 24 + 8 * i, 2, 3, 8);
        std::vector<pc::NodeId> leaf_order;
        dags.push_back(core::buildFromCircuit(c, &leaf_order));
        auto x = pc::sampleDataset(rng, c, 1)[0];
        inputs.push_back(core::circuitLeafInputs(c, leaf_order, x));
    }
    hmm::Hmm h = hmm::Hmm::banded(rng, 12, 12, 2);
    hmm::Sequence obs;
    h.sample(rng, 10, &obs);
    dags.push_back(core::buildFromHmm(h, obs));
    inputs.push_back({});
}

void
printDse(const std::vector<core::Dag> &dags,
         const std::vector<std::vector<double>> &inputs)
{
    Table t({"D", "B", "R", "Latency [us]", "Energy [uJ]",
             "EDP [us*uJ]"});
    DsePoint best{};
    bool first = true;
    for (uint32_t D : {2u, 3u, 4u}) {
        for (uint32_t B : {16u, 32u, 64u, 128u}) {
            for (uint32_t R : {16u, 32u, 64u}) {
                DsePoint p = evaluate(D, B, R, dags, inputs);
                if (p.edp < 0.0) {
                    t.addRow({std::to_string(D), std::to_string(B),
                              std::to_string(R), "infeasible",
                              "(banks < PE", "output ports)"});
                    continue;
                }
                t.addRow({std::to_string(D), std::to_string(B),
                          std::to_string(R),
                          Table::num(p.latency_us, 3),
                          Table::num(p.energy_uj, 3),
                          Table::num(p.edp, 4)});
                if (first || p.edp < best.edp) {
                    best = p;
                    first = false;
                }
            }
        }
    }
    std::printf("\n");
    t.print("Sec. V-F — design space exploration "
            "(paper selects D=3, B=64, R=32)");
    std::printf("best EDP configuration: D=%u B=%u R=%u "
                "(%.3f us, %.3f uJ)\n",
                best.d, best.b, best.r, best.latency_us,
                best.energy_uj);
    DsePoint paper = evaluate(3, 64, 32, dags, inputs);
    std::printf("paper configuration D=3 B=64 R=32: EDP %.4f "
                "(%.1f%% above the sweep minimum — on the plateau)\n",
                paper.edp, 100.0 * (paper.edp / best.edp - 1.0));
}

/**
 * Memory-system DSE on the arch/dram timing model: sweep channel and
 * bank counts, run the representative workload's input preloads
 * through the model, and report preload latency, row-buffer locality,
 * and queued bank-level parallelism.  The compute configuration is
 * pinned to the paper's (D=3, B=64, R=32) so only the memory system
 * varies.
 */
void
printMemoryDse(const std::vector<core::Dag> &dags,
               const std::vector<std::vector<double>> &inputs)
{
    auto runPoint = [&](uint32_t channels, uint32_t banks,
                        StatGroup &events, uint64_t &stall_cycles) {
        arch::ArchConfig cfg;
        cfg.dramChannels = channels;
        cfg.dramBanksPerRank = banks;
        arch::Accelerator accel(cfg);
        stall_cycles = 0;
        for (size_t i = 0; i < dags.size(); ++i) {
            compiler::Program prog =
                compiler::compile(dags[i], cfg.compilerTarget());
            arch::ExecutionResult r = accel.run(prog, inputs[i]);
            stall_cycles += r.dmaStallCycles;
            for (const auto &kv : r.events.all())
                events.inc(kv.first, kv.second);
        }
    };

    Table t({"Channels", "Banks/ch", "Preload stall [cyc]",
             "Row hit %", "Conflicts", "BLP"});
    for (uint32_t channels : {1u, 2u, 4u, 8u}) {
        for (uint32_t banks : {2u, 4u, 8u, 16u}) {
            StatGroup events;
            uint64_t stall = 0;
            runPoint(channels, banks, events, stall);
            uint64_t hits = events.get("dram_row_hits");
            uint64_t bursts = events.get("dram_bursts");
            double hit_pct =
                bursts ? 100.0 * double(hits) / double(bursts) : 0.0;
            double blp = double(events.get("dram_blp_x100")) /
                         (100.0 * double(dags.size()));
            t.addRow({std::to_string(channels), std::to_string(banks),
                      std::to_string(stall), Table::num(hit_pct, 1),
                      std::to_string(events.get("dram_row_conflicts")),
                      Table::num(blp, 2)});
        }
    }
    std::printf("\n");
    t.print("Memory-system DSE — input preload through the DRAM "
            "timing model (D=3, B=64, R=32 fixed)");

    // Per-bank counters at the paper's memory configuration.
    StatGroup events;
    uint64_t stall = 0;
    runPoint(8, 8, events, stall);
    std::printf("per-bank row-buffer counters (8 channels x 8 banks, "
                "touched banks only):\n");
    for (const auto &kv : events.all()) {
        if (kv.first.rfind("dram_c", 0) == 0)
            std::printf("  %s = %llu\n", kv.first.c_str(),
                        (unsigned long long)kv.second);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    std::vector<core::Dag> dags;
    std::vector<std::vector<double>> inputs;
    buildWorkload(dags, inputs);
    printDse(dags, inputs);
    printMemoryDse(dags, inputs);
    return 0;
}
