/**
 * @file
 * Tests for pipeline-trace rendering and export: timeline layout,
 * clipping, marker collisions, Chrome trace-event JSON structure and
 * escaping, and trace merging, driven by real BcpPipeline traces.
 */

#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "arch/symbolic.h"
#include "arch/trace_export.h"
#include "logic/cnf.h"
#include "util/rng.h"

using namespace reason;
using namespace reason::arch;

namespace {

/** A real trace from a small implication chain with a conflict. */
std::vector<TraceEvent>
sampleTrace()
{
    logic::CnfFormula f(8);
    f.addClause({-1, 2});
    f.addClause({-2, 3});
    f.addClause({-3, 4});
    f.addClause({-4, -2});
    ArchConfig cfg;
    BcpPipeline pipe(f, cfg);
    BcpResult r = pipe.decide(logic::Lit::make(0, false), true);
    EXPECT_TRUE(r.conflict);
    EXPECT_FALSE(r.trace.empty());
    return r.trace;
}

} // namespace

TEST(TraceExport, TimelineContainsAllUnitsAndEvents)
{
    auto trace = sampleTrace();
    std::string tl = renderTimeline(trace);

    for (const auto &e : trace) {
        EXPECT_NE(tl.find(e.unit), std::string::npos) << e.unit;
        EXPECT_NE(tl.find(e.detail), std::string::npos) << e.detail;
    }
    // One row per distinct unit, bounded by pipes.
    EXPECT_NE(tl.find("|"), std::string::npos);
    EXPECT_NE(tl.find("events:"), std::string::npos);
}

TEST(TraceExport, TimelineRowsShareWidth)
{
    auto trace = sampleTrace();
    std::string tl = renderTimeline(trace);
    // All |...| segments have equal width.
    size_t width = 0;
    std::istringstream is(tl);
    std::string line;
    while (std::getline(is, line)) {
        size_t a = line.find('|');
        if (a == std::string::npos)
            continue;
        size_t b = line.rfind('|');
        if (width == 0)
            width = b - a;
        else
            EXPECT_EQ(b - a, width) << line;
    }
    EXPECT_GT(width, 0u);
}

TEST(TraceExport, EmptyTrace)
{
    EXPECT_EQ(renderTimeline({}), "(empty trace)\n");
    EXPECT_EQ(toChromeTrace({}), "[\n]\n");
}

TEST(TraceExport, TimelineClipsLongTraces)
{
    std::vector<TraceEvent> trace;
    for (uint64_t t = 0; t < 200; t += 10)
        trace.push_back({t, "control", "tick"});
    std::string tl = renderTimeline(trace, 32);
    EXPECT_NE(tl.find("clipped"), std::string::npos);
}

TEST(TraceExport, CollidingEventsMarkStar)
{
    std::vector<TraceEvent> trace{{5, "fifo", "push x1"},
                                  {5, "fifo", "push x2"}};
    std::string tl = renderTimeline(trace);
    EXPECT_NE(tl.find('*'), std::string::npos);
}

TEST(TraceExport, ChromeTraceIsWellFormed)
{
    auto trace = sampleTrace();
    std::string json = toChromeTrace(trace);

    // Structure: array of objects, one instant event per TraceEvent
    // plus one thread_name record per distinct unit.
    size_t events = 0, pos = 0;
    while ((pos = json.find("\"ph\": \"i\"", pos)) != std::string::npos) {
        ++events;
        pos += 1;
    }
    EXPECT_EQ(events, trace.size());

    size_t opens = std::count(json.begin(), json.end(), '{');
    size_t closes = std::count(json.begin(), json.end(), '}');
    EXPECT_EQ(opens, closes);
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json[json.size() - 2], ']');
    EXPECT_NE(json.find("thread_name"), std::string::npos);
}

TEST(TraceExport, ChromeTraceEscapesSpecials)
{
    std::vector<TraceEvent> trace{
        {1, "control", "detail with \"quotes\" and \\slash\\"}};
    std::string json = toChromeTrace(trace);
    EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos);
    EXPECT_NE(json.find("\\\\slash\\\\"), std::string::npos);
}

TEST(TraceExport, MergePreservesCycleOrder)
{
    std::vector<TraceEvent> a{{3, "fifo", "A"}, {9, "fifo", "B"}};
    std::vector<TraceEvent> b{{1, "wl", "C"}, {5, "dma", "D"}};
    auto merged = mergeTraces({a, b});
    ASSERT_EQ(merged.size(), 4u);
    for (size_t i = 1; i < merged.size(); ++i)
        EXPECT_LE(merged[i - 1].cycle, merged[i].cycle);
    EXPECT_EQ(merged[0].detail, "C");
    EXPECT_EQ(merged[3].detail, "B");
}

TEST(TraceExport, MergedEpisodesRenderAcrossDecisions)
{
    logic::CnfFormula f(12);
    f.addClause({-1, 2});
    f.addClause({-3, 4});
    ArchConfig cfg;
    BcpPipeline pipe(f, cfg);
    std::vector<std::vector<TraceEvent>> episodes;
    episodes.push_back(
        pipe.decide(logic::Lit::make(0, false), true).trace);
    episodes.push_back(
        pipe.decide(logic::Lit::make(2, false), true).trace);
    auto merged = mergeTraces(episodes);
    EXPECT_EQ(merged.size(), episodes[0].size() + episodes[1].size());
    std::string tl = renderTimeline(merged, 128);
    EXPECT_NE(tl.find("broadcast"), std::string::npos);
}
