/**
 * @file
 * Serving-engine tests (sys::ReasonEngine, sys/engine.h):
 *
 *  - coalesced vs one-at-a-time determinism: a request's outputs are
 *    bit-identical no matter how the engine batched it (the canonical
 *    SIMD block-kernel contract of flat_pc.h), and independent of
 *    serveThreads;
 *  - concurrent multi-session submit/wait from several client threads
 *    (the TSan target for the queue/dispatcher synchronization);
 *  - poll-vs-wait equivalence;
 *  - program sessions bit-identical to sequential REASON_execute;
 *  - the Listing-1 compat shim: equality with the pre-redesign
 *    ReasonRuntime behavior and the documented distinct error codes;
 *  - queue behavior: pause/resume occupancy, shutdown failure of
 *    still-queued requests, cross-circuit group separation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "compiler/compile.h"
#include "dag_test_util.h"
#include "pc/flat_cache.h"
#include "random_circuit.h"
#include "sys/engine.h"
#include "sys/reason_api.h"
#include "util/rng.h"

using namespace reason;
using namespace reason::sys;

namespace {

bool
bitEqual(double a, double b)
{
    uint64_t ba, bb;
    std::memcpy(&ba, &a, sizeof ba);
    std::memcpy(&bb, &b, sizeof bb);
    return ba == bb;
}

/** Complete-evidence dataset over a circuit's variables. */
std::vector<pc::Assignment>
sampleRows(Rng &rng, const pc::Circuit &circuit, size_t count)
{
    return pc::sampleDataset(rng, circuit, count);
}

/** One-at-a-time engine outputs: the coalescing-free reference. */
std::vector<double>
serveOneAtATime(const pc::Circuit &circuit,
                const std::vector<pc::Assignment> &rows,
                unsigned serve_threads = 1)
{
    ServeOptions options;
    options.maxBatch = 1;
    options.serveThreads = serve_threads;
    ReasonEngine engine(options);
    Session session = engine.createSession(circuit);
    std::vector<double> out;
    for (const pc::Assignment &x : rows)
        out.push_back(session.wait(session.submit(x))->outputs[0]);
    return out;
}

} // namespace

// ---------------------------------------------------------------------------
// Circuit sessions: determinism of coalesced vs one-at-a-time.
// ---------------------------------------------------------------------------

TEST(EngineCircuit, SubmitWaitMatchesReferenceWalker)
{
    Rng rng(101);
    pc::Circuit circuit = pc::randomCircuit(rng, 24, 2, 3, 6);
    std::vector<pc::Assignment> rows = sampleRows(rng, circuit, 20);

    ReasonEngine engine;
    Session session = engine.createSession(circuit);
    for (const pc::Assignment &x : rows) {
        std::shared_ptr<const Request> r =
            session.wait(session.submit(x));
        EXPECT_EQ(r->error, REASON_OK);
        ASSERT_EQ(r->outputs.size(), 1u);
        // The engine runs the SoA block path; the reference walker is
        // the correctness oracle within the flat-engine contract.
        EXPECT_NEAR(r->outputs[0], circuit.logLikelihood(x), 1e-10);
        EXPECT_GT(r->latencyNs(), 0u);
    }
    EngineStats stats = engine.stats();
    EXPECT_EQ(stats.requests, rows.size());
    EXPECT_EQ(stats.completed, rows.size());
}

TEST(EngineCircuit, CoalescedBitIdenticalToOneAtATime)
{
    Rng rng(102);
    pc::Circuit circuit = pc::randomCircuit(rng, 32, 2, 4, 8);
    std::vector<pc::Assignment> rows = sampleRows(rng, circuit, 61);
    std::vector<double> reference = serveOneAtATime(circuit, rows);

    // Coalesce across two sessions with a held dispatcher, through
    // several maxBatch shapes (including ones that force masked
    // tail lanes).
    for (unsigned max_batch : {2u, 7u, 16u, 64u}) {
        ServeOptions options;
        options.maxBatch = max_batch;
        options.startPaused = true;
        ReasonEngine engine(options);
        Session a = engine.createSession(circuit);
        Session b = engine.createSession(circuit);
        std::vector<RequestHandle> handles;
        for (size_t i = 0; i < rows.size(); ++i)
            handles.push_back((i % 2 ? b : a).submit(rows[i]));
        engine.resume();
        for (size_t i = 0; i < rows.size(); ++i) {
            std::shared_ptr<const Request> r =
                (i % 2 ? b : a).wait(handles[i]);
            EXPECT_EQ(r->error, REASON_OK);
            EXPECT_TRUE(bitEqual(r->outputs[0], reference[i]))
                << "maxBatch " << max_batch << " row " << i;
        }
        if (max_batch > 1) {
            EXPECT_GT(engine.stats().meanBatchOccupancy, 1.0);
        }
    }
}

TEST(EngineCircuit, ServeThreadsNeverChangeResults)
{
    Rng rng(103);
    pc::Circuit circuit = pc::randomCircuit(rng, 48, 2, 4, 8);
    std::vector<pc::Assignment> rows = sampleRows(rng, circuit, 33);
    std::vector<double> reference = serveOneAtATime(circuit, rows);

    for (unsigned threads : {2u, 4u}) {
        ServeOptions options;
        options.maxBatch = 16;
        options.serveThreads = threads;
        options.startPaused = true;
        ReasonEngine engine(options);
        Session session = engine.createSession(circuit);
        std::vector<RequestHandle> handles;
        for (const pc::Assignment &x : rows)
            handles.push_back(session.submit(x));
        engine.resume();
        for (size_t i = 0; i < rows.size(); ++i)
            EXPECT_TRUE(bitEqual(
                session.wait(handles[i])->outputs[0], reference[i]))
                << "threads " << threads << " row " << i;
    }
}

TEST(EngineCircuit, SubmitBatchMatchesSingleSubmits)
{
    Rng rng(104);
    pc::Circuit circuit = pc::randomCircuit(rng, 16, 2, 3, 6);
    std::vector<pc::Assignment> rows = sampleRows(rng, circuit, 13);
    std::vector<double> reference = serveOneAtATime(circuit, rows);

    ReasonEngine engine;
    Session session = engine.createSession(circuit);
    std::shared_ptr<const Request> r =
        session.wait(session.submitBatch(rows));
    EXPECT_EQ(r->error, REASON_OK);
    ASSERT_EQ(r->outputs.size(), rows.size());
    for (size_t i = 0; i < rows.size(); ++i)
        EXPECT_TRUE(bitEqual(r->outputs[i], reference[i])) << i;
}

TEST(EngineCircuit, MarginalQueriesAndDegenerateStructures)
{
    // Partial assignments (kMissing marginalization) over the
    // degenerate random structures of the differential harness.
    Rng rng(105);
    for (int round = 0; round < 10; ++round) {
        pc::Circuit circuit = testutil::randomTestCircuit(rng);
        std::vector<pc::Assignment> rows =
            testutil::randomPartialAssignments(rng, circuit, 9, 0.3);
        std::vector<double> reference = serveOneAtATime(circuit, rows);

        ServeOptions options;
        options.startPaused = true;
        ReasonEngine engine(options);
        Session session = engine.createSession(circuit);
        std::vector<RequestHandle> handles;
        for (const pc::Assignment &x : rows)
            handles.push_back(session.submit(x));
        engine.resume();
        for (size_t i = 0; i < rows.size(); ++i) {
            std::shared_ptr<const Request> r =
                session.wait(handles[i]);
            EXPECT_EQ(r->error, REASON_OK);
            EXPECT_TRUE(bitEqual(r->outputs[0], reference[i]))
                << "round " << round << " row " << i;
            const double oracle = circuit.logLikelihood(rows[i]);
            if (std::isinf(oracle))
                EXPECT_EQ(r->outputs[0], oracle);
            else
                EXPECT_NEAR(r->outputs[0], oracle, 1e-10);
        }
    }
}

TEST(EngineCircuit, DistinctCircuitsNeverShareBatches)
{
    Rng rng(106);
    pc::Circuit c1 = pc::randomCircuit(rng, 12, 2, 3, 4);
    pc::Circuit c2 = pc::randomCircuit(rng, 20, 2, 3, 4);
    std::vector<pc::Assignment> r1 = sampleRows(rng, c1, 10);
    std::vector<pc::Assignment> r2 = sampleRows(rng, c2, 10);
    std::vector<double> ref1 = serveOneAtATime(c1, r1);
    std::vector<double> ref2 = serveOneAtATime(c2, r2);

    ServeOptions options;
    options.startPaused = true;
    ReasonEngine engine(options);
    Session s1 = engine.createSession(c1);
    Session s2 = engine.createSession(c2);
    std::vector<RequestHandle> h1, h2;
    for (size_t i = 0; i < r1.size(); ++i) {
        h1.push_back(s1.submit(r1[i]));
        h2.push_back(s2.submit(r2[i]));
    }
    engine.resume();
    for (size_t i = 0; i < r1.size(); ++i) {
        EXPECT_TRUE(bitEqual(s1.wait(h1[i])->outputs[0], ref1[i]));
        EXPECT_TRUE(bitEqual(s2.wait(h2[i])->outputs[0], ref2[i]));
    }
    // Interleaved submissions over two distinct lowerings: at least
    // two batches, and every batch carried one key only (implied by
    // the correct per-circuit results above).
    EXPECT_GE(engine.stats().batches, 2u);
}

// ---------------------------------------------------------------------------
// Poll vs wait.
// ---------------------------------------------------------------------------

TEST(EnginePoll, PollVsWaitEquivalence)
{
    Rng rng(107);
    pc::Circuit circuit = pc::randomCircuit(rng, 16, 2, 3, 6);
    std::vector<pc::Assignment> rows = sampleRows(rng, circuit, 8);
    std::vector<double> reference = serveOneAtATime(circuit, rows);

    ReasonEngine engine;
    Session session = engine.createSession(circuit);
    for (size_t i = 0; i < rows.size(); ++i) {
        RequestHandle h = session.submit(rows[i]);
        // Spin on poll: must converge without ever calling wait.
        while (!session.poll(h))
            std::this_thread::yield();
        // Results are readable through the handle once poll says done.
        EXPECT_EQ(h.error(), REASON_OK);
        EXPECT_TRUE(bitEqual(h.outputs()[0], reference[i]));
        // wait() after completion returns immediately, same result.
        EXPECT_TRUE(bitEqual(session.wait(h)->outputs[0],
                             reference[i]));
        EXPECT_TRUE(session.poll(h));
    }
}

// ---------------------------------------------------------------------------
// Concurrent multi-session serving (TSan target).
// ---------------------------------------------------------------------------

TEST(EngineConcurrent, MultiSessionSubmitWait)
{
    Rng rng(108);
    pc::Circuit circuit = pc::randomCircuit(rng, 32, 2, 4, 8);
    constexpr size_t kClients = 4;
    constexpr size_t kPerClient = 24;
    std::vector<pc::Assignment> rows =
        sampleRows(rng, circuit, kClients * kPerClient);
    std::vector<double> reference = serveOneAtATime(circuit, rows);

    ServeOptions options;
    options.maxBatch = 16;
    ReasonEngine engine(options);
    std::vector<Session> sessions;
    for (size_t c = 0; c < kClients; ++c)
        sessions.push_back(engine.createSession(circuit));

    std::vector<std::vector<double>> got(kClients);
    std::vector<std::thread> clients;
    for (size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            // Mixed submit styles, async then wait — many client
            // threads against one queue and dispatcher.
            std::vector<RequestHandle> handles;
            for (size_t q = 0; q < kPerClient; ++q)
                handles.push_back(
                    sessions[c].submit(rows[c * kPerClient + q]));
            for (RequestHandle &h : handles) {
                std::shared_ptr<const Request> r = sessions[c].wait(h);
                ASSERT_EQ(r->error, REASON_OK);
                got[c].push_back(r->outputs[0]);
            }
        });
    }
    for (std::thread &t : clients)
        t.join();

    for (size_t c = 0; c < kClients; ++c)
        for (size_t q = 0; q < kPerClient; ++q)
            EXPECT_TRUE(bitEqual(got[c][q],
                                 reference[c * kPerClient + q]))
                << "client " << c << " query " << q;
    EngineStats stats = engine.stats();
    EXPECT_EQ(stats.requests, rows.size());
    EXPECT_EQ(stats.completed, rows.size());
}

// ---------------------------------------------------------------------------
// Program (Listing-1) sessions.
// ---------------------------------------------------------------------------

TEST(EngineProgram, TwoSessionsBitIdenticalToSequentialExecute)
{
    Rng rng(109);
    core::Dag dag = testutil::randomDag(rng, 4, 24, 3);
    arch::ArchConfig cfg;
    compiler::Program prog =
        compiler::compile(dag, cfg.compilerTarget());

    constexpr int kBatches = 6;
    constexpr int kBatchSize = 3;
    std::vector<std::vector<double>> neural(kBatches);
    for (int q = 0; q < kBatches; ++q)
        for (int b = 0; b < kBatchSize; ++b) {
            auto x = testutil::randomInputs(rng, 4);
            neural[q].insert(neural[q].end(), x.begin(), x.end());
        }

    // Pre-redesign oracle: sequential REASON_execute through the
    // Listing-1 shim, one runtime per logical tenant.
    std::vector<std::vector<double>> expected(kBatches,
                                              std::vector<double>(
                                                  kBatchSize, 0.0));
    {
        ReasonRuntime rt(cfg, prog);
        for (int q = 0; q < kBatches; ++q)
            ASSERT_EQ(rt.REASON_execute(q, kBatchSize,
                                        neural[q].data(), nullptr,
                                        expected[q].data()),
                      REASON_OK);
    }

    // Engine: two program sessions served concurrently.
    ReasonEngine engine;
    Session s[2] = {engine.createSession(cfg, prog),
                    engine.createSession(cfg, prog)};
    std::vector<std::vector<double>> got(2);
    std::vector<std::thread> clients;
    for (int c = 0; c < 2; ++c) {
        clients.emplace_back([&, c] {
            std::vector<RequestHandle> handles;
            for (int q = c; q < kBatches; q += 2)
                handles.push_back(s[c].submitProgram(
                    kBatchSize, neural[q].data(),
                    REASON_MODE_PROBABILISTIC));
            for (RequestHandle &h : handles) {
                std::shared_ptr<const Request> r = s[c].wait(h);
                ASSERT_EQ(r->error, REASON_OK);
                got[c].insert(got[c].end(), r->outputs.begin(),
                              r->outputs.end());
                EXPECT_GT(r->execCycles, 0u);
            }
        });
    }
    for (std::thread &t : clients)
        t.join();

    for (int q = 0; q < kBatches; ++q)
        for (int b = 0; b < kBatchSize; ++b)
            EXPECT_TRUE(bitEqual(got[q % 2][(q / 2) * kBatchSize + b],
                                 expected[q][b]))
                << "batch " << q << " row " << b;
}

// ---------------------------------------------------------------------------
// Submission validation and lifecycle errors.
// ---------------------------------------------------------------------------

TEST(EngineErrors, DistinctSubmissionErrorCodes)
{
    Rng rng(110);
    pc::Circuit circuit = pc::randomCircuit(rng, 8, 2, 3, 4);
    core::Dag dag = testutil::randomDag(rng, 3, 10, 3);
    arch::ArchConfig cfg;
    compiler::Program prog =
        compiler::compile(dag, cfg.compilerTarget());

    ReasonEngine engine;
    Session circuit_session = engine.createSession(circuit);
    Session program_session = engine.createSession(cfg, prog);
    std::vector<double> buf(8, 0.5);

    // Empty batch.
    RequestHandle h = circuit_session.submitBatch({});
    EXPECT_TRUE(circuit_session.poll(h));
    EXPECT_EQ(h.error(), REASON_ERR_BAD_BATCH);
    EXPECT_EQ(program_session.submitProgram(0, buf.data(), 0).error(),
              REASON_ERR_BAD_BATCH);

    // Null buffer.
    EXPECT_EQ(program_session.submitProgram(1, nullptr, 0).error(),
              REASON_ERR_NULL_BUFFER);

    // Unknown reasoning mode.
    EXPECT_EQ(program_session.submitProgram(1, buf.data(), 7).error(),
              REASON_ERR_BAD_MODE);
    EXPECT_EQ(program_session.submitProgram(1, buf.data(), -1).error(),
              REASON_ERR_BAD_MODE);

    // Assignment shape violations.
    EXPECT_EQ(circuit_session.submit(pc::Assignment{0, 1}).error(),
              REASON_ERR_BAD_ASSIGNMENT); // too short
    pc::Assignment bad(8, 0);
    bad[3] = 5; // arity is 2
    EXPECT_EQ(circuit_session.submit(bad).error(),
              REASON_ERR_BAD_ASSIGNMENT);

    // Kind mismatch: circuit submits on a program session and vice
    // versa, plus submits through a default-constructed session.
    EXPECT_EQ(program_session.submit(pc::Assignment(8, 0)).error(),
              REASON_ERR_WRONG_SESSION);
    EXPECT_EQ(circuit_session.submitProgram(1, buf.data(), 0).error(),
              REASON_ERR_WRONG_SESSION);
    Session invalid;
    EXPECT_EQ(invalid.submit(pc::Assignment(8, 0)).error(),
              REASON_ERR_WRONG_SESSION);
    // Rejection handles from an invalid session are still observable
    // through that session (completed synchronously, no engine needed).
    RequestHandle rejected = invalid.submit(pc::Assignment(8, 0));
    EXPECT_TRUE(invalid.poll(rejected));
    EXPECT_EQ(invalid.wait(rejected)->error,
              REASON_ERR_WRONG_SESSION);

    // Rejected handles complete immediately; waiting is a no-op.
    EXPECT_EQ(circuit_session.wait(circuit_session.submitBatch({}))
                  ->error,
              REASON_ERR_BAD_BATCH);

    // Valid submissions still succeed afterwards.
    pc::Assignment ok(8, 0);
    EXPECT_EQ(circuit_session.wait(circuit_session.submit(ok))->error,
              REASON_OK);
}

TEST(EngineErrors, ShutdownFailsQueuedRequests)
{
    Rng rng(111);
    pc::Circuit circuit = pc::randomCircuit(rng, 8, 2, 3, 4);
    std::vector<pc::Assignment> rows = sampleRows(rng, circuit, 4);

    std::vector<RequestHandle> handles;
    {
        ServeOptions options;
        options.startPaused = true; // requests stay queued
        ReasonEngine engine(options);
        Session session = engine.createSession(circuit);
        for (const pc::Assignment &x : rows)
            handles.push_back(session.submit(x));
        // Engine destroyed with the queue still paused.
    }
    for (RequestHandle &h : handles) {
        // Handles outlive the engine; results are final.
        EXPECT_EQ(h.error(), REASON_ERR_SHUTDOWN);
        EXPECT_TRUE(h.outputs().empty());
    }
}

// ---------------------------------------------------------------------------
// Listing-1 compatibility shim.
// ---------------------------------------------------------------------------

TEST(CompatShim, MatchesPreRedesignRuntimeOnSeedWorkload)
{
    Rng rng(112);
    core::Dag dag = testutil::randomDag(rng, 5, 30, 3);
    arch::ArchConfig cfg;
    compiler::Program prog =
        compiler::compile(dag, cfg.compilerTarget());

    constexpr int kBatchSize = 4;
    std::vector<double> neural;
    std::vector<std::vector<double>> per_item;
    for (int b = 0; b < kBatchSize; ++b) {
        auto x = testutil::randomInputs(rng, 5);
        per_item.push_back(x);
        neural.insert(neural.end(), x.begin(), x.end());
    }

    // Pre-redesign oracle: the exact per-row accelerator loop the old
    // ReasonRuntime::REASON_execute ran (preloaded from row 1 on).
    arch::Accelerator accel(cfg);
    std::vector<double> expected(kBatchSize, 0.0);
    uint64_t expected_cycles = 0;
    arch::ExecutionResult expected_last;
    for (int b = 0; b < kBatchSize; ++b) {
        std::vector<double> row(per_item[b]);
        arch::ExecutionResult r = accel.run(prog, row, b > 0);
        expected[b] = r.rootValue;
        expected_cycles += r.cycles;
        if (b == kBatchSize - 1)
            expected_last = r;
    }

    ReasonRuntime rt(cfg, prog);
    std::vector<double> symbolic(kBatchSize, 0.0);
    int mode = REASON_MODE_PROBABILISTIC;
    ASSERT_EQ(rt.REASON_execute(3, kBatchSize, neural.data(), &mode,
                                symbolic.data()),
              REASON_OK);
    for (int b = 0; b < kBatchSize; ++b) {
        EXPECT_TRUE(bitEqual(symbolic[b], expected[b])) << b;
        // The accelerator is bit-identical to Dag::evaluate by
        // contract; check the chain end to end too.
        EXPECT_DOUBLE_EQ(symbolic[b], dag.evaluateRoot(per_item[b]));
    }
    EXPECT_EQ(rt.totalCycles(), expected_cycles);
    ASSERT_EQ(rt.results().count(3), 1u);
    EXPECT_EQ(rt.results().at(3).cycles, expected_last.cycles);
    EXPECT_TRUE(
        bitEqual(rt.results().at(3).rootValue, expected_last.rootValue));

    // Listing-1 status machine and shared-memory flags.
    EXPECT_EQ(rt.REASON_check_status(3, false), REASON_IDLE);
    EXPECT_TRUE(rt.sharedMemory().symbolicReady);
    EXPECT_FALSE(rt.sharedMemory().neuralReady);
    EXPECT_EQ(rt.sharedMemory().symbolicBuffer.size(),
              size_t(kBatchSize));
}

TEST(CompatShim, DistinctErrorCodes)
{
    Rng rng(113);
    core::Dag dag = testutil::randomDag(rng, 3, 10, 3);
    arch::ArchConfig cfg;
    ReasonRuntime rt(cfg, compiler::compile(dag, cfg.compilerTarget()));
    std::vector<double> buf(8, 0.5);

    EXPECT_EQ(rt.REASON_execute(0, 0, buf.data(), nullptr, buf.data()),
              REASON_ERR_BAD_BATCH);
    EXPECT_EQ(rt.REASON_execute(0, -3, buf.data(), nullptr, buf.data()),
              REASON_ERR_BAD_BATCH);
    EXPECT_EQ(rt.REASON_execute(0, 1, nullptr, nullptr, buf.data()),
              REASON_ERR_NULL_BUFFER);
    EXPECT_EQ(rt.REASON_execute(0, 1, buf.data(), nullptr, nullptr),
              REASON_ERR_NULL_BUFFER);
    int bad_mode = 42;
    EXPECT_EQ(rt.REASON_execute(0, 1, buf.data(), &bad_mode,
                                buf.data()),
              REASON_ERR_BAD_MODE);

    // Errors leave no trace: the id is still available.
    EXPECT_EQ(rt.REASON_check_status(0, false), REASON_IDLE);
    EXPECT_EQ(rt.totalCycles(), 0u);

    // Duplicate batch ids are a documented error (previously a silent
    // last-write-wins overwrite).
    int mode = REASON_MODE_PROBABILISTIC;
    EXPECT_EQ(rt.REASON_execute(7, 1, buf.data(), &mode, buf.data()),
              REASON_OK);
    EXPECT_EQ(rt.REASON_execute(7, 1, buf.data(), &mode, buf.data()),
              REASON_ERR_DUPLICATE_BATCH);
    EXPECT_EQ(rt.results().size(), 1u);
}

TEST(CompatShim, RuntimeOptionsServingKnobsAccepted)
{
    Rng rng(114);
    core::Dag dag = testutil::randomDag(rng, 3, 12, 3);
    arch::ArchConfig cfg;
    compiler::Program prog =
        compiler::compile(dag, cfg.compilerTarget());

    RuntimeOptions options;
    options.maxBatch = 8;
    options.maxCoalesceWindowUs = 50;
    options.serveThreads = 2;
    ReasonRuntime rt(cfg, prog, options);
    EXPECT_EQ(rt.engine().options().maxBatch, 8u);
    EXPECT_EQ(rt.engine().options().maxCoalesceWindowUs, 50u);

    std::vector<double> neural = testutil::randomInputs(rng, 3);
    std::vector<double> symbolic(1, 0.0);
    EXPECT_EQ(rt.REASON_execute(1, 1, neural.data(), nullptr,
                                symbolic.data()),
              REASON_OK);
    EXPECT_DOUBLE_EQ(symbolic[0], dag.evaluateRoot(neural));
}

// ---------------------------------------------------------------------------
// Coalescing window (linger) still preserves results.
// ---------------------------------------------------------------------------

TEST(EngineWindow, LingerCoalescesLateArrivalsDeterministically)
{
    Rng rng(115);
    pc::Circuit circuit = pc::randomCircuit(rng, 16, 2, 3, 6);
    std::vector<pc::Assignment> rows = sampleRows(rng, circuit, 24);
    std::vector<double> reference = serveOneAtATime(circuit, rows);

    ServeOptions options;
    options.maxBatch = 32;
    options.maxCoalesceWindowUs = 2000;
    ReasonEngine engine(options);
    Session session = engine.createSession(circuit);
    std::vector<RequestHandle> handles;
    for (const pc::Assignment &x : rows)
        handles.push_back(session.submit(x));
    for (size_t i = 0; i < rows.size(); ++i)
        EXPECT_TRUE(bitEqual(session.wait(handles[i])->outputs[0],
                             reference[i]))
            << i;
}
