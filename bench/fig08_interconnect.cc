/**
 * @file
 * Fig. 8 reproduction: interconnect scalability.  (a) normalized
 * latency breakdown (memory / PE / peripheries / inter-node) and (b)
 * broadcast-to-root cycle counts for tree, mesh, and all-to-one
 * topologies as the leaf count scales from N to 8N.
 *
 * Paper shape: tree O(log N) vs mesh O(sqrt N) vs bus O(N); the bus's
 * periphery and inter-node terms blow up with fan-out.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "arch/benes.h"
#include "arch/topology.h"
#include "util/rng.h"
#include "util/table.h"

using namespace reason;
using namespace reason::arch;

namespace {

void
BM_BenesRoute64(benchmark::State &state)
{
    BenesNetwork net(6);
    Rng rng(1);
    auto p32 = rng.permutation(64);
    std::vector<uint32_t> dest(p32.begin(), p32.end());
    for (auto _ : state)
        benchmark::DoNotOptimize(net.route(dest));
}
BENCHMARK(BM_BenesRoute64);

void
printFig8()
{
    const uint64_t base = 8; // N = leaves of one depth-3 tree PE
    Table cycles({"Leaves", "Tree", "Mesh", "All-to-One"});
    for (int mult = 1; mult <= 8; ++mult) {
        uint64_t n = base * mult;
        cycles.addRow(
            {std::to_string(mult) + "N",
             std::to_string(broadcastToRootCycles(Topology::Tree, n)),
             std::to_string(broadcastToRootCycles(Topology::Mesh, n)),
             std::to_string(
                 broadcastToRootCycles(Topology::AllToOne, n))});
    }
    std::printf("\n");
    cycles.print("Fig. 8(b) — broadcast-to-root cycles "
                 "(tree O(logN), mesh O(sqrtN), bus O(N))");

    Table latency({"Leaves", "Topology", "Memory", "PE", "Peripheries",
                   "Inter-node", "Total"});
    for (int mult : {1, 2, 4, 8}) {
        uint64_t n = base * mult;
        for (Topology t :
             {Topology::Tree, Topology::Mesh, Topology::AllToOne}) {
            LatencyBreakdown b = latencyBreakdown(t, n);
            latency.addRow({std::to_string(mult) + "N",
                            topologyName(t), Table::num(b.memory, 2),
                            Table::num(b.pe, 2),
                            Table::num(b.peripheries, 2),
                            Table::num(b.interNode, 2),
                            Table::num(b.total(), 2)});
        }
    }
    std::printf("\n");
    latency.print("Fig. 8(a) — normalized latency breakdown");

    // Benes crossbar: show rearrangeability at the register-file scale.
    BenesNetwork net(6);
    Rng rng(99);
    int ok = 0;
    for (int t = 0; t < 100; ++t) {
        auto p32 = rng.permutation(64);
        std::vector<uint32_t> dest(p32.begin(), p32.end());
        ok += net.verifyPermutation(dest) ? 1 : 0;
    }
    std::printf("\nBenes 64x64: %d/100 random permutations routed "
                "conflict-free (%u stages, %u switches)\n",
                ok, net.numStages(), net.numSwitches());
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printFig8();
    return 0;
}
