#include "workloads/workloads.h"

#include <algorithm>
#include <cmath>

#include "logic/solver.h"
#include "pc/flat_cache.h"
#include "pc/flat_pc.h"
#include "util/logging.h"
#include "util/rng.h"

namespace reason {
namespace workloads {

const char *
workloadName(WorkloadId id)
{
    switch (id) {
      case WorkloadId::AlphaGeo: return "AlphaGeometry";
      case WorkloadId::R2Guard: return "R2-Guard";
      case WorkloadId::GeLaTo: return "GeLaTo";
      case WorkloadId::CtrlG: return "Ctrl-G";
      case WorkloadId::NeuroPC: return "NeuroPC";
      case WorkloadId::Linc: return "LINC";
    }
    return "?";
}

const char *
datasetName(DatasetId id)
{
    switch (id) {
      case DatasetId::IMO: return "IMO";
      case DatasetId::MiniF2F: return "MiniF2F";
      case DatasetId::TwinSafety: return "TwinSafety";
      case DatasetId::XSTest: return "XSTest";
      case DatasetId::CommonGen: return "CommonGen";
      case DatasetId::News: return "News";
      case DatasetId::CoAuthor: return "CoAuthor";
      case DatasetId::AwA2: return "AwA2";
      case DatasetId::FOLIO: return "FOLIO";
      case DatasetId::ProofWriter: return "ProofWriter";
    }
    return "?";
}

WorkloadId
workloadOf(DatasetId id)
{
    switch (id) {
      case DatasetId::IMO:
      case DatasetId::MiniF2F: return WorkloadId::AlphaGeo;
      case DatasetId::TwinSafety:
      case DatasetId::XSTest: return WorkloadId::R2Guard;
      case DatasetId::CommonGen:
      case DatasetId::News: return WorkloadId::GeLaTo;
      case DatasetId::CoAuthor: return WorkloadId::CtrlG;
      case DatasetId::AwA2: return WorkloadId::NeuroPC;
      case DatasetId::FOLIO:
      case DatasetId::ProofWriter: return WorkloadId::Linc;
    }
    return WorkloadId::AlphaGeo;
}

std::vector<DatasetId>
allDatasets()
{
    return {DatasetId::IMO,       DatasetId::MiniF2F,
            DatasetId::TwinSafety, DatasetId::XSTest,
            DatasetId::CommonGen, DatasetId::News,
            DatasetId::CoAuthor,  DatasetId::AwA2,
            DatasetId::FOLIO,     DatasetId::ProofWriter};
}

std::vector<WorkloadId>
allWorkloads()
{
    return {WorkloadId::AlphaGeo, WorkloadId::R2Guard,
            WorkloadId::GeLaTo,   WorkloadId::CtrlG,
            WorkloadId::NeuroPC,  WorkloadId::Linc};
}

namespace {

/** Neural runtime share on A6000 per workload (Fig. 3(a)). */
double
neuralFraction(WorkloadId id)
{
    switch (id) {
      case WorkloadId::AlphaGeo: return 0.362;
      case WorkloadId::R2Guard: return 0.373;
      case WorkloadId::GeLaTo: return 0.634;
      case WorkloadId::CtrlG: return 0.361;
      case WorkloadId::NeuroPC: return 0.495;
      case WorkloadId::Linc: return 0.652;
    }
    return 0.5;
}

/**
 * Deduction-style SAT suite: planted (satisfiable) instances mixed with
 * structured unsatisfiable ones (pigeonhole and over-constrained
 * planted-complement formulas), under a conflict budget that models the
 * proof deadline the end task imposes.
 */
SatSuite
makeSatSuite(Rng &rng, uint32_t count, uint32_t num_vars,
             double clause_ratio, uint64_t budget, double unsat_frac,
             uint32_t extra_binary_pct)
{
    SatSuite suite;
    suite.conflictBudget = budget;
    for (uint32_t i = 0; i < count; ++i) {
        bool make_unsat = rng.uniform01() < unsat_frac;
        if (make_unsat) {
            // Pigeonhole instances scale steeply in difficulty; size is
            // randomized so some exceed the budget (accuracy < 100%).
            uint32_t holes = rng.bernoulli(0.15) ? 6 : 5;
            suite.instances.push_back(logic::pigeonhole(holes));
            suite.truth.push_back(0);
        } else {
            uint32_t clauses = static_cast<uint32_t>(
                clause_ratio * double(num_vars));
            std::vector<bool> hidden;
            logic::CnfFormula f =
                logic::plantedKSat(rng, num_vars, clauses, 3, &hidden);
            // Binary clauses planted against the *same* hidden model
            // keep the instance satisfiable while giving the Stage-2
            // implication-graph pruning structure to exploit.
            uint32_t extra = num_vars * extra_binary_pct / 100;
            logic::CnfFormula f2 = logic::plantedKSatWithModel(
                rng, hidden, extra, 2);
            for (const auto &c : f2.clauses())
                f.addClause(c);
            // Rule-chain redundancy (geometry derivations state
            // antecedents their rule chains already imply): implication
            // chains l0 -> l1 -> ... over hidden-true literals, plus
            // clauses that mention both ends of a chain segment — the
            // implied literal is exactly what hidden-literal
            // elimination removes.
            uint32_t chain_len = 6;
            uint32_t num_chains = std::max(1u, num_vars / 12);
            std::vector<std::vector<logic::Lit>> chains;
            for (uint32_t c = 0; c < num_chains; ++c) {
                std::vector<logic::Lit> chain;
                for (uint32_t k = 0; k < chain_len; ++k) {
                    uint32_t v = static_cast<uint32_t>(
                        rng.uniformInt(0, num_vars - 1));
                    chain.push_back(logic::Lit::make(v, !hidden[v]));
                }
                for (uint32_t k = 0; k + 1 < chain.size(); ++k)
                    f.addClause({~chain[k], chain[k + 1]});
                chains.push_back(std::move(chain));
            }
            uint32_t redundant =
                static_cast<uint32_t>(0.40 * double(clauses));
            for (uint32_t rci = 0; rci < redundant; ++rci) {
                const auto &chain = chains[static_cast<size_t>(
                    rng.uniformInt(0, int64_t(chains.size()) - 1))];
                uint32_t i = static_cast<uint32_t>(
                    rng.uniformInt(0, chain_len - 2));
                uint32_t j = static_cast<uint32_t>(
                    rng.uniformInt(i + 1, chain_len - 1));
                uint32_t r = static_cast<uint32_t>(
                    rng.uniformInt(0, num_vars - 1));
                f.addClause({chain[i], chain[j],
                             logic::Lit::make(r, rng.bernoulli(0.5))});
            }
            suite.instances.push_back(std::move(f));
            suite.truth.push_back(1);
        }
    }
    return suite;
}

/** Class-conditional PC suite (NeuroPC / R2-Guard style). */
PcSuite
makePcSuite(Rng &rng, uint32_t num_classes, uint32_t num_vars,
            uint32_t arity, uint32_t num_sums, uint32_t queries_per_class,
            uint32_t calibration_per_class)
{
    PcSuite suite;
    // Wide mixtures (8 product children per sum) carry the low-flow
    // edges that Sec. IV-B's pruning removes.
    for (uint32_t c = 0; c < num_classes; ++c)
        suite.classCircuits.push_back(
            pc::randomCircuit(rng, num_vars, arity, num_sums, 8));
    for (uint32_t c = 0; c < num_classes; ++c) {
        auto cal = pc::sampleDataset(rng, suite.classCircuits[c],
                                     calibration_per_class);
        suite.calibration.insert(suite.calibration.end(), cal.begin(),
                                 cal.end());
        auto qs = pc::sampleDataset(rng, suite.classCircuits[c],
                                    queries_per_class);
        for (auto &q : qs) {
            suite.queries.push_back(std::move(q));
            suite.labels.push_back(c);
        }
    }
    return suite;
}

/** Constrained-decoding HMM suite (GeLaTo / Ctrl-G style). */
HmmSuite
makeHmmSuite(Rng &rng, uint32_t states, uint32_t symbols, uint32_t band,
             uint32_t seq_len, uint32_t num_queries,
             uint32_t num_calibration, uint32_t num_constraints)
{
    HmmSuite suite;
    // Peaked rows (concentration < 1): distilled language HMMs put most
    // mass on few successors, so posterior pruning removes genuinely
    // unused structure without moving the decode.
    suite.model = hmm::Hmm::banded(rng, states, symbols, band, 0.35);
    for (uint32_t i = 0; i < num_calibration; ++i) {
        hmm::Sequence obs;
        suite.model.sample(rng, seq_len, &obs);
        suite.calibration.push_back(std::move(obs));
    }
    for (uint32_t i = 0; i < num_queries; ++i) {
        hmm::Sequence obs;
        std::vector<uint32_t> path;
        suite.model.sample(rng, seq_len, &obs, &path);
        suite.queries.push_back(std::move(obs));
        suite.truePaths.push_back(std::move(path));
    }
    for (uint32_t i = 0; i < num_constraints; ++i) {
        uint32_t pos = static_cast<uint32_t>(
            rng.uniformInt(0, int64_t(seq_len) - 1));
        // Constraint states are drawn from the decoded paths so a
        // correct decoder can succeed.
        uint32_t q = static_cast<uint32_t>(
            rng.uniformInt(0, int64_t(suite.truePaths.size()) - 1));
        suite.constraints.emplace_back(pos, suite.truePaths[q][pos]);
    }
    return suite;
}

struct ScaleParams
{
    uint32_t sat_instances;
    uint32_t sat_vars;
    uint32_t pc_vars;
    uint32_t pc_queries;
    uint32_t hmm_states;
    uint32_t hmm_len;
    uint32_t hmm_queries;
};

ScaleParams
paramsFor(TaskScale scale)
{
    if (scale == TaskScale::Small)
        return {8, 90, 16, 60, 16, 32, 24};
    return {16, 150, 24, 120, 24, 48, 48};
}

} // namespace

TaskBundle
generate(DatasetId dataset, TaskScale scale, uint64_t seed)
{
    Rng rng(seed ^ (uint64_t(dataset) << 32) ^
            (scale == TaskScale::Large ? 0x5a5a5a5aull : 0));
    TaskBundle b;
    b.dataset = dataset;
    b.workload = workloadOf(dataset);
    b.scale = scale;
    b.neuralFractionA6000 = neuralFraction(b.workload);
    ScaleParams p = paramsFor(scale);

    switch (dataset) {
      case DatasetId::IMO:
        b.metricName = "Accuracy";
        b.sat = makeSatSuite(rng, p.sat_instances + 4,
                             p.sat_vars * 5 / 2, 4.25, 1500, 0.20, 40);
        break;
      case DatasetId::MiniF2F:
        b.metricName = "Accuracy";
        b.sat = makeSatSuite(rng, p.sat_instances + 4,
                             p.sat_vars * 2, 4.25, 1200, 0.20, 35);
        break;
      case DatasetId::TwinSafety:
        b.metricName = "AUPRC";
        b.pcs = makePcSuite(rng, 2, p.pc_vars, 2, 3, p.pc_queries, 120);
        b.hmms = makeHmmSuite(rng, p.hmm_states, 24, 3, p.hmm_len / 2,
                              p.hmm_queries / 2, 24, 0);
        break;
      case DatasetId::XSTest:
        b.metricName = "AUPRC";
        b.pcs = makePcSuite(rng, 2, p.pc_vars + 4, 2, 3, p.pc_queries,
                            140);
        b.hmms = makeHmmSuite(rng, p.hmm_states, 20, 2, p.hmm_len / 2,
                              p.hmm_queries / 2, 24, 0);
        break;
      case DatasetId::CommonGen:
        b.metricName = "BLEU";
        b.hmms = makeHmmSuite(rng, p.hmm_states * 2, 48, 3, p.hmm_len,
                              p.hmm_queries, 32, 0);
        break;
      case DatasetId::News:
        b.metricName = "BLEU";
        b.hmms = makeHmmSuite(rng, p.hmm_states * 2, 64, 4, p.hmm_len,
                              p.hmm_queries, 32, 0);
        break;
      case DatasetId::CoAuthor:
        b.metricName = "Success rate";
        b.hmms = makeHmmSuite(rng, p.hmm_states, 40, 3, p.hmm_len,
                              p.hmm_queries, 32, 12);
        break;
      case DatasetId::AwA2:
        b.metricName = "Accuracy";
        b.pcs = makePcSuite(rng, 4, p.pc_vars, 2, 3, p.pc_queries / 2,
                            100);
        break;
      case DatasetId::FOLIO:
        b.metricName = "Accuracy";
        b.sat = makeSatSuite(rng, p.sat_instances, p.sat_vars, 4.1,
                             900, 0.35, 50);
        break;
      case DatasetId::ProofWriter:
        b.metricName = "Accuracy";
        b.sat = makeSatSuite(rng, p.sat_instances, p.sat_vars * 4 / 3,
                             4.2, 1000, 0.30, 45);
        break;
    }
    return b;
}

double
satAccuracy(const SatSuite &suite)
{
    reasonAssert(suite.instances.size() == suite.truth.size(),
                 "suite truth mismatch");
    if (suite.instances.empty())
        return 0.0;
    uint32_t correct = 0;
    for (size_t i = 0; i < suite.instances.size(); ++i) {
        logic::SolverConfig cfg;
        cfg.conflictBudget = suite.conflictBudget;
        logic::CdclSolver solver(suite.instances[i], cfg);
        logic::SolveResult r = solver.solve();
        if ((r == logic::SolveResult::Sat && suite.truth[i] == 1) ||
            (r == logic::SolveResult::Unsat && suite.truth[i] == 0))
            ++correct;
    }
    return double(correct) / double(suite.instances.size());
}

double
pcClassificationAccuracy(const std::vector<pc::Circuit> &class_circuits,
                         const std::vector<pc::Assignment> &queries,
                         const std::vector<uint32_t> &labels)
{
    reasonAssert(queries.size() == labels.size(), "label mismatch");
    if (queries.empty())
        return 0.0;
    // Flat path: lower each class circuit once and stream every query
    // through a reused evaluator (class-major for cache locality).
    std::vector<std::vector<double>> ll(
        class_circuits.size(), std::vector<double>(queries.size()));
    for (uint32_t c = 0; c < class_circuits.size(); ++c) {
        auto flat = pc::cachedLowering(class_circuits[c]);
        pc::CircuitEvaluator eval(*flat);
        eval.logLikelihoodBatch(queries, ll[c]);
    }
    uint32_t correct = 0;
    for (size_t q = 0; q < queries.size(); ++q) {
        double best = -1e300;
        uint32_t arg = 0;
        for (uint32_t c = 0; c < class_circuits.size(); ++c) {
            if (ll[c][q] > best) {
                best = ll[c][q];
                arg = c;
            }
        }
        if (arg == labels[q])
            ++correct;
    }
    return double(correct) / double(queries.size());
}

double
hmmDecodeAgreement(const hmm::Hmm &model,
                   const std::vector<hmm::Sequence> &queries,
                   const std::vector<std::vector<uint32_t>> &true_paths,
                   uint32_t tolerance)
{
    reasonAssert(queries.size() == true_paths.size(), "path mismatch");
    if (queries.empty())
        return 0.0;
    const uint32_t n = model.numStates();
    uint64_t agree = 0;
    uint64_t total = 0;
    for (size_t q = 0; q < queries.size(); ++q) {
        hmm::ViterbiResult v = hmm::viterbi(model, queries[q]);
        for (size_t t = 0; t < v.path.size(); ++t) {
            uint32_t a = v.path[t];
            uint32_t b = true_paths[q][t];
            uint32_t dist = std::min((a + n - b) % n, (b + n - a) % n);
            agree += dist <= tolerance ? 1 : 0;
            ++total;
        }
    }
    return total ? double(agree) / double(total) : 0.0;
}

double
hmmConstraintSuccess(
    const hmm::Hmm &model, const std::vector<hmm::Sequence> &queries,
    const std::vector<std::pair<uint32_t, uint32_t>> &constraints)
{
    if (queries.empty() || constraints.empty())
        return 0.0;
    // A query "succeeds" when its decoded path satisfies at least one
    // of the infill constraints applicable to its length.
    uint32_t success = 0;
    for (const auto &obs : queries) {
        hmm::ViterbiResult v = hmm::viterbi(model, obs);
        bool ok = false;
        for (const auto &c : constraints) {
            if (c.first < v.path.size() &&
                v.path[c.first] == c.second) {
                ok = true;
                break;
            }
        }
        success += ok ? 1 : 0;
    }
    return double(success) / double(queries.size());
}

double
taskMetric(const TaskBundle &bundle)
{
    switch (bundle.dataset) {
      case DatasetId::IMO:
      case DatasetId::MiniF2F:
      case DatasetId::FOLIO:
      case DatasetId::ProofWriter:
        return satAccuracy(bundle.sat);
      case DatasetId::TwinSafety:
      case DatasetId::XSTest:
      case DatasetId::AwA2:
        return pcClassificationAccuracy(bundle.pcs.classCircuits,
                                        bundle.pcs.queries,
                                        bundle.pcs.labels);
      case DatasetId::CommonGen:
      case DatasetId::News:
        return hmmDecodeAgreement(bundle.hmms.model,
                                  bundle.hmms.queries,
                                  bundle.hmms.truePaths);
      case DatasetId::CoAuthor:
        return hmmConstraintSuccess(bundle.hmms.model,
                                    bundle.hmms.queries,
                                    bundle.hmms.constraints);
    }
    return 0.0;
}

} // namespace workloads
} // namespace reason
