/**
 * @file
 * Inter-node interconnect topology models for the scalability analysis of
 * Fig. 8: tree, 2-D mesh, and all-to-one (bus) structures connecting N
 * leaf nodes to the root controller.
 *
 * Cycle counts are derived from hop distances; the latency breakdown adds
 * wire/buffer terms that grow with electrical fan-out, reproducing why
 * bus-based broadcast fails to scale post-layout.
 */

#ifndef REASON_ARCH_TOPOLOGY_H
#define REASON_ARCH_TOPOLOGY_H

#include <cstdint>
#include <string>
#include <vector>

namespace reason {
namespace arch {

/** Interconnect families compared in Fig. 8. */
enum class Topology : uint8_t { Tree, Mesh, AllToOne };

const char *topologyName(Topology t);

/**
 * Cycles for one broadcast from the root to all N leaf nodes (equal to
 * the leaf-to-root reduction depth):
 *   tree  : ceil(log2 N) pipelined hop stages,
 *   mesh  : 2*(sqrt(N)-1) hops across a square mesh,
 *   bus   : N serialized drive slots (fan-out limited repeater chain).
 */
uint64_t broadcastToRootCycles(Topology t, uint64_t num_leaves);

/** Component terms of the normalized latency breakdown (Fig. 8(a)). */
struct LatencyBreakdown
{
    double memory = 0.0;
    double pe = 0.0;
    double peripheries = 0.0;
    double interNode = 0.0;
    double total() const { return memory + pe + peripheries + interNode; }
};

/**
 * Normalized per-operation latency for a fabric with `num_leaves` leaf
 * nodes under each topology.  Memory and PE terms are
 * topology-independent; peripheries grow with buffer insertion for high
 * fan-out; the inter-node term follows broadcastToRootCycles.
 */
LatencyBreakdown latencyBreakdown(Topology t, uint64_t num_leaves);

/** Wire/area proxy: total link count of the topology. */
uint64_t linkCount(Topology t, uint64_t num_leaves);

} // namespace arch
} // namespace reason

#endif // REASON_ARCH_TOPOLOGY_H
