#include "energy/energy_model.h"

#include "util/logging.h"

namespace reason {
namespace energy {

const char *
techNodeName(TechNode node)
{
    switch (node) {
      case TechNode::Tsmc28: return "28nm";
      case TechNode::Tsmc12: return "12nm";
      case TechNode::Tsmc8: return "8nm";
    }
    return "?";
}

TechScaling
techScaling(TechNode node)
{
    // Factors chosen to reproduce Table III's scaled rows:
    // 28nm: 6.00 mm^2 / 2.12 W -> 12nm: 1.37 mm^2 / 1.21 W
    //                          -> 8nm : 0.51 mm^2 / 0.98 W.
    switch (node) {
      case TechNode::Tsmc28:
        return {1.0, 1.0, 1.0};
      case TechNode::Tsmc12:
        return {1.37 / 6.00, 0.50, 0.72};
      case TechNode::Tsmc8:
        return {0.51 / 6.00, 0.38, 0.62};
    }
    return {1.0, 1.0, 1.0};
}

EnergyModel::EnergyModel(TechNode node, EnergyTable energies,
                         AreaTable areas)
    : node_(node), scale_(techScaling(node)), energies_(energies),
      areas_(areas)
{
}

double
EnergyModel::dynamicEnergyJoules(const StatGroup &events) const
{
    const double pj = 1e-12;
    double e = 0.0;
    e += events.get("tree_add_ops") * energies_.treeAddPj;
    e += events.get("tree_mul_ops") * energies_.treeMulPj;
    e += events.get("tree_cmp_ops") * energies_.treeCmpPj;
    e += (events.get("leaf_mul_ops") + events.get("leaf_add_ops")) *
         energies_.leafOpPj;
    e += events.get("regfile_reads") * energies_.regfileReadPj;
    e += events.get("regfile_writes") * energies_.regfileWritePj;
    e += events.get("sram_accesses") * energies_.sramAccessPj;
    e += events.get("spill_writes") * energies_.sramAccessPj;
    e += events.get("dma_bytes") * energies_.dramPjPerByte;
    e += events.get("dma_fetches") * 64 * energies_.dramPjPerByte;
    e += events.get("broadcasts") * energies_.broadcastPj;
    e += (events.get("fifo_overflow_stalls") +
          events.get("fifo_flushed_entries")) *
         energies_.fifoOpPj;
    e += events.get("implications") *
         (energies_.implicationPj + energies_.fifoOpPj);
    e += events.get("wl_lookups") * energies_.wlLookupPj;
    e += events.get("clause_literal_scans") *
         energies_.clauseScanPjPerLit;
    // Symbolic aggregate counters (from the analytic path).
    e += events.get("split_lookaheads") * energies_.broadcastPj;
    e += events.get("split_propagations") * energies_.implicationPj;
    e += events.get("agg_decisions") * energies_.broadcastPj;
    e += events.get("agg_propagations") *
         (energies_.implicationPj + energies_.fifoOpPj +
          energies_.wlLookupPj);
    e += events.get("agg_literal_visits") *
         energies_.clauseScanPjPerLit;
    e += events.get("cycles") * energies_.cyclePj;
    return e * pj * scale_.dynamicEnergy;
}

double
EnergyModel::staticWatts() const
{
    return staticBaseWatts_ * scale_.staticPower;
}

double
EnergyModel::areaMm2(uint32_t num_pes, uint32_t sram_kb) const
{
    double a = areas_.perPeMm2 * num_pes +
               areas_.sramMm2PerKb * sram_kb + areas_.simdUnitMm2 +
               areas_.controlMm2;
    return a * scale_.area;
}

EnergyReport
EnergyModel::report(const StatGroup &events, double seconds,
                    uint32_t num_pes, uint32_t sram_kb) const
{
    EnergyReport r;
    r.node = node_;
    r.seconds = seconds;
    r.dynamicJoules = dynamicEnergyJoules(events);
    r.staticJoules = staticWatts() * seconds;
    r.totalJoules = r.dynamicJoules + r.staticJoules;
    r.averageWatts = seconds > 0.0 ? r.totalJoules / seconds : 0.0;
    r.areaMm2 = areaMm2(num_pes, sram_kb);
    return r;
}

} // namespace energy
} // namespace reason
