/**
 * @file
 * Status and error reporting helpers, modelled after gem5's logging.hh.
 *
 * fatal() terminates on user-level configuration errors; panic() terminates
 * on internal invariant violations (simulator bugs). warn()/inform() report
 * without terminating.
 */

#ifndef REASON_UTIL_LOGGING_H
#define REASON_UTIL_LOGGING_H

#include <cstdarg>
#include <string>

namespace reason {

/** Severity of a log message. */
enum class LogLevel { Debug, Info, Warn, Error };

/**
 * Set the minimum level that is actually printed.  Defaults to Info.
 * Thread-unsafe by design: configure once at startup.
 */
void setLogLevel(LogLevel level);

/** Return the current minimum printed level. */
LogLevel logLevel();

/** Print an informational message to stderr (printf-style format). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning message to stderr (printf-style format). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a debug message to stderr, suppressed unless level <= Debug. */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report a user-level error (bad configuration, invalid input) and exit(1).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal invariant violation (a bug) and abort().
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Panic helper carrying the failing expression, used by reasonAssert. */
[[noreturn]] void panicAssert(const char *expr, const char *file, int line,
                              const std::string &msg);

/**
 * Assertion that stays enabled in release builds.  Use for invariants whose
 * violation indicates a simulator bug regardless of build type.
 */
#define reasonAssert(expr, msg)                                             \
    do {                                                                    \
        if (!(expr))                                                        \
            ::reason::panicAssert(#expr, __FILE__, __LINE__, (msg));        \
    } while (0)

} // namespace reason

#endif // REASON_UTIL_LOGGING_H
