#include "pc/flat_pc.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/flat.h"
#include "util/logging.h"
#include "util/numeric.h"
#include "util/parallel.h"
#include "util/simd.h"
#include "util/simd_dispatch.h"

namespace reason {
namespace pc {

FlatCircuit::FlatCircuit(const Circuit &circuit)
    : numVars(circuit.numVars()), arity(circuit.arity()),
      root(circuit.root())
{
    reasonAssert(root != kInvalidNode, "circuit has no root");
    const size_t n = circuit.numNodes();
    types.resize(n);
    leafSlot.assign(n, kInvalidNode);
    edgeOffset.reserve(n + 1);
    edgeOffset.push_back(0);
    edgeTarget.reserve(circuit.numEdges());
    edgeLogWeight.reserve(circuit.numEdges());

    for (size_t i = 0; i < n; ++i) {
        const PcNode &node = circuit.node(NodeId(i));
        switch (node.type) {
          case PcNodeType::Leaf: {
            types[i] = kLeaf;
            leafSlot[i] = uint32_t(leafVar.size());
            leafVar.push_back(node.var);
            for (uint32_t v = 0; v < arity; ++v)
                leafLogDist.push_back(node.dist[v] > 0.0
                                          ? std::log(node.dist[v])
                                          : kLogZero);
            break;
          }
          case PcNodeType::Sum: {
            types[i] = kSum;
            for (size_t k = 0; k < node.children.size(); ++k) {
                edgeTarget.push_back(node.children[k]);
                edgeLogWeight.push_back(node.weights[k] > 0.0
                                            ? std::log(node.weights[k])
                                            : kLogZero);
            }
            break;
          }
          case PcNodeType::Product: {
            types[i] = kProduct;
            for (NodeId c : node.children) {
                edgeTarget.push_back(c);
                edgeLogWeight.push_back(kLogZero);
            }
            break;
          }
        }
        edgeOffset.push_back(uint32_t(edgeTarget.size()));
    }

    finalizeTopology();
}

void
FlatCircuit::finalizeTopology()
{
    reasonAssert(root != kInvalidNode, "circuit has no root");
    const size_t n = types.size();
    reasonAssert(edgeOffset.size() == n + 1, "CSR offsets incomplete");

    // Level (wavefront) schedule over all nodes: leaves sit in level 0
    // (they are re-filled per assignment), interior nodes one past
    // their deepest child.
    core::LevelSchedule sched =
        core::buildLevelSchedule(n, edgeOffset, edgeTarget);
    levelOffset = std::move(sched.offset);
    levelNodes = std::move(sched.nodes);

    // Parent transpose in descending parent order: the downward
    // gathers fold each node's incoming contributions in this fixed
    // order, making flow/derivative sums deterministic by construction.
    const size_t m = edgeTarget.size();
    edgeSource.resize(m);
    parentOffset.assign(n + 1, 0);
    for (size_t i = 0; i < n; ++i)
        for (uint32_t e = edgeOffset[i]; e < edgeOffset[i + 1]; ++e) {
            edgeSource[e] = uint32_t(i);
            ++parentOffset[edgeTarget[e] + 1];
        }
    for (size_t i = 1; i <= n; ++i)
        parentOffset[i] += parentOffset[i - 1];
    parentEdge.resize(m);
    {
        std::vector<uint32_t> cursor(parentOffset.begin(),
                                     parentOffset.end() - 1);
        for (size_t i = n; i-- > 0;)
            for (uint32_t e = edgeOffset[i]; e < edgeOffset[i + 1]; ++e)
                parentEdge[cursor[edgeTarget[e]]++] = e;
    }

    parentNode.resize(m);
    parentLogWeight.resize(m);
    for (size_t k = 0; k < m; ++k) {
        parentNode[k] = edgeSource[parentEdge[k]];
        parentLogWeight[k] = edgeLogWeight[parentEdge[k]];
    }

    maxFanIn = 0;
    maxParentFanIn = 0;
    for (size_t i = 0; i < n; ++i) {
        maxFanIn = std::max(maxFanIn, edgeOffset[i + 1] - edgeOffset[i]);
        maxParentFanIn = std::max(maxParentFanIn,
                                  parentOffset[i + 1] - parentOffset[i]);
    }
}

namespace {

/**
 * Evaluate one circuit node into val[i] — the canonical sum-layer
 * kernel at lane count 1.  The expressions and accumulation order are
 * exactly one lane of the blocked SIMD kernel (evaluateBlock), so a
 * single-assignment walk, a full SoA block, and a masked tail block
 * all produce bit-identical values for the same row.  Shared by the
 * serial id-order walk and the parallel wavefront walk.
 */
inline void
evalCircuitNode(const FlatCircuit &flat, const Assignment &x, double *val,
                double *terms, size_t i)
{
    const uint8_t *types = flat.types.data();
    const uint32_t *off = flat.edgeOffset.data();
    const uint32_t *tgt = flat.edgeTarget.data();
    const double *lw = flat.edgeLogWeight.data();
    switch (types[i]) {
      case FlatCircuit::kLeaf: {
        const uint32_t s = flat.leafSlot[i];
        const uint32_t v = x[flat.leafVar[s]];
        if (v == kMissing) {
            val[i] = 0.0; // marginalized: sums to 1
        } else {
            reasonAssert(v < flat.arity, "assignment value out of range");
            val[i] = flat.leafLogDist[size_t(s) * flat.arity + v];
        }
        break;
      }
      case FlatCircuit::kProduct: {
        // Straight-line add (no early break): -inf absorbs and no
        // operand can be +inf, so the result is unchanged and the
        // loop stays branch-free.
        double acc = 0.0;
        for (uint32_t e = off[i]; e < off[i + 1]; ++e)
            acc += val[tgt[e]];
        val[i] = acc;
        break;
      }
      case FlatCircuit::kSum: {
        // Two-pass log-sum-exp: one max scan, then exp-accumulate
        // against the max (one log per *node* instead of one
        // log1p+exp per *edge*).  -inf terms are exact additive
        // identities — skipped, never clamped — matching the masked
        // SIMD lanes of the blocked kernel term for term.
        const uint32_t lo = off[i];
        const uint32_t hi_e = off[i + 1];
        double hi = kLogZero;
        for (uint32_t e = lo; e < hi_e; ++e) {
            const double term = lw[e] + val[tgt[e]];
            terms[e - lo] = term;
            if (term > hi)
                hi = term;
        }
        if (hi == kLogZero) {
            val[i] = kLogZero;
            break;
        }
        double acc = 0.0;
        for (uint32_t e = lo; e < hi_e; ++e) {
            const double term = terms[e - lo];
            if (term != kLogZero)
                acc += fastExpNonPositive(term - hi);
        }
        val[i] = hi + simd::fastLogPositive(acc);
        break;
      }
    }
}

} // namespace

CircuitEvaluator::CircuitEvaluator(const FlatCircuit &flat,
                                   util::ThreadPool *pool)
    : flat_(flat), pool_(pool), logv_(flat.numNodes(), kLogZero),
      maxFanIn_(flat.maxFanIn)
{
    terms_.resize(std::max<size_t>(maxFanIn_, 1), 0.0);
}

util::ThreadPool &
CircuitEvaluator::activePool() const
{
    // Resolved per call, not cached: setGlobalThreads may legally
    // replace the global pool between evaluation phases, and a cached
    // pointer would dangle.
    return pool_ ? *pool_ : util::globalThreadPool();
}

void
CircuitEvaluator::evaluateLevelSlice(const Assignment &x, size_t b,
                                     size_t e, double *terms)
{
    double *val = logv_.data();
    const uint32_t *sched = flat_.levelNodes.data();
    for (size_t k = b; k < e; ++k)
        evalCircuitNode(flat_, x, val, terms, sched[k]);
}

std::span<const double>
CircuitEvaluator::evaluate(const Assignment &x)
{
    reasonAssert(x.size() >= flat_.numVars, "assignment too short");
    const size_t n = flat_.numNodes();
    util::ThreadPool &pool = activePool();
    if (pool.numThreads() == 1) {
        double *val = logv_.data();
        for (size_t i = 0; i < n; ++i)
            evalCircuitNode(flat_, x, val, terms_.data(), i);
        return {logv_.data(), logv_.size()};
    }

    // Wavefront execution over the level schedule: one writer per node
    // value, per-worker term scratch, unchanged per-node expressions —
    // bit-identical to the serial walk for any thread count.
    const size_t stripe = std::max<size_t>(maxFanIn_, 1);
    if (terms_.size() < stripe * pool.numThreads())
        terms_.resize(stripe * pool.numThreads(), 0.0);
    for (size_t l = 0; l < flat_.numLevels(); ++l) {
        pool.parallelFor(
            flat_.levelOffset[l], flat_.levelOffset[l + 1],
            kMinNodesPerChunk,
            [&](size_t b, size_t e, unsigned worker) {
                evaluateLevelSlice(x, b, e,
                                   terms_.data() + worker * stripe);
            });
    }
    return {logv_.data(), logv_.size()};
}

double
CircuitEvaluator::logLikelihood(const Assignment &x)
{
    return evaluate(x)[flat_.root];
}

void
CircuitEvaluator::logLikelihoodBatch(const std::vector<Assignment> &xs,
                                     std::span<double> out)
{
    reasonAssert(out.size() >= xs.size(), "batch output buffer too small");
    for (const Assignment &x : xs)
        reasonAssert(x.size() >= flat_.numVars, "assignment too short");
    if (xs.empty())
        return;
    util::ThreadPool &pool = activePool();
    const unsigned threads = pool.numThreads();
    // Every row — including a trailing partial block — goes through
    // the same SIMD block kernel: tail lanes replicate the last row
    // and are not stored, so each row's result is independent of the
    // batch shape (bit-identical to a single-row evaluate()).
    const size_t num_blocks = (xs.size() + kBlock - 1) / kBlock;
    const size_t val_size = flat_.numNodes() * kBlock;
    const size_t term_size = std::max<size_t>(maxFanIn_, 1) * kBlock;
    const unsigned buffers =
        threads > 1 && num_blocks > 1
            ? unsigned(std::min<size_t>(threads, num_blocks))
            : 1;
    if (blockVal_.size() < buffers) {
        blockVal_.resize(buffers);
        blockTerms_.resize(buffers);
    }
    for (unsigned w = 0; w < buffers; ++w) {
        if (blockVal_[w].empty()) {
            blockVal_[w].assign(val_size, 0.0);
            blockTerms_[w].assign(term_size, 0.0);
        }
    }
    // Block-parallel: each worker streams a contiguous run of
    // kBlock-row blocks through its own SoA buffers.  Blocks are
    // computed identically regardless of which worker runs them.
    pool.parallelFor(
        0, num_blocks, 1,
        [&](size_t b, size_t e, unsigned worker) {
            const Assignment *rows[kBlock];
            for (size_t blk = b; blk < e; ++blk) {
                const size_t base = blk * kBlock;
                const size_t n = std::min(kBlock, xs.size() - base);
                for (size_t i = 0; i < kBlock; ++i)
                    rows[i] = &xs[base + (i < n ? i : n - 1)];
                evaluateBlock(rows, n, &out[base],
                              blockVal_[worker].data(),
                              blockTerms_[worker].data());
            }
        });
}

void
CircuitEvaluator::evaluateBlock(const Assignment *const *rows, size_t n_out,
                                double *out, double *block_val,
                                double *block_terms)
{
    constexpr size_t B = kBlock;
    static_assert(B == simd::kLanes, "SoA block width is one SIMD pack");
    double *val = block_val;
    double *terms = block_terms;
    const uint8_t *types = flat_.types.data();
    const uint32_t *off = flat_.edgeOffset.data();
    const uint32_t *tgt = flat_.edgeTarget.data();
    const double *lw = flat_.edgeLogWeight.data();
    const uint32_t *slot = flat_.leafSlot.data();
    const uint32_t *var = flat_.leafVar.data();
    const double *dist = flat_.leafLogDist.data();
    const uint32_t arity = flat_.arity;
    const size_t n = flat_.numNodes();

    const simd::Pack zero = simd::splat(0.0);
    // Runtime-selected kernels: the widest table the host CPU can run
    // (util/simd_dispatch.h).  Bit-identical to the compile-time
    // backend by the simd.h contract; hoisted once per block so the
    // per-node cost is a single indirect call.
    const simd::KernelTable &kernels = simd::activeKernels();

    for (size_t i = 0; i < n; ++i) {
        double *vi = val + i * B;
        switch (types[i]) {
          case FlatCircuit::kLeaf: {
            // Leaf scoring gathers one table entry per row; the rows
            // are distinct assignments, so this stays a scalar gather.
            const uint32_t s = slot[i];
            const uint32_t v_idx = var[s];
            const double *row_dist = dist + size_t(s) * arity;
            for (size_t b = 0; b < B; ++b) {
                const uint32_t v = (*rows[b])[v_idx];
                if (v == kMissing) {
                    vi[b] = 0.0; // marginalized: sums to 1
                } else {
                    reasonAssert(v < arity,
                                 "assignment value out of range");
                    vi[b] = row_dist[v];
                }
            }
            break;
          }
          case FlatCircuit::kProduct: {
            simd::Pack acc = zero;
            for (uint32_t e = off[i]; e < off[i + 1]; ++e)
                acc = simd::add(
                    acc, simd::load(val + size_t(tgt[e]) * B));
            simd::store(vi, acc);
            break;
          }
          case FlatCircuit::kSum: {
            // The canonical two-pass logsumexp kernel across the 8
            // row lanes: terms (edge log-weight + child SoA row) are
            // staged into the scratch block, then reduced by the
            // runtime-dispatched sumLayerBlockStaged — the same
            // staged shape simd::sumLayerBlock lowers to.
            const uint32_t lo = off[i];
            const uint32_t hi_e = off[i + 1];
            const size_t fanin = hi_e - lo;
            for (size_t e = 0; e < fanin; ++e)
                simd::store(
                    terms + e * B,
                    simd::add(
                        simd::splat(lw[lo + e]),
                        simd::load(val + size_t(tgt[lo + e]) * B)));
            kernels.sumLayerBlockStaged(fanin, terms, vi);
            break;
          }
        }
    }
    const double *root_val = val + size_t(flat_.root) * B;
    for (size_t b = 0; b < n_out; ++b)
        out[b] = root_val[b];
}

namespace {

/**
 * Per-product-node derivative quantities: count of zero-valued
 * children, the (last) zero child, and the finite log-sum of the
 * rest.  finiteSum folds the child values in CSR edge order — one
 * fixed order on every path, which the bit-identity contract depends
 * on.
 */
struct ProdDerivInfo
{
    uint32_t zeros = 0;
    uint32_t zeroChild = kInvalidNode;
    double finiteSum = 0.0;
};

inline ProdDerivInfo
productDerivInfo(const FlatCircuit &flat, const double *logv, size_t i)
{
    const uint32_t *off = flat.edgeOffset.data();
    const uint32_t *tgt = flat.edgeTarget.data();
    ProdDerivInfo info;
    for (uint32_t e = off[i]; e < off[i + 1]; ++e) {
        const uint32_t c = tgt[e];
        if (logv[c] == kLogZero) {
            ++info.zeros;
            info.zeroChild = c;
        } else {
            info.finiteSum += logv[c];
        }
    }
    return info;
}

} // namespace

void
logDerivativesInto(const FlatCircuit &flat, std::span<const double> logv,
                   std::vector<double> &logd, util::ThreadPool *pool)
{
    const size_t n = flat.numNodes();
    reasonAssert(logv.size() == n, "log-value/graph size mismatch");
    logd.assign(n, kLogZero);

    const uint8_t *types = flat.types.data();

    util::ThreadPool &active =
        pool ? *pool : util::globalThreadPool();

    // Reverse wavefront gather — the canonical backward kernel for
    // every thread count (a 1-thread pool runs it inline, so results
    // are trivially bit-identical across thread counts).  Levels are
    // walked top-down; each node gathers its incoming derivative terms
    // from its finalized parents through the flattened transpose
    // streams into a contiguous stripe (stored descending-parent
    // order), then reduces them with the canonical two-pass SIMD
    // logsumexp (-inf terms are exact identities).  One writer per
    // logd entry, no atomics.  When a node turns out to be a product
    // with nonzero derivative, its (zero count, finite sum) pair is
    // tabulated immediately — its children sit in strictly lower
    // levels, so the per-level barrier publishes the entry before any
    // reader, and zero-derivative products are never tabulated at all.
    // The tables persist per calling thread: repeated marginal queries
    // reuse them allocation-free once grown.
    thread_local std::vector<double> prod_sum_tls;
    thread_local std::vector<uint8_t> prod_zeros_tls;
    thread_local std::vector<double> term_tls;
    // Terms per node: one per incoming parent edge plus the root seed.
    const size_t stripe = size_t(flat.maxParentFanIn) + 1;
    const size_t term_size = stripe * active.numThreads();
    if (prod_sum_tls.size() < n) {
        prod_sum_tls.resize(n);
        prod_zeros_tls.resize(n);
    }
    if (term_tls.size() < term_size)
        term_tls.resize(term_size);
    // Raw views: a thread_local named inside a lambda would resolve to
    // each *worker's* (empty) instance, not the caller's.
    double *prod_sum = prod_sum_tls.data();
    uint8_t *prod_zeros = prod_zeros_tls.data();
    double *term_base = term_tls.data();

    const uint32_t *poff = flat.parentOffset.data();
    const uint32_t *psrc = flat.parentNode.data();
    const double *plw = flat.parentLogWeight.data();
    double *d = logd.data();
    const simd::KernelTable &kernels = simd::activeKernels();
    // Per-node kernel, shared by both traversals below: the result
    // depends only on the (finalized) parents, not on traversal order.
    auto gatherNode = [&](uint32_t c, double *terms) {
        size_t cnt = 0;
        if (c == flat.root)
            terms[cnt++] = 0.0; // dRoot/dRoot == 1
        for (uint32_t pe = poff[c]; pe < poff[c + 1]; ++pe) {
            const uint32_t p = psrc[pe];
            const double dp = d[p];
            double t = kLogZero; // masked: exact identity
            if (dp != kLogZero) {
                if (types[p] == FlatCircuit::kSum) {
                    if (plw[pe] != kLogZero)
                        t = dp + plw[pe];
                } else if (prod_zeros[p] == 0) {
                    t = dp + prod_sum[p] - logv[c];
                } else if (prod_zeros[p] == 1 && logv[c] == kLogZero) {
                    t = dp + prod_sum[p];
                }
            }
            terms[cnt++] = t;
        }
        const double dc = kernels.logSumExpMasked(terms, cnt);
        d[c] = dc;
        if (types[c] == FlatCircuit::kProduct && dc != kLogZero) {
            const ProdDerivInfo info =
                productDerivInfo(flat, logv.data(), c);
            prod_sum[c] = info.finiteSum;
            prod_zeros[c] = uint8_t(std::min<uint32_t>(info.zeros, 2));
        }
    };
    if (active.numThreads() == 1) {
        // Parents always carry higher ids than their children, so a
        // reverse id scan finalizes every parent before its children —
        // same kernel, cache-friendly sequential streams.
        for (size_t i = n; i-- > 0;)
            gatherNode(uint32_t(i), term_base);
        return;
    }
    for (size_t l = flat.numLevels(); l-- > 0;)
        active.parallelFor(
            flat.levelOffset[l], flat.levelOffset[l + 1],
            kMinWavefrontNodesPerChunk,
            [&](size_t b, size_t e, unsigned worker) {
                double *terms = term_base + worker * stripe;
                for (size_t k = b; k < e; ++k)
                    gatherNode(flat.levelNodes[k], terms);
            });
}

FlowAccumulator::FlowAccumulator(const FlatCircuit &flat,
                                 util::ThreadPool *pool)
    : flat_(flat), pool_(pool), eval_(flat, pool),
      flow_(flat.numNodes(), 0.0),
      edgeTotal_(flat.numEdges(), 0.0), nodeTotal_(flat.numNodes(), 0.0),
      leafTotal_(flat.numLeaves() * flat.arity, 0.0)
{
}

void
FlowAccumulator::add(const Assignment &x)
{
    ++count_;
    std::span<const double> val = eval_.evaluate(x);
    if (val[flat_.root] == kLogZero)
        return; // zero-probability evidence carries no flow

    const uint8_t *types = flat_.types.data();
    const uint32_t *slot = flat_.leafSlot.data();
    const uint32_t *var = flat_.leafVar.data();

    util::ThreadPool &pool =
        pool_ ? *pool_ : util::globalThreadPool();

    // Downward pass: walk levels top-down and *gather* each node's
    // flow from its finalized parents through the transpose — the one
    // canonical kernel for every thread count (a 1-thread pool runs
    // the same code inline).  Parents of a level-L node all sit in
    // levels > L, so inside one level every node is independent;
    // flow_[c], edgeTotal_[e] (one child per edge), nodeTotal_[c], and
    // leafTotal_ rows each have a single writer.  Per node, the edge
    // arguments are staged into a contiguous stripe and the exp is
    // computed by the masked SIMD kernel (-inf encodes "no flow" and
    // contributes an exact zero); the fold over the resulting flows
    // keeps the stored descending-parent order, so totals are
    // bit-identical for any thread count and SIMD backend.
    const uint32_t *poff = flat_.parentOffset.data();
    const uint32_t *pedge = flat_.parentEdge.data();
    const uint32_t *psrc = flat_.parentNode.data();
    const double *plw = flat_.parentLogWeight.data();
    double *flow = flow_.data();
    const double *valp = val.data();
    const size_t stripe = std::max<uint32_t>(flat_.maxParentFanIn, 1);
    const unsigned workers = pool.numThreads();
    if (argScratch_.size() < stripe * workers) {
        argScratch_.resize(stripe * workers);
        scaleScratch_.resize(stripe * workers);
        flowScratch_.resize(stripe * workers);
    }
    const simd::KernelTable &kernels = simd::activeKernels();
    // Per-node kernel, shared by both traversals below: the result
    // depends only on the (finalized) parents, not on traversal order.
    auto gatherNode = [&](uint32_t c, double *args, double *scale,
                          double *f) {
        const uint32_t lo = poff[c];
        const uint32_t cnt = poff[c + 1] - lo;
        const double child_val = valp[c];
        for (uint32_t j = 0; j < cnt; ++j) {
            const uint32_t p = psrc[lo + j];
            const double fp = flow[p];
            if (types[p] == FlatCircuit::kProduct) {
                // exp(0) == 1 exactly, so the kernel passes fp
                // through unchanged — the product-edge flow.
                args[j] = fp == 0.0 ? kLogZero : 0.0;
            } else if (fp == 0.0 || plw[lo + j] == kLogZero ||
                       child_val == kLogZero) {
                args[j] = kLogZero; // masked: contributes exactly 0
            } else {
                args[j] = plw[lo + j] + child_val - valp[p];
            }
            scale[j] = fp;
        }
        kernels.expMulOrZero(args, scale, f, cnt);
        double fn = c == flat_.root ? 1.0 : 0.0;
        for (uint32_t j = 0; j < cnt; ++j) {
            edgeTotal_[pedge[lo + j]] += f[j];
            fn += f[j];
        }
        flow[c] = fn;
        if (fn == 0.0)
            return;
        nodeTotal_[c] += fn;
        if (types[c] == FlatCircuit::kLeaf) {
            const uint32_t s = slot[c];
            const uint32_t v = x[var[s]];
            if (v != kMissing)
                leafTotal_[size_t(s) * flat_.arity + v] += fn;
        }
    };
    if (pool.numThreads() == 1) {
        // Parents always carry higher ids than their children, so a
        // reverse id scan finalizes every parent before its children —
        // same kernel, cache-friendly sequential streams.
        for (size_t i = flat_.numNodes(); i-- > 0;)
            gatherNode(uint32_t(i), argScratch_.data(),
                       scaleScratch_.data(), flowScratch_.data());
        return;
    }
    for (size_t l = flat_.numLevels(); l-- > 0;)
        pool.parallelFor(
            flat_.levelOffset[l], flat_.levelOffset[l + 1],
            kMinNodesPerChunk,
            [&](size_t b, size_t e, unsigned worker) {
                double *args = argScratch_.data() + worker * stripe;
                double *scale = scaleScratch_.data() + worker * stripe;
                double *f = flowScratch_.data() + worker * stripe;
                for (size_t k = b; k < e; ++k)
                    gatherNode(flat_.levelNodes[k], args, scale, f);
            });
}

void
FlowAccumulator::mergeFrom(const FlowAccumulator &other)
{
    reasonAssert(&flat_ == &other.flat_,
                 "cannot merge flows of different lowerings");
    const simd::KernelTable &kernels = simd::activeKernels();
    kernels.addInto(edgeTotal_.data(), other.edgeTotal_.data(),
                    edgeTotal_.size());
    kernels.addInto(nodeTotal_.data(), other.nodeTotal_.data(),
                    nodeTotal_.size());
    kernels.addInto(leafTotal_.data(), other.leafTotal_.data(),
                    leafTotal_.size());
    count_ += other.count_;
}

DatasetFlows
accumulateDatasetFlows(const FlatCircuit &flat,
                       const std::vector<Assignment> &data,
                       const FlowShardOptions &opts,
                       util::ThreadPool *pool)
{
    util::ThreadPool &active =
        pool ? *pool : util::globalThreadPool();
    const unsigned shards = util::resolveShardCount(
        opts.shards, opts.deterministic, data.size(),
        active.numThreads());
    DatasetFlows out;
    out.shards = shards;
    if (shards <= 1) {
        // Legacy serial left fold over the dataset; per-sample
        // wavefront parallelism (the pool) still applies inside add().
        FlowAccumulator acc(flat, pool);
        for (const auto &x : data)
            acc.add(x);
        out.edgeFlow = std::move(acc.edgeTotal_);
        out.nodeFlow = std::move(acc.nodeTotal_);
        out.leafValueFlow = std::move(acc.leafTotal_);
        out.count = acc.count_;
        return out;
    }

    // One private accumulator per shard over a contiguous sample slice
    // whose boundaries depend only on (samples, shards).  Each shard's
    // per-sample passes run serially — shard parallelism replaces
    // wavefront parallelism here.  A 1-thread pool's parallelFor runs
    // inline without touching shared state, so one serial pool is
    // safely shared by every concurrent accumulator.
    util::ThreadPool serial_pool(1);
    std::vector<std::unique_ptr<FlowAccumulator>> accs(shards);
    for (unsigned s = 0; s < shards; ++s)
        accs[s] = std::make_unique<FlowAccumulator>(flat, &serial_pool);
    util::shardSlices(active, data.size(), shards,
                      [&](size_t s, size_t lo, size_t hi) {
                          for (size_t i = lo; i < hi; ++i)
                              accs[s]->add(data[i]);
                      });

    // Deterministic fixed-shape pairwise merge: shape depends only on
    // the shard count, and each element is accumulated left-to-right.
    util::treeReduce(shards, [&](size_t a, size_t b) {
        accs[a]->mergeFrom(*accs[b]);
    });
    out.edgeFlow = std::move(accs[0]->edgeTotal_);
    out.nodeFlow = std::move(accs[0]->nodeTotal_);
    out.leafValueFlow = std::move(accs[0]->leafTotal_);
    out.count = accs[0]->count_;
    return out;
}

} // namespace pc
} // namespace reason
