#include "pc/learn.h"

#include <cmath>

#include "pc/flat_cache.h"
#include "pc/flat_pc.h"
#include "pc/flows.h"
#include "util/logging.h"

namespace reason {
namespace pc {

double
meanLogLikelihood(const Circuit &circuit,
                  const std::vector<Assignment> &data)
{
    reasonAssert(!data.empty(), "need data");
    std::shared_ptr<const FlatCircuit> flat = cachedLowering(circuit);
    CircuitEvaluator eval(*flat);
    std::vector<double> ll(data.size());
    eval.logLikelihoodBatch(data, ll);
    double acc = 0.0;
    for (double v : ll)
        acc += v;
    return acc / static_cast<double>(data.size());
}

EmTrace
emTrain(Circuit &circuit, const std::vector<Assignment> &data,
        const EmConfig &config)
{
    EmTrace trace;
    trace.logLikelihood.push_back(meanLogLikelihood(circuit, data));

    for (uint32_t it = 0; it < config.maxIterations; ++it) {
        // E-step: expected edge usage = accumulated flows; expected leaf
        // value usage = leaf flow attributed to the observed value,
        // accumulated shard-parallel across samples.  The parameters
        // change every iteration, so the fingerprint misses and the
        // circuit is re-lowered (O(edges), amortized over all
        // samples) — but the lowering is then *hit* by the
        // meanLogLikelihood call below, which sees unchanged parameters.
        std::shared_ptr<const FlatCircuit> flat = cachedLowering(circuit);
        DatasetFlows acc = accumulateDatasetFlows(
            *flat, data, {config.shards, config.deterministic});

        // M-step: re-normalize sum weights and leaf distributions.
        const std::vector<double> &edge_flow = acc.edgeFlow;
        const std::vector<double> &leaf_flow = acc.leafValueFlow;
        for (NodeId id = 0; id < circuit.numNodes(); ++id) {
            PcNode &n = circuit.mutableNode(id);
            if (n.type == PcNodeType::Sum) {
                const uint32_t lo = flat->edgeOffset[id];
                double denom = 0.0;
                for (size_t k = 0; k < n.children.size(); ++k)
                    denom += edge_flow[lo + k] + config.smoothing;
                for (size_t k = 0; k < n.children.size(); ++k)
                    n.weights[k] =
                        (edge_flow[lo + k] + config.smoothing) / denom;
            } else if (n.type == PcNodeType::Leaf) {
                const size_t row =
                    size_t(flat->leafSlot[id]) * circuit.arity();
                double denom = 0.0;
                for (uint32_t v = 0; v < circuit.arity(); ++v)
                    denom += leaf_flow[row + v] + config.smoothing;
                if (denom <= 0.0)
                    continue;
                for (uint32_t v = 0; v < circuit.arity(); ++v)
                    n.dist[v] =
                        (leaf_flow[row + v] + config.smoothing) / denom;
            }
        }

        double ll = meanLogLikelihood(circuit, data);
        trace.logLikelihood.push_back(ll);
        ++trace.iterations;
        double prev = trace.logLikelihood[trace.logLikelihood.size() - 2];
        if (ll - prev < config.tolerance)
            break;
    }
    return trace;
}

} // namespace pc
} // namespace reason
