/**
 * @file
 * Architecture component tests: Benes routing (looping algorithm vs
 * random permutations), interconnect topology scaling (Fig. 8), the
 * memory subsystem models (SRAM residency, watch lists, BCP FIFO, DMA),
 * and accelerator timing invariants.
 */

#include <gtest/gtest.h>

#include "arch/accelerator.h"
#include "arch/benes.h"
#include "arch/memory.h"
#include "arch/topology.h"
#include "compiler/compile.h"
#include "dag_test_util.h"
#include "util/rng.h"

using namespace reason;
using namespace reason::arch;

TEST(Benes, IdentityPermutation)
{
    BenesNetwork net(3);
    std::vector<uint32_t> id(8);
    for (uint32_t i = 0; i < 8; ++i)
        id[i] = i;
    EXPECT_TRUE(net.verifyPermutation(id));
}

TEST(Benes, ReversalPermutation)
{
    BenesNetwork net(3);
    std::vector<uint32_t> rev(8);
    for (uint32_t i = 0; i < 8; ++i)
        rev[i] = 7 - i;
    EXPECT_TRUE(net.verifyPermutation(rev));
}

TEST(Benes, StageAndSwitchCounts)
{
    BenesNetwork net(4); // 16 endpoints
    EXPECT_EQ(net.numEndpoints(), 16u);
    EXPECT_EQ(net.numStages(), 7u);
    EXPECT_EQ(net.numSwitches(), 7u * 8u);
}

/** Any permutation must route conflict-free (rearrangeable network). */
class BenesSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(BenesSweep, RandomPermutationsRoute)
{
    int p = GetParam();
    uint32_t log2n = 1 + p % 5; // 2..32 endpoints
    BenesNetwork net(log2n);
    Rng rng(p * 7331 + 5);
    for (int t = 0; t < 20; ++t) {
        auto perm32 = rng.permutation(net.numEndpoints());
        std::vector<uint32_t> dest(perm32.begin(), perm32.end());
        EXPECT_TRUE(net.verifyPermutation(dest));
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BenesSweep, ::testing::Range(0, 15));

TEST(Topology, BroadcastCycleFormulas)
{
    EXPECT_EQ(broadcastToRootCycles(Topology::Tree, 64), 6u);
    EXPECT_EQ(broadcastToRootCycles(Topology::Mesh, 64), 14u);
    EXPECT_EQ(broadcastToRootCycles(Topology::AllToOne, 64), 64u);
}

TEST(Topology, AsymptoticOrdering)
{
    for (uint64_t n : {16u, 64u, 256u, 1024u}) {
        EXPECT_LT(broadcastToRootCycles(Topology::Tree, n),
                  broadcastToRootCycles(Topology::Mesh, n));
        EXPECT_LT(broadcastToRootCycles(Topology::Mesh, n),
                  broadcastToRootCycles(Topology::AllToOne, n));
    }
}

TEST(Topology, TreeLatencyScalesGently)
{
    // Doubling N adds one hop for trees but doubles the bus.
    uint64_t t1 = broadcastToRootCycles(Topology::Tree, 128);
    uint64_t t2 = broadcastToRootCycles(Topology::Tree, 256);
    EXPECT_EQ(t2 - t1, 1u);
    uint64_t b1 = broadcastToRootCycles(Topology::AllToOne, 128);
    uint64_t b2 = broadcastToRootCycles(Topology::AllToOne, 256);
    EXPECT_EQ(b2, 2 * b1);
}

TEST(Topology, BreakdownDominatedByInterconnectForBus)
{
    LatencyBreakdown tree = latencyBreakdown(Topology::Tree, 256);
    LatencyBreakdown bus = latencyBreakdown(Topology::AllToOne, 256);
    EXPECT_GT(bus.interNode, tree.interNode * 10);
    EXPECT_GT(bus.total(), tree.total());
}

TEST(ClauseSram, HitsAndLruEviction)
{
    ClauseSram sram(100, 4);
    EXPECT_FALSE(sram.access(1, 40)); // miss, install
    EXPECT_TRUE(sram.access(1, 40));  // hit
    EXPECT_FALSE(sram.access(2, 40));
    EXPECT_FALSE(sram.access(3, 40)); // evicts clause 1 (LRU)
    EXPECT_FALSE(sram.resident(1));
    EXPECT_TRUE(sram.resident(3));
    EXPECT_EQ(sram.evictions(), 1u);
    EXPECT_EQ(sram.hits(), 1u);
    EXPECT_EQ(sram.misses(), 3u);
}

TEST(ClauseSram, AccessRefreshesRecency)
{
    ClauseSram sram(80, 2);
    sram.access(1, 40);
    sram.access(2, 40);
    sram.access(1, 40);  // refresh 1
    sram.access(3, 40);  // evicts 2, not 1
    EXPECT_TRUE(sram.resident(1));
    EXPECT_FALSE(sram.resident(2));
}

TEST(ClauseSram, ByteCapacityAccounting)
{
    ClauseSram sram(100, 4);
    EXPECT_EQ(sram.capacityBytes(), 100u);
    EXPECT_EQ(sram.usedBytes(), 0u);
    sram.access(1, 30);
    sram.access(2, 30);
    EXPECT_EQ(sram.usedBytes(), 60u);
    // A 50-byte line doesn't fit beside both: evicts LRU clause 1 only.
    sram.access(3, 50);
    EXPECT_EQ(sram.usedBytes(), 80u);
    EXPECT_FALSE(sram.resident(1));
    EXPECT_TRUE(sram.resident(2));
    EXPECT_TRUE(sram.resident(3));
    EXPECT_EQ(sram.evictions(), 1u);
}

TEST(ClauseSram, OversizedLineNeverInstalled)
{
    ClauseSram sram(64, 2);
    sram.access(1, 32);
    // A clause larger than the whole SRAM evicts everything trying to
    // make room but is never installed; residency stays consistent.
    EXPECT_FALSE(sram.access(9, 128));
    EXPECT_FALSE(sram.resident(9));
    EXPECT_EQ(sram.usedBytes(), 0u);
    // Re-access misses again (no phantom residency).
    EXPECT_FALSE(sram.access(9, 128));
    EXPECT_EQ(sram.misses(), 3u);
}

TEST(ClauseSram, InstallIsNotAnAccess)
{
    ClauseSram sram(100, 4);
    sram.install(7, 40);
    EXPECT_TRUE(sram.resident(7));
    EXPECT_EQ(sram.hits(), 0u);
    EXPECT_EQ(sram.misses(), 0u);
    // Duplicate install is a no-op (no double byte accounting).
    sram.install(7, 40);
    EXPECT_EQ(sram.usedBytes(), 40u);
    EXPECT_TRUE(sram.access(7, 40));
    EXPECT_EQ(sram.hits(), 1u);
}

TEST(ClauseSram, BankMappingIsStable)
{
    ClauseSram sram(100, 4);
    for (uint32_t id = 0; id < 16; ++id)
        EXPECT_EQ(sram.bankOf(id), id % 4);
}

TEST(WatchListUnit, HeadInsertionAndUnwatch)
{
    WatchListUnit wl(8);
    wl.watch(3, 10);
    wl.watch(3, 11);
    ASSERT_EQ(wl.listLength(3), 2u);
    EXPECT_EQ(wl.list(3)[0], 11u) << "newest at head";
    wl.unwatch(3, 11);
    EXPECT_EQ(wl.listLength(3), 1u);
    EXPECT_EQ(wl.list(3)[0], 10u);
}

TEST(WatchListUnit, TraversalCountsPointerChases)
{
    WatchListUnit wl(4);
    wl.watch(0, 1);
    wl.watch(0, 2);
    wl.watch(0, 3);
    wl.recordTraversal(0);
    EXPECT_EQ(wl.headLookups(), 1u);
    EXPECT_EQ(wl.pointerChases(), 3u);
}

TEST(WatchListUnit, UnwatchCountsChasesToPosition)
{
    WatchListUnit wl(4);
    wl.watch(1, 10);
    wl.watch(1, 11);
    wl.watch(1, 12); // list order: 12, 11, 10
    // Removing the head costs one chase; the tail costs a full walk.
    wl.unwatch(1, 12);
    EXPECT_EQ(wl.pointerChases(), 1u);
    wl.unwatch(1, 10);
    EXPECT_EQ(wl.pointerChases(), 1u + 2u);
    EXPECT_EQ(wl.listLength(1), 1u);
}

TEST(WatchListUnit, TraversalsAccumulateAcrossLiterals)
{
    WatchListUnit wl(6);
    wl.watch(0, 1);
    wl.watch(0, 2);
    wl.watch(5, 3);
    wl.recordTraversal(0); // 2 chases
    wl.recordTraversal(5); // 1 chase
    wl.recordTraversal(4); // empty list: head lookup only
    EXPECT_EQ(wl.headLookups(), 3u);
    EXPECT_EQ(wl.pointerChases(), 3u);
}

TEST(BcpFifo, OrderingAndOverflow)
{
    BcpFifo fifo(2);
    EXPECT_TRUE(fifo.push(10));
    EXPECT_TRUE(fifo.push(20));
    EXPECT_FALSE(fifo.push(30)); // overflow
    EXPECT_EQ(fifo.overflowStalls(), 1u);
    EXPECT_EQ(fifo.pop(), 10u);
    EXPECT_EQ(fifo.pop(), 20u);
    EXPECT_TRUE(fifo.empty());
    EXPECT_EQ(fifo.maxOccupancy(), 2u);
}

TEST(BcpFifo, FlushDropsEverything)
{
    BcpFifo fifo(4);
    fifo.push(1);
    fifo.push(2);
    EXPECT_EQ(fifo.flush(), 2u);
    EXPECT_TRUE(fifo.empty());
    EXPECT_EQ(fifo.flushes(), 1u);
}

TEST(BcpFifo, CountersSurviveFlushAndRefill)
{
    BcpFifo fifo(3);
    fifo.push(1);
    fifo.push(2);
    fifo.push(3);
    EXPECT_FALSE(fifo.push(4));
    EXPECT_FALSE(fifo.push(5));
    EXPECT_EQ(fifo.overflowStalls(), 2u);
    EXPECT_EQ(fifo.flush(), 3u);
    // Flush resets occupancy but not the cumulative counters.
    EXPECT_EQ(fifo.pushes(), 3u);
    EXPECT_EQ(fifo.overflowStalls(), 2u);
    EXPECT_EQ(fifo.maxOccupancy(), 3u);
    fifo.push(6);
    EXPECT_EQ(fifo.pop(), 6u);
    EXPECT_EQ(fifo.pushes(), 4u);
    EXPECT_EQ(fifo.pops(), 1u);
    EXPECT_EQ(fifo.flushes(), 1u);
}

TEST(BcpFifo, FlushOfEmptyFifoStillCounts)
{
    BcpFifo fifo(2);
    EXPECT_EQ(fifo.flush(), 0u);
    EXPECT_EQ(fifo.flushes(), 1u);
}

TEST(DmaEngine, LatencyAndQueueing)
{
    DmaEngine dma(10, 2);
    EXPECT_EQ(dma.issue(0, 64), 10u);
    EXPECT_EQ(dma.issue(0, 64), 10u);
    // Third request queues behind the earliest completion.
    EXPECT_EQ(dma.issue(0, 64), 20u);
    EXPECT_EQ(dma.requests(), 3u);
    EXPECT_EQ(dma.bytesFetched(), 192u);
}

TEST(DmaEngine, CancelClearsInFlight)
{
    DmaEngine dma(10, 1);
    dma.issue(0, 8);
    dma.cancelAll();
    EXPECT_EQ(dma.cancels(), 1u);
    // After cancel, a new request is unobstructed.
    EXPECT_EQ(dma.issue(5, 8), 15u);
}

TEST(Accelerator, TimingInvariants)
{
    Rng rng(606);
    core::Dag dag = testutil::randomDag(rng, 8, 100, 4);
    ArchConfig cfg;
    compiler::Program p = compile(dag, cfg.compilerTarget());
    Accelerator accel(cfg);
    auto inputs = testutil::randomInputs(rng, 8);
    ExecutionResult r = accel.run(p, inputs);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.peUtilization, 0.0);
    EXPECT_LE(r.peUtilization, 1.0);
    EXPECT_EQ(r.events.get("blocks_executed"), p.blocks.size());
    EXPECT_GT(r.events.get("regfile_reads"), 0u);
    // Preloaded runs skip the input DMA fill.
    ExecutionResult r2 = accel.run(p, inputs, /*preloaded=*/true);
    EXPECT_LE(r2.cycles, r.cycles);
    EXPECT_EQ(r2.dmaStallCycles, 0u);
    EXPECT_DOUBLE_EQ(r2.rootValue, r.rootValue);
}

TEST(Accelerator, MorePesDoNotSlowDown)
{
    Rng rng(607);
    core::Dag dag = testutil::randomDag(rng, 8, 150, 4);
    auto inputs = testutil::randomInputs(rng, 8);

    auto cycles_for = [&](uint32_t pes) {
        ArchConfig cfg;
        cfg.numPes = pes;
        cfg.numBanks = std::max(cfg.numBanks, pes);
        compiler::Program p = compile(dag, cfg.compilerTarget());
        Accelerator accel(cfg);
        return accel.run(p, inputs, true).cycles;
    };
    uint64_t c4 = cycles_for(4);
    uint64_t c16 = cycles_for(16);
    EXPECT_LE(c16, c4);
}

TEST(Accelerator, RejectsMismatchedProgram)
{
    Rng rng(608);
    core::Dag dag = testutil::randomDag(rng, 4, 10, 3);
    compiler::TargetConfig t;
    t.numPes = 4;
    compiler::Program p = compile(dag, t);
    ArchConfig cfg; // default 12 PEs
    Accelerator accel(cfg);
    EXPECT_DEATH(accel.run(p, testutil::randomInputs(rng, 4)),
                 "different configuration");
}
