/**
 * @file
 * Tests for the unified DAG IR (Sec. IV-A), the substrate builders, the
 * two-input regularization (Sec. IV-C), and the three-stage
 * optimization pipeline.  Central invariant: every transformation
 * preserves evaluateRoot exactly (or, for SAT, logical equivalence).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/builders.h"
#include "core/dag.h"
#include "core/pipeline.h"
#include "core/regularize.h"
#include "dag_test_util.h"
#include "logic/solver.h"
#include "util/numeric.h"
#include "util/rng.h"

using namespace reason;
using namespace reason::core;

TEST(Dag, BasicEvaluation)
{
    Dag dag;
    NodeId a = dag.addInput(); // tag 0
    NodeId b = dag.addInput(); // tag 1
    NodeId s = dag.addOp(DagOp::Sum, {a, b});
    NodeId p = dag.addOp(DagOp::Product, {s, a});
    dag.markRoot(p);
    EXPECT_DOUBLE_EQ(dag.evaluateRoot({2.0, 3.0}), 10.0);
}

TEST(Dag, WeightedSumAndNot)
{
    Dag dag;
    NodeId a = dag.addInput();
    NodeId n = dag.addOp(DagOp::Not, {a});
    NodeId s = dag.addOp(DagOp::Sum, {a, n}, {2.0, 4.0});
    dag.markRoot(s);
    // 2*0.25 + 4*(1-0.25) = 0.5 + 3 = 3.5
    EXPECT_DOUBLE_EQ(dag.evaluateRoot({0.25}), 3.5);
}

TEST(Dag, MinMaxSemantics)
{
    Dag dag;
    NodeId a = dag.addInput();
    NodeId b = dag.addInput();
    NodeId mx = dag.addOp(DagOp::Max, {a, b});
    NodeId mn = dag.addOp(DagOp::Min, {a, b});
    NodeId s = dag.addOp(DagOp::Sum, {mx, mn});
    dag.markRoot(s);
    EXPECT_DOUBLE_EQ(dag.evaluateRoot({3.0, 7.0}), 10.0);
}

TEST(Dag, StatsShape)
{
    Dag dag;
    NodeId a = dag.addInput();
    NodeId b = dag.addInput();
    NodeId c0 = dag.addConst(0.5);
    NodeId s = dag.addOp(DagOp::Sum, {a, b, c0}, {1.0, 2.0, 3.0});
    dag.markRoot(s);
    DagStats st = dag.stats();
    EXPECT_EQ(st.numNodes, 4u);
    EXPECT_EQ(st.numEdges, 3u);
    EXPECT_EQ(st.numWeights, 3u);
    EXPECT_EQ(st.maxFanIn, 3u);
    EXPECT_EQ(st.depth, 1u);
    EXPECT_GT(st.memoryBytes, 0u);
}

TEST(Dag, DeadNodeElimination)
{
    Dag dag;
    NodeId a = dag.addInput();
    NodeId b = dag.addInput();
    dag.addOp(DagOp::Sum, {a, b}); // dead
    NodeId live = dag.addOp(DagOp::Product, {a, b});
    dag.markRoot(live);
    size_t removed = eliminateDeadNodes(dag);
    EXPECT_EQ(removed, 1u);
    EXPECT_DOUBLE_EQ(dag.evaluateRoot({2.0, 5.0}), 10.0);
}

TEST(BuildFromCnf, MatchesFormulaEvaluation)
{
    Rng rng(42);
    logic::CnfFormula f = logic::randomKSat(rng, 10, 35, 3);
    Dag dag = buildFromCnf(f);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<bool> assign(10);
        std::vector<double> inputs(10);
        for (int v = 0; v < 10; ++v) {
            assign[v] = rng.bernoulli(0.5);
            inputs[v] = assign[v] ? 1.0 : 0.0;
        }
        EXPECT_DOUBLE_EQ(dag.evaluateRoot(inputs),
                         f.evaluate(assign) ? 1.0 : 0.0);
    }
}

TEST(BuildFromCircuit, MatchesCircuitLikelihood)
{
    Rng rng(43);
    pc::Circuit c = pc::randomCircuit(rng, 6, 2);
    std::vector<pc::NodeId> leaf_order;
    Dag dag = buildFromCircuit(c, &leaf_order);
    auto data = pc::sampleDataset(rng, c, 25);
    for (const auto &x : data) {
        auto inputs = circuitLeafInputs(c, leaf_order, x);
        double dag_val = dag.evaluateRoot(inputs);
        double ll = c.logLikelihood(x);
        EXPECT_NEAR(dag_val, std::exp(ll), 1e-9);
    }
}

TEST(BuildFromCircuit, MarginalsMatchToo)
{
    Rng rng(44);
    pc::Circuit c = pc::randomCircuit(rng, 5, 2);
    std::vector<pc::NodeId> leaf_order;
    Dag dag = buildFromCircuit(c, &leaf_order);
    pc::Assignment q(5, pc::kMissing);
    q[2] = 1;
    auto inputs = circuitLeafInputs(c, leaf_order, q);
    EXPECT_NEAR(dag.evaluateRoot(inputs),
                std::exp(c.logLikelihood(q)), 1e-9);
}

TEST(BuildFromHmm, MatchesForwardLikelihood)
{
    Rng rng(45);
    hmm::Hmm h = hmm::Hmm::random(rng, 4, 5);
    hmm::Sequence obs;
    h.sample(rng, 10, &obs);
    Dag dag = buildFromHmm(h, obs);
    double want = std::exp(hmm::sequenceLogLikelihood(h, obs));
    EXPECT_NEAR(dag.evaluateRoot({}), want, 1e-9 * want + 1e-12);
}

TEST(BuildFromHmmViterbi, MatchesViterbiScore)
{
    Rng rng(46);
    hmm::Hmm h = hmm::Hmm::random(rng, 3, 4);
    hmm::Sequence obs;
    h.sample(rng, 8, &obs);
    Dag dag = buildFromHmmViterbi(h, obs);
    double want = std::exp(hmm::viterbi(h, obs).logProb);
    EXPECT_NEAR(dag.evaluateRoot({}), want, 1e-9 * want + 1e-12);
}

TEST(BuildFromHmm, BandedModelShrinksDag)
{
    Rng rng(47);
    hmm::Hmm dense = hmm::Hmm::random(rng, 12, 6);
    hmm::Hmm banded = hmm::Hmm::banded(rng, 12, 6, 2);
    hmm::Sequence obs;
    dense.sample(rng, 12, &obs);
    // Zero transitions disappear as DAG edges (node count is governed
    // by the state grid either way).
    size_t dense_edges = buildFromHmm(dense, obs).stats().numEdges;
    size_t banded_edges = buildFromHmm(banded, obs).stats().numEdges;
    EXPECT_LT(banded_edges, dense_edges);
}

/** Regularization must preserve values exactly and bound fan-in by 2. */
class RegularizeSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(RegularizeSweep, PreservesEvaluation)
{
    Rng rng(GetParam() * 2003 + 17);
    core::Dag dag =
        testutil::randomDag(rng, 6, 30, 5, GetParam() % 3 == 0);
    auto inputs = testutil::randomInputs(rng, 6);
    double before = dag.evaluateRoot(inputs);
    RegularizeResult rr = regularizeTwoInput(dag);
    EXPECT_TRUE(dag.isTwoInput());
    double after = dag.evaluateRoot(inputs);
    EXPECT_TRUE(nearlyEqual(before, after, 1e-9, 1e-12))
        << before << " vs " << after;
    EXPECT_GE(rr.nodesAfter, rr.nodesBefore - 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RegularizeSweep, ::testing::Range(0, 30));

TEST(Regularize, BalancedDepthForWideSum)
{
    Dag dag;
    std::vector<NodeId> ins;
    for (int i = 0; i < 16; ++i)
        ins.push_back(dag.addInput());
    dag.markRoot(dag.addOp(DagOp::Sum, ins));
    regularizeTwoInput(dag);
    // Balanced binary reduction of 16 operands has depth 4.
    EXPECT_EQ(dag.stats().depth, 4u);
}

TEST(Pipeline, CnfOptimizationPreservesSatisfiability)
{
    Rng rng(48);
    logic::CnfFormula f = logic::randomKSat(rng, 14, 28, 2);
    logic::CnfFormula f3 = logic::randomKSat(rng, 14, 20, 3);
    for (const auto &c : f3.clauses())
        f.addClause(c);
    OptimizedKernel k = optimizeCnf(f);
    EXPECT_TRUE(k.dag.isTwoInput());
    EXPECT_GT(k.statsBefore.memoryBytes, 0u);
    // The optimized DAG realizes an equivalent formula: evaluate both
    // on random assignments.
    logic::CnfPruneResult pr = logic::pruneCnf(f);
    for (int t = 0; t < 30; ++t) {
        std::vector<bool> assign(f.numVars());
        std::vector<double> inputs(f.numVars());
        for (uint32_t v = 0; v < f.numVars(); ++v) {
            assign[v] = rng.bernoulli(0.5);
            inputs[v] = assign[v] ? 1.0 : 0.0;
        }
        EXPECT_DOUBLE_EQ(k.dag.evaluateRoot(inputs),
                         pr.pruned.evaluate(assign) ? 1.0 : 0.0);
    }
}

TEST(Pipeline, CircuitOptimizationReducesMemory)
{
    Rng rng(49);
    pc::Circuit c = pc::randomCircuit(rng, 8, 2, 3, 6);
    auto data = pc::sampleDataset(rng, c, 150);
    PipelineConfig cfg;
    cfg.pcFlowThreshold = 5e-3;
    OptimizedKernel k = optimizeCircuit(c, data, cfg);
    EXPECT_GT(k.memoryReduction, 0.0);
    EXPECT_TRUE(k.dag.isTwoInput());
}

TEST(Pipeline, OptimizedCircuitDagMatchesPrunedCircuit)
{
    Rng rng(50);
    pc::Circuit c = pc::randomCircuit(rng, 6, 2, 2, 4);
    auto data = pc::sampleDataset(rng, c, 100);
    pc::Circuit pruned(1, 2);
    std::vector<pc::NodeId> leaf_order;
    OptimizedKernel k =
        optimizeCircuit(c, data, {}, &pruned, &leaf_order);
    for (const auto &x : data) {
        auto inputs = circuitLeafInputs(pruned, leaf_order, x);
        EXPECT_NEAR(k.dag.evaluateRoot(inputs),
                    std::exp(pruned.logLikelihood(x)), 1e-9);
    }
}

TEST(Pipeline, HmmOptimizationKeepsQueryEvaluable)
{
    Rng rng(51);
    hmm::Hmm h = hmm::Hmm::banded(rng, 10, 8, 2);
    std::vector<hmm::Sequence> cal;
    for (int i = 0; i < 10; ++i) {
        hmm::Sequence s;
        h.sample(rng, 12, &s);
        cal.push_back(std::move(s));
    }
    hmm::Sequence query;
    h.sample(rng, 12, &query);
    hmm::Hmm pruned(1, 1);
    OptimizedKernel k = optimizeHmm(h, cal, query, {}, &pruned);
    EXPECT_TRUE(k.dag.isTwoInput());
    double want = std::exp(hmm::sequenceLogLikelihood(pruned, query));
    EXPECT_NEAR(k.dag.evaluateRoot({}), want, 1e-9 * want + 1e-12);
    EXPECT_GE(k.memoryReduction, 0.0);
}

TEST(Pipeline, DisabledStagesAreNoOps)
{
    Rng rng(52);
    logic::CnfFormula f = logic::randomKSat(rng, 10, 30, 3);
    PipelineConfig cfg;
    cfg.prune = false;
    cfg.regularize = false;
    OptimizedKernel k = optimizeCnf(f, cfg);
    EXPECT_EQ(k.elementsPruned, 0u);
    EXPECT_NEAR(k.memoryReduction, 0.0, 1e-12);
}
