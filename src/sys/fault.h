/**
 * @file
 * Deterministic fault injection for the serving stack.
 *
 * A FaultPlan is a seeded schedule of transport and dispatcher faults:
 * connection resets, torn frames (a prefix is delivered, then the
 * connection dies), short reads, partial writes, delays, and
 * dispatcher stalls.  Hooks sit in the socket I/O helpers (sys/net)
 * and in the dispatcher loop (sys::ReasonEngine); each hook consults
 * the globally installed plan, which decides per *event index* — an
 * atomic counter mixed with the seed through splitmix64 — so a given
 * (spec, seed) pair injects the same schedule on every run regardless
 * of wall-clock timing.  That determinism is the contract the
 * fault_recovery gate and tests rely on: reproducing a failure is
 * re-running the same spec.
 *
 * The hooks are compiled in unconditionally but cost one relaxed
 * atomic load when no plan is installed — production builds pay
 * nothing for carrying them.
 *
 * Plans parse from a compact comma-separated spec (the format of
 * `reason_cli serve --fault-plan` and the REASON_FAULT_PLAN
 * environment variable):
 *
 *     seed=42,reset=0.01,torn=0.02,short=0.1,partial=0.1,
 *     delay=0.05,delay_us=500,stall=0.02,stall_us=2000,
 *     reset_nth=100,stall_nth=50
 *
 * Point probabilities (`reset`, `torn`, `short`, `partial`, `delay`,
 * `stall`) are per-event in [0,1]; `*_nth` triggers fire
 * deterministically on every n-th event of their class and compose
 * with the probabilistic ones.
 */

#ifndef REASON_SYS_FAULT_H
#define REASON_SYS_FAULT_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace reason {
namespace sys {

/**
 * What an I/O hook should do to the operation it guards.  Applied in
 * field order: sleep `delayUs`, then fail outright if `reset`,
 * otherwise cap the transfer at `maxBytes` (0 = no cap) and — for
 * torn-frame sends — kill the connection after the capped prefix went
 * out (`resetAfter`).
 */
struct FaultAction
{
    unsigned delayUs = 0;
    bool reset = false;
    size_t maxBytes = 0;
    bool resetAfter = false;
};

/** Injection counters (snapshot of what actually fired). */
struct FaultStats
{
    uint64_t resets = 0;
    uint64_t tornFrames = 0;
    uint64_t shortReads = 0;
    uint64_t partialWrites = 0;
    uint64_t delays = 0;
    uint64_t stalls = 0;

    uint64_t
    total() const
    {
        return resets + tornFrames + shortReads + partialWrites +
               delays + stalls;
    }
};

/**
 * A seeded, deterministic fault schedule.  Thread-safe: hooks from any
 * number of connection handlers and dispatchers share the event
 * counters.  The object itself must outlive its installation.
 */
class FaultPlan
{
  public:
    FaultPlan() = default;
    FaultPlan(const FaultPlan &) = delete;
    FaultPlan &operator=(const FaultPlan &) = delete;

    /**
     * Parse a spec string (see file comment) into `out`.  Returns
     * false and sets `error` on an unknown key, a malformed value, or
     * a probability outside [0,1].  An empty spec parses to a plan
     * with no faults.
     */
    static bool parse(const std::string &spec, FaultPlan *out,
                      std::string *error);

    /** True when any trigger is configured. */
    bool enabled() const
    {
        return pReset_ > 0.0 || pTorn_ > 0.0 || pShort_ > 0.0 ||
               pPartial_ > 0.0 || pDelay_ > 0.0 || pStall_ > 0.0 ||
               resetNth_ != 0 || stallNth_ != 0;
    }

    /**
     * Decide the fate of a socket receive of up to `wanted` bytes
     * (consumes one I/O event).
     */
    FaultAction onRecv(size_t wanted);

    /**
     * Decide the fate of a socket send of `wanted` bytes (consumes one
     * I/O event).  Torn frames surface as maxBytes + resetAfter.
     */
    FaultAction onSend(size_t wanted);

    /**
     * Dispatcher hook: sleep `stall_us` when the schedule says so
     * (consumes one dispatch event).  Stalls delay execution — they
     * never corrupt it — which is exactly the window where queued
     * deadlines expire.
     */
    void dispatchStall();

    FaultStats stats() const;

    /** Canonical spec of the configured triggers (for logs). */
    std::string describe() const;

  private:
    friend class FaultPlanTestPeer;

    /** Uniform [0,1) draw for event `index` of class `salt`. */
    double roll(uint64_t index, uint64_t salt) const;

    double pReset_ = 0.0;
    double pTorn_ = 0.0;
    double pShort_ = 0.0;
    double pPartial_ = 0.0;
    double pDelay_ = 0.0;
    double pStall_ = 0.0;
    unsigned delayUs_ = 200;
    unsigned stallUs_ = 2000;
    /** Fire on every n-th event of the class; 0 = off. */
    uint64_t resetNth_ = 0;
    uint64_t stallNth_ = 0;
    uint64_t seed_ = 1;

    std::atomic<uint64_t> ioEvents_{0};
    std::atomic<uint64_t> dispatchEvents_{0};
    std::atomic<uint64_t> resets_{0};
    std::atomic<uint64_t> tornFrames_{0};
    std::atomic<uint64_t> shortReads_{0};
    std::atomic<uint64_t> partialWrites_{0};
    std::atomic<uint64_t> delays_{0};
    std::atomic<uint64_t> stalls_{0};
};

/**
 * Install `plan` as the process-global fault plan (nullptr uninstalls;
 * the plan is not owned and must outlive its installation).  Replaces
 * any previous installation.  Not for concurrent use with in-flight
 * hooks against a plan being *destroyed* — install before serving
 * starts, uninstall after it stops.
 */
void installFaultPlan(FaultPlan *plan);

/** The installed plan, or nullptr (one relaxed atomic load). */
FaultPlan *activeFaultPlan();

/** Dispatcher-loop hook (no-op without an installed plan). */
inline void
faultDispatchStall()
{
    if (FaultPlan *plan = activeFaultPlan())
        plan->dispatchStall();
}

} // namespace sys
} // namespace reason

#endif // REASON_SYS_FAULT_H
