#include "pc/pc.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "pc/flat_cache.h"
#include "pc/flat_pc.h"
#include "util/logging.h"
#include "util/numeric.h"
#include "util/rng.h"

namespace reason {
namespace pc {

Circuit::Circuit(uint32_t num_vars, uint32_t arity)
    : numVars_(num_vars), arity_(arity)
{
    reasonAssert(num_vars > 0 && arity >= 2,
                 "circuit needs >=1 variable of arity >=2");
}

size_t
Circuit::numEdges() const
{
    size_t n = 0;
    for (const auto &node : nodes_)
        n += node.children.size();
    return n;
}

NodeId
Circuit::addLeaf(uint32_t var, std::vector<double> dist)
{
    reasonAssert(var < numVars_, "leaf variable out of range");
    reasonAssert(dist.size() == arity_, "leaf distribution arity mismatch");
    double sum = 0.0;
    for (double d : dist) {
        reasonAssert(d >= 0.0, "leaf probabilities must be non-negative");
        sum += d;
    }
    reasonAssert(sum > 0.0, "leaf distribution must have positive mass");
    for (double &d : dist)
        d /= sum;
    PcNode n;
    n.type = PcNodeType::Leaf;
    n.var = var;
    n.dist = std::move(dist);
    nodes_.push_back(std::move(n));
    root_ = static_cast<NodeId>(nodes_.size() - 1);
    return root_;
}

NodeId
Circuit::addProduct(std::vector<NodeId> children)
{
    reasonAssert(!children.empty(), "product needs children");
    for (NodeId c : children)
        reasonAssert(c < nodes_.size(), "product child must exist");
    PcNode n;
    n.type = PcNodeType::Product;
    n.children = std::move(children);
    nodes_.push_back(std::move(n));
    root_ = static_cast<NodeId>(nodes_.size() - 1);
    return root_;
}

NodeId
Circuit::addSum(std::vector<NodeId> children, std::vector<double> weights)
{
    reasonAssert(!children.empty(), "sum needs children");
    reasonAssert(children.size() == weights.size(),
                 "sum weights must align with children");
    for (NodeId c : children)
        reasonAssert(c < nodes_.size(), "sum child must exist");
    double total = 0.0;
    for (double w : weights) {
        reasonAssert(w >= 0.0, "sum weights must be non-negative");
        total += w;
    }
    reasonAssert(total > 0.0, "sum weights must have positive mass");
    for (double &w : weights)
        w /= total;
    PcNode n;
    n.type = PcNodeType::Sum;
    n.children = std::move(children);
    n.weights = std::move(weights);
    nodes_.push_back(std::move(n));
    root_ = static_cast<NodeId>(nodes_.size() - 1);
    return root_;
}

void
Circuit::markRoot(NodeId id)
{
    reasonAssert(id < nodes_.size(), "root must exist");
    root_ = id;
}

std::vector<double>
Circuit::evaluate(const Assignment &x) const
{
    reasonAssert(x.size() >= numVars_, "assignment too short");
    std::vector<double> val(nodes_.size(), kLogZero);
    for (size_t i = 0; i < nodes_.size(); ++i) {
        const PcNode &n = nodes_[i];
        switch (n.type) {
          case PcNodeType::Leaf: {
            uint32_t v = x[n.var];
            if (v == kMissing) {
                val[i] = 0.0; // marginalized: sums to 1
            } else {
                reasonAssert(v < arity_, "assignment value out of range");
                val[i] = n.dist[v] > 0.0 ? std::log(n.dist[v]) : kLogZero;
            }
            break;
          }
          case PcNodeType::Product: {
            double acc = 0.0;
            for (NodeId c : n.children) {
                acc += val[c];
                if (acc == kLogZero)
                    break;
            }
            val[i] = acc;
            break;
          }
          case PcNodeType::Sum: {
            double acc = kLogZero;
            for (size_t k = 0; k < n.children.size(); ++k) {
                if (n.weights[k] <= 0.0)
                    continue;
                acc = logAdd(acc,
                             std::log(n.weights[k]) + val[n.children[k]]);
            }
            val[i] = acc;
            break;
          }
        }
    }
    return val;
}

double
Circuit::logLikelihood(const Assignment &x) const
{
    reasonAssert(root_ != kInvalidNode, "circuit has no root");
    return evaluate(x)[root_];
}

Assignment
Circuit::mapCompletion(const Assignment &x) const
{
    reasonAssert(root_ != kInvalidNode, "circuit has no root");
    // Upward max-product pass.
    std::vector<double> val(nodes_.size(), kLogZero);
    std::vector<uint32_t> best_child(nodes_.size(), 0);
    for (size_t i = 0; i < nodes_.size(); ++i) {
        const PcNode &n = nodes_[i];
        switch (n.type) {
          case PcNodeType::Leaf: {
            uint32_t v = x[n.var];
            if (v == kMissing) {
                double best = 0.0;
                uint32_t arg = 0;
                for (uint32_t k = 0; k < arity_; ++k) {
                    if (n.dist[k] > best) {
                        best = n.dist[k];
                        arg = k;
                    }
                }
                val[i] = best > 0.0 ? std::log(best) : kLogZero;
                best_child[i] = arg;
            } else {
                val[i] =
                    n.dist[v] > 0.0 ? std::log(n.dist[v]) : kLogZero;
                best_child[i] = v;
            }
            break;
          }
          case PcNodeType::Product: {
            double acc = 0.0;
            for (NodeId c : n.children)
                acc += val[c];
            val[i] = acc;
            break;
          }
          case PcNodeType::Sum: {
            double best = kLogZero;
            uint32_t arg = 0;
            for (size_t k = 0; k < n.children.size(); ++k) {
                if (n.weights[k] <= 0.0)
                    continue;
                double cand =
                    std::log(n.weights[k]) + val[n.children[k]];
                if (cand > best) {
                    best = cand;
                    arg = static_cast<uint32_t>(k);
                }
            }
            val[i] = best;
            best_child[i] = arg;
            break;
          }
        }
    }
    // Downward decoding.
    Assignment out = x;
    out.resize(numVars_, kMissing);
    std::vector<NodeId> stack{root_};
    while (!stack.empty()) {
        NodeId id = stack.back();
        stack.pop_back();
        const PcNode &n = nodes_[id];
        switch (n.type) {
          case PcNodeType::Leaf:
            if (out[n.var] == kMissing)
                out[n.var] = best_child[id];
            break;
          case PcNodeType::Product:
            for (NodeId c : n.children)
                stack.push_back(c);
            break;
          case PcNodeType::Sum:
            stack.push_back(n.children[best_child[id]]);
            break;
        }
    }
    // Any variable untouched by the selected subcircuit: fill greedily.
    for (uint32_t v = 0; v < numVars_; ++v)
        if (out[v] == kMissing)
            out[v] = 0;
    return out;
}

double
Circuit::bruteForceLogZ() const
{
    uint64_t limit = 0;
    reasonAssert(checkedIntPow(arity_, numVars_, uint64_t(1) << 22,
                               &limit),
                 "brute force partition too large");
    std::shared_ptr<const FlatCircuit> flat = cachedLowering(*this);
    CircuitEvaluator eval(*flat);
    Assignment x(numVars_, 0);
    double acc = kLogZero;
    for (uint64_t m = 0; m < limit; ++m) {
        uint64_t rest = m;
        for (uint32_t v = 0; v < numVars_; ++v) {
            x[v] = static_cast<uint32_t>(rest % arity_);
            rest /= arity_;
        }
        acc = logAdd(acc, eval.logLikelihood(x));
    }
    return acc;
}

void
Circuit::validate() const
{
    reasonAssert(root_ != kInvalidNode, "circuit has no root");
    for (size_t i = 0; i < nodes_.size(); ++i) {
        const PcNode &n = nodes_[i];
        for (NodeId c : n.children)
            reasonAssert(c < i, "children must precede parents");
        if (n.type == PcNodeType::Sum) {
            reasonAssert(n.children.size() == n.weights.size(),
                         "sum weight/child mismatch");
            double total = 0.0;
            for (double w : n.weights)
                total += w;
            reasonAssert(std::fabs(total - 1.0) < 1e-6,
                         "sum weights must be normalized");
        }
        if (n.type == PcNodeType::Leaf)
            reasonAssert(n.dist.size() == arity_, "leaf arity mismatch");
    }
}

std::vector<std::vector<uint32_t>>
Circuit::scopes() const
{
    std::vector<std::vector<uint32_t>> scope(nodes_.size());
    for (size_t i = 0; i < nodes_.size(); ++i) {
        const PcNode &n = nodes_[i];
        if (n.type == PcNodeType::Leaf) {
            scope[i] = {n.var};
            continue;
        }
        std::set<uint32_t> merged;
        for (NodeId c : n.children)
            merged.insert(scope[c].begin(), scope[c].end());
        scope[i].assign(merged.begin(), merged.end());
    }
    return scope;
}

bool
Circuit::isSmoothAndDecomposable() const
{
    auto scope = scopes();
    for (size_t i = 0; i < nodes_.size(); ++i) {
        const PcNode &n = nodes_[i];
        if (n.type == PcNodeType::Sum) {
            for (NodeId c : n.children)
                if (scope[c] != scope[n.children[0]])
                    return false;
        } else if (n.type == PcNodeType::Product) {
            size_t total = 0;
            for (NodeId c : n.children)
                total += scope[c].size();
            if (total != scope[i].size())
                return false; // overlap detected
        }
    }
    return true;
}

namespace {

/** Recursive region-graph construction for randomCircuit. */
std::vector<NodeId>
buildRegion(Rng &rng, Circuit &circuit, const std::vector<uint32_t> &vars,
            uint32_t num_sums, uint32_t num_inputs)
{
    if (vars.size() == 1) {
        std::vector<NodeId> leaves;
        for (uint32_t s = 0; s < num_sums; ++s)
            leaves.push_back(
                circuit.addLeaf(vars[0],
                                rng.dirichlet(circuit.arity(), 2.0)));
        return leaves;
    }
    // Balanced split.
    size_t half = vars.size() / 2;
    std::vector<uint32_t> left(vars.begin(), vars.begin() + half);
    std::vector<uint32_t> right(vars.begin() + half, vars.end());
    auto left_nodes = buildRegion(rng, circuit, left, num_sums, num_inputs);
    auto right_nodes =
        buildRegion(rng, circuit, right, num_sums, num_inputs);

    // Cross products of left x right representatives.
    std::vector<NodeId> products;
    for (NodeId l : left_nodes)
        for (NodeId r : right_nodes)
            products.push_back(circuit.addProduct({l, r}));

    std::vector<NodeId> sums;
    uint32_t inputs = std::min<uint32_t>(
        num_inputs, static_cast<uint32_t>(products.size()));
    for (uint32_t s = 0; s < num_sums; ++s) {
        // Random subset of products as children.
        std::vector<NodeId> pool = products;
        rng.shuffle(pool);
        pool.resize(inputs);
        sums.push_back(circuit.addSum(pool, rng.dirichlet(inputs, 1.0)));
    }
    return sums;
}

} // namespace

Circuit
randomCircuit(Rng &rng, uint32_t num_vars, uint32_t arity,
              uint32_t num_sums, uint32_t num_inputs)
{
    Circuit circuit(num_vars, arity);
    std::vector<uint32_t> vars(num_vars);
    for (uint32_t v = 0; v < num_vars; ++v)
        vars[v] = v;
    auto roots = buildRegion(rng, circuit, vars, num_sums, num_inputs);
    if (roots.size() == 1) {
        circuit.markRoot(roots[0]);
    } else {
        NodeId root = circuit.addSum(
            roots, rng.dirichlet(roots.size(), 1.0));
        circuit.markRoot(root);
    }
    circuit.validate();
    return circuit;
}

std::vector<Assignment>
sampleDataset(Rng &rng, const Circuit &circuit, size_t count)
{
    std::vector<Assignment> data;
    data.reserve(count);
    // Explicit descent stack reused across samples (no recursion, no
    // per-sample allocation).  Children are pushed in reverse so the
    // visit order — and hence the RNG stream — matches the recursive
    // pre-order walk this replaced.
    std::vector<NodeId> stack;
    for (size_t i = 0; i < count; ++i) {
        Assignment x(circuit.numVars(), kMissing);
        stack.clear();
        stack.push_back(circuit.root());
        while (!stack.empty()) {
            const PcNode &n = circuit.node(stack.back());
            stack.pop_back();
            switch (n.type) {
              case PcNodeType::Leaf:
                x[n.var] =
                    static_cast<uint32_t>(rng.categorical(n.dist));
                break;
              case PcNodeType::Product:
                for (size_t k = n.children.size(); k-- > 0;)
                    stack.push_back(n.children[k]);
                break;
              case PcNodeType::Sum: {
                size_t k = rng.categorical(n.weights);
                stack.push_back(n.children[k]);
                break;
              }
            }
        }
        for (auto &v : x)
            if (v == kMissing)
                v = 0;
        data.push_back(std::move(x));
    }
    return data;
}

} // namespace pc
} // namespace reason
