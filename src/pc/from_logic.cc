#include "pc/from_logic.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <span>
#include <vector>

#include "util/logging.h"
#include "util/numeric.h"

namespace reason {
namespace pc {

using logic::DnnfGraph;
using logic::LitWeights;
using logic::NnfId;
using logic::NnfNode;
using logic::NnfType;

namespace {

/** Sentinel PC id for True-valued NNF nodes (empty scope). */
constexpr NodeId kUnitPc = kInvalidNode;

/** Vars in `parent` missing from `child` (both sorted). */
std::vector<uint32_t>
scopeGap(const std::vector<uint32_t> &parent,
         const std::vector<uint32_t> &child)
{
    std::vector<uint32_t> gap;
    size_t ci = 0;
    for (uint32_t v : parent) {
        while (ci < child.size() && child[ci] < v)
            ++ci;
        if (ci < child.size() && child[ci] == v)
            continue;
        gap.push_back(v);
    }
    return gap;
}

} // namespace

Circuit
fromDnnf(const DnnfGraph &graph, const LitWeights &weights)
{
    reasonAssert(graph.numVars() > 0, "circuit needs at least one variable");
    auto scope = graph.scopes();
    auto value = graph.weightedValues(weights);
    if (value[graph.root()] <= 0.0)
        fatal("fromDnnf: formula is unsatisfiable under the weights "
              "(WMC = 0); the conditioned distribution does not exist");

    Circuit circuit(graph.numVars(), 2);

    // Marginal leaf P(v) ∝ (neg, pos), created on demand per variable.
    std::vector<NodeId> marginal(graph.numVars(), kInvalidNode);
    auto marginalLeaf = [&](uint32_t var) {
        if (marginal[var] == kInvalidNode)
            marginal[var] = circuit.addLeaf(
                var, {weights.neg[var], weights.pos[var]});
        return marginal[var];
    };
    // Product of `base` (optional) with marginal leaves over `gap`.
    auto padded = [&](NodeId base, const std::vector<uint32_t> &gap) {
        std::vector<NodeId> parts;
        if (base != kUnitPc)
            parts.push_back(base);
        for (uint32_t v : gap)
            parts.push_back(marginalLeaf(v));
        reasonAssert(!parts.empty(), "padding an empty scope");
        if (parts.size() == 1)
            return parts[0];
        return circuit.addProduct(std::move(parts));
    };

    // Only NNF nodes reachable from the root become circuit nodes.
    std::vector<bool> reachable(graph.numNodes(), false);
    reachable[graph.root()] = true;
    for (size_t i = graph.numNodes(); i-- > 0;) {
        if (!reachable[i])
            continue;
        for (NnfId c : graph.node(NnfId(i)).children)
            reachable[c] = true;
    }

    std::vector<NodeId> pcId(graph.numNodes(), kInvalidNode);
    for (size_t i = 0; i < graph.numNodes(); ++i) {
        if (!reachable[i])
            continue;
        const NnfNode &node = graph.node(NnfId(i));
        switch (node.type) {
          case NnfType::True:
            pcId[i] = kUnitPc;
            break;
          case NnfType::False:
            // The compiler folds False out of reachable positions except
            // a root-level contradiction, which the WMC guard rejected.
            panic("False node reachable in satisfiable d-DNNF");
            break;
          case NnfType::Lit: {
            uint32_t var = node.lit.var();
            std::vector<double> dist(2, 0.0);
            dist[node.lit.negated() ? 0 : 1] = 1.0;
            pcId[i] = circuit.addLeaf(var, std::move(dist));
            break;
          }
          case NnfType::And: {
            std::vector<NodeId> parts;
            for (NnfId c : node.children)
                if (pcId[c] != kUnitPc)
                    parts.push_back(pcId[c]);
            if (parts.empty())
                pcId[i] = kUnitPc;
            else if (parts.size() == 1)
                pcId[i] = parts[0];
            else
                pcId[i] = circuit.addProduct(std::move(parts));
            break;
          }
          case NnfType::Or: {
            std::vector<NodeId> children;
            std::vector<double> mix;
            for (NnfId c : node.children) {
                auto gap = scopeGap(scope[i], scope[c]);
                double w = value[c];
                for (uint32_t v : gap)
                    w *= weights.pos[v] + weights.neg[v];
                if (w <= 0.0)
                    continue; // dead branch under these weights
                children.push_back(padded(pcId[c], gap));
                mix.push_back(w);
            }
            reasonAssert(!children.empty(), "Or with no live branch");
            if (children.size() == 1)
                pcId[i] = children[0];
            else
                pcId[i] = circuit.addSum(std::move(children),
                                         std::move(mix));
            break;
          }
        }
    }

    // Pad the root out to the full variable set.
    std::vector<uint32_t> all_gap;
    {
        const auto &rs = scope[graph.root()];
        size_t si = 0;
        for (uint32_t v = 0; v < graph.numVars(); ++v) {
            while (si < rs.size() && rs[si] < v)
                ++si;
            if (si < rs.size() && rs[si] == v)
                continue;
            all_gap.push_back(v);
        }
    }
    NodeId root = padded(pcId[graph.root()], all_gap);
    circuit.markRoot(root);
    circuit.validate();
    return circuit;
}

Circuit
compileCnf(const logic::CnfFormula &formula)
{
    return compileCnf(formula, LitWeights::uniform(formula.numVars()));
}

Circuit
compileCnf(const logic::CnfFormula &formula, const LitWeights &weights)
{
    return fromDnnf(logic::compileToDnnf(formula), weights);
}

// ---------------------------------------------------------------------------
// Direct flat (WMC) lowering
// ---------------------------------------------------------------------------

namespace {

/** Flat id sentinel for True-valued NNF nodes (empty scope, weight 1). */
constexpr uint32_t kUnitFlat = kInvalidNode;

/**
 * Incremental d-DNNF -> flat WMC circuit builder, shared by the
 * in-memory route (flatFromDnnf) and the streaming `.nnf` loader so
 * both emit byte-identical arrays for the same node sequence.
 *
 * Nodes are fed in file/topological order (children first); each call
 * appends the flat nodes that node needs — indicator leaves, literal
 * weight sums, and smoothing marginals are hash-consed per variable —
 * keeping the emitted ids a pure function of the input sequence.
 * Scopes are tracked per input node to compute the smoothing gaps of
 * decision branches and of the root.
 */
class WmcFlatBuilder
{
  public:
    WmcFlatBuilder(uint32_t num_vars, const LitWeights &weights)
        : weights_(weights)
    {
        fc_.numVars = num_vars;
        fc_.arity = 2;
        fc_.edgeOffset.push_back(0);
        indicator_.assign(size_t(num_vars) * 2, kInvalidNode);
        litNode_.assign(size_t(num_vars) * 2, kInvalidNode);
        marginal_.assign(num_vars, kInvalidNode);
    }

    /** Input nodes consumed so far (the next node's sequence id). */
    size_t numNodes() const { return flatId_.size(); }
    /** Description of the rejected node after addNode() returns false. */
    const std::string &error() const { return error_; }

    /**
     * Consume one d-DNNF node; children are sequence ids of earlier
     * addNode() calls (the caller guarantees the range).  Returns false
     * — without crashing — when an And's children overlap (streamed
     * files are not pre-validated).
     */
    bool
    addNode(NnfType type, logic::Lit lit, uint32_t decision_var,
            std::span<const NnfId> children)
    {
        (void)decision_var; // determinism is the producer's contract
        std::vector<uint32_t> scope;
        uint32_t id = kUnitFlat;
        switch (type) {
          case NnfType::True:
            break;
          case NnfType::False:
            id = falseNode();
            break;
          case NnfType::Lit:
            scope.push_back(lit.var());
            id = litNodeFor(lit);
            break;
          case NnfType::And: {
            size_t total = 0;
            std::vector<uint32_t> parts;
            for (NnfId c : children) {
                scope.insert(scope.end(), scope_[c].begin(),
                             scope_[c].end());
                total += scope_[c].size();
                if (flatId_[c] != kUnitFlat)
                    parts.push_back(flatId_[c]);
            }
            std::sort(scope.begin(), scope.end());
            scope.erase(std::unique(scope.begin(), scope.end()),
                        scope.end());
            if (scope.size() != total) {
                error_ =
                    "And children must have pairwise disjoint scopes";
                return false;
            }
            if (parts.empty())
                id = kUnitFlat;
            else if (parts.size() == 1)
                id = parts[0];
            else
                id = addProduct(parts);
            break;
          }
          case NnfType::Or: {
            for (NnfId c : children)
                scope.insert(scope.end(), scope_[c].begin(),
                             scope_[c].end());
            std::sort(scope.begin(), scope.end());
            scope.erase(std::unique(scope.begin(), scope.end()),
                        scope.end());
            // Each branch is padded out to the decision's scope, so by
            // determinism the branch counts add: unit edge weights.
            std::vector<uint32_t> branch;
            for (NnfId c : children)
                branch.push_back(
                    padded(flatId_[c], scopeGap(scope, scope_[c])));
            std::vector<double> logw(branch.size(), 0.0);
            id = addSum(branch, logw);
            break;
          }
        }
        flatId_.push_back(id);
        scope_.push_back(std::move(scope));
        return true;
    }

    /** Pad the last node (the root) to the full variable set, fix the
     *  root, and derive the schedules.  Call exactly once. */
    FlatCircuit
    finish()
    {
        reasonAssert(!flatId_.empty(), "flat build with no nodes");
        const size_t r = flatId_.size() - 1;
        std::vector<uint32_t> all_gap;
        {
            const auto &rs = scope_[r];
            size_t si = 0;
            for (uint32_t v = 0; v < fc_.numVars; ++v) {
                while (si < rs.size() && rs[si] < v)
                    ++si;
                if (si < rs.size() && rs[si] == v)
                    continue;
                all_gap.push_back(v);
            }
        }
        fc_.root = padded(flatId_[r], all_gap);
        fc_.finalizeTopology();
        return std::move(fc_);
    }

  private:
    static double
    logOrZero(double w)
    {
        return w > 0.0 ? std::log(w) : kLogZero;
    }

    uint32_t
    addLeaf(uint32_t var, uint32_t value)
    {
        const uint32_t id = uint32_t(fc_.types.size());
        fc_.types.push_back(FlatCircuit::kLeaf);
        fc_.leafSlot.push_back(uint32_t(fc_.leafVar.size()));
        fc_.leafVar.push_back(var);
        fc_.leafLogDist.push_back(value == 0 ? 0.0 : kLogZero);
        fc_.leafLogDist.push_back(value == 1 ? 0.0 : kLogZero);
        fc_.edgeOffset.push_back(uint32_t(fc_.edgeTarget.size()));
        return id;
    }

    uint32_t
    addSum(std::span<const uint32_t> children,
           std::span<const double> log_weights)
    {
        const uint32_t id = uint32_t(fc_.types.size());
        fc_.types.push_back(FlatCircuit::kSum);
        fc_.leafSlot.push_back(kInvalidNode);
        for (size_t k = 0; k < children.size(); ++k) {
            fc_.edgeTarget.push_back(children[k]);
            fc_.edgeLogWeight.push_back(log_weights[k]);
        }
        fc_.edgeOffset.push_back(uint32_t(fc_.edgeTarget.size()));
        return id;
    }

    uint32_t
    addProduct(std::span<const uint32_t> children)
    {
        const uint32_t id = uint32_t(fc_.types.size());
        fc_.types.push_back(FlatCircuit::kProduct);
        fc_.leafSlot.push_back(kInvalidNode);
        for (uint32_t c : children) {
            fc_.edgeTarget.push_back(c);
            fc_.edgeLogWeight.push_back(kLogZero);
        }
        fc_.edgeOffset.push_back(uint32_t(fc_.edgeTarget.size()));
        return id;
    }

    /** 0/1 indicator leaf for var == value, hash-consed. */
    uint32_t
    indicatorLeaf(uint32_t var, uint32_t value)
    {
        uint32_t &slot = indicator_[size_t(var) * 2 + value];
        if (slot == kInvalidNode)
            slot = addLeaf(var, value);
        return slot;
    }

    /** w(lit) * indicator(lit): the literal's weight rides on the sum
     *  edge because leaf distributions must stay 0/1 indicators (a
     *  kMissing variable evaluates the leaf to log 1). */
    uint32_t
    litNodeFor(logic::Lit lit)
    {
        const uint32_t value = lit.negated() ? 0u : 1u;
        uint32_t &slot = litNode_[size_t(lit.var()) * 2 + value];
        if (slot == kInvalidNode) {
            const uint32_t leaf = indicatorLeaf(lit.var(), value);
            const double w = lit.negated() ? weights_.neg[lit.var()]
                                           : weights_.pos[lit.var()];
            const uint32_t child[1] = {leaf};
            const double logw[1] = {logOrZero(w)};
            slot = addSum(child, logw);
        }
        return slot;
    }

    /** Smoothing marginal w_neg*[v=0] + w_pos*[v=1], hash-consed. */
    uint32_t
    marginalNode(uint32_t var)
    {
        uint32_t &slot = marginal_[var];
        if (slot == kInvalidNode) {
            const uint32_t child[2] = {indicatorLeaf(var, 0),
                                       indicatorLeaf(var, 1)};
            const double logw[2] = {logOrZero(weights_.neg[var]),
                                    logOrZero(weights_.pos[var])};
            slot = addSum(child, logw);
        }
        return slot;
    }

    /** Empty sum: evaluates to -inf (the constant-false circuit). */
    uint32_t
    falseNode()
    {
        if (false_ == kInvalidNode)
            false_ = addSum({}, {});
        return false_;
    }

    /** Empty product: evaluates to log 1 (a materialized unit). */
    uint32_t
    unitNode()
    {
        if (unit_ == kInvalidNode)
            unit_ = addProduct({});
        return unit_;
    }

    /** Product of `base` (kUnitFlat allowed) with the marginals over
     *  `gap`; collapses to the single part when there is only one. */
    uint32_t
    padded(uint32_t base, const std::vector<uint32_t> &gap)
    {
        std::vector<uint32_t> parts;
        if (base != kUnitFlat)
            parts.push_back(base);
        for (uint32_t v : gap)
            parts.push_back(marginalNode(v));
        if (parts.empty())
            return unitNode();
        if (parts.size() == 1)
            return parts[0];
        return addProduct(parts);
    }

    const LitWeights &weights_;
    FlatCircuit fc_;
    /** Per input node: flat id (kUnitFlat for True-valued) and scope. */
    std::vector<uint32_t> flatId_;
    std::vector<std::vector<uint32_t>> scope_;
    /** Hash-consing slots. */
    std::vector<uint32_t> indicator_;
    std::vector<uint32_t> litNode_;
    std::vector<uint32_t> marginal_;
    uint32_t false_ = kInvalidNode;
    uint32_t unit_ = kInvalidNode;
    std::string error_;
};

} // namespace

FlatCircuit
flatFromDnnf(const DnnfGraph &graph, const LitWeights &weights)
{
    reasonAssert(weights.pos.size() >= graph.numVars() &&
                     weights.neg.size() >= graph.numVars(),
                 "weights must cover every variable");
    // Feed the builder exactly the node sequence toC2dFormat()
    // serializes — reachable nodes only, ascending, renumbered — so a
    // streamed round-trip through the `.nnf` text reproduces these
    // arrays byte for byte.
    std::vector<bool> reachable(graph.numNodes(), false);
    reachable[graph.root()] = true;
    for (size_t i = graph.numNodes(); i-- > 0;) {
        if (!reachable[i])
            continue;
        for (NnfId c : graph.node(NnfId(i)).children)
            reachable[c] = true;
    }

    WmcFlatBuilder builder(graph.numVars(), weights);
    std::vector<NnfId> renumber(graph.numNodes(), logic::kInvalidNnf);
    std::vector<NnfId> mapped;
    for (size_t i = 0; i < graph.numNodes(); ++i) {
        if (!reachable[i])
            continue;
        const NnfNode &node = graph.node(NnfId(i));
        mapped.clear();
        for (NnfId c : node.children)
            mapped.push_back(renumber[c]);
        bool ok = builder.addNode(node.type, node.lit, node.decisionVar,
                                  mapped);
        reasonAssert(ok, "flatFromDnnf: d-DNNF violates decomposability");
        renumber[i] = NnfId(builder.numNodes() - 1);
    }
    return builder.finish();
}

FlatCircuit
compileCnfFlat(const logic::CnfFormula &formula)
{
    return compileCnfFlat(formula,
                          LitWeights::uniform(formula.numVars()));
}

FlatCircuit
compileCnfFlat(const logic::CnfFormula &formula, const LitWeights &weights)
{
    return flatFromDnnf(logic::compileToDnnf(formula), weights);
}

bool
streamNnfToFlat(std::istream &in, const LitWeights &weights,
                FlatCircuit *out, logic::NnfError *err)
{
    *err = logic::NnfError{};
    logic::NnfStreamParser parser(in);
    const uint32_t num_vars = parser.header().numVars;
    if (weights.pos.size() < num_vars || weights.neg.size() < num_vars) {
        err->message = "weights cover " +
                       std::to_string(std::min(weights.pos.size(),
                                               weights.neg.size())) +
                       " variables but the header declares " +
                       std::to_string(num_vars);
        err->line = 1;
        return false;
    }

    WmcFlatBuilder builder(num_vars, weights);
    logic::NnfStreamParser::Node node;
    for (;;) {
        logic::NnfStreamParser::Status st = parser.next(&node);
        if (st == logic::NnfStreamParser::Status::Error) {
            *err = parser.error();
            return false;
        }
        if (st == logic::NnfStreamParser::Status::End)
            break;
        if (!builder.addNode(node.type, node.lit, node.decisionVar,
                             node.children)) {
            err->message = builder.error();
            err->line = parser.line();
            return false;
        }
    }
    *out = builder.finish();
    return true;
}

double
flatLogWmc(const FlatCircuit &flat)
{
    CircuitEvaluator eval(flat);
    Assignment x(flat.numVars, kMissing);
    return eval.logLikelihood(x);
}

} // namespace pc
} // namespace reason
