/**
 * @file
 * R2-Guard-style guardrail pipeline (Table I): an LLM proxy produces
 * per-category unsafety scores, a probabilistic circuit fuses them with
 * logical safety rules, and the decision is made on the REASON
 * co-processor through the Listing-1 programming interface with the
 * two-level GPU/REASON pipeline (Sec. VI).
 */

#include <cstdio>

#include "compiler/compile.h"
#include "core/pipeline.h"
#include "sys/reason_api.h"
#include "sys/system.h"
#include "util/rng.h"
#include "workloads/timing.h"
#include "workloads/workloads.h"

using namespace reason;

int
main()
{
    Rng rng(11);
    workloads::TaskBundle bundle = workloads::generate(
        workloads::DatasetId::TwinSafety, workloads::TaskScale::Small,
        11);

    // Optimize + compile the class-0 ("safe") circuit for REASON.
    pc::Circuit pruned(1, 2);
    std::vector<pc::NodeId> leaf_order;
    core::OptimizedKernel kernel = core::optimizeCircuit(
        bundle.pcs.classCircuits[0], bundle.pcs.calibration, {},
        &pruned, &leaf_order);

    arch::ArchConfig cfg;
    sys::ReasonRuntime runtime(
        cfg, compiler::compile(kernel.dag, cfg.compilerTarget()));

    // Stream query batches through the co-processor interface.
    const int batch_size = 8;
    int batches = 0;
    int flagged = 0;
    for (size_t q = 0; q + batch_size <= bundle.pcs.queries.size();
         q += batch_size) {
        std::vector<double> neural_buffer;
        for (int b = 0; b < batch_size; ++b) {
            auto inputs = core::circuitLeafInputs(
                pruned, leaf_order, bundle.pcs.queries[q + b]);
            neural_buffer.insert(neural_buffer.end(), inputs.begin(),
                                 inputs.end());
        }
        std::vector<double> symbolic(batch_size, 0.0);
        int mode = sys::REASON_MODE_PROBABILISTIC;
        runtime.REASON_execute(static_cast<int>(q), batch_size,
                               neural_buffer.data(), &mode,
                               symbolic.data());
        runtime.REASON_check_status(static_cast<int>(q),
                                    /*blocking=*/true);
        for (int b = 0; b < batch_size; ++b)
            flagged += symbolic[b] < 1e-9 ? 1 : 0;
        ++batches;
    }
    std::printf("processed %d batches of %d queries, %d flagged as "
                "out-of-distribution\n",
                batches, batch_size, flagged);
    std::printf("co-processor cycles: %llu\n",
                static_cast<unsigned long long>(runtime.totalCycles()));

    // End-to-end composition: neural on the host GPU, symbolic on
    // REASON, overlapped by the two-level pipeline.
    workloads::SymbolicOps ops =
        workloads::measureSymbolicOps(bundle, true);
    sys::StageCost sym =
        sys::symbolicCost(sys::Platform::ReasonAccel, ops);
    double flops = sys::neuralFlops(bundle, ops);
    sys::StageCost neu =
        sys::neuralCost(sys::Platform::ReasonAccel, flops);
    sys::EndToEnd overlapped =
        sys::pipelinedComposition(neu, sym, batches);
    sys::EndToEnd serial = sys::serialComposition(neu, sym, batches);
    std::printf("\nend-to-end (%d batches):\n", batches);
    std::printf("  pipelined GPU+REASON : %.3f ms\n",
                overlapped.totalSeconds * 1e3);
    std::printf("  serial CPU+GPU style : %.3f ms (%.2fx slower)\n",
                serial.totalSeconds * 1e3,
                serial.totalSeconds / overlapped.totalSeconds);
    std::printf("  guardrail AUPRC proxy: %.3f\n",
                workloads::taskMetric(bundle));
    return 0;
}
