#include "util/rng.h"

#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace reason {

namespace {

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

uint64_t
Rng::operator()()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    reasonAssert(lo <= hi, "uniformInt requires lo <= hi");
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<int64_t>((*this)());
    // Rejection sampling to avoid modulo bias.
    uint64_t limit = (~0ull / span) * span;
    uint64_t v;
    do {
        v = (*this)();
    } while (v >= limit);
    return lo + static_cast<int64_t>(v % span);
}

double
Rng::uniform01()
{
    return ((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniformReal(double lo, double hi)
{
    return lo + (hi - lo) * uniform01();
}

bool
Rng::bernoulli(double p)
{
    return uniform01() < p;
}

double
Rng::gaussian()
{
    if (hasSpareGaussian_) {
        hasSpareGaussian_ = false;
        return spareGaussian_;
    }
    double u, v, s;
    do {
        u = uniformReal(-1.0, 1.0);
        v = uniformReal(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    double factor = std::sqrt(-2.0 * std::log(s) / s);
    spareGaussian_ = v * factor;
    hasSpareGaussian_ = true;
    return u * factor;
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

double
Rng::exponential(double rate)
{
    reasonAssert(rate > 0.0, "exponential rate must be positive");
    return -std::log(1.0 - uniform01()) / rate;
}

size_t
Rng::categorical(const std::vector<double> &weights)
{
    reasonAssert(!weights.empty(), "categorical needs weights");
    double total = std::accumulate(weights.begin(), weights.end(), 0.0);
    reasonAssert(total > 0.0, "categorical weights must have positive sum");
    double target = uniform01() * total;
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (target < acc)
            return i;
    }
    return weights.size() - 1;
}

std::vector<double>
Rng::dirichlet(size_t size, double alpha)
{
    // Gamma(alpha, 1) draws normalized; use Marsaglia-Tsang for alpha >= 1
    // and the boost trick for alpha < 1.
    std::vector<double> draws(size);
    double sum = 0.0;
    for (size_t i = 0; i < size; ++i) {
        double a = alpha;
        double boost = 1.0;
        if (a < 1.0) {
            boost = std::pow(uniform01(), 1.0 / a);
            a += 1.0;
        }
        double d = a - 1.0 / 3.0;
        double c = 1.0 / std::sqrt(9.0 * d);
        double g;
        while (true) {
            double x = gaussian();
            double v = 1.0 + c * x;
            if (v <= 0.0)
                continue;
            v = v * v * v;
            double u = uniform01();
            if (u < 1.0 - 0.0331 * x * x * x * x ||
                std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
                g = d * v;
                break;
            }
        }
        draws[i] = g * boost;
        sum += draws[i];
    }
    if (sum <= 0.0)
        sum = 1.0;
    for (auto &d : draws)
        d /= sum;
    return draws;
}

std::vector<uint32_t>
Rng::permutation(size_t n)
{
    std::vector<uint32_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0u);
    shuffle(perm);
    return perm;
}

} // namespace reason
