#include "pc/io.h"

#include <cstdio>
#include <sstream>

#include "util/logging.h"

namespace reason {
namespace pc {

namespace {

/** Shortest round-trippable decimal form of a double. */
std::string
fmtDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

std::string
toText(const Circuit &circuit)
{
    std::ostringstream os;
    os << "rpc 1\n";
    os << "vars " << circuit.numVars() << " arity " << circuit.arity()
       << "\n";
    for (size_t i = 0; i < circuit.numNodes(); ++i) {
        const PcNode &node = circuit.node(NodeId(i));
        switch (node.type) {
          case PcNodeType::Leaf:
            os << "l " << node.var;
            for (double p : node.dist)
                os << " " << fmtDouble(p);
            os << "\n";
            break;
          case PcNodeType::Product:
            os << "p " << node.children.size();
            for (NodeId c : node.children)
                os << " " << c;
            os << "\n";
            break;
          case PcNodeType::Sum:
            os << "s " << node.children.size();
            for (size_t k = 0; k < node.children.size(); ++k)
                os << " " << node.children[k] << " "
                   << fmtDouble(node.weights[k]);
            os << "\n";
            break;
        }
    }
    os << "root " << circuit.root() << "\n";
    return os.str();
}

Circuit
parseText(const std::string &text)
{
    std::istringstream is(text);
    std::string tag;
    int version = 0;
    if (!(is >> tag >> version) || tag != "rpc" || version != 1)
        fatal("parseText: missing 'rpc 1' header");
    uint32_t num_vars = 0, arity = 0;
    std::string vars_tag, arity_tag;
    if (!(is >> vars_tag >> num_vars >> arity_tag >> arity) ||
        vars_tag != "vars" || arity_tag != "arity" || num_vars == 0 ||
        arity == 0)
        fatal("parseText: malformed dimension line");

    Circuit circuit(num_vars, arity);
    size_t count = 0;
    bool have_root = false;
    while (is >> tag) {
        if (tag == "root") {
            unsigned long long root;
            if (!(is >> root) || root >= count)
                fatal("parseText: bad root reference");
            circuit.markRoot(NodeId(root));
            have_root = true;
            break;
        }
        if (tag == "l") {
            uint32_t var;
            if (!(is >> var) || var >= num_vars)
                fatal("parseText: bad leaf variable at node %zu", count);
            std::vector<double> dist(arity);
            for (double &p : dist)
                if (!(is >> p) || p < 0.0)
                    fatal("parseText: bad leaf distribution at node %zu",
                          count);
            circuit.addLeaf(var, std::move(dist));
        } else if (tag == "p" || tag == "s") {
            bool sum = tag == "s";
            size_t k;
            if (!(is >> k) || k == 0)
                fatal("parseText: bad arity at node %zu", count);
            std::vector<NodeId> children(k);
            std::vector<double> weights(sum ? k : 0);
            for (size_t i = 0; i < k; ++i) {
                unsigned long long c;
                if (!(is >> c) || c >= count)
                    fatal("parseText: bad child reference at node %zu",
                          count);
                children[i] = NodeId(c);
                if (sum && (!(is >> weights[i]) || weights[i] < 0.0))
                    fatal("parseText: bad sum weight at node %zu", count);
            }
            if (sum)
                circuit.addSum(std::move(children), std::move(weights));
            else
                circuit.addProduct(std::move(children));
        } else {
            fatal("parseText: unknown node tag '%s'", tag.c_str());
        }
        ++count;
    }
    if (!have_root)
        fatal("parseText: missing root line");
    circuit.validate();
    return circuit;
}

} // namespace pc
} // namespace reason
