/**
 * @file
 * Shared test helper: random unified-DAG generation exercising every
 * node type, for compiler/accelerator equivalence sweeps.
 */

#ifndef REASON_TESTS_DAG_TEST_UTIL_H
#define REASON_TESTS_DAG_TEST_UTIL_H

#include <vector>

#include "core/dag.h"
#include "util/rng.h"

namespace reason {
namespace testutil {

/**
 * Random DAG over `num_inputs` external inputs with roughly
 * `num_ops` operation nodes of mixed type and fan-in 2..max_fanin.
 * Weighted sums and Not nodes are included so the affine-folding paths
 * of the compiler are exercised.
 */
inline core::Dag
randomDag(Rng &rng, uint32_t num_inputs, uint32_t num_ops,
          uint32_t max_fanin = 4, bool logical_only = false)
{
    core::Dag dag;
    std::vector<core::NodeId> pool;
    for (uint32_t i = 0; i < num_inputs; ++i)
        pool.push_back(dag.addInput());
    for (uint32_t i = 0; i < 2; ++i)
        pool.push_back(dag.addConst(rng.uniformReal(0.1, 0.9)));

    for (uint32_t i = 0; i < num_ops; ++i) {
        int kind = static_cast<int>(rng.uniformInt(0, logical_only ? 2 : 5));
        uint32_t fanin =
            static_cast<uint32_t>(rng.uniformInt(2, max_fanin));
        std::vector<core::NodeId> inputs;
        for (uint32_t k = 0; k < fanin; ++k)
            inputs.push_back(pool[static_cast<size_t>(
                rng.uniformInt(0, int64_t(pool.size()) - 1))]);
        core::NodeId id;
        if (logical_only) {
            switch (kind) {
              case 0:
                id = dag.addOp(core::DagOp::Max, std::move(inputs));
                break;
              case 1:
                id = dag.addOp(core::DagOp::Min, std::move(inputs));
                break;
              default:
                id = dag.addOp(core::DagOp::Not, {inputs[0]});
                break;
            }
        } else {
            switch (kind) {
              case 0:
                id = dag.addOp(core::DagOp::Sum, std::move(inputs));
                break;
              case 1: {
                std::vector<double> w;
                for (uint32_t k = 0; k < fanin; ++k)
                    w.push_back(rng.uniformReal(0.1, 2.0));
                id = dag.addOp(core::DagOp::Sum, std::move(inputs),
                               std::move(w));
                break;
              }
              case 2:
                id = dag.addOp(core::DagOp::Product,
                               std::move(inputs));
                break;
              case 3:
                id = dag.addOp(core::DagOp::Max, std::move(inputs));
                break;
              case 4:
                id = dag.addOp(core::DagOp::Min, std::move(inputs));
                break;
              default:
                id = dag.addOp(core::DagOp::Not, {inputs[0]});
                break;
            }
        }
        pool.push_back(id);
    }
    // Root: combine the last few values so most of the DAG stays live.
    std::vector<core::NodeId> finals(pool.end() - std::min<size_t>(
                                                      4, pool.size()),
                                     pool.end());
    core::NodeId root =
        finals.size() == 1
            ? finals[0]
            : dag.addOp(core::DagOp::Sum, std::move(finals));
    dag.markRoot(root);
    dag.validate();
    return dag;
}

/** Random input vector in a range that keeps products well-scaled. */
inline std::vector<double>
randomInputs(Rng &rng, uint32_t count, double lo = 0.1, double hi = 1.5)
{
    std::vector<double> v(count);
    for (auto &x : v)
        x = rng.uniformReal(lo, hi);
    return v;
}

} // namespace testutil
} // namespace reason

#endif // REASON_TESTS_DAG_TEST_UTIL_H
