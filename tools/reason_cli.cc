/**
 * @file
 * reason_cli — command-line front end to the REASON library.
 *
 * Subcommands:
 *
 *   solve <file.cnf> [--budget N] [--no-preprocess]
 *       Solve a DIMACS CNF with the CDCL solver (after the
 *       preprocessing pipeline), print the verdict, search statistics,
 *       and the REASON accelerator's estimated latency and energy for
 *       the same search.
 *
 *   count <file.cnf> [--nnf out.nnf]
 *       Exact model count via d-DNNF knowledge compilation; --nnf
 *       exports the compiled graph in the standard c2d format.
 *
 *   marginals <file.cnf> [--pc out.rpc]
 *       Compile the formula to a probabilistic circuit (uniform literal
 *       weights) and print per-variable conditional marginals
 *       P(x_v = 1 | formula) — the R2-Guard query pattern; --pc saves
 *       the circuit in rpc text form.
 *
 *   compile <file.cnf> [--disasm]
 *       Lower the formula through the unified-DAG pipeline to a VLIW
 *       program, report compile statistics and encoded size in both
 *       address modes, simulate one evaluation, and optionally print
 *       the disassembly.
 *
 *   fit <file.rpc> [--samples N] [--iters N] [--seed N] [--out f.rpc]
 *       Run sharded flow EM on a stored circuit against data sampled
 *       from it (a self-fit: the log-likelihood trace must be
 *       non-decreasing).  Exercises the --threads / --shards /
 *       --fast-reductions knobs end to end and reports the resolved
 *       shard count and per-iteration likelihoods.
 *
 *   serve <file.rpc> [--requests N] [--clients N] [--max-batch N]
 *         [--window-us N] [--serve-threads N] [--seed N]
 *       Serve likelihood queries against a stored circuit through the
 *       async batch-serving engine (sys::ReasonEngine): N client
 *       threads submit sampled queries through their own sessions, the
 *       engine coalesces them into batched SoA evaluations, and the
 *       run reports throughput, latency percentiles, and batch
 *       occupancy.
 *
 * Every subcommand accepts --help and parses its flags through one
 * shared option table, so flag handling and help output stay
 * consistent.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "arch/accelerator.h"
#include "arch/symbolic.h"
#include "compiler/compile.h"
#include "compiler/encoding.h"
#include "core/builders.h"
#include "energy/energy_model.h"
#include "logic/cnf.h"
#include "logic/knowledge.h"
#include "logic/nnf_io.h"
#include "logic/preprocess.h"
#include "logic/solver.h"
#include "pc/from_logic.h"
#include "pc/io.h"
#include "pc/learn.h"
#include "pc/queries.h"
#include "sys/engine.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/simd.h"

#ifndef REASON_BUILD_FLAGS
#define REASON_BUILD_FLAGS "unknown"
#endif
#ifndef REASON_BUILD_TYPE
#define REASON_BUILD_TYPE "unknown"
#endif

using namespace reason;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: reason_cli [--threads N] [--shards N]\n"
        "                  [--fast-reductions] <command> [args]\n"
        "  solve <file.cnf> [--budget N] [--no-preprocess]\n"
        "  count <file.cnf> [--nnf out.nnf]\n"
        "  marginals <file.cnf> [--pc out.rpc]\n"
        "  compile <file.cnf> [--disasm]\n"
        "  fit <file.rpc> [--samples N] [--iters N] [--seed N]\n"
        "      [--out f.rpc]\n"
        "  serve <file.rpc> [--requests N] [--clients N]\n"
        "      [--max-batch N] [--window-us N] [--serve-threads N]\n"
        "      [--seed N]\n"
        "  version          build, SIMD backend, and CPU features\n"
        "  <command> --help describes the command's options.\n"
        "--threads N sets the worker count of the flat evaluation\n"
        "engine (0 = hardware concurrency); results are identical for\n"
        "any thread count.\n"
        "--shards N sets the sample-shard count of learning reductions\n"
        "(EM flows, Baum-Welch; 0 = auto), and --fast-reductions trades\n"
        "the thread-count-independent fixed reduction shape for\n"
        "per-worker sharding.\n");
    return 2;
}

int
cmdVersion()
{
    std::printf("reason_cli (%s build)\n", REASON_BUILD_TYPE);
    std::printf("flags:        %s\n", REASON_BUILD_FLAGS);
    std::printf("simd backend: %s (%u-wide native lanes, 8-lane "
                "packs)\n",
                simd::isaName(), simd::nativeLanes());
    std::printf("cpu features: %s\n", simd::cpuFeatures());
    if (std::strcmp(simd::isaName(), "scalar") == 0)
        std::printf("note: scalar fallback build — results are "
                    "bit-identical to every SIMD backend\n");
    return 0;
}

/**
 * Parse a decimal count argument in [min_value, max_value]; returns
 * false (instead of throwing, like std::stoull) on garbage, overflow,
 * or out-of-range values so subcommands can fall back to usage().
 */
bool
parseCount(const std::string &text, uint64_t min_value,
           uint64_t max_value, uint64_t *out)
{
    if (text.empty())
        return false;
    uint64_t value = 0;
    for (char ch : text) {
        if (ch < '0' || ch > '9')
            return false;
        if (value > (max_value - (ch - '0')) / 10)
            return false; // overflow past max_value
        value = value * 10 + uint64_t(ch - '0');
    }
    if (value < min_value)
        return false;
    *out = value;
    return true;
}

// ---------------------------------------------------------------------------
// Shared subcommand option parser.
//
// Every subcommand used to hand-roll the same loop (match flag, check
// for a value, parseCount, fall back to usage()); the table below
// keeps the parsing, validation, and --help rendering in one place.
// ---------------------------------------------------------------------------

/** One subcommand option: a boolean flag, a counted value, or a path. */
struct CliOption
{
    enum class Kind : uint8_t { Flag, Count, Text };

    const char *name = nullptr;
    Kind kind = Kind::Flag;
    uint64_t minValue = 0;
    uint64_t maxValue = 0;
    bool *flagOut = nullptr;
    uint64_t *countOut = nullptr;
    std::string *textOut = nullptr;
    const char *help = "";
};

CliOption
flagOpt(const char *name, bool *out, const char *help)
{
    CliOption o;
    o.name = name;
    o.kind = CliOption::Kind::Flag;
    o.flagOut = out;
    o.help = help;
    return o;
}

CliOption
countOpt(const char *name, uint64_t min_value, uint64_t max_value,
         uint64_t *out, const char *help)
{
    CliOption o;
    o.name = name;
    o.kind = CliOption::Kind::Count;
    o.minValue = min_value;
    o.maxValue = max_value;
    o.countOut = out;
    o.help = help;
    return o;
}

CliOption
textOpt(const char *name, std::string *out, const char *help)
{
    CliOption o;
    o.name = name;
    o.kind = CliOption::Kind::Text;
    o.textOut = out;
    o.help = help;
    return o;
}

enum class ParseStatus { Ok, Error, Help };

void
printCommandHelp(const char *command, const char *positional,
                 const std::vector<CliOption> &options)
{
    std::fprintf(stderr, "usage: reason_cli %s %s", command, positional);
    for (const CliOption &o : options)
        std::fprintf(stderr, " [%s%s]", o.name,
                     o.kind == CliOption::Kind::Flag    ? ""
                     : o.kind == CliOption::Kind::Count ? " N"
                                                        : " <path>");
    std::fprintf(stderr, "\n");
    for (const CliOption &o : options)
        std::fprintf(stderr, "  %-16s %s\n", o.name, o.help);
}

/**
 * Parse args[first..] against the option table.  Unknown flags,
 * missing values, and out-of-range counts report the offending
 * argument and return Error.  (`--help` detection lives in
 * parseSubcommand, which pre-scans all arguments.)
 */
ParseStatus
parseCommandOptions(const char *command,
                    const std::vector<std::string> &args, size_t first,
                    const std::vector<CliOption> &options)
{
    // --help/-h is handled by parseSubcommand's pre-scan (it must work
    // even in place of the positional argument), not here.
    for (size_t i = first; i < args.size(); ++i) {
        const CliOption *match = nullptr;
        for (const CliOption &o : options)
            if (args[i] == o.name) {
                match = &o;
                break;
            }
        if (match == nullptr) {
            std::fprintf(stderr, "reason_cli %s: unknown option '%s'\n",
                         command, args[i].c_str());
            return ParseStatus::Error;
        }
        if (match->kind == CliOption::Kind::Flag) {
            *match->flagOut = true;
            continue;
        }
        if (i + 1 >= args.size()) {
            std::fprintf(stderr,
                         "reason_cli %s: option '%s' needs a value\n",
                         command, match->name);
            return ParseStatus::Error;
        }
        const std::string &value = args[++i];
        if (match->kind == CliOption::Kind::Text) {
            *match->textOut = value;
            continue;
        }
        if (!parseCount(value, match->minValue, match->maxValue,
                        match->countOut)) {
            std::fprintf(stderr,
                         "reason_cli %s: bad value '%s' for '%s'\n",
                         command, value.c_str(), match->name);
            return ParseStatus::Error;
        }
    }
    return ParseStatus::Ok;
}

/**
 * Common subcommand prologue: `--help` anywhere prints the synopsis; a
 * missing positional argument is an error.  Returns Ok when parsing
 * may proceed.
 */
ParseStatus
parseSubcommand(const char *command, const char *positional,
                const std::vector<std::string> &args,
                const std::vector<CliOption> &options)
{
    for (const std::string &a : args)
        if (a == "--help" || a == "-h") {
            printCommandHelp(command, positional, options);
            return ParseStatus::Help;
        }
    if (args.empty())
        return ParseStatus::Error;
    return parseCommandOptions(command, args, 1, options);
}

logic::CnfFormula
loadDimacs(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    std::ostringstream text;
    text << in.rdbuf();
    return logic::CnfFormula::parseDimacs(text.str());
}

pc::Circuit
loadCircuit(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    std::ostringstream text;
    text << in.rdbuf();
    return pc::parseText(text.str());
}

int
cmdSolve(const std::vector<std::string> &args)
{
    uint64_t budget = 0;
    bool no_preprocess = false;
    const std::vector<CliOption> options = {
        countOpt("--budget", 0, ~uint64_t(0), &budget,
                 "conflict budget (0 = unlimited)"),
        flagOpt("--no-preprocess", &no_preprocess,
                "skip the preprocessing pipeline"),
    };
    switch (parseSubcommand("solve", "<file.cnf>", args, options)) {
      case ParseStatus::Help: return 0;
      case ParseStatus::Error: return usage();
      case ParseStatus::Ok: break;
    }
    const bool preprocess = !no_preprocess;

    logic::CnfFormula f = loadDimacs(args[0]);
    std::printf("instance: %u vars, %zu clauses, %zu literals\n",
                f.numVars(), f.numClauses(), f.numLiterals());

    logic::Preprocessor pre(f);
    logic::CnfFormula simplified = f;
    if (preprocess) {
        pre.run();
        simplified = pre.simplified();
        const auto &ps = pre.stats();
        std::printf("preprocess: %zu -> %zu clauses (units %llu, pures "
                    "%llu, subsumed %llu, strengthened %llu, failed "
                    "lits %llu, BVE vars %llu)\n",
                    ps.clausesBefore, ps.clausesAfter,
                    (unsigned long long)ps.unitsFixed,
                    (unsigned long long)ps.pureLiteralsFixed,
                    (unsigned long long)ps.subsumedClauses,
                    (unsigned long long)ps.strengthenedClauses,
                    (unsigned long long)ps.failedLiterals,
                    (unsigned long long)ps.eliminatedVars);
        if (pre.knownUnsat()) {
            std::printf("result: UNSAT (by preprocessing)\n");
            return 20;
        }
    }

    logic::SolverConfig cfg;
    cfg.conflictBudget = budget;
    logic::CdclSolver solver(simplified, cfg);
    logic::SolveResult res = solver.solve();
    const auto &st = solver.stats();
    std::printf("result: %s\n",
                res == logic::SolveResult::Sat     ? "SAT"
                : res == logic::SolveResult::Unsat ? "UNSAT"
                                                   : "UNKNOWN (budget)");
    std::printf("search: %llu decisions, %llu propagations, %llu "
                "conflicts, %llu learned clauses, %llu restarts\n",
                (unsigned long long)st.decisions,
                (unsigned long long)st.propagations,
                (unsigned long long)st.conflicts,
                (unsigned long long)st.learnedClauses,
                (unsigned long long)st.restarts);

    if (res == logic::SolveResult::Sat) {
        std::vector<bool> model = solver.model();
        if (preprocess)
            model = pre.reconstructModel(model);
        if (!f.evaluate(model))
            panic("model fails to satisfy the original formula");
        std::printf("model verified against the original formula\n");
    }

    // What would this search cost on the accelerator?
    arch::ArchConfig acfg;
    size_t db_bytes = simplified.numLiterals() * 8;
    uint64_t cycles = arch::estimateCdclCycles(st, db_bytes, acfg);
    double seconds = double(cycles) * acfg.cycleSeconds();
    StatGroup ev;
    ev.inc("agg_decisions", st.decisions);
    ev.inc("agg_propagations", st.propagations);
    ev.inc("agg_literal_visits", st.literalVisits);
    ev.inc("cycles", cycles);
    energy::EnergyModel em;
    double joules =
        em.dynamicEnergyJoules(ev) + em.staticWatts() * seconds;
    std::printf("REASON estimate: %llu cycles (%.3f ms @ %.1f GHz), "
                "%.3f mJ\n",
                (unsigned long long)cycles, seconds * 1e3, acfg.clockGhz,
                joules * 1e3);
    return res == logic::SolveResult::Sat ? 10
           : res == logic::SolveResult::Unsat ? 20
                                              : 0;
}

int
cmdCount(const std::vector<std::string> &args)
{
    std::string nnf_path;
    const std::vector<CliOption> options = {
        textOpt("--nnf", &nnf_path, "export the d-DNNF in c2d format"),
    };
    switch (parseSubcommand("count", "<file.cnf>", args, options)) {
      case ParseStatus::Help: return 0;
      case ParseStatus::Error: return usage();
      case ParseStatus::Ok: break;
    }
    logic::CnfFormula f = loadDimacs(args[0]);
    logic::DnnfGraph g = logic::compileToDnnf(f);
    const auto &st = g.stats();
    std::printf("d-DNNF: %zu nodes, %zu edges (%llu decisions, %llu "
                "cache hits, %llu component splits)\n",
                g.numNodes(), g.numEdges(),
                (unsigned long long)st.decisions,
                (unsigned long long)st.cacheHits,
                (unsigned long long)st.componentSplits);
    std::printf("models: %.0f of 2^%u assignments\n", g.modelCount(),
                f.numVars());
    if (!nnf_path.empty()) {
        std::ofstream out(nnf_path);
        if (!out)
            fatal("cannot write '%s'", nnf_path.c_str());
        out << logic::toC2dFormat(g);
        std::printf("wrote c2d NNF to %s\n", nnf_path.c_str());
    }
    return 0;
}

int
cmdMarginals(const std::vector<std::string> &args)
{
    std::string pc_path;
    const std::vector<CliOption> options = {
        textOpt("--pc", &pc_path, "save the circuit in rpc text form"),
    };
    switch (parseSubcommand("marginals", "<file.cnf>", args, options)) {
      case ParseStatus::Help: return 0;
      case ParseStatus::Error: return usage();
      case ParseStatus::Ok: break;
    }
    logic::CnfFormula f = loadDimacs(args[0]);
    logic::DnnfGraph g = logic::compileToDnnf(f);
    if (g.modelCount() <= 0.0) {
        std::printf("formula is unsatisfiable; no conditional "
                    "distribution exists\n");
        return 20;
    }
    pc::Circuit circuit =
        pc::fromDnnf(g, logic::LitWeights::uniform(f.numVars()));
    std::printf("circuit: %zu nodes, %zu edges (smooth & decomposable)\n",
                circuit.numNodes(), circuit.numEdges());

    pc::Assignment no_evidence(f.numVars(), pc::kMissing);
    pc::MarginalTable table =
        pc::posteriorMarginals(circuit, no_evidence);
    for (uint32_t v = 0; v < f.numVars(); ++v)
        std::printf("  P(x%-3u = 1 | phi) = %.6f\n", v + 1,
                    table.prob[v][1]);
    if (!pc_path.empty()) {
        std::ofstream out(pc_path);
        if (!out)
            fatal("cannot write '%s'", pc_path.c_str());
        out << pc::toText(circuit);
        std::printf("wrote circuit to %s\n", pc_path.c_str());
    }
    return 0;
}

int
cmdCompile(const std::vector<std::string> &args)
{
    bool disasm = false;
    const std::vector<CliOption> options = {
        flagOpt("--disasm", &disasm, "print the program disassembly"),
    };
    switch (parseSubcommand("compile", "<file.cnf>", args, options)) {
      case ParseStatus::Help: return 0;
      case ParseStatus::Error: return usage();
      case ParseStatus::Ok: break;
    }

    logic::CnfFormula f = loadDimacs(args[0]);
    core::Dag dag = core::buildFromCnf(f);
    std::printf("unified DAG: %zu nodes, %zu edges\n", dag.numNodes(),
                dag.numEdges());

    arch::ArchConfig acfg;
    compiler::Program program =
        compiler::compile(dag, acfg.compilerTarget());
    std::printf("program: %zu blocks, %zu issue slots, leaf "
                "utilization %.0f%%\n",
                program.stats.numBlocks, program.schedule.size(),
                program.stats.avgLeafUtilization * 100.0);

    auto expl =
        compiler::encodeProgram(program, compiler::AddressMode::Explicit);
    auto autom =
        compiler::encodeProgram(program, compiler::AddressMode::Auto);
    std::printf("encoded size: %.2f KB explicit, %.2f KB auto-address "
                "(instruction-stream saving %.1f%%)\n",
                expl.kilobytes(), autom.kilobytes(),
                compiler::autoAddressSaving(program) * 100.0);

    // Evaluate the all-true assignment on the fabric.
    std::vector<double> inputs(dag.numInputs(), 1.0);
    arch::Accelerator accel(acfg);
    auto result = accel.run(program, inputs);
    std::printf("simulated: root=%g (formula %s under all-true), %llu "
                "cycles, PE utilization %.1f%%\n",
                result.rootValue,
                result.rootValue > 0.5 ? "satisfied" : "falsified",
                (unsigned long long)result.cycles,
                result.peUtilization * 100.0);

    if (disasm)
        std::fputs(compiler::disassemble(program).c_str(), stdout);
    return 0;
}

int
cmdFit(const std::vector<std::string> &args)
{
    uint64_t samples = 2000;
    uint64_t iters = 10;
    uint64_t seed = 1;
    std::string out_path;
    const std::vector<CliOption> options = {
        countOpt("--samples", 1, uint64_t(1) << 30, &samples,
                 "training samples drawn from the circuit"),
        countOpt("--iters", 1, 1u << 20, &iters,
                 "maximum EM iterations"),
        countOpt("--seed", 0, ~uint64_t(0), &seed, "sampling RNG seed"),
        textOpt("--out", &out_path, "write the fitted circuit here"),
    };
    switch (parseSubcommand("fit", "<file.rpc>", args, options)) {
      case ParseStatus::Help: return 0;
      case ParseStatus::Error: return usage();
      case ParseStatus::Ok: break;
    }

    pc::Circuit circuit = loadCircuit(args[0]);
    std::printf("circuit: %zu nodes, %zu edges, %u vars\n",
                circuit.numNodes(), circuit.numEdges(),
                circuit.numVars());

    Rng rng(seed);
    std::vector<pc::Assignment> data =
        pc::sampleDataset(rng, circuit, size_t(samples));
    pc::EmOptions opts; // inherits --shards / --fast-reductions
    opts.maxIterations = uint32_t(iters);
    const unsigned shards = util::resolveShardCount(
        opts.shards, opts.deterministic, data.size(),
        util::globalThreads());
    std::printf("fit: %zu samples, <=%u iterations, %u worker(s), "
                "%u shard(s), %s reductions\n",
                data.size(), opts.maxIterations, util::globalThreads(),
                shards,
                opts.deterministic ? "deterministic" : "fast");

    pc::EmTrace trace = pc::emTrain(circuit, data, opts);
    for (size_t i = 0; i < trace.logLikelihood.size(); ++i)
        std::printf("  iter %2zu: mean LL %.9f\n", i,
                    trace.logLikelihood[i]);
    double gain = trace.logLikelihood.back() - trace.logLikelihood[0];
    std::printf("converged after %u iteration(s), LL gain %.3e\n",
                trace.iterations, gain);
    if (gain < 0.0)
        // EM with Laplace smoothing is monotone in the *smoothed*
        // objective; at small sample counts the pseudo-counts can
        // legitimately pull the raw data LL down.
        std::printf("note: negative gain — smoothing pseudo-counts "
                    "(%.3g per count) dominate at this sample size\n",
                    opts.smoothing);

    if (!out_path.empty()) {
        std::ofstream out(out_path);
        if (!out)
            fatal("cannot write '%s'", out_path.c_str());
        out << pc::toText(circuit);
        std::printf("wrote fitted circuit to %s\n", out_path.c_str());
    }
    return 0;
}

int
cmdServe(const std::vector<std::string> &args)
{
    uint64_t requests = 2000;
    uint64_t clients = 2;
    uint64_t max_batch = 64;
    uint64_t window_us = 0;
    uint64_t serve_threads = 1;
    uint64_t seed = 1;
    const std::vector<CliOption> options = {
        countOpt("--requests", 1, uint64_t(1) << 30, &requests,
                 "total queries submitted across clients"),
        countOpt("--clients", 1, 256, &clients,
                 "client threads, one engine session each"),
        countOpt("--max-batch", 1, 1u << 20, &max_batch,
                 "most rows per coalesced evaluation"),
        countOpt("--window-us", 0, 1u << 30, &window_us,
                 "linger for same-key late arrivals (microseconds)"),
        countOpt("--serve-threads", 0, util::kMaxThreads,
                 &serve_threads,
                 "engine evaluation pool workers (0 = hardware)"),
        countOpt("--seed", 0, ~uint64_t(0), &seed,
                 "query sampling RNG seed"),
    };
    switch (parseSubcommand("serve", "<file.rpc>", args, options)) {
      case ParseStatus::Help: return 0;
      case ParseStatus::Error: return usage();
      case ParseStatus::Ok: break;
    }

    pc::Circuit circuit = loadCircuit(args[0]);
    std::printf("circuit: %zu nodes, %zu edges, %u vars\n",
                circuit.numNodes(), circuit.numEdges(),
                circuit.numVars());

    Rng rng(seed);
    std::vector<pc::Assignment> queries =
        pc::sampleDataset(rng, circuit, size_t(requests));

    sys::ServeOptions serve;
    serve.maxBatch = unsigned(max_batch);
    serve.maxCoalesceWindowUs = unsigned(window_us);
    serve.serveThreads = unsigned(serve_threads);
    sys::ReasonEngine engine(serve);

    std::vector<sys::Session> sessions;
    for (uint64_t c = 0; c < clients; ++c)
        sessions.push_back(engine.createSession(circuit));

    std::printf("serve: %zu requests, %llu client(s), maxBatch %llu, "
                "window %llu us, %llu eval worker(s)\n",
                queries.size(), (unsigned long long)clients,
                (unsigned long long)max_batch,
                (unsigned long long)window_us,
                (unsigned long long)serve_threads);

    // Each client submits its slice asynchronously, then waits — the
    // backlog is what the engine coalesces across sessions.
    std::vector<std::vector<uint64_t>> latencies(clients);
    std::vector<std::vector<double>> lls(clients);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    for (uint64_t c = 0; c < clients; ++c) {
        workers.emplace_back([&, c] {
            sys::Session &session = sessions[c];
            std::vector<sys::RequestHandle> handles;
            for (size_t q = c; q < queries.size(); q += clients)
                handles.push_back(session.submit(queries[q]));
            for (sys::RequestHandle &h : handles) {
                std::shared_ptr<const sys::Request> r = session.wait(h);
                if (r->error != sys::REASON_OK)
                    fatal("request %llu failed with error %d",
                          (unsigned long long)h.id(), r->error);
                latencies[c].push_back(r->latencyNs());
                lls[c].push_back(r->outputs[0]);
            }
        });
    }
    for (std::thread &w : workers)
        w.join();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();

    std::vector<uint64_t> all_lat;
    double ll_sum = 0.0;
    for (uint64_t c = 0; c < clients; ++c) {
        all_lat.insert(all_lat.end(), latencies[c].begin(),
                       latencies[c].end());
        for (double ll : lls[c])
            ll_sum += ll;
    }
    std::sort(all_lat.begin(), all_lat.end());
    auto percentile = [&](double p) {
        const size_t idx = std::min(
            all_lat.size() - 1,
            size_t(p * double(all_lat.size())));
        return double(all_lat[idx]) * 1e-6;
    };

    const sys::EngineStats stats = engine.stats();
    std::printf("served %zu requests in %.3f ms: %.1f req/s\n",
                queries.size(), wall_ms,
                double(queries.size()) / (wall_ms * 1e-3));
    std::printf("latency: p50 %.3f ms, p99 %.3f ms, mean %.3f ms\n",
                percentile(0.50), percentile(0.99),
                stats.meanLatencyMs);
    std::printf("batching: %llu batches, mean occupancy %.2f rows, "
                "max queue depth %llu\n",
                (unsigned long long)stats.batches,
                stats.meanBatchOccupancy,
                (unsigned long long)stats.maxQueueDepth);
    std::printf("mean served log-likelihood: %.9f\n",
                ll_sum / double(queries.size()));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> all(argv + 1, argv + argc);
    // Global flags precede the subcommand.
    size_t at = 0;
    util::ReductionPolicy reductions = util::reductionPolicy();
    while (at < all.size() && all[at].rfind("--", 0) == 0) {
        unsigned threads = 0;
        if (all[at] == "--version") {
            return cmdVersion();
        } else if (all[at] == "--threads" && at + 1 < all.size() &&
            util::parseThreadCount(all[at + 1].c_str(), &threads)) {
            util::setGlobalThreads(threads);
            at += 2;
        } else if (all[at] == "--shards" && at + 1 < all.size()) {
            // Shard counts are clamped to the dataset size downstream,
            // so unlike --threads they are not bounded by kMaxThreads.
            uint64_t shards = 0;
            if (!parseCount(all[at + 1], 0, uint64_t(1) << 30, &shards))
                return usage();
            reductions.shards = unsigned(shards);
            at += 2;
        } else if (all[at] == "--fast-reductions") {
            reductions.deterministic = false;
            at += 1;
        } else {
            return usage();
        }
    }
    util::setReductionPolicy(reductions);
    if (at >= all.size())
        return usage();
    std::string cmd = all[at];
    std::vector<std::string> args(all.begin() + at + 1, all.end());
    if (cmd == "version")
        return cmdVersion();
    if (cmd == "solve")
        return cmdSolve(args);
    if (cmd == "count")
        return cmdCount(args);
    if (cmd == "marginals")
        return cmdMarginals(args);
    if (cmd == "compile")
        return cmdCompile(args);
    if (cmd == "fit")
        return cmdFit(args);
    if (cmd == "serve")
        return cmdServe(args);
    return usage();
}
