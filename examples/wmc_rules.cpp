/**
 * @file
 * Knowledge-compiled guardrail: the R2-Guard construction end to end.
 *
 * A small safety knowledge base is written as propositional rules over
 * risk indicators (the outputs a neural classifier would produce), the
 * rules are compiled CNF -> d-DNNF -> probabilistic circuit, and the
 * guardrail then answers posterior-risk queries by circuit marginals —
 * exactly the probabilistic logical reasoning REASON accelerates.
 * Finally the circuit is lowered through the unified-DAG pipeline onto
 * the simulated fabric to show the accelerated query path.
 */

#include <cmath>
#include <cstdio>

#include "arch/accelerator.h"
#include "compiler/compile.h"
#include "core/builders.h"
#include "logic/knowledge.h"
#include "pc/from_logic.h"
#include "pc/queries.h"

using namespace reason;

namespace {

// Variable roles in the safety knowledge base.
enum Var : int64_t
{
    kJailbreak = 1,  // prompt matches a jailbreak template
    kViolence = 2,   // violent content detected
    kSelfHarm = 3,   // self-harm content detected
    kRoleplay = 4,   // adversarial roleplay framing
    kUnsafe = 5,     // verdict: response must be blocked
    kEscalate = 6,   // verdict: route to human review
};

} // namespace

int
main()
{
    // Rules (implications p -> q are clauses ~p | q):
    logic::CnfFormula rules(6);
    rules.addClause({-kJailbreak, kUnsafe});      // jailbreak => unsafe
    rules.addClause({-kViolence, kUnsafe});       // violence  => unsafe
    rules.addClause({-kSelfHarm, kEscalate});     // self-harm => escalate
    rules.addClause({-kSelfHarm, kUnsafe});       // self-harm => unsafe
    rules.addClause({-kRoleplay, -kJailbreak, kEscalate});
    rules.addClause({-kUnsafe, kJailbreak, kViolence, kSelfHarm});
    // unsafe only with a cause  ^
    rules.addClause({-kEscalate, kUnsafe});       // escalation is unsafe

    // Prior beliefs over the indicator variables = neural confidences.
    logic::LitWeights prior = logic::LitWeights::uniform(6);
    auto setPrior = [&](int64_t var, double p) {
        prior.pos[var - 1] = p;
        prior.neg[var - 1] = 1.0 - p;
    };
    setPrior(kJailbreak, 0.15);
    setPrior(kViolence, 0.05);
    setPrior(kSelfHarm, 0.02);
    setPrior(kRoleplay, 0.30);

    // Compile the knowledge base once, offline.
    logic::DnnfGraph dnnf = logic::compileToDnnf(rules);
    std::printf("knowledge base: %zu clauses -> d-DNNF with %zu nodes "
                "(%0.f consistent worlds)\n",
                rules.numClauses(), dnnf.numNodes(), dnnf.modelCount());

    pc::Circuit guard = pc::fromDnnf(dnnf, prior);
    std::printf("guard circuit: %zu nodes, %zu edges, smooth=%s\n\n",
                guard.numNodes(), guard.numEdges(),
                guard.isSmoothAndDecomposable() ? "yes" : "no");

    // Query 1: prior probability the verdict is "unsafe".
    pc::Assignment none(6, pc::kMissing);
    pc::MarginalTable prior_marginals = pc::posteriorMarginals(guard,
                                                               none);
    std::printf("P(unsafe)                        = %.4f\n",
                prior_marginals.prob[kUnsafe - 1][1]);

    // Query 2: posterior after the neural stage flags a jailbreak.
    pc::Assignment evidence(6, pc::kMissing);
    evidence[kJailbreak - 1] = 1;
    pc::MarginalTable posterior = pc::posteriorMarginals(guard, evidence);
    std::printf("P(unsafe   | jailbreak observed) = %.4f\n",
                posterior.prob[kUnsafe - 1][1]);
    std::printf("P(escalate | jailbreak observed) = %.4f\n",
                posterior.prob[kEscalate - 1][1]);

    // Query 3: conditional — does roleplay alone force escalation?
    pc::Assignment roleplay(6, pc::kMissing), escalate(6, pc::kMissing);
    roleplay[kRoleplay - 1] = 1;
    escalate[kEscalate - 1] = 1;
    double p = std::exp(
        pc::conditionalLogProbability(guard, escalate, roleplay));
    std::printf("P(escalate | roleplay observed)  = %.4f\n\n", p);

    // Accelerated path: lower the guard circuit onto the fabric and run
    // the jailbreak query there.
    std::vector<pc::NodeId> leaf_order;
    core::Dag dag = core::buildFromCircuit(guard, &leaf_order);
    arch::ArchConfig cfg;
    compiler::Program program =
        compiler::compile(dag, cfg.compilerTarget());
    arch::Accelerator accel(cfg);

    auto inputs = core::circuitLeafInputs(guard, leaf_order, evidence);
    arch::ExecutionResult run = accel.run(program, inputs);
    double reference = std::exp(guard.logLikelihood(evidence));
    std::printf("fabric query: P(jailbreak evidence) = %.6g "
                "(software %.6g) in %llu cycles\n",
                run.rootValue, reference,
                (unsigned long long)run.cycles);
    std::printf("agreement: %s\n",
                std::fabs(run.rootValue - reference) < 1e-9 ? "exact"
                                                            : "MISMATCH");
    return 0;
}
