/**
 * @file
 * Tests for knowledge compilation: CNF -> d-DNNF structure, exact model
 * counting against brute force, weighted model counting against
 * enumeration, conditional marginals, and the d-DNNF -> probabilistic
 * circuit conversion (R2-Guard path), all on random instance sweeps.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "logic/cnf.h"
#include "logic/knowledge.h"
#include "pc/from_logic.h"
#include "util/numeric.h"
#include "util/rng.h"

using namespace reason;
using namespace reason::logic;

namespace {

/** Brute-force WMC by enumerating all assignments. */
double
bruteForceWmc(const CnfFormula &f, const LitWeights &w)
{
    uint32_t n = f.numVars();
    double total = 0.0;
    for (uint64_t bits = 0; bits < (uint64_t(1) << n); ++bits) {
        std::vector<bool> x(n);
        double weight = 1.0;
        for (uint32_t v = 0; v < n; ++v) {
            x[v] = (bits >> v) & 1;
            weight *= x[v] ? w.pos[v] : w.neg[v];
        }
        if (f.evaluate(x))
            total += weight;
    }
    return total;
}

} // namespace

TEST(Dnnf, TrivialFormulas)
{
    // No clauses: every assignment is a model.
    CnfFormula empty(3);
    DnnfGraph g = compileToDnnf(empty);
    g.validate();
    EXPECT_DOUBLE_EQ(g.modelCount(), 8.0);

    // Single unit clause: half the assignments.
    CnfFormula unit(3);
    unit.addClause({1});
    EXPECT_DOUBLE_EQ(compileToDnnf(unit).modelCount(), 4.0);

    // Contradiction.
    CnfFormula contra(2);
    contra.addClause({1});
    contra.addClause({-1});
    EXPECT_DOUBLE_EQ(compileToDnnf(contra).modelCount(), 0.0);
}

TEST(Dnnf, XorChainCount)
{
    // (x0 xor x1) as CNF: (x0 | x1) & (~x0 | ~x1) -> 2 models.
    CnfFormula f(2);
    f.addClause({1, 2});
    f.addClause({-1, -2});
    DnnfGraph g = compileToDnnf(f);
    g.validate();
    EXPECT_DOUBLE_EQ(g.modelCount(), 2.0);
}

TEST(Dnnf, ComponentDecompositionFires)
{
    // Two independent constraints over disjoint variables.
    CnfFormula f(4);
    f.addClause({1, 2});
    f.addClause({3, 4});
    DnnfGraph g = compileToDnnf(f);
    g.validate();
    EXPECT_DOUBLE_EQ(g.modelCount(), 9.0); // 3 * 3
    EXPECT_GE(g.stats().componentSplits, 1u);
}

TEST(Dnnf, CacheHitsOnRepeatedStructure)
{
    // A chain formula where subproblems recur under both branch phases.
    CnfFormula f(8);
    for (int i = 1; i <= 6; ++i)
        f.addClause({i, i + 1, i + 2});
    DnnfGraph g = compileToDnnf(f);
    EXPECT_GT(g.stats().cacheHits, 0u);
    EXPECT_DOUBLE_EQ(g.modelCount(),
                     double(f.bruteForceCountModels()));
}

TEST(Dnnf, IsModelAgreesWithEvaluate)
{
    Rng rng(11);
    CnfFormula f = randomKSat(rng, 10, 28, 3);
    DnnfGraph g = compileToDnnf(f);
    g.validate();
    for (uint64_t bits = 0; bits < (1u << 10); ++bits) {
        std::vector<bool> x(10);
        for (uint32_t v = 0; v < 10; ++v)
            x[v] = (bits >> v) & 1;
        EXPECT_EQ(g.isModel(x), f.evaluate(x));
    }
}

struct DnnfSweepParam
{
    uint32_t vars;
    uint32_t clauses;
    uint32_t k;
    uint64_t seed;
};

class DnnfSweep : public ::testing::TestWithParam<DnnfSweepParam>
{
};

TEST_P(DnnfSweep, ModelCountMatchesBruteForce)
{
    auto p = GetParam();
    Rng rng(p.seed);
    CnfFormula f = randomKSat(rng, p.vars, p.clauses, p.k);
    DnnfGraph g = compileToDnnf(f);
    g.validate();
    EXPECT_DOUBLE_EQ(g.modelCount(), double(f.bruteForceCountModels()));
}

TEST_P(DnnfSweep, WmcMatchesEnumeration)
{
    auto p = GetParam();
    Rng rng(p.seed + 1000);
    CnfFormula f = randomKSat(rng, p.vars, p.clauses, p.k);
    LitWeights w = LitWeights::random(rng, p.vars);
    DnnfGraph g = compileToDnnf(f);
    double expected = bruteForceWmc(f, w);
    EXPECT_NEAR(g.wmc(w), expected, 1e-9 * std::max(1.0, expected));
}

TEST_P(DnnfSweep, IndicatorWeightsDetectModels)
{
    auto p = GetParam();
    Rng rng(p.seed + 2000);
    CnfFormula f = randomKSat(rng, p.vars, p.clauses, p.k);
    DnnfGraph g = compileToDnnf(f);
    for (int trial = 0; trial < 8; ++trial) {
        std::vector<bool> x(p.vars);
        for (uint32_t v = 0; v < p.vars; ++v)
            x[v] = rng.bernoulli(0.5);
        double wmc = g.wmc(LitWeights::indicator(x));
        EXPECT_DOUBLE_EQ(wmc, f.evaluate(x) ? 1.0 : 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DnnfSweep,
    ::testing::Values(DnnfSweepParam{6, 10, 2, 1},
                      DnnfSweepParam{8, 20, 3, 2},
                      DnnfSweepParam{10, 30, 3, 3},
                      DnnfSweepParam{12, 40, 3, 4},
                      DnnfSweepParam{12, 55, 3, 5}, // near-critical ratio
                      DnnfSweepParam{14, 40, 4, 6},
                      DnnfSweepParam{16, 56, 3, 7},
                      DnnfSweepParam{10, 60, 3, 8}, // oversatisfied: UNSAT
                      DnnfSweepParam{18, 50, 5, 9},
                      DnnfSweepParam{20, 60, 3, 10}));

TEST(Dnnf, ConditionalMarginalMatchesEnumeration)
{
    Rng rng(31);
    CnfFormula f = plantedKSat(rng, 10, 25, 3);
    LitWeights w = LitWeights::random(rng, 10);
    double z = bruteForceWmc(f, w);
    ASSERT_GT(z, 0.0);
    for (uint32_t var = 0; var < 10; ++var) {
        // Enumerate P(var = true | f).
        CnfFormula g = f;
        g.addClause({int64_t(var) + 1});
        double expected = bruteForceWmc(g, w) / z;
        EXPECT_NEAR(conditionalMarginal(f, w, var), expected, 1e-9);
    }
}

TEST(Dnnf, ConditionalMarginalOfUnsatIsMinusOne)
{
    CnfFormula f(2);
    f.addClause({1});
    f.addClause({-1});
    EXPECT_EQ(conditionalMarginal(f, LitWeights::uniform(2), 0), -1.0);
}

TEST(Dnnf, PigeonholeIsUnsat)
{
    DnnfGraph g = compileToDnnf(pigeonhole(3));
    EXPECT_DOUBLE_EQ(g.modelCount(), 0.0);
}

// ---------------------------------------------------------------------------
// d-DNNF -> probabilistic circuit (pc/from_logic)
// ---------------------------------------------------------------------------

TEST(CnfToCircuit, CircuitIsSmoothAndDecomposable)
{
    Rng rng(41);
    CnfFormula f = plantedKSat(rng, 9, 22, 3);
    pc::Circuit c = pc::compileCnf(f);
    EXPECT_TRUE(c.isSmoothAndDecomposable());
}

TEST(CnfToCircuit, LikelihoodIsNormalizedConditionedWeight)
{
    Rng rng(42);
    for (int trial = 0; trial < 6; ++trial) {
        CnfFormula f = plantedKSat(rng, 8, 18, 3);
        LitWeights w = LitWeights::random(rng, 8);
        double z = bruteForceWmc(f, w);
        ASSERT_GT(z, 0.0);
        pc::Circuit c = pc::compileCnf(f, w);
        for (uint64_t bits = 0; bits < (1u << 8); ++bits) {
            std::vector<bool> x(8);
            pc::Assignment a(8);
            double weight = 1.0;
            for (uint32_t v = 0; v < 8; ++v) {
                x[v] = (bits >> v) & 1;
                a[v] = x[v] ? 1 : 0;
                weight *= x[v] ? w.pos[v] : w.neg[v];
            }
            double expected = f.evaluate(x) ? weight / z : 0.0;
            double got = std::exp(c.logLikelihood(a));
            if (expected == 0.0)
                EXPECT_LT(got, 1e-12);
            else
                EXPECT_NEAR(got, expected, 1e-9 * expected);
        }
    }
}

TEST(CnfToCircuit, MarginalsAgreeWithWmcRatios)
{
    Rng rng(43);
    CnfFormula f = plantedKSat(rng, 10, 24, 3);
    LitWeights w = LitWeights::random(rng, 10);
    pc::Circuit c = pc::compileCnf(f, w);
    DnnfGraph g = compileToDnnf(f);
    double z = g.wmc(w);
    for (uint32_t var = 0; var < 10; ++var) {
        pc::Assignment a(10, pc::kMissing);
        a[var] = 1;
        double circuit_marginal = std::exp(c.logLikelihood(a));
        LitWeights cond = w;
        cond.neg[var] = 0.0;
        EXPECT_NEAR(circuit_marginal, g.wmc(cond) / z, 1e-9);
    }
}

TEST(CnfToCircuit, TautologyYieldsProductOfMarginals)
{
    CnfFormula f(4); // no constraints
    LitWeights w = LitWeights::uniform(4);
    pc::Circuit c = pc::compileCnf(f, w);
    pc::Assignment a(4, 1);
    EXPECT_NEAR(std::exp(c.logLikelihood(a)), 1.0 / 16.0, 1e-12);
}

TEST(CnfToCircuit, FreeVariablesGetUniformTreatment)
{
    // Variable 2 is mentioned nowhere; the circuit must still cover it.
    CnfFormula f(3);
    f.addClause({1, 2});
    pc::Circuit c = pc::compileCnf(f);
    EXPECT_TRUE(c.isSmoothAndDecomposable());
    pc::Assignment a(3, pc::kMissing);
    a[2] = 1;
    EXPECT_NEAR(std::exp(c.logLikelihood(a)), 0.5, 1e-12);
}
