/**
 * @file
 * Advanced probabilistic-circuit queries: conditionals, posterior
 * marginals via a log-space backward (derivative) pass, conditional
 * sampling, entropy, expectations, and pairwise mutual information.
 *
 * These are the query types the paper's probabilistic workloads issue
 * against their circuits (R2-Guard risk posteriors, NeuroPC
 * class-conditional marginals); all are exact for smooth and
 * decomposable circuits and are validated against brute-force
 * enumeration in the tests.
 */

#ifndef REASON_PC_QUERIES_H
#define REASON_PC_QUERIES_H

#include <cstdint>
#include <vector>

#include "pc/pc.h"

namespace reason {

class Rng;

namespace pc {

/**
 * log P(query, evidence) - log P(evidence).
 *
 * `query` and `evidence` are partial assignments (kMissing = unset) over
 * disjoint variable sets; fatal()s when they conflict on a variable.
 * Returns -inf when the evidence itself has zero probability.
 */
double conditionalLogProbability(const Circuit &circuit,
                                 const Assignment &query,
                                 const Assignment &evidence);

/** Posterior marginals for every variable given (partial) evidence. */
struct MarginalTable
{
    /** prob[var][val] = P(var = val | evidence). */
    std::vector<std::vector<double>> prob;
};

/**
 * All-variable posterior marginals with one upward evaluation and one
 * log-space backward (derivative) pass — O(edges) regardless of how many
 * marginals are read.  Observed variables get an indicator row.
 */
MarginalTable posteriorMarginals(const Circuit &circuit,
                                 const Assignment &evidence);

/**
 * Per-node log-derivatives d log root / d log value(n) companion:
 * log ∂root/∂v_n in linear terms, computed against the upward log-value
 * pass for `x`.  Exposed for tests and for flow-style diagnostics.
 */
std::vector<double> logDerivatives(const Circuit &circuit,
                                   const Assignment &x);

/**
 * Draw one sample from P(X | evidence) by top-down descent: sum nodes
 * choose a child proportionally to weight x child-value-under-evidence,
 * products descend into all children, leaves sample their (restricted)
 * distribution.  Exact for smooth, decomposable circuits.
 */
Assignment sampleConditional(Rng &rng, const Circuit &circuit,
                             const Assignment &evidence);

/**
 * Exact Shannon entropy (nats) of the circuit distribution by full
 * enumeration.  Testing/small models only: requires arity^numVars to be
 * enumerable.
 */
double exactEntropy(const Circuit &circuit);

/** Monte-Carlo entropy estimate: -mean log p over `samples` draws. */
double sampledEntropy(Rng &rng, const Circuit &circuit, size_t samples);

/**
 * Expectation of an additive statistic given evidence:
 * E[ sum_v f[v][X_v] | evidence ].  `f` is indexed [var][value].
 */
double expectedValue(const Circuit &circuit,
                     const std::vector<std::vector<double>> &f,
                     const Assignment &evidence);

/** Joint marginal table P(a = i, b = j) for a pair of variables. */
std::vector<std::vector<double>> pairwiseMarginal(const Circuit &circuit,
                                                  uint32_t a, uint32_t b);

/** Mutual information I(X_a; X_b) in nats under the circuit. */
double mutualInformation(const Circuit &circuit, uint32_t a, uint32_t b);

} // namespace pc
} // namespace reason

#endif // REASON_PC_QUERIES_H
