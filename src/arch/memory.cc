#include "arch/memory.h"

#include <algorithm>

#include "arch/dram.h"
#include "util/logging.h"

namespace reason {
namespace arch {

ClauseSram::ClauseSram(size_t capacity_bytes, uint32_t num_banks)
    : capacityBytes_(capacity_bytes), numBanks_(num_banks)
{
    reasonAssert(capacity_bytes > 0 && num_banks > 0,
                 "SRAM needs capacity and banks");
}

void
ClauseSram::evictFor(size_t bytes)
{
    while (usedBytes_ + bytes > capacityBytes_ && !lru_.empty()) {
        uint32_t victim = lru_.back();
        lru_.pop_back();
        auto it = lines_.find(victim);
        usedBytes_ -= it->second.bytes;
        lines_.erase(it);
        ++evictions_;
    }
}

bool
ClauseSram::access(uint32_t clause_id, size_t bytes)
{
    auto it = lines_.find(clause_id);
    if (it != lines_.end()) {
        ++hits_;
        lru_.erase(it->second.it);
        lru_.push_front(clause_id);
        it->second.it = lru_.begin();
        return true;
    }
    ++misses_;
    evictFor(bytes);
    if (bytes <= capacityBytes_) {
        lru_.push_front(clause_id);
        lines_[clause_id] = {bytes, lru_.begin()};
        usedBytes_ += bytes;
    }
    return false;
}

void
ClauseSram::install(uint32_t clause_id, size_t bytes)
{
    if (lines_.count(clause_id))
        return;
    evictFor(bytes);
    if (bytes <= capacityBytes_) {
        lru_.push_front(clause_id);
        lines_[clause_id] = {bytes, lru_.begin()};
        usedBytes_ += bytes;
    }
}

bool
ClauseSram::resident(uint32_t clause_id) const
{
    return lines_.count(clause_id) != 0;
}

WatchListUnit::WatchListUnit(uint32_t num_literals)
    : lists_(num_literals)
{
}

void
WatchListUnit::watch(uint32_t literal, uint32_t clause_id)
{
    // Head insertion mirrors the linked-list layout: new clause becomes
    // the literal's head pointer target.
    auto &l = lists_.at(literal);
    l.insert(l.begin(), clause_id);
}

void
WatchListUnit::unwatch(uint32_t literal, uint32_t clause_id)
{
    auto &l = lists_.at(literal);
    auto it = std::find(l.begin(), l.end(), clause_id);
    reasonAssert(it != l.end(), "unwatch of clause not on list");
    pointerChases_ += static_cast<uint64_t>(it - l.begin()) + 1;
    l.erase(it);
}

const std::vector<uint32_t> &
WatchListUnit::list(uint32_t literal) const
{
    return lists_.at(literal);
}

size_t
WatchListUnit::listLength(uint32_t literal) const
{
    return lists_.at(literal).size();
}

void
WatchListUnit::recordTraversal(uint32_t literal)
{
    ++headLookups_;
    pointerChases_ += lists_.at(literal).size();
}

BcpFifo::BcpFifo(uint32_t depth) : depth_(depth)
{
    reasonAssert(depth > 0, "FIFO needs depth");
}

bool
BcpFifo::push(uint32_t literal_code)
{
    if (q_.size() >= depth_) {
        ++overflowStalls_;
        return false;
    }
    q_.push_back(literal_code);
    ++pushes_;
    maxOccupancy_ = std::max(maxOccupancy_, q_.size());
    return true;
}

uint32_t
BcpFifo::pop()
{
    reasonAssert(!q_.empty(), "pop from empty FIFO");
    uint32_t v = q_.front();
    q_.pop_front();
    ++pops_;
    return v;
}

size_t
BcpFifo::flush()
{
    size_t n = q_.size();
    q_.clear();
    ++flushes_;
    return n;
}

DmaEngine::DmaEngine(uint32_t latency_cycles, uint32_t max_outstanding,
                     uint32_t bytes_per_cycle)
    : latency_(latency_cycles), maxOutstanding_(max_outstanding),
      bytesPerCycle_(bytes_per_cycle)
{
    reasonAssert(max_outstanding > 0, "DMA needs outstanding slots");
}

uint64_t
DmaEngine::startSlot(uint64_t now)
{
    // Retire completed requests.
    inFlight_.erase(std::remove_if(inFlight_.begin(), inFlight_.end(),
                                   [&](uint64_t c) { return c <= now; }),
                    inFlight_.end());
    uint64_t start = now;
    if (inFlight_.size() >= maxOutstanding_) {
        // Wait for the earliest in-flight completion.
        uint64_t earliest = *std::min_element(inFlight_.begin(),
                                              inFlight_.end());
        start = std::max(start, earliest);
    }
    return start;
}

void
DmaEngine::recordIssue(uint64_t done, size_t bytes)
{
    inFlight_.push_back(done);
    ++requests_;
    bytesFetched_ += bytes;
}

uint64_t
DmaEngine::issue(uint64_t now, size_t bytes)
{
    uint64_t start = startSlot(now);
    uint64_t done = start + latency_;
    // Bandwidth term: a fetch cannot finish faster than the interface
    // can move its bytes.  Disabled when bytesPerCycle_ is 0 so
    // latency-only callers keep their exact legacy timing.
    if (bytesPerCycle_ > 0 && bytes > 0)
        done += (uint64_t(bytes) + bytesPerCycle_ - 1) / bytesPerCycle_;
    recordIssue(done, bytes);
    return done;
}

uint64_t
DmaEngine::issueAt(uint64_t now, uint64_t addr, size_t bytes)
{
    if (dram_ == nullptr)
        return issue(now, bytes);
    uint64_t start = startSlot(now);
    uint64_t done = dram_->read(start, addr, bytes);
    recordIssue(done, bytes);
    return done;
}

void
DmaEngine::cancelAll()
{
    cancels_ += inFlight_.size();
    inFlight_.clear();
}

} // namespace arch
} // namespace reason
