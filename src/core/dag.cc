#include "core/dag.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace reason {
namespace core {

const char *
dagOpName(DagOp op)
{
    switch (op) {
      case DagOp::Input: return "input";
      case DagOp::Const: return "const";
      case DagOp::Sum: return "sum";
      case DagOp::Product: return "product";
      case DagOp::Max: return "max";
      case DagOp::Min: return "min";
      case DagOp::Not: return "not";
    }
    return "?";
}

size_t
Dag::numEdges() const
{
    size_t n = 0;
    for (const auto &node : nodes_)
        n += node.inputs.size();
    return n;
}

NodeId
Dag::addInput()
{
    return addInput(numInputs_);
}

NodeId
Dag::addInput(uint32_t tag)
{
    DagNode n;
    n.op = DagOp::Input;
    n.tag = tag;
    numInputs_ = std::max(numInputs_, tag + 1);
    nodes_.push_back(std::move(n));
    root_ = static_cast<NodeId>(nodes_.size() - 1);
    return root_;
}

NodeId
Dag::addConst(double value)
{
    DagNode n;
    n.op = DagOp::Const;
    n.value = value;
    nodes_.push_back(std::move(n));
    root_ = static_cast<NodeId>(nodes_.size() - 1);
    return root_;
}

NodeId
Dag::addOp(DagOp op, std::vector<NodeId> inputs,
           std::vector<double> weights)
{
    reasonAssert(op != DagOp::Input && op != DagOp::Const,
                 "use addInput/addConst for leaves");
    reasonAssert(!inputs.empty(), "operation needs operands");
    for (NodeId i : inputs)
        reasonAssert(i < nodes_.size(), "operand must already exist");
    if (!weights.empty()) {
        reasonAssert(op == DagOp::Sum, "only Sum edges carry weights");
        reasonAssert(weights.size() == inputs.size(),
                     "weights must align with inputs");
    }
    if (op == DagOp::Not)
        reasonAssert(inputs.size() == 1, "Not is unary");
    DagNode n;
    n.op = op;
    n.inputs = std::move(inputs);
    n.weights = std::move(weights);
    nodes_.push_back(std::move(n));
    root_ = static_cast<NodeId>(nodes_.size() - 1);
    return root_;
}

void
Dag::markRoot(NodeId id)
{
    reasonAssert(id < nodes_.size(), "root must exist");
    root_ = id;
}

std::vector<double>
Dag::evaluate(const std::vector<double> &inputs) const
{
    reasonAssert(inputs.size() >= numInputs_,
                 "not enough input values supplied");
    std::vector<double> val(nodes_.size(), 0.0);
    for (size_t i = 0; i < nodes_.size(); ++i) {
        const DagNode &n = nodes_[i];
        switch (n.op) {
          case DagOp::Input:
            val[i] = inputs[n.tag];
            break;
          case DagOp::Const:
            val[i] = n.value;
            break;
          case DagOp::Sum: {
            double acc = 0.0;
            if (n.weights.empty()) {
                for (NodeId c : n.inputs)
                    acc += val[c];
            } else {
                for (size_t k = 0; k < n.inputs.size(); ++k)
                    acc += n.weights[k] * val[n.inputs[k]];
            }
            val[i] = acc;
            break;
          }
          case DagOp::Product: {
            double acc = 1.0;
            for (NodeId c : n.inputs)
                acc *= val[c];
            val[i] = acc;
            break;
          }
          case DagOp::Max: {
            double acc = val[n.inputs[0]];
            for (size_t k = 1; k < n.inputs.size(); ++k)
                acc = std::max(acc, val[n.inputs[k]]);
            val[i] = acc;
            break;
          }
          case DagOp::Min: {
            double acc = val[n.inputs[0]];
            for (size_t k = 1; k < n.inputs.size(); ++k)
                acc = std::min(acc, val[n.inputs[k]]);
            val[i] = acc;
            break;
          }
          case DagOp::Not:
            val[i] = 1.0 - val[n.inputs[0]];
            break;
        }
    }
    return val;
}

double
Dag::evaluateRoot(const std::vector<double> &inputs) const
{
    reasonAssert(root_ != kInvalidNode, "DAG has no root");
    return evaluate(inputs)[root_];
}

void
Dag::validate() const
{
    reasonAssert(root_ != kInvalidNode, "DAG has no root");
    reasonAssert(root_ < nodes_.size(), "root out of range");
    for (size_t i = 0; i < nodes_.size(); ++i) {
        const DagNode &n = nodes_[i];
        for (NodeId c : n.inputs)
            reasonAssert(c < i, "operands must precede consumers");
        if (!n.weights.empty())
            reasonAssert(n.weights.size() == n.inputs.size(),
                         "weight/input mismatch");
    }
}

DagStats
Dag::stats() const
{
    DagStats s;
    s.numNodes = nodes_.size();
    s.numInputs = numInputs_;
    std::vector<size_t> depth(nodes_.size(), 0);
    for (size_t i = 0; i < nodes_.size(); ++i) {
        const DagNode &n = nodes_[i];
        s.numEdges += n.inputs.size();
        s.numWeights += n.weights.size();
        s.maxFanIn = std::max(s.maxFanIn, n.inputs.size());
        size_t d = 0;
        for (NodeId c : n.inputs)
            d = std::max(d, depth[c] + 1);
        depth[i] = d;
        s.depth = std::max(s.depth, d);
    }
    // Footprint model: 8B header per node, 4B per edge index,
    // 8B per stored weight, 8B per constant.
    size_t consts = 0;
    for (const auto &n : nodes_)
        if (n.op == DagOp::Const)
            ++consts;
    s.memoryBytes =
        8 * s.numNodes + 4 * s.numEdges + 8 * s.numWeights + 8 * consts;
    return s;
}

bool
Dag::isTwoInput() const
{
    for (const auto &n : nodes_)
        if (n.inputs.size() > 2)
            return false;
    return true;
}

std::string
Dag::toString() const
{
    std::ostringstream os;
    for (size_t i = 0; i < nodes_.size(); ++i) {
        const DagNode &n = nodes_[i];
        os << "%" << i << " = " << dagOpName(n.op);
        if (n.op == DagOp::Input)
            os << "[" << n.tag << "]";
        if (n.op == DagOp::Const)
            os << "(" << n.value << ")";
        for (size_t k = 0; k < n.inputs.size(); ++k) {
            os << (k ? ", " : " ");
            if (!n.weights.empty())
                os << n.weights[k] << "*";
            os << "%" << n.inputs[k];
        }
        if (i == root_)
            os << "   <- root";
        os << "\n";
    }
    return os.str();
}

size_t
eliminateDeadNodes(Dag &dag)
{
    std::vector<bool> live(dag.numNodes(), false);
    std::vector<NodeId> stack{dag.root()};
    live[dag.root()] = true;
    while (!stack.empty()) {
        NodeId id = stack.back();
        stack.pop_back();
        for (NodeId c : dag.node(id).inputs) {
            if (!live[c]) {
                live[c] = true;
                stack.push_back(c);
            }
        }
    }
    size_t removed = 0;
    Dag out;
    std::vector<NodeId> remap(dag.numNodes(), kInvalidNode);
    for (NodeId id = 0; id < dag.numNodes(); ++id) {
        if (!live[id]) {
            ++removed;
            continue;
        }
        const DagNode &n = dag.node(id);
        switch (n.op) {
          case DagOp::Input:
            remap[id] = out.addInput(n.tag);
            break;
          case DagOp::Const:
            remap[id] = out.addConst(n.value);
            break;
          default: {
            std::vector<NodeId> inputs;
            inputs.reserve(n.inputs.size());
            for (NodeId c : n.inputs)
                inputs.push_back(remap[c]);
            remap[id] = out.addOp(n.op, std::move(inputs), n.weights);
            break;
          }
        }
    }
    out.markRoot(remap[dag.root()]);
    dag = std::move(out);
    return removed;
}

} // namespace core
} // namespace reason
