#include "util/simd.h"

#include <string>

namespace reason {
namespace simd {

const char *
isaName()
{
    return kIsaName;
}

unsigned
nativeLanes()
{
    return kNativeLanes;
}

const char *
cpuFeatures()
{
    // Built once: the feature set of a CPU does not change mid-process.
    static const std::string features = [] {
        std::string s;
        auto append = [&s](const char *name) {
            if (!s.empty())
                s += ' ';
            s += name;
        };
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#if defined(__GNUC__) || defined(__clang__)
        if (__builtin_cpu_supports("sse2"))
            append("sse2");
        if (__builtin_cpu_supports("sse4.2"))
            append("sse4.2");
        if (__builtin_cpu_supports("avx"))
            append("avx");
        if (__builtin_cpu_supports("avx2"))
            append("avx2");
        if (__builtin_cpu_supports("fma"))
            append("fma");
        if (__builtin_cpu_supports("avx512f"))
            append("avx512f");
        if (__builtin_cpu_supports("avx512dq"))
            append("avx512dq");
        if (__builtin_cpu_supports("avx512vl"))
            append("avx512vl");
#else
        append("x86-64");
#endif
#elif defined(__aarch64__)
        // NEON (ASIMD) is architecturally mandatory on AArch64.
        append("neon");
#else
        append("unknown");
#endif
        if (s.empty())
            s = "none";
        return s;
    }();
    return features.c_str();
}

} // namespace simd
} // namespace reason
