/**
 * @file
 * Golden-schema test for bench_eval's BENCH_JSON output: runs the real
 * binary (path injected by CMake as REASON_BENCH_EVAL_PATH), parses
 * every emitted BENCH_JSON line with a strict flat-JSON parser, and
 * validates the per-engine schema, the engine set, the bitwise
 * determinism invariants, and the process exit code.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace {

/** One parsed flat JSON object: key -> (is_string, raw value). */
struct JsonValue
{
    bool isString = false;
    std::string text;

    double
    number() const
    {
        return std::stod(text);
    }
};
using JsonObject = std::map<std::string, JsonValue>;

/**
 * Strict parser for the flat objects BENCH_JSON emits: one level, keys
 * and string values quoted (no escapes needed), numbers in printf
 * formats.  Returns false on any structural violation.
 */
bool
parseFlatJson(const std::string &line, JsonObject *out)
{
    size_t i = 0;
    auto skip_ws = [&]() {
        while (i < line.size() &&
               (line[i] == ' ' || line[i] == '\t'))
            ++i;
    };
    auto parse_string = [&](std::string *s) {
        if (i >= line.size() || line[i] != '"')
            return false;
        ++i;
        size_t start = i;
        while (i < line.size() && line[i] != '"') {
            if (line[i] == '\\')
                ++i; // tolerate escaped chars in flags strings
            ++i;
        }
        if (i >= line.size())
            return false;
        *s = line.substr(start, i - start);
        ++i;
        return true;
    };

    skip_ws();
    if (i >= line.size() || line[i] != '{')
        return false;
    ++i;
    for (;;) {
        skip_ws();
        std::string key;
        if (!parse_string(&key))
            return false;
        skip_ws();
        if (i >= line.size() || line[i] != ':')
            return false;
        ++i;
        skip_ws();
        JsonValue value;
        if (i < line.size() && line[i] == '"') {
            value.isString = true;
            if (!parse_string(&value.text))
                return false;
        } else {
            size_t start = i;
            while (i < line.size() && line[i] != ',' && line[i] != '}')
                ++i;
            value.text = line.substr(start, i - start);
            if (value.text.empty())
                return false;
            char *end = nullptr;
            (void)std::strtod(value.text.c_str(), &end);
            if (end == nullptr || *end != '\0')
                return false; // not a number
        }
        if (out->count(key))
            return false; // duplicate key
        (*out)[key] = value;
        skip_ws();
        if (i < line.size() && line[i] == ',') {
            ++i;
            continue;
        }
        break;
    }
    if (i >= line.size() || line[i] != '}')
        return false;
    ++i;
    skip_ws();
    return i == line.size();
}

struct BenchRun
{
    std::vector<JsonObject> lines;
    int exitCode = -1;
};

/** Run bench_eval once and collect its BENCH_JSON lines. */
BenchRun
runBenchEval(const std::string &path, const std::string &args)
{
    BenchRun run;
    std::string cmd = "'" + path + "' " + args + " 2>/dev/null";
    FILE *pipe = popen(cmd.c_str(), "r");
    if (pipe == nullptr)
        return run;
    char buf[4096];
    std::string text;
    while (std::fgets(buf, sizeof buf, pipe) != nullptr)
        text += buf;
    int status = pclose(pipe);
    // Decode the wait status: exit code for clean exits, -signal for
    // signal-killed children, so assertions compare real exit codes.
    if (WIFEXITED(status))
        run.exitCode = WEXITSTATUS(status);
    else if (WIFSIGNALED(status))
        run.exitCode = -WTERMSIG(status);
    else
        run.exitCode = -1000;

    size_t at = 0;
    const std::string prefix = "BENCH_JSON ";
    while (at < text.size()) {
        size_t eol = text.find('\n', at);
        if (eol == std::string::npos)
            eol = text.size();
        std::string line = text.substr(at, eol - at);
        at = eol + 1;
        if (line.rfind(prefix, 0) != 0)
            continue;
        JsonObject obj;
        EXPECT_TRUE(parseFlatJson(line.substr(prefix.size()), &obj))
            << "unparseable BENCH_JSON line: " << line;
        run.lines.push_back(std::move(obj));
    }
    return run;
}

const JsonValue *
field(const JsonObject &obj, const std::string &key)
{
    auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
}

} // namespace

TEST(BenchJsonSchema, EveryEmittedLineParsesAndMatchesSchema)
{
#ifndef REASON_BENCH_EVAL_PATH
    GTEST_SKIP() << "bench_eval path not provided by the build";
#else
    BenchRun run = runBenchEval(REASON_BENCH_EVAL_PATH,
                                "48 40 --threads 2");
    ASSERT_FALSE(run.lines.empty()) << "no BENCH_JSON lines emitted";
    ASSERT_EQ(run.exitCode, 0)
        << "bench_eval exited nonzero (bitwise mismatch or failure)";

    std::map<std::string, int> engines;
    for (const JsonObject &obj : run.lines) {
        // Common schema.
        const JsonValue *bench = field(obj, "bench");
        const JsonValue *engine = field(obj, "engine");
        ASSERT_NE(bench, nullptr);
        ASSERT_NE(engine, nullptr);
        EXPECT_TRUE(bench->isString);
        EXPECT_EQ(bench->text, "bench_eval");
        ASSERT_TRUE(engine->isString);
        ++engines[engine->text];

        for (const char *key : {"nodes", "edges", "reps"}) {
            const JsonValue *v = field(obj, key);
            ASSERT_NE(v, nullptr) << engine->text << " lacks " << key;
            EXPECT_FALSE(v->isString);
            EXPECT_GT(v->number(), 0.0) << key;
        }
        for (const char *key :
             {"compiler", "flags", "build", "simd_isa",
              "cpu_features"}) {
            const JsonValue *v = field(obj, key);
            ASSERT_NE(v, nullptr) << engine->text << " lacks " << key;
            EXPECT_TRUE(v->isString);
            EXPECT_FALSE(v->text.empty());
        }
        // The compile-time backend is one of the known names.
        {
            const std::string &isa = field(obj, "simd_isa")->text;
            EXPECT_TRUE(isa == "avx512f" || isa == "avx2" ||
                        isa == "sse2" || isa == "neon" ||
                        isa == "scalar")
                << "unknown simd_isa " << isa;
        }

        // Engine-pair specific schema.
        const bool is_mt = engine->text == "circuit_loglik_mt" ||
                           engine->text == "derivatives_mt" ||
                           engine->text == "em_fit";
        const bool is_simd_kernel =
            engine->text == "kernel_logsumexp" ||
            engine->text == "hmm_leaf_batch";
        if (is_simd_kernel) {
            for (const char *key :
                 {"scalar_ms", "simd_ms", "speedup_vs_scalar",
                  "bitwise_mismatches"}) {
                const JsonValue *v = field(obj, key);
                ASSERT_NE(v, nullptr)
                    << engine->text << " lacks " << key;
                EXPECT_FALSE(v->isString);
            }
            // The SIMD kernels and their forced-scalar references
            // are bit-exact by contract.
            EXPECT_EQ(field(obj, "bitwise_mismatches")->number(), 0.0)
                << engine->text << " reports bitwise mismatches";
            EXPECT_GT(field(obj, "scalar_ms")->number(), 0.0);
            EXPECT_GT(field(obj, "simd_ms")->number(), 0.0);
            // No wall-clock speedup assertion here: this test runs
            // under parallel ctest where scheduler contention makes
            // timing ratios flaky.  The >= 1.5x kernel_logsumexp gate
            // is enforced by bench_eval itself (nonzero exit), which
            // CI runs serially in the benchmark smoke step.
            EXPECT_GT(field(obj, "speedup_vs_scalar")->number(), 0.0);
        } else if (engine->text == "serving") {
            for (const char *key :
                 {"threads", "max_batch", "clients", "seq_ms",
                  "serve_ms", "speedup_vs_seq", "requests_per_sec",
                  "p50_ms", "p99_ms", "mean_batch_occupancy",
                  "bitwise_mismatches"}) {
                const JsonValue *v = field(obj, key);
                ASSERT_NE(v, nullptr) << "serving lacks " << key;
                EXPECT_FALSE(v->isString);
            }
            // Coalescing must never change per-request bits, and the
            // backlog run must actually coalesce (occupancy > 1).
            EXPECT_EQ(field(obj, "bitwise_mismatches")->number(), 0.0)
                << "serving reports bitwise mismatches";
            EXPECT_GT(field(obj, "mean_batch_occupancy")->number(), 1.0)
                << "serving batches never coalesced";
            EXPECT_GT(field(obj, "serve_ms")->number(), 0.0);
            EXPECT_GT(field(obj, "speedup_vs_seq")->number(), 0.0);
            EXPECT_GT(field(obj, "requests_per_sec")->number(), 0.0);
            EXPECT_LE(field(obj, "p50_ms")->number(),
                      field(obj, "p99_ms")->number());
        } else if (engine->text == "serving_mt") {
            for (const char *key :
                 {"threads", "dispatchers", "max_batch", "clients",
                  "serve_ms", "requests_per_sec", "p50_ms", "p99_ms",
                  "mean_batch_occupancy", "capacity", "shed_rate",
                  "max_queue_depth", "overload_p99_ms",
                  "bitwise_mismatches"}) {
                const JsonValue *v = field(obj, key);
                ASSERT_NE(v, nullptr) << "serving_mt lacks " << key;
                EXPECT_FALSE(v->isString);
            }
            // Dispatcher count, queue policy, and shedding must never
            // change the bits of admitted requests, and the paused
            // backlog must coalesce into wide batches.
            EXPECT_EQ(field(obj, "bitwise_mismatches")->number(), 0.0)
                << "serving_mt reports bitwise mismatches";
            EXPECT_GT(field(obj, "dispatchers")->number(), 1.0);
            EXPECT_GT(field(obj, "mean_batch_occupancy")->number(), 1.0)
                << "serving_mt batches never coalesced";
            EXPECT_GT(field(obj, "requests_per_sec")->number(), 0.0);
            EXPECT_LE(field(obj, "p50_ms")->number(),
                      field(obj, "p99_ms")->number());
            // Deterministic 2x-capacity overload: exactly half the
            // offered load is shed, and the queue never grows past
            // its configured capacity.
            EXPECT_EQ(field(obj, "shed_rate")->number(), 0.5)
                << "overload phase shed an unexpected fraction";
            EXPECT_GT(field(obj, "capacity")->number(), 0.0);
            EXPECT_LE(field(obj, "max_queue_depth")->number(),
                      field(obj, "capacity")->number())
                << "bounded queue exceeded its capacity";
            EXPECT_GT(field(obj, "overload_p99_ms")->number(), 0.0);
        } else if (engine->text == "approx_tier") {
            for (const char *key :
                 {"budget", "kept_nodes", "total_nodes", "exact_ms",
                  "approx_ms", "speedup_vs_exact", "mean_abs_dlogp",
                  "max_abs_dlogp", "corpus_circuits", "corpus_checks",
                  "bound_violations", "bitwise_mismatches"}) {
                const JsonValue *v = field(obj, key);
                ASSERT_NE(v, nullptr) << "approx_tier lacks " << key;
                EXPECT_FALSE(v->isString);
            }
            // The certified-interval contract is absolute: zero bound
            // violations across the whole differential corpus, and
            // budget-0 identity / rebuild determinism hold bit for
            // bit at any bench size (only the speedup-at-accuracy
            // gate is size-dependent, enforced by bench_eval itself).
            EXPECT_EQ(field(obj, "bound_violations")->number(), 0.0)
                << "approx_tier reports bound violations";
            EXPECT_EQ(field(obj, "bitwise_mismatches")->number(), 0.0)
                << "approx_tier reports bitwise mismatches";
            EXPECT_EQ(field(obj, "corpus_circuits")->number(), 200.0);
            EXPECT_GT(field(obj, "corpus_checks")->number(), 0.0);
            EXPECT_GT(field(obj, "budget")->number(), 0.0);
            EXPECT_GT(field(obj, "kept_nodes")->number(), 0.0);
            EXPECT_LE(field(obj, "kept_nodes")->number(),
                      field(obj, "total_nodes")->number());
            EXPECT_GT(field(obj, "exact_ms")->number(), 0.0);
            EXPECT_GT(field(obj, "approx_ms")->number(), 0.0);
            EXPECT_GT(field(obj, "speedup_vs_exact")->number(), 0.0);
            EXPECT_LE(field(obj, "mean_abs_dlogp")->number(),
                      field(obj, "max_abs_dlogp")->number());
        } else if (engine->text == "dram_model") {
            for (const char *key :
                 {"channels", "banks", "stream_hit_rate",
                  "random_hit_rate", "stream_cpb", "random_cpb",
                  "stream_cycles", "random_cycles", "stream_blp_x100",
                  "peak_bytes_per_cycle", "model_ms",
                  "invariant_violations", "determinism_mismatches"}) {
                const JsonValue *v = field(obj, key);
                ASSERT_NE(v, nullptr) << "dram_model lacks " << key;
                EXPECT_FALSE(v->isString);
            }
            // The timing model's contracts are absolute at any bench
            // size: no request completes before the minimum closed-row
            // latency, sustained bandwidth never exceeds the pin peak,
            // and cycle counts are bit-identical across reruns.
            EXPECT_EQ(field(obj, "invariant_violations")->number(), 0.0)
                << "dram_model reports timing-invariant violations";
            EXPECT_EQ(field(obj, "determinism_mismatches")->number(),
                      0.0)
                << "dram_model reports nondeterministic cycle counts";
            EXPECT_GT(field(obj, "channels")->number(), 0.0);
            EXPECT_GT(field(obj, "banks")->number(), 0.0);
            // Row-buffer locality: a streaming scan must beat the
            // shuffled access order on hit rate and cycles per byte.
            EXPECT_GT(field(obj, "stream_hit_rate")->number(),
                      field(obj, "random_hit_rate")->number())
                << "streaming did not beat random row-hit rate";
            EXPECT_LT(field(obj, "stream_cpb")->number(),
                      field(obj, "random_cpb")->number())
                << "streaming did not beat random cycles/byte";
            EXPECT_GT(field(obj, "stream_cycles")->number(), 0.0);
            EXPECT_GT(field(obj, "random_cycles")->number(), 0.0);
            EXPECT_GT(field(obj, "peak_bytes_per_cycle")->number(),
                      0.0);
        } else if (engine->text == "compile_flat") {
            for (const char *key :
                 {"formulas", "compile_ms", "lower_ms", "stream_ms",
                  "formulas_per_s", "wmc_mismatches",
                  "bitwise_mismatches"}) {
                const JsonValue *v = field(obj, key);
                ASSERT_NE(v, nullptr) << "compile_flat lacks " << key;
                EXPECT_FALSE(v->isString);
            }
            // The four WMC routes must agree on the whole corpus and
            // the streamed `.nnf` round-trip must be byte-identical
            // to the direct lowering, at any bench size.
            EXPECT_EQ(field(obj, "wmc_mismatches")->number(), 0.0)
                << "compile_flat reports WMC disagreements";
            EXPECT_EQ(field(obj, "bitwise_mismatches")->number(), 0.0)
                << "compile_flat reports streamed-vs-direct mismatches";
            EXPECT_EQ(field(obj, "formulas")->number(), 200.0);
            EXPECT_GT(field(obj, "compile_ms")->number(), 0.0);
            EXPECT_GT(field(obj, "formulas_per_s")->number(), 0.0);
        } else if (engine->text == "fault_recovery") {
            for (const char *key :
                 {"clients", "control_ms", "fault_ms",
                  "control_retries", "reconnects", "retries",
                  "transport_errors", "duplicates_suppressed",
                  "faults_injected", "unanswered", "wrong_answers",
                  "control_mismatches", "shed", "expired",
                  "cancelled", "accounting_ok", "drain_clean"}) {
                const JsonValue *v = field(obj, key);
                ASSERT_NE(v, nullptr)
                    << "fault_recovery lacks " << key;
                EXPECT_FALSE(v->isString);
            }
            // The reliability contract is absolute: faults really
            // fired, yet every query terminated with the bit-exact
            // answer, the queue accounting balanced, and the drain
            // was clean — and the fault-free control pass needed no
            // retries at all.
            EXPECT_GT(field(obj, "faults_injected")->number(), 0.0)
                << "fault pass injected no faults";
            EXPECT_EQ(field(obj, "unanswered")->number(), 0.0)
                << "fault_recovery left queries unanswered";
            EXPECT_EQ(field(obj, "wrong_answers")->number(), 0.0)
                << "fault_recovery reports wrong answers";
            EXPECT_EQ(field(obj, "control_mismatches")->number(), 0.0)
                << "fault-free control pass was not bit-exact";
            EXPECT_EQ(field(obj, "control_retries")->number(), 0.0)
                << "fault-free control pass needed retries";
            EXPECT_EQ(field(obj, "accounting_ok")->number(), 1.0)
                << "engine accounting did not balance";
            EXPECT_EQ(field(obj, "drain_clean")->number(), 1.0)
                << "graceful drain expired queued work";
            EXPECT_GT(field(obj, "clients")->number(), 0.0);
            EXPECT_GT(field(obj, "control_ms")->number(), 0.0);
            EXPECT_GT(field(obj, "fault_ms")->number(), 0.0);
        } else if (is_mt) {
            for (const char *key : {"threads", "flat_ms", "mt_ms",
                                    "speedup_vs_flat",
                                    "bitwise_mismatches"}) {
                const JsonValue *v = field(obj, key);
                ASSERT_NE(v, nullptr)
                    << engine->text << " lacks " << key;
                EXPECT_FALSE(v->isString);
            }
            EXPECT_EQ(field(obj, "bitwise_mismatches")->number(), 0.0)
                << engine->text << " reports bitwise mismatches";
            EXPECT_GT(field(obj, "mt_ms")->number(), 0.0);
            EXPECT_GT(field(obj, "speedup_vs_flat")->number(), 0.0);
        } else {
            for (const char *key :
                 {"seed_ms", "flat_ms", "lower_ms", "speedup",
                  "max_abs_diff"}) {
                const JsonValue *v = field(obj, key);
                ASSERT_NE(v, nullptr)
                    << engine->text << " lacks " << key;
                EXPECT_FALSE(v->isString);
            }
            EXPECT_GE(field(obj, "speedup")->number(), 0.0);
        }
        if (engine->text == "em_fit") {
            for (const char *key : {"iters", "shards"}) {
                const JsonValue *v = field(obj, key);
                ASSERT_NE(v, nullptr) << "em_fit lacks " << key;
                EXPECT_GT(v->number(), 0.0);
            }
        }
    }

    // Every engine pair appears exactly once per run.
    for (const char *engine :
         {"circuit_loglik", "circuit_loglik_mt", "derivatives_mt",
          "em_fit", "kernel_logsumexp", "hmm_leaf_batch", "serving",
          "serving_mt", "approx_tier", "compile_flat", "dram_model",
          "fault_recovery", "dag_eval"}) {
        EXPECT_EQ(engines[engine], 1)
            << "engine " << engine << " missing or duplicated";
    }
#endif
}

TEST(BenchJsonSchema, SingleThreadRunSkipsMtVariantsAndExitsZero)
{
#ifndef REASON_BENCH_EVAL_PATH
    GTEST_SKIP() << "bench_eval path not provided by the build";
#else
    BenchRun run = runBenchEval(REASON_BENCH_EVAL_PATH,
                                "32 24 --threads 1");
    ASSERT_EQ(run.exitCode, 0);
    std::map<std::string, int> engines;
    for (const JsonObject &obj : run.lines) {
        const JsonValue *engine = field(obj, "engine");
        ASSERT_NE(engine, nullptr);
        ++engines[engine->text];
    }
    EXPECT_EQ(engines["circuit_loglik"], 1);
    EXPECT_EQ(engines["dag_eval"], 1);
    // The serving engine and the SIMD kernel micro-benches are
    // independent of the --threads knob; they run (and must hold
    // their bitwise contracts) even in the 1-thread configuration.
    EXPECT_EQ(engines["serving"], 1);
    EXPECT_EQ(engines["kernel_logsumexp"], 1);
    EXPECT_EQ(engines["hmm_leaf_batch"], 1);
    EXPECT_EQ(engines["approx_tier"], 1);
    EXPECT_EQ(engines["compile_flat"], 1);
    // The DRAM timing model is single-threaded by construction and
    // must emit (and gate) regardless of the --threads knob.
    EXPECT_EQ(engines["dram_model"], 1);
    // The fault-recovery gate spawns its own server and client
    // threads, so it too runs in every --threads configuration.
    EXPECT_EQ(engines["fault_recovery"], 1);
    EXPECT_EQ(engines["circuit_loglik_mt"], 0);
    EXPECT_EQ(engines["derivatives_mt"], 0);
    EXPECT_EQ(engines["em_fit"], 0);
    EXPECT_EQ(engines["serving_mt"], 0);
#endif
}
