/**
 * @file
 * Tests for CNF preprocessing: per-pass behaviour on constructed
 * formulas, equisatisfiability and model reconstruction on random
 * sweeps, and the equivalence-preservation contract of subsumption and
 * self-subsuming resolution (exact model-count invariance).
 */

#include <gtest/gtest.h>

#include "logic/cnf.h"
#include "logic/preprocess.h"
#include "logic/solver.h"
#include "util/rng.h"

using namespace reason;
using namespace reason::logic;

namespace {

PreprocessConfig
onlyPass(bool units, bool pures, bool subsume, bool self_subsume,
         bool probe, bool bve)
{
    PreprocessConfig cfg;
    cfg.unitPropagation = units;
    cfg.pureLiterals = pures;
    cfg.subsumption = subsume;
    cfg.selfSubsumption = self_subsume;
    cfg.failedLiteralProbing = probe;
    cfg.variableElimination = bve;
    return cfg;
}

} // namespace

TEST(Preprocess, UnitPropagationFixesChain)
{
    CnfFormula f(4);
    f.addClause({1});        // x0
    f.addClause({-1, 2});    // x0 -> x1
    f.addClause({-2, 3});    // x1 -> x2
    f.addClause({-3, 4});    // x2 -> x3
    Preprocessor pre(f, onlyPass(true, false, false, false, false, false));
    pre.run();
    EXPECT_FALSE(pre.knownUnsat());
    EXPECT_EQ(pre.stats().unitsFixed, 4u);
    EXPECT_EQ(pre.simplified().numClauses(), 0u);
    auto model = pre.reconstructModel({});
    EXPECT_TRUE(f.evaluate(model));
}

TEST(Preprocess, UnitConflictDetectsUnsat)
{
    CnfFormula f(2);
    f.addClause({1});
    f.addClause({-1});
    Preprocessor pre(f);
    pre.run();
    EXPECT_TRUE(pre.knownUnsat());
}

TEST(Preprocess, PureLiteralFixed)
{
    CnfFormula f(3);
    f.addClause({1, 2});
    f.addClause({1, -2});
    f.addClause({2, 3});
    // x0 occurs only positively.
    Preprocessor pre(f, onlyPass(false, true, false, false, false, false));
    pre.run();
    EXPECT_GE(pre.stats().pureLiteralsFixed, 1u);
    auto model = pre.reconstructModel(
        std::vector<bool>(3, false));
    // Remaining formula may be nonempty; only check x0's polarity here.
    EXPECT_TRUE(model[0]);
}

TEST(Preprocess, SubsumptionDropsSuperset)
{
    CnfFormula f(3);
    f.addClause({1, 2});
    f.addClause({1, 2, 3}); // subsumed by the first
    Preprocessor pre(f, onlyPass(false, false, true, false, false, false));
    pre.run();
    EXPECT_EQ(pre.stats().subsumedClauses, 1u);
    EXPECT_EQ(pre.simplified().numClauses(), 1u);
}

TEST(Preprocess, SelfSubsumptionStrengthens)
{
    CnfFormula f(3);
    f.addClause({1, 2});      // (x0 | x1)
    f.addClause({-1, 2, 3});  // (~x0 | x1 | x2) -> strengthen to (x1|x2)?
    // c = {x0, x1}, l = x0: c\{l} = {x1} ⊆ d\{~x0} = {x1, x2}: remove ~x0.
    Preprocessor pre(f, onlyPass(false, false, true, true, false, false));
    pre.run();
    EXPECT_EQ(pre.stats().strengthenedClauses, 1u);
    CnfFormula g = pre.simplified();
    // The strengthened clause is (x1 | x2).
    bool found = false;
    for (const auto &c : g.clauses())
        if (c == Clause{Lit::make(1, false), Lit::make(2, false)})
            found = true;
    EXPECT_TRUE(found);
}

TEST(Preprocess, SubsumptionPreservesModelCount)
{
    // Subsumption + self-subsuming resolution are logical-equivalence
    // preserving: the simplified formula has the same model count.
    Rng rng(91);
    for (int trial = 0; trial < 12; ++trial) {
        CnfFormula f = randomKSat(rng, 10, 45, 3);
        // Add redundancy for the passes to find: widen some clauses.
        CnfFormula padded = f;
        for (size_t i = 0; i + 1 < f.numClauses(); i += 4) {
            Clause wide = f.clause(i);
            wide.push_back(Lit::make(uint32_t(i % 10), (i / 10) & 1));
            std::sort(wide.begin(), wide.end());
            wide.erase(std::unique(wide.begin(), wide.end()), wide.end());
            padded.addClause(wide);
        }
        Preprocessor pre(padded,
                         onlyPass(false, false, true, true, false, false));
        pre.run();
        CnfFormula g = pre.simplified();
        EXPECT_EQ(g.bruteForceCountModels(),
                  padded.bruteForceCountModels())
            << "trial " << trial;
    }
}

TEST(Preprocess, FailedLiteralProbingDetectsForcedVar)
{
    // x0 -> x1, x0 -> ~x1 means x0 must be false.
    CnfFormula f(3);
    f.addClause({-1, 2});
    f.addClause({-1, -2});
    f.addClause({1, 3}); // keeps x0 from being pure
    Preprocessor pre(f, onlyPass(false, false, false, false, true, false));
    pre.run();
    EXPECT_GE(pre.stats().failedLiterals, 1u);
    auto model = pre.reconstructModel(std::vector<bool>(3, true));
    EXPECT_FALSE(model[0]);
}

TEST(Preprocess, BveEliminatesLowOccurrenceVar)
{
    // x1 appears in exactly two clauses; resolving removes it.
    CnfFormula f(3);
    f.addClause({1, 2});   // (x0 | x1)
    f.addClause({-2, 3});  // (~x1 | x2)
    Preprocessor pre(f, onlyPass(false, false, false, false, false, true));
    pre.run();
    EXPECT_GE(pre.stats().eliminatedVars, 1u);
    // Resolvent: (x0 | x2).
    CnfFormula g = pre.simplified();
    for (const auto &c : g.clauses())
        for (Lit l : c)
            EXPECT_NE(l.var(), 1u);
}

struct PreprocessSweepParam
{
    uint32_t vars;
    uint32_t clauses;
    uint32_t k;
    uint64_t seed;
    bool planted;
};

class PreprocessSweep
    : public ::testing::TestWithParam<PreprocessSweepParam>
{
};

TEST_P(PreprocessSweep, EquisatisfiableAndModelReconstructs)
{
    auto p = GetParam();
    Rng rng(p.seed);
    CnfFormula f = p.planted ? plantedKSat(rng, p.vars, p.clauses, p.k)
                             : randomKSat(rng, p.vars, p.clauses, p.k);
    Preprocessor pre(f);
    pre.run();

    bool original_sat = f.bruteForceSat();
    if (pre.knownUnsat()) {
        EXPECT_FALSE(original_sat);
        return;
    }
    CnfFormula g = pre.simplified();
    std::vector<bool> model;
    SolveResult r = solveCnf(g, &model);
    EXPECT_EQ(r == SolveResult::Sat, original_sat);
    if (r == SolveResult::Sat) {
        auto full = pre.reconstructModel(model);
        EXPECT_TRUE(f.evaluate(full));
    }
}

TEST_P(PreprocessSweep, ClauseCountNeverGrows)
{
    // With bveGrowthLimit = 0, every pass removes clauses or keeps the
    // count (resolvents may be *wider*, so literal count can grow, but
    // the clause count cannot).
    auto p = GetParam();
    Rng rng(p.seed + 500);
    CnfFormula f = p.planted ? plantedKSat(rng, p.vars, p.clauses, p.k)
                             : randomKSat(rng, p.vars, p.clauses, p.k);
    PreprocessStats stats;
    PreprocessConfig cfg;
    cfg.bveGrowthLimit = 0; // never grow
    preprocessCnf(f, &stats, cfg);
    EXPECT_LE(stats.clausesAfter, stats.clausesBefore);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PreprocessSweep,
    ::testing::Values(PreprocessSweepParam{8, 24, 3, 1, false},
                      PreprocessSweepParam{10, 35, 3, 2, false},
                      PreprocessSweepParam{10, 44, 3, 3, false},
                      PreprocessSweepParam{12, 50, 3, 4, false},
                      PreprocessSweepParam{12, 30, 2, 5, false},
                      PreprocessSweepParam{14, 56, 4, 6, false},
                      PreprocessSweepParam{16, 64, 3, 7, false},
                      PreprocessSweepParam{12, 48, 3, 8, true},
                      PreprocessSweepParam{16, 70, 3, 9, true},
                      PreprocessSweepParam{18, 60, 3, 10, true},
                      PreprocessSweepParam{20, 85, 3, 11, true},
                      PreprocessSweepParam{10, 55, 2, 12, false}));

TEST(Preprocess, PigeonholeStaysUnsat)
{
    CnfFormula f = pigeonhole(4);
    Preprocessor pre(f);
    pre.run();
    if (!pre.knownUnsat())
        EXPECT_EQ(solveCnf(pre.simplified()), SolveResult::Unsat);
}

TEST(Preprocess, OneShotHelperReportsStats)
{
    Rng rng(7);
    CnfFormula f = randomKSat(rng, 12, 40, 3);
    PreprocessStats stats;
    CnfFormula g = preprocessCnf(f, &stats);
    EXPECT_EQ(stats.clausesBefore, f.numClauses());
    EXPECT_EQ(stats.clausesAfter, g.numClauses());
    EXPECT_GE(stats.rounds, 1u);
}

TEST(Preprocess, EmptyFormulaIsNoOp)
{
    CnfFormula f(5);
    Preprocessor pre(f);
    pre.run();
    EXPECT_FALSE(pre.knownUnsat());
    EXPECT_EQ(pre.simplified().numClauses(), 0u);
    auto model = pre.reconstructModel({});
    EXPECT_EQ(model.size(), 5u);
}
