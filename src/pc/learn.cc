#include "pc/learn.h"

#include <cmath>

#include "pc/flows.h"
#include "util/logging.h"

namespace reason {
namespace pc {

double
meanLogLikelihood(const Circuit &circuit,
                  const std::vector<Assignment> &data)
{
    reasonAssert(!data.empty(), "need data");
    double acc = 0.0;
    for (const auto &x : data)
        acc += circuit.logLikelihood(x);
    return acc / static_cast<double>(data.size());
}

EmTrace
emTrain(Circuit &circuit, const std::vector<Assignment> &data,
        const EmConfig &config)
{
    EmTrace trace;
    trace.logLikelihood.push_back(meanLogLikelihood(circuit, data));

    for (uint32_t it = 0; it < config.maxIterations; ++it) {
        // E-step: expected edge usage = accumulated flows; expected leaf
        // value usage = leaf flow attributed to the observed value.
        EdgeFlows total;
        total.nodeFlows.assign(circuit.numNodes(), 0.0);
        total.flows.resize(circuit.numNodes());
        for (size_t i = 0; i < circuit.numNodes(); ++i)
            total.flows[i].assign(circuit.node(i).children.size(), 0.0);
        // leafCounts[node][value]
        std::vector<std::vector<double>> leaf_counts(circuit.numNodes());
        for (size_t i = 0; i < circuit.numNodes(); ++i)
            if (circuit.node(i).type == PcNodeType::Leaf)
                leaf_counts[i].assign(circuit.arity(), 0.0);

        for (const auto &x : data) {
            EdgeFlows one = computeFlows(circuit, x);
            for (size_t i = 0; i < circuit.numNodes(); ++i) {
                total.nodeFlows[i] += one.nodeFlows[i];
                for (size_t k = 0; k < one.flows[i].size(); ++k)
                    total.flows[i][k] += one.flows[i][k];
                const PcNode &n = circuit.node(static_cast<NodeId>(i));
                if (n.type == PcNodeType::Leaf &&
                    x[n.var] != kMissing) {
                    leaf_counts[i][x[n.var]] += one.nodeFlows[i];
                }
            }
        }

        // M-step: re-normalize sum weights and leaf distributions.
        for (NodeId id = 0; id < circuit.numNodes(); ++id) {
            PcNode &n = circuit.mutableNode(id);
            if (n.type == PcNodeType::Sum) {
                double denom = 0.0;
                for (size_t k = 0; k < n.children.size(); ++k)
                    denom += total.flows[id][k] + config.smoothing;
                for (size_t k = 0; k < n.children.size(); ++k)
                    n.weights[k] =
                        (total.flows[id][k] + config.smoothing) / denom;
            } else if (n.type == PcNodeType::Leaf) {
                double denom = 0.0;
                for (uint32_t v = 0; v < circuit.arity(); ++v)
                    denom += leaf_counts[id][v] + config.smoothing;
                if (denom <= 0.0)
                    continue;
                for (uint32_t v = 0; v < circuit.arity(); ++v)
                    n.dist[v] =
                        (leaf_counts[id][v] + config.smoothing) / denom;
            }
        }

        double ll = meanLogLikelihood(circuit, data);
        trace.logLikelihood.push_back(ll);
        ++trace.iterations;
        double prev = trace.logLikelihood[trace.logLikelihood.size() - 2];
        if (ll - prev < config.tolerance)
            break;
    }
    return trace;
}

} // namespace pc
} // namespace reason
