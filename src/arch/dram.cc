#include "arch/dram.h"

#include <algorithm>
#include <cassert>
#include <string>

namespace reason {
namespace arch {

namespace {

bool
isPow2(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

uint32_t
log2Pow2(uint64_t x)
{
    uint32_t n = 0;
    while (x > 1) {
        x >>= 1;
        ++n;
    }
    return n;
}

} // namespace

// ---------------------------------------------------------------------------
// DramAddressMap
// ---------------------------------------------------------------------------

DramAddressMap::DramAddressMap(uint32_t channels, uint32_t ranks,
                               uint32_t banksPerRank, uint32_t rowBytes,
                               uint32_t burstBytes)
    : channels_(channels), ranks_(ranks), banksPerRank_(banksPerRank),
      rowBytes_(rowBytes), burstBytes_(burstBytes)
{
    assert(isPow2(channels_) && isPow2(ranks_) && isPow2(banksPerRank_));
    assert(isPow2(rowBytes_) && isPow2(burstBytes_));
    assert(rowBytes_ >= burstBytes_);
    burstsPerRow_ = rowBytes_ / burstBytes_;
    chBits_ = log2Pow2(channels_);
    colBits_ = log2Pow2(burstsPerRow_);
    bankBits_ = log2Pow2(banksPerRank_);
    rankBits_ = log2Pow2(ranks_);
}

DramCoord
DramAddressMap::decode(uint64_t addr) const
{
    uint64_t b = addr / burstBytes_;
    DramCoord c;
    c.channel = uint32_t(b & (channels_ - 1));
    b >>= chBits_;
    c.col = uint32_t(b & (burstsPerRow_ - 1));
    b >>= colBits_;
    c.bank = uint32_t(b & (banksPerRank_ - 1));
    b >>= bankBits_;
    c.rank = uint32_t(b & (ranks_ - 1));
    b >>= rankBits_;
    c.row = b;
    return c;
}

uint64_t
DramAddressMap::encode(const DramCoord &c) const
{
    uint64_t b = c.row;
    b = (b << rankBits_) | c.rank;
    b = (b << bankBits_) | c.bank;
    b = (b << colBits_) | c.col;
    b = (b << chBits_) | c.channel;
    return b * burstBytes_;
}

// ---------------------------------------------------------------------------
// DramModel
// ---------------------------------------------------------------------------

DramModel::DramModel(const ArchConfig &cfg)
    : map_(cfg.dramChannels, cfg.dramRanksPerChannel, cfg.dramBanksPerRank,
           cfg.dramRowBytes, cfg.dramBurstBytes),
      tRcd_(cfg.dramTRcdCycles), tRp_(cfg.dramTRpCycles),
      tCas_(cfg.dramTCasCycles), tRas_(cfg.dramTRasCycles),
      burstCycles_(cfg.dramBurstCycles),
      queueDepth_(cfg.dramQueueDepth ? cfg.dramQueueDepth : 1),
      channels_(cfg.dramChannels),
      banks_(size_t(cfg.dramChannels) * map_.banksPerChannel()),
      bankStats_(banks_.size())
{
}

DramModel::BankState &
DramModel::bank(const DramCoord &c)
{
    size_t idx = size_t(c.channel) * map_.banksPerChannel() +
                 size_t(c.rank) * map_.banksPerRank() + c.bank;
    return banks_[idx];
}

const DramBankCounters &
DramModel::bankCounters(uint32_t channel, uint32_t bankInChannel) const
{
    return bankStats_[size_t(channel) * map_.banksPerChannel() +
                      bankInChannel];
}

double
DramModel::peakBytesPerCycle() const
{
    return double(map_.channels()) * map_.burstBytes() / double(burstCycles_);
}

uint64_t
DramModel::serviceOne(uint32_t ch)
{
    ChannelState &c = channels_[ch];
    assert(!c.pending.empty());

    // Bank-level-parallelism sample: distinct banks with queued work.
    {
        std::vector<char> seen(map_.banksPerChannel(), 0);
        uint64_t distinct = 0;
        for (const PendingBurst &p : c.pending) {
            size_t b = size_t(p.coord.rank) * map_.banksPerRank() +
                       p.coord.bank;
            if (!seen[b]) {
                seen[b] = 1;
                ++distinct;
            }
        }
        blpSum_ += distinct;
        blpSamples_ += 1;
    }

    // FR-FCFS: oldest queued burst whose bank has the matching row
    // open wins; otherwise fall back to the overall oldest (front).
    size_t pick = 0;
    for (size_t i = 0; i < c.pending.size(); ++i) {
        const PendingBurst &p = c.pending[i];
        const BankState &bs =
            banks_[size_t(p.coord.channel) * map_.banksPerChannel() +
                   size_t(p.coord.rank) * map_.banksPerRank() + p.coord.bank];
        if (bs.openRow == int64_t(p.coord.row)) {
            pick = i;
            break;
        }
    }
    PendingBurst burst = c.pending[pick];
    c.pending.erase(c.pending.begin() + ptrdiff_t(pick));

    BankState &bk = bank(burst.coord);
    DramBankCounters &bc =
        bankStats_[size_t(burst.coord.channel) * map_.banksPerChannel() +
                   size_t(burst.coord.rank) * map_.banksPerRank() +
                   burst.coord.bank];

    // Earliest cycle the column command can issue at this bank.
    uint64_t t = std::max(burst.arrival, bk.readyAt);
    if (bk.openRow == int64_t(burst.coord.row)) {
        ++bc.hits;
        ++hits_;
    } else if (bk.openRow < 0) {
        // Closed bank: activate the row (tRCD before the column cmd).
        bk.openRow = int64_t(burst.coord.row);
        bk.rasReadyAt = t + tRas_;
        t += tRcd_;
        ++bc.misses;
        ++misses_;
    } else {
        // Row conflict: wait out tRAS, precharge (tRP), re-activate.
        uint64_t pre = std::max(t, bk.rasReadyAt);
        uint64_t act = pre + tRp_;
        bk.openRow = int64_t(burst.coord.row);
        bk.rasReadyAt = act + tRas_;
        t = act + tRcd_;
        ++bc.conflicts;
        ++conflicts_;
    }

    // Data leaves tCAS after the column command, serialized on the
    // channel's shared data bus.
    uint64_t data = std::max(t + tCas_, c.busFreeAt);
    uint64_t done = data + burstCycles_;
    c.busFreeAt = done;
    bk.readyAt = t + burstCycles_;
    if (done > lastCompletion_)
        lastCompletion_ = done;
    return done;
}

void
DramModel::enqueueBurst(uint32_t ch, const PendingBurst &b)
{
    ChannelState &c = channels_[ch];
    // Bounded request queue: a full queue back-pressures the producer,
    // which stalls until the scheduler drains a slot.
    while (c.pending.size() >= queueDepth_) {
        uint64_t done = serviceOne(ch);
        if (done > callMax_)
            callMax_ = done;
    }
    c.pending.push_back(b);
    if (c.pending.size() > maxQueueOccupancy_)
        maxQueueOccupancy_ = uint32_t(c.pending.size());
}

uint64_t
DramModel::drainAll()
{
    uint64_t maxDone = callMax_;
    for (uint32_t ch = 0; ch < map_.channels(); ++ch) {
        while (!channels_[ch].pending.empty()) {
            uint64_t done = serviceOne(ch);
            if (done > maxDone)
                maxDone = done;
        }
    }
    return maxDone;
}

uint64_t
DramModel::read(uint64_t now, uint64_t addr, size_t bytes)
{
    DramRequest r;
    r.addr = addr;
    r.bytes = bytes;
    return readBatch(now, {r});
}

uint64_t
DramModel::readBatch(uint64_t now, const std::vector<DramRequest> &reqs)
{
    callMax_ = now;
    for (const DramRequest &r : reqs) {
        size_t bytes = r.bytes ? r.bytes : 1;
        uint64_t first = r.addr / map_.burstBytes();
        uint64_t last = (r.addr + bytes - 1) / map_.burstBytes();
        for (uint64_t bi = first; bi <= last; ++bi) {
            PendingBurst p;
            p.arrival = now;
            p.coord = map_.decode(bi * map_.burstBytes());
            p.seq = seq_++;
            enqueueBurst(p.coord.channel, p);
            ++bursts_;
            bytesRead_ += map_.burstBytes();
        }
    }
    return drainAll();
}

void
DramModel::exportStats(StatGroup &g) const
{
    g.inc("dram_row_hits", hits_);
    g.inc("dram_row_misses", misses_);
    g.inc("dram_row_conflicts", conflicts_);
    g.inc("dram_bursts", bursts_);
    g.inc("dram_bytes", bytesRead_);
    g.inc("dram_row_hit_rate_permille",
          uint64_t(rowHitRate() * 1000.0 + 0.5));
    g.inc("dram_blp_x100",
          uint64_t(meanQueuedBankParallelism() * 100.0 + 0.5));
    g.inc("dram_queue_peak", maxQueueOccupancy_);
    for (uint32_t ch = 0; ch < map_.channels(); ++ch) {
        for (uint32_t b = 0; b < map_.banksPerChannel(); ++b) {
            const DramBankCounters &bc = bankCounters(ch, b);
            if (bc.hits + bc.misses + bc.conflicts == 0)
                continue;
            std::string prefix =
                "dram_c" + std::to_string(ch) + "_b" + std::to_string(b);
            g.inc(prefix + "_hits", bc.hits);
            g.inc(prefix + "_misses", bc.misses);
            g.inc(prefix + "_conflicts", bc.conflicts);
        }
    }
}

// ---------------------------------------------------------------------------
// DmaSession
// ---------------------------------------------------------------------------

DmaSession::DmaSession(DramModel &dram, uint32_t wordBytes)
    : dram_(dram), wordBytes_(wordBytes ? wordBytes : 1)
{
}

void
DmaSession::requestWord(uint64_t addr)
{
    pending_.push_back(addr - addr % wordBytes_);
    ++words_;
}

uint64_t
DmaSession::complete(uint64_t now)
{
    if (pending_.empty())
        return now;
    std::sort(pending_.begin(), pending_.end());

    // Merge sorted words into contiguous runs, never crossing a
    // row-stripe window so every run stays a same-row burst train.
    const uint64_t rowSpan = dram_.map().rowSpanBytes();
    std::vector<DramRequest> reqs;
    uint64_t runStart = pending_[0];
    uint64_t runEnd = runStart + wordBytes_;
    for (size_t i = 1; i < pending_.size(); ++i) {
        uint64_t a = pending_[i];
        if (a < runEnd) {
            ++duplicates_;
            continue;
        }
        if (a == runEnd && a / rowSpan == runStart / rowSpan) {
            runEnd = a + wordBytes_;
            continue;
        }
        reqs.push_back({runStart, size_t(runEnd - runStart)});
        runStart = a;
        runEnd = a + wordBytes_;
    }
    reqs.push_back({runStart, size_t(runEnd - runStart)});
    runs_ += reqs.size();
    pending_.clear();
    return dram_.readBatch(now, reqs);
}

} // namespace arch
} // namespace reason
