#include "compiler/compile.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "core/regularize.h"
#include "util/logging.h"

namespace reason {
namespace compiler {

namespace {

using core::Dag;
using core::DagNode;
using core::DagOp;
using core::NodeId;

/** A DAG value expressed as an affine transform of a base value. */
struct Resolved
{
    enum class Kind : uint8_t { Op, Input, Constant };
    Kind kind = Kind::Constant;
    NodeId node = core::kInvalidNode; ///< Op: the materialized op node
    uint32_t tag = 0;                 ///< Input: external slot
    double a = 1.0;
    double b = 0.0;
};

/** Index of tree node (level, pos) in root-first level order. */
size_t
nodeIndex(uint32_t level, uint32_t pos)
{
    return (size_t(1) << level) - 1 + pos;
}

TreeOp
opToTreeOp(DagOp op)
{
    switch (op) {
      case DagOp::Sum: return TreeOp::Add;
      case DagOp::Product: return TreeOp::Mul;
      case DagOp::Max: return TreeOp::Max;
      case DagOp::Min: return TreeOp::Min;
      default: panic("op %s has no tree opcode", core::dagOpName(op));
    }
}

class Compiler
{
  public:
    Compiler(const Dag &dag, const TargetConfig &target)
        : dag_(dag), target_(target)
    {
    }

    Program run();

  private:
    Resolved resolve(NodeId id);
    void countEffectiveConsumers();
    /** Create (or find) the block materializing op node `op_node`. */
    uint32_t blockFor(NodeId op_node);
    void growBlock(uint32_t blk, NodeId id, uint32_t level, uint32_t pos,
                   double scale);
    void placeOperand(uint32_t blk, const Resolved &spec, double scale,
                      uint32_t level, uint32_t pos);
    static bool canDistributeScale(DagOp op, double scale);
    void assignPesAndBanks();
    void scheduleBlocks();

    const Dag &dag_;
    TargetConfig target_;
    Program prog_;

    std::vector<Resolved> resolved_;
    std::vector<bool> resolvedReady_;
    std::vector<uint32_t> effConsumers_;
    std::map<NodeId, uint32_t> blockOfNode_;
    /** Operand slots waiting for a producer block's output location. */
    struct PendingOperand
    {
        uint32_t block;
        uint32_t slot;
        NodeId producer;
    };
    std::vector<PendingOperand> pending_;
    std::vector<uint32_t> blockPe_;
    uint64_t replicated_ = 0;
};

Resolved
Compiler::resolve(NodeId id)
{
    if (resolvedReady_[id])
        return resolved_[id];
    const DagNode &n = dag_.node(id);
    Resolved r;
    switch (n.op) {
      case DagOp::Input:
        r.kind = Resolved::Kind::Input;
        r.tag = n.tag;
        break;
      case DagOp::Const:
        r.kind = Resolved::Kind::Constant;
        r.a = 0.0;
        r.b = n.value;
        break;
      case DagOp::Not: {
        Resolved c = resolve(n.inputs[0]);
        r = c;
        r.a = -c.a;
        r.b = 1.0 - c.b;
        break;
      }
      default: {
        if (n.inputs.size() == 1) {
            // Unary Sum carries a scale; unary Product/Max/Min are
            // identities.
            Resolved c = resolve(n.inputs[0]);
            double w = (n.op == DagOp::Sum && !n.weights.empty())
                           ? n.weights[0]
                           : 1.0;
            r = c;
            r.a = w * c.a;
            r.b = w * c.b;
        } else {
            r.kind = Resolved::Kind::Op;
            r.node = id;
        }
        break;
      }
    }
    resolved_[id] = r;
    resolvedReady_[id] = true;
    return r;
}

void
Compiler::countEffectiveConsumers()
{
    effConsumers_.assign(dag_.numNodes(), 0);
    for (NodeId id = 0; id < dag_.numNodes(); ++id) {
        const DagNode &n = dag_.node(id);
        if (n.op == DagOp::Input || n.op == DagOp::Const ||
            n.op == DagOp::Not || n.inputs.size() == 1)
            continue; // unary chains are folded; count at their consumers
        for (NodeId c : n.inputs) {
            Resolved spec = resolve(c);
            if (spec.kind == Resolved::Kind::Op)
                ++effConsumers_[spec.node];
        }
    }
    Resolved root = resolve(dag_.root());
    if (root.kind == Resolved::Kind::Op)
        ++effConsumers_[root.node];
}

bool
Compiler::canDistributeScale(DagOp op, double scale)
{
    if (scale == 1.0)
        return true;
    switch (op) {
      case DagOp::Product:
      case DagOp::Sum:
        return true; // push into one factor / distribute over weights
      case DagOp::Max:
      case DagOp::Min:
        return scale > 0.0; // positive scaling preserves selection
      default:
        return false;
    }
}

void
Compiler::placeOperand(uint32_t blk, const Resolved &spec, double scale,
                       uint32_t level, uint32_t pos)
{
    // For Kind::Op, ensure the producer block exists first (this may
    // reallocate the block vector, so take references afterwards).
    if (spec.kind == Resolved::Kind::Op)
        blockFor(spec.node);

    const uint32_t depth = target_.treeDepth;
    reasonAssert(level <= depth, "operand level out of range");
    uint32_t slot = pos << (depth - level);
    Block &block = prog_.blocks[blk];
    for (uint32_t j = level; j < depth; ++j)
        block.nodeOps[nodeIndex(j, pos << (j - level))] = TreeOp::PassLeft;

    OperandRef &op = block.operands[slot];
    op.valid = true;
    switch (spec.kind) {
      case Resolved::Kind::Constant:
        op.fetch = false;
        op.a = 0.0;
        op.b = scale * spec.b;
        break;
      case Resolved::Kind::Input:
        op.fetch = true;
        op.a = scale * spec.a;
        op.b = scale * spec.b;
        // bank/reg patched from the input placement table later; encode
        // the tag temporarily in `bank` with a sentinel reg.
        op.bank = static_cast<uint16_t>(spec.tag);
        op.reg = 0xffff;
        break;
      case Resolved::Kind::Op:
        op.fetch = true;
        op.a = scale * spec.a;
        op.b = scale * spec.b;
        pending_.push_back({blk, slot, spec.node});
        break;
    }
}

void
Compiler::growBlock(uint32_t blk, NodeId id, uint32_t level, uint32_t pos,
                    double scale)
{
    const DagNode &n = dag_.node(id);
    reasonAssert(n.inputs.size() == 2, "blocks grow over binary ops");
    prog_.blocks[blk].nodeOps[nodeIndex(level, pos)] = opToTreeOp(n.op);
    ++prog_.blocks[blk].fusedNodes;

    // How the pending scale propagates to each child.
    double child_scale[2] = {1.0, 1.0};
    if (n.op == DagOp::Sum) {
        double w0 = n.weights.empty() ? 1.0 : n.weights[0];
        double w1 = n.weights.empty() ? 1.0 : n.weights[1];
        child_scale[0] = scale * w0;
        child_scale[1] = scale * w1;
    } else if (n.op == DagOp::Product) {
        child_scale[0] = scale; // absorb into one factor
        child_scale[1] = 1.0;
    } else {
        // Max/Min: scale > 0 guaranteed by the fusion guard.
        child_scale[0] = scale;
        child_scale[1] = scale;
    }

    for (uint32_t k = 0; k < 2; ++k) {
        NodeId child = n.inputs[k];
        Resolved spec = resolve(child);
        uint32_t cpos = 2 * pos + k;
        double s = child_scale[k];
        bool fusable =
            spec.kind == Resolved::Kind::Op && spec.b == 0.0 &&
            effConsumers_[spec.node] == 1 &&
            level + 1 < target_.treeDepth &&
            canDistributeScale(dag_.node(spec.node).op, s * spec.a);
        if (fusable) {
            if (spec.a != 1.0 || s != 1.0)
                ++replicated_; // modifier work replicated into the block
            growBlock(blk, spec.node, level + 1, cpos, s * spec.a);
        } else {
            placeOperand(blk, spec, s, level + 1, cpos);
        }
    }
}

uint32_t
Compiler::blockFor(NodeId op_node)
{
    auto it = blockOfNode_.find(op_node);
    if (it != blockOfNode_.end())
        return it->second;

    uint32_t idx = static_cast<uint32_t>(prog_.blocks.size());
    blockOfNode_[op_node] = idx;
    prog_.blocks.emplace_back();
    prog_.blocks[idx].operands.assign(prog_.leavesPerPe(), OperandRef{});
    prog_.blocks[idx].nodeOps.assign(prog_.nodesPerPe(), TreeOp::Nop);
    prog_.blocks[idx].dagRoot = op_node;
    growBlock(idx, op_node, 0, 0, 1.0);
    return idx;
}

void
Compiler::assignPesAndBanks()
{
    size_t nblocks = prog_.blocks.size();
    // Dependency lists from pending operand records.
    for (const auto &p : pending_)
        prog_.blocks[p.block].depends.push_back(
            blockOfNode_.at(p.producer));

    // Dependence level of each block (producers shallower).  Block
    // indices are not topologically ordered in general, so relax to a
    // fixpoint (the dependence graph is acyclic).
    std::vector<uint32_t> level(nblocks, 0);
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t i = 0; i < nblocks; ++i) {
            for (uint32_t d : prog_.blocks[i].depends) {
                if (level[i] < level[d] + 1) {
                    level[i] = level[d] + 1;
                    changed = true;
                }
            }
        }
    }

    // PE assignment: round-robin within increasing level, spreading
    // parallel work across PEs.
    std::vector<uint32_t> order(nblocks);
    for (size_t i = 0; i < nblocks; ++i)
        order[i] = static_cast<uint32_t>(i);
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t x, uint32_t y) {
                         return level[x] < level[y];
                     });
    blockPe_.assign(nblocks, 0);
    uint32_t rr = 0;
    for (uint32_t b : order)
        blockPe_[b] = rr++ % target_.numPes;

    // Output banks: PE p owns bank p (one-bank-one-PE).  Register index
    // is sequential per bank (hardware auto write-address); overflow is
    // counted as spills.
    std::vector<uint32_t> bank_fill(target_.numBanks, 0);
    for (uint32_t b = 0; b < nblocks; ++b) {
        Block &block = prog_.blocks[b];
        block.dest.bank = static_cast<uint16_t>(blockPe_[b]);
        block.dest.reg =
            static_cast<uint16_t>(bank_fill[block.dest.bank]++);
    }

    // External inputs: spread over banks not owned by PEs when possible.
    uint32_t input_bank_lo =
        target_.numBanks > target_.numPes ? target_.numPes : 0;
    uint32_t input_banks =
        std::max(1u, target_.numBanks - input_bank_lo);
    std::vector<InputPlacement> placement(dag_.numInputs());
    std::vector<bool> have(dag_.numInputs(), false);
    uint32_t next_bank = 0;
    for (NodeId id = 0; id < dag_.numNodes(); ++id) {
        const DagNode &n = dag_.node(id);
        if (n.op != DagOp::Input || have[n.tag])
            continue;
        uint16_t bank = static_cast<uint16_t>(
            input_bank_lo + (next_bank++ % input_banks));
        placement[n.tag] = {n.tag, bank,
                            static_cast<uint16_t>(bank_fill[bank]++)};
        have[n.tag] = true;
    }
    for (uint32_t t = 0; t < dag_.numInputs(); ++t)
        if (have[t])
            prog_.inputs.push_back(placement[t]);

    // Patch operand references.
    for (auto &block : prog_.blocks) {
        for (auto &op : block.operands) {
            if (op.valid && op.fetch && op.reg == 0xffff) {
                const InputPlacement &p = placement[op.bank];
                op.bank = p.bank;
                op.reg = p.reg;
            }
        }
    }
    for (const auto &p : pending_) {
        const Block &producer =
            prog_.blocks[blockOfNode_.at(p.producer)];
        OperandRef &op = prog_.blocks[p.block].operands[p.slot];
        op.bank = producer.dest.bank;
        op.reg = producer.dest.reg;
    }

    // Spill accounting: values beyond R per bank.
    uint64_t spills = 0;
    for (uint32_t bk = 0; bk < target_.numBanks; ++bk)
        if (bank_fill[bk] > target_.regsPerBank)
            spills += bank_fill[bk] - target_.regsPerBank;
    prog_.stats.spillValues = spills;
}

void
Compiler::scheduleBlocks()
{
    const size_t nblocks = prog_.blocks.size();
    std::vector<std::vector<uint32_t>> consumers(nblocks);
    for (uint32_t b = 0; b < nblocks; ++b)
        for (uint32_t d : prog_.blocks[b].depends)
            consumers[d].push_back(b);

    // Priority: height = longest path toward any final consumer.
    // Relax to a fixpoint (indices are not topologically sorted).
    std::vector<uint32_t> height(nblocks, 0);
    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t b = 0; b < nblocks; ++b) {
            for (uint32_t d : prog_.blocks[b].depends) {
                if (height[d] < height[b] + 1) {
                    height[d] = height[b] + 1;
                    changed = true;
                }
            }
        }
    }

    const uint32_t latency = target_.pipelineLatency();
    std::vector<uint64_t> ready_cycle(nblocks, 0);
    std::vector<uint32_t> unmet(nblocks, 0);
    for (uint32_t b = 0; b < nblocks; ++b)
        unmet[b] = static_cast<uint32_t>(prog_.blocks[b].depends.size());

    std::vector<uint32_t> pool;
    for (uint32_t b = 0; b < nblocks; ++b)
        if (unmet[b] == 0)
            pool.push_back(b);

    uint64_t cycle = 0;
    size_t issued = 0;
    std::vector<IssueSlot> schedule;
    while (issued < nblocks) {
        std::vector<uint32_t> avail;
        for (uint32_t b : pool)
            if (ready_cycle[b] <= cycle)
                avail.push_back(b);
        std::sort(avail.begin(), avail.end(),
                  [&](uint32_t x, uint32_t y) {
                      if (height[x] != height[y])
                          return height[x] > height[y];
                      return x < y;
                  });
        std::vector<bool> pe_busy(target_.numPes, false);
        size_t issued_now = 0;
        for (uint32_t b : avail) {
            uint32_t pe = blockPe_[b];
            if (pe_busy[pe])
                continue;
            pe_busy[pe] = true;
            schedule.push_back({cycle, pe, b});
            pool.erase(std::find(pool.begin(), pool.end(), b));
            ++issued;
            ++issued_now;
            for (uint32_t c : consumers[b]) {
                ready_cycle[c] =
                    std::max(ready_cycle[c], cycle + latency);
                if (--unmet[c] == 0)
                    pool.push_back(c);
            }
        }
        ++cycle;
        if (issued_now == 0 && pool.empty() && issued < nblocks)
            panic("scheduler deadlock: cyclic block dependencies");
    }
    prog_.schedule = std::move(schedule);
    prog_.stats.scheduleLength =
        prog_.schedule.empty() ? 0
                               : prog_.schedule.back().cycle + latency;
}

Program
Compiler::run()
{
    prog_.treeDepth = target_.treeDepth;
    prog_.numPes = target_.numPes;
    prog_.numBanks = target_.numBanks;
    prog_.regsPerBank = target_.regsPerBank;

    resolved_.resize(dag_.numNodes());
    resolvedReady_.assign(dag_.numNodes(), false);
    countEffectiveConsumers();

    Resolved root = resolve(dag_.root());
    uint32_t root_block;
    if (root.kind == Resolved::Kind::Op && root.a == 1.0 &&
        root.b == 0.0) {
        root_block = blockFor(root.node);
    } else {
        // Degenerate or affine-wrapped root: single-operand block that
        // passes the (transformed) value to the tree root.
        root_block = static_cast<uint32_t>(prog_.blocks.size());
        prog_.blocks.emplace_back();
        prog_.blocks[root_block].operands.assign(prog_.leavesPerPe(),
                                                 OperandRef{});
        prog_.blocks[root_block].nodeOps.assign(prog_.nodesPerPe(),
                                                TreeOp::Nop);
        prog_.blocks[root_block].dagRoot = dag_.root();
        placeOperand(root_block, root, 1.0, 0, 0);
    }
    prog_.rootBlock = root_block;

    assignPesAndBanks();
    scheduleBlocks();

    prog_.stats.numBlocks = prog_.blocks.size();
    size_t fused = 0;
    size_t active_leaves = 0;
    for (const auto &b : prog_.blocks) {
        fused += b.fusedNodes;
        for (const auto &op : b.operands)
            if (op.valid)
                ++active_leaves;
    }
    prog_.stats.fusedNodes = fused;
    prog_.stats.replicatedNodes = replicated_;
    prog_.stats.avgLeafUtilization =
        prog_.blocks.empty()
            ? 0.0
            : static_cast<double>(active_leaves) /
                  (static_cast<double>(prog_.blocks.size()) *
                   static_cast<double>(prog_.leavesPerPe()));
    return std::move(prog_);
}

} // namespace

Program
compile(const core::Dag &dag, const TargetConfig &target)
{
    reasonAssert(target.treeDepth >= 1 && target.treeDepth <= 8,
                 "tree depth must be in [1,8]");
    if (!dag.isTwoInput()) {
        core::Dag copy = dag;
        core::regularizeTwoInput(copy);
        Compiler c(copy, target);
        return c.run();
    }
    Compiler c(dag, target);
    return c.run();
}

const char *
treeOpName(TreeOp op)
{
    switch (op) {
      case TreeOp::Add: return "add";
      case TreeOp::Mul: return "mul";
      case TreeOp::Max: return "max";
      case TreeOp::Min: return "min";
      case TreeOp::PassLeft: return "pass";
      case TreeOp::Nop: return "nop";
    }
    return "?";
}

std::string
Program::toString() const
{
    std::ostringstream os;
    os << "program: " << blocks.size() << " blocks, " << schedule.size()
       << " issue slots, depth " << treeDepth << ", PEs " << numPes
       << "\n";
    for (size_t i = 0; i < blocks.size() && i < 64; ++i) {
        const Block &b = blocks[i];
        os << "  block " << i << " (dag %" << b.dagRoot << ") -> bank "
           << b.dest.bank << " reg " << b.dest.reg << " [";
        for (size_t k = 0; k < b.nodeOps.size(); ++k)
            os << (k ? " " : "") << treeOpName(b.nodeOps[k]);
        os << "]\n";
    }
    return os.str();
}

} // namespace compiler
} // namespace reason
