/**
 * @file
 * SpMSpM-mode tests (Sec. V-B): CSR integrity, reference sparse
 * kernels, and the property that sparse products mapped through the
 * unified DAG and executed on the cycle simulator reproduce the
 * reference results exactly.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "arch/accelerator.h"
#include "arch/spmspm.h"
#include "compiler/compile.h"
#include "util/numeric.h"
#include "util/rng.h"

using namespace reason;
using namespace reason::arch;

namespace {

CsrMatrix
smallMatrix()
{
    // [[2, 0, 1],
    //  [0, 0, 0],
    //  [3, 4, 0]]
    CsrMatrix m;
    m.rows = 3;
    m.cols = 3;
    m.rowPtr = {0, 2, 2, 4};
    m.colIdx = {0, 2, 0, 1};
    m.values = {2.0, 1.0, 3.0, 4.0};
    m.validate();
    return m;
}

} // namespace

TEST(Csr, ValidationAndDenseRow)
{
    CsrMatrix m = smallMatrix();
    EXPECT_EQ(m.nnz(), 4u);
    auto r0 = m.denseRow(0);
    EXPECT_DOUBLE_EQ(r0[0], 2.0);
    EXPECT_DOUBLE_EQ(r0[1], 0.0);
    EXPECT_DOUBLE_EQ(r0[2], 1.0);
    auto r1 = m.denseRow(1);
    EXPECT_DOUBLE_EQ(r1[0] + r1[1] + r1[2], 0.0);
}

TEST(Csr, RandomSparseDensity)
{
    Rng rng(5);
    CsrMatrix m = randomSparse(rng, 40, 50, 0.15);
    EXPECT_NEAR(m.density(), 0.15, 0.05);
    m.validate();
}

TEST(Spmv, HandComputed)
{
    CsrMatrix m = smallMatrix();
    auto y = spmv(m, {1.0, 2.0, 3.0});
    ASSERT_EQ(y.size(), 3u);
    EXPECT_DOUBLE_EQ(y[0], 5.0);  // 2*1 + 1*3
    EXPECT_DOUBLE_EQ(y[1], 0.0);
    EXPECT_DOUBLE_EQ(y[2], 11.0); // 3*1 + 4*2
}

TEST(Spmspm, MatchesDenseMultiply)
{
    Rng rng(6);
    CsrMatrix a = randomSparse(rng, 8, 10, 0.3);
    CsrMatrix b = randomSparse(rng, 10, 6, 0.3);
    CsrMatrix c = spmspm(a, b);
    EXPECT_EQ(c.rows, 8u);
    EXPECT_EQ(c.cols, 6u);
    // Check every entry against the dense product.
    for (uint32_t i = 0; i < 8; ++i) {
        auto crow = c.denseRow(i);
        for (uint32_t j = 0; j < 6; ++j) {
            double want = 0.0;
            auto arow = a.denseRow(i);
            for (uint32_t k = 0; k < 10; ++k)
                want += arow[k] * b.denseRow(k)[j];
            EXPECT_NEAR(crow[j], want, 1e-9) << i << "," << j;
        }
    }
}

TEST(SpmvDag, EvaluatesToReference)
{
    Rng rng(7);
    CsrMatrix a = randomSparse(rng, 6, 8, 0.4);
    std::vector<core::NodeId> row_nodes;
    core::Dag dag = buildSpmvDag(a, &row_nodes);
    std::vector<double> x(8);
    for (auto &v : x)
        v = rng.uniformReal(-1.0, 1.0);
    auto vals = dag.evaluate(x);
    auto y = spmv(a, x);
    for (uint32_t r = 0; r < a.rows; ++r) {
        if (row_nodes[r] == core::kInvalidNode) {
            EXPECT_DOUBLE_EQ(y[r], 0.0);
        } else {
            EXPECT_NEAR(vals[row_nodes[r]], y[r], 1e-12);
        }
    }
}

/** The central SpMSpM-mode property: accelerator == reference. */
class SpmvOnFabric : public ::testing::TestWithParam<int>
{
};

TEST_P(SpmvOnFabric, AcceleratorMatchesReference)
{
    Rng rng(GetParam() * 7907 + 1);
    uint32_t rows = 4 + GetParam() % 12;
    uint32_t cols = 6 + (GetParam() * 3) % 14;
    double density = 0.15 + 0.05 * (GetParam() % 5);
    CsrMatrix a = randomSparse(rng, rows, cols, density);

    // Random combination weights turn the whole product into one root
    // value: sum_r w_r * y_r.
    std::vector<double> combine(rows);
    for (auto &w : combine)
        w = rng.uniformReal(0.5, 1.5);
    core::Dag dag = buildSpmvDag(a, nullptr, &combine);

    std::vector<double> x(cols);
    for (auto &v : x)
        v = rng.uniformReal(-1.0, 1.0);
    auto y = spmv(a, x);
    double want = 0.0;
    for (uint32_t r = 0; r < rows; ++r)
        want += combine[r] * y[r];

    arch::ArchConfig cfg;
    compiler::Program prog =
        compiler::compile(dag, cfg.compilerTarget());
    arch::Accelerator accel(cfg);
    double got = accel.run(prog, x).rootValue;
    EXPECT_TRUE(nearlyEqual(want, got, 1e-9, 1e-9))
        << "want " << want << " got " << got;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SpmvOnFabric, ::testing::Range(0, 20));

TEST(SpmspmColumn, AcceleratorComputesProductColumn)
{
    Rng rng(9);
    CsrMatrix a = randomSparse(rng, 6, 7, 0.35);
    CsrMatrix b = randomSparse(rng, 7, 4, 0.35);
    CsrMatrix c = spmspm(a, b);

    // Column j of C via the fabric: feed column j of B as the input
    // vector and read each row output through unit combine weights.
    for (uint32_t j = 0; j < b.cols; ++j) {
        std::vector<double> bcol(b.rows, 0.0);
        for (uint32_t r = 0; r < b.rows; ++r)
            bcol[r] = b.denseRow(r)[j];
        // One-hot combines extract individual rows of A * bcol.
        for (uint32_t r = 0; r < a.rows; ++r) {
            std::vector<double> combine(a.rows, 0.0);
            combine[r] = 1.0;
            core::Dag dag = buildSpmspmColumnDag(a, combine);
            arch::ArchConfig cfg;
            compiler::Program prog =
                compiler::compile(dag, cfg.compilerTarget());
            arch::Accelerator accel(cfg);
            double got = accel.run(prog, bcol).rootValue;
            EXPECT_NEAR(got, c.denseRow(r)[j], 1e-9);
        }
    }
}

TEST(Spmv, MacsCountEqualsNnz)
{
    Rng rng(10);
    CsrMatrix a = randomSparse(rng, 12, 12, 0.2);
    EXPECT_EQ(spmvMacs(a), a.nnz());
}

TEST(Spmspm, EmptyRowsPropagate)
{
    CsrMatrix a = smallMatrix(); // row 1 empty
    CsrMatrix b = smallMatrix();
    CsrMatrix c = spmspm(a, b);
    EXPECT_EQ(c.rowPtr[1], c.rowPtr[2]) << "empty row stays empty";
}
