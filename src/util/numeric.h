/**
 * @file
 * Numerically robust helpers shared by the probabilistic substrates.
 */

#ifndef REASON_UTIL_NUMERIC_H
#define REASON_UTIL_NUMERIC_H

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace reason {

/** Negative infinity, the additive identity of log-space sums. */
inline constexpr double kLogZero = -std::numeric_limits<double>::infinity();

/** log(exp(a) + exp(b)) without overflow. */
inline double
logAdd(double a, double b)
{
    if (a == kLogZero)
        return b;
    if (b == kLogZero)
        return a;
    double hi = std::max(a, b);
    double lo = std::min(a, b);
    return hi + std::log1p(std::exp(lo - hi));
}

/** log(sum_i exp(xs[i])) without overflow. */
inline double
logSumExp(const std::vector<double> &xs)
{
    double hi = kLogZero;
    for (double x : xs)
        hi = std::max(hi, x);
    if (hi == kLogZero)
        return kLogZero;
    double acc = 0.0;
    for (double x : xs)
        acc += std::exp(x - hi);
    return hi + std::log(acc);
}

/** Relative closeness check for floating comparisons in tests/models. */
inline bool
nearlyEqual(double a, double b, double rel_tol = 1e-9,
            double abs_tol = 1e-12)
{
    double diff = std::fabs(a - b);
    if (diff <= abs_tol)
        return true;
    double scale = std::max(std::fabs(a), std::fabs(b));
    return diff <= rel_tol * scale;
}

/** Ceiling division for positive integers. */
template <typename T>
constexpr T
ceilDiv(T a, T b)
{
    return (a + b - 1) / b;
}

/** Integer base-2 ceiling log; ceilLog2(1) == 0. */
inline uint32_t
ceilLog2(uint64_t v)
{
    uint32_t bits = 0;
    uint64_t x = 1;
    while (x < v) {
        x <<= 1;
        ++bits;
    }
    return bits;
}

/** Next power of two >= v (v >= 1). */
inline uint64_t
nextPow2(uint64_t v)
{
    return uint64_t(1) << ceilLog2(v);
}

} // namespace reason

#endif // REASON_UTIL_NUMERIC_H
