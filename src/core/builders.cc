#include "core/builders.h"

#include "util/logging.h"

namespace reason {
namespace core {

Dag
buildFromCnf(const logic::CnfFormula &formula)
{
    Dag dag;
    std::vector<NodeId> var_node(formula.numVars(), kInvalidNode);
    std::vector<NodeId> neg_node(formula.numVars(), kInvalidNode);
    for (uint32_t v = 0; v < formula.numVars(); ++v)
        var_node[v] = dag.addInput(v);

    auto lit_node = [&](logic::Lit l) -> NodeId {
        if (!l.negated())
            return var_node[l.var()];
        if (neg_node[l.var()] == kInvalidNode)
            neg_node[l.var()] =
                dag.addOp(DagOp::Not, {var_node[l.var()]});
        return neg_node[l.var()];
    };

    std::vector<NodeId> clause_nodes;
    clause_nodes.reserve(formula.numClauses());
    for (const auto &clause : formula.clauses()) {
        if (clause.empty()) {
            clause_nodes.push_back(dag.addConst(0.0));
            continue;
        }
        std::vector<NodeId> lits;
        lits.reserve(clause.size());
        for (const auto &l : clause)
            lits.push_back(lit_node(l));
        clause_nodes.push_back(
            lits.size() == 1 ? lits[0]
                             : dag.addOp(DagOp::Max, std::move(lits)));
    }
    NodeId root;
    if (clause_nodes.empty())
        root = dag.addConst(1.0);
    else if (clause_nodes.size() == 1)
        root = clause_nodes[0];
    else
        root = dag.addOp(DagOp::Min, std::move(clause_nodes));
    dag.markRoot(root);
    dag.validate();
    return dag;
}

Dag
buildFromCircuit(const pc::Circuit &circuit,
                 std::vector<pc::NodeId> *leaf_order)
{
    Dag dag;
    std::vector<NodeId> map(circuit.numNodes(), kInvalidNode);
    std::vector<pc::NodeId> order;
    for (pc::NodeId id = 0; id < circuit.numNodes(); ++id) {
        const pc::PcNode &n = circuit.node(id);
        switch (n.type) {
          case pc::PcNodeType::Leaf:
            map[id] = dag.addInput(static_cast<uint32_t>(order.size()));
            order.push_back(id);
            break;
          case pc::PcNodeType::Product: {
            std::vector<NodeId> inputs;
            inputs.reserve(n.children.size());
            for (pc::NodeId c : n.children)
                inputs.push_back(map[c]);
            map[id] = dag.addOp(DagOp::Product, std::move(inputs));
            break;
          }
          case pc::PcNodeType::Sum: {
            std::vector<NodeId> inputs;
            inputs.reserve(n.children.size());
            for (pc::NodeId c : n.children)
                inputs.push_back(map[c]);
            map[id] =
                dag.addOp(DagOp::Sum, std::move(inputs), n.weights);
            break;
          }
        }
    }
    dag.markRoot(map[circuit.root()]);
    dag.validate();
    if (leaf_order)
        *leaf_order = std::move(order);
    return dag;
}

std::vector<double>
circuitLeafInputs(const pc::Circuit &circuit,
                  const std::vector<pc::NodeId> &leaf_order,
                  const pc::Assignment &x)
{
    std::vector<double> values;
    values.reserve(leaf_order.size());
    for (pc::NodeId id : leaf_order) {
        const pc::PcNode &n = circuit.node(id);
        reasonAssert(n.type == pc::PcNodeType::Leaf,
                     "leaf_order must reference leaves");
        uint32_t v = x[n.var];
        values.push_back(v == pc::kMissing ? 1.0 : n.dist[v]);
    }
    return values;
}

Dag
buildFromHmm(const hmm::Hmm &hmm, const hmm::Sequence &obs)
{
    reasonAssert(!obs.empty(), "HMM DAG needs observations");
    const uint32_t N = hmm.numStates();
    Dag dag;

    // alpha_0[s] = pi_s * b_s(o_0) as constants.
    std::vector<NodeId> alpha(N);
    for (uint32_t s = 0; s < N; ++s)
        alpha[s] = dag.addConst(hmm.initial(s) *
                                hmm.emission(s, obs[0]));

    for (size_t t = 1; t < obs.size(); ++t) {
        std::vector<NodeId> next(N);
        for (uint32_t j = 0; j < N; ++j) {
            // sum_i alpha[i] * a_ij  (transition probs as edge weights)
            std::vector<NodeId> terms;
            std::vector<double> weights;
            for (uint32_t i = 0; i < N; ++i) {
                double a = hmm.transition(i, j);
                if (a <= 0.0)
                    continue;
                terms.push_back(alpha[i]);
                weights.push_back(a);
            }
            NodeId mix = terms.empty()
                             ? dag.addConst(0.0)
                             : dag.addOp(DagOp::Sum, std::move(terms),
                                         std::move(weights));
            NodeId emit = dag.addConst(hmm.emission(j, obs[t]));
            next[j] = dag.addOp(DagOp::Product, {mix, emit});
        }
        alpha = std::move(next);
    }
    NodeId root = alpha.size() == 1
                      ? alpha[0]
                      : dag.addOp(DagOp::Sum, std::move(alpha));
    dag.markRoot(root);
    dag.validate();
    return dag;
}

Dag
buildFromHmmViterbi(const hmm::Hmm &hmm, const hmm::Sequence &obs)
{
    reasonAssert(!obs.empty(), "HMM DAG needs observations");
    const uint32_t N = hmm.numStates();
    Dag dag;

    std::vector<NodeId> delta(N);
    for (uint32_t s = 0; s < N; ++s)
        delta[s] = dag.addConst(hmm.initial(s) *
                                hmm.emission(s, obs[0]));

    for (size_t t = 1; t < obs.size(); ++t) {
        std::vector<NodeId> next(N);
        for (uint32_t j = 0; j < N; ++j) {
            std::vector<NodeId> cands;
            for (uint32_t i = 0; i < N; ++i) {
                double a = hmm.transition(i, j);
                if (a <= 0.0)
                    continue;
                NodeId w = dag.addConst(a);
                cands.push_back(
                    dag.addOp(DagOp::Product, {delta[i], w}));
            }
            NodeId best = cands.empty()
                              ? dag.addConst(0.0)
                              : (cands.size() == 1
                                     ? cands[0]
                                     : dag.addOp(DagOp::Max,
                                                 std::move(cands)));
            NodeId emit = dag.addConst(hmm.emission(j, obs[t]));
            next[j] = dag.addOp(DagOp::Product, {best, emit});
        }
        delta = std::move(next);
    }
    NodeId root = delta.size() == 1
                      ? delta[0]
                      : dag.addOp(DagOp::Max, std::move(delta));
    dag.markRoot(root);
    dag.validate();
    return dag;
}

} // namespace core
} // namespace reason
