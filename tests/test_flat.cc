/**
 * @file
 * Tests for the flat CSR kernel engine (core/flat.h, pc/flat_pc.h):
 * flat and batched evaluation must match the reference walkers
 * (Dag::evaluate, Circuit::evaluate/logLikelihood, logDerivatives,
 * computeFlows) to <= 1e-12 across randomized DAGs covering every op,
 * weighted and unweighted sums, and zero-probability leaves.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/dag.h"
#include "core/flat.h"
#include "pc/flat_pc.h"
#include "pc/flows.h"
#include "pc/pc.h"
#include "pc/queries.h"
#include "util/numeric.h"
#include "util/rng.h"

using namespace reason;

namespace {

/** Random DAG exercising every opcode, with weighted and plain sums. */
core::Dag
randomDag(Rng &rng, uint32_t num_inputs, uint32_t num_consts,
          uint32_t num_ops)
{
    core::Dag dag;
    for (uint32_t i = 0; i < num_inputs; ++i)
        dag.addInput();
    for (uint32_t i = 0; i < num_consts; ++i)
        dag.addConst(rng.uniformReal(-2.0, 2.0));
    for (uint32_t i = 0; i < num_ops; ++i) {
        size_t existing = dag.numNodes();
        uint32_t fan_in = uint32_t(rng.uniformInt(1, 4));
        std::vector<core::NodeId> operands;
        for (uint32_t k = 0; k < fan_in; ++k)
            operands.push_back(
                core::NodeId(rng.uniformInt(0, int64_t(existing) - 1)));
        switch (rng.uniformInt(0, 4)) {
          case 0: {
            if (rng.bernoulli(0.5)) {
                std::vector<double> weights;
                for (uint32_t k = 0; k < fan_in; ++k)
                    weights.push_back(rng.uniformReal(-1.5, 1.5));
                dag.addOp(core::DagOp::Sum, std::move(operands),
                          std::move(weights));
            } else {
                dag.addOp(core::DagOp::Sum, std::move(operands));
            }
            break;
          }
          case 1:
            dag.addOp(core::DagOp::Product, std::move(operands));
            break;
          case 2:
            dag.addOp(core::DagOp::Max, std::move(operands));
            break;
          case 3:
            dag.addOp(core::DagOp::Min, std::move(operands));
            break;
          default:
            operands.resize(1);
            dag.addOp(core::DagOp::Not, std::move(operands));
            break;
        }
    }
    dag.validate();
    return dag;
}

std::vector<double>
randomInputs(Rng &rng, uint32_t n)
{
    std::vector<double> in(n);
    for (auto &v : in)
        v = rng.uniformReal(-1.0, 1.0);
    return in;
}

} // namespace

TEST(FlatGraph, LoweringPreservesStructure)
{
    Rng rng(11);
    core::Dag dag = randomDag(rng, 6, 3, 60);
    core::FlatGraph flat = core::lowerDag(dag);
    EXPECT_EQ(flat.numNodes(), dag.numNodes());
    EXPECT_EQ(flat.numEdges(), dag.numEdges());
    EXPECT_EQ(flat.numInputs, dag.numInputs());
    EXPECT_EQ(flat.root, dag.root());
    EXPECT_GT(flat.memoryBytes(), 0u);
    EXPECT_EQ(flat.numLevels(), dag.stats().depth + 1);
}

TEST(FlatGraph, LevelScheduleRespectsDependences)
{
    Rng rng(12);
    core::Dag dag = randomDag(rng, 4, 2, 80);
    core::FlatGraph flat = core::lowerDag(dag);
    // A node scheduled in level L must have all operands in levels < L.
    std::vector<uint32_t> level_of(flat.numNodes(), 0);
    for (size_t l = 0; l < flat.numLevels(); ++l)
        for (uint32_t k = flat.levelOffset[l]; k < flat.levelOffset[l + 1];
             ++k)
            level_of[flat.levelNodes[k]] = uint32_t(l);
    for (size_t l = 0; l < flat.numLevels(); ++l) {
        for (uint32_t k = flat.levelOffset[l]; k < flat.levelOffset[l + 1];
             ++k) {
            uint32_t node = flat.levelNodes[k];
            for (uint32_t e = flat.edgeOffset[node];
                 e < flat.edgeOffset[node + 1]; ++e)
                EXPECT_LT(level_of[flat.edgeTarget[e]], l);
        }
    }
}

TEST(FlatEvaluator, MatchesReferenceAcrossRandomDags)
{
    for (uint64_t seed = 1; seed <= 12; ++seed) {
        Rng rng(seed);
        core::Dag dag =
            randomDag(rng, 3 + seed % 5, 2, 40 + uint32_t(seed) * 10);
        core::FlatGraph flat = core::lowerDag(dag);
        core::Evaluator eval(flat);
        for (int trial = 0; trial < 10; ++trial) {
            auto inputs = randomInputs(rng, dag.numInputs());
            auto want = dag.evaluate(inputs);
            auto got = eval.evaluate(inputs);
            ASSERT_EQ(got.size(), want.size());
            for (size_t i = 0; i < want.size(); ++i)
                EXPECT_NEAR(got[i], want[i], 1e-12) << "node " << i;
            EXPECT_NEAR(eval.evaluateRoot(inputs),
                        dag.evaluateRoot(inputs), 1e-12);
        }
    }
}

TEST(FlatEvaluator, BatchMatchesPerRowEvaluation)
{
    Rng rng(77);
    core::Dag dag = randomDag(rng, 8, 2, 120);
    core::FlatGraph flat = core::lowerDag(dag);
    core::Evaluator eval(flat);

    const size_t rows = 32;
    std::vector<double> batch(rows * dag.numInputs());
    for (auto &v : batch)
        v = rng.uniformReal(-1.0, 1.0);
    std::vector<double> roots(rows);
    eval.evaluateBatch(batch, rows, roots);
    for (size_t r = 0; r < rows; ++r) {
        std::vector<double> row(
            batch.begin() + r * dag.numInputs(),
            batch.begin() + (r + 1) * dag.numInputs());
        EXPECT_NEAR(roots[r], dag.evaluateRoot(row), 1e-12);
    }
}

TEST(FlatEvaluator, ConstantsSurviveRepeatedCalls)
{
    core::Dag dag;
    core::NodeId a = dag.addInput();
    core::NodeId c = dag.addConst(0.75);
    dag.markRoot(dag.addOp(core::DagOp::Sum, {a, c}));
    core::FlatGraph flat = core::lowerDag(dag);
    core::Evaluator eval(flat);
    std::vector<double> in{1.0};
    EXPECT_DOUBLE_EQ(eval.evaluateRoot(in), 1.75);
    in[0] = -0.25;
    EXPECT_DOUBLE_EQ(eval.evaluateRoot(in), 0.5);
    EXPECT_DOUBLE_EQ(eval.evaluateRoot(in), 0.5);
}

TEST(FlatCircuit, LogLikelihoodMatchesReference)
{
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        Rng rng(seed * 13);
        uint32_t vars = 4 + uint32_t(seed % 5);
        uint32_t arity = 2 + uint32_t(seed % 3);
        pc::Circuit c = pc::randomCircuit(rng, vars, arity, 2, 3);
        pc::FlatCircuit flat(c);
        pc::CircuitEvaluator eval(flat);

        for (int trial = 0; trial < 20; ++trial) {
            pc::Assignment x(vars);
            for (uint32_t v = 0; v < vars; ++v) {
                x[v] = rng.bernoulli(0.25)
                           ? pc::kMissing
                           : uint32_t(rng.uniformInt(0, arity - 1));
            }
            auto want = c.evaluate(x);
            auto got = eval.evaluate(x);
            ASSERT_EQ(got.size(), want.size());
            for (size_t i = 0; i < want.size(); ++i) {
                if (want[i] == kLogZero)
                    EXPECT_EQ(got[i], kLogZero) << "node " << i;
                else
                    EXPECT_NEAR(got[i], want[i], 1e-12) << "node " << i;
            }
            double ll = eval.logLikelihood(x);
            double ref = c.logLikelihood(x);
            if (ref == kLogZero)
                EXPECT_EQ(ll, kLogZero);
            else
                EXPECT_NEAR(ll, ref, 1e-12);
        }
    }
}

TEST(FlatCircuit, ZeroProbabilityLeavesPropagate)
{
    // Deterministic leaves create exact zeros that must flow through
    // products and weighted sums identically in both engines.
    pc::Circuit c(2, 2);
    pc::NodeId a0 = c.addLeaf(0, {1.0, 0.0});
    pc::NodeId a1 = c.addLeaf(1, {0.25, 0.75});
    pc::NodeId b0 = c.addLeaf(0, {0.0, 1.0});
    pc::NodeId b1 = c.addLeaf(1, {1.0, 0.0});
    pc::NodeId pa = c.addProduct({a0, a1});
    pc::NodeId pb = c.addProduct({b0, b1});
    c.markRoot(c.addSum({pa, pb}, {0.6, 0.4}));

    pc::FlatCircuit flat(c);
    pc::CircuitEvaluator eval(flat);
    for (uint32_t v0 = 0; v0 < 2; ++v0) {
        for (uint32_t v1 = 0; v1 < 2; ++v1) {
            pc::Assignment x{v0, v1};
            double ref = c.logLikelihood(x);
            double got = eval.logLikelihood(x);
            if (ref == kLogZero)
                EXPECT_EQ(got, kLogZero);
            else
                EXPECT_NEAR(got, ref, 1e-12);
        }
    }
    // (1, 1) is impossible under both mixture components.
    EXPECT_EQ(eval.logLikelihood({1, 1}), kLogZero);
}

TEST(FlatCircuit, BatchMatchesSequential)
{
    Rng rng(3);
    pc::Circuit c = pc::randomCircuit(rng, 8, 2, 2, 4);
    auto data = pc::sampleDataset(rng, c, 64);
    pc::FlatCircuit flat(c);
    pc::CircuitEvaluator eval(flat);
    std::vector<double> out(data.size());
    eval.logLikelihoodBatch(data, out);
    for (size_t i = 0; i < data.size(); ++i)
        EXPECT_NEAR(out[i], c.logLikelihood(data[i]), 1e-12);
}

TEST(FlatCircuit, LogDerivativesMatchReference)
{
    for (uint64_t seed = 2; seed <= 6; ++seed) {
        Rng rng(seed * 7);
        pc::Circuit c = pc::randomCircuit(rng, 6, 2, 2, 3);
        pc::Assignment x(6, pc::kMissing);
        for (uint32_t v = 0; v < 6; v += 2)
            x[v] = uint32_t(rng.uniformInt(0, 1));

        auto want = pc::logDerivatives(c, x);
        pc::FlatCircuit flat(c);
        pc::CircuitEvaluator eval(flat);
        std::vector<double> got;
        pc::logDerivativesInto(flat, eval.evaluate(x), got);
        ASSERT_EQ(got.size(), want.size());
        for (size_t i = 0; i < want.size(); ++i) {
            if (want[i] == kLogZero)
                EXPECT_EQ(got[i], kLogZero) << "node " << i;
            else
                EXPECT_NEAR(got[i], want[i], 1e-12) << "node " << i;
        }
    }
}

TEST(FlatCircuit, FlowAccumulatorMatchesPerSampleReference)
{
    Rng rng(41);
    pc::Circuit c = pc::randomCircuit(rng, 6, 2, 2, 3);
    auto data = pc::sampleDataset(rng, c, 50);

    pc::FlatCircuit flat(c);
    pc::FlowAccumulator acc(flat);
    for (const auto &x : data)
        acc.add(x);

    // Reference: per-sample computeFlows summed by hand.
    std::vector<double> node_ref(c.numNodes(), 0.0);
    std::vector<std::vector<double>> edge_ref(c.numNodes());
    for (size_t i = 0; i < c.numNodes(); ++i)
        edge_ref[i].assign(c.node(pc::NodeId(i)).children.size(), 0.0);
    for (const auto &x : data) {
        pc::EdgeFlows one = pc::computeFlows(c, x);
        for (size_t i = 0; i < c.numNodes(); ++i) {
            node_ref[i] += one.nodeFlows[i];
            for (size_t k = 0; k < one.flows[i].size(); ++k)
                edge_ref[i][k] += one.flows[i][k];
        }
    }

    EXPECT_EQ(acc.count(), data.size());
    for (size_t i = 0; i < c.numNodes(); ++i) {
        EXPECT_NEAR(acc.nodeFlow()[i], node_ref[i], 1e-12) << "node " << i;
        for (size_t k = 0; k < edge_ref[i].size(); ++k)
            EXPECT_NEAR(acc.edgeFlow()[flat.edgeOffset[i] + k],
                        edge_ref[i][k], 1e-12)
                << "edge " << i << "/" << k;
    }
}

TEST(Numeric, CheckedIntPowGuardsOverflow)
{
    uint64_t out = 0;
    EXPECT_TRUE(checkedIntPow(2, 10, 1 << 22, &out));
    EXPECT_EQ(out, 1024u);
    EXPECT_TRUE(checkedIntPow(2, 22, 1 << 22, &out));
    EXPECT_EQ(out, uint64_t(1) << 22);
    EXPECT_FALSE(checkedIntPow(2, 23, 1 << 22, &out));
    EXPECT_FALSE(checkedIntPow(3, 64, 1 << 22, &out)); // would overflow
    EXPECT_TRUE(checkedIntPow(7, 0, 10, &out));
    EXPECT_EQ(out, 1u);
    EXPECT_TRUE(checkedIntPow(0, 3, 10, &out));
    EXPECT_EQ(out, 0u);
}
