/**
 * @file
 * Analytic timing/energy models of the baseline devices the paper
 * compares against (Table III): Xeon CPU, RTX A6000, Orin NX, V100,
 * A100, a TPU-like systolic array, and a DPU-like fixed-function tree
 * array.
 *
 * Substitution note (DESIGN.md): the paper measures real hardware; we
 * model each device by its public peak compute / memory bandwidth and an
 * effective-throughput term for irregular symbolic/probabilistic kernels
 * calibrated from the paper's profiling tables (Tab. II utilizations,
 * Fig. 3 roofline).  Regular (neural) kernels run near the
 * compute/bandwidth roofline; irregular kernels run at device-specific
 * effective rates that reflect warp divergence, cache behavior, and
 * pointer chasing.
 */

#ifndef REASON_BASELINES_DEVICE_H
#define REASON_BASELINES_DEVICE_H

#include <cstdint>
#include <string>
#include <vector>

namespace reason {
namespace baselines {

/** Kernel families profiled in Table II. */
enum class KernelClass : uint8_t
{
    DenseMatMul, ///< neural GEMM / attention
    Softmax,     ///< neural normalization
    SparseMatVec,
    SymbolicBcp, ///< SAT/FOL constraint propagation
    ProbCircuit, ///< PC marginal aggregation
    HmmSequential ///< Bayesian state update
};

const char *kernelClassName(KernelClass cls);

/** Work descriptor for one kernel invocation. */
struct KernelWork
{
    KernelClass cls = KernelClass::DenseMatMul;
    double flops = 0.0;        ///< arithmetic work
    double bytes = 0.0;        ///< memory traffic
    uint64_t dagNodes = 0;     ///< PC/HMM DAG node evaluations
    uint64_t propagations = 0; ///< SAT BCP implications
    uint64_t literalVisits = 0;
};

/** One modeled device. */
struct DeviceModel
{
    std::string name;
    double techNm = 8;
    double peakTflops = 1.0;   ///< dense fp16/fp32 as appropriate
    double dramGBps = 100.0;
    double tdpWatts = 100.0;
    double idleWatts = 10.0;
    /** Fraction of peak achieved on dense kernels. */
    double denseEfficiency = 0.5;
    /** Effective DAG-node evaluations per second (irregular). */
    double dagNodesPerSec = 1e9;
    /** Effective BCP propagations per second. */
    double propsPerSec = 1e7;
    /** Fraction of TDP drawn while running irregular kernels. */
    double irregularPowerFraction = 0.6;
    /**
     * Measured board power during irregular phases, watts; when > 0 it
     * overrides the idle+fraction model (matches the paper's measured
     * per-device energy accounting).
     */
    double irregularActiveWatts = 0.0;

    /** Seconds to execute the kernel on this device. */
    double seconds(const KernelWork &work) const;

    /** Joules for the kernel (power model x time). */
    double joules(const KernelWork &work) const;
};

/** Table III device presets. */
DeviceModel xeonCpu();
DeviceModel rtxA6000();
DeviceModel orinNx();
DeviceModel v100();
DeviceModel a100();
DeviceModel tpuLike();
DeviceModel dpuLike();

/** All baseline devices in Table III order. */
std::vector<DeviceModel> allBaselines();

/**
 * Table II-style micro-metrics of a kernel class on a GPU, derived from
 * an analytic divergence/locality model.
 */
struct GpuKernelMetrics
{
    double computeThroughputPct;
    double aluUtilizationPct;
    double l1ThroughputPct;
    double l2ThroughputPct;
    double l1HitRatePct;
    double l2HitRatePct;
    double dramBwUtilizationPct;
    double warpExecEfficiencyPct;
    double branchEfficiencyPct;
    double eligibleWarpsPct;
};

/** Micro-metrics of a kernel class (A6000-class GPU). */
GpuKernelMetrics gpuKernelMetrics(KernelClass cls);

/** Operational intensity (FLOP/byte) typical of the kernel class. */
double operationalIntensity(KernelClass cls);

} // namespace baselines
} // namespace reason

#endif // REASON_BASELINES_DEVICE_H
