#include "sys/fault.h"

#include <chrono>
#include <cstdlib>
#include <thread>

namespace reason {
namespace sys {

namespace {

std::atomic<FaultPlan *> g_plan{nullptr};

/** splitmix64: full-avalanche mix of a 64-bit state. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Event-class salts keep the per-kind draws independent. */
constexpr uint64_t kSaltReset = 0x7265736574ull;
constexpr uint64_t kSaltTorn = 0x746f726eull;
constexpr uint64_t kSaltShort = 0x73686f7274ull;
constexpr uint64_t kSaltPartial = 0x70617274ull;
constexpr uint64_t kSaltDelay = 0x64656c6179ull;
constexpr uint64_t kSaltStall = 0x7374616c6cull;
constexpr uint64_t kSaltLen = 0x6c656eull;

void
sleepUs(unsigned us)
{
    if (us > 0)
        std::this_thread::sleep_for(std::chrono::microseconds(us));
}

bool
parseDouble(const std::string &text, double *out)
{
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
        return false;
    *out = v;
    return true;
}

bool
parseU64(const std::string &text, uint64_t *out)
{
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0')
        return false;
    *out = v;
    return true;
}

} // namespace

double
FaultPlan::roll(uint64_t index, uint64_t salt) const
{
    const uint64_t h = mix64(mix64(seed_ ^ salt) ^ index);
    // Top 53 bits → uniform double in [0, 1).
    return double(h >> 11) * 0x1.0p-53;
}

FaultAction
FaultPlan::onRecv(size_t wanted)
{
    FaultAction act;
    const uint64_t n =
        ioEvents_.fetch_add(1, std::memory_order_relaxed);
    if (pDelay_ > 0.0 && roll(n, kSaltDelay) < pDelay_) {
        act.delayUs = delayUs_;
        delays_.fetch_add(1, std::memory_order_relaxed);
    }
    if ((pReset_ > 0.0 && roll(n, kSaltReset) < pReset_) ||
        (resetNth_ != 0 && (n + 1) % resetNth_ == 0)) {
        act.reset = true;
        resets_.fetch_add(1, std::memory_order_relaxed);
        return act;
    }
    if (wanted > 1 && pShort_ > 0.0 &&
        roll(n, kSaltShort) < pShort_) {
        // Cap to [1, wanted-1] bytes: the caller's full-read loop must
        // tolerate arbitrary fragmentation.
        act.maxBytes =
            1 + size_t(mix64(mix64(seed_ ^ kSaltLen) ^ n) %
                       uint64_t(wanted - 1));
        shortReads_.fetch_add(1, std::memory_order_relaxed);
    }
    return act;
}

FaultAction
FaultPlan::onSend(size_t wanted)
{
    FaultAction act;
    const uint64_t n =
        ioEvents_.fetch_add(1, std::memory_order_relaxed);
    if (pDelay_ > 0.0 && roll(n, kSaltDelay) < pDelay_) {
        act.delayUs = delayUs_;
        delays_.fetch_add(1, std::memory_order_relaxed);
    }
    if ((pReset_ > 0.0 && roll(n, kSaltReset) < pReset_) ||
        (resetNth_ != 0 && (n + 1) % resetNth_ == 0)) {
        act.reset = true;
        resets_.fetch_add(1, std::memory_order_relaxed);
        return act;
    }
    if (wanted > 1 && pTorn_ > 0.0 && roll(n, kSaltTorn) < pTorn_) {
        // Torn frame: a strict prefix is delivered, then the
        // connection dies — the nastiest transport failure a framed
        // protocol must survive.
        act.maxBytes =
            1 + size_t(mix64(mix64(seed_ ^ kSaltLen) ^ n) %
                       uint64_t(wanted - 1));
        act.resetAfter = true;
        tornFrames_.fetch_add(1, std::memory_order_relaxed);
        return act;
    }
    if (wanted > 1 && pPartial_ > 0.0 &&
        roll(n, kSaltPartial) < pPartial_) {
        act.maxBytes =
            1 + size_t(mix64(mix64(seed_ ^ kSaltLen) ^ n) %
                       uint64_t(wanted - 1));
        partialWrites_.fetch_add(1, std::memory_order_relaxed);
    }
    return act;
}

void
FaultPlan::dispatchStall()
{
    const uint64_t n =
        dispatchEvents_.fetch_add(1, std::memory_order_relaxed);
    if ((pStall_ > 0.0 && roll(n, kSaltStall) < pStall_) ||
        (stallNth_ != 0 && (n + 1) % stallNth_ == 0)) {
        stalls_.fetch_add(1, std::memory_order_relaxed);
        sleepUs(stallUs_);
    }
}

FaultStats
FaultPlan::stats() const
{
    FaultStats s;
    s.resets = resets_.load(std::memory_order_relaxed);
    s.tornFrames = tornFrames_.load(std::memory_order_relaxed);
    s.shortReads = shortReads_.load(std::memory_order_relaxed);
    s.partialWrites = partialWrites_.load(std::memory_order_relaxed);
    s.delays = delays_.load(std::memory_order_relaxed);
    s.stalls = stalls_.load(std::memory_order_relaxed);
    return s;
}

std::string
FaultPlan::describe() const
{
    std::string out = "seed=" + std::to_string(seed_);
    const auto prob = [&](const char *key, double p) {
        if (p > 0.0)
            out += std::string(",") + key + "=" + std::to_string(p);
    };
    prob("reset", pReset_);
    prob("torn", pTorn_);
    prob("short", pShort_);
    prob("partial", pPartial_);
    prob("delay", pDelay_);
    prob("stall", pStall_);
    if (pDelay_ > 0.0)
        out += ",delay_us=" + std::to_string(delayUs_);
    if (pStall_ > 0.0 || stallNth_ != 0)
        out += ",stall_us=" + std::to_string(stallUs_);
    if (resetNth_ != 0)
        out += ",reset_nth=" + std::to_string(resetNth_);
    if (stallNth_ != 0)
        out += ",stall_nth=" + std::to_string(stallNth_);
    return out;
}

bool
FaultPlan::parse(const std::string &spec, FaultPlan *out,
                 std::string *error)
{
    const auto fail = [&](const std::string &msg) {
        if (error != nullptr)
            *error = msg;
        return false;
    };
    size_t at = 0;
    while (at < spec.size()) {
        size_t end = spec.find(',', at);
        if (end == std::string::npos)
            end = spec.size();
        const std::string item = spec.substr(at, end - at);
        at = end + 1;
        if (item.empty())
            continue;
        const size_t eq = item.find('=');
        if (eq == std::string::npos)
            return fail("fault spec item without '=': " + item);
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);

        double *prob = nullptr;
        if (key == "reset")
            prob = &out->pReset_;
        else if (key == "torn")
            prob = &out->pTorn_;
        else if (key == "short")
            prob = &out->pShort_;
        else if (key == "partial")
            prob = &out->pPartial_;
        else if (key == "delay")
            prob = &out->pDelay_;
        else if (key == "stall")
            prob = &out->pStall_;
        if (prob != nullptr) {
            double p = 0.0;
            if (!parseDouble(value, &p) || !(p >= 0.0) || p > 1.0)
                return fail("fault probability out of [0,1]: " + item);
            *prob = p;
            continue;
        }

        uint64_t n = 0;
        if (key == "seed") {
            if (!parseU64(value, &n))
                return fail("bad fault seed: " + item);
            out->seed_ = n;
        } else if (key == "delay_us") {
            if (!parseU64(value, &n))
                return fail("bad delay_us: " + item);
            out->delayUs_ = unsigned(n);
        } else if (key == "stall_us") {
            if (!parseU64(value, &n))
                return fail("bad stall_us: " + item);
            out->stallUs_ = unsigned(n);
        } else if (key == "reset_nth") {
            if (!parseU64(value, &n))
                return fail("bad reset_nth: " + item);
            out->resetNth_ = n;
        } else if (key == "stall_nth") {
            if (!parseU64(value, &n))
                return fail("bad stall_nth: " + item);
            out->stallNth_ = n;
        } else {
            return fail("unknown fault spec key: " + key);
        }
    }
    return true;
}

void
installFaultPlan(FaultPlan *plan)
{
    g_plan.store(plan, std::memory_order_release);
}

FaultPlan *
activeFaultPlan()
{
    return g_plan.load(std::memory_order_relaxed);
}

} // namespace sys
} // namespace reason
