#include "sys/reason_api.h"

#include <cstring>

#include "util/logging.h"
#include "util/parallel.h"

namespace reason {
namespace sys {

ReasonRuntime::ReasonRuntime(const arch::ArchConfig &config,
                             compiler::Program program)
    : config_(config), program_(std::move(program)), accel_(config)
{
}

ReasonRuntime::ReasonRuntime(const arch::ArchConfig &config,
                             compiler::Program program,
                             const RuntimeOptions &options)
    : ReasonRuntime(config, std::move(program))
{
    if (options.evalThreads > 0)
        util::setGlobalThreads(options.evalThreads);
    if (options.learnShards != 0 ||
        options.learnReduction != LearnReduction::Inherit) {
        util::ReductionPolicy policy = util::reductionPolicy();
        if (options.learnShards != 0)
            policy.shards = options.learnShards;
        if (options.learnReduction != LearnReduction::Inherit)
            policy.deterministic =
                options.learnReduction == LearnReduction::Deterministic;
        util::setReductionPolicy(policy);
    }
}

int
ReasonRuntime::REASON_execute(int batch_id, int batch_size,
                              const void *neural_buffer,
                              const void *reasoning_mode,
                              void *symbolic_buffer)
{
    if (batch_size <= 0 || neural_buffer == nullptr ||
        symbolic_buffer == nullptr)
        return -1;
    int mode = REASON_MODE_PROBABILISTIC;
    if (reasoning_mode)
        std::memcpy(&mode, reasoning_mode, sizeof(int));

    const uint32_t num_inputs = program_.inputs.empty()
                                    ? 0
                                    : [&] {
                                          uint32_t m = 0;
                                          for (const auto &p :
                                               program_.inputs)
                                              m = std::max(m,
                                                           p.inputTag + 1);
                                          return m;
                                      }();
    const double *in = static_cast<const double *>(neural_buffer);
    double *out = static_cast<double *>(symbolic_buffer);

    // Host raised neural_ready before calling (Sec. VI-B).
    shm_.neuralReady = true;
    shm_.symbolicReady = false;

    uint64_t batch_cycles = 0;
    inputRow_.resize(num_inputs);
    for (int b = 0; b < batch_size; ++b) {
        // Reused row buffer: batched serving must not allocate per item.
        inputRow_.assign(in + size_t(b) * num_inputs,
                         in + size_t(b + 1) * num_inputs);
        arch::ExecutionResult r =
            accel_.run(program_, inputRow_, /*preloaded=*/b > 0);
        out[b] = r.rootValue;
        batch_cycles += r.cycles;
        if (b == batch_size - 1)
            results_[batch_id] = std::move(r);
    }
    completion_[batch_id] = now_ + batch_cycles;
    now_ += batch_cycles;

    shm_.neuralReady = false;
    shm_.symbolicReady = true;
    shm_.symbolicBuffer.assign(out, out + batch_size);
    return 0;
}

int
ReasonRuntime::REASON_check_status(int batch_id, bool blocking)
{
    auto it = completion_.find(batch_id);
    if (it == completion_.end())
        return REASON_IDLE; // never launched: nothing in flight
    if (now_ >= it->second)
        return REASON_IDLE;
    if (blocking) {
        now_ = it->second;
        return REASON_IDLE;
    }
    return REASON_EXECUTION;
}

} // namespace sys
} // namespace reason
