#include "arch/topology.h"

#include <cmath>

#include "util/logging.h"
#include "util/numeric.h"

namespace reason {
namespace arch {

const char *
topologyName(Topology t)
{
    switch (t) {
      case Topology::Tree: return "Tree";
      case Topology::Mesh: return "Mesh";
      case Topology::AllToOne: return "All-to-One";
    }
    return "?";
}

uint64_t
broadcastToRootCycles(Topology t, uint64_t num_leaves)
{
    reasonAssert(num_leaves >= 1, "need at least one leaf");
    switch (t) {
      case Topology::Tree:
        return std::max<uint64_t>(1, ceilLog2(num_leaves));
      case Topology::Mesh: {
        uint64_t side = static_cast<uint64_t>(
            std::ceil(std::sqrt(static_cast<double>(num_leaves))));
        return std::max<uint64_t>(1, 2 * (side - 1));
      }
      case Topology::AllToOne:
        return num_leaves;
    }
    return 0;
}

LatencyBreakdown
latencyBreakdown(Topology t, uint64_t num_leaves)
{
    LatencyBreakdown b;
    // Topology-independent terms (normalized units): one SRAM access and
    // one PE op per operation; peripheries include decode/control.
    b.memory = 1.0;
    b.pe = 0.8;
    // Buffer insertion for hold fixing grows with electrical fan-out:
    // trees drive 2 loads per node, meshes 4, buses N.
    double fanout = 2.0;
    if (t == Topology::Mesh)
        fanout = 4.0;
    else if (t == Topology::AllToOne)
        fanout = static_cast<double>(num_leaves);
    b.peripheries = 0.2 + 0.08 * std::log2(std::max(2.0, fanout));
    // Inter-node traversal, scaled so one tree hop is 0.25 units.
    b.interNode =
        0.25 * static_cast<double>(broadcastToRootCycles(t, num_leaves));
    return b;
}

uint64_t
linkCount(Topology t, uint64_t num_leaves)
{
    switch (t) {
      case Topology::Tree:
        return num_leaves > 1 ? 2 * num_leaves - 2 : 0;
      case Topology::Mesh: {
        uint64_t side = static_cast<uint64_t>(
            std::ceil(std::sqrt(static_cast<double>(num_leaves))));
        return 2 * side * (side - 1);
      }
      case Topology::AllToOne:
        return num_leaves;
    }
    return 0;
}

} // namespace arch
} // namespace reason
