/**
 * @file
 * Fig. 11 reproduction: end-to-end symbolic/probabilistic kernel
 * runtime of REASON vs Xeon CPU, Orin NX, and RTX A6000 across the ten
 * reasoning tasks, normalized to REASON = 1.0.
 *
 * Paper shape: RTX ≈ 9.8-13.8x, Orin ≈ 48-53x, Xeon ≈ 95.6-100.4x.
 * The micro-benchmarks additionally time the underlying simulators.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/builders.h"
#include "core/flat.h"
#include "sys/system.h"
#include "util/table.h"
#include "workloads/timing.h"
#include "workloads/workloads.h"

using namespace reason;

namespace {

void
BM_MeasureSymbolicOps(benchmark::State &state)
{
    workloads::TaskBundle b = workloads::generate(
        workloads::DatasetId::FOLIO, workloads::TaskScale::Small, 1);
    for (auto _ : state) {
        workloads::SymbolicOps ops = workloads::measureSymbolicOps(b);
        benchmark::DoNotOptimize(ops.sat.propagations);
    }
}
BENCHMARK(BM_MeasureSymbolicOps)->Unit(benchmark::kMillisecond);

void
BM_PlatformCostModel(benchmark::State &state)
{
    workloads::TaskBundle b = workloads::generate(
        workloads::DatasetId::XSTest, workloads::TaskScale::Small, 1);
    workloads::SymbolicOps ops = workloads::measureSymbolicOps(b);
    for (auto _ : state) {
        auto c = sys::symbolicCost(sys::Platform::ReasonAccel, ops);
        benchmark::DoNotOptimize(c.seconds);
    }
}
BENCHMARK(BM_PlatformCostModel);

/** Seed path: pointer-chasing Dag::evaluate of a PC workload kernel. */
void
BM_DagEvalSeedWalker(benchmark::State &state)
{
    workloads::TaskBundle b = workloads::generate(
        workloads::DatasetId::TwinSafety, workloads::TaskScale::Small, 7);
    core::Dag dag = core::buildFromCircuit(b.pcs.classCircuits.front());
    std::vector<double> inputs(dag.numInputs(), 0.5);
    for (auto _ : state)
        benchmark::DoNotOptimize(dag.evaluateRoot(inputs));
}
BENCHMARK(BM_DagEvalSeedWalker);

/** Flat path: CSR lowering + allocation-free core::Evaluator. */
void
BM_DagEvalFlatCsr(benchmark::State &state)
{
    workloads::TaskBundle b = workloads::generate(
        workloads::DatasetId::TwinSafety, workloads::TaskScale::Small, 7);
    core::Dag dag = core::buildFromCircuit(b.pcs.classCircuits.front());
    core::FlatGraph flat = core::lowerDag(dag);
    core::Evaluator eval(flat);
    std::vector<double> inputs(dag.numInputs(), 0.5);
    for (auto _ : state)
        benchmark::DoNotOptimize(eval.evaluateRoot(inputs));
}
BENCHMARK(BM_DagEvalFlatCsr);

void
printFig11()
{
    Table table({"Task", "REASON", "RTX A6000", "Orin NX", "Xeon CPU",
                 "REASON [ms]"});
    double rtx_acc = 0.0, orin_acc = 0.0, xeon_acc = 0.0;
    int n = 0;
    for (workloads::DatasetId d : workloads::allDatasets()) {
        workloads::TaskBundle b =
            workloads::generate(d, workloads::TaskScale::Small, 7);
        workloads::SymbolicOps ops =
            workloads::measureSymbolicOps(b, /*optimized=*/true);
        double reason =
            sys::symbolicCost(sys::Platform::ReasonAccel, ops).seconds;
        double rtx =
            sys::symbolicCost(sys::Platform::RtxA6000, ops).seconds;
        double orin =
            sys::symbolicCost(sys::Platform::OrinNx, ops).seconds;
        double xeon =
            sys::symbolicCost(sys::Platform::XeonCpu, ops).seconds;
        table.addRow({workloads::datasetName(d), "1.0",
                      Table::num(rtx / reason, 1),
                      Table::num(orin / reason, 1),
                      Table::num(xeon / reason, 1),
                      Table::num(reason * 1e3, 3)});
        rtx_acc += rtx / reason;
        orin_acc += orin / reason;
        xeon_acc += xeon / reason;
        ++n;
    }
    table.addRow({"geomean-ish avg", "1.0", Table::num(rtx_acc / n, 1),
                  Table::num(orin_acc / n, 1),
                  Table::num(xeon_acc / n, 1), "-"});
    std::printf("\n");
    table.print("Fig. 11 — normalized symbolic/probabilistic runtime "
                "(REASON = 1.0; paper: RTX ~12x, Orin ~50x, Xeon ~98x)");
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printFig11();
    return 0;
}
