/**
 * @file
 * Quickstart: the minimal end-to-end REASON flow.
 *
 * 1. Build a probabilistic circuit (the reasoning model).
 * 2. Run the three-stage algorithm pipeline: unify -> prune ->
 *    regularize (Sec. IV).
 * 3. Compile the unified DAG to a VLIW program (Sec. V-C).
 * 4. Execute it on the cycle-accurate accelerator and compare both the
 *    numeric result and the latency against the software evaluation.
 */

#include <chrono>
#include <cmath>
#include <cstdio>

#include "arch/accelerator.h"
#include "compiler/compile.h"
#include "core/pipeline.h"
#include "energy/energy_model.h"
#include "pc/pc.h"
#include "util/rng.h"

using namespace reason;

int
main()
{
    Rng rng(2026);

    // A randomly structured smooth & decomposable circuit over 12
    // binary variables — the kind of model R2-Guard uses for safety
    // rules.
    pc::Circuit circuit = pc::randomCircuit(rng, 12, 2, 3, 6);
    auto calibration = pc::sampleDataset(rng, circuit, 256);
    std::printf("model: %zu circuit nodes, %zu edges\n",
                circuit.numNodes(), circuit.numEdges());

    // Stage 1-3: unified DAG, adaptive pruning, regularization.
    pc::Circuit pruned(1, 2);
    std::vector<pc::NodeId> leaf_order;
    core::OptimizedKernel kernel = core::optimizeCircuit(
        circuit, calibration, {}, &pruned, &leaf_order);
    std::printf("optimized DAG: %zu nodes (was %zu), memory -%.1f%%\n",
                kernel.statsAfter.numNodes, kernel.statsBefore.numNodes,
                kernel.memoryReduction * 100.0);

    // Compile for the default 12-PE / depth-3 configuration.
    arch::ArchConfig cfg;
    compiler::Program program =
        compiler::compile(kernel.dag, cfg.compilerTarget());
    std::printf("program: %zu blocks, schedule %zu cycles, "
                "leaf utilization %.0f%%\n",
                program.stats.numBlocks, program.stats.scheduleLength,
                program.stats.avgLeafUtilization * 100.0);

    // Execute one query on the simulated fabric.
    arch::Accelerator accel(cfg);
    pc::Assignment query = calibration.front();
    auto inputs = core::circuitLeafInputs(pruned, leaf_order, query);

    auto t0 = std::chrono::steady_clock::now();
    arch::ExecutionResult result = accel.run(program, inputs);
    auto t1 = std::chrono::steady_clock::now();

    double expected = std::exp(pruned.logLikelihood(query));
    std::printf("\naccelerator result : %.12g\n", result.rootValue);
    std::printf("software reference : %.12g\n", expected);
    std::printf("match              : %s\n",
                std::fabs(result.rootValue - expected) <
                        1e-9 * std::max(1.0, expected)
                    ? "yes"
                    : "NO");

    std::printf("\nsimulated cycles   : %llu (%.2f us @ %.1f GHz)\n",
                static_cast<unsigned long long>(result.cycles),
                result.seconds(cfg) * 1e6, cfg.clockGhz);
    std::printf("PE utilization     : %.1f%%\n",
                result.peUtilization * 100.0);
    std::printf("host sim wall time : %.1f us\n",
                std::chrono::duration<double, std::micro>(t1 - t0)
                    .count());

    energy::EnergyModel em;
    energy::EnergyReport rep =
        em.report(result.events, result.seconds(cfg));
    std::printf("energy             : %.2f nJ (avg %.2f W, %s)\n",
                rep.totalJoules * 1e9, rep.averageWatts,
                energy::techNodeName(rep.node));
    std::printf("die area (model)   : %.2f mm^2\n", rep.areaMm2);
    return 0;
}
