/**
 * @file
 * AVX-512F kernel table for the runtime dispatcher.  Built with
 * -mavx512f appended (see CMakeLists.txt); self-gates on the raw
 * compiler macros so builds whose toolchain never defines __AVX512F__
 * (or that force the scalar backend) export only a null accessor.
 */

#include "util/simd_dispatch.h"

#if defined(__AVX512F__) && !defined(REASON_FORCE_SCALAR)

#define REASON_SIMD_KERNEL_ACCESSOR avx512KernelTable
#include "util/simd_kernels.inc"

#else

namespace reason {
namespace simd {
namespace detail {

const KernelTable *
avx512KernelTable()
{
    return nullptr;
}

} // namespace detail
} // namespace simd
} // namespace reason

#endif
