/**
 * @file
 * Event-driven energy, power, and area model of the REASON accelerator
 * (Sec. VII-A, Fig. 10, Table III).
 *
 * The paper derives power from Synopsys PTPX traces over gate-level
 * activity; we reproduce the same accounting from the cycle simulator's
 * event counts multiplied by per-event energies representative of TSMC
 * 28 nm at 0.9 V / 500 MHz.  Technology scaling to 12 nm and 8 nm uses
 * DeepScaleTool-style factors matching the paper's Table III rows.
 */

#ifndef REASON_ENERGY_ENERGY_MODEL_H
#define REASON_ENERGY_ENERGY_MODEL_H

#include <cstdint>
#include <string>

#include "util/stats.h"

namespace reason {
namespace energy {

/** Process node the model is evaluated at. */
enum class TechNode : uint8_t { Tsmc28, Tsmc12, Tsmc8 };

const char *techNodeName(TechNode node);

/** DeepScaleTool-style scale factors relative to 28 nm (0.8 V, 500 MHz). */
struct TechScaling
{
    double area = 1.0;
    double dynamicEnergy = 1.0;
    double staticPower = 1.0;
};

TechScaling techScaling(TechNode node);

/** Per-event dynamic energies in picojoules at 28 nm. */
struct EnergyTable
{
    double treeAddPj = 0.9;
    double treeMulPj = 3.2;
    double treeCmpPj = 0.6;
    double leafOpPj = 1.1;
    double regfileReadPj = 1.4;
    double regfileWritePj = 1.6;
    double sramAccessPj = 6.5;    ///< per 64-bit word
    double dramPjPerByte = 18.0;  ///< LPDDR5 access energy
    double broadcastPj = 2.2;     ///< per tree traversal
    double fifoOpPj = 0.5;
    double wlLookupPj = 3.0;
    double implicationPj = 0.8;
    double clauseScanPjPerLit = 0.45;
    /**
     * Per-cycle infrastructure energy (clock tree, instruction decode,
     * global control, interconnect toggling) — the dominant PTPX
     * component beyond the bare datapath events.
     */
    double cyclePj = 3000.0;
};

/** Area model inputs (mm^2 at 28 nm). */
struct AreaTable
{
    double perPeMm2 = 0.25;        ///< tree PE incl. Benes slice
    double sramMm2PerKb = 0.00165; ///< dense SRAM macro
    double simdUnitMm2 = 0.40;
    double controlMm2 = 0.51;      ///< controller, WL unit, decode, NoC
};

/** Computed power/energy/area summary. */
struct EnergyReport
{
    double dynamicJoules = 0.0;
    double staticJoules = 0.0;
    double totalJoules = 0.0;
    double seconds = 0.0;
    double averageWatts = 0.0;
    double areaMm2 = 0.0;
    TechNode node = TechNode::Tsmc28;
};

/**
 * Energy/power/area model instance.
 */
class EnergyModel
{
  public:
    explicit EnergyModel(TechNode node = TechNode::Tsmc28,
                         EnergyTable energies = {}, AreaTable areas = {});

    TechNode node() const { return node_; }

    /**
     * Total dynamic energy (J) of an event-count group produced by the
     * simulators.  Unrecognized counters are ignored.
     */
    double dynamicEnergyJoules(const StatGroup &events) const;

    /** Static (leakage + clock tree) power in watts. */
    double staticWatts() const;

    /** Accelerator die area in mm^2 for a PE count and SRAM size. */
    double areaMm2(uint32_t num_pes, uint32_t sram_kb) const;

    /** Full report for an execution of `seconds` with `events`. */
    EnergyReport report(const StatGroup &events, double seconds,
                        uint32_t num_pes = 12,
                        uint32_t sram_kb = 1280) const;

  private:
    TechNode node_;
    TechScaling scale_;
    EnergyTable energies_;
    AreaTable areas_;
    /** Leakage at 28 nm for the default configuration (W). */
    double staticBaseWatts_ = 0.35;
};

} // namespace energy
} // namespace reason

#endif // REASON_ENERGY_ENERGY_MODEL_H
