/**
 * @file
 * Fuzz and malformed-input harness for the `.nnf` streaming parser.
 *
 * The parser feeds untrusted text into CSR array construction, so it
 * gets the same adversarial treatment as the sys/ wire decoder: a
 * table of hand-written malformed inputs (truncated lines, dangling
 * child references, declared counts large enough to wrap size
 * computations, non-decomposable conjunctions, INT64_MIN literals) and
 * a seeded random-garbage fuzz loop.  Every input must produce a clean
 * NnfError with a 1-based line number through BOTH tolerant entry
 * points — parseC2dFormat and streamNnfToFlat — and never crash,
 * which the CI sanitizer legs check under ASan/UBSan.
 */

#include <gtest/gtest.h>
#include <sstream>
#include <string>
#include <vector>

#include "logic/knowledge.h"
#include "logic/nnf_io.h"
#include "pc/from_logic.h"
#include "util/rng.h"

namespace reason {
namespace logic {
namespace {

/** Run one input through both tolerant entry points. */
struct ParseOutcome
{
    bool textOk = false;
    NnfError textErr;
    bool streamOk = false;
    NnfError streamErr;
};

ParseOutcome
parseBoth(const std::string &text, uint32_t weight_vars = 64)
{
    ParseOutcome out;
    parseC2dFormat(text, &out.textErr);
    out.textOk = out.textErr.ok();
    std::istringstream in(text);
    pc::FlatCircuit flat;
    out.streamOk = pc::streamNnfToFlat(
        in, LitWeights::uniform(weight_vars), &flat, &out.streamErr);
    return out;
}

TEST(NnfFuzz, MalformedCorpus)
{
    struct Case
    {
        const char *name;
        const char *text;
    };
    const Case kCorpus[] = {
        {"empty input", ""},
        {"garbage header", "garbage\n"},
        {"header missing counts", "nnf 2\n"},
        {"non-numeric count", "nnf two 0 2\n"},
        {"negative count", "nnf -1 0 2\n"},
        {"node count overflows id domain", "nnf 4294967295 0 2\nL 1\n"},
        {"node count overflows int64", "nnf 18446744073709551615 0 2\n"},
        {"edge count overflows id domain", "nnf 1 4294967295 2\nL 1\n"},
        {"var count overflows lit domain", "nnf 1 0 2147483648\nL 1\n"},
        {"trailing header tokens", "nnf 1 0 2 junk\nL 1\n"},
        {"truncated node line", "nnf 2 1 2\nL 1\nA 1\n"},
        {"dangling child id", "nnf 2 1 2\nL 1\nA 1 5\n"},
        {"self reference", "nnf 1 1 2\nA 1 0\n"},
        {"forward reference", "nnf 2 1 2\nA 1 1\nL 1\n"},
        {"huge declared arity", "nnf 2 10 2\nL 1\nA 9999999 0\n"},
        {"arity exceeds edge budget", "nnf 3 2 2\nL 1\nL 2\nA 3 0 1 0\n"},
        {"unknown node tag", "nnf 1 0 2\nX 1\n"},
        {"zero literal", "nnf 1 0 2\nL 0\n"},
        {"literal out of var range", "nnf 1 0 2\nL 5\n"},
        {"negated literal out of range", "nnf 1 0 2\nL -5\n"},
        {"INT64_MIN literal", "nnf 1 0 2\nL -9223372036854775808\n"},
        {"Or with one child", "nnf 2 1 2\nL 1\nO 1 1 0\n"},
        {"Or with three children",
         "nnf 4 3 2\nL 1\nL 2\nL -1\nO 1 3 0 1 2\n"},
        {"Or without decision var", "nnf 3 2 2\nL 1\nL -1\nO 0 2 0 1\n"},
        {"Or decision out of range", "nnf 3 2 2\nL 1\nL -1\nO 9 2 0 1\n"},
        {"negative Or decision", "nnf 3 2 2\nL 1\nL -1\nO -1 2 0 1\n"},
        {"non-decomposable And", "nnf 3 2 2\nL 1\nL 1\nA 2 0 1\n"},
        {"trailing node tokens", "nnf 1 0 2\nA 0 junk\n"},
        {"fewer nodes than declared", "nnf 3 0 2\nL 1\n"},
        {"more nodes than declared", "nnf 1 0 2\nL 1\nL 2\n"},
        {"fewer edges than declared", "nnf 1 7 2\nL 1\n"},
        {"declared zero nodes", "nnf 0 0 2\n"},
    };
    for (const Case &c : kCorpus) {
        SCOPED_TRACE(c.name);
        ParseOutcome out = parseBoth(c.text);
        EXPECT_FALSE(out.textOk);
        EXPECT_FALSE(out.textErr.ok());
        EXPECT_FALSE(out.textErr.message.empty());
        EXPECT_FALSE(out.streamOk);
        EXPECT_FALSE(out.streamErr.ok());
        EXPECT_FALSE(out.streamErr.message.empty());
        // Errors carry a 1-based line unless input ended before the
        // first line (empty input reports line 0 by contract).
        if (*c.text != '\0') {
            EXPECT_GE(out.textErr.line, 1u);
            EXPECT_GE(out.streamErr.line, 1u);
        }
    }
}

TEST(NnfFuzz, WellFormedCorpusStillParses)
{
    // The flip side: inputs near the malformed corpus that ARE legal
    // must keep parsing, so the hardening is not over-tight.
    const char *kGood[] = {
        "nnf 1 0 2\nL 1\n",
        "nnf 1 0 2\nA 0\n",             // constant TRUE
        "nnf 1 0 2\nO 0 0\n",           // constant FALSE
        "nnf 3 2 2\nL 1\nL 2\nA 2 0 1\n",
        "nnf 3 2 2\nL 1\nL -1\nO 1 2 0 1\n",
        "nnf 2 0 2\n\nL 1\n \t \nL -2\n", // blank lines are skipped
    };
    for (const char *text : kGood) {
        SCOPED_TRACE(text);
        ParseOutcome out = parseBoth(text);
        EXPECT_TRUE(out.textOk) << out.textErr.message;
        EXPECT_TRUE(out.streamOk) << out.streamErr.message;
    }
}

TEST(NnfFuzz, ErrorLinesPointAtTheOffendingLine)
{
    NnfError err;
    parseC2dFormat("nnf 3 2 2\nL 1\nL 2\nA 2 0 9\n", &err);
    ASSERT_FALSE(err.ok());
    EXPECT_EQ(err.line, 4u);
    parseC2dFormat("nnf 2 1 2\nL 1\nA 1 5\n", &err);
    ASSERT_FALSE(err.ok());
    EXPECT_EQ(err.line, 3u);
    parseC2dFormat("bogus\n", &err);
    ASSERT_FALSE(err.ok());
    EXPECT_EQ(err.line, 1u);
}

TEST(NnfFuzz, RandomGarbage)
{
    // 200 trials of pure random text drawn from a pool biased toward
    // nnf syntax, so many trials get past the header and into node
    // parsing.  The only contract: no crash, and failures carry a
    // message.  The rare accidentally-valid input must round-trip.
    const std::string pool = "nnfAOL-0123456789 \n\t";
    Rng rng(0xf22);
    for (int trial = 0; trial < 200; ++trial) {
        std::string text;
        size_t len = size_t(rng.uniformInt(0, 160));
        for (size_t i = 0; i < len; ++i)
            text += pool[size_t(rng.uniformInt(0, int64_t(pool.size()) - 1))];
        ParseOutcome out = parseBoth(text);
        if (!out.textOk)
            EXPECT_FALSE(out.textErr.message.empty()) << text;
        if (!out.streamOk)
            EXPECT_FALSE(out.streamErr.message.empty()) << text;
    }
}

TEST(NnfFuzz, StructuredGarbage)
{
    // Valid header, random node lines: exercises every branch of the
    // node parser far more often than raw garbage does.
    Rng rng(31337);
    for (int trial = 0; trial < 200; ++trial) {
        uint32_t nodes = uint32_t(rng.uniformInt(1, 12));
        uint32_t edges = uint32_t(rng.uniformInt(0, 20));
        std::string text = "nnf " + std::to_string(nodes) + " " +
                           std::to_string(edges) + " 4\n";
        for (uint32_t i = 0; i < nodes; ++i) {
            switch (rng.uniformInt(0, 2)) {
              case 0:
                text += "L " + std::to_string(rng.uniformInt(-6, 6));
                break;
              case 1: {
                int64_t k = rng.uniformInt(0, 3);
                text += "A " + std::to_string(k);
                for (int64_t c = 0; c < k; ++c)
                    text +=
                        " " + std::to_string(rng.uniformInt(0, nodes));
                break;
              }
              default: {
                int64_t k = rng.uniformInt(0, 3);
                text += "O " + std::to_string(rng.uniformInt(-1, 5)) +
                        " " + std::to_string(k);
                for (int64_t c = 0; c < k; ++c)
                    text +=
                        " " + std::to_string(rng.uniformInt(0, nodes));
                break;
              }
            }
            text += "\n";
        }
        ParseOutcome out = parseBoth(text, 8);
        // Accidentally-valid graphs must agree between the two routes.
        if (out.textOk && out.streamOk) {
            DnnfGraph g = parseC2dFormat(text);
            pc::FlatCircuit direct =
                pc::flatFromDnnf(g, LitWeights::uniform(8));
            std::istringstream in(text);
            pc::FlatCircuit streamed;
            NnfError err;
            ASSERT_TRUE(pc::streamNnfToFlat(in, LitWeights::uniform(8),
                                            &streamed, &err));
            EXPECT_EQ(pc::flatLogWmc(streamed), pc::flatLogWmc(direct))
                << text;
        }
    }
}

} // namespace
} // namespace logic
} // namespace reason
