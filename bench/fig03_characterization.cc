/**
 * @file
 * Fig. 3 reproduction: end-to-end neuro-symbolic workload
 * characterization.  (a) neural vs symbolic runtime split on an
 * A6000-class GPU for all six workloads; (b) scaling with task size;
 * (c) A6000 vs Orin; (d) roofline placement of each kernel class.
 *
 * Paper shape: symbolic+probabilistic stages take 35-64 % of runtime
 * (more when the LLM shrinks); symbolic kernels sit deep in the
 * memory-bound region of the roofline.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "baselines/device.h"
#include "sys/system.h"
#include "util/table.h"
#include "workloads/timing.h"
#include "workloads/workloads.h"

using namespace reason;
using workloads::DatasetId;
using workloads::TaskScale;
using workloads::WorkloadId;

namespace {

void
BM_GenerateBundle(benchmark::State &state)
{
    for (auto _ : state) {
        auto b = workloads::generate(DatasetId::TwinSafety,
                                     TaskScale::Small, 5);
        benchmark::DoNotOptimize(b.pcs.queries.size());
    }
}
BENCHMARK(BM_GenerateBundle)->Unit(benchmark::kMillisecond);

DatasetId
datasetFor(WorkloadId w)
{
    switch (w) {
      case WorkloadId::AlphaGeo: return DatasetId::IMO;
      case WorkloadId::R2Guard: return DatasetId::TwinSafety;
      case WorkloadId::GeLaTo: return DatasetId::CommonGen;
      case WorkloadId::CtrlG: return DatasetId::CoAuthor;
      case WorkloadId::NeuroPC: return DatasetId::AwA2;
      case WorkloadId::Linc: return DatasetId::FOLIO;
    }
    return DatasetId::IMO;
}

void
printFig3()
{
    // (a) runtime split on the A6000 model.
    Table split({"Workload", "Neural %", "Symbolic %",
                 "Total [ms, A6000]"});
    for (WorkloadId w : workloads::allWorkloads()) {
        workloads::TaskBundle b = workloads::generate(
            datasetFor(w), TaskScale::Small, 19);
        workloads::SymbolicOps ops = workloads::measureSymbolicOps(b);
        double sym =
            sys::symbolicCost(sys::Platform::RtxA6000, ops).seconds;
        double flops = sys::neuralFlops(b, ops);
        double neu =
            sys::neuralCost(sys::Platform::RtxA6000, flops).seconds;
        double total = sym + neu;
        split.addRow({workloads::workloadName(w),
                      Table::percent(neu / total),
                      Table::percent(sym / total),
                      Table::num(total * 1e3, 2)});
    }
    std::printf("\n");
    split.print("Fig. 3(a) — neural vs symbolic runtime split on "
                "A6000 (paper: symbolic 35-64%)");

    // (b) scale: small vs large tasks keep the split, grow the total.
    Table scale({"Workload", "Scale", "Symbolic %", "Total [ms]"});
    for (WorkloadId w :
         {WorkloadId::AlphaGeo, WorkloadId::R2Guard,
          WorkloadId::GeLaTo}) {
        for (TaskScale s : {TaskScale::Small, TaskScale::Large}) {
            workloads::TaskBundle b =
                workloads::generate(datasetFor(w), s, 19);
            workloads::SymbolicOps ops =
                workloads::measureSymbolicOps(b);
            double sym =
                sys::symbolicCost(sys::Platform::RtxA6000, ops)
                    .seconds;
            double flops = sys::neuralFlops(b, ops);
            double neu =
                sys::neuralCost(sys::Platform::RtxA6000, flops)
                    .seconds;
            scale.addRow({workloads::workloadName(w),
                          s == TaskScale::Small ? "small" : "large",
                          Table::percent(sym / (sym + neu)),
                          Table::num((sym + neu) * 1e3, 2)});
        }
    }
    std::printf("\n");
    scale.print("Fig. 3(b) — split is stable across task scales; "
                "total grows");

    // (c) A6000 vs Orin.
    Table dev({"Workload", "A6000 [ms]", "Orin NX [ms]"});
    for (WorkloadId w :
         {WorkloadId::AlphaGeo, WorkloadId::R2Guard}) {
        workloads::TaskBundle b = workloads::generate(
            datasetFor(w), TaskScale::Small, 19);
        workloads::SymbolicOps ops = workloads::measureSymbolicOps(b);
        double flops = sys::neuralFlops(b, ops);
        auto total = [&](sys::Platform p) {
            return sys::symbolicCost(p, ops).seconds +
                   sys::neuralCost(p, flops).seconds;
        };
        dev.addRow({workloads::workloadName(w),
                    Table::num(total(sys::Platform::RtxA6000) * 1e3, 2),
                    Table::num(total(sys::Platform::OrinNx) * 1e3,
                               2)});
    }
    std::printf("\n");
    dev.print("Fig. 3(c) — desktop vs edge GPU end-to-end latency");

    // (d) roofline placement on the A6000.
    baselines::DeviceModel gpu = baselines::rtxA6000();
    Table roof({"Kernel", "Op intensity [FLOP/B]",
                "Roofline bound [TFLOP/s]", "Achieved [TFLOP/s]",
                "Regime"});
    for (auto cls : {baselines::KernelClass::DenseMatMul,
                     baselines::KernelClass::Softmax,
                     baselines::KernelClass::SparseMatVec,
                     baselines::KernelClass::SymbolicBcp,
                     baselines::KernelClass::ProbCircuit,
                     baselines::KernelClass::HmmSequential}) {
        double oi = baselines::operationalIntensity(cls);
        double bound = std::min(gpu.peakTflops,
                                oi * gpu.dramGBps * 1e-3);
        double achieved =
            bound *
            baselines::gpuKernelMetrics(cls).computeThroughputPct /
            100.0;
        roof.addRow({baselines::kernelClassName(cls),
                     Table::num(oi, 2), Table::num(bound, 2),
                     Table::num(achieved, 3),
                     oi * gpu.dramGBps * 1e-3 < gpu.peakTflops
                         ? "memory-bound"
                         : "compute-bound"});
    }
    std::printf("\n");
    roof.print("Fig. 3(d) — roofline: symbolic/probabilistic kernels "
               "are deeply memory-bound");
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printFig3();
    return 0;
}
