/**
 * @file
 * ASCII table rendering for bench outputs that mirror the paper's tables
 * and figures.
 */

#ifndef REASON_UTIL_TABLE_H
#define REASON_UTIL_TABLE_H

#include <string>
#include <vector>

namespace reason {

/**
 * Column-aligned ASCII table.  Cells are strings; numeric helpers format
 * with fixed precision.  Rendered with a header rule, suitable for
 * comparing against the paper's reported rows.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Format helpers. */
    static std::string num(double v, int precision = 2);
    static std::string percent(double frac, int precision = 1);
    static std::string ratio(double v, int precision = 2);

    /** Render the table with aligned columns. */
    std::string toString() const;

    /** Render and print to stdout with an optional caption line. */
    void print(const std::string &caption = "") const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace reason

#endif // REASON_UTIL_TABLE_H
