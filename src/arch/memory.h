/**
 * @file
 * Memory-subsystem component models of the REASON accelerator
 * (Fig. 6(c)-(e)): banked SRAM with clause residency, the linked-list
 * watch-list layout, the hardware BCP FIFO, and the prefetcher/DMA
 * engine.  Each component both enforces functional behavior and counts
 * the events the energy model consumes.
 */

#ifndef REASON_ARCH_MEMORY_H
#define REASON_ARCH_MEMORY_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <list>
#include <unordered_map>
#include <vector>

#include "util/stats.h"

namespace reason {
namespace arch {

/**
 * Banked local SRAM with clause residency tracking (LRU replacement).
 * Capacity is expressed in bytes; lines are whole clauses (the WL unit
 * fetches clause-granular).  A miss triggers a DMA fetch modeled by the
 * caller.
 */
class ClauseSram
{
  public:
    ClauseSram(size_t capacity_bytes, uint32_t num_banks);

    /**
     * Access a clause of `bytes` size.
     * @return true on hit; on miss the clause is installed (evicting LRU
     * lines as needed) and false is returned.
     */
    bool access(uint32_t clause_id, size_t bytes);

    /** Pre-install without counting an access (initial DMA fill). */
    void install(uint32_t clause_id, size_t bytes);

    /** Whether a clause is currently resident. */
    bool resident(uint32_t clause_id) const;

    size_t capacityBytes() const { return capacityBytes_; }
    size_t usedBytes() const { return usedBytes_; }
    uint32_t numBanks() const { return numBanks_; }

    /** Bank a clause maps to (for conflict accounting). */
    uint32_t bankOf(uint32_t clause_id) const
    {
        return clause_id % numBanks_;
    }

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t evictions() const { return evictions_; }

  private:
    void evictFor(size_t bytes);

    size_t capacityBytes_;
    uint32_t numBanks_;
    size_t usedBytes_ = 0;
    // LRU list front = most recent.
    std::list<uint32_t> lru_;
    struct Entry
    {
        size_t bytes;
        std::list<uint32_t>::iterator it;
    };
    std::unordered_map<uint32_t, Entry> lines_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t evictions_ = 0;
};

/**
 * Linked-list watch-list directory (Fig. 6(e)): a head-pointer table
 * indexed by literal id plus per-clause next-watch pointers.  Traversal
 * cost is the visited-clause count, which the symbolic engine converts
 * into cycles.
 */
class WatchListUnit
{
  public:
    explicit WatchListUnit(uint32_t num_literals);

    /** Insert a clause at the head of a literal's list (O(1)). */
    void watch(uint32_t literal, uint32_t clause_id);

    /** Remove a clause from a literal's list (list walk). */
    void unwatch(uint32_t literal, uint32_t clause_id);

    /** Clauses currently watching a literal, in list order. */
    const std::vector<uint32_t> &list(uint32_t literal) const;

    /** Number of clauses on a literal's list. */
    size_t listLength(uint32_t literal) const;

    uint64_t headLookups() const { return headLookups_; }
    uint64_t pointerChases() const { return pointerChases_; }

    /** Count one traversal of a literal's list. */
    void recordTraversal(uint32_t literal);

  private:
    std::vector<std::vector<uint32_t>> lists_;
    uint64_t headLookups_ = 0;
    uint64_t pointerChases_ = 0;
};

/**
 * Hardware BCP FIFO (Fig. 6(e)): serializes implications discovered in
 * parallel by the leaf nodes.  Fixed depth; pushes beyond capacity are
 * counted as overflow stalls (the producer retries next cycle).
 */
class BcpFifo
{
  public:
    explicit BcpFifo(uint32_t depth);

    /** @return false when full (overflow stall recorded). */
    bool push(uint32_t literal_code);

    /** Pop the oldest entry; requires !empty(). */
    uint32_t pop();

    /** Drop all entries (conflict flush), returning the count dropped. */
    size_t flush();

    bool empty() const { return q_.empty(); }
    bool full() const { return q_.size() >= depth_; }
    size_t size() const { return q_.size(); }
    uint32_t depth() const { return depth_; }

    uint64_t pushes() const { return pushes_; }
    uint64_t pops() const { return pops_; }
    uint64_t overflowStalls() const { return overflowStalls_; }
    uint64_t flushes() const { return flushes_; }
    size_t maxOccupancy() const { return maxOccupancy_; }

  private:
    uint32_t depth_;
    std::deque<uint32_t> q_;
    uint64_t pushes_ = 0;
    uint64_t pops_ = 0;
    uint64_t overflowStalls_ = 0;
    uint64_t flushes_ = 0;
    size_t maxOccupancy_ = 0;
};

class DramModel; // arch/dram.h

/**
 * Prefetcher/DMA engine with a bounded number of outstanding requests.
 * Completion times are queried by the caller's cycle loop; requests
 * beyond the outstanding limit queue up.
 *
 * Two timing backends:
 *  - legacy fixed latency (`issue`): latency plus a bandwidth term
 *    `ceil(bytes / bytes_per_cycle)` when a transfer rate is
 *    configured (0 disables the term for latency-only modeling);
 *  - the cycle-driven DRAM model (`attachDram` + `issueAt`):
 *    address-carrying requests routed through `DramModel`, which
 *    enforces bank timing, row-buffer state, and channel bandwidth.
 */
class DmaEngine
{
  public:
    DmaEngine(uint32_t latency_cycles, uint32_t max_outstanding = 4,
              uint32_t bytes_per_cycle = 0);

    /**
     * Route subsequent `issueAt` fetches through a DRAM timing model
     * (non-owning; must outlive the engine).  Pass nullptr to detach.
     */
    void attachDram(DramModel *dram) { dram_ = dram; }
    bool dramAttached() const { return dram_ != nullptr; }

    /**
     * Issue a fetch at `now`; @return completion cycle (includes queueing
     * behind outstanding requests).
     */
    uint64_t issue(uint64_t now, size_t bytes);

    /**
     * Issue an address-carrying fetch at `now`.  With a DRAM model
     * attached the completion cycle comes from the model (row-buffer
     * state, bank timing, channel bandwidth); otherwise this is
     * equivalent to `issue`.
     */
    uint64_t issueAt(uint64_t now, uint64_t addr, size_t bytes);

    /**
     * Cancel all in-flight requests (conflict priority control).  With
     * a DRAM model attached, already-scheduled bursts still complete
     * inside the model (data is dropped); only the engine's
     * outstanding-slot tracking is cleared.
     */
    void cancelAll();

    uint64_t requests() const { return requests_; }
    uint64_t bytesFetched() const { return bytesFetched_; }
    uint64_t cancels() const { return cancels_; }

  private:
    /** Retire finished requests, find the start slot, record `done`. */
    uint64_t startSlot(uint64_t now);
    void recordIssue(uint64_t done, size_t bytes);

    uint32_t latency_;
    uint32_t maxOutstanding_;
    uint32_t bytesPerCycle_;
    DramModel *dram_ = nullptr;
    std::vector<uint64_t> inFlight_; // completion cycles
    uint64_t requests_ = 0;
    uint64_t bytesFetched_ = 0;
    uint64_t cancels_ = 0;
};

} // namespace arch
} // namespace reason

#endif // REASON_ARCH_MEMORY_H
