/**
 * @file
 * Length-prefixed binary wire protocol of the socket serving
 * front-end (`reason_cli serve --listen` / `bench-client`).
 *
 * Frame layout (all integers little-endian, packed, no padding):
 *
 *     [u32 length][u8 type][payload ...]
 *
 * `length` counts the type byte plus the payload, so an empty frame
 * has length 1.  Frame types:
 *
 *     Hello    = 1  client -> server   u32 protocolVersion
 *     HelloAck = 2  server -> client   u32 protocolVersion
 *     Submit   = 3  client -> server   u64 id, u32 numRows,
 *                                      u32 numVars,
 *                                      numRows*numVars u32 values
 *                                      (row-major; kMissing allowed)
 *     Result   = 4  server -> client   u64 id, i32 error,
 *                                      u32 numRows,
 *                                      numRows u64 double bit
 *                                      patterns (log-likelihoods)
 *
 * Result values travel as raw IEEE-754 bit patterns, never text: the
 * serving contract is *bitwise* identity with in-process submission,
 * and the checksum helpers fold exactly those bits, so a client can
 * prove end-to-end equality with a local run.
 *
 * Decoding is stream-oriented and malformed-tolerant: FrameDecoder
 * consumes an arbitrary byte stream, yields complete frames, and
 * reports (rather than crashes on) truncated, oversized, unknown, or
 * inconsistent frames — the server drops the connection, the fuzz
 * tests feed it garbage.  A decoder that has reported Malformed is
 * poisoned: framing is lost, so no further frames are yielded.
 *
 * Encoding and decoding use explicit byte packing, so the format is
 * identical on every host (endianness-independent).
 */

#ifndef REASON_SYS_WIRE_H
#define REASON_SYS_WIRE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace reason {
namespace sys {
namespace wire {

/** Protocol version exchanged in Hello/HelloAck. */
inline constexpr uint32_t kProtocolVersion = 1;

/**
 * Upper bound on `length` (16 MiB): a framing-error guard, so a
 * corrupt length prefix cannot make the decoder buffer gigabytes
 * before noticing the stream is garbage.
 */
inline constexpr uint32_t kMaxFrameBytes = 16u * 1024 * 1024;

enum class FrameType : uint8_t
{
    Hello = 1,
    HelloAck = 2,
    Submit = 3,
    Result = 4,
};

/** Submit payload: a batch of assignment rows under one request id. */
struct SubmitFrame
{
    uint64_t id = 0;
    uint32_t numVars = 0;
    /** numRows rows of numVars values each (pc::kMissing allowed). */
    std::vector<std::vector<uint32_t>> rows;
};

/** Result payload: per-row log-likelihood bits, or an error code. */
struct ResultFrame
{
    uint64_t id = 0;
    /** 0 on success, else a REASON_ERR_* code; values then empty. */
    int32_t error = 0;
    std::vector<double> values;
};

/** One decoded frame; only the member matching `type` is meaningful. */
struct Frame
{
    FrameType type = FrameType::Hello;
    uint32_t helloVersion = 0; ///< Hello and HelloAck
    SubmitFrame submit;        ///< Submit
    ResultFrame result;        ///< Result
};

/** Append an encoded Hello / HelloAck / Submit / Result to `out`. */
void appendHello(std::vector<uint8_t> &out,
                 uint32_t version = kProtocolVersion);
void appendHelloAck(std::vector<uint8_t> &out,
                    uint32_t version = kProtocolVersion);
void appendSubmit(std::vector<uint8_t> &out, const SubmitFrame &frame);
void appendResult(std::vector<uint8_t> &out, const ResultFrame &frame);

/**
 * Incremental decoder over an arbitrary byte stream.  feed() appends
 * received bytes; next() yields frames until the buffer runs dry.
 */
class FrameDecoder
{
  public:
    enum class Status
    {
        NeedMore, ///< no complete frame buffered yet
        Ok,       ///< *out holds the next frame
        Malformed ///< protocol violation; decoder is poisoned
    };

    void feed(const uint8_t *data, size_t n);

    /** Decode the next buffered frame into *out. */
    Status next(Frame *out);

    /** True once a malformed frame has been seen (framing lost). */
    bool poisoned() const
    {
        return poisoned_;
    }

  private:
    std::vector<uint8_t> buf_;
    size_t pos_ = 0; ///< consumed prefix of buf_
    bool poisoned_ = false;
};

/**
 * FNV-1a over a byte span — the checksum the socket demo uses to
 * prove bitwise agreement between remote and in-process results.
 */
uint64_t fnv1a(const void *data, size_t n, uint64_t seed = 0);

/** FNV-1a folded over the IEEE-754 bit patterns of `values`. */
uint64_t checksumValues(const double *values, size_t n,
                        uint64_t seed = 0);

} // namespace wire
} // namespace sys
} // namespace reason

#endif // REASON_SYS_WIRE_H
