/**
 * @file
 * Seed-vs-flat evaluation benchmark: times repeated Circuit
 * log-likelihood passes on a >=100k-node random circuit through the
 * reference AoS walker (Circuit::logLikelihood, one allocation per
 * call), the serial flat CSR engine (pc::CircuitEvaluator,
 * allocation-free batched), and the thread-parallel wavefront engine
 * (same evaluator over a multi-worker pool, bit-identical results),
 * plus the linear-domain Dag-vs-core::Evaluator pair, the async
 * batch-serving engine (sys::ReasonEngine: cross-request coalescing
 * vs sequential single-request submission), and the SIMD kernel
 * micro-benches (kernel_logsumexp, hmm_leaf_batch: the util/simd.h
 * pack kernels vs their bit-exact forced-scalar references, with a
 * >= 1.5x gate on vectorized builds for the sum-layer kernel), and
 * the CNF -> d-DNNF -> FlatCircuit compilation differential
 * (compile_flat: 200 random formulas through the legacy Dag WMC, the
 * direct flat lowering, the streamed `.nnf` round-trip, and brute
 * force, with a throughput gate and a zero-mismatch exit gate).
 *
 * Emits one machine-readable JSON line per engine pair (prefix
 * "BENCH_JSON ", with compiler/flags/ISA provenance) so the perf
 * trajectory can be tracked across PRs:
 *
 *   ./bench_eval [num_vars] [reps] [--threads N] [--repeats N]
 *               [--max-batch N]
 *
 * --threads N   worker count of the threaded variant (default:
 *               hardware concurrency; 1 skips the threaded section).
 * --repeats N   same as the positional reps argument.
 * --max-batch N most rows per coalesced serving batch (default 64).
 */

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "../tests/random_circuit.h"
#include "arch/dram.h"
#include "core/builders.h"
#include "core/flat.h"
#include "hmm/hmm.h"
#include "logic/cnf.h"
#include "logic/knowledge.h"
#include "logic/nnf_io.h"
#include "pc/approx.h"
#include "pc/flat_cache.h"
#include "pc/flat_pc.h"
#include "pc/from_logic.h"
#include "pc/learn.h"
#include "pc/pc.h"
#include "sys/engine.h"
#include "sys/fault.h"
#include "sys/net.h"
#if REASON_HAS_SOCKETS
#include "sys/client.h"
#include "sys/server.h"
#endif
#include "util/numeric.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/simd.h"

using namespace reason;
using Clock = std::chrono::steady_clock;

#ifndef REASON_BUILD_FLAGS
#define REASON_BUILD_FLAGS "unknown"
#endif
#ifndef REASON_BUILD_TYPE
#define REASON_BUILD_TYPE "unknown"
#endif

namespace {

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

const char *
compilerName()
{
#if defined(__clang__)
    return "clang++ " __VERSION__;
#elif defined(__GNUC__)
    return "g++ " __VERSION__;
#else
    return "unknown " __VERSION__;
#endif
}

int
usageError()
{
    std::fprintf(stderr, "usage: bench_eval [num_vars >= 2] [reps >= 1] "
                         "[--threads N] [--repeats N] [--max-batch N]\n");
    return 1;
}

/** Order-sensitive FNV-1a over the exact bit patterns of a vector. */
uint64_t
bitHash(const std::vector<double> &v)
{
    uint64_t h = 1469598103934665603ull;
    for (double d : v) {
        uint64_t bits;
        std::memcpy(&bits, &d, sizeof bits);
        for (int i = 0; i < 8; ++i) {
            h ^= (bits >> (i * 8)) & 0xff;
            h *= 1099511628211ull;
        }
    }
    return h;
}

/** Exact bit comparison of two doubles. */
bool
bitsDiffer(double x, double y)
{
    uint64_t bx, by;
    std::memcpy(&bx, &x, sizeof bx);
    std::memcpy(&by, &y, sizeof by);
    return bx != by;
}

// ---------------------------------------------------------------------------
// Forced-scalar reference kernels for the SIMD micro-benches.  These
// run the identical per-lane algorithms (same exp/log polynomials,
// same accumulation order) with the auto-vectorizer disabled, so the
// measured factor is the honest gain of the explicit SIMD layer and
// the outputs must match the SIMD kernels bit for bit.
// ---------------------------------------------------------------------------

/** One sum-layer logsumexp block (8 lanes, SoA terms), scalar lanes.
 *  Every loop carries the per-loop pragma too: on clang the function
 *  attribute alone does not exist, so loop-level disabling is what
 *  keeps the reference honest there. */
REASON_NOVECTORIZE void
sumKernelScalarRef(const double *terms, size_t fanin, double *out)
{
    constexpr size_t B = simd::kLanes;
    REASON_NOVECTORIZE_LOOP
    for (size_t b = 0; b < B; ++b) {
        double hi = reason::kLogZero;
        REASON_NOVECTORIZE_LOOP
        for (size_t e = 0; e < fanin; ++e) {
            const double t = terms[e * B + b];
            hi = t > hi ? t : hi;
        }
        if (hi == reason::kLogZero) {
            out[b] = reason::kLogZero;
            continue;
        }
        double acc = 0.0;
        REASON_NOVECTORIZE_LOOP
        for (size_t e = 0; e < fanin; ++e) {
            const double t = terms[e * B + b];
            if (t != reason::kLogZero)
                acc += fastExpNonPositive(t - hi);
        }
        out[b] = hi + simd::fastLogPositive(acc);
    }
}

/** The same block through the production kernel itself
 *  (simd::sumLayerBlock — the one pc::CircuitEvaluator ships). */
void
sumKernelSimd(const double *terms, size_t fanin, double *scratch,
              double *out)
{
    constexpr size_t B = simd::kLanes;
    simd::store(out, simd::sumLayerBlock(fanin, scratch, [&](size_t e) {
                    return simd::load(terms + e * B);
                }));
}

/** The seed scalar forward recurrence, vectorizer off: the reference
 *  the SIMD leaf-batched hmm::sequenceLogLikelihood must match bitwise. */
REASON_NOVECTORIZE double
hmmForwardScalarRef(const hmm::Hmm &h, const hmm::Sequence &obs,
                    std::vector<double> &alpha, std::vector<double> &next)
{
    const size_t T = obs.size();
    const uint32_t N = h.numStates();
    alpha.resize(N);
    next.resize(N);
    REASON_NOVECTORIZE_LOOP
    for (uint32_t s = 0; s < N; ++s)
        alpha[s] = h.initial(s) * h.emission(s, obs[0]);
    double ll = 0.0;
    for (size_t t = 0;; ++t) {
        double c = 0.0;
        REASON_NOVECTORIZE_LOOP
        for (uint32_t s = 0; s < N; ++s)
            c += alpha[s];
        if (c <= 0.0)
            return reason::kLogZero;
        ll += std::log(c);
        REASON_NOVECTORIZE_LOOP
        for (uint32_t s = 0; s < N; ++s)
            alpha[s] /= c;
        if (t + 1 == T)
            break;
        REASON_NOVECTORIZE_LOOP
        for (uint32_t j = 0; j < N; ++j) {
            double acc = 0.0;
            REASON_NOVECTORIZE_LOOP
            for (uint32_t i = 0; i < N; ++i)
                acc += alpha[i] * h.transition(i, j);
            next[j] = acc * h.emission(j, obs[t + 1]);
        }
        alpha.swap(next);
    }
    return ll;
}

/**
 * Skewed mixture for the approximate tier: C product components over V
 * shared variables with geometrically decaying weights exp(-2.5 k) and
 * near-identical per-component leaf distributions (small perturbations
 * around one shared base), so the negligible-weight tail is negligible
 * *conditionally* too — pruning it is both fast and provably cheap.
 * At the default 1500 vars this is 800 x 151 + 1 = ~120.8k nodes, of
 * which a 1e-3 budget keeps a handful of components.
 */
reason::pc::Circuit
approxMixtureCircuit(reason::Rng &rng, uint32_t num_vars)
{
    using reason::pc::NodeId;
    const uint32_t V = std::max(4u, num_vars / 10);
    const uint32_t C = std::max(8u, num_vars * 8 / 15);
    reason::pc::Circuit mc(V, 2);
    std::vector<double> base(V);
    for (uint32_t v = 0; v < V; ++v)
        base[v] = rng.uniformReal(0.2, 0.8);
    std::vector<NodeId> comps;
    std::vector<double> weights;
    for (uint32_t k = 0; k < C; ++k) {
        std::vector<NodeId> leaves;
        for (uint32_t v = 0; v < V; ++v) {
            const double p =
                base[v] + rng.uniformReal(-0.002, 0.002);
            leaves.push_back(mc.addLeaf(v, {p, 1.0 - p}));
        }
        comps.push_back(mc.addProduct(std::move(leaves)));
        // exp(-2.5 k) underflows to exact 0 past k ~ 283: those
        // components stay in the circuit (the exact engine pays for
        // them) but carry -inf log-weight, the zero-mass case the
        // pruner must drop bitwise-safely.
        weights.push_back(std::exp(-2.5 * double(k)));
    }
    mc.markRoot(mc.addSum(std::move(comps), std::move(weights)));
    return mc;
}

/** Doubles that differ bitwise between two parameter sets. */
size_t
countCircuitParamMismatches(const reason::pc::Circuit &a,
                            const reason::pc::Circuit &b)
{
    auto differ = [](double x, double y) {
        uint64_t bx, by;
        std::memcpy(&bx, &x, sizeof bx);
        std::memcpy(&by, &y, sizeof by);
        return bx != by;
    };
    size_t mismatches = 0;
    for (reason::pc::NodeId id = 0; id < a.numNodes(); ++id) {
        const reason::pc::PcNode &na = a.node(id);
        const reason::pc::PcNode &nb = b.node(id);
        for (size_t k = 0; k < na.weights.size(); ++k)
            mismatches += differ(na.weights[k], nb.weights[k]);
        for (size_t k = 0; k < na.dist.size(); ++k)
            mismatches += differ(na.dist[k], nb.dist[k]);
    }
    return mismatches;
}

} // namespace

int
main(int argc, char **argv)
{
    uint32_t num_vars = 1500;
    size_t reps = 1000;
    unsigned threads = std::thread::hardware_concurrency();
    if (threads == 0)
        threads = 1;
    unsigned max_batch = 64;

    size_t positional = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            if (!util::parseThreadCount(argv[++i], &threads))
                return usageError();
        } else if (std::strcmp(argv[i], "--repeats") == 0 &&
                   i + 1 < argc) {
            reps = size_t(std::atoll(argv[++i]));
        } else if (std::strcmp(argv[i], "--max-batch") == 0 &&
                   i + 1 < argc) {
            long long v = std::atoll(argv[++i]);
            if (v < 1 || v > (1 << 20))
                return usageError();
            max_batch = unsigned(v);
        } else if (argv[i][0] == '-') {
            return usageError();
        } else if (positional == 0) {
            num_vars = uint32_t(std::atoi(argv[i]));
            ++positional;
        } else if (positional == 1) {
            reps = size_t(std::atoll(argv[i]));
            ++positional;
        } else {
            return usageError();
        }
    }
    if (threads == 0) { // --threads 0 = hardware concurrency
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    if (num_vars < 2 || reps == 0)
        return usageError();

    const char *provenance_fmt =
        ",\"compiler\":\"%s\",\"flags\":\"%s\",\"build\":\"%s\","
        "\"simd_isa\":\"%s\",\"cpu_features\":\"%s\"";
    char provenance[768];
    std::snprintf(provenance, sizeof provenance, provenance_fmt,
                  compilerName(), REASON_BUILD_FLAGS, REASON_BUILD_TYPE,
                  simd::isaName(), simd::cpuFeatures());

    Rng rng(2026);
    // num_sums=8, num_inputs=16 yields ~72 interior nodes per region:
    // 1500 vars -> ~120k nodes, ~380k edges.
    pc::Circuit circuit = pc::randomCircuit(rng, num_vars, 2, 8, 16);
    std::printf("circuit: %zu nodes, %zu edges, %u vars\n",
                circuit.numNodes(), circuit.numEdges(),
                circuit.numVars());

    std::vector<pc::Assignment> data =
        pc::sampleDataset(rng, circuit, reps);

    // The serial baseline must stay serial regardless of the global
    // pool, so every "flat" engine below gets an explicit 1-thread pool.
    util::ThreadPool serial_pool(1);

    // --- log-domain: Circuit::logLikelihood vs flat batched ------------
    double sink = 0.0;
    // Warm-up both paths (page in the circuit, prime caches).
    sink += circuit.logLikelihood(data[0]);

    Clock::time_point t0 = Clock::now();
    pc::FlatCircuit flat(circuit);
    pc::CircuitEvaluator eval(flat, &serial_pool);
    double lower_ms = msSince(t0);
    sink += eval.logLikelihood(data[0]);

    t0 = Clock::now();
    double seed_acc = 0.0;
    for (const auto &x : data)
        seed_acc += circuit.logLikelihood(x);
    double seed_ms = msSince(t0);

    std::vector<double> flat_ll(data.size());
    t0 = Clock::now();
    eval.logLikelihoodBatch(data, flat_ll);
    double flat_ms = msSince(t0);

    double flat_acc = 0.0;
    double max_diff = 0.0;
    for (size_t i = 0; i < data.size(); ++i) {
        flat_acc += flat_ll[i];
        double d = std::fabs(flat_ll[i] -
                             circuit.logLikelihood(data[i]));
        max_diff = std::max(max_diff, d);
    }
    double speedup = seed_ms / (flat_ms + lower_ms);
    std::printf("BENCH_JSON {\"bench\":\"bench_eval\",\"engine\":"
                "\"circuit_loglik\",\"nodes\":%zu,\"edges\":%zu,"
                "\"reps\":%zu,\"seed_ms\":%.3f,\"flat_ms\":%.3f,"
                "\"lower_ms\":%.3f,\"speedup\":%.2f,"
                "\"max_abs_diff\":%.3e%s}\n",
                circuit.numNodes(), circuit.numEdges(), reps, seed_ms,
                flat_ms, lower_ms, speedup, max_diff, provenance);
    std::printf("seed %.3f ms, flat %.3f ms (+%.3f ms lowering): "
                "%.2fx %s (target >=5x), max |diff| %.2e\n",
                seed_ms, flat_ms, lower_ms, speedup,
                speedup >= 5.0 ? "PASS" : "BELOW TARGET", max_diff);

    // Bitwise disagreements between engines that must match exactly;
    // any nonzero total fails the run (nonzero exit) so CI catches
    // determinism regressions, not just slowdowns.
    size_t bitwise_failures = 0;
    size_t gate_failures = 0;

    // --- threaded wavefront variant ------------------------------------
    if (threads > 1) {
        util::ThreadPool mt_pool(threads);
        pc::CircuitEvaluator mt_eval(flat, &mt_pool);
        std::vector<double> mt_ll(data.size());
        mt_eval.logLikelihoodBatch(data, mt_ll); // warm per-worker scratch
        t0 = Clock::now();
        mt_eval.logLikelihoodBatch(data, mt_ll);
        double mt_ms = msSince(t0);

        // The wavefront engine must be *bit-identical* to serial flat.
        size_t mismatches = 0;
        for (size_t i = 0; i < data.size(); ++i)
            if (mt_ll[i] != flat_ll[i])
                ++mismatches;
        double mt_speedup = flat_ms / mt_ms;
        std::printf("BENCH_JSON {\"bench\":\"bench_eval\",\"engine\":"
                    "\"circuit_loglik_mt\",\"nodes\":%zu,\"edges\":%zu,"
                    "\"reps\":%zu,\"threads\":%u,\"flat_ms\":%.3f,"
                    "\"mt_ms\":%.3f,\"speedup_vs_flat\":%.2f,"
                    "\"bitwise_mismatches\":%zu%s}\n",
                    circuit.numNodes(), circuit.numEdges(), reps,
                    threads, flat_ms, mt_ms, mt_speedup, mismatches,
                    provenance);
        std::printf("threaded (%u workers): %.3f ms vs serial flat "
                    "%.3f ms: %.2fx %s (target >=2x with >=4 threads), "
                    "%zu bitwise mismatches\n",
                    threads, mt_ms, flat_ms, mt_speedup,
                    mt_speedup >= 2.0 ? "PASS" : "BELOW TARGET",
                    mismatches);
        bitwise_failures += mismatches;
    } else {
        std::printf("threaded section skipped (1 worker)\n");
    }

    // --- reverse-wavefront derivatives (marginal-query backward pass) --
    if (threads > 1) {
        util::ThreadPool mt_pool(threads);
        const size_t deriv_reps = std::min<size_t>(reps, 200);
        std::vector<uint64_t> serial_hash(deriv_reps);
        std::vector<double> logd;

        pc::CircuitEvaluator s_eval(flat, &serial_pool);
        // Warm scratch, then time upward + backward per assignment.
        logDerivativesInto(flat, s_eval.evaluate(data[0]), logd,
                           &serial_pool);
        t0 = Clock::now();
        for (size_t i = 0; i < deriv_reps; ++i) {
            logDerivativesInto(flat, s_eval.evaluate(data[i]), logd,
                               &serial_pool);
            serial_hash[i] = bitHash(logd);
        }
        double deriv_flat_ms = msSince(t0);

        pc::CircuitEvaluator mt_eval(flat, &mt_pool);
        logDerivativesInto(flat, mt_eval.evaluate(data[0]), logd,
                           &mt_pool);
        size_t mismatches = 0;
        t0 = Clock::now();
        for (size_t i = 0; i < deriv_reps; ++i) {
            logDerivativesInto(flat, mt_eval.evaluate(data[i]), logd,
                               &mt_pool);
            if (bitHash(logd) != serial_hash[i])
                ++mismatches;
        }
        double deriv_mt_ms = msSince(t0);
        double deriv_speedup = deriv_flat_ms / deriv_mt_ms;
        std::printf("BENCH_JSON {\"bench\":\"bench_eval\",\"engine\":"
                    "\"derivatives_mt\",\"nodes\":%zu,\"edges\":%zu,"
                    "\"reps\":%zu,\"threads\":%u,\"flat_ms\":%.3f,"
                    "\"mt_ms\":%.3f,\"speedup_vs_flat\":%.2f,"
                    "\"bitwise_mismatches\":%zu%s}\n",
                    circuit.numNodes(), circuit.numEdges(), deriv_reps,
                    threads, deriv_flat_ms, deriv_mt_ms, deriv_speedup,
                    mismatches, provenance);
        std::printf("derivatives (%u workers): %.3f ms vs serial "
                    "%.3f ms: %.2fx, %zu bitwise mismatches\n",
                    threads, deriv_mt_ms, deriv_flat_ms, deriv_speedup,
                    mismatches);
        bitwise_failures += mismatches;
    } else {
        std::printf("derivatives section skipped (1 worker)\n");
    }

    // --- sharded EM fit -------------------------------------------------
    if (threads > 1) {
        // Smaller model: EM is O(iters * samples * edges) and the point
        // here is shard scaling plus determinism, not raw size.
        const uint32_t em_vars = std::max(32u, num_vars / 16);
        const size_t em_samples = std::min<size_t>(reps, 512);
        pc::Circuit em_truth = pc::randomCircuit(rng, em_vars, 2, 4, 8);
        std::vector<pc::Assignment> em_data =
            pc::sampleDataset(rng, em_truth, em_samples);
        pc::Circuit em_model = pc::randomCircuit(rng, em_vars, 2, 4, 8);

        pc::EmOptions em_opts;
        em_opts.maxIterations = 4;
        em_opts.tolerance = 0.0; // run every iteration
        em_opts.shards = 0;
        em_opts.deterministic = true;

        // emTrain reaches the pool through the global knob.
        util::setGlobalThreads(1);
        pc::Circuit serial_model = em_model;
        t0 = Clock::now();
        pc::EmTrace serial_trace =
            pc::emTrain(serial_model, em_data, em_opts);
        double em_serial_ms = msSince(t0);

        util::setGlobalThreads(threads);
        pc::Circuit mt_model = em_model;
        t0 = Clock::now();
        pc::EmTrace mt_trace = pc::emTrain(mt_model, em_data, em_opts);
        double em_mt_ms = msSince(t0);
        util::setGlobalThreads(0); // restore the default pool

        size_t mismatches =
            countCircuitParamMismatches(serial_model, mt_model);
        if (bitHash(serial_trace.logLikelihood) !=
            bitHash(mt_trace.logLikelihood))
            ++mismatches;
        const unsigned em_shards = util::resolveShardCount(
            em_opts.shards, em_opts.deterministic, em_samples, threads);
        double em_speedup = em_serial_ms / em_mt_ms;
        std::printf("BENCH_JSON {\"bench\":\"bench_eval\",\"engine\":"
                    "\"em_fit\",\"nodes\":%zu,\"edges\":%zu,"
                    "\"reps\":%zu,\"iters\":%u,\"threads\":%u,"
                    "\"shards\":%u,\"flat_ms\":%.3f,\"mt_ms\":%.3f,"
                    "\"speedup_vs_flat\":%.2f,"
                    "\"bitwise_mismatches\":%zu%s}\n",
                    em_model.numNodes(), em_model.numEdges(),
                    em_samples, serial_trace.iterations, threads,
                    em_shards, em_serial_ms, em_mt_ms, em_speedup,
                    mismatches, provenance);
        std::printf("em_fit (%u workers, %u shards): %.3f ms vs serial "
                    "%.3f ms: %.2fx, %zu bitwise mismatches\n",
                    threads, em_shards, em_mt_ms, em_serial_ms,
                    em_speedup, mismatches);
        bitwise_failures += mismatches;
    } else {
        std::printf("em_fit section skipped (1 worker)\n");
    }

    // --- SIMD sum-layer kernel vs forced-scalar reference ---------------
    {
        // Synthetic sum-layer blocks exercising exactly the canonical
        // two-pass logsumexp kernel (max scan, masked exp-accumulate,
        // vectorized log) against the bit-exact scalar-lane reference
        // with the auto-vectorizer disabled.  Outputs must match
        // bitwise; the SIMD build must clear >= 1.5x (the gate is
        // waived when the build itself is the scalar fallback).
        constexpr size_t kNodes = 2048;
        constexpr size_t kFanIn = 16;
        constexpr size_t B = simd::kLanes;
        const size_t kernel_rounds = std::max<size_t>(reps / 20, 10);
        std::vector<double> terms(kNodes * kFanIn * B);
        {
            Rng krng(77);
            for (double &t : terms) {
                t = -60.0 * krng.uniform01();
                if (krng.uniform01() < 0.05)
                    t = kLogZero; // masked term lanes
            }
            // A few dead blocks (every term -inf in a lane).
            for (size_t node = 0; node < kNodes; node += 97)
                for (size_t e = 0; e < kFanIn; ++e)
                    terms[(node * kFanIn + e) * B] = kLogZero;
        }
        std::vector<double> out_scalar(kNodes * B);
        std::vector<double> out_simd(kNodes * B);
        std::vector<double> simd_scratch(kFanIn * B);
        // Warm both paths once, then take the best of three timed
        // rounds each (robust against scheduler noise on CI hosts).
        auto run_scalar = [&] {
            for (size_t n = 0; n < kNodes; ++n)
                sumKernelScalarRef(terms.data() + n * kFanIn * B,
                                   kFanIn, out_scalar.data() + n * B);
        };
        auto run_simd = [&] {
            for (size_t n = 0; n < kNodes; ++n)
                sumKernelSimd(terms.data() + n * kFanIn * B, kFanIn,
                              simd_scratch.data(),
                              out_simd.data() + n * B);
        };
        run_scalar();
        run_simd();
        double scalar_ms = 1e300, simd_ms = 1e300;
        for (int round = 0; round < 3; ++round) {
            t0 = Clock::now();
            for (size_t r = 0; r < kernel_rounds; ++r)
                run_scalar();
            scalar_ms = std::min(scalar_ms, msSince(t0));
            t0 = Clock::now();
            for (size_t r = 0; r < kernel_rounds; ++r)
                run_simd();
            simd_ms = std::min(simd_ms, msSince(t0));
        }
        size_t mismatches = 0;
        for (size_t i = 0; i < out_scalar.size(); ++i)
            mismatches += bitsDiffer(out_scalar[i], out_simd[i]);

        // Batch-shape/thread sweep on the real circuit: every row of
        // every batch shape must match the single-row walk bitwise.
        for (unsigned sweep_threads : {1u, 2u, 4u}) {
            util::ThreadPool sweep_pool(sweep_threads);
            pc::CircuitEvaluator batch_eval(flat, &sweep_pool);
            pc::CircuitEvaluator row_eval(flat, &serial_pool);
            for (size_t n : {size_t(1), size_t(3), size_t(8),
                             size_t(13), size_t(21)}) {
                std::vector<pc::Assignment> rows(
                    data.begin(), data.begin() + std::min(n, data.size()));
                std::vector<double> batch_ll(rows.size());
                batch_eval.logLikelihoodBatch(rows, batch_ll);
                for (size_t i = 0; i < rows.size(); ++i)
                    mismatches += bitsDiffer(
                        batch_ll[i], row_eval.logLikelihood(rows[i]));
            }
        }

        const double kernel_speedup = scalar_ms / simd_ms;
        const bool is_scalar_build =
            std::strcmp(simd::isaName(), "scalar") == 0;
        const bool below_target =
            !is_scalar_build && kernel_speedup < 1.5;
        std::printf("BENCH_JSON {\"bench\":\"bench_eval\",\"engine\":"
                    "\"kernel_logsumexp\",\"nodes\":%zu,\"edges\":%zu,"
                    "\"reps\":%zu,\"fanin\":%zu,\"scalar_ms\":%.3f,"
                    "\"simd_ms\":%.3f,\"speedup_vs_scalar\":%.2f,"
                    "\"bitwise_mismatches\":%zu%s}\n",
                    kNodes, kNodes * kFanIn * B, kernel_rounds, kFanIn,
                    scalar_ms, simd_ms, kernel_speedup, mismatches,
                    provenance);
        std::printf("kernel_logsumexp (%s): scalar %.3f ms, simd "
                    "%.3f ms: %.2fx %s (target >=1.5x unless scalar "
                    "build), %zu bitwise mismatches\n",
                    simd::isaName(), scalar_ms, simd_ms, kernel_speedup,
                    below_target ? "BELOW TARGET" : "PASS", mismatches);
        bitwise_failures += mismatches;
        if (below_target) {
            std::fprintf(stderr,
                         "bench_eval: kernel_logsumexp %.2fx below the "
                         "1.5x SIMD target on a %s build\n",
                         kernel_speedup, simd::isaName());
            ++bitwise_failures;
        }
    }

    // --- SIMD-width HMM leaf batching vs forced-scalar reference --------
    {
        // The library forward pass (transposed emission columns +
        // rank-1 SIMD matvec) against the seed scalar recurrence with
        // the vectorizer disabled.  The restructured loops preserve
        // per-lane accumulation order, so outputs must match bitwise.
        Rng hrng(4242);
        const uint32_t kStates = 48;
        const uint32_t kSymbols = 24;
        const size_t kSeqs = 48;
        const size_t kLen = 64;
        hmm::Hmm model = hmm::Hmm::random(hrng, kStates, kSymbols, 0.7);
        std::vector<hmm::Sequence> seqs(kSeqs);
        for (auto &s : seqs)
            model.sample(hrng, kLen, &s);

        std::vector<double> scalar_ll(kSeqs), simd_ll(kSeqs);
        std::vector<double> a_scratch, n_scratch;
        auto run_scalar = [&] {
            for (size_t i = 0; i < kSeqs; ++i)
                scalar_ll[i] = hmmForwardScalarRef(model, seqs[i],
                                                   a_scratch, n_scratch);
        };
        auto run_simd = [&] {
            hmm::sequenceLogLikelihoods(model, seqs, simd_ll,
                                        &serial_pool);
        };
        run_scalar();
        run_simd();
        const size_t hmm_rounds = std::max<size_t>(reps / 50, 4);
        double scalar_ms = 1e300, simd_ms = 1e300;
        for (int round = 0; round < 3; ++round) {
            t0 = Clock::now();
            for (size_t r = 0; r < hmm_rounds; ++r)
                run_scalar();
            scalar_ms = std::min(scalar_ms, msSince(t0));
            t0 = Clock::now();
            for (size_t r = 0; r < hmm_rounds; ++r)
                run_simd();
            simd_ms = std::min(simd_ms, msSince(t0));
        }
        size_t mismatches = 0;
        for (size_t i = 0; i < kSeqs; ++i)
            mismatches += bitsDiffer(scalar_ll[i], simd_ll[i]);
        const double hmm_speedup = scalar_ms / simd_ms;
        std::printf("BENCH_JSON {\"bench\":\"bench_eval\",\"engine\":"
                    "\"hmm_leaf_batch\",\"nodes\":%u,\"edges\":%u,"
                    "\"reps\":%zu,\"seqs\":%zu,\"seq_len\":%zu,"
                    "\"scalar_ms\":%.3f,\"simd_ms\":%.3f,"
                    "\"speedup_vs_scalar\":%.2f,"
                    "\"bitwise_mismatches\":%zu%s}\n",
                    kStates,
                    kStates * kStates + kStates * kSymbols, hmm_rounds,
                    kSeqs, kLen, scalar_ms, simd_ms, hmm_speedup,
                    mismatches, provenance);
        std::printf("hmm_leaf_batch (%s): scalar %.3f ms, simd %.3f "
                    "ms: %.2fx, %zu bitwise mismatches\n",
                    simd::isaName(), scalar_ms, simd_ms, hmm_speedup,
                    mismatches);
        bitwise_failures += mismatches;
    }

    // --- async serving engine: coalesced vs sequential -----------------
    {
        // serveThreads is pinned to 1 so the measured factor isolates
        // cross-request coalescing (SoA batch amortization) from
        // wavefront threading; every row runs through the canonical
        // SIMD block kernel, so outputs must match bitwise.
        sys::ServeOptions sopts;
        sopts.maxBatch = max_batch;
        sopts.serveThreads = 1;
        sopts.maxCoalesceWindowUs = 0;

        // Sequential baseline: submit-and-wait one request at a time
        // (batch occupancy 1, no overlap between client and engine).
        std::vector<double> seq_ll(data.size());
        double seq_ms = 0.0;
        {
            sys::ReasonEngine engine(sopts);
            sys::Session session = engine.createSession(circuit);
            session.wait(session.submit(data[0])); // warm evaluator
            t0 = Clock::now();
            for (size_t i = 0; i < data.size(); ++i)
                seq_ll[i] =
                    session.wait(session.submit(data[i]))->outputs[0];
            seq_ms = msSince(t0);
        }

        // Coalesced serving: two sessions over the same circuit (the
        // lowering cache gives them one coalescing key); the backlog
        // is built while the dispatcher is paused, then released.
        std::vector<double> serve_ll(data.size());
        std::vector<double> lat_ms(data.size());
        double serve_ms = 0.0;
        sys::EngineStats warm{}, stats{};
        {
            sys::ReasonEngine engine(sopts);
            sys::Session sessions[2] = {engine.createSession(circuit),
                                        engine.createSession(circuit)};
            sessions[0].wait(sessions[0].submit(data[0])); // warm
            engine.pause();
            warm = engine.stats();
            std::vector<sys::RequestHandle> handles(data.size());
            for (size_t i = 0; i < data.size(); ++i)
                handles[i] = sessions[i % 2].submit(data[i]);
            t0 = Clock::now();
            engine.resume();
            for (size_t i = 0; i < data.size(); ++i) {
                std::shared_ptr<const sys::Request> r =
                    sessions[i % 2].wait(handles[i]);
                serve_ll[i] = r->outputs[0];
                lat_ms[i] = double(r->latencyNs()) * 1e-6;
            }
            serve_ms = msSince(t0);
            stats = engine.stats();
        }

        size_t mismatches = 0;
        for (size_t i = 0; i < data.size(); ++i) {
            uint64_t ba, bb;
            std::memcpy(&ba, &seq_ll[i], sizeof ba);
            std::memcpy(&bb, &serve_ll[i], sizeof bb);
            mismatches += ba != bb;
        }
        const uint64_t serve_batches = stats.batches - warm.batches;
        const double occupancy =
            serve_batches == 0
                ? 0.0
                : double(stats.rows - warm.rows) /
                      double(serve_batches);
        std::sort(lat_ms.begin(), lat_ms.end());
        auto percentile = [&](double p) {
            return lat_ms[std::min(lat_ms.size() - 1,
                                   size_t(p * double(lat_ms.size())))];
        };
        const double speedup = seq_ms / serve_ms;
        const double rps =
            double(data.size()) / (serve_ms * 1e-3);
        std::printf("BENCH_JSON {\"bench\":\"bench_eval\",\"engine\":"
                    "\"serving\",\"nodes\":%zu,\"edges\":%zu,"
                    "\"reps\":%zu,\"threads\":%u,\"max_batch\":%u,"
                    "\"clients\":2,\"seq_ms\":%.3f,\"serve_ms\":%.3f,"
                    "\"speedup_vs_seq\":%.2f,\"requests_per_sec\":%.1f,"
                    "\"p50_ms\":%.4f,\"p99_ms\":%.4f,"
                    "\"mean_batch_occupancy\":%.2f,"
                    "\"bitwise_mismatches\":%zu%s}\n",
                    circuit.numNodes(), circuit.numEdges(), data.size(),
                    sopts.serveThreads, max_batch, seq_ms, serve_ms,
                    speedup, rps, percentile(0.50), percentile(0.99),
                    occupancy, mismatches, provenance);
        std::printf("serving: coalesced %.3f ms vs sequential %.3f ms: "
                    "%.2fx %s (target >=2x), occupancy %.2f %s, "
                    "%zu bitwise mismatches\n",
                    serve_ms, seq_ms, speedup,
                    speedup >= 2.0 ? "PASS" : "BELOW TARGET", occupancy,
                    occupancy > 1.0 ? "PASS" : "BELOW TARGET",
                    mismatches);
        bitwise_failures += mismatches;
    }

    // --- scale-out serving: N dispatchers, bounded queue, shedding -----
    if (threads > 1) {
        // One-at-a-time reference: the bitwise ground truth every
        // multi-dispatcher configuration must reproduce exactly.
        sys::ServeOptions ref_opts;
        ref_opts.maxBatch = max_batch;
        ref_opts.serveThreads = 1;
        std::vector<double> ref_ll(data.size());
        {
            sys::ReasonEngine engine(ref_opts);
            sys::Session session = engine.createSession(circuit);
            session.wait(session.submit(data[0])); // warm evaluator
            for (size_t i = 0; i < data.size(); ++i)
                ref_ll[i] =
                    session.wait(session.submit(data[i]))->outputs[0];
        }

        constexpr size_t kClients = 4;
        size_t mismatches = 0;
        // Identity sweep: dispatcher counts x queue policies (plus
        // linger autotuning on the widest config).  Backlog is built
        // under pause so coalescing itself is deterministic; the
        // *outputs* must be bit-identical in any case.
        double serve_ms = 0.0, occupancy = 0.0;
        double p50_ms = 0.0, p99_ms = 0.0, rps = 0.0;
        for (unsigned dispatchers : {1u, 2u, 4u}) {
            for (sys::QueuePolicy policy :
                 {sys::QueuePolicy::RejectNew,
                  sys::QueuePolicy::ShedOldest}) {
                sys::ServeOptions sopts;
                sopts.maxBatch = max_batch;
                sopts.serveThreads = 1;
                sopts.dispatchers = dispatchers;
                sopts.queuePolicy = policy;
                sopts.autoLingerWindow = dispatchers == 4;
                sopts.startPaused = true;
                sys::ReasonEngine engine(sopts);
                sys::EngineStats stats{};
                std::vector<sys::Session> sessions;
                for (size_t c = 0; c < kClients; ++c)
                    sessions.push_back(engine.createSession(circuit));
                std::vector<sys::RequestHandle> handles(data.size());
                for (size_t i = 0; i < data.size(); ++i)
                    handles[i] =
                        sessions[i % kClients].submit(data[i]);
                const auto t0 = Clock::now();
                engine.resume();
                for (size_t i = 0; i < data.size(); ++i) {
                    std::shared_ptr<const sys::Request> r =
                        sessions[i % kClients].wait(handles[i]);
                    uint64_t ba, bb;
                    std::memcpy(&ba, &ref_ll[i], sizeof ba);
                    std::memcpy(&bb, &r->outputs[0], sizeof bb);
                    mismatches += r->error != sys::REASON_OK ||
                                  ba != bb;
                }
                const double ms = msSince(t0);
                stats = engine.stats();
                // Report throughput/latency of the widest sweep
                // configuration (4 dispatchers, shed policy).
                if (dispatchers == 4 &&
                    policy == sys::QueuePolicy::ShedOldest) {
                    serve_ms = ms;
                    rps = double(data.size()) / (ms * 1e-3);
                    // No batch ran before resume() (warm.batches is
                    // 0), so the engine-lifetime mean is exactly the
                    // drain-phase occupancy.
                    occupancy = stats.meanBatchOccupancy;
                    p50_ms = stats.p50LatencyMs;
                    p99_ms = stats.p99LatencyMs;
                }
            }
        }

        // Deterministic 2x-capacity overload: build the backlog while
        // paused, so exactly `capacity` requests are admitted and
        // `capacity` shed (ShedOldest keeps the newest).  Queue depth
        // must never exceed capacity, and the latency of admitted
        // requests must be bounded by capacity — not by offered load.
        const size_t capacity =
            std::max<size_t>(8, std::min<size_t>(data.size() / 2, 256));
        const size_t offered = 2 * capacity;
        uint64_t shed = 0;
        size_t admitted = 0;
        sys::EngineStats over_stats{};
        {
            sys::ServeOptions sopts;
            sopts.maxBatch = max_batch;
            sopts.serveThreads = 1;
            sopts.dispatchers = 2;
            sopts.queueCapacity = capacity;
            sopts.queuePolicy = sys::QueuePolicy::ShedOldest;
            sopts.startPaused = true;
            sys::ReasonEngine engine(sopts);
            std::vector<sys::Session> sessions;
            for (size_t c = 0; c < kClients; ++c)
                sessions.push_back(engine.createSession(circuit));
            std::vector<sys::RequestHandle> handles(offered);
            for (size_t i = 0; i < offered; ++i)
                handles[i] = sessions[i % kClients].submit(
                    data[i % data.size()]);
            engine.resume();
            for (size_t i = 0; i < offered; ++i) {
                std::shared_ptr<const sys::Request> r =
                    sessions[i % kClients].wait(handles[i]);
                if (r->error == sys::REASON_ERR_OVERLOAD) {
                    ++shed;
                    continue;
                }
                ++admitted;
                uint64_t ba, bb;
                std::memcpy(&ba, &ref_ll[i % data.size()], sizeof ba);
                std::memcpy(&bb, &r->outputs[0], sizeof bb);
                mismatches += r->error != sys::REASON_OK || ba != bb;
            }
            over_stats = engine.stats();
        }
        const double shed_rate = double(shed) / double(offered);
        const double over_p99 = over_stats.p99LatencyMs;

        // Gates: exact shed accounting, bounded depth, bounded
        // admitted-latency tail.  The wide absolute p99 bound only
        // rejects runaway queueing; shedding is what keeps the tail
        // independent of offered load.
        const bool shed_ok = shed == capacity && admitted == capacity;
        const bool depth_ok = over_stats.maxQueueDepth <= capacity;
        const bool p99_ok = over_p99 > 0.0 && over_p99 <= 1000.0;
        gate_failures += !shed_ok + !depth_ok + !p99_ok;

        std::printf(
            "BENCH_JSON {\"bench\":\"bench_eval\",\"engine\":"
            "\"serving_mt\",\"nodes\":%zu,\"edges\":%zu,"
            "\"reps\":%zu,\"threads\":%u,\"dispatchers\":4,"
            "\"max_batch\":%u,\"clients\":%zu,\"serve_ms\":%.3f,"
            "\"requests_per_sec\":%.1f,\"p50_ms\":%.4f,"
            "\"p99_ms\":%.4f,\"mean_batch_occupancy\":%.2f,"
            "\"capacity\":%zu,\"shed_rate\":%.3f,"
            "\"max_queue_depth\":%llu,\"overload_p99_ms\":%.4f,"
            "\"bitwise_mismatches\":%zu%s}\n",
            circuit.numNodes(), circuit.numEdges(), data.size(),
            1u, max_batch, kClients, serve_ms, rps, p50_ms, p99_ms,
            occupancy, capacity, shed_rate,
            (unsigned long long)over_stats.maxQueueDepth, over_p99,
            mismatches, provenance);
        std::printf(
            "serving_mt: %.1f req/s over 4 dispatchers (p50 %.4f "
            "ms, p99 %.4f ms, occupancy %.2f), %zu bitwise "
            "mismatches %s\n",
            rps, p50_ms, p99_ms, occupancy, mismatches,
            mismatches == 0 ? "PASS" : "FAIL");
        std::printf(
            "serving_mt overload: 2x capacity %zu -> shed rate %.3f "
            "%s, max depth %llu %s, admitted p99 %.4f ms %s\n",
            capacity, shed_rate, shed_ok ? "PASS" : "FAIL",
            (unsigned long long)over_stats.maxQueueDepth,
            depth_ok ? "PASS" : "FAIL", over_p99,
            p99_ok ? "PASS" : "FAIL");
        bitwise_failures += mismatches;
    }

    // --- approximate/anytime tier: budgeted evaluator + bound gate ------
    {
        // Speedup leg: the skewed mixture (~120k nodes at the default
        // size) where a 1e-3 budget keeps a handful of components.
        // Exact baseline is the production serial flat engine; the
        // approximate tier must clear >= 10x with actual error
        // |dlogp| <= 1e-3 (gate waived on small bench sizes, where the
        // mixture is too tiny for either the timing or the pruning
        // ratio to mean anything).
        Rng arng(909);
        pc::Circuit mix = approxMixtureCircuit(arng, num_vars);
        pc::FlatCircuit mix_flat(mix);
        const double gate_budget = 1e-3;
        pc::ApproxOptions aopts;
        aopts.budget = gate_budget;
        pc::ApproxEvaluator aeval(mix_flat, aopts);
        pc::CircuitEvaluator mix_eval(mix_flat, &serial_pool);

        const size_t approx_reps = std::min<size_t>(reps, 200);
        std::vector<pc::Assignment> mix_rows =
            pc::sampleDataset(arng, mix, approx_reps);
        std::vector<double> exact_ll(mix_rows.size());
        std::vector<pc::ApproxResult> approx_res;
        mix_eval.logLikelihoodBatch(mix_rows, exact_ll); // warm
        aeval.queryBatch(mix_rows, approx_res);          // warm
        double exact_ms = 1e300, approx_ms = 1e300;
        for (int round = 0; round < 3; ++round) {
            t0 = Clock::now();
            mix_eval.logLikelihoodBatch(mix_rows, exact_ll);
            exact_ms = std::min(exact_ms, msSince(t0));
            t0 = Clock::now();
            aeval.queryBatch(mix_rows, approx_res);
            approx_ms = std::min(approx_ms, msSince(t0));
        }
        size_t violations = 0;
        double max_dlogp = 0.0, sum_dlogp = 0.0;
        for (size_t i = 0; i < mix_rows.size(); ++i) {
            const pc::ApproxResult &r = approx_res[i];
            violations +=
                !(r.lo <= exact_ll[i] && exact_ll[i] <= r.hi);
            const double d = std::fabs(r.value - exact_ll[i]);
            sum_dlogp += d;
            max_dlogp = std::max(max_dlogp, d);
        }
        const double mean_dlogp =
            mix_rows.empty() ? 0.0
                             : sum_dlogp / double(mix_rows.size());
        const double approx_speedup = exact_ms / approx_ms;

        // Differential corpus: the certified interval must contain the
        // exact answer on every query of 200 adversarial random
        // circuits (shared DAGs, zero weights, non-decomposable
        // structure) across the budget sweep; budget 0 must be
        // *bit-identical* to the exact engine, and rebuilding the
        // evaluator must reproduce every bit (determinism).
        size_t corpus_checks = 0, identity_mismatches = 0,
               determinism_mismatches = 0;
        Rng crng(20260807);
        for (int cc = 0; cc < 200; ++cc) {
            pc::Circuit c = testutil::randomTestCircuit(crng);
            pc::FlatCircuit cf(c);
            pc::CircuitEvaluator cev(cf, &serial_pool);
            const std::vector<pc::Assignment> rows =
                testutil::randomPartialAssignments(crng, c, 4, 0.3);
            for (double budget : {0.0, 0.01, 0.1, 0.5, 1.0}) {
                pc::ApproxOptions o;
                o.budget = budget;
                pc::ApproxEvaluator ae(cf, o);
                pc::ApproxEvaluator ae2(cf, o);
                for (const pc::Assignment &x : rows) {
                    const double exact = cev.logLikelihood(x);
                    const pc::ApproxResult r = ae.query(x);
                    const pc::ApproxResult r2 = ae2.query(x);
                    ++corpus_checks;
                    violations += !(r.lo <= exact && exact <= r.hi);
                    determinism_mismatches +=
                        bitsDiffer(r.value, r2.value) ||
                        bitsDiffer(r.lo, r2.lo) ||
                        bitsDiffer(r.hi, r2.hi);
                    if (budget == 0.0)
                        identity_mismatches +=
                            bitsDiffer(r.value, exact) ||
                            bitsDiffer(r.lo, exact) ||
                            bitsDiffer(r.hi, exact);
                }
            }
        }

        // Bound violations and bitwise regressions always fail the
        // run; the speedup/accuracy gate needs the full-size mixture.
        const bool tiny_mixture = mix_flat.numNodes() < 20000;
        const bool speed_ok =
            tiny_mixture ||
            (approx_speedup >= 10.0 && max_dlogp <= 1e-3);
        gate_failures += violations != 0;
        gate_failures += !speed_ok;
        bitwise_failures +=
            identity_mismatches + determinism_mismatches;

        std::printf(
            "BENCH_JSON {\"bench\":\"bench_eval\",\"engine\":"
            "\"approx_tier\",\"nodes\":%zu,\"edges\":%zu,"
            "\"reps\":%zu,\"budget\":%.0e,\"kept_nodes\":%zu,"
            "\"total_nodes\":%zu,\"exact_ms\":%.3f,"
            "\"approx_ms\":%.3f,\"speedup_vs_exact\":%.2f,"
            "\"mean_abs_dlogp\":%.3e,\"max_abs_dlogp\":%.3e,"
            "\"corpus_circuits\":200,\"corpus_checks\":%zu,"
            "\"bound_violations\":%zu,\"bitwise_mismatches\":%zu%s}\n",
            mix_flat.numNodes(), mix_flat.numEdges(), mix_rows.size(),
            gate_budget, aeval.keptNodes(), aeval.totalNodes(),
            exact_ms, approx_ms, approx_speedup, mean_dlogp,
            max_dlogp, corpus_checks, violations,
            identity_mismatches + determinism_mismatches, provenance);
        std::printf(
            "approx_tier: exact %.3f ms, approx %.3f ms (%zu/%zu "
            "nodes kept): %.2fx %s (target >=10x at |dlogp| <= 1e-3"
            "%s), max |dlogp| %.2e, %zu bound violations over %zu "
            "corpus checks, %zu identity / %zu determinism "
            "mismatches\n",
            exact_ms, approx_ms, aeval.keptNodes(),
            aeval.totalNodes(), approx_speedup,
            speed_ok && violations == 0 ? "PASS" : "FAIL",
            tiny_mixture ? ", waived: tiny mixture" : "", max_dlogp,
            violations, corpus_checks, identity_mismatches,
            determinism_mismatches);
    }

    // --- CNF -> d-DNNF -> FlatCircuit compilation differential ---------
    // A 200-formula randomized corpus (mixed clause lengths with
    // duplicates, planted SAT, forced UNSAT, sparse formulas with
    // unused variables) through the four WMC routes the tests pin:
    // legacy Dag wmc, direct flat lowering, streamed `.nnf`
    // round-trip (must be byte-identical to the direct lowering), and
    // brute-force enumeration.  Any mismatch fails the run.
    {
        Rng crng(0xc0de);
        std::vector<logic::CnfFormula> corpus;
        auto randomClause = [&](logic::CnfFormula &f, uint32_t vars,
                                uint32_t len) {
            logic::Clause c;
            for (uint32_t k = 0; k < len; ++k)
                c.push_back(logic::Lit::make(
                    uint32_t(crng.uniformInt(0, vars - 1)),
                    crng.bernoulli(0.5)));
            f.addClause(c);
        };
        while (corpus.size() < 200) {
            switch (corpus.size() % 4) {
              case 0: {
                uint32_t vars = uint32_t(crng.uniformInt(2, 12));
                logic::CnfFormula f;
                f.ensureVars(vars);
                uint32_t n = uint32_t(crng.uniformInt(1, vars * 3));
                for (uint32_t c = 0; c < n; ++c)
                    randomClause(f, vars,
                                 uint32_t(crng.uniformInt(1, 4)));
                if (f.numClauses() > 0)
                    f.addClause(f.clauses()[0]); // duplicate clause
                corpus.push_back(std::move(f));
                break;
              }
              case 1:
                corpus.push_back(logic::plantedKSat(
                    crng, uint32_t(crng.uniformInt(4, 12)), 24, 3));
                break;
              case 2: {
                uint32_t vars = uint32_t(crng.uniformInt(2, 10));
                logic::CnfFormula f;
                f.ensureVars(vars);
                for (uint32_t c = 0; c < vars; ++c)
                    randomClause(f, vars,
                                 uint32_t(crng.uniformInt(2, 3)));
                f.addClause({1});
                f.addClause({-1}); // force UNSAT
                corpus.push_back(std::move(f));
                break;
              }
              default: {
                logic::CnfFormula f;
                f.ensureVars(uint32_t(crng.uniformInt(6, 12)));
                for (uint32_t c = 0; c < 4; ++c)
                    randomClause(f, 2,
                                 uint32_t(crng.uniformInt(1, 2)));
                corpus.push_back(std::move(f));
                break;
              }
            }
        }

        size_t wmc_mismatches = 0;
        size_t stream_mismatches = 0;
        size_t dnnf_nodes = 0;
        size_t dnnf_edges = 0;
        double compile_ms = 0.0, lower_ms2 = 0.0, stream_ms = 0.0;
        auto close = [](double a, double b) {
            if (std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b))
                return true;
            double s = std::max({1.0, std::fabs(a), std::fabs(b)});
            return std::fabs(a - b) <= 1e-10 * s;
        };
        for (const logic::CnfFormula &f : corpus) {
            t0 = Clock::now();
            logic::DnnfGraph g = logic::compileToDnnf(f);
            compile_ms += msSince(t0);
            dnnf_nodes += g.numNodes();
            dnnf_edges += g.numEdges();
            logic::LitWeights w =
                logic::LitWeights::random(crng, f.numVars());

            double dag_wmc = g.wmc(w);

            t0 = Clock::now();
            pc::FlatCircuit direct = pc::flatFromDnnf(g, w);
            lower_ms2 += msSince(t0);
            double flat_log = pc::flatLogWmc(direct);

            std::istringstream in(logic::toC2dFormat(g));
            pc::FlatCircuit streamed;
            logic::NnfError err;
            t0 = Clock::now();
            bool ok = pc::streamNnfToFlat(in, w, &streamed, &err);
            stream_ms += msSince(t0);
            if (!ok ||
                pc::structuralFingerprint(streamed) !=
                    pc::structuralFingerprint(direct) ||
                std::bit_cast<uint64_t>(pc::flatLogWmc(streamed)) !=
                    std::bit_cast<uint64_t>(flat_log))
                ++stream_mismatches;

            double brute = 0.0;
            for (uint64_t m = 0; m < (uint64_t(1) << f.numVars());
                 ++m) {
                std::vector<bool> a(f.numVars());
                for (uint32_t v = 0; v < f.numVars(); ++v)
                    a[v] = (m >> v) & 1;
                if (!f.evaluate(a))
                    continue;
                double p = 1.0;
                for (uint32_t v = 0; v < f.numVars(); ++v)
                    p *= a[v] ? w.pos[v] : w.neg[v];
                brute += p;
            }
            double flat_wmc = std::exp(flat_log);
            if (!close(dag_wmc, flat_wmc) || !close(dag_wmc, brute) ||
                !close(flat_wmc, brute))
                ++wmc_mismatches;
        }
        double formulas_per_s =
            compile_ms > 0.0 ? 200.0 / (compile_ms / 1000.0) : 0.0;
        const bool throughput_ok = formulas_per_s >= 20.0;
        bitwise_failures += stream_mismatches;
        gate_failures += wmc_mismatches != 0;
        gate_failures += !throughput_ok;
        std::printf(
            "BENCH_JSON {\"bench\":\"bench_eval\",\"engine\":"
            "\"compile_flat\",\"nodes\":%zu,\"edges\":%zu,"
            "\"reps\":200,\"formulas\":200,"
            "\"compile_ms\":%.3f,\"lower_ms\":%.3f,\"stream_ms\":%.3f,"
            "\"formulas_per_s\":%.1f,\"wmc_mismatches\":%zu,"
            "\"bitwise_mismatches\":%zu%s}\n",
            dnnf_nodes, dnnf_edges, compile_ms, lower_ms2, stream_ms,
            formulas_per_s, wmc_mismatches, stream_mismatches,
            provenance);
        std::printf(
            "compile_flat: 200 formulas (%zu d-DNNF nodes) compiled in "
            "%.3f ms (%.0f/s %s, target >=20/s), lower %.3f ms, stream "
            "%.3f ms, %zu WMC mismatches, %zu streamed-vs-direct "
            "mismatches\n",
            dnnf_nodes, compile_ms, formulas_per_s,
            throughput_ok ? "PASS" : "BELOW TARGET", lower_ms2,
            stream_ms, wmc_mismatches, stream_mismatches);
    }

    // --- DRAM timing model: locality, invariants, determinism ----------
    // Drives the arch/dram cycle model (the path behind accelerator
    // input preload and clause-miss DMA) with a streaming and an
    // equal-footprint random workload through row-coalescing DMA
    // sessions, then a randomized single-request corpus.  Gates:
    // streaming must see a strictly higher row-hit rate and fewer
    // cycles per logical byte than random; every corpus response must
    // respect the minimum closed-row latency and the sustained
    // bandwidth must stay at or below the structural peak; and the
    // entire run must produce bit-identical cycle totals when
    // repeated (the model is pure integer arithmetic).
    {
        const arch::ArchConfig acfg;
        const uint64_t kFootprintWords = 64 * 1024; // 512 KiB footprint
        const size_t kSessionWords = 256;           // one program session
        const int kCorpusRequests = 20000;

        struct DramRunResult
        {
            uint64_t streamCycles = 0, randomCycles = 0;
            uint64_t streamHits = 0, streamBursts = 0, streamBytes = 0;
            uint64_t randomHits = 0, randomBursts = 0, randomBytes = 0;
            uint64_t corpusChecksum = 0;
            uint64_t blpX100 = 0;
            size_t latencyViolations = 0;
            size_t bandwidthViolations = 0;
        };
        auto driveWorkload = [&](const std::vector<uint64_t> &words,
                                 arch::DramModel &dram) -> uint64_t {
            arch::DmaSession session(dram, 8);
            uint64_t now = 0;
            for (size_t i = 0; i < words.size(); ++i) {
                session.requestWord(words[i] * 8);
                if ((i + 1) % kSessionWords == 0 ||
                    i + 1 == words.size())
                    now = session.complete(now);
            }
            return now;
        };
        auto runOnce = [&]() -> DramRunResult {
            DramRunResult r;
            std::vector<uint64_t> words(kFootprintWords);
            for (uint64_t i = 0; i < kFootprintWords; ++i)
                words[i] = i;

            arch::DramModel streamDram(acfg);
            r.streamCycles = driveWorkload(words, streamDram);
            r.streamHits = streamDram.rowHits();
            r.streamBursts = streamDram.bursts();
            r.streamBytes = streamDram.bytesRead();
            r.blpX100 = uint64_t(
                streamDram.meanQueuedBankParallelism() * 100.0 + 0.5);

            Rng wrng(31337);
            wrng.shuffle(words);
            arch::DramModel randomDram(acfg);
            r.randomCycles = driveWorkload(words, randomDram);
            r.randomHits = randomDram.rowHits();
            r.randomBursts = randomDram.bursts();
            r.randomBytes = randomDram.bytesRead();

            // Randomized invariant corpus: single reads with jittered
            // issue times over a 16 MiB space.
            arch::DramModel corpusDram(acfg);
            const uint64_t min_latency =
                corpusDram.minLatencyCycles();
            Rng crng2(0xd7a3);
            uint64_t now = 0, first_issue = 0, last_done = 0;
            for (int i = 0; i < kCorpusRequests; ++i) {
                now += uint64_t(crng2.uniformInt(0, 8));
                uint64_t addr =
                    uint64_t(crng2.uniformInt(0, (16 << 20) - 1));
                size_t bytes = size_t(crng2.uniformInt(1, 256));
                uint64_t done = corpusDram.read(now, addr, bytes);
                // No response before the minimum (open-row) latency;
                // closed/conflicting rows only take longer.
                r.latencyViolations += done < now + min_latency;
                r.corpusChecksum += done;
                if (i == 0)
                    first_issue = now;
                last_done = std::max(last_done, done);
            }
            const double elapsed = double(last_done - first_issue);
            const double sustained =
                elapsed > 0.0 ? double(corpusDram.bytesRead()) / elapsed
                              : 0.0;
            r.bandwidthViolations +=
                sustained > corpusDram.peakBytesPerCycle() + 1e-9;
            // The streaming run must also respect peak bandwidth.
            const double stream_bpc =
                r.streamCycles
                    ? double(r.streamBytes) / double(r.streamCycles)
                    : 0.0;
            r.bandwidthViolations +=
                stream_bpc > streamDram.peakBytesPerCycle() + 1e-9;
            return r;
        };

        t0 = Clock::now();
        const DramRunResult run1 = runOnce();
        double dram_ms = msSince(t0);
        const DramRunResult run2 = runOnce();

        const size_t determinism_mismatches =
            (run1.streamCycles != run2.streamCycles) +
            (run1.randomCycles != run2.randomCycles) +
            (run1.corpusChecksum != run2.corpusChecksum) +
            (run1.streamHits != run2.streamHits) +
            (run1.randomHits != run2.randomHits);
        const size_t invariant_violations =
            run1.latencyViolations + run1.bandwidthViolations;

        const double stream_hit_rate =
            run1.streamBursts
                ? double(run1.streamHits) / double(run1.streamBursts)
                : 0.0;
        const double random_hit_rate =
            run1.randomBursts
                ? double(run1.randomHits) / double(run1.randomBursts)
                : 0.0;
        // Cycles per *logical* byte: both workloads deliver the same
        // 512 KiB footprint, so over-fetch from poor locality shows up
        // here as well as in the hit rate.
        const double footprint_bytes = double(kFootprintWords) * 8.0;
        const double stream_cpb =
            double(run1.streamCycles) / footprint_bytes;
        const double random_cpb =
            double(run1.randomCycles) / footprint_bytes;

        const bool locality_ok = stream_hit_rate > random_hit_rate &&
                                 stream_cpb < random_cpb;
        gate_failures += !locality_ok;
        gate_failures += invariant_violations != 0;
        bitwise_failures += determinism_mismatches;

        const arch::DramModel probe(acfg);
        std::printf(
            "BENCH_JSON {\"bench\":\"bench_eval\",\"engine\":"
            "\"dram_model\",\"nodes\":%u,\"edges\":%zu,\"reps\":%d,"
            "\"channels\":%u,\"banks\":%u,\"stream_hit_rate\":%.4f,"
            "\"random_hit_rate\":%.4f,\"stream_cpb\":%.5f,"
            "\"random_cpb\":%.5f,\"stream_cycles\":%llu,"
            "\"random_cycles\":%llu,\"stream_blp_x100\":%llu,"
            "\"peak_bytes_per_cycle\":%.1f,\"model_ms\":%.3f,"
            "\"invariant_violations\":%zu,"
            "\"determinism_mismatches\":%zu%s}\n",
            acfg.dramTotalBanks(),
            size_t(run1.streamBursts + run1.randomBursts),
            kCorpusRequests, acfg.dramChannels,
            acfg.dramRanksPerChannel * acfg.dramBanksPerRank,
            stream_hit_rate, random_hit_rate, stream_cpb, random_cpb,
            (unsigned long long)run1.streamCycles,
            (unsigned long long)run1.randomCycles,
            (unsigned long long)run1.blpX100,
            probe.peakBytesPerCycle(), dram_ms, invariant_violations,
            determinism_mismatches, provenance);
        std::printf(
            "dram_model: stream hit %.1f%% / %.4f cyc/B vs random hit "
            "%.1f%% / %.4f cyc/B: %s; %zu invariant violations, %zu "
            "determinism mismatches over %d corpus requests\n",
            stream_hit_rate * 100.0, stream_cpb,
            random_hit_rate * 100.0, random_cpb,
            locality_ok ? "PASS" : "FAIL", invariant_violations,
            determinism_mismatches, kCorpusRequests);
    }

    // --- fault_recovery: end-to-end serving under injected faults ------
    //
    // Drives the real socket front-end (sys::SocketServer) with the
    // resilient client (sys::Client) twice over a small circuit: a
    // fault-free control pass, then a pass under a deterministic
    // sys::FaultPlan (resets, torn frames, short reads, partial
    // writes, dispatcher stalls).  Reliability contract, gated by
    // exit code: zero hangs (watchdog), every query answered, every
    // answer bitwise-identical to an in-process one-at-a-time run,
    // exact queue accounting, clean graceful drain — and the control
    // pass must need zero retries and shed/expire nothing, so the
    // reliability layer is provably free when nothing fails.
#if REASON_HAS_SOCKETS
    {
        Rng frng(4242);
        pc::Circuit fcircuit = pc::randomCircuit(frng, 16, 2, 4, 8);
        constexpr size_t kFaultQueries = 400;
        constexpr size_t kFaultClients = 2;
        const std::vector<pc::Assignment> fqueries =
            pc::sampleDataset(frng, fcircuit, kFaultQueries);

        // Ground truth: in-process, one at a time.
        std::vector<double> fref(kFaultQueries);
        {
            sys::ReasonEngine ref_engine;
            sys::Session s = ref_engine.createSession(fcircuit);
            for (size_t i = 0; i < kFaultQueries; ++i)
                fref[i] = s.wait(s.submit(fqueries[i]))->outputs[0];
        }

        // "Never hangs" is part of the contract: if either pass
        // wedges, fail the bench by exit code instead of letting CI
        // time out.
        std::atomic<bool> fr_done{false};
        std::thread watchdog([&fr_done] {
            for (int i = 0; i < 900 && !fr_done.load(); ++i)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(100));
            if (!fr_done.load()) {
                std::fprintf(stderr,
                             "fault_recovery: watchdog timeout — "
                             "serving stack hung\n");
                std::_Exit(3);
            }
        });

        struct FaultPass
        {
            size_t answered = 0;
            size_t wrong = 0;
            size_t unanswered = 0;
            uint64_t shed = 0;
            uint64_t expired = 0;
            uint64_t cancelled = 0;
            bool accountingOk = false;
            bool drainClean = false;
            double ms = 0.0;
            sys::ClientStats client;
            sys::ServerStats server;
        };
        const auto runPass = [&](unsigned retries) {
            FaultPass pass;
            sys::ServeOptions sopts;
            sopts.maxBatch = 16;
            sopts.serveThreads = 1;
            sopts.dispatchers = 2;
            sys::ReasonEngine engine(sopts);
            sys::SocketServer server(engine,
                                     pc::cachedLowering(fcircuit),
                                     sys::ServerOptions{});
            std::string err;
            if (!server.start(&err)) {
                std::fprintf(stderr, "fault_recovery: %s\n",
                             err.c_str());
                pass.unanswered = kFaultQueries;
                return pass; // all-unanswered fails the gates below
            }
            std::vector<std::vector<sys::QueryOutcome>> outs(
                kFaultClients);
            std::vector<sys::ClientStats> cstats(kFaultClients);
            const auto pt0 = Clock::now();
            std::vector<std::thread> cthreads;
            for (size_t c = 0; c < kFaultClients; ++c)
                cthreads.emplace_back([&, c] {
                    sys::ClientOptions copt;
                    copt.port = server.port();
                    copt.clientId = 1000 + c;
                    copt.pipeline = 16;
                    copt.maxRetries = retries;
                    copt.backoffBaseMs = 1;
                    copt.backoffCapMs = 50;
                    copt.seed = 97 + c;
                    sys::Client client(copt);
                    std::vector<pc::Assignment> mine;
                    for (size_t q = c; q < kFaultQueries;
                         q += kFaultClients)
                        mine.push_back(fqueries[q]);
                    client.runBatch(mine, &outs[c]);
                    cstats[c] = client.stats();
                });
            for (std::thread &t : cthreads)
                t.join();
            pass.ms = msSince(pt0);
            pass.drainClean = server.stop();
            pass.server = server.stats();
            for (size_t c = 0; c < kFaultClients; ++c) {
                pass.client.connects += cstats[c].connects;
                pass.client.connectFailures +=
                    cstats[c].connectFailures;
                pass.client.retriesSent += cstats[c].retriesSent;
                pass.client.transportErrors +=
                    cstats[c].transportErrors;
                for (size_t i = 0; i < outs[c].size(); ++i) {
                    const sys::QueryOutcome &o = outs[c][i];
                    const size_t q = c + i * kFaultClients;
                    if (o.error != sys::REASON_OK) {
                        ++pass.unanswered;
                        continue;
                    }
                    ++pass.answered;
                    pass.wrong += bitsDiffer(o.value, fref[q]);
                }
            }
            // Exact accounting: every accepted request reaches
            // exactly one terminal state.
            const sys::EngineStats es = engine.stats();
            pass.shed = es.shedRequests;
            pass.expired = es.expired;
            pass.cancelled = es.cancelled;
            pass.accountingOk =
                es.completed == es.requests &&
                es.completed == es.executed + es.shedRequests +
                                    es.expired + es.cancelled;
            return pass;
        };

        const FaultPass control = runPass(4);

        sys::FaultPlan plan;
        std::string plan_err;
        const bool plan_ok = sys::FaultPlan::parse(
            "seed=11,reset=0.01,torn=0.01,short=0.1,partial=0.1,"
            "stall=0.002,stall_us=1000",
            &plan, &plan_err);
        if (plan_ok)
            sys::installFaultPlan(&plan);
        const FaultPass faulted = runPass(100);
        sys::installFaultPlan(nullptr);
        const uint64_t faults_injected = plan.stats().total();

        fr_done.store(true);
        watchdog.join();

        // Control pass: byte-perfect and retry-free — the resilience
        // machinery must be invisible when nothing fails.
        const bool control_ok =
            control.answered == kFaultQueries &&
            control.wrong == 0 && control.unanswered == 0 &&
            control.client.retriesSent == 0 &&
            control.client.transportErrors == 0 &&
            control.shed == 0 && control.expired == 0 &&
            control.cancelled == 0 && control.accountingOk &&
            control.drainClean;
        // Fault pass: faults actually fired, yet every query still
        // terminated with the bit-exact answer and books balance.
        const bool fault_ok =
            plan_ok && faults_injected > 0 &&
            faulted.answered == kFaultQueries &&
            faulted.unanswered == 0 && faulted.accountingOk &&
            faulted.drainClean;
        gate_failures += !control_ok;
        gate_failures += !fault_ok;
        bitwise_failures += control.wrong + faulted.wrong;

        std::printf(
            "BENCH_JSON {\"bench\":\"bench_eval\",\"engine\":"
            "\"fault_recovery\",\"nodes\":%zu,\"edges\":%zu,"
            "\"reps\":%zu,\"clients\":%zu,\"control_ms\":%.3f,"
            "\"fault_ms\":%.3f,\"control_retries\":%llu,"
            "\"reconnects\":%llu,\"retries\":%llu,"
            "\"transport_errors\":%llu,\"duplicates_suppressed\":%llu,"
            "\"faults_injected\":%llu,\"unanswered\":%zu,"
            "\"wrong_answers\":%zu,\"control_mismatches\":%zu,"
            "\"shed\":%llu,\"expired\":%llu,\"cancelled\":%llu,"
            "\"accounting_ok\":%d,\"drain_clean\":%d%s}\n",
            fcircuit.numNodes(), fcircuit.numEdges(), kFaultQueries,
            kFaultClients, control.ms, faulted.ms,
            (unsigned long long)control.client.retriesSent,
            (unsigned long long)faulted.client.connects,
            (unsigned long long)faulted.client.retriesSent,
            (unsigned long long)faulted.client.transportErrors,
            (unsigned long long)faulted.server.duplicatesSuppressed,
            (unsigned long long)faults_injected, faulted.unanswered,
            faulted.wrong, control.wrong,
            (unsigned long long)faulted.shed,
            (unsigned long long)faulted.expired,
            (unsigned long long)faulted.cancelled,
            int(control_ok && faulted.accountingOk),
            int(control.drainClean && faulted.drainClean),
            provenance);
        std::printf(
            "fault_recovery: control %.3f ms %s; %llu faults -> "
            "%zu/%zu answered in %.3f ms over %llu connects "
            "(%llu retries, %llu duplicates suppressed), %zu wrong, "
            "drain %s: %s\n",
            control.ms, control_ok ? "PASS" : "FAIL",
            (unsigned long long)faults_injected, faulted.answered,
            kFaultQueries, faulted.ms,
            (unsigned long long)faulted.client.connects,
            (unsigned long long)faulted.client.retriesSent,
            (unsigned long long)faulted.server.duplicatesSuppressed,
            faulted.wrong, faulted.drainClean ? "clean" : "dirty",
            fault_ok && faulted.wrong == 0 ? "PASS" : "FAIL");
    }
#endif // REASON_HAS_SOCKETS

    // --- linear domain: Dag::evaluate vs core::Evaluator ---------------
    core::Dag dag = core::buildFromCircuit(circuit);
    const size_t dag_reps = reps / 4 ? reps / 4 : 1;
    std::vector<double> inputs(dag.numInputs(), 1.0);

    sink += dag.evaluateRoot(inputs);
    t0 = Clock::now();
    double dag_acc = 0.0;
    for (size_t i = 0; i < dag_reps; ++i) {
        inputs[i % inputs.size()] = 0.5 + double(i % 3) * 0.25;
        dag_acc += dag.evaluateRoot(inputs);
    }
    double dag_seed_ms = msSince(t0);

    t0 = Clock::now();
    core::FlatGraph fg = core::lowerDag(dag);
    core::Evaluator fev(fg, &serial_pool);
    double dag_lower_ms = msSince(t0);
    sink += fev.evaluateRoot(inputs);

    std::fill(inputs.begin(), inputs.end(), 1.0);
    t0 = Clock::now();
    double dag_flat_acc = 0.0;
    for (size_t i = 0; i < dag_reps; ++i) {
        inputs[i % inputs.size()] = 0.5 + double(i % 3) * 0.25;
        dag_flat_acc += fev.evaluateRoot(inputs);
    }
    double dag_flat_ms = msSince(t0);
    double dag_speedup = dag_seed_ms / (dag_flat_ms + dag_lower_ms);
    std::printf("BENCH_JSON {\"bench\":\"bench_eval\",\"engine\":"
                "\"dag_eval\",\"nodes\":%zu,\"edges\":%zu,\"reps\":%zu,"
                "\"seed_ms\":%.3f,\"flat_ms\":%.3f,\"lower_ms\":%.3f,"
                "\"speedup\":%.2f,\"max_abs_diff\":%.3e%s}\n",
                dag.numNodes(), dag.numEdges(), dag_reps, dag_seed_ms,
                dag_flat_ms, dag_lower_ms, dag_speedup,
                std::fabs(dag_acc - dag_flat_acc), provenance);
    std::printf("dag: seed %.3f ms, flat %.3f ms: %.2fx\n", dag_seed_ms,
                dag_flat_ms, dag_speedup);

    (void)sink;
    (void)seed_acc;
    (void)flat_acc;
    if (bitwise_failures != 0) {
        std::fprintf(stderr,
                     "bench_eval: %zu bitwise mismatches across "
                     "variants that must match exactly\n",
                     bitwise_failures);
        return 1;
    }
    if (gate_failures != 0) {
        std::fprintf(stderr,
                     "bench_eval: %zu failed gates (serving_mt shed "
                     "rate / queue depth / admitted p99, approx_tier "
                     "bound violations / speedup-at-accuracy, "
                     "compile_flat WMC agreement / throughput)\n",
                     gate_failures);
        return 1;
    }
    return 0;
}
