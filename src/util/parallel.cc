#include "util/parallel.h"

#include <algorithm>
#include <memory>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace reason {
namespace util {

bool
pinCurrentThreadToCore(unsigned core)
{
#if defined(__linux__)
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(core % hw, &set);
    return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) ==
           0;
#else
    (void)core;
    return false;
#endif
}

ThreadPool::ThreadPool(unsigned threads, bool pin_threads,
                       unsigned pin_base)
    : pinThreads_(pin_threads), pinBase_(pin_base)
{
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    workers_.reserve(threads - 1);
    for (unsigned w = 1; w < threads; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    wake_.notify_all();
    for (auto &t : workers_)
        t.join();
}

void
ThreadPool::workerLoop(unsigned worker_index)
{
    if (pinThreads_)
        pinCurrentThreadToCore(pinBase_ + worker_index);
    uint64_t seen = 0;
    for (;;) {
        RangeFn fn;
        void *ctx;
        size_t begin, end;
        unsigned chunks;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return shutdown_ || generation_ != seen;
            });
            if (shutdown_)
                return;
            seen = generation_;
            fn = jobFn_;
            ctx = jobCtx_;
            begin = jobBegin_;
            end = jobEnd_;
            chunks = jobChunks_;
        }
        // Chunk `worker_index` (chunk 0 belongs to the caller); workers
        // beyond the chunk count just acknowledge completion.
        if (worker_index < chunks) {
            const size_t total = end - begin;
            const size_t lo = begin + total * worker_index / chunks;
            const size_t hi = begin + total * (worker_index + 1) / chunks;
            if (lo < hi)
                fn(ctx, lo, hi, worker_index);
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--pending_ == 0)
                done_.notify_one();
        }
    }
}

void
ThreadPool::parallelForRaw(size_t begin, size_t end, size_t min_grain,
                           RangeFn fn, void *ctx)
{
    if (end <= begin)
        return;
    const size_t total = end - begin;
    if (min_grain == 0)
        min_grain = 1;
    // Deterministic chunk count: range size and pool size only.
    size_t chunks = std::min<size_t>(numThreads(), total / min_grain);
    if (workers_.empty() || chunks <= 1) {
        fn(ctx, begin, end, 0);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        jobFn_ = fn;
        jobCtx_ = ctx;
        jobBegin_ = begin;
        jobEnd_ = end;
        jobChunks_ = unsigned(chunks);
        pending_ = unsigned(workers_.size());
        ++generation_;
    }
    wake_.notify_all();
    // The caller is worker 0 and always takes the first chunk.
    fn(ctx, begin, begin + total / chunks, 0);
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] { return pending_ == 0; });
}

namespace {

std::unique_ptr<ThreadPool> g_pool;      // lazily created
unsigned g_threads = 0;                  // 0 = hardware concurrency
std::mutex g_pool_mutex;

ReductionPolicy g_reduction_policy;
std::mutex g_reduction_mutex;

} // namespace

ThreadPool &
globalThreadPool()
{
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    if (!g_pool)
        g_pool = std::make_unique<ThreadPool>(g_threads);
    return *g_pool;
}

void
setGlobalThreads(unsigned n)
{
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    g_threads = n;
    g_pool.reset(); // recreated lazily with the new count
}

bool
parseThreadCount(const char *text, unsigned *out)
{
    if (text == nullptr || *text == '\0')
        return false;
    unsigned long value = 0;
    for (const char *p = text; *p != '\0'; ++p) {
        if (*p < '0' || *p > '9')
            return false;
        value = value * 10 + unsigned(*p - '0');
        if (value > kMaxThreads)
            return false;
    }
    *out = unsigned(value);
    return true;
}

ReductionPolicy
reductionPolicy()
{
    std::lock_guard<std::mutex> lock(g_reduction_mutex);
    return g_reduction_policy;
}

void
setReductionPolicy(const ReductionPolicy &policy)
{
    std::lock_guard<std::mutex> lock(g_reduction_mutex);
    g_reduction_policy = policy;
}

unsigned
resolveShardCount(unsigned shards, bool deterministic, size_t samples,
                  unsigned workers)
{
    if (shards == 0) {
        // Sharding *replaces* per-sample wavefront parallelism, so a
        // dataset smaller than the target shard count keeps one shard
        // (and the wavefront engine) instead of degenerating into a
        // few serial-pool slices.  The deterministic target ignores
        // `workers`, which keeps the result thread-count-invariant.
        const unsigned target = deterministic ? kAutoReductionShards
                                              : std::max(workers, 1u);
        shards = samples >= target ? target : 1;
    }
    if (samples < shards)
        shards = unsigned(samples);
    return std::max(shards, 1u);
}

unsigned
globalThreads()
{
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    if (g_pool)
        return g_pool->numThreads();
    if (g_threads != 0)
        return g_threads;
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

} // namespace util
} // namespace reason
