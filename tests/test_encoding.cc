/**
 * @file
 * Tests for VLIW instruction encoding: bit-exact round trips in both
 * address modes, accelerator equivalence of decoded programs, size
 * accounting consistency, the auto-write-address saving claim, and the
 * disassembly listing.
 */

#include <gtest/gtest.h>

#include "arch/accelerator.h"
#include "compiler/compile.h"
#include "compiler/encoding.h"
#include "dag_test_util.h"
#include "util/numeric.h"
#include "util/rng.h"

using namespace reason;
using namespace reason::compiler;

namespace {

Program
compileRandom(uint64_t seed, uint32_t inputs = 10, uint32_t ops = 40)
{
    Rng rng(seed);
    core::Dag dag = testutil::randomDag(rng, inputs, ops);
    return compile(dag);
}

void
expectProgramsEqual(const Program &a, const Program &b)
{
    EXPECT_EQ(a.treeDepth, b.treeDepth);
    EXPECT_EQ(a.numPes, b.numPes);
    EXPECT_EQ(a.numBanks, b.numBanks);
    EXPECT_EQ(a.regsPerBank, b.regsPerBank);
    EXPECT_EQ(a.rootBlock, b.rootBlock);

    ASSERT_EQ(a.inputs.size(), b.inputs.size());
    for (size_t i = 0; i < a.inputs.size(); ++i) {
        EXPECT_EQ(a.inputs[i].inputTag, b.inputs[i].inputTag);
        EXPECT_EQ(a.inputs[i].bank, b.inputs[i].bank);
        EXPECT_EQ(a.inputs[i].reg, b.inputs[i].reg);
    }

    ASSERT_EQ(a.blocks.size(), b.blocks.size());
    for (size_t i = 0; i < a.blocks.size(); ++i) {
        const Block &x = a.blocks[i];
        const Block &y = b.blocks[i];
        ASSERT_EQ(x.operands.size(), y.operands.size());
        for (size_t k = 0; k < x.operands.size(); ++k) {
            EXPECT_EQ(x.operands[k].valid, y.operands[k].valid);
            if (!x.operands[k].valid)
                continue;
            EXPECT_EQ(x.operands[k].fetch, y.operands[k].fetch);
            if (x.operands[k].fetch) {
                EXPECT_EQ(x.operands[k].bank, y.operands[k].bank);
                EXPECT_EQ(x.operands[k].reg, y.operands[k].reg);
            }
            EXPECT_EQ(x.operands[k].a, y.operands[k].a);
            EXPECT_EQ(x.operands[k].b, y.operands[k].b);
        }
        EXPECT_EQ(x.nodeOps, y.nodeOps);
        EXPECT_EQ(x.dest.bank, y.dest.bank);
        EXPECT_EQ(x.dest.reg, y.dest.reg);
        EXPECT_EQ(x.dagRoot, y.dagRoot);
        EXPECT_EQ(x.fusedNodes, y.fusedNodes);
        EXPECT_EQ(x.depends, y.depends);
    }

    ASSERT_EQ(a.schedule.size(), b.schedule.size());
    for (size_t i = 0; i < a.schedule.size(); ++i) {
        EXPECT_EQ(a.schedule[i].cycle, b.schedule[i].cycle);
        EXPECT_EQ(a.schedule[i].pe, b.schedule[i].pe);
        EXPECT_EQ(a.schedule[i].block, b.schedule[i].block);
    }
}

} // namespace

class EncodingSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(EncodingSweep, ExplicitRoundTrip)
{
    Program p = compileRandom(GetParam());
    EncodedProgram enc = encodeProgram(p, AddressMode::Explicit);
    Program q = decodeProgram(enc);
    expectProgramsEqual(p, q);
}

TEST_P(EncodingSweep, AutoRoundTrip)
{
    Program p = compileRandom(GetParam() + 100);
    EncodedProgram enc = encodeProgram(p, AddressMode::Auto);
    Program q = decodeProgram(enc);
    expectProgramsEqual(p, q);
}

TEST_P(EncodingSweep, DecodedProgramExecutesIdentically)
{
    Rng rng(GetParam() + 200);
    core::Dag dag = testutil::randomDag(rng, 8, 30);
    Program p = compile(dag);
    Program q = decodeProgram(encodeProgram(p, AddressMode::Auto));

    arch::Accelerator accel((arch::ArchConfig()));
    auto inputs = testutil::randomInputs(rng, 8);
    auto r1 = accel.run(p, inputs);
    auto r2 = accel.run(q, inputs);
    EXPECT_DOUBLE_EQ(r1.rootValue, r2.rootValue);
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_DOUBLE_EQ(r1.rootValue, dag.evaluateRoot(inputs));
}

TEST_P(EncodingSweep, SizeReportMatchesEncodedBits)
{
    Program p = compileRandom(GetParam() + 300);
    for (AddressMode mode :
         {AddressMode::Explicit, AddressMode::Auto}) {
        EncodedProgram enc = encodeProgram(p, mode);
        EncodingSizeReport rep = sizeReport(p, mode);
        EXPECT_EQ(rep.totalBits, enc.bits);
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EncodingSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(Encoding, AutoAddressSavesDestRegisterBits)
{
    Program p = compileRandom(77, 12, 60);
    auto expl = sizeReport(p, AddressMode::Explicit);
    auto autom = sizeReport(p, AddressMode::Auto);
    // Exactly log2(regsPerBank) bits per block disappear.
    uint64_t per_block = ceilLog2(p.regsPerBank);
    EXPECT_EQ(expl.destBits - autom.destBits,
              per_block * p.blocks.size());

    double saving = autoAddressSaving(p);
    EXPECT_GT(saving, 0.0);
    EXPECT_LT(saving, 0.5);
}

TEST(Encoding, AutoModeRejectsHandEditedDestinations)
{
    Program p = compileRandom(88);
    ASSERT_FALSE(p.blocks.empty());
    p.blocks.back().dest.reg += 7; // violate the fill-counter policy
    EXPECT_DEATH(encodeProgram(p, AddressMode::Auto), "fill-counter");
}

TEST(Encoding, DecodeRejectsGarbage)
{
    EncodedProgram enc;
    enc.bytes.assign(64, 0xAB);
    enc.bits = 512;
    EXPECT_DEATH(decodeProgram(enc), "magic");
}

TEST(Encoding, ConstantPoolDeduplicates)
{
    // A DAG of identical weighted sums: many operands share (a, b).
    core::Dag dag;
    auto i0 = dag.addInput();
    auto i1 = dag.addInput();
    std::vector<core::NodeId> sums;
    for (int k = 0; k < 10; ++k)
        sums.push_back(
            dag.addOp(core::DagOp::Sum, {i0, i1}, {0.25, 0.75}));
    dag.markRoot(dag.addOp(core::DagOp::Max, std::move(sums)));
    Program p = compile(dag);
    EncodingSizeReport rep = sizeReport(p, AddressMode::Explicit);
    // Far fewer pool entries than valid operands.
    size_t valid = 0;
    for (const Block &b : p.blocks)
        for (const OperandRef &op : b.operands)
            valid += op.valid;
    EXPECT_LT(rep.constPoolEntries, valid / 2 + 2);
}

TEST(Encoding, DisassemblyMentionsEveryBlock)
{
    Program p = compileRandom(99, 6, 20);
    std::string listing = disassemble(p);
    for (size_t b = 0; b < p.blocks.size(); ++b)
        EXPECT_NE(listing.find("B" + std::to_string(b) + ":"),
                  std::string::npos);
    EXPECT_NE(listing.find("dest:"), std::string::npos);
    EXPECT_NE(listing.find("root = B"), std::string::npos);
}

TEST(Encoding, EncodedSizeScalesWithProgram)
{
    Program small = compileRandom(111, 6, 15);
    Program large = compileRandom(111, 24, 150);
    EXPECT_GT(encodeProgram(large).bits, encodeProgram(small).bits);
}
