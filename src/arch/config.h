/**
 * @file
 * Architectural parameters of the REASON accelerator (Fig. 10, Sec. V-F).
 *
 * Defaults reflect the paper's selected configuration: 12 tree PEs of
 * depth D=3 (8 leaf slots, 7 compute nodes each), B=64 register banks of
 * R=32 registers, 1.25 MB local SRAM, 104 GB/s LPDDR5 DRAM, 500 MHz at
 * TSMC 28 nm.
 */

#ifndef REASON_ARCH_CONFIG_H
#define REASON_ARCH_CONFIG_H

#include <cstddef>
#include <cstdint>

#include "compiler/compile.h"

namespace reason {
namespace arch {

/** Full hardware configuration of one REASON instance. */
struct ArchConfig
{
    // Compute fabric.
    uint32_t numPes = 12;
    uint32_t treeDepth = 3; ///< D
    // Register file.
    uint32_t numBanks = 64;   ///< B
    uint32_t regsPerBank = 32; ///< R
    uint32_t bankReadPorts = 2;
    // Memory system.
    uint32_t sramBytes = 1280 * 1024; ///< 1.25 MB local SRAM
    uint32_t sramBanks = 16;
    uint32_t dmaLatencyCycles = 24;  ///< L2/DRAM fetch latency (legacy mode)
    double dramBandwidthGBps = 104.0;
    // DRAM timing model (arch/dram.h).  When enabled, DMA consumers
    // issue address-carrying requests into a cycle-driven LPDDR5-class
    // model (bank state machines, row-buffer tracking, FR-FCFS per
    // channel); when disabled they fall back to the fixed
    // dmaLatencyCycles plus a bandwidth term.  Timing defaults are
    // controller cycles at the 500 MHz clock (2 ns each), so e.g.
    // tRCD = 9 cycles = 18 ns.  Geometry fields must be powers of two.
    bool dramModelEnabled = true;
    uint32_t dramChannels = 8;
    uint32_t dramRanksPerChannel = 1;
    uint32_t dramBanksPerRank = 8;
    uint32_t dramRowBytes = 2048;  ///< open page per bank (2 KB LPDDR5)
    uint32_t dramBurstBytes = 32;  ///< one data burst (BL16 x16)
    uint32_t dramBurstCycles = 1;  ///< data-bus beats per burst
    uint32_t dramTRcdCycles = 9;   ///< ACT -> column command
    uint32_t dramTRpCycles = 9;    ///< PRE -> ACT
    uint32_t dramTCasCycles = 9;   ///< column command -> first data
    uint32_t dramTRasCycles = 21;  ///< ACT -> earliest PRE
    uint32_t dramQueueDepth = 16;  ///< per-channel request-queue bound
    /**
     * Fraction of a DMA clause-miss latency that is NOT hidden behind
     * FIFO servicing in the analytic CDCL cycle estimate
     * (estimateCdclCycles): the pipeline keeps draining queued
     * implications while a fetch is in flight, overlapping ~70 % of the
     * miss, so only this exposed remainder is charged.
     */
    double dmaMissExposedFraction = 0.3;
    // Symbolic engine.
    uint32_t bcpFifoDepth = 16;
    // Clocking.
    double clockGhz = 0.5;

    /** Cycles for one root-to-leaf broadcast (tree levels + drive). */
    uint32_t broadcastCycles() const { return treeDepth + 1; }
    /** Cycles for one leaf-to-root reduction. */
    uint32_t reductionCycles() const { return treeDepth + 1; }
    /** End-to-end tree pipeline latency for one block. */
    uint32_t pipelineLatency() const { return treeDepth + 3; }

    size_t leavesPerPe() const { return size_t(1) << treeDepth; }
    size_t nodesPerPe() const { return (size_t(1) << treeDepth) - 1; }
    /** Total arithmetic tree nodes across the fabric. */
    size_t totalTreeNodes() const { return numPes * nodesPerPe(); }

    /** Seconds per cycle. */
    double cycleSeconds() const { return 1e-9 / clockGhz; }

    /** Total DRAM banks across all channels and ranks. */
    uint32_t dramTotalBanks() const
    {
        return dramChannels * dramRanksPerChannel * dramBanksPerRank;
    }

    /**
     * DRAM interface bytes per controller cycle, derived from the
     * configured peak bandwidth and clock (104 GB/s at 0.5 GHz = 208).
     * Used by the legacy fixed-latency DMA path as its bandwidth term.
     */
    uint32_t dmaBytesPerCycle() const
    {
        double bpc = dramBandwidthGBps / clockGhz;
        return bpc < 1.0 ? 1u : static_cast<uint32_t>(bpc);
    }

    /** Matching compiler target. */
    compiler::TargetConfig
    compilerTarget() const
    {
        compiler::TargetConfig t;
        t.treeDepth = treeDepth;
        t.numPes = numPes;
        t.numBanks = numBanks;
        t.regsPerBank = regsPerBank;
        return t;
    }
};

} // namespace arch
} // namespace reason

#endif // REASON_ARCH_CONFIG_H
