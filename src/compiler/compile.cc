#include "compiler/compile.h"

#include <algorithm>
#include <map>
#include <span>
#include <sstream>

#include "core/regularize.h"
#include "util/logging.h"

namespace reason {
namespace compiler {

namespace {

using core::Dag;
using core::FlatGraph;
using core::FlatOp;
using core::NodeId;

/** A DAG value expressed as an affine transform of a base value. */
struct Resolved
{
    enum class Kind : uint8_t { Op, Input, Constant };
    Kind kind = Kind::Constant;
    NodeId node = core::kInvalidNode; ///< Op: the materialized op node
    uint32_t tag = 0;                 ///< Input: external slot
    double a = 1.0;
    double b = 0.0;
};

/** Index of tree node (level, pos) in root-first level order. */
size_t
nodeIndex(uint32_t level, uint32_t pos)
{
    return (size_t(1) << level) - 1 + pos;
}

TreeOp
opToTreeOp(FlatOp op)
{
    switch (op) {
      case FlatOp::Sum:
      case FlatOp::WeightedSum: return TreeOp::Add;
      case FlatOp::Product: return TreeOp::Mul;
      case FlatOp::Max: return TreeOp::Max;
      case FlatOp::Min: return TreeOp::Min;
      default: panic("op %s has no tree opcode", core::flatOpName(op));
    }
}

class Compiler
{
  public:
    Compiler(const FlatGraph &graph, const TargetConfig &target)
        : g_(graph), target_(target)
    {
        // Per-node leaf metadata, scattered from the flat leaf lists.
        tag_.assign(g_.numNodes(), 0);
        for (const auto &[node, tag] : g_.inputs)
            tag_[node] = tag;
        value_.assign(g_.numNodes(), 0.0);
        for (const auto &[node, value] : g_.consts)
            value_[node] = value;
    }

    Program run();

  private:
    FlatOp op(NodeId id) const { return FlatOp(g_.ops[id]); }
    std::span<const uint32_t>
    fanin(NodeId id) const
    {
        return std::span<const uint32_t>(g_.edgeTarget)
            .subspan(g_.edgeOffset[id],
                     g_.edgeOffset[id + 1] - g_.edgeOffset[id]);
    }
    /** Weight of node id's k-th operand edge (1.0 when unweighted). */
    double
    edgeWeight(NodeId id, uint32_t k) const
    {
        return g_.edgeWeight[g_.edgeOffset[id] + k];
    }

    Resolved resolve(NodeId id);
    void countEffectiveConsumers();
    /** Create (or find) the block materializing op node `op_node`. */
    uint32_t blockFor(NodeId op_node);
    void growBlock(uint32_t blk, NodeId id, uint32_t level, uint32_t pos,
                   double scale);
    void placeOperand(uint32_t blk, const Resolved &spec, double scale,
                      uint32_t level, uint32_t pos);
    static bool canDistributeScale(FlatOp op, double scale);
    void assignPesAndBanks();
    void scheduleBlocks();

    const FlatGraph &g_;
    TargetConfig target_;
    Program prog_;
    /** Input tag / const value per node (0 elsewhere). */
    std::vector<uint32_t> tag_;
    std::vector<double> value_;

    std::vector<Resolved> resolved_;
    std::vector<bool> resolvedReady_;
    std::vector<uint32_t> effConsumers_;
    std::map<NodeId, uint32_t> blockOfNode_;
    /** Operand slots waiting for a producer block's output location. */
    struct PendingOperand
    {
        uint32_t block;
        uint32_t slot;
        NodeId producer;
    };
    std::vector<PendingOperand> pending_;
    std::vector<uint32_t> blockPe_;
    uint64_t replicated_ = 0;
};

Resolved
Compiler::resolve(NodeId id)
{
    if (resolvedReady_[id])
        return resolved_[id];
    Resolved r;
    switch (op(id)) {
      case FlatOp::Input:
        r.kind = Resolved::Kind::Input;
        r.tag = tag_[id];
        break;
      case FlatOp::Const:
        r.kind = Resolved::Kind::Constant;
        r.a = 0.0;
        r.b = value_[id];
        break;
      case FlatOp::Not: {
        Resolved c = resolve(fanin(id)[0]);
        r = c;
        r.a = -c.a;
        r.b = 1.0 - c.b;
        break;
      }
      default: {
        if (fanin(id).size() == 1) {
            // Unary sums carry their weight as a scale; unary
            // Product/Max/Min are identities (edgeWeight is 1.0 for
            // every unweighted edge, so one read covers both).
            Resolved c = resolve(fanin(id)[0]);
            double w = edgeWeight(id, 0);
            r = c;
            r.a = w * c.a;
            r.b = w * c.b;
        } else {
            r.kind = Resolved::Kind::Op;
            r.node = id;
        }
        break;
      }
    }
    resolved_[id] = r;
    resolvedReady_[id] = true;
    return r;
}

void
Compiler::countEffectiveConsumers()
{
    effConsumers_.assign(g_.numNodes(), 0);
    for (NodeId id = 0; id < g_.numNodes(); ++id) {
        if (op(id) == FlatOp::Input || op(id) == FlatOp::Const ||
            op(id) == FlatOp::Not || fanin(id).size() == 1)
            continue; // unary chains are folded; count at their consumers
        for (NodeId c : fanin(id)) {
            Resolved spec = resolve(c);
            if (spec.kind == Resolved::Kind::Op)
                ++effConsumers_[spec.node];
        }
    }
    Resolved root = resolve(g_.root);
    if (root.kind == Resolved::Kind::Op)
        ++effConsumers_[root.node];
}

bool
Compiler::canDistributeScale(FlatOp op, double scale)
{
    if (scale == 1.0)
        return true;
    switch (op) {
      case FlatOp::Product:
      case FlatOp::Sum:
      case FlatOp::WeightedSum:
        return true; // push into one factor / distribute over weights
      case FlatOp::Max:
      case FlatOp::Min:
        return scale > 0.0; // positive scaling preserves selection
      default:
        return false;
    }
}

void
Compiler::placeOperand(uint32_t blk, const Resolved &spec, double scale,
                       uint32_t level, uint32_t pos)
{
    // For Kind::Op, ensure the producer block exists first (this may
    // reallocate the block vector, so take references afterwards).
    if (spec.kind == Resolved::Kind::Op)
        blockFor(spec.node);

    const uint32_t depth = target_.treeDepth;
    reasonAssert(level <= depth, "operand level out of range");
    uint32_t slot = pos << (depth - level);
    Block &block = prog_.blocks[blk];
    for (uint32_t j = level; j < depth; ++j)
        block.nodeOps[nodeIndex(j, pos << (j - level))] = TreeOp::PassLeft;

    OperandRef &op = block.operands[slot];
    op.valid = true;
    switch (spec.kind) {
      case Resolved::Kind::Constant:
        op.fetch = false;
        op.a = 0.0;
        op.b = scale * spec.b;
        break;
      case Resolved::Kind::Input:
        op.fetch = true;
        op.a = scale * spec.a;
        op.b = scale * spec.b;
        // bank/reg patched from the input placement table later; encode
        // the tag temporarily in `bank` with a sentinel reg.
        op.bank = static_cast<uint16_t>(spec.tag);
        op.reg = 0xffff;
        break;
      case Resolved::Kind::Op:
        op.fetch = true;
        op.a = scale * spec.a;
        op.b = scale * spec.b;
        pending_.push_back({blk, slot, spec.node});
        break;
    }
}

void
Compiler::growBlock(uint32_t blk, NodeId id, uint32_t level, uint32_t pos,
                    double scale)
{
    const FlatOp node_op = op(id);
    const std::span<const uint32_t> kids = fanin(id);
    reasonAssert(kids.size() == 2, "blocks grow over binary ops");
    prog_.blocks[blk].nodeOps[nodeIndex(level, pos)] = opToTreeOp(node_op);
    ++prog_.blocks[blk].fusedNodes;

    // How the pending scale propagates to each child.
    double child_scale[2] = {1.0, 1.0};
    if (node_op == FlatOp::Sum || node_op == FlatOp::WeightedSum) {
        child_scale[0] = scale * edgeWeight(id, 0);
        child_scale[1] = scale * edgeWeight(id, 1);
    } else if (node_op == FlatOp::Product) {
        child_scale[0] = scale; // absorb into one factor
        child_scale[1] = 1.0;
    } else {
        // Max/Min: scale > 0 guaranteed by the fusion guard.
        child_scale[0] = scale;
        child_scale[1] = scale;
    }

    for (uint32_t k = 0; k < 2; ++k) {
        NodeId child = kids[k];
        Resolved spec = resolve(child);
        uint32_t cpos = 2 * pos + k;
        double s = child_scale[k];
        bool fusable =
            spec.kind == Resolved::Kind::Op && spec.b == 0.0 &&
            effConsumers_[spec.node] == 1 &&
            level + 1 < target_.treeDepth &&
            canDistributeScale(op(spec.node), s * spec.a);
        if (fusable) {
            if (spec.a != 1.0 || s != 1.0)
                ++replicated_; // modifier work replicated into the block
            growBlock(blk, spec.node, level + 1, cpos, s * spec.a);
        } else {
            placeOperand(blk, spec, s, level + 1, cpos);
        }
    }
}

uint32_t
Compiler::blockFor(NodeId op_node)
{
    auto it = blockOfNode_.find(op_node);
    if (it != blockOfNode_.end())
        return it->second;

    uint32_t idx = static_cast<uint32_t>(prog_.blocks.size());
    blockOfNode_[op_node] = idx;
    prog_.blocks.emplace_back();
    prog_.blocks[idx].operands.assign(prog_.leavesPerPe(), OperandRef{});
    prog_.blocks[idx].nodeOps.assign(prog_.nodesPerPe(), TreeOp::Nop);
    prog_.blocks[idx].dagRoot = op_node;
    growBlock(idx, op_node, 0, 0, 1.0);
    return idx;
}

void
Compiler::assignPesAndBanks()
{
    size_t nblocks = prog_.blocks.size();
    // Dependency lists from pending operand records.
    for (const auto &p : pending_)
        prog_.blocks[p.block].depends.push_back(
            blockOfNode_.at(p.producer));

    // Dependence level of each block (producers shallower).  Block
    // indices are not topologically ordered in general, so relax to a
    // fixpoint (the dependence graph is acyclic).
    std::vector<uint32_t> level(nblocks, 0);
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t i = 0; i < nblocks; ++i) {
            for (uint32_t d : prog_.blocks[i].depends) {
                if (level[i] < level[d] + 1) {
                    level[i] = level[d] + 1;
                    changed = true;
                }
            }
        }
    }

    // PE assignment: round-robin within increasing level, spreading
    // parallel work across PEs.
    std::vector<uint32_t> order(nblocks);
    for (size_t i = 0; i < nblocks; ++i)
        order[i] = static_cast<uint32_t>(i);
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t x, uint32_t y) {
                         return level[x] < level[y];
                     });
    blockPe_.assign(nblocks, 0);
    uint32_t rr = 0;
    for (uint32_t b : order)
        blockPe_[b] = rr++ % target_.numPes;

    // Output banks: PE p owns bank p (one-bank-one-PE).  Register index
    // is sequential per bank (hardware auto write-address); overflow is
    // counted as spills.
    std::vector<uint32_t> bank_fill(target_.numBanks, 0);
    for (uint32_t b = 0; b < nblocks; ++b) {
        Block &block = prog_.blocks[b];
        block.dest.bank = static_cast<uint16_t>(blockPe_[b]);
        block.dest.reg =
            static_cast<uint16_t>(bank_fill[block.dest.bank]++);
    }

    // External inputs: spread over banks not owned by PEs when possible.
    // g_.inputs lists Input leaves in ascending node order, matching
    // the placement sequence of the heap-walk era program for program
    // identity across the two compile entry points.
    uint32_t input_bank_lo =
        target_.numBanks > target_.numPes ? target_.numPes : 0;
    uint32_t input_banks =
        std::max(1u, target_.numBanks - input_bank_lo);
    std::vector<InputPlacement> placement(g_.numInputs);
    std::vector<bool> have(g_.numInputs, false);
    uint32_t next_bank = 0;
    for (const auto &[node, tag] : g_.inputs) {
        if (have[tag])
            continue;
        uint16_t bank = static_cast<uint16_t>(
            input_bank_lo + (next_bank++ % input_banks));
        placement[tag] = {tag, bank,
                          static_cast<uint16_t>(bank_fill[bank]++)};
        have[tag] = true;
    }
    for (uint32_t t = 0; t < g_.numInputs; ++t)
        if (have[t])
            prog_.inputs.push_back(placement[t]);

    // Patch operand references.
    for (auto &block : prog_.blocks) {
        for (auto &op : block.operands) {
            if (op.valid && op.fetch && op.reg == 0xffff) {
                const InputPlacement &p = placement[op.bank];
                op.bank = p.bank;
                op.reg = p.reg;
            }
        }
    }
    for (const auto &p : pending_) {
        const Block &producer =
            prog_.blocks[blockOfNode_.at(p.producer)];
        OperandRef &op = prog_.blocks[p.block].operands[p.slot];
        op.bank = producer.dest.bank;
        op.reg = producer.dest.reg;
    }

    // Spill accounting: values beyond R per bank.
    uint64_t spills = 0;
    for (uint32_t bk = 0; bk < target_.numBanks; ++bk)
        if (bank_fill[bk] > target_.regsPerBank)
            spills += bank_fill[bk] - target_.regsPerBank;
    prog_.stats.spillValues = spills;
}

void
Compiler::scheduleBlocks()
{
    const size_t nblocks = prog_.blocks.size();
    std::vector<std::vector<uint32_t>> consumers(nblocks);
    for (uint32_t b = 0; b < nblocks; ++b)
        for (uint32_t d : prog_.blocks[b].depends)
            consumers[d].push_back(b);

    // Priority: height = longest path toward any final consumer.
    // Relax to a fixpoint (indices are not topologically sorted).
    std::vector<uint32_t> height(nblocks, 0);
    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t b = 0; b < nblocks; ++b) {
            for (uint32_t d : prog_.blocks[b].depends) {
                if (height[d] < height[b] + 1) {
                    height[d] = height[b] + 1;
                    changed = true;
                }
            }
        }
    }

    const uint32_t latency = target_.pipelineLatency();
    std::vector<uint64_t> ready_cycle(nblocks, 0);
    std::vector<uint32_t> unmet(nblocks, 0);
    for (uint32_t b = 0; b < nblocks; ++b)
        unmet[b] = static_cast<uint32_t>(prog_.blocks[b].depends.size());

    std::vector<uint32_t> pool;
    for (uint32_t b = 0; b < nblocks; ++b)
        if (unmet[b] == 0)
            pool.push_back(b);

    uint64_t cycle = 0;
    size_t issued = 0;
    std::vector<IssueSlot> schedule;
    while (issued < nblocks) {
        std::vector<uint32_t> avail;
        for (uint32_t b : pool)
            if (ready_cycle[b] <= cycle)
                avail.push_back(b);
        std::sort(avail.begin(), avail.end(),
                  [&](uint32_t x, uint32_t y) {
                      if (height[x] != height[y])
                          return height[x] > height[y];
                      return x < y;
                  });
        std::vector<bool> pe_busy(target_.numPes, false);
        size_t issued_now = 0;
        for (uint32_t b : avail) {
            uint32_t pe = blockPe_[b];
            if (pe_busy[pe])
                continue;
            pe_busy[pe] = true;
            schedule.push_back({cycle, pe, b});
            pool.erase(std::find(pool.begin(), pool.end(), b));
            ++issued;
            ++issued_now;
            for (uint32_t c : consumers[b]) {
                ready_cycle[c] =
                    std::max(ready_cycle[c], cycle + latency);
                if (--unmet[c] == 0)
                    pool.push_back(c);
            }
        }
        ++cycle;
        if (issued_now == 0 && pool.empty() && issued < nblocks)
            panic("scheduler deadlock: cyclic block dependencies");
    }
    prog_.schedule = std::move(schedule);
    prog_.stats.scheduleLength =
        prog_.schedule.empty() ? 0
                               : prog_.schedule.back().cycle + latency;
}

Program
Compiler::run()
{
    prog_.treeDepth = target_.treeDepth;
    prog_.numPes = target_.numPes;
    prog_.numBanks = target_.numBanks;
    prog_.regsPerBank = target_.regsPerBank;

    resolved_.resize(g_.numNodes());
    resolvedReady_.assign(g_.numNodes(), false);
    countEffectiveConsumers();

    Resolved root = resolve(g_.root);
    uint32_t root_block;
    if (root.kind == Resolved::Kind::Op && root.a == 1.0 &&
        root.b == 0.0) {
        root_block = blockFor(root.node);
    } else {
        // Degenerate or affine-wrapped root: single-operand block that
        // passes the (transformed) value to the tree root.
        root_block = static_cast<uint32_t>(prog_.blocks.size());
        prog_.blocks.emplace_back();
        prog_.blocks[root_block].operands.assign(prog_.leavesPerPe(),
                                                 OperandRef{});
        prog_.blocks[root_block].nodeOps.assign(prog_.nodesPerPe(),
                                                TreeOp::Nop);
        prog_.blocks[root_block].dagRoot = g_.root;
        placeOperand(root_block, root, 1.0, 0, 0);
    }
    prog_.rootBlock = root_block;

    assignPesAndBanks();
    scheduleBlocks();

    prog_.stats.numBlocks = prog_.blocks.size();
    size_t fused = 0;
    size_t active_leaves = 0;
    for (const auto &b : prog_.blocks) {
        fused += b.fusedNodes;
        for (const auto &op : b.operands)
            if (op.valid)
                ++active_leaves;
    }
    prog_.stats.fusedNodes = fused;
    prog_.stats.replicatedNodes = replicated_;
    prog_.stats.avgLeafUtilization =
        prog_.blocks.empty()
            ? 0.0
            : static_cast<double>(active_leaves) /
                  (static_cast<double>(prog_.blocks.size()) *
                   static_cast<double>(prog_.leavesPerPe()));
    return std::move(prog_);
}

} // namespace

Program
compile(const core::FlatGraph &graph, const TargetConfig &target)
{
    reasonAssert(target.treeDepth >= 1 && target.treeDepth <= 8,
                 "tree depth must be in [1,8]");
    for (size_t i = 0; i < graph.numNodes(); ++i)
        reasonAssert(graph.edgeOffset[i + 1] - graph.edgeOffset[i] <= 2,
                     "compile requires a two-input flat graph "
                     "(regularize before lowering)");
    Compiler c(graph, target);
    return c.run();
}

Program
compile(const core::Dag &dag, const TargetConfig &target)
{
    if (!dag.isTwoInput()) {
        core::Dag copy = dag;
        core::regularizeTwoInput(copy);
        return compile(core::lowerDag(copy), target);
    }
    return compile(core::lowerDag(dag), target);
}

const char *
treeOpName(TreeOp op)
{
    switch (op) {
      case TreeOp::Add: return "add";
      case TreeOp::Mul: return "mul";
      case TreeOp::Max: return "max";
      case TreeOp::Min: return "min";
      case TreeOp::PassLeft: return "pass";
      case TreeOp::Nop: return "nop";
    }
    return "?";
}

std::string
Program::toString() const
{
    std::ostringstream os;
    os << "program: " << blocks.size() << " blocks, " << schedule.size()
       << " issue slots, depth " << treeDepth << ", PEs " << numPes
       << "\n";
    for (size_t i = 0; i < blocks.size() && i < 64; ++i) {
        const Block &b = blocks[i];
        os << "  block " << i << " (dag %" << b.dagRoot << ") -> bank "
           << b.dest.bank << " reg " << b.dest.reg << " [";
        for (size_t k = 0; k < b.nodeOps.size(); ++k)
            os << (k ? " " : "") << treeOpName(b.nodeOps[k]);
        os << "]\n";
    }
    return os.str();
}

} // namespace compiler
} // namespace reason
